// E11 (Figure 6b, Appendix E): DynaMast throughput as the database grows
// 6x (the paper grows 5 GB -> 30 GB; here the scaled key count grows 6x),
// for four YCSB variants: uniform 50/50, uniform 90/10, write-only
// uniform, and skewed 90/10.
//
// Paper headline: little change for the uniform mixes (slight dip for the
// write-intensive one from larger selector state); the skewed mix
// *improves* with size because the skew spreads over more items,
// decreasing contention.

#include "bench/bench_common.h"

#include "workloads/ycsb.h"

using namespace dynamast;
using namespace dynamast::bench;
using namespace dynamast::workloads;

int main(int argc, char** argv) {
  BenchConfig config;
  config.clients = 48;
  ParseFlags(argc, argv, &config);
  PrintHeader("E11 / Fig 6b: DynaMast throughput vs database size", config);

  struct Variant {
    const char* name;
    uint32_t rmw_pct;
    bool zipfian;
  };
  const std::vector<Variant> variants = {
      {"50-50U", 50, false},
      {"90-10U", 90, false},
      {"100-0U", 100, false},
      {"90-10S", 90, true},
  };
  const std::vector<double> size_multipliers = {1.0, 6.0};

  std::printf("%-10s %10s %14s %12s\n", "variant", "size", "tput(txn/s)",
              "remaster%");
  for (const Variant& variant : variants) {
    for (double mult : size_multipliers) {
      YcsbWorkload::Options wopts;
      wopts.num_keys =
          static_cast<uint64_t>(100000 * config.scale * mult);
      wopts.rmw_pct = variant.rmw_pct;
      wopts.zipfian = variant.zipfian;
      wopts.seed = config.seed;
      YcsbWorkload workload(wopts);
      DeploymentOptions deployment = Deployment(config);
      deployment.weights = selector::StrategyWeights::Ycsb();
      RunResult run = RunOne(SystemKind::kDynaMast, deployment, workload,
                             DriverOptions(config, config.clients));
      const double remaster_pct =
          run.report.committed > 0
              ? 100.0 * static_cast<double>(run.report.remastered_txns) /
                    static_cast<double>(run.report.committed)
              : 0.0;
      std::printf("%-10s %9.0fx %14.1f %11.2f%%\n", variant.name, mult,
                  run.report.Throughput(), remaster_pct);
      run.system->Shutdown();
    }
  }
  return 0;
}
