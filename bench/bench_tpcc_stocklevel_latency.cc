// E4 (Figure 4d): TPC-C Stock-Level (read-only) transaction latency
// across all five systems.
//
// Paper headline: DynaMast ~= single-master ~= multi-master (replicas +
// MVCC make read-only transactions cheap); partition-store higher (its
// multi-site reads wait for the slowest site); LEAP orders of magnitude
// worse (it must localize read-only transactions by shipping data).

#include "bench/bench_common.h"

#include "workloads/tpcc.h"

using namespace dynamast;
using namespace dynamast::bench;
using namespace dynamast::workloads;

int main(int argc, char** argv) {
  BenchConfig config;
  config.sites = 8;
  config.clients = 32;
  config.warmup = 3.0;  // mastership placement converges during warmup
  ParseFlags(argc, argv, &config);
  PrintHeader("E4 / Fig 4d: TPC-C Stock-Level latency", config);

  for (SystemKind kind : config.systems) {
    TpccWorkload::Options wopts;
    wopts.num_warehouses = config.sites;
    wopts.num_items = static_cast<uint32_t>(1000 * config.scale);
    wopts.customers_per_district = static_cast<uint32_t>(300 * config.scale);
    wopts.seed = config.seed;
    TpccWorkload workload(wopts);
    DeploymentOptions deployment = Deployment(config);
    deployment.weights = selector::StrategyWeights::Tpcc();
    deployment.static_placement = workload.WarehousePlacement(config.sites);
    RunResult run = RunOne(kind, deployment, workload,
                           DriverOptions(config, config.clients));
    PrintLatencyRow(run.system->name().c_str(), "stock-level",
                    run.report.LatencyFor("stock-level"));
    run.system->Shutdown();
  }
  return 0;
}
