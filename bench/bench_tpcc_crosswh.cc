// E6 (Section VI-B3): average New-Order latency as the fraction of
// cross-warehouse New-Order transactions grows from 0 to one third.
//
// Paper headline: DynaMast's latency grows only ~1.75x (vs ~3x for
// partition-store/multi-master and >2.2x for LEAP); at 33%% cross-
// warehouse DynaMast is ~87%% below partition/multi-master and ~25%%
// below single-master.

#include "bench/bench_common.h"

#include "workloads/tpcc.h"

using namespace dynamast;
using namespace dynamast::bench;
using namespace dynamast::workloads;

int main(int argc, char** argv) {
  BenchConfig config;
  config.sites = 8;
  config.clients = 32;
  config.warmup = 3.0;  // mastership placement converges during warmup
  ParseFlags(argc, argv, &config);
  PrintHeader("E6: New-Order latency vs %cross-warehouse", config);

  const std::vector<uint32_t> cross_pcts = {0, 15, 33};
  std::printf("%-16s %10s %12s %12s %12s\n", "system", "cross%", "avg(ms)",
              "p90(ms)", "p99(ms)");
  for (SystemKind kind : config.systems) {
    for (uint32_t cross : cross_pcts) {
      TpccWorkload::Options wopts;
      wopts.num_warehouses = config.sites;
      wopts.num_items = static_cast<uint32_t>(1000 * config.scale);
      wopts.customers_per_district = static_cast<uint32_t>(300 * config.scale);
      wopts.cross_warehouse_neworder_pct = cross;
      wopts.seed = config.seed;
      TpccWorkload workload(wopts);
      DeploymentOptions deployment = Deployment(config);
      deployment.weights = selector::StrategyWeights::Tpcc();
      deployment.static_placement = workload.WarehousePlacement(config.sites);
      RunResult run = RunOne(kind, deployment, workload,
                             DriverOptions(config, config.clients));
      const LatencyRecorder* latency = run.report.LatencyFor("new-order");
      if (latency != nullptr) {
        std::printf("%-16s %10u %12.2f %12.2f %12.2f\n",
                    run.system->name().c_str(), cross,
                    latency->MeanMicros() / 1000.0,
                    latency->PercentileMicros(0.9) / 1000.0,
                    latency->PercentileMicros(0.99) / 1000.0);
      }
      run.system->Shutdown();
    }
  }
  return 0;
}
