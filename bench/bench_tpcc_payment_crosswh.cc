// E16 (Figure 8g, Appendix G): average Payment latency as the percentage
// of cross-warehouse (remote customer) Payment transactions grows from 0
// to the default 15%.
//
// Paper headline: DynaMast's Payment latency grows only ~0.2 ms over the
// sweep; partition-store and multi-master grow by ~10 ms; single-master
// stays flat (light transactions don't contend at the master).

#include "bench/bench_common.h"

#include "workloads/tpcc.h"

using namespace dynamast;
using namespace dynamast::bench;
using namespace dynamast::workloads;

int main(int argc, char** argv) {
  BenchConfig config;
  config.sites = 8;
  config.clients = 32;
  config.warmup = 3.0;  // mastership placement converges during warmup
  ParseFlags(argc, argv, &config);
  PrintHeader("E16 / Fig 8g: Payment latency vs %cross-warehouse", config);

  const std::vector<uint32_t> remote_pcts = {0, 15};
  std::printf("%-16s %10s %12s %12s\n", "system", "remote%", "avg(ms)",
              "p99(ms)");
  for (SystemKind kind : config.systems) {
    for (uint32_t remote : remote_pcts) {
      TpccWorkload::Options wopts;
      wopts.num_warehouses = config.sites;
      wopts.num_items = static_cast<uint32_t>(1000 * config.scale);
      wopts.customers_per_district = static_cast<uint32_t>(300 * config.scale);
      wopts.remote_payment_pct = remote;
      wopts.seed = config.seed;
      TpccWorkload workload(wopts);
      DeploymentOptions deployment = Deployment(config);
      deployment.weights = selector::StrategyWeights::Tpcc();
      deployment.static_placement = workload.WarehousePlacement(config.sites);
      RunResult run = RunOne(kind, deployment, workload,
                             DriverOptions(config, config.clients));
      const LatencyRecorder* latency = run.report.LatencyFor("payment");
      if (latency != nullptr) {
        std::printf("%-16s %10u %12.2f %12.2f\n", run.system->name().c_str(),
                    remote, latency->MeanMicros() / 1000.0,
                    latency->PercentileMicros(0.99) / 1000.0);
      }
      run.system->Shutdown();
    }
  }
  return 0;
}
