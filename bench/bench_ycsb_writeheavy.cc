// E2 (Figure 4b): YCSB uniform 90/10 RMW/scan — write-intensive
// throughput, all five systems.
//
// Paper headline: DynaMast ~2.5x the others; multi-master drops *below*
// partition-store (fewer scans to exploit replicas while still paying
// propagation); single-master saturates fastest.

#include "bench/bench_common.h"

#include "workloads/ycsb.h"

using namespace dynamast;
using namespace dynamast::bench;
using namespace dynamast::workloads;

int main(int argc, char** argv) {
  BenchConfig config;
  config.clients = 64;
  ParseFlags(argc, argv, &config);
  PrintHeader("E2 / Fig 4b: YCSB uniform 90/10 RMW-scan (write-intensive)",
              config);

  std::printf("%-16s %14s %10s %12s\n", "system", "tput(txn/s)", "errors",
              "remaster/2pc");
  SetPoint("rmw90");
  for (SystemKind kind : config.systems) {
    YcsbWorkload::Options wopts;
    wopts.num_keys = static_cast<uint64_t>(100000 * config.scale);
    wopts.rmw_pct = 90;
    wopts.seed = config.seed;
    YcsbWorkload workload(wopts);
    DeploymentOptions deployment = Deployment(config);
    deployment.weights = selector::StrategyWeights::Ycsb();
    RunResult run = RunOne(kind, deployment, workload,
                           DriverOptions(config, config.clients));
    std::printf("%-16s %14.1f %10llu %12llu\n", run.system->name().c_str(),
                run.report.Throughput(),
                static_cast<unsigned long long>(run.report.errors),
                static_cast<unsigned long long>(run.report.remastered_txns +
                                                run.report.distributed_txns));
    run.system->Shutdown();
  }
  return 0;
}
