// E3 (Figure 4c): TPC-C New-Order transaction latency (avg / p90 / p99)
// across all five systems, default 45/45/10 mix with cross-warehouse
// transactions.
//
// Paper headline: DynaMast cuts average New-Order latency ~40% vs
// single-master, ~85% vs partition-store/multi-master (whose p90 is ~10x
// DynaMast's), ~96% vs LEAP (whose p99 is ~40x DynaMast's).

#include "bench/bench_common.h"

#include "workloads/tpcc.h"

using namespace dynamast;
using namespace dynamast::bench;
using namespace dynamast::workloads;

int main(int argc, char** argv) {
  BenchConfig config;
  config.sites = 8;
  config.clients = 32;
  config.warmup = 3.0;  // mastership placement converges during warmup
  ParseFlags(argc, argv, &config);
  PrintHeader("E3 / Fig 4c: TPC-C New-Order latency", config);

  for (SystemKind kind : config.systems) {
    TpccWorkload::Options wopts;
    wopts.num_warehouses = config.sites;
    wopts.num_items = static_cast<uint32_t>(1000 * config.scale);
    wopts.customers_per_district =
        static_cast<uint32_t>(300 * config.scale);
    wopts.seed = config.seed;
    TpccWorkload workload(wopts);
    DeploymentOptions deployment = Deployment(config);
    deployment.weights = selector::StrategyWeights::Tpcc();
    deployment.static_placement = workload.WarehousePlacement(config.sites);
    RunResult run = RunOne(kind, deployment, workload,
                           DriverOptions(config, config.clients));
    PrintLatencyRow(run.system->name().c_str(), "new-order",
                    run.report.LatencyFor("new-order"));
    run.system->Shutdown();
  }
  return 0;
}
