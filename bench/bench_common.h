#ifndef DYNAMAST_BENCH_BENCH_COMMON_H_
#define DYNAMAST_BENCH_BENCH_COMMON_H_

// Shared harness for the per-figure benchmark binaries. Every binary
// accepts the same flags and prints the rows/series of its paper figure;
// EXPERIMENTS.md records the measured values against the paper's.
//
// Flags (all optional):
//   --seconds=N     measurement window per point      (default 2)
//   --warmup=N      warmup seconds per point          (default 1)
//   --clients=N     concurrent clients                (default per bench)
//   --sites=N       data sites                        (default per bench)
//   --scale=F       data-size multiplier              (default 1.0)
//   --latency_us=N  one-way simulated network latency (default 250)
//   --read_us=N     per-read service time             (default 10)
//   --write_us=N    per-write service time            (default 500)
//   --apply_us=N    per-applied-write refresh cost    (default 100)
//   --slots=N       worker slots per site             (default 4)
//   --systems=a,b   comma-separated subset of systems (default: all)
//   --seed=N        RNG seed                          (default 31)
//   --metrics-out=F append one machine-readable JSON row per (system,
//                   point) to F: bench/config identity, the driver report
//                   and a full metrics-registry snapshot (the registry is
//                   reset before each run so a row covers exactly one run)
//   --trace-out=F   enable per-transaction tracing and write a Chrome
//                   trace-event JSON file (load in Perfetto); each run's
//                   spans get their own pid lane group
//   --history-out=F enable history recording and dump each run's event
//                   log to F (last run wins — combine with --systems=<one>
//                   to audit it: si_checker --metrics=<metrics row> F)
//   --timeline-out=F        sample the metrics registry every
//                           --timeline-period-ms during each run and append
//                           the rows to F as JSONL (one run label per
//                           (system, point); summarize with
//                           metrics_dump --timeline F)
//   --timeline-period-ms=N  timeline sampling cadence (default 100)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/latency_recorder.h"
#include "common/metrics.h"
#include "common/timeline.h"
#include "common/trace.h"
#include "workloads/driver.h"
#include "workloads/system_factory.h"
#include "workloads/workload.h"

namespace dynamast::bench {

struct BenchConfig {
  double seconds = 2.0;
  double warmup = 1.0;
  uint32_t clients = 24;
  uint32_t sites = 4;
  double scale = 1.0;
  uint32_t latency_us = 250;
  uint32_t read_us = 10;
  uint32_t write_us = 500;
  uint32_t apply_us = 100;
  uint32_t slots = 4;
  uint64_t seed = 31;
  std::vector<workloads::SystemKind> systems = workloads::AllSystems();
  /// When non-empty, RunOne appends one JSON row per run to this file.
  std::string metrics_out;
  /// When non-empty, RunOne enables tracing and (re)writes this Chrome
  /// trace-event file after every run.
  std::string trace_out;
  /// When non-empty, RunOne records history and dumps it here (each run
  /// overwrites the file, so the dump always covers one coherent run).
  std::string history_out;
  /// When non-empty, RunOne samples the global registry during each run
  /// and appends the timeline rows here as JSONL.
  std::string timeline_out;
  uint32_t timeline_period_ms = 100;
};

// Telemetry surface state shared by the inline harness functions
// (benchmark binaries are single-threaded drivers of RunOne).
namespace internal {
inline const BenchConfig* g_config = nullptr;
inline std::string g_bench_title = "bench";
inline std::string g_point;
inline bool g_metrics_file_started = false;
inline bool g_timeline_file_started = false;
inline std::vector<trace::TraceEvent> g_trace_events;
inline std::map<uint32_t, std::string> g_trace_names;
inline uint32_t g_trace_runs = 0;
}  // namespace internal

/// Labels the current measurement point (e.g. "theta=0.95" or
/// "clients=64") for the metrics/trace output of subsequent RunOne calls.
inline void SetPoint(const std::string& label) { internal::g_point = label; }

inline workloads::SystemKind ParseSystem(const std::string& name) {
  for (workloads::SystemKind kind : workloads::AllSystems()) {
    if (name == workloads::SystemKindName(kind)) return kind;
  }
  std::fprintf(stderr, "unknown system '%s'\n", name.c_str());
  std::exit(2);
}

/// Parses the common flags; exits on malformed input. Bench-specific
/// defaults should be set on `config` before calling.
inline void ParseFlags(int argc, char** argv, BenchConfig* config) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const size_t len = std::strlen(prefix);
      return arg.compare(0, len, prefix) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* v = value("--seconds=")) {
      config->seconds = std::atof(v);
    } else if (const char* v = value("--warmup=")) {
      config->warmup = std::atof(v);
    } else if (const char* v = value("--clients=")) {
      config->clients = static_cast<uint32_t>(std::atoi(v));
    } else if (const char* v = value("--sites=")) {
      config->sites = static_cast<uint32_t>(std::atoi(v));
    } else if (const char* v = value("--scale=")) {
      config->scale = std::atof(v);
    } else if (const char* v = value("--latency_us=")) {
      config->latency_us = static_cast<uint32_t>(std::atoi(v));
    } else if (const char* v = value("--read_us=")) {
      config->read_us = static_cast<uint32_t>(std::atoi(v));
    } else if (const char* v = value("--write_us=")) {
      config->write_us = static_cast<uint32_t>(std::atoi(v));
    } else if (const char* v = value("--apply_us=")) {
      config->apply_us = static_cast<uint32_t>(std::atoi(v));
    } else if (const char* v = value("--slots=")) {
      config->slots = static_cast<uint32_t>(std::atoi(v));
    } else if (const char* v = value("--seed=")) {
      config->seed = static_cast<uint64_t>(std::atoll(v));
    } else if (const char* v = value("--metrics-out=")) {
      config->metrics_out = v;
    } else if (const char* v = value("--trace-out=")) {
      config->trace_out = v;
    } else if (const char* v = value("--history-out=")) {
      config->history_out = v;
    } else if (const char* v = value("--timeline-out=")) {
      config->timeline_out = v;
    } else if (const char* v = value("--timeline-period-ms=")) {
      config->timeline_period_ms = static_cast<uint32_t>(std::atoi(v));
    } else if (const char* v = value("--systems=")) {
      config->systems.clear();
      std::string list = v;
      size_t pos = 0;
      while (pos != std::string::npos) {
        const size_t comma = list.find(',', pos);
        const std::string name =
            list.substr(pos, comma == std::string::npos ? comma : comma - pos);
        if (!name.empty()) config->systems.push_back(ParseSystem(name));
        pos = comma == std::string::npos ? comma : comma + 1;
      }
    } else if (arg == "--help" || arg == "-h") {
      std::printf("see bench/bench_common.h for flags\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      std::exit(2);
    }
  }
  // RunOne reads the telemetry flags through this pointer so existing
  // bench mains need no signature changes.
  internal::g_config = config;
}

inline workloads::DeploymentOptions Deployment(const BenchConfig& config) {
  workloads::DeploymentOptions options;
  options.num_sites = config.sites;
  options.worker_slots = config.slots;
  options.read_op_cost = std::chrono::microseconds(config.read_us);
  options.write_op_cost = std::chrono::microseconds(config.write_us);
  options.apply_op_cost = std::chrono::microseconds(config.apply_us);
  options.one_way_latency = std::chrono::microseconds(config.latency_us);
  options.charge_network = true;
  options.seed = config.seed;
  return options;
}

inline workloads::Driver::Options DriverOptions(const BenchConfig& config,
                                                uint32_t clients) {
  workloads::Driver::Options options;
  options.num_clients = clients;
  options.warmup = std::chrono::milliseconds(
      static_cast<int64_t>(config.warmup * 1000));
  options.measure = std::chrono::milliseconds(
      static_cast<int64_t>(config.seconds * 1000));
  options.seed = config.seed;
  return options;
}

/// Loads `workload` into a freshly built `kind` system and runs the
/// driver. The returned report plus the system pointer (for counters).
struct RunResult {
  workloads::Driver::Report report;
  std::unique_ptr<core::SystemInterface> system;
};

namespace internal {

/// One JSON row: bench/point/system identity, deployment config, driver
/// report, and a full snapshot of the process-global metrics registry.
inline void AppendMetricsRow(const BenchConfig& config,
                             const std::string& system_name,
                             const workloads::Driver::Report& report) {
  std::FILE* f = std::fopen(config.metrics_out.c_str(),
                            g_metrics_file_started ? "a" : "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", config.metrics_out.c_str());
    std::exit(1);
  }
  g_metrics_file_started = true;
  std::string row = "{\"bench\":\"" + metrics::JsonEscape(g_bench_title) +
                    "\",\"point\":\"" + metrics::JsonEscape(g_point) +
                    "\",\"system\":\"" + metrics::JsonEscape(system_name) +
                    "\",";
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "\"config\":{\"sites\":%u,\"clients\":%u,\"seconds\":%g,"
                "\"warmup\":%g,\"scale\":%g,\"latency_us\":%u,\"read_us\":%u,"
                "\"write_us\":%u,\"apply_us\":%u,\"slots\":%u,\"seed\":%llu},",
                config.sites, config.clients, config.seconds, config.warmup,
                config.scale, config.latency_us, config.read_us,
                config.write_us, config.apply_us, config.slots,
                static_cast<unsigned long long>(config.seed));
  row += buf;
  std::snprintf(buf, sizeof(buf),
                "\"report\":{\"committed\":%llu,\"errors\":%llu,"
                "\"seconds\":%g,\"throughput\":%g,\"remastered_txns\":%llu,"
                "\"distributed_txns\":%llu,\"retries\":%llu,",
                static_cast<unsigned long long>(report.committed),
                static_cast<unsigned long long>(report.errors),
                report.seconds, report.Throughput(),
                static_cast<unsigned long long>(report.remastered_txns),
                static_cast<unsigned long long>(report.distributed_txns),
                static_cast<unsigned long long>(report.retries));
  row += buf;
  // Overall latency distribution, merged across transaction types, so a
  // metrics row carries the percentile trajectory (BENCH_*.json) without
  // needing the human-readable stdout tables.
  LatencyRecorder overall;
  for (const auto& [type, recorder] : report.latency_by_type) {
    if (recorder) overall.Merge(*recorder);
  }
  if (overall.count() > 0) {
    std::snprintf(buf, sizeof(buf),
                  "\"latency_us\":{\"count\":%llu,\"mean\":%g,\"p50\":%g,"
                  "\"p90\":%g,\"p99\":%g},",
                  static_cast<unsigned long long>(overall.count()),
                  overall.MeanMicros(), overall.PercentileMicros(0.5),
                  overall.PercentileMicros(0.9),
                  overall.PercentileMicros(0.99));
    row += buf;
  }
  row += "\"aborted_by_reason\":{";
  bool first = true;
  for (const auto& [reason, count] : report.aborted_by_reason) {
    if (!first) row += ",";
    first = false;
    row += "\"" + metrics::JsonEscape(reason) +
           "\":" + std::to_string(count);
  }
  row += "},\"committed_by_type\":{";
  first = true;
  for (const auto& [type, count] : report.committed_by_type) {
    if (!first) row += ",";
    first = false;
    row += "\"" + metrics::JsonEscape(type) + "\":" + std::to_string(count);
  }
  row += "}},\"metrics\":" + metrics::Registry::Global().SnapshotJson() + "}\n";
  std::fputs(row.c_str(), f);
  std::fclose(f);
}

/// Truncates the timeline file on first use, then appends the sampler's
/// rows (each RunOne call contributes one run label).
inline void AppendTimelineRun(const BenchConfig& config,
                              const timeline::TimelineSampler& sampler) {
  if (!g_timeline_file_started) {
    std::FILE* f = std::fopen(config.timeline_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", config.timeline_out.c_str());
      std::exit(1);
    }
    std::fclose(f);
    g_timeline_file_started = true;
  }
  const Status s = sampler.AppendJsonl(config.timeline_out);
  if (!s.ok()) {
    std::fprintf(stderr, "timeline dump failed: %s\n", s.ToString().c_str());
    std::exit(1);
  }
  if (sampler.dropped_rows() > 0) {
    std::fprintf(stderr, "timeline: %llu samples dropped (row bound)\n",
                 static_cast<unsigned long long>(sampler.dropped_rows()));
  }
}

/// Builds the run's timeline sampler (caller Start()s it around the
/// measured region). Label convention: "<system>[/<point>]".
inline std::unique_ptr<timeline::TimelineSampler> MakeTimelineSampler(
    const BenchConfig& config, const std::string& system_name) {
  timeline::TimelineSampler::Options options;
  options.period = std::chrono::milliseconds(
      config.timeline_period_ms == 0 ? 100 : config.timeline_period_ms);
  options.run_label =
      system_name + (g_point.empty() ? "" : "/" + g_point);
  return std::make_unique<timeline::TimelineSampler>(std::move(options));
}

/// Folds one run's spans into the accumulated trace and rewrites the
/// whole file: each run gets a pid block of its own (offset 100 per run)
/// so lanes from different (system, point) runs do not collide.
inline void AppendTraceRun(const BenchConfig& config,
                           const std::string& system_name,
                           trace::Tracer& tracer) {
  const uint32_t offset = g_trace_runs * 100;
  ++g_trace_runs;
  const std::string prefix =
      system_name + (g_point.empty() ? "" : "/" + g_point) + "/";
  for (const auto& [pid, name] : tracer.process_names()) {
    g_trace_names[pid + offset] = prefix + name;
  }
  for (trace::TraceEvent event : tracer.Snapshot()) {
    event.pid += offset;
    g_trace_events.push_back(std::move(event));
  }
  std::FILE* f = std::fopen(config.trace_out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", config.trace_out.c_str());
    std::exit(1);
  }
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const auto& [pid, name] : g_trace_names) {
    if (!first) out += ",";
    first = false;
    out += trace::ProcessNameEvent(pid, name).ToJson();
  }
  for (const trace::TraceEvent& event : g_trace_events) {
    if (!first) out += ",";
    first = false;
    out += event.ToJson();
  }
  out += "]}\n";
  std::fputs(out.c_str(), f);
  std::fclose(f);
}

}  // namespace internal

inline RunResult RunOne(workloads::SystemKind kind,
                        const workloads::DeploymentOptions& deployment,
                        workloads::Workload& workload,
                        const workloads::Driver::Options& driver_options) {
  const BenchConfig* config = internal::g_config;
  const bool metrics_on = config != nullptr && !config->metrics_out.empty();
  const bool trace_on = config != nullptr && !config->trace_out.empty();
  const bool history_on = config != nullptr && !config->history_out.empty();
  const bool timeline_on = config != nullptr && !config->timeline_out.empty();

  workloads::DeploymentOptions effective_deployment = deployment;
  if (trace_on) effective_deployment.trace = true;
  if (history_on) effective_deployment.record_history = true;
  workloads::Driver::Options effective_driver = driver_options;
  if (metrics_on || timeline_on) {
    // One registry snapshot per run: zero every series the process has
    // registered so the emitted row (and timeline) covers exactly this run.
    metrics::Registry::Global().ResetValues();
    effective_driver.metrics = &metrics::Registry::Global();
  }

  RunResult result;
  result.system = workloads::MakeSystem(kind, effective_deployment,
                                        workload.partitioner());
  Status s = workload.Load(*result.system);
  if (!s.ok()) {
    std::fprintf(stderr, "load failed for %s: %s\n", result.system->name().c_str(),
                 s.ToString().c_str());
    std::exit(1);
  }
  result.system->Seal();
  workloads::Driver driver(effective_driver);
  std::unique_ptr<timeline::TimelineSampler> sampler;
  if (timeline_on) {
    sampler = internal::MakeTimelineSampler(*config, result.system->name());
    sampler->Start();
  }
  result.report = driver.Run(*result.system, workload);
  if (sampler != nullptr) {
    sampler->Stop();
    internal::AppendTimelineRun(*config, *sampler);
  }
  if (metrics_on) {
    internal::AppendMetricsRow(*config, result.system->name(), result.report);
  }
  if (trace_on && result.system->tracer() != nullptr) {
    internal::AppendTraceRun(*config, result.system->name(),
                             *result.system->tracer());
  }
  if (history_on && result.system->history() != nullptr) {
    Status dump = result.system->history()->DumpToFile(config->history_out);
    if (!dump.ok()) {
      std::fprintf(stderr, "history dump failed: %s\n",
                   dump.ToString().c_str());
      std::exit(1);
    }
  }
  return result;
}

inline void PrintHeader(const char* title, const BenchConfig& config) {
  internal::g_bench_title = title;
  std::printf("=== %s ===\n", title);
  std::printf(
      "sites=%u clients=%u measure=%.1fs warmup=%.1fs scale=%.2f "
      "latency=%uus read=%uus write=%uus apply=%uus slots=%u\n\n",
      config.sites, config.clients, config.seconds, config.warmup,
      config.scale, config.latency_us, config.read_us, config.write_us,
      config.apply_us, config.slots);
}

inline void PrintLatencyRow(const char* system, const char* txn_type,
                            const LatencyRecorder* latency) {
  if (latency == nullptr || latency->count() == 0) {
    std::printf("%-16s %-14s (no samples)\n", system, txn_type);
    return;
  }
  std::printf("%-16s %-14s avg=%8.2fms p50=%8.2fms p90=%8.2fms p99=%8.2fms "
              "n=%llu\n",
              system, txn_type, latency->MeanMicros() / 1000.0,
              latency->PercentileMicros(0.5) / 1000.0,
              latency->PercentileMicros(0.9) / 1000.0,
              latency->PercentileMicros(0.99) / 1000.0,
              static_cast<unsigned long long>(latency->count()));
}

}  // namespace dynamast::bench

#endif  // DYNAMAST_BENCH_BENCH_COMMON_H_
