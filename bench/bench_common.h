#ifndef DYNAMAST_BENCH_BENCH_COMMON_H_
#define DYNAMAST_BENCH_BENCH_COMMON_H_

// Shared harness for the per-figure benchmark binaries. Every binary
// accepts the same flags and prints the rows/series of its paper figure;
// EXPERIMENTS.md records the measured values against the paper's.
//
// Flags (all optional):
//   --seconds=N     measurement window per point      (default 2)
//   --warmup=N      warmup seconds per point          (default 1)
//   --clients=N     concurrent clients                (default per bench)
//   --sites=N       data sites                        (default per bench)
//   --scale=F       data-size multiplier              (default 1.0)
//   --latency_us=N  one-way simulated network latency (default 250)
//   --read_us=N     per-read service time             (default 10)
//   --write_us=N    per-write service time            (default 500)
//   --apply_us=N    per-applied-write refresh cost    (default 100)
//   --slots=N       worker slots per site             (default 4)
//   --systems=a,b   comma-separated subset of systems (default: all)
//   --seed=N        RNG seed                          (default 31)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/latency_recorder.h"
#include "workloads/driver.h"
#include "workloads/system_factory.h"
#include "workloads/workload.h"

namespace dynamast::bench {

struct BenchConfig {
  double seconds = 2.0;
  double warmup = 1.0;
  uint32_t clients = 24;
  uint32_t sites = 4;
  double scale = 1.0;
  uint32_t latency_us = 250;
  uint32_t read_us = 10;
  uint32_t write_us = 500;
  uint32_t apply_us = 100;
  uint32_t slots = 4;
  uint64_t seed = 31;
  std::vector<workloads::SystemKind> systems = workloads::AllSystems();
};

inline workloads::SystemKind ParseSystem(const std::string& name) {
  for (workloads::SystemKind kind : workloads::AllSystems()) {
    if (name == workloads::SystemKindName(kind)) return kind;
  }
  std::fprintf(stderr, "unknown system '%s'\n", name.c_str());
  std::exit(2);
}

/// Parses the common flags; exits on malformed input. Bench-specific
/// defaults should be set on `config` before calling.
inline void ParseFlags(int argc, char** argv, BenchConfig* config) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const size_t len = std::strlen(prefix);
      return arg.compare(0, len, prefix) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* v = value("--seconds=")) {
      config->seconds = std::atof(v);
    } else if (const char* v = value("--warmup=")) {
      config->warmup = std::atof(v);
    } else if (const char* v = value("--clients=")) {
      config->clients = static_cast<uint32_t>(std::atoi(v));
    } else if (const char* v = value("--sites=")) {
      config->sites = static_cast<uint32_t>(std::atoi(v));
    } else if (const char* v = value("--scale=")) {
      config->scale = std::atof(v);
    } else if (const char* v = value("--latency_us=")) {
      config->latency_us = static_cast<uint32_t>(std::atoi(v));
    } else if (const char* v = value("--read_us=")) {
      config->read_us = static_cast<uint32_t>(std::atoi(v));
    } else if (const char* v = value("--write_us=")) {
      config->write_us = static_cast<uint32_t>(std::atoi(v));
    } else if (const char* v = value("--apply_us=")) {
      config->apply_us = static_cast<uint32_t>(std::atoi(v));
    } else if (const char* v = value("--slots=")) {
      config->slots = static_cast<uint32_t>(std::atoi(v));
    } else if (const char* v = value("--seed=")) {
      config->seed = static_cast<uint64_t>(std::atoll(v));
    } else if (const char* v = value("--systems=")) {
      config->systems.clear();
      std::string list = v;
      size_t pos = 0;
      while (pos != std::string::npos) {
        const size_t comma = list.find(',', pos);
        const std::string name =
            list.substr(pos, comma == std::string::npos ? comma : comma - pos);
        if (!name.empty()) config->systems.push_back(ParseSystem(name));
        pos = comma == std::string::npos ? comma : comma + 1;
      }
    } else if (arg == "--help" || arg == "-h") {
      std::printf("see bench/bench_common.h for flags\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      std::exit(2);
    }
  }
}

inline workloads::DeploymentOptions Deployment(const BenchConfig& config) {
  workloads::DeploymentOptions options;
  options.num_sites = config.sites;
  options.worker_slots = config.slots;
  options.read_op_cost = std::chrono::microseconds(config.read_us);
  options.write_op_cost = std::chrono::microseconds(config.write_us);
  options.apply_op_cost = std::chrono::microseconds(config.apply_us);
  options.one_way_latency = std::chrono::microseconds(config.latency_us);
  options.charge_network = true;
  options.seed = config.seed;
  return options;
}

inline workloads::Driver::Options DriverOptions(const BenchConfig& config,
                                                uint32_t clients) {
  workloads::Driver::Options options;
  options.num_clients = clients;
  options.warmup = std::chrono::milliseconds(
      static_cast<int64_t>(config.warmup * 1000));
  options.measure = std::chrono::milliseconds(
      static_cast<int64_t>(config.seconds * 1000));
  options.seed = config.seed;
  return options;
}

/// Loads `workload` into a freshly built `kind` system and runs the
/// driver. The returned report plus the system pointer (for counters).
struct RunResult {
  workloads::Driver::Report report;
  std::unique_ptr<core::SystemInterface> system;
};

inline RunResult RunOne(workloads::SystemKind kind,
                        const workloads::DeploymentOptions& deployment,
                        workloads::Workload& workload,
                        const workloads::Driver::Options& driver_options) {
  RunResult result;
  result.system =
      workloads::MakeSystem(kind, deployment, workload.partitioner());
  Status s = workload.Load(*result.system);
  if (!s.ok()) {
    std::fprintf(stderr, "load failed for %s: %s\n", result.system->name().c_str(),
                 s.ToString().c_str());
    std::exit(1);
  }
  result.system->Seal();
  workloads::Driver driver(driver_options);
  result.report = driver.Run(*result.system, workload);
  return result;
}

inline void PrintHeader(const char* title, const BenchConfig& config) {
  std::printf("=== %s ===\n", title);
  std::printf(
      "sites=%u clients=%u measure=%.1fs warmup=%.1fs scale=%.2f "
      "latency=%uus read=%uus write=%uus apply=%uus slots=%u\n\n",
      config.sites, config.clients, config.seconds, config.warmup,
      config.scale, config.latency_us, config.read_us, config.write_us,
      config.apply_us, config.slots);
}

inline void PrintLatencyRow(const char* system, const char* txn_type,
                            const LatencyRecorder* latency) {
  if (latency == nullptr || latency->count() == 0) {
    std::printf("%-16s %-14s (no samples)\n", system, txn_type);
    return;
  }
  std::printf("%-16s %-14s avg=%8.2fms p50=%8.2fms p90=%8.2fms p99=%8.2fms "
              "n=%llu\n",
              system, txn_type, latency->MeanMicros() / 1000.0,
              latency->PercentileMicros(0.5) / 1000.0,
              latency->PercentileMicros(0.9) / 1000.0,
              latency->PercentileMicros(0.99) / 1000.0,
              static_cast<unsigned long long>(latency->count()));
}

}  // namespace dynamast::bench

#endif  // DYNAMAST_BENCH_BENCH_COMMON_H_
