// E8 (Figure 5b / Section VI-B5): adapting to a changed workload.
//
// Phase 1: the workload's partition correlations follow the natural range
// order and mastership starts with a matching manual range placement --
// transactions are single-sited, remastering is rare. One third into the
// run the correlation order is SHUFFLED (Appendix C's randomized
// partition access): the placement is suddenly wrong, transactions span
// sites, and DynaMast must learn the new correlations and remaster to
// recover. 100% RMW, skewed access, 25-transaction client affinity.
//
// Paper headline: throughput dips at the change, then keeps improving as
// placement is re-learned -- recovering ~1.6x from the post-change trough.

#include "bench/bench_common.h"

#include "baselines/static_placement.h"
#include "core/dynamast_system.h"
#include "workloads/ycsb.h"

using namespace dynamast;
using namespace dynamast::bench;
using namespace dynamast::workloads;

int main(int argc, char** argv) {
  BenchConfig config;
  config.clients = 48;
  config.seconds = 24.0;
  config.warmup = 0.0;
  ParseFlags(argc, argv, &config);
  PrintHeader("E8 / Fig 5b: adaptivity to workload change (DynaMast)",
              config);
  SetPoint("hotspot-shift");
  const auto change_at = std::chrono::milliseconds(
      static_cast<int64_t>(config.seconds * 1000 / 3));

  YcsbWorkload::Options wopts;
  wopts.num_keys = static_cast<uint64_t>(100000 * config.scale);
  wopts.rmw_pct = 100;
  wopts.zipfian = true;
  wopts.affinity_txns = 25;  // rapid client turnover (Appendix C)
  wopts.shuffle_correlations = false;  // natural order until the change
  wopts.seed = config.seed;
  YcsbWorkload workload(wopts);

  // Manual range placement matching the pre-change correlation order.
  core::DynaMastSystem::Options options;
  options.cluster.num_sites = config.sites;
  options.cluster.network.one_way_latency =
      std::chrono::microseconds(config.latency_us);
  options.cluster.site.read_op_cost = std::chrono::microseconds(config.read_us);
  options.cluster.site.write_op_cost =
      std::chrono::microseconds(config.write_us);
  options.cluster.site.apply_op_cost =
      std::chrono::microseconds(config.apply_us);
  options.cluster.site.worker_slots = config.slots;
  options.selector.weights = selector::StrategyWeights::Ycsb();
  options.selector.sample_rate = 0.5;
  options.placement = core::InitialPlacement::kCustom;
  options.custom_placement = baselines::RangePlacement(
      workload.num_partitions(), config.sites);
  core::DynaMastSystem system(options, &workload.partitioner());
  Status s = workload.Load(system);
  if (!s.ok()) {
    std::fprintf(stderr, "load: %s\n", s.ToString().c_str());
    return 1;
  }
  system.Seal();

  Driver::Options driver_options = DriverOptions(config, config.clients);
  driver_options.timeline_resolution = std::chrono::milliseconds(1000);
  driver_options.scheduled_actions.emplace_back(
      change_at, [&workload, &config] {
        workload.ShuffleCorrelations(config.seed ^ 0xbeef);
        std::printf("  >> correlations shuffled (workload change)\n");
      });
  // This bench drives its system directly (it needs the custom placement
  // and mid-run shuffle), so it wires the RunOne telemetry paths by hand.
  const bool metrics_on = !config.metrics_out.empty();
  const bool timeline_on = !config.timeline_out.empty();
  if (metrics_on || timeline_on) {
    metrics::Registry::Global().ResetValues();
    driver_options.metrics = &metrics::Registry::Global();
  }
  Driver driver(driver_options);
  std::unique_ptr<timeline::TimelineSampler> sampler;
  if (timeline_on) {
    sampler = bench::internal::MakeTimelineSampler(config, system.name());
    sampler->Start();
  }
  Driver::Report report = driver.Run(system, workload);

  // End of run: every surviving mastership transition is final, so close
  // all convergence episodes before reporting/snapshotting.
  selector::ConvergenceTracker& convergence =
      system.site_selector().convergence();
  convergence.Flush(metrics::NowMicros(), /*force=*/true);
  if (sampler != nullptr) {
    sampler->Stop();
    bench::internal::AppendTimelineRun(config, *sampler);
  }

  const size_t change_bucket =
      static_cast<size_t>(change_at / std::chrono::milliseconds(1000));
  std::printf("%8s %14s\n", "second", "tput(txn/s)");
  for (size_t i = 0; i < report.timeline.size(); ++i) {
    std::printf("%8zu %14llu%s\n", i,
                static_cast<unsigned long long>(report.timeline[i]),
                i == change_bucket ? "   <- workload change" : "");
  }
  // The adaptivity headline: post-change trough vs the end of the run.
  if (report.timeline.size() > change_bucket + 4) {
    uint64_t trough = UINT64_MAX;
    for (size_t i = change_bucket; i < change_bucket + 3; ++i) {
      trough = std::min(trough, report.timeline[i]);
    }
    const size_t n = report.timeline.size();
    const double late =
        static_cast<double>(report.timeline[n - 3] + report.timeline[n - 2]) /
        2.0;
    std::printf("\npost-change trough=%llu txn/s late=%.0f txn/s "
                "recovery=%.2fx\n",
                static_cast<unsigned long long>(trough), late,
                trough > 0 ? late / static_cast<double>(trough) : 0.0);
  }
  std::printf("remastered txns: %llu (%.2f%% of routed writes)\n",
              static_cast<unsigned long long>(
                  system.site_selector().counters().remastered_txns.load()),
              100.0 * system.site_selector().counters().RemasterFraction());

  // The ROADMAP's time-to-relocalize metric: first remote burst on a
  // partition -> its mastership stabilizing at the accessing site.
  const LatencyRecorder* relocalize =
      metrics::Registry::Global().HistogramRecorder(
          "selector_time_to_relocalize_us");
  std::printf("time-to-relocalize: episodes=%llu",
              static_cast<unsigned long long>(convergence.relocalized()));
  if (relocalize != nullptr && relocalize->count() > 0) {
    std::printf(" p50=%.1fms p90=%.1fms p99=%.1fms max=%.1fms",
                relocalize->PercentileMicros(0.5) / 1000.0,
                relocalize->PercentileMicros(0.9) / 1000.0,
                relocalize->PercentileMicros(0.99) / 1000.0,
                relocalize->MaxMicros() / 1000.0);
  }
  std::printf("\n");

  if (metrics_on) {
    bench::internal::AppendMetricsRow(config, system.name(), report);
  }
  system.Shutdown();
  return 0;
}
