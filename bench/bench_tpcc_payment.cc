// E15 (Figure 8e-f, Appendix G): TPC-C Payment transaction latency —
// average and tail — across all five systems, default 15% remote
// customers.
//
// Paper headline: single-master has the lowest Payment average (~0.3 ms —
// payments are light, so the master doesn't saturate); DynaMast pays a
// small premium (~1.2 ms, mostly below p10) for its remastering, and
// reduces Payment latency ~99/97/96%% vs LEAP/partition-store/
// multi-master.

#include "bench/bench_common.h"

#include "workloads/tpcc.h"

using namespace dynamast;
using namespace dynamast::bench;
using namespace dynamast::workloads;

int main(int argc, char** argv) {
  BenchConfig config;
  config.sites = 8;
  config.clients = 32;
  config.warmup = 3.0;  // mastership placement converges during warmup
  ParseFlags(argc, argv, &config);
  PrintHeader("E15 / Fig 8e-f: TPC-C Payment latency", config);

  for (SystemKind kind : config.systems) {
    TpccWorkload::Options wopts;
    wopts.num_warehouses = config.sites;
    wopts.num_items = static_cast<uint32_t>(1000 * config.scale);
    wopts.customers_per_district = static_cast<uint32_t>(300 * config.scale);
    wopts.seed = config.seed;
    TpccWorkload workload(wopts);
    DeploymentOptions deployment = Deployment(config);
    deployment.weights = selector::StrategyWeights::Tpcc();
    deployment.static_placement = workload.WarehousePlacement(config.sites);
    RunResult run = RunOne(kind, deployment, workload,
                           DriverOptions(config, config.clients));
    PrintLatencyRow(run.system->name().c_str(), "payment",
                    run.report.LatencyFor("payment"));
    run.system->Shutdown();
  }
  return 0;
}
