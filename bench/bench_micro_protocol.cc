// E17: protocol micro-benchmarks (google-benchmark) backing the
// "remastering is a lightweight metadata-only operation" claim —
// version-vector operations, redo-record serialization, MVCC
// install/read, write-lock acquisition, local commit, and a full
// release+grant remastering cycle (no simulated network so the numbers
// are pure protocol cost).

#include <benchmark/benchmark.h>

#include <memory>

#include "common/partitioner.h"
#include "common/version_vector.h"
#include "log/durable_log.h"
#include "log/log_record.h"
#include "site/site_manager.h"
#include "storage/storage_engine.h"

namespace dynamast {
namespace {

void BM_VersionVectorMax(benchmark::State& state) {
  VersionVector a(static_cast<size_t>(state.range(0)));
  VersionVector b(static_cast<size_t>(state.range(0)));
  for (size_t i = 0; i < b.size(); ++i) b[i] = i;
  for (auto _ : state) {
    VersionVector m = VersionVector::ElementwiseMax(a, b);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_VersionVectorMax)->Arg(4)->Arg(16)->Arg(64);

void BM_VersionVectorDominates(benchmark::State& state) {
  VersionVector a(static_cast<size_t>(state.range(0)));
  VersionVector b(static_cast<size_t>(state.range(0)));
  for (size_t i = 0; i < a.size(); ++i) a[i] = 100;
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.DominatesOrEquals(b));
  }
}
BENCHMARK(BM_VersionVectorDominates)->Arg(4)->Arg(16);

void BM_LogRecordSerialize(benchmark::State& state) {
  log::LogRecord record;
  record.type = log::LogRecord::Type::kUpdate;
  record.origin = 1;
  record.tvv = VersionVector(4);
  for (int64_t i = 0; i < state.range(0); ++i) {
    record.writes.push_back(
        log::WriteEntry{RecordKey{0, static_cast<uint64_t>(i)},
                        std::string(120, 'v'), false});
  }
  for (auto _ : state) {
    std::string s = record.Serialize();
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_LogRecordSerialize)->Arg(1)->Arg(3)->Arg(16);

void BM_LogRecordDeserialize(benchmark::State& state) {
  log::LogRecord record;
  record.type = log::LogRecord::Type::kUpdate;
  record.origin = 1;
  record.tvv = VersionVector(4);
  for (int64_t i = 0; i < state.range(0); ++i) {
    record.writes.push_back(
        log::WriteEntry{RecordKey{0, static_cast<uint64_t>(i)},
                        std::string(120, 'v'), false});
  }
  const std::string serialized = record.Serialize();
  for (auto _ : state) {
    log::LogRecord out;
    benchmark::DoNotOptimize(log::LogRecord::Deserialize(serialized, &out));
  }
}
BENCHMARK(BM_LogRecordDeserialize)->Arg(3);

void BM_MvccInstallAndRead(benchmark::State& state) {
  storage::StorageEngine engine;
  (void)engine.CreateTable(0);
  VersionVector snapshot(std::vector<uint64_t>{1});
  uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.Install(RecordKey{0, key % 10000}, 0, 1, "value"));
    std::string out;
    benchmark::DoNotOptimize(engine.Read(RecordKey{0, key % 10000},
                                         snapshot, &out));
    ++key;
  }
}
BENCHMARK(BM_MvccInstallAndRead);

void BM_WriteLockAcquireRelease(benchmark::State& state) {
  storage::LockManager locks;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::hours(1);
  uint64_t key = 0;
  for (auto _ : state) {
    const RecordKey k{0, key % 1024};
    benchmark::DoNotOptimize(locks.Acquire(k, 1, deadline));
    locks.Release(k, 1);
    ++key;
  }
}
BENCHMARK(BM_WriteLockAcquireRelease);

// Fixture: a 2-site cluster, no network delays, no service time.
struct ProtocolFixture {
  ProtocolFixture()
      : partitioner(10, 100), logs(2) {
    for (SiteId i = 0; i < 2; ++i) {
      site::SiteOptions options;
      options.site_id = i;
      options.num_sites = 2;
      options.read_op_cost = options.write_op_cost = options.apply_op_cost =
          std::chrono::microseconds(0);
      sites.push_back(std::make_unique<site::SiteManager>(
          options, &partitioner, &logs, nullptr));
      (void)sites.back()->CreateTable(0);
    }
    for (PartitionId p = 0; p < 100; ++p) sites[0]->SetMasterOf(p, true);
    for (uint64_t key = 0; key < 1000; ++key) {
      (void)sites[0]->LoadRecord(RecordKey{0, key}, "v");
      (void)sites[1]->LoadRecord(RecordKey{0, key}, "v");
    }
    for (auto& s : sites) s->Start();
  }
  ~ProtocolFixture() {
    logs.CloseAll();
    for (auto& s : sites) s->Stop();
  }
  RangePartitioner partitioner;
  log::LogManager logs;
  std::vector<std::unique_ptr<site::SiteManager>> sites;
};

void BM_LocalCommit(benchmark::State& state) {
  ProtocolFixture fixture;
  uint64_t key = 0;
  for (auto _ : state) {
    site::TxnOptions options;
    options.write_keys = {RecordKey{0, key % 1000}};
    site::Transaction txn;
    benchmark::DoNotOptimize(fixture.sites[0]->BeginTransaction(options, &txn));
    benchmark::DoNotOptimize(txn.Put(RecordKey{0, key % 1000}, "v2"));
    VersionVector tvv;
    benchmark::DoNotOptimize(fixture.sites[0]->Commit(&txn, &tvv));
    ++key;
  }
}
BENCHMARK(BM_LocalCommit);

// The headline micro number: one full metadata-only remastering cycle
// (release at the old master, grant at the new one) — ping-ponging a
// partition between two sites.
void BM_RemasterReleaseGrant(benchmark::State& state) {
  ProtocolFixture fixture;
  SiteId owner = 0;
  for (auto _ : state) {
    const SiteId next = 1 - owner;
    VersionVector release_vv, grant_vv;
    benchmark::DoNotOptimize(fixture.sites[owner]->Release({5}, next, &release_vv));
    benchmark::DoNotOptimize(
        fixture.sites[next]->Grant({5}, owner, release_vv, &grant_vv));
    owner = next;
  }
}
BENCHMARK(BM_RemasterReleaseGrant);

}  // namespace
}  // namespace dynamast

BENCHMARK_MAIN();
