// E14 (Figure 8b-d, Appendix F): SmallBank tail latency per transaction
// class — two-row updates (send-payment), single-row updates
// (deposit-checking / transact-savings) and the read-only balance check.
//
// Paper headline: DynaMast's multi-row update tails are ~4x below
// partition-store and ~40x below LEAP; single-master's update tails are
// >7x DynaMast's (load concentration); read-only tails are similar for
// every replicated system.

#include "bench/bench_common.h"

#include "workloads/smallbank.h"

using namespace dynamast;
using namespace dynamast::bench;
using namespace dynamast::workloads;

int main(int argc, char** argv) {
  BenchConfig config;
  config.clients = 48;
  ParseFlags(argc, argv, &config);
  PrintHeader("E14 / Fig 8b-d: SmallBank tail latency by transaction class",
              config);

  for (SystemKind kind : config.systems) {
    SmallBankWorkload::Options wopts;
    wopts.num_accounts = static_cast<uint64_t>(100000 * config.scale);
    wopts.seed = config.seed;
    SmallBankWorkload workload(wopts);
    DeploymentOptions deployment = Deployment(config);
    deployment.weights = selector::StrategyWeights::SmallBank();
    RunResult run = RunOne(kind, deployment, workload,
                           DriverOptions(config, config.clients));
    for (const char* type : {"send-payment", "deposit-checking",
                             "transact-savings", "balance"}) {
      PrintLatencyRow(run.system->name().c_str(), type,
                      run.report.LatencyFor(type));
    }
    std::printf("\n");
    run.system->Shutdown();
  }
  return 0;
}
