// E9 (Figure 5a / Section VI-B6): sensitivity of DynaMast to the four
// strategy hyperparameters (w_balance, w_delay, w_intra_txn,
// w_inter_txn). Each weight in turn is scaled by {0, 0.01, 0.1, 1, 10,
// 100} of its default on a skewed YCSB workload; the routing-fraction
// table for a crippled balance weight is also reported.
//
// Paper headline: with all weights non-zero, throughput stays within a
// narrow band (~8%); w_balance = 0 costs ~40%; raising w_intra from 0 to
// its default gains ~16% (w_inter ~10%) under workload change.

#include "bench/bench_common.h"

#include "core/dynamast_system.h"
#include "workloads/ycsb.h"

using namespace dynamast;
using namespace dynamast::bench;
using namespace dynamast::workloads;

namespace {

double RunWithWeights(const BenchConfig& config,
                      const selector::StrategyWeights& weights,
                      std::vector<double>* routed_fraction) {
  YcsbWorkload::Options wopts;
  wopts.num_keys = static_cast<uint64_t>(100000 * config.scale);
  wopts.rmw_pct = 90;
  wopts.zipfian = true;
  wopts.seed = config.seed;
  YcsbWorkload workload(wopts);
  DeploymentOptions deployment = Deployment(config);
  deployment.weights = weights;
  RunResult run = RunOne(SystemKind::kDynaMast, deployment, workload,
                         DriverOptions(config, config.clients));
  if (routed_fraction != nullptr) {
    auto* dynamast =
        static_cast<core::DynaMastSystem*>(run.system.get());
    const auto& counters = dynamast->site_selector().counters();
    uint64_t total = 0;
    for (const auto& slot : counters.routed_to_site) total += slot->load();
    routed_fraction->clear();
    for (const auto& slot : counters.routed_to_site) {
      routed_fraction->push_back(
          total > 0 ? static_cast<double>(slot->load()) /
                          static_cast<double>(total)
                    : 0.0);
    }
  }
  const double tput = run.report.Throughput();
  run.system->Shutdown();
  return tput;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config;
  config.clients = 48;
  ParseFlags(argc, argv, &config);
  PrintHeader("E9 / Fig 5a: strategy hyperparameter sensitivity (DynaMast)",
              config);

  const selector::StrategyWeights defaults =
      selector::StrategyWeights::Ycsb();
  const std::vector<double> scales = {0.0, 0.1, 1.0, 10.0};
  struct Axis {
    const char* name;
    double selector::StrategyWeights::* member;
  };
  const std::vector<Axis> axes = {
      {"w_balance", &selector::StrategyWeights::balance},
      {"w_delay", &selector::StrategyWeights::delay},
      {"w_intra_txn", &selector::StrategyWeights::intra_txn},
      {"w_inter_txn", &selector::StrategyWeights::inter_txn},
  };

  const double baseline = RunWithWeights(config, defaults, nullptr);
  std::printf("baseline (default weights): %.1f txn/s\n\n", baseline);
  std::printf("%-14s %8s %14s %10s\n", "weight", "scale", "tput(txn/s)",
              "vs base");
  for (const Axis& axis : axes) {
    for (double scale : scales) {
      selector::StrategyWeights weights = defaults;
      weights.*(axis.member) = (defaults.*(axis.member)) * scale;
      // Scaling a zero default is a no-op; substitute an absolute value
      // so the axis is still exercised (the paper's w_inter default for
      // YCSB is 0).
      if (defaults.*(axis.member) == 0.0 && scale > 0) {
        weights.*(axis.member) = scale;
      }
      const double tput = RunWithWeights(config, weights, nullptr);
      std::printf("%-14s %8.2f %14.1f %9.1f%%\n", axis.name, scale, tput,
                  baseline > 0 ? 100.0 * tput / baseline : 0.0);
    }
  }

  // Routing-fraction table with the balance weight crippled to 1% — the
  // paper reports 34% of requests to the hottest site vs 13% to the
  // coldest (vs an even 25% with defaults).
  selector::StrategyWeights crippled = defaults;
  crippled.balance *= 0.01;
  std::vector<double> fractions;
  RunWithWeights(config, crippled, &fractions);
  std::printf("\nrouting fractions with w_balance x0.01:");
  for (size_t s = 0; s < fractions.size(); ++s) {
    std::printf("  site%zu=%.1f%%", s, 100.0 * fractions[s]);
  }
  fractions.clear();
  RunWithWeights(config, defaults, &fractions);
  std::printf("\nrouting fractions with default weights: ");
  for (size_t s = 0; s < fractions.size(); ++s) {
    std::printf("  site%zu=%.1f%%", s, 100.0 * fractions[s]);
  }
  std::printf("\n");
  return 0;
}
