// E10 (Figure 7 / Section VI-B7 / Appendix D): DynaMast overhead
// breakdown on the uniform 50/50 YCSB workload —
//  (a) average write-transaction time split into routing (incl.
//      remastering), network, begin, stored-procedure logic and commit;
//  (b) remastering frequency (% of transactions that required it);
//  (c) network traffic by class (propagation vs remastering metadata vs
//      client requests).
//
// Paper headline: routing <1% (amortized), network ~40%, logic ~45%,
// begin <1%, commit ~1%; <1-3% of transactions remaster; remastering
// traffic is a tiny sliver (3 MB/s) next to refresh propagation
// (155 MB/s).

#include "bench/bench_common.h"

#include "core/dynamast_system.h"
#include "workloads/ycsb.h"

using namespace dynamast;
using namespace dynamast::bench;
using namespace dynamast::workloads;

int main(int argc, char** argv) {
  BenchConfig config;
  config.clients = 48;
  config.seconds = 4.0;
  ParseFlags(argc, argv, &config);
  PrintHeader("E10 / Fig 7: DynaMast latency breakdown & overheads", config);

  YcsbWorkload::Options wopts;
  wopts.num_keys = static_cast<uint64_t>(100000 * config.scale);
  wopts.rmw_pct = 50;
  wopts.seed = config.seed;
  YcsbWorkload workload(wopts);
  DeploymentOptions deployment = Deployment(config);
  deployment.weights = selector::StrategyWeights::Ycsb();
  RunResult run = RunOne(SystemKind::kDynaMast, deployment, workload,
                         DriverOptions(config, config.clients));
  auto* system = static_cast<core::DynaMastSystem*>(run.system.get());

  const core::PhaseStats& phases = system->phase_stats();
  const double routing = phases.routing.MeanMicros();
  const double network = phases.network.MeanMicros();
  const double queueing = phases.queueing.MeanMicros();
  const double begin = phases.begin.MeanMicros();
  const double logic = phases.logic.MeanMicros();
  const double commit = phases.commit.MeanMicros();
  const double total = routing + network + queueing + begin + logic + commit;
  std::printf("write transaction phase breakdown (avg, n=%llu):\n",
              static_cast<unsigned long long>(phases.logic.count()));
  auto row = [&](const char* name, double micros) {
    std::printf("  %-24s %10.3f ms  %5.1f%%\n", name, micros / 1000.0,
                total > 0 ? 100.0 * micros / total : 0.0);
  };
  row("routing (+remastering)", routing);
  row("network", network);
  row("queueing (slot wait)", queueing);
  row("begin (locks+session)", begin);
  row("transaction logic", logic);
  row("commit", commit);

  const auto& counters = system->site_selector().counters();
  std::printf("\nremastering: %llu of %llu routed writes (%.2f%%), "
              "%llu partitions moved\n",
              static_cast<unsigned long long>(counters.remastered_txns.load()),
              static_cast<unsigned long long>(counters.write_routes.load()),
              100.0 * counters.RemasterFraction(),
              static_cast<unsigned long long>(
                  counters.partitions_remastered.load()));

  std::printf("\nnetwork traffic by class:\n%s",
              system->cluster().network().ReportCounters().c_str());
  const double propagation_mb =
      static_cast<double>(system->cluster().network().ByteCount(
          net::TrafficClass::kPropagation)) /
      (1024.0 * 1024.0);
  const double remaster_mb =
      static_cast<double>(system->cluster().network().ByteCount(
          net::TrafficClass::kRemastering)) /
      (1024.0 * 1024.0);
  std::printf("\nremastering bytes / propagation bytes = %.4f\n",
              propagation_mb > 0 ? remaster_mb / propagation_mb : 0.0);
  run.system->Shutdown();
  return 0;
}
