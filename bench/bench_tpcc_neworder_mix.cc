// E5: TPC-C throughput as the percentage of New-Order transactions in the
// mix grows (Stock-Level fixed at 10%, Payment takes the remainder).
//
// Paper headline: when New-Order dominates, DynaMast reaches >15x the
// throughput of partition-store/multi-master, ~20x LEAP, and ~1.64x
// single-master.

#include "bench/bench_common.h"

#include "workloads/tpcc.h"

using namespace dynamast;
using namespace dynamast::bench;
using namespace dynamast::workloads;

int main(int argc, char** argv) {
  BenchConfig config;
  config.sites = 8;
  config.clients = 32;
  config.warmup = 3.0;  // mastership placement converges during warmup
  ParseFlags(argc, argv, &config);
  PrintHeader("E5: TPC-C throughput vs %New-Order in the mix", config);

  const std::vector<uint32_t> new_order_pcts = {15, 45, 90};
  std::printf("%-16s %12s %14s %10s\n", "system", "new-order%", "tput(txn/s)",
              "errors");
  for (SystemKind kind : config.systems) {
    for (uint32_t pct : new_order_pcts) {
      SetPoint("neworder=" + std::to_string(pct));
      TpccWorkload::Options wopts;
      wopts.num_warehouses = config.sites;
      wopts.num_items = static_cast<uint32_t>(1000 * config.scale);
      wopts.customers_per_district = static_cast<uint32_t>(300 * config.scale);
      wopts.new_order_pct = pct;
      wopts.stock_level_pct = 10;
      wopts.payment_pct = 90 - pct;
      wopts.seed = config.seed;
      TpccWorkload workload(wopts);
      DeploymentOptions deployment = Deployment(config);
      deployment.weights = selector::StrategyWeights::Tpcc();
      deployment.static_placement = workload.WarehousePlacement(config.sites);
      RunResult run = RunOne(kind, deployment, workload,
                             DriverOptions(config, config.clients));
      std::printf("%-16s %12u %14.1f %10llu\n", run.system->name().c_str(),
                  pct, run.report.Throughput(),
                  static_cast<unsigned long long>(run.report.errors));
      run.system->Shutdown();
    }
  }
  return 0;
}
