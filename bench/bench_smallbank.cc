// E13 (Figure 8a, Appendix F): SmallBank maximum throughput across all
// five systems — short (<=2 row) transactions where the transaction
// protocol itself dominates execution time.
//
// Paper headline: DynaMast +15% over partition-store, +10% over
// multi-master, +40% over single-master, >6x LEAP.

#include "bench/bench_common.h"

#include "workloads/smallbank.h"

using namespace dynamast;
using namespace dynamast::bench;
using namespace dynamast::workloads;

int main(int argc, char** argv) {
  BenchConfig config;
  config.clients = 48;
  ParseFlags(argc, argv, &config);
  PrintHeader("E13 / Fig 8a: SmallBank throughput", config);

  std::printf("%-16s %14s %10s %12s\n", "system", "tput(txn/s)", "errors",
              "remaster/2pc");
  SetPoint("smallbank");
  for (SystemKind kind : config.systems) {
    SmallBankWorkload::Options wopts;
    wopts.num_accounts = static_cast<uint64_t>(100000 * config.scale);
    wopts.seed = config.seed;
    SmallBankWorkload workload(wopts);
    DeploymentOptions deployment = Deployment(config);
    deployment.weights = selector::StrategyWeights::SmallBank();
    RunResult run = RunOne(kind, deployment, workload,
                           DriverOptions(config, config.clients));
    std::printf("%-16s %14.1f %10llu %12llu\n", run.system->name().c_str(),
                run.report.Throughput(),
                static_cast<unsigned long long>(run.report.errors),
                static_cast<unsigned long long>(run.report.remastered_txns +
                                                run.report.distributed_txns));
    run.system->Shutdown();
  }
  return 0;
}
