// E1 (Figure 4a): YCSB uniform 50/50 RMW/scan — throughput vs number of
// clients, all five systems.
//
// Paper headline: DynaMast ~2.3x partition-store, ~1.3x single-master,
// ~2x LEAP; multi-master between partition-store and single-master.

#include "bench/bench_common.h"

#include "workloads/ycsb.h"

using namespace dynamast;
using namespace dynamast::bench;
using namespace dynamast::workloads;

int main(int argc, char** argv) {
  BenchConfig config;
  config.clients = 48;
  ParseFlags(argc, argv, &config);
  PrintHeader("E1 / Fig 4a: YCSB uniform 50/50 RMW-scan, throughput vs clients",
              config);

  const std::vector<uint32_t> client_counts = {
      std::max(1u, config.clients / 4), std::max(1u, config.clients / 2),
      config.clients};

  std::printf("%-16s %8s %14s %10s %12s\n", "system", "clients", "tput(txn/s)",
              "errors", "remaster/2pc");
  for (SystemKind kind : config.systems) {
    for (uint32_t clients : client_counts) {
      SetPoint("clients=" + std::to_string(clients));
      YcsbWorkload::Options wopts;
      wopts.num_keys = static_cast<uint64_t>(100000 * config.scale);
      wopts.rmw_pct = 50;
      wopts.seed = config.seed;
      YcsbWorkload workload(wopts);
      DeploymentOptions deployment = Deployment(config);
      deployment.weights = selector::StrategyWeights::Ycsb();
      RunResult run =
          RunOne(kind, deployment, workload, DriverOptions(config, clients));
      std::printf("%-16s %8u %14.1f %10llu %12llu\n",
                  run.system->name().c_str(), clients,
                  run.report.Throughput(),
                  static_cast<unsigned long long>(run.report.errors),
                  static_cast<unsigned long long>(
                      run.report.remastered_txns +
                      run.report.distributed_txns));
      run.system->Shutdown();
    }
  }
  return 0;
}
