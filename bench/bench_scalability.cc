// E12 (Figure 6c, Appendix E): DynaMast throughput as the number of data
// sites scales 4 -> 8 -> 12 -> 16 on the uniform 50/50 YCSB workload
// (clients scale with sites to keep per-site offered load constant).
//
// Paper headline: >3x throughput from 4 to 16 sites (near-linear); the
// growth rate tapers as full replicas must still apply every update.

#include "bench/bench_common.h"

#include "workloads/ycsb.h"

using namespace dynamast;
using namespace dynamast::bench;
using namespace dynamast::workloads;

int main(int argc, char** argv) {
  BenchConfig config;
  config.clients = 6;  // per site
  // Heavier simulated costs keep the *real* host core below saturation
  // even at 16 simulated sites — otherwise the host, not the simulated
  // cluster, is the bottleneck and scaling inverts (see DESIGN.md on the
  // single-core substitution).
  config.write_us = 1500;
  config.read_us = 20;
  ParseFlags(argc, argv, &config);
  PrintHeader("E12 / Fig 6c: DynaMast scalability with data sites", config);

  const std::vector<uint32_t> site_counts = {4, 8, 12, 16};
  std::printf("%8s %8s %14s %14s\n", "sites", "clients", "tput(txn/s)",
              "vs 4 sites");
  double base = 0;
  for (uint32_t sites : site_counts) {
    BenchConfig point = config;
    point.sites = sites;
    const uint32_t clients = config.clients * sites;
    YcsbWorkload::Options wopts;
    wopts.num_keys = static_cast<uint64_t>(100000 * config.scale);
    wopts.rmw_pct = 50;
    wopts.seed = config.seed;
    YcsbWorkload workload(wopts);
    DeploymentOptions deployment = Deployment(point);
    deployment.weights = selector::StrategyWeights::Ycsb();
    RunResult run = RunOne(SystemKind::kDynaMast, deployment, workload,
                           DriverOptions(point, clients));
    const double tput = run.report.Throughput();
    if (sites == site_counts.front()) base = tput;
    std::printf("%8u %8u %14.1f %13.2fx\n", sites, clients, tput,
                base > 0 ? tput / base : 0.0);
    run.system->Shutdown();
  }
  return 0;
}
