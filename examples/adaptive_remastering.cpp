// Example: watching DynaMast adapt mastership to a workload it has never
// seen (the Section VI-B5 scenario in miniature).
//
// Mastership starts scattered round-robin; one group of clients hammers a
// set of co-accessed partitions. The site selector's statistics learn the
// co-access correlations and its strategy co-locates the masters, after
// which remastering stops — the cost was amortized. The demo prints the
// master location of the hot partitions and the remastering counters as
// the run progresses.
//
//   ./build/examples/adaptive_remastering

#include <cstdio>
#include <thread>
#include <vector>

#include "core/dynamast_system.h"
#include "workloads/ycsb.h"

using namespace dynamast;
using workloads::YcsbWorkload;

namespace {

constexpr TableId kTable = 0;

void PrintPlacement(core::DynaMastSystem& system,
                    const std::vector<PartitionId>& partitions,
                    const char* when) {
  std::printf("%-22s", when);
  for (PartitionId p : partitions) {
    std::printf("  p%llu->s%u", static_cast<unsigned long long>(p),
                system.site_selector().partition_map().MasterOfLocked(p));
  }
  const auto& counters = system.site_selector().counters();
  std::printf("   [%llu remasterings so far]\n",
              static_cast<unsigned long long>(
                  counters.remastered_txns.load()));
}

}  // namespace

int main() {
  RangePartitioner partitioner(100, 40);  // 4000 keys, 40 partitions

  core::DynaMastSystem::Options options;
  options.cluster.num_sites = 4;
  options.cluster.network.one_way_latency = std::chrono::microseconds(50);
  options.cluster.site.write_op_cost = std::chrono::microseconds(50);
  // Localization-leaning weights: this demo drives 100% of the load at
  // one co-accessed group, so a strong balance weight would (correctly!)
  // keep splitting it apart. With intra-transaction co-access dominant,
  // the strategy converges to a single master site for the group.
  options.selector.weights = selector::StrategyWeights{0.5, 0.5, 3.0, 1.0};
  options.selector.sample_rate = 1.0;
  options.placement = core::InitialPlacement::kRoundRobin;
  core::DynaMastSystem dynamast(options, &partitioner);

  (void)dynamast.CreateTable(kTable);
  for (uint64_t key = 0; key < 4000; ++key) {
    (void)dynamast.LoadRow(RecordKey{kTable, key},
                           YcsbWorkload::MakeValue(0, 64));
  }
  dynamast.Seal();

  // The hot, co-accessed partition group (initially on 4 different sites).
  const std::vector<PartitionId> hot = {8, 9, 10, 11};
  PrintPlacement(dynamast, hot, "initial (round-robin)");

  core::ClientState client;
  client.id = 1;
  Random rng(7);
  for (int round = 1; round <= 60; ++round) {
    // Each transaction updates one key in each of two random hot
    // partitions — intra-transaction co-access across the group.
    const PartitionId a = hot[rng.Uniform(hot.size())];
    PartitionId b = hot[rng.Uniform(hot.size())];
    if (b == a) b = hot[(rng.Uniform(3) + 1 + (a - hot[0])) % hot.size()];
    const RecordKey ka{kTable, a * 100 + rng.Uniform(100)};
    const RecordKey kb{kTable, b * 100 + rng.Uniform(100)};
    core::TxnProfile profile;
    profile.write_keys = {ka, kb};
    auto logic = [&](core::TxnContext& ctx) -> Status {
      for (const RecordKey& key : {ka, kb}) {
        std::string value;
        Status s = ctx.Get(key, &value);
        if (!s.ok()) return s;
        s = ctx.Put(key, YcsbWorkload::MakeValue(
                             YcsbWorkload::ValueCounter(value) + 1, 64));
        if (!s.ok()) return s;
      }
      return Status::OK();
    };
    core::TxnResult result;
    if (auto s = dynamast.Execute(client, profile, logic, &result); !s.ok()) {
      std::fprintf(stderr, "txn: %s\n", s.ToString().c_str());
      return 1;
    }
    if (round == 5 || round == 20 || round == 60) {
      char label[32];
      std::snprintf(label, sizeof(label), "after %d txns", round);
      PrintPlacement(dynamast, hot, label);
    }
  }

  // All hot partitions should now master at a single site, and the
  // remastering counter should have stopped moving long ago.
  const SiteId owner =
      dynamast.site_selector().partition_map().MasterOfLocked(hot[0]);
  bool co_located = true;
  for (PartitionId p : hot) {
    co_located &=
        dynamast.site_selector().partition_map().MasterOfLocked(p) == owner;
  }
  std::printf("\nhot group co-located at one site: %s\n",
              co_located ? "yes" : "no");
  dynamast.Shutdown();
  return co_located ? 0 : 1;
}
