// Example: running the TPC-C workload through the benchmark driver on
// DynaMast and printing per-transaction-class latency — the paper's
// Section VI-B2 scenario in miniature.
//
//   ./build/examples/tpcc_demo

#include <cstdio>

#include "core/dynamast_system.h"
#include "workloads/driver.h"
#include "workloads/tpcc.h"

using namespace dynamast;
using namespace dynamast::workloads;

int main() {
  TpccWorkload::Options tpcc_options;
  tpcc_options.num_warehouses = 4;
  tpcc_options.num_items = 500;
  tpcc_options.customers_per_district = 100;
  TpccWorkload tpcc(tpcc_options);

  core::DynaMastSystem::Options options;
  options.cluster.num_sites = 4;
  options.cluster.network.one_way_latency = std::chrono::microseconds(100);
  options.selector.weights = selector::StrategyWeights::Tpcc();
  core::DynaMastSystem dynamast(options, &tpcc.partitioner());

  std::printf("loading %u warehouses...\n", tpcc_options.num_warehouses);
  if (auto s = tpcc.Load(dynamast); !s.ok()) {
    std::fprintf(stderr, "load: %s\n", s.ToString().c_str());
    return 1;
  }
  dynamast.Seal();

  Driver::Options driver_options;
  driver_options.num_clients = 16;
  driver_options.warmup = std::chrono::milliseconds(1000);
  driver_options.measure = std::chrono::milliseconds(3000);
  Driver driver(driver_options);
  std::printf("running 16 clients for 3s (45/45/10 "
              "new-order/payment/stock-level)...\n\n");
  Driver::Report report = driver.Run(dynamast, tpcc);

  std::printf("%s\n\n", report.Summary().c_str());
  for (const auto& [type, count] : report.committed_by_type) {
    const LatencyRecorder* latency = report.LatencyFor(type);
    std::printf("  %-14s %6llu txns  %s\n", type.c_str(),
                static_cast<unsigned long long>(count),
                latency != nullptr ? latency->Summary().c_str() : "");
  }

  const auto& counters = dynamast.site_selector().counters();
  std::printf("\nremastering: %.2f%% of write transactions\n",
              100.0 * counters.RemasterFraction());
  std::printf("mastered partitions per site:");
  auto per_site =
      dynamast.site_selector().partition_map().MasterCounts(4);
  for (size_t s = 0; s < per_site.size(); ++s) {
    std::printf("  site%zu=%zu", s, per_site[s]);
  }
  std::printf("\n");
  dynamast.Shutdown();
  return 0;
}
