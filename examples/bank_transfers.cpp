// Example: a small banking application on DynaMast (SmallBank-style).
//
// Demonstrates the public API on a realistic scenario: concurrent client
// threads transfer money between accounts whose partitions master at
// different sites; the site selector co-locates (remasters) the touched
// partitions so every transfer commits at one site; an auditing read-only
// transaction runs at a replica on a consistent snapshot and verifies that
// money is conserved.
//
//   ./build/examples/bank_transfers

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/dynamast_system.h"
#include "workloads/smallbank.h"

using namespace dynamast;
using workloads::SmallBankWorkload;

int main() {
  SmallBankWorkload::Options bank_options;
  bank_options.num_accounts = 20'000;
  bank_options.accounts_per_partition = 100;
  SmallBankWorkload bank(bank_options);

  core::DynaMastSystem::Options options;
  options.cluster.num_sites = 4;
  options.cluster.network.one_way_latency = std::chrono::microseconds(50);
  options.cluster.site.write_op_cost = std::chrono::microseconds(50);
  options.selector.weights = selector::StrategyWeights::SmallBank();
  core::DynaMastSystem dynamast(options, &bank.partitioner());

  if (auto s = bank.Load(dynamast); !s.ok()) {
    std::fprintf(stderr, "load: %s\n", s.ToString().c_str());
    return 1;
  }
  dynamast.Seal();

  constexpr int kThreads = 8;
  constexpr int kTransfersPerThread = 100;
  std::atomic<uint64_t> committed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      core::ClientState client;
      client.id = t + 1;
      Random rng(t + 100);
      for (int i = 0; i < kTransfersPerThread; ++i) {
        const uint64_t from = rng.Uniform(bank_options.num_accounts);
        uint64_t to = rng.Uniform(bank_options.num_accounts);
        if (to == from) to = (to + 1) % bank_options.num_accounts;
        const double amount = 1.0 + rng.Uniform(100);

        const RecordKey from_key{SmallBankWorkload::kChecking, from};
        const RecordKey to_key{SmallBankWorkload::kChecking, to};
        core::TxnProfile profile;
        profile.write_keys = {from_key, to_key};
        auto logic = [&](core::TxnContext& ctx) -> Status {
          std::string value;
          Status s = ctx.Get(from_key, &value);
          if (!s.ok()) return s;
          const double from_balance = SmallBankWorkload::BalanceOf(value);
          s = ctx.Get(to_key, &value);
          if (!s.ok()) return s;
          const double to_balance = SmallBankWorkload::BalanceOf(value);
          s = ctx.Put(from_key,
                      SmallBankWorkload::MakeBalance(from_balance - amount));
          if (!s.ok()) return s;
          return ctx.Put(to_key,
                         SmallBankWorkload::MakeBalance(to_balance + amount));
        };
        core::TxnResult result;
        if (dynamast.Execute(client, profile, logic, &result).ok()) {
          committed.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  std::printf("committed %llu of %d transfers\n",
              static_cast<unsigned long long>(committed.load()),
              kThreads * kTransfersPerThread);

  // Audit at a replica: one consistent snapshot over every account.
  core::ClientState auditor;
  auditor.id = 999;
  core::TxnProfile audit;
  audit.read_only = true;
  double total = 0;
  auto audit_logic = [&](core::TxnContext& ctx) -> Status {
    for (uint64_t account = 0; account < bank_options.num_accounts;
         ++account) {
      std::string value;
      Status s = ctx.Get(RecordKey{SmallBankWorkload::kChecking, account},
                         &value);
      if (!s.ok()) return s;
      total += SmallBankWorkload::BalanceOf(value);
      s = ctx.Get(RecordKey{SmallBankWorkload::kSavings, account}, &value);
      if (!s.ok()) return s;
      total += SmallBankWorkload::BalanceOf(value);
    }
    return Status::OK();
  };
  core::TxnResult result;
  if (auto s = dynamast.Execute(auditor, audit, audit_logic, &result);
      !s.ok()) {
    std::fprintf(stderr, "audit: %s\n", s.ToString().c_str());
    return 1;
  }
  const double expected =
      bank_options.num_accounts * 2 * bank_options.initial_balance;
  std::printf("audit at site %u: total=%.2f expected=%.2f %s\n",
              result.executed_at, total, expected,
              (total > expected - 0.01 && total < expected + 0.01)
                  ? "(conserved)"
                  : "(MISMATCH!)");

  const auto& counters = dynamast.site_selector().counters();
  std::printf("remastered %llu of %llu write routes (%.1f%%)\n",
              static_cast<unsigned long long>(counters.remastered_txns.load()),
              static_cast<unsigned long long>(counters.write_routes.load()),
              100.0 * counters.RemasterFraction());
  dynamast.Shutdown();
  return 0;
}
