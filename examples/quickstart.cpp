// Quickstart: bring up a 3-site DynaMast deployment, run a few
// transactions by hand, and watch the dynamic mastering protocol work —
// including the exact release/grant remastering sequence of Figure 1c and
// the version-vector bookkeeping of Figure 2.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <string>

#include "common/partitioner.h"
#include "core/dynamast_system.h"
#include "workloads/ycsb.h"

using namespace dynamast;

int main() {
  // A tiny key space: 1000 keys in partitions of 100 keys -> 10 partitions.
  RangePartitioner partitioner(/*keys_per_partition=*/100,
                               /*num_partitions=*/10);

  core::DynaMastSystem::Options options;
  options.cluster.num_sites = 3;
  // Keep the demo snappy: small simulated network latency.
  options.cluster.network.one_way_latency = std::chrono::microseconds(50);
  options.selector.weights = selector::StrategyWeights::Ycsb();

  core::DynaMastSystem dynamast(options, &partitioner);

  // Schema + data: one table, 1000 rows, fully replicated at every site.
  constexpr TableId kTable = 0;
  if (auto s = dynamast.CreateTable(kTable); !s.ok()) {
    std::fprintf(stderr, "create table: %s\n", s.ToString().c_str());
    return 1;
  }
  for (uint64_t key = 0; key < 1000; ++key) {
    (void)dynamast.LoadRow(RecordKey{kTable, key},
                           workloads::YcsbWorkload::MakeValue(0, 64));
  }
  dynamast.Seal();  // install round-robin mastership, start appliers

  std::printf("initial mastership (partition -> site):\n  ");
  for (PartitionId p = 0; p < 10; ++p) {
    std::printf("p%llu->s%u  ", static_cast<unsigned long long>(p),
                dynamast.site_selector().partition_map().MasterOfLocked(p));
  }
  std::printf("\n\n");

  core::ClientState client;
  client.id = 1;

  // Transaction T1 updates keys 50 (partition 0) and 150 (partition 1).
  // Partitions 0 and 1 master at different sites, so the site selector
  // remasters them to one site before execution — metadata only, no data
  // movement.
  core::TxnProfile profile;
  profile.write_keys = {RecordKey{kTable, 50}, RecordKey{kTable, 150}};
  core::TxnResult result;
  auto logic = [](core::TxnContext& ctx) -> Status {
    for (uint64_t key : {50ull, 150ull}) {
      std::string value;
      if (auto s = ctx.Get(RecordKey{kTable, key}, &value); !s.ok()) return s;
      const uint64_t counter = workloads::YcsbWorkload::ValueCounter(value);
      if (auto s = ctx.Put(RecordKey{kTable, key},
                           workloads::YcsbWorkload::MakeValue(counter + 1, 64));
          !s.ok()) {
        return s;
      }
    }
    return Status::OK();
  };

  Status s = dynamast.Execute(client, profile, logic, &result);
  std::printf("T1 (write {50, 150}): %s, executed at site %u, remastered=%s\n",
              s.ToString().c_str(), result.executed_at,
              result.remastered ? "yes" : "no");

  // T2 writes the same keys: the previous remastering is amortized —
  // everything is already co-located, no transfer needed.
  s = dynamast.Execute(client, profile, logic, &result);
  std::printf("T2 (write {50, 150}): %s, executed at site %u, remastered=%s\n",
              s.ToString().c_str(), result.executed_at,
              result.remastered ? "yes" : "no");

  // T3: a read-only scan of partition 0 runs at any session-fresh replica
  // without any remastering, and — thanks to strong-session SI — sees T1
  // and T2's writes.
  core::TxnProfile read_profile;
  read_profile.read_only = true;
  for (uint64_t key = 0; key < 100; ++key) {
    read_profile.read_keys.push_back(RecordKey{kTable, key});
  }
  uint64_t counter_of_50 = 0;
  auto read_logic = [&counter_of_50](core::TxnContext& ctx) -> Status {
    std::string value;
    if (auto s = ctx.Get(RecordKey{kTable, 50}, &value); !s.ok()) return s;
    counter_of_50 = workloads::YcsbWorkload::ValueCounter(value);
    return Status::OK();
  };
  s = dynamast.Execute(client, read_profile, read_logic, &result);
  std::printf("T3 (read-only):       %s, executed at site %u, key 50 counter=%llu"
              " (expect 2)\n",
              s.ToString().c_str(), result.executed_at,
              static_cast<unsigned long long>(counter_of_50));

  const auto& counters = dynamast.site_selector().counters();
  std::printf("\nselector: %llu write routes, %llu required remastering "
              "(%.1f%%), %llu partitions moved\n",
              static_cast<unsigned long long>(counters.write_routes.load()),
              static_cast<unsigned long long>(counters.remastered_txns.load()),
              100.0 * counters.RemasterFraction(),
              static_cast<unsigned long long>(
                  counters.partitions_remastered.load()));
  for (SiteId i = 0; i < 3; ++i) {
    std::printf("site %u svv=%s\n", i,
                dynamast.cluster().site(i)->CurrentVersion().ToString().c_str());
  }
  dynamast.Shutdown();
  std::printf("\nquickstart OK\n");
  return 0;
}
