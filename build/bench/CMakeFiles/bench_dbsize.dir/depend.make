# Empty dependencies file for bench_dbsize.
# This may be replaced when dependencies are built.
