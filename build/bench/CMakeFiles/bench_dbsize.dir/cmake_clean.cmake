file(REMOVE_RECURSE
  "CMakeFiles/bench_dbsize.dir/bench_dbsize.cc.o"
  "CMakeFiles/bench_dbsize.dir/bench_dbsize.cc.o.d"
  "bench_dbsize"
  "bench_dbsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dbsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
