file(REMOVE_RECURSE
  "CMakeFiles/bench_tpcc_payment_crosswh.dir/bench_tpcc_payment_crosswh.cc.o"
  "CMakeFiles/bench_tpcc_payment_crosswh.dir/bench_tpcc_payment_crosswh.cc.o.d"
  "bench_tpcc_payment_crosswh"
  "bench_tpcc_payment_crosswh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tpcc_payment_crosswh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
