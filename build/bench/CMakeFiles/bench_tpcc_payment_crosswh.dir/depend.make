# Empty dependencies file for bench_tpcc_payment_crosswh.
# This may be replaced when dependencies are built.
