# Empty dependencies file for bench_tpcc_stocklevel_latency.
# This may be replaced when dependencies are built.
