# Empty dependencies file for bench_tpcc_neworder_mix.
# This may be replaced when dependencies are built.
