file(REMOVE_RECURSE
  "CMakeFiles/bench_tpcc_neworder_mix.dir/bench_tpcc_neworder_mix.cc.o"
  "CMakeFiles/bench_tpcc_neworder_mix.dir/bench_tpcc_neworder_mix.cc.o.d"
  "bench_tpcc_neworder_mix"
  "bench_tpcc_neworder_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tpcc_neworder_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
