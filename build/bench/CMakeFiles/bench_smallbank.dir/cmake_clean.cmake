file(REMOVE_RECURSE
  "CMakeFiles/bench_smallbank.dir/bench_smallbank.cc.o"
  "CMakeFiles/bench_smallbank.dir/bench_smallbank.cc.o.d"
  "bench_smallbank"
  "bench_smallbank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_smallbank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
