# Empty dependencies file for bench_smallbank.
# This may be replaced when dependencies are built.
