file(REMOVE_RECURSE
  "CMakeFiles/bench_smallbank_tails.dir/bench_smallbank_tails.cc.o"
  "CMakeFiles/bench_smallbank_tails.dir/bench_smallbank_tails.cc.o.d"
  "bench_smallbank_tails"
  "bench_smallbank_tails.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_smallbank_tails.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
