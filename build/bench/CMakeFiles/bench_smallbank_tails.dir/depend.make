# Empty dependencies file for bench_smallbank_tails.
# This may be replaced when dependencies are built.
