file(REMOVE_RECURSE
  "CMakeFiles/bench_tpcc_payment.dir/bench_tpcc_payment.cc.o"
  "CMakeFiles/bench_tpcc_payment.dir/bench_tpcc_payment.cc.o.d"
  "bench_tpcc_payment"
  "bench_tpcc_payment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tpcc_payment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
