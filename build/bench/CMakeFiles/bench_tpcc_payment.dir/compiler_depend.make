# Empty compiler generated dependencies file for bench_tpcc_payment.
# This may be replaced when dependencies are built.
