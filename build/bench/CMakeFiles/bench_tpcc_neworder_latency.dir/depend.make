# Empty dependencies file for bench_tpcc_neworder_latency.
# This may be replaced when dependencies are built.
