file(REMOVE_RECURSE
  "CMakeFiles/bench_tpcc_neworder_latency.dir/bench_tpcc_neworder_latency.cc.o"
  "CMakeFiles/bench_tpcc_neworder_latency.dir/bench_tpcc_neworder_latency.cc.o.d"
  "bench_tpcc_neworder_latency"
  "bench_tpcc_neworder_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tpcc_neworder_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
