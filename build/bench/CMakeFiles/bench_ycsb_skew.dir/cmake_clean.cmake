file(REMOVE_RECURSE
  "CMakeFiles/bench_ycsb_skew.dir/bench_ycsb_skew.cc.o"
  "CMakeFiles/bench_ycsb_skew.dir/bench_ycsb_skew.cc.o.d"
  "bench_ycsb_skew"
  "bench_ycsb_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ycsb_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
