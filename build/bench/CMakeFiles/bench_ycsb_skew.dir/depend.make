# Empty dependencies file for bench_ycsb_skew.
# This may be replaced when dependencies are built.
