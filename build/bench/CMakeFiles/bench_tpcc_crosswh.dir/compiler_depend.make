# Empty compiler generated dependencies file for bench_tpcc_crosswh.
# This may be replaced when dependencies are built.
