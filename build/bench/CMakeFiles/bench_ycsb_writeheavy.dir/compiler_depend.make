# Empty compiler generated dependencies file for bench_ycsb_writeheavy.
# This may be replaced when dependencies are built.
