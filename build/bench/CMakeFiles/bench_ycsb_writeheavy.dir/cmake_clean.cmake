file(REMOVE_RECURSE
  "CMakeFiles/bench_ycsb_writeheavy.dir/bench_ycsb_writeheavy.cc.o"
  "CMakeFiles/bench_ycsb_writeheavy.dir/bench_ycsb_writeheavy.cc.o.d"
  "bench_ycsb_writeheavy"
  "bench_ycsb_writeheavy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ycsb_writeheavy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
