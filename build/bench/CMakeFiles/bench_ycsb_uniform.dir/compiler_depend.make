# Empty compiler generated dependencies file for bench_ycsb_uniform.
# This may be replaced when dependencies are built.
