file(REMOVE_RECURSE
  "CMakeFiles/bench_ycsb_uniform.dir/bench_ycsb_uniform.cc.o"
  "CMakeFiles/bench_ycsb_uniform.dir/bench_ycsb_uniform.cc.o.d"
  "bench_ycsb_uniform"
  "bench_ycsb_uniform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ycsb_uniform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
