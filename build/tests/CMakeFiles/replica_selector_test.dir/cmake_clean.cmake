file(REMOVE_RECURSE
  "CMakeFiles/replica_selector_test.dir/replica_selector_test.cc.o"
  "CMakeFiles/replica_selector_test.dir/replica_selector_test.cc.o.d"
  "replica_selector_test"
  "replica_selector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replica_selector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
