# Empty compiler generated dependencies file for replica_selector_test.
# This may be replaced when dependencies are built.
