# Empty dependencies file for dynamast_system_test.
# This may be replaced when dependencies are built.
