file(REMOVE_RECURSE
  "CMakeFiles/dynamast_system_test.dir/dynamast_system_test.cc.o"
  "CMakeFiles/dynamast_system_test.dir/dynamast_system_test.cc.o.d"
  "dynamast_system_test"
  "dynamast_system_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamast_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
