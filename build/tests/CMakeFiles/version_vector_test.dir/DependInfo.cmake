
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/version_vector_test.cc" "tests/CMakeFiles/version_vector_test.dir/version_vector_test.cc.o" "gcc" "tests/CMakeFiles/version_vector_test.dir/version_vector_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dynamast_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/dynamast_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/dynamast_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/selector/CMakeFiles/dynamast_selector.dir/DependInfo.cmake"
  "/root/repo/build/src/site/CMakeFiles/dynamast_site.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dynamast_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/log/CMakeFiles/dynamast_log.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dynamast_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dynamast_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
