file(REMOVE_RECURSE
  "CMakeFiles/site_manager_test.dir/site_manager_test.cc.o"
  "CMakeFiles/site_manager_test.dir/site_manager_test.cc.o.d"
  "site_manager_test"
  "site_manager_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/site_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
