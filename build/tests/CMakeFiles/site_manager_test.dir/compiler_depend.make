# Empty compiler generated dependencies file for site_manager_test.
# This may be replaced when dependencies are built.
