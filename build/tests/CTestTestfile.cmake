# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;13;dynamast_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(version_vector_test "/root/repo/build/tests/version_vector_test")
set_tests_properties(version_vector_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;14;dynamast_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(storage_test "/root/repo/build/tests/storage_test")
set_tests_properties(storage_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;15;dynamast_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(log_test "/root/repo/build/tests/log_test")
set_tests_properties(log_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;16;dynamast_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(site_manager_test "/root/repo/build/tests/site_manager_test")
set_tests_properties(site_manager_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;17;dynamast_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(selector_test "/root/repo/build/tests/selector_test")
set_tests_properties(selector_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;18;dynamast_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(dynamast_system_test "/root/repo/build/tests/dynamast_system_test")
set_tests_properties(dynamast_system_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;19;dynamast_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(baselines_test "/root/repo/build/tests/baselines_test")
set_tests_properties(baselines_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;20;dynamast_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(workloads_test "/root/repo/build/tests/workloads_test")
set_tests_properties(workloads_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;21;dynamast_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;22;dynamast_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(net_and_misc_test "/root/repo/build/tests/net_and_misc_test")
set_tests_properties(net_and_misc_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;23;dynamast_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(replica_selector_test "/root/repo/build/tests/replica_selector_test")
set_tests_properties(replica_selector_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;24;dynamast_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(consistency_property_test "/root/repo/build/tests/consistency_property_test")
set_tests_properties(consistency_property_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;25;dynamast_add_test;/root/repo/tests/CMakeLists.txt;0;")
