# Empty compiler generated dependencies file for dynamast_baselines.
# This may be replaced when dependencies are built.
