file(REMOVE_RECURSE
  "libdynamast_baselines.a"
)
