file(REMOVE_RECURSE
  "CMakeFiles/dynamast_baselines.dir/leap_system.cc.o"
  "CMakeFiles/dynamast_baselines.dir/leap_system.cc.o.d"
  "CMakeFiles/dynamast_baselines.dir/partitioned_system.cc.o"
  "CMakeFiles/dynamast_baselines.dir/partitioned_system.cc.o.d"
  "libdynamast_baselines.a"
  "libdynamast_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamast_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
