# Empty dependencies file for dynamast_site.
# This may be replaced when dependencies are built.
