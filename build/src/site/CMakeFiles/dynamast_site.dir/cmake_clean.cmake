file(REMOVE_RECURSE
  "CMakeFiles/dynamast_site.dir/admission_gate.cc.o"
  "CMakeFiles/dynamast_site.dir/admission_gate.cc.o.d"
  "CMakeFiles/dynamast_site.dir/site_manager.cc.o"
  "CMakeFiles/dynamast_site.dir/site_manager.cc.o.d"
  "CMakeFiles/dynamast_site.dir/transaction.cc.o"
  "CMakeFiles/dynamast_site.dir/transaction.cc.o.d"
  "libdynamast_site.a"
  "libdynamast_site.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamast_site.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
