file(REMOVE_RECURSE
  "libdynamast_site.a"
)
