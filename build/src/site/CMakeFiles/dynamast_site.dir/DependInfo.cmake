
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/site/admission_gate.cc" "src/site/CMakeFiles/dynamast_site.dir/admission_gate.cc.o" "gcc" "src/site/CMakeFiles/dynamast_site.dir/admission_gate.cc.o.d"
  "/root/repo/src/site/site_manager.cc" "src/site/CMakeFiles/dynamast_site.dir/site_manager.cc.o" "gcc" "src/site/CMakeFiles/dynamast_site.dir/site_manager.cc.o.d"
  "/root/repo/src/site/transaction.cc" "src/site/CMakeFiles/dynamast_site.dir/transaction.cc.o" "gcc" "src/site/CMakeFiles/dynamast_site.dir/transaction.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dynamast_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dynamast_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/log/CMakeFiles/dynamast_log.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dynamast_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
