file(REMOVE_RECURSE
  "libdynamast_core.a"
)
