file(REMOVE_RECURSE
  "CMakeFiles/dynamast_core.dir/cluster.cc.o"
  "CMakeFiles/dynamast_core.dir/cluster.cc.o.d"
  "CMakeFiles/dynamast_core.dir/dynamast_system.cc.o"
  "CMakeFiles/dynamast_core.dir/dynamast_system.cc.o.d"
  "libdynamast_core.a"
  "libdynamast_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamast_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
