# Empty compiler generated dependencies file for dynamast_core.
# This may be replaced when dependencies are built.
