file(REMOVE_RECURSE
  "CMakeFiles/dynamast_storage.dir/lock_manager.cc.o"
  "CMakeFiles/dynamast_storage.dir/lock_manager.cc.o.d"
  "CMakeFiles/dynamast_storage.dir/record.cc.o"
  "CMakeFiles/dynamast_storage.dir/record.cc.o.d"
  "CMakeFiles/dynamast_storage.dir/row_buffer.cc.o"
  "CMakeFiles/dynamast_storage.dir/row_buffer.cc.o.d"
  "CMakeFiles/dynamast_storage.dir/storage_engine.cc.o"
  "CMakeFiles/dynamast_storage.dir/storage_engine.cc.o.d"
  "CMakeFiles/dynamast_storage.dir/table.cc.o"
  "CMakeFiles/dynamast_storage.dir/table.cc.o.d"
  "libdynamast_storage.a"
  "libdynamast_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamast_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
