# Empty compiler generated dependencies file for dynamast_storage.
# This may be replaced when dependencies are built.
