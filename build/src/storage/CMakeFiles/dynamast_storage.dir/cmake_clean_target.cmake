file(REMOVE_RECURSE
  "libdynamast_storage.a"
)
