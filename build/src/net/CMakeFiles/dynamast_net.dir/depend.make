# Empty dependencies file for dynamast_net.
# This may be replaced when dependencies are built.
