file(REMOVE_RECURSE
  "CMakeFiles/dynamast_net.dir/sim_network.cc.o"
  "CMakeFiles/dynamast_net.dir/sim_network.cc.o.d"
  "libdynamast_net.a"
  "libdynamast_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamast_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
