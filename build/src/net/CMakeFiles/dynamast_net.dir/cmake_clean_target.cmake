file(REMOVE_RECURSE
  "libdynamast_net.a"
)
