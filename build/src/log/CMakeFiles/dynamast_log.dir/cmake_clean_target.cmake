file(REMOVE_RECURSE
  "libdynamast_log.a"
)
