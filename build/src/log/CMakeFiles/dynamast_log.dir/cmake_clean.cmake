file(REMOVE_RECURSE
  "CMakeFiles/dynamast_log.dir/durable_log.cc.o"
  "CMakeFiles/dynamast_log.dir/durable_log.cc.o.d"
  "CMakeFiles/dynamast_log.dir/log_record.cc.o"
  "CMakeFiles/dynamast_log.dir/log_record.cc.o.d"
  "libdynamast_log.a"
  "libdynamast_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamast_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
