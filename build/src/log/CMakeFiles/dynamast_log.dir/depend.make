# Empty dependencies file for dynamast_log.
# This may be replaced when dependencies are built.
