file(REMOVE_RECURSE
  "libdynamast_workloads.a"
)
