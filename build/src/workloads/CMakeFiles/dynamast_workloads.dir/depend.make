# Empty dependencies file for dynamast_workloads.
# This may be replaced when dependencies are built.
