file(REMOVE_RECURSE
  "CMakeFiles/dynamast_workloads.dir/driver.cc.o"
  "CMakeFiles/dynamast_workloads.dir/driver.cc.o.d"
  "CMakeFiles/dynamast_workloads.dir/smallbank.cc.o"
  "CMakeFiles/dynamast_workloads.dir/smallbank.cc.o.d"
  "CMakeFiles/dynamast_workloads.dir/system_factory.cc.o"
  "CMakeFiles/dynamast_workloads.dir/system_factory.cc.o.d"
  "CMakeFiles/dynamast_workloads.dir/tpcc.cc.o"
  "CMakeFiles/dynamast_workloads.dir/tpcc.cc.o.d"
  "CMakeFiles/dynamast_workloads.dir/ycsb.cc.o"
  "CMakeFiles/dynamast_workloads.dir/ycsb.cc.o.d"
  "libdynamast_workloads.a"
  "libdynamast_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamast_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
