file(REMOVE_RECURSE
  "CMakeFiles/dynamast_common.dir/latency_recorder.cc.o"
  "CMakeFiles/dynamast_common.dir/latency_recorder.cc.o.d"
  "CMakeFiles/dynamast_common.dir/random.cc.o"
  "CMakeFiles/dynamast_common.dir/random.cc.o.d"
  "CMakeFiles/dynamast_common.dir/status.cc.o"
  "CMakeFiles/dynamast_common.dir/status.cc.o.d"
  "CMakeFiles/dynamast_common.dir/version_vector.cc.o"
  "CMakeFiles/dynamast_common.dir/version_vector.cc.o.d"
  "libdynamast_common.a"
  "libdynamast_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamast_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
