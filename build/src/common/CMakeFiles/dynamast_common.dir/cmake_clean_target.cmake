file(REMOVE_RECURSE
  "libdynamast_common.a"
)
