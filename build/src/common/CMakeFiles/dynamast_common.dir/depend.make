# Empty dependencies file for dynamast_common.
# This may be replaced when dependencies are built.
