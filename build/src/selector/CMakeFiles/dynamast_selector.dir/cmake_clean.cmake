file(REMOVE_RECURSE
  "CMakeFiles/dynamast_selector.dir/access_statistics.cc.o"
  "CMakeFiles/dynamast_selector.dir/access_statistics.cc.o.d"
  "CMakeFiles/dynamast_selector.dir/partition_map.cc.o"
  "CMakeFiles/dynamast_selector.dir/partition_map.cc.o.d"
  "CMakeFiles/dynamast_selector.dir/replica_selector.cc.o"
  "CMakeFiles/dynamast_selector.dir/replica_selector.cc.o.d"
  "CMakeFiles/dynamast_selector.dir/site_selector.cc.o"
  "CMakeFiles/dynamast_selector.dir/site_selector.cc.o.d"
  "CMakeFiles/dynamast_selector.dir/strategy.cc.o"
  "CMakeFiles/dynamast_selector.dir/strategy.cc.o.d"
  "libdynamast_selector.a"
  "libdynamast_selector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamast_selector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
