
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/selector/access_statistics.cc" "src/selector/CMakeFiles/dynamast_selector.dir/access_statistics.cc.o" "gcc" "src/selector/CMakeFiles/dynamast_selector.dir/access_statistics.cc.o.d"
  "/root/repo/src/selector/partition_map.cc" "src/selector/CMakeFiles/dynamast_selector.dir/partition_map.cc.o" "gcc" "src/selector/CMakeFiles/dynamast_selector.dir/partition_map.cc.o.d"
  "/root/repo/src/selector/replica_selector.cc" "src/selector/CMakeFiles/dynamast_selector.dir/replica_selector.cc.o" "gcc" "src/selector/CMakeFiles/dynamast_selector.dir/replica_selector.cc.o.d"
  "/root/repo/src/selector/site_selector.cc" "src/selector/CMakeFiles/dynamast_selector.dir/site_selector.cc.o" "gcc" "src/selector/CMakeFiles/dynamast_selector.dir/site_selector.cc.o.d"
  "/root/repo/src/selector/strategy.cc" "src/selector/CMakeFiles/dynamast_selector.dir/strategy.cc.o" "gcc" "src/selector/CMakeFiles/dynamast_selector.dir/strategy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dynamast_common.dir/DependInfo.cmake"
  "/root/repo/build/src/site/CMakeFiles/dynamast_site.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dynamast_net.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dynamast_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/log/CMakeFiles/dynamast_log.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
