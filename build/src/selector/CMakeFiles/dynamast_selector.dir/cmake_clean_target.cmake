file(REMOVE_RECURSE
  "libdynamast_selector.a"
)
