# Empty compiler generated dependencies file for dynamast_selector.
# This may be replaced when dependencies are built.
