file(REMOVE_RECURSE
  "CMakeFiles/adaptive_remastering.dir/adaptive_remastering.cpp.o"
  "CMakeFiles/adaptive_remastering.dir/adaptive_remastering.cpp.o.d"
  "adaptive_remastering"
  "adaptive_remastering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_remastering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
