# Empty compiler generated dependencies file for adaptive_remastering.
# This may be replaced when dependencies are built.
