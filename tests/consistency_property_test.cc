// Randomized consistency property tests:
//  * snapshot-isolation invariants under randomized concurrent schedules
//    across sites (wrapping-sum conservation observed from every site's
//    snapshots, not just one);
//  * write-write exclusion: per-key version sequences are gap-free and
//    every increment is preserved (no lost updates);
//  * mid-run site recovery: a fresh replica reconstructed from the redo
//    log converges to the survivors' state, including mastership;
//  * remastering fuzz: random release/grant storms never violate the
//    exactly-one-master invariant and never lose a partition.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <thread>

#include "common/partitioner.h"
#include "common/random.h"
#include "core/dynamast_system.h"
#include "log/durable_log.h"
#include "selector/site_selector.h"
#include "site/site_manager.h"

namespace dynamast {
namespace {

constexpr TableId kTable = 0;

std::string Num(uint64_t v) {
  return std::string(reinterpret_cast<const char*>(&v), sizeof(v));
}
uint64_t AsNum(const std::string& s) {
  uint64_t v = 0;
  if (s.size() >= 8) memcpy(&v, s.data(), 8);
  return v;
}

core::DynaMastSystem::Options FastOptions(uint32_t sites) {
  core::DynaMastSystem::Options options;
  options.cluster.num_sites = sites;
  options.cluster.network.charge_delays = false;
  options.cluster.site.read_op_cost = options.cluster.site.write_op_cost =
      options.cluster.site.apply_op_cost = std::chrono::microseconds(0);
  options.cluster.site.worker_slots = 16;
  options.selector.sample_rate = 1.0;
  return options;
}

// ---- SI under randomized schedules -----------------------------------------

class SiScheduleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SiScheduleTest, EverySiteSnapshotConservesSum) {
  constexpr uint64_t kKeys = 40;
  constexpr uint64_t kInitial = 10'000;
  RangePartitioner partitioner(5, 8);  // 8 partitions of 5 keys
  core::DynaMastSystem system(FastOptions(3), &partitioner);
  ASSERT_TRUE(system.CreateTable(kTable).ok());
  for (uint64_t key = 0; key < kKeys; ++key) {
    ASSERT_TRUE(system.LoadRow(RecordKey{kTable, key}, Num(kInitial)).ok());
  }
  system.Seal();

  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};

  // Writers: random transfers between random keys (random write-set sizes
  // of 2-4 keys, so schedules exercise multi-partition remastering too).
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&, t] {
      core::ClientState client;
      client.id = t + 1;
      Random rng(GetParam() * 31 + t);
      while (!stop.load()) {
        const size_t n = 2 + rng.Uniform(3);
        std::vector<uint64_t> keys;
        while (keys.size() < n) {
          const uint64_t key = rng.Uniform(kKeys);
          if (std::find(keys.begin(), keys.end(), key) == keys.end()) {
            keys.push_back(key);
          }
        }
        core::TxnProfile profile;
        for (uint64_t key : keys) {
          profile.write_keys.push_back(RecordKey{kTable, key});
        }
        const uint64_t amount = 1 + rng.Uniform(50);
        auto logic = [&keys, amount](core::TxnContext& ctx) -> Status {
          // Move `amount` from the first key, spread over the rest; the
          // wrapping sum is invariant.
          std::string value;
          Status s = ctx.Get(RecordKey{kTable, keys[0]}, &value);
          if (!s.ok()) return s;
          s = ctx.Put(RecordKey{kTable, keys[0]},
                      Num(AsNum(value) - amount * (keys.size() - 1)));
          if (!s.ok()) return s;
          for (size_t i = 1; i < keys.size(); ++i) {
            s = ctx.Get(RecordKey{kTable, keys[i]}, &value);
            if (!s.ok()) return s;
            s = ctx.Put(RecordKey{kTable, keys[i]}, Num(AsNum(value) + amount));
            if (!s.ok()) return s;
          }
          return Status::OK();
        };
        core::TxnResult result;
        // Aborts/timeouts are expected under the storm; the auditors
        // only care that committed state stays consistent.
        (void)system.Execute(client, profile, logic, &result);
      }
    });
  }

  // Auditors: read-only snapshots from every client (and thus potentially
  // every site) must always see the invariant sum — this is the SI
  // guarantee under concurrent remastering and refresh application.
  std::vector<std::thread> auditors;
  for (int t = 0; t < 2; ++t) {
    auditors.emplace_back([&, t] {
      core::ClientState client;
      client.id = 100 + t;
      for (int round = 0; round < 30; ++round) {
        core::TxnProfile audit;
        audit.read_only = true;
        uint64_t total = 0;
        auto logic = [&total](core::TxnContext& ctx) -> Status {
          total = 0;  // logic may rerun on a fresher snapshot
          for (uint64_t key = 0; key < kKeys; ++key) {
            std::string value;
            Status s = ctx.Get(RecordKey{kTable, key}, &value);
            if (!s.ok()) return s;
            total += AsNum(value);
          }
          return Status::OK();
        };
        core::TxnResult result;
        if (system.Execute(client, audit, logic, &result).ok()) {
          if (total != kKeys * kInitial) violations.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : auditors) t.join();
  stop.store(true);
  for (auto& t : writers) t.join();
  EXPECT_EQ(violations.load(), 0);
  system.Shutdown();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SiScheduleTest, ::testing::Values(1, 2, 7));

// ---- No lost updates ---------------------------------------------------------

TEST(LostUpdateTest, ConcurrentIncrementsAllSurvive) {
  RangePartitioner partitioner(5, 4);
  core::DynaMastSystem system(FastOptions(2), &partitioner);
  ASSERT_TRUE(system.CreateTable(kTable).ok());
  ASSERT_TRUE(system.LoadRow(RecordKey{kTable, 7}, Num(0)).ok());
  system.Seal();

  constexpr int kThreads = 6;
  constexpr int kIncrementsPerThread = 50;
  std::atomic<int> committed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      core::ClientState client;
      client.id = t + 1;
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        core::TxnProfile profile;
        profile.write_keys = {RecordKey{kTable, 7}};
        auto logic = [](core::TxnContext& ctx) -> Status {
          std::string value;
          Status s = ctx.Get(RecordKey{kTable, 7}, &value);
          if (!s.ok()) return s;
          return ctx.Put(RecordKey{kTable, 7}, Num(AsNum(value) + 1));
        };
        core::TxnResult result;
        if (system.Execute(client, profile, logic, &result).ok()) {
          committed.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  // Every committed increment must be visible: write locks held from
  // before the read to commit exclude lost updates.
  core::ClientState auditor;
  auditor.id = 99;
  core::TxnProfile audit;
  audit.read_only = true;
  uint64_t final_value = 0;
  auto logic = [&final_value](core::TxnContext& ctx) -> Status {
    std::string value;
    Status s = ctx.Get(RecordKey{kTable, 7}, &value);
    if (!s.ok()) return s;
    final_value = AsNum(value);
    return Status::OK();
  };
  core::TxnResult result;
  // The auditor's empty session may land on a lagging replica; its own
  // session then ratchets forward. Retry until convergence.
  for (int attempt = 0; attempt < 50; ++attempt) {
    ASSERT_TRUE(system.Execute(auditor, audit, logic, &result).ok());
    if (final_value == static_cast<uint64_t>(committed.load())) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(final_value, static_cast<uint64_t>(committed.load()));
  system.Shutdown();
}

// ---- Mid-run replica recovery -------------------------------------------------

TEST(RecoveryTest, FreshReplicaConvergesFromRedoLog) {
  // Run a workload against a 3-site DynaMast deployment, then build a
  // brand-new site-2 replica from the initial load plus the redo logs and
  // compare its rows to a survivor's.
  RangePartitioner partitioner(10, 10);
  core::DynaMastSystem system(FastOptions(3), &partitioner);
  ASSERT_TRUE(system.CreateTable(kTable).ok());
  for (uint64_t key = 0; key < 100; ++key) {
    ASSERT_TRUE(system.LoadRow(RecordKey{kTable, key}, Num(5)).ok());
  }
  system.Seal();

  core::ClientState client;
  client.id = 1;
  Random rng(1234);
  for (int i = 0; i < 120; ++i) {
    const uint64_t a = rng.Uniform(100);
    uint64_t b = rng.Uniform(100);
    if (a == b) b = (b + 11) % 100;
    core::TxnProfile profile;
    profile.write_keys = {RecordKey{kTable, a}, RecordKey{kTable, b}};
    auto logic = [a, b](core::TxnContext& ctx) -> Status {
      std::string value;
      Status s = ctx.Get(RecordKey{kTable, a}, &value);
      if (!s.ok()) return s;
      s = ctx.Put(RecordKey{kTable, a}, Num(AsNum(value) + 1));
      if (!s.ok()) return s;
      s = ctx.Get(RecordKey{kTable, b}, &value);
      if (!s.ok()) return s;
      return ctx.Put(RecordKey{kTable, b}, Num(AsNum(value) + 2));
    };
    core::TxnResult result;
    ASSERT_TRUE(system.Execute(client, profile, logic, &result).ok());
  }

  // Reconstruct a replacement replica for site 2 directly from the logs.
  site::SiteOptions options;
  options.site_id = 2;
  options.num_sites = 3;
  options.read_op_cost = options.write_op_cost = options.apply_op_cost =
      std::chrono::microseconds(0);
  site::SiteManager replacement(options, &partitioner,
                                &system.cluster().logs(), nullptr);
  ASSERT_TRUE(replacement.CreateTable(kTable).ok());
  for (uint64_t key = 0; key < 100; ++key) {
    ASSERT_TRUE(replacement.LoadRecord(RecordKey{kTable, key}, Num(5)).ok());
  }
  std::unordered_map<PartitionId, SiteId> initial;
  for (PartitionId p = 0; p < 10; ++p) {
    initial[p] = static_cast<SiteId>(p % 3);  // round-robin initial placement
  }
  std::unordered_map<PartitionId, SiteId> recovered;
  ASSERT_TRUE(replacement.RecoverFromLogs(initial, &recovered).ok());

  // Row-for-row equality with site 0's latest state.
  for (uint64_t key = 0; key < 100; ++key) {
    std::string expected, actual;
    ASSERT_TRUE(system.cluster().site(0)->engine().ReadLatest(
        RecordKey{kTable, key}, &expected).ok());
    ASSERT_TRUE(replacement.engine().ReadLatest(RecordKey{kTable, key},
                                                &actual).ok());
    EXPECT_EQ(AsNum(actual), AsNum(expected)) << "key " << key;
  }
  // Recovered mastership equals the selector's live map.
  for (PartitionId p = 0; p < 10; ++p) {
    EXPECT_EQ(recovered[p],
              system.site_selector().partition_map().MasterOfLocked(p))
        << "partition " << p;
  }
  system.Shutdown();
}

// ---- Remastering fuzz ----------------------------------------------------------

class RemasterFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RemasterFuzzTest, ExactlyOneMasterAlways) {
  RangePartitioner partitioner(10, 12);
  std::unique_ptr<log::LogManager> logs =
      std::make_unique<log::LogManager>(3);
  std::vector<std::unique_ptr<site::SiteManager>> sites;
  for (uint32_t i = 0; i < 3; ++i) {
    site::SiteOptions options;
    options.site_id = i;
    options.num_sites = 3;
    options.read_op_cost = options.write_op_cost = options.apply_op_cost =
        std::chrono::microseconds(0);
    sites.push_back(std::make_unique<site::SiteManager>(
        options, &partitioner, logs.get(), nullptr));
    ASSERT_TRUE(sites.back()->CreateTable(kTable).ok());
  }
  selector::SelectorOptions options;
  options.num_sites = 3;
  options.seed = GetParam();
  selector::SiteSelector selector(
      options,
      {sites[0].get(), sites[1].get(), sites[2].get()}, &partitioner,
      nullptr);
  std::vector<SiteId> placement(12);
  for (PartitionId p = 0; p < 12; ++p) placement[p] = p % 3;
  selector.InstallPlacement(placement);
  for (auto& s : sites) s->Start();
  for (uint64_t key = 0; key < 120; ++key) {
    for (auto& s : sites) {
      ASSERT_TRUE(s->LoadRecord(RecordKey{kTable, key}, "v").ok());
    }
  }

  // Storm of overlapping multi-partition routes from many threads.
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      Random rng(GetParam() * 101 + t);
      for (int i = 0; i < 40; ++i) {
        std::vector<RecordKey> keys;
        const size_t n = 1 + rng.Uniform(4);
        for (size_t k = 0; k < n; ++k) {
          keys.push_back(RecordKey{kTable, rng.Uniform(120)});
        }
        selector::RouteResult route;
        if (!selector.RouteWrite(t + 1, keys, VersionVector(3), &route).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Invariant: every partition has exactly one mastering site, agreeing
  // with the selector's map.
  for (PartitionId p = 0; p < 12; ++p) {
    const SiteId owner = selector.partition_map().MasterOfLocked(p);
    int masters = 0;
    for (SiteId s = 0; s < 3; ++s) {
      if (sites[s]->IsMasterOf(p)) {
        ++masters;
        EXPECT_EQ(s, owner) << "partition " << p;
      }
    }
    EXPECT_EQ(masters, 1) << "partition " << p;
  }
  logs->CloseAll();
  for (auto& s : sites) s->Stop();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RemasterFuzzTest,
                         ::testing::Values(3, 5, 11, 23));

}  // namespace
}  // namespace dynamast
