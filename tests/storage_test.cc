// Tests for the storage substrate: RowBuffer codec, MVCC versioned
// records, tables, the lock manager and the storage engine.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/random.h"
#include "storage/lock_manager.h"
#include "storage/record.h"
#include "storage/row_buffer.h"
#include "storage/storage_engine.h"
#include "storage/table.h"

namespace dynamast::storage {
namespace {

VersionVector Vv(std::vector<uint64_t> v) { return VersionVector(std::move(v)); }

// ---- RowBuffer ----------------------------------------------------------

TEST(RowBufferTest, RoundTripAllTypes) {
  RowBuffer row;
  row.AddUint64(42);
  row.AddInt64(-7);
  row.AddDouble(3.25);
  row.AddString("hello");
  RowBuffer parsed;
  ASSERT_TRUE(RowBuffer::Parse(row.Encode(), &parsed).ok());
  ASSERT_EQ(parsed.NumFields(), 4u);
  EXPECT_EQ(parsed.GetUint64(0), 42u);
  EXPECT_EQ(parsed.GetInt64(1), -7);
  EXPECT_DOUBLE_EQ(parsed.GetDouble(2), 3.25);
  EXPECT_EQ(parsed.GetString(3), "hello");
}

TEST(RowBufferTest, EmptyRow) {
  RowBuffer row;
  RowBuffer parsed;
  ASSERT_TRUE(RowBuffer::Parse(row.Encode(), &parsed).ok());
  EXPECT_EQ(parsed.NumFields(), 0u);
}

TEST(RowBufferTest, Mutation) {
  RowBuffer row;
  row.AddUint64(1);
  row.AddDouble(1.0);
  row.AddString("a");
  row.SetUint64(0, 99);
  row.SetDouble(1, -2.5);
  row.SetString(2, "bb");
  RowBuffer parsed;
  ASSERT_TRUE(RowBuffer::Parse(row.Encode(), &parsed).ok());
  EXPECT_EQ(parsed.GetUint64(0), 99u);
  EXPECT_DOUBLE_EQ(parsed.GetDouble(1), -2.5);
  EXPECT_EQ(parsed.GetString(2), "bb");
}

TEST(RowBufferTest, RejectsTruncated) {
  RowBuffer row;
  row.AddString("payload");
  std::string encoded = row.Encode();
  RowBuffer parsed;
  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    EXPECT_TRUE(RowBuffer::Parse(encoded.substr(0, cut), &parsed)
                    .IsCorruption())
        << "cut at " << cut;
  }
}

TEST(RowBufferTest, RejectsTrailingBytes) {
  RowBuffer row;
  row.AddUint64(1);
  std::string encoded = row.Encode() + "x";
  RowBuffer parsed;
  EXPECT_TRUE(RowBuffer::Parse(encoded, &parsed).IsCorruption());
}

TEST(RowBufferTest, RejectsBadTypeTag) {
  RowBuffer row;
  row.AddUint64(1);
  std::string encoded = row.Encode();
  encoded[4] = 9;  // type tag of field 0
  RowBuffer parsed;
  EXPECT_TRUE(RowBuffer::Parse(encoded, &parsed).IsCorruption());
}

// ---- VersionedRecord ----------------------------------------------------

TEST(VersionedRecordTest, InvisibleBeforeAnyVersion) {
  VersionedRecord record(4);
  std::string value;
  EXPECT_TRUE(record.ReadAtSnapshot(Vv({0, 0}), &value).IsNotFound());
}

TEST(VersionedRecordTest, VisibilityBySequence) {
  VersionedRecord record(4);
  record.Install(/*origin=*/0, /*seq=*/1, "v1");
  record.Install(0, 2, "v2");
  std::string value;
  ASSERT_TRUE(record.ReadAtSnapshot(Vv({1, 0}), &value).ok());
  EXPECT_EQ(value, "v1");
  ASSERT_TRUE(record.ReadAtSnapshot(Vv({2, 0}), &value).ok());
  EXPECT_EQ(value, "v2");
  EXPECT_TRUE(record.ReadAtSnapshot(Vv({0, 0}), &value).IsNotFound());
}

TEST(VersionedRecordTest, VisibilityAcrossOrigins) {
  VersionedRecord record(4);
  record.Install(0, 1, "from-site0");
  record.Install(1, 1, "from-site1");
  std::string value;
  // Snapshot sees only site 0's update.
  ASSERT_TRUE(record.ReadAtSnapshot(Vv({1, 0}), &value).ok());
  EXPECT_EQ(value, "from-site0");
  // Snapshot sees both: newest installed wins.
  ASSERT_TRUE(record.ReadAtSnapshot(Vv({1, 1}), &value).ok());
  EXPECT_EQ(value, "from-site1");
}

TEST(VersionedRecordTest, PruneKeepsNewest) {
  VersionedRecord record(2);
  record.Install(0, 1, "v1");
  record.Install(0, 2, "v2");
  record.Install(0, 3, "v3");
  EXPECT_EQ(record.NumVersions(), 2u);
  EXPECT_EQ(record.PrunedCount(), 1u);
  std::string value;
  ASSERT_TRUE(record.ReadAtSnapshot(Vv({3}), &value).ok());
  EXPECT_EQ(value, "v3");
}

TEST(VersionedRecordTest, SnapshotTooOldAfterPrune) {
  VersionedRecord record(2);
  record.Install(0, 1, "v1");
  record.Install(0, 2, "v2");
  record.Install(0, 3, "v3");
  std::string value;
  // Snapshot [1] could only see v1, which was pruned.
  EXPECT_TRUE(record.ReadAtSnapshot(Vv({1}), &value).IsSnapshotTooOld());
}

TEST(VersionedRecordTest, FourVersionsDefaultBehaviour) {
  // The paper's default of four retained versions (Section V-A1).
  VersionedRecord record(4);
  for (uint64_t seq = 1; seq <= 6; ++seq) {
    record.Install(0, seq, "v" + std::to_string(seq));
  }
  EXPECT_EQ(record.NumVersions(), 4u);
  std::string value;
  ASSERT_TRUE(record.ReadAtSnapshot(Vv({3}), &value).ok());
  EXPECT_EQ(value, "v3");
  EXPECT_TRUE(record.ReadAtSnapshot(Vv({2}), &value).IsSnapshotTooOld());
}

TEST(VersionedRecordTest, ReadLatest) {
  VersionedRecord record(4);
  std::string scratch;
  EXPECT_TRUE(record.ReadLatest(&scratch).IsNotFound());
  record.Install(0, 1, "a");
  record.Install(1, 1, "b");
  std::string value;
  ASSERT_TRUE(record.ReadLatest(&value).ok());
  EXPECT_EQ(value, "b");
}

// ---- Table ---------------------------------------------------------------

TEST(TableTest, InstallAndRead) {
  Table table(/*id=*/3, /*max_versions=*/4);
  table.Install(10, 0, 1, "x");
  std::string value;
  ASSERT_TRUE(table.Read(10, Vv({1}), &value).ok());
  EXPECT_EQ(value, "x");
  EXPECT_TRUE(table.Read(11, Vv({1}), &value).IsNotFound());
  EXPECT_TRUE(table.Contains(10));
  EXPECT_FALSE(table.Contains(11));
  EXPECT_EQ(table.NumRows(), 1u);
}

TEST(TableTest, ManyRowsAcrossShards) {
  Table table(0, 4);
  for (uint64_t row = 0; row < 1000; ++row) {
    table.Install(row, 0, 0, std::to_string(row));
  }
  EXPECT_EQ(table.NumRows(), 1000u);
  std::string value;
  for (uint64_t row = 0; row < 1000; row += 37) {
    ASSERT_TRUE(table.Read(row, Vv({0}), &value).ok());
    EXPECT_EQ(value, std::to_string(row));
  }
}

TEST(TableTest, ConcurrentInstallsDistinctRows) {
  Table table(0, 4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&table, t] {
      for (uint64_t i = 0; i < 500; ++i) {
        table.Install(t * 1000 + i, 0, 0, "v");
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(table.NumRows(), 2000u);
}

// ---- LockManager ----------------------------------------------------------

TEST(LockManagerTest, BasicAcquireRelease) {
  LockManager locks;
  const RecordKey key{0, 1};
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(100);
  ASSERT_TRUE(locks.Acquire(key, 1, deadline).ok());
  EXPECT_TRUE(locks.Holds(key, 1));
  EXPECT_FALSE(locks.Holds(key, 2));
  locks.Release(key, 1);
  EXPECT_FALSE(locks.Holds(key, 1));
}

TEST(LockManagerTest, Reentrant) {
  LockManager locks;
  const RecordKey key{0, 1};
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(100);
  ASSERT_TRUE(locks.Acquire(key, 1, deadline).ok());
  ASSERT_TRUE(locks.Acquire(key, 1, deadline).ok());
  locks.Release(key, 1);
  EXPECT_FALSE(locks.Holds(key, 1));
}

TEST(LockManagerTest, ConflictTimesOut) {
  LockManager locks;
  const RecordKey key{0, 1};
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(50);
  ASSERT_TRUE(locks.Acquire(key, 1, deadline).ok());
  EXPECT_TRUE(locks
                  .Acquire(key, 2,
                           std::chrono::steady_clock::now() +
                               std::chrono::milliseconds(50))
                  .IsTimedOut());
}

TEST(LockManagerTest, ReleaseWakesWaiter) {
  LockManager locks;
  const RecordKey key{0, 1};
  ASSERT_TRUE(locks
                  .Acquire(key, 1,
                           std::chrono::steady_clock::now() +
                               std::chrono::milliseconds(100))
                  .ok());
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    Status s = locks.Acquire(key, 2, std::chrono::steady_clock::now() +
                                          std::chrono::seconds(5));
    acquired.store(s.ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  locks.Release(key, 1);
  waiter.join();
  EXPECT_TRUE(acquired.load());
  EXPECT_TRUE(locks.Holds(key, 2));
}

TEST(LockManagerTest, AcquireAllRollsBackOnTimeout) {
  LockManager locks;
  const RecordKey held{0, 5};
  ASSERT_TRUE(locks
                  .Acquire(held, 99,
                           std::chrono::steady_clock::now() +
                               std::chrono::milliseconds(100))
                  .ok());
  std::vector<RecordKey> keys = {{0, 1}, {0, 5}, {0, 9}};
  Status s = locks.AcquireAll(keys, 1,
                              std::chrono::steady_clock::now() +
                                  std::chrono::milliseconds(50));
  EXPECT_TRUE(s.IsTimedOut());
  // Locks acquired before the conflict must have been rolled back.
  EXPECT_FALSE(locks.Holds(RecordKey{0, 1}, 1));
  EXPECT_FALSE(locks.Holds(RecordKey{0, 9}, 1));
  EXPECT_EQ(locks.NumHeldLocks(), 1u);
}

TEST(LockManagerTest, AcquireAllDeduplicates) {
  LockManager locks;
  std::vector<RecordKey> keys = {{0, 1}, {0, 1}, {0, 2}};
  ASSERT_TRUE(locks
                  .AcquireAll(keys, 1,
                              std::chrono::steady_clock::now() +
                                  std::chrono::milliseconds(100))
                  .ok());
  EXPECT_EQ(locks.NumHeldLocks(), 2u);
  locks.ReleaseAll({{0, 1}, {0, 2}}, 1);
  EXPECT_EQ(locks.NumHeldLocks(), 0u);
}

TEST(LockManagerTest, MutualExclusionUnderContention) {
  LockManager locks;
  const RecordKey key{0, 7};
  std::atomic<int> in_critical{0};
  std::atomic<int> max_seen{0};
  std::atomic<int> completed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i) {
        const TxnId txn = static_cast<TxnId>(t) * 1000 + i + 1;
        Status s = locks.Acquire(key, txn, std::chrono::steady_clock::now() +
                                                std::chrono::seconds(10));
        ASSERT_TRUE(s.ok());
        const int now = in_critical.fetch_add(1) + 1;
        int expected_max = max_seen.load();
        while (now > expected_max &&
               !max_seen.compare_exchange_weak(expected_max, now)) {
        }
        in_critical.fetch_sub(1);
        locks.Release(key, txn);
        completed.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(max_seen.load(), 1);
  EXPECT_EQ(completed.load(), 400);
}

// ---- StorageEngine ---------------------------------------------------------

TEST(StorageEngineTest, CreateTableOnce) {
  StorageEngine engine;
  EXPECT_TRUE(engine.CreateTable(1).ok());
  EXPECT_TRUE(engine.CreateTable(1).IsAlreadyExists());
  EXPECT_NE(engine.GetTable(1), nullptr);
  EXPECT_EQ(engine.GetTable(2), nullptr);
}

TEST(StorageEngineTest, InstallReadRoundTrip) {
  StorageEngine engine;
  ASSERT_TRUE(engine.CreateTable(1).ok());
  const RecordKey key{1, 77};
  ASSERT_TRUE(engine.Install(key, 0, 1, "payload").ok());
  std::string value;
  ASSERT_TRUE(engine.Read(key, Vv({1}), &value).ok());
  EXPECT_EQ(value, "payload");
  EXPECT_TRUE(engine.Contains(key));
  EXPECT_EQ(engine.TotalRows(), 1u);
}

TEST(StorageEngineTest, UnknownTableRejected) {
  StorageEngine engine;
  std::string value;
  EXPECT_TRUE(engine.Install(RecordKey{9, 1}, 0, 1, "x").IsInvalidArgument());
  EXPECT_TRUE(engine.Read(RecordKey{9, 1}, Vv({1}), &value)
                  .IsInvalidArgument());
}

TEST(StorageEngineTest, MaxVersionsOptionRespected) {
  StorageEngine::Options options;
  options.max_versions_per_record = 2;
  StorageEngine engine(options);
  ASSERT_TRUE(engine.CreateTable(1).ok());
  const RecordKey key{1, 1};
  for (uint64_t seq = 1; seq <= 3; ++seq) {
    ASSERT_TRUE(engine.Install(key, 0, seq, "v").ok());
  }
  std::string value;
  EXPECT_TRUE(engine.Read(key, Vv({1}), &value).IsSnapshotTooOld());
}

TEST(StorageEngineTest, TableIdsListed) {
  StorageEngine engine;
  ASSERT_TRUE(engine.CreateTable(3).ok());
  ASSERT_TRUE(engine.CreateTable(7).ok());
  auto ids = engine.TableIds();
  EXPECT_EQ(ids.size(), 2u);
}

}  // namespace
}  // namespace dynamast::storage
