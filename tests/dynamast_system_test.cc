// End-to-end tests of the DynaMast system: transaction execution across
// sites, strong-session snapshot isolation properties, concurrent-client
// invariants (money conservation), remastering adaptivity, and the
// single-master configuration.

#include "core/dynamast_system.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <thread>

#include "common/partitioner.h"
#include "common/random.h"

namespace dynamast::core {
namespace {

constexpr TableId kTable = 0;

DynaMastSystem::Options FastOptions(uint32_t sites) {
  DynaMastSystem::Options options;
  options.cluster.num_sites = sites;
  options.cluster.network.charge_delays = false;
  options.cluster.site.read_op_cost = options.cluster.site.write_op_cost =
      options.cluster.site.apply_op_cost = std::chrono::microseconds(0);
  options.cluster.site.worker_slots = 8;
  options.selector.sample_rate = 1.0;
  return options;
}

std::string Num(uint64_t v) {
  return std::string(reinterpret_cast<const char*>(&v), sizeof(v));
}
uint64_t AsNum(const std::string& s) {
  uint64_t v = 0;
  if (s.size() >= 8) memcpy(&v, s.data(), 8);
  return v;
}

class DynaMastFixture : public ::testing::Test {
 protected:
  void Init(uint32_t sites, uint64_t keys, uint64_t keys_per_partition) {
    partitioner_ = std::make_unique<RangePartitioner>(
        keys_per_partition, (keys + keys_per_partition - 1) / keys_per_partition);
    system_ = std::make_unique<DynaMastSystem>(FastOptions(sites),
                                               partitioner_.get());
    ASSERT_TRUE(system_->CreateTable(kTable).ok());
    for (uint64_t key = 0; key < keys; ++key) {
      ASSERT_TRUE(system_->LoadRow(RecordKey{kTable, key}, Num(0)).ok());
    }
    system_->Seal();
  }

  void TearDown() override {
    if (system_) system_->Shutdown();
  }

  Status Increment(ClientState& client, const std::vector<uint64_t>& keys,
                   TxnResult* result) {
    TxnProfile profile;
    for (uint64_t key : keys) {
      profile.write_keys.push_back(RecordKey{kTable, key});
    }
    auto logic = [keys](TxnContext& ctx) -> Status {
      for (uint64_t key : keys) {
        std::string value;
        Status s = ctx.Get(RecordKey{kTable, key}, &value);
        if (!s.ok()) return s;
        s = ctx.Put(RecordKey{kTable, key}, Num(AsNum(value) + 1));
        if (!s.ok()) return s;
      }
      return Status::OK();
    };
    return system_->Execute(client, profile, logic, result);
  }

  uint64_t ReadKey(ClientState& client, uint64_t key) {
    TxnProfile profile;
    profile.read_only = true;
    profile.read_keys = {RecordKey{kTable, key}};
    uint64_t out = 0;
    auto logic = [&out, key](TxnContext& ctx) -> Status {
      std::string value;
      Status s = ctx.Get(RecordKey{kTable, key}, &value);
      if (!s.ok()) return s;
      out = AsNum(value);
      return Status::OK();
    };
    TxnResult result;
    Status s = system_->Execute(client, profile, logic, &result);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return out;
  }

  std::unique_ptr<RangePartitioner> partitioner_;
  std::unique_ptr<DynaMastSystem> system_;
};

TEST_F(DynaMastFixture, SingleKeyWriteAndReadBack) {
  Init(3, 100, 10);
  ClientState client;
  client.id = 1;
  TxnResult result;
  ASSERT_TRUE(Increment(client, {5}, &result).ok());
  EXPECT_EQ(ReadKey(client, 5), 1u);
}

TEST_F(DynaMastFixture, ReadYourWritesAcrossSites) {
  Init(4, 100, 10);
  ClientState client;
  client.id = 1;
  // Write then immediately read many times; SSSI guarantees the client
  // always sees its own update no matter which replica serves the read.
  for (int round = 1; round <= 20; ++round) {
    TxnResult result;
    ASSERT_TRUE(Increment(client, {42}, &result).ok());
    EXPECT_EQ(ReadKey(client, 42), static_cast<uint64_t>(round));
  }
}

TEST_F(DynaMastFixture, MonotonicReadsWithinSession) {
  Init(3, 100, 10);
  ClientState writer, reader;
  writer.id = 1;
  reader.id = 2;
  std::atomic<bool> stop{false};
  std::thread write_thread([&] {
    while (!stop.load()) {
      TxnResult result;
      (void)Increment(writer, {7}, &result);
    }
  });
  uint64_t last = 0;
  for (int i = 0; i < 50; ++i) {
    const uint64_t now = ReadKey(reader, 7);
    EXPECT_GE(now, last);  // session reads never go backwards
    last = now;
  }
  stop.store(true);
  write_thread.join();
}

TEST_F(DynaMastFixture, CrossPartitionTransactionRemastersOnce) {
  Init(3, 100, 10);
  ClientState client;
  client.id = 1;
  TxnResult first, second;
  ASSERT_TRUE(Increment(client, {5, 15, 25}, &first).ok());
  ASSERT_TRUE(Increment(client, {5, 15, 25}, &second).ok());
  EXPECT_TRUE(first.remastered);
  EXPECT_FALSE(second.remastered);
  EXPECT_EQ(first.executed_at, second.executed_at);
  EXPECT_EQ(ReadKey(client, 5), 2u);
  EXPECT_EQ(ReadKey(client, 15), 2u);
}

TEST_F(DynaMastFixture, AbortedLogicLeavesNoTrace) {
  Init(2, 100, 10);
  ClientState client;
  client.id = 1;
  TxnProfile profile;
  profile.write_keys = {RecordKey{kTable, 3}};
  auto logic = [](TxnContext& ctx) -> Status {
    std::string value;
    Status s = ctx.Get(RecordKey{kTable, 3}, &value);
    if (!s.ok()) return s;
    s = ctx.Put(RecordKey{kTable, 3}, Num(999));
    if (!s.ok()) return s;
    return Status::Aborted("user abort");
  };
  TxnResult result;
  EXPECT_TRUE(system_->Execute(client, profile, logic, &result).IsAborted());
  EXPECT_EQ(ReadKey(client, 3), 0u);
}

// Money-conservation property: concurrent multi-key increments/decrements
// preserve the global sum (write-write conflicts are excluded by record
// locks; snapshots are consistent).
TEST_F(DynaMastFixture, ConcurrentTransfersConserveTotal) {
  Init(3, 60, 10);
  constexpr int kClients = 6;
  constexpr int kTxnsPerClient = 40;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      ClientState client;
      client.id = t + 1;
      Random rng(t + 1);
      for (int i = 0; i < kTxnsPerClient; ++i) {
        const uint64_t a = rng.Uniform(60);
        uint64_t b = rng.Uniform(60);
        if (b == a) b = (b + 1) % 60;
        // Transfer: a += 1, b -= 1 (wrapping uint arithmetic still sums).
        TxnProfile profile;
        profile.write_keys = {RecordKey{kTable, a}, RecordKey{kTable, b}};
        auto logic = [a, b](TxnContext& ctx) -> Status {
          std::string value;
          Status s = ctx.Get(RecordKey{kTable, a}, &value);
          if (!s.ok()) return s;
          s = ctx.Put(RecordKey{kTable, a}, Num(AsNum(value) + 1));
          if (!s.ok()) return s;
          s = ctx.Get(RecordKey{kTable, b}, &value);
          if (!s.ok()) return s;
          return ctx.Put(RecordKey{kTable, b}, Num(AsNum(value) - 1));
        };
        TxnResult result;
        if (!system_->Execute(client, profile, logic, &result).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Audit with a single read-only transaction: its MVCC snapshot is
  // consistent, so the wrapping sum of (+1, -1) transfers must be zero —
  // even if the serving replica lags, a snapshot never shows half a
  // transfer. This is precisely the SI guarantee.
  ClientState auditor;
  auditor.id = 999;
  TxnProfile audit;
  audit.read_only = true;
  uint64_t total = 0;
  auto audit_logic = [&total](TxnContext& ctx) -> Status {
    total = 0;  // logic may rerun on a fresher snapshot
    for (uint64_t key = 0; key < 60; ++key) {
      std::string value;
      Status s = ctx.Get(RecordKey{kTable, key}, &value);
      if (!s.ok()) return s;
      total += AsNum(value);
    }
    return Status::OK();
  };
  TxnResult audit_result;
  ASSERT_TRUE(system_->Execute(auditor, audit, audit_logic, &audit_result).ok());
  EXPECT_EQ(total, 0u);
}

TEST_F(DynaMastFixture, WorkloadLocalityConcentratesMastership) {
  Init(4, 400, 10);  // 40 partitions round-robin over 4 sites
  // One client hammers partitions 0..3 together; the strategy should
  // co-locate them at one site.
  ClientState client;
  client.id = 1;
  for (int i = 0; i < 30; ++i) {
    TxnResult result;
    ASSERT_TRUE(Increment(client, {5, 15, 25, 35}, &result).ok());
  }
  const SiteId owner = system_->site_selector().partition_map().MasterOfLocked(0);
  for (PartitionId p = 1; p <= 3; ++p) {
    EXPECT_EQ(system_->site_selector().partition_map().MasterOfLocked(p), owner);
  }
  // And remastering stopped happening (amortized).
  const auto& counters = system_->site_selector().counters();
  EXPECT_LE(counters.remastered_txns.load(), 2u);
}

TEST_F(DynaMastFixture, SingleMasterConfigurationNeverRemasters) {
  DynaMastSystem::Options options =
      DynaMastSystem::SingleMasterOptions(FastOptions(3));
  partitioner_ = std::make_unique<RangePartitioner>(10, 10);
  system_ = std::make_unique<DynaMastSystem>(options, partitioner_.get());
  ASSERT_TRUE(system_->CreateTable(kTable).ok());
  for (uint64_t key = 0; key < 100; ++key) {
    ASSERT_TRUE(system_->LoadRow(RecordKey{kTable, key}, Num(0)).ok());
  }
  system_->Seal();
  EXPECT_EQ(system_->name(), "single-master");

  ClientState client;
  client.id = 1;
  for (int i = 0; i < 10; ++i) {
    TxnResult result;
    ASSERT_TRUE(Increment(client, {5, 15, 25}, &result).ok());
    EXPECT_EQ(result.executed_at, 0u);  // all writes at the master site
    EXPECT_FALSE(result.remastered);
  }
  EXPECT_EQ(system_->site_selector().counters().remastered_txns.load(), 0u);
  // Let replicas catch up so they qualify as session-fresh read targets.
  const VersionVector master_version =
      system_->cluster().site(0)->CurrentVersion();
  for (SiteId s = 1; s < 3; ++s) {
    ASSERT_TRUE(system_->cluster().site(s)->WaitForVersion(master_version).ok());
  }
  // Reads still spread over replicas.
  std::set<SiteId> read_sites;
  for (int i = 0; i < 40; ++i) {
    TxnProfile profile;
    profile.read_only = true;
    TxnResult result;
    auto logic = [](TxnContext& ctx) -> Status {
      std::string value;
      return ctx.Get(RecordKey{kTable, 1}, &value);
    };
    ASSERT_TRUE(system_->Execute(client, profile, logic, &result).ok());
    read_sites.insert(result.executed_at);
  }
  EXPECT_GE(read_sites.size(), 2u);
}

TEST_F(DynaMastFixture, CustomPlacementRespected) {
  DynaMastSystem::Options options = FastOptions(2);
  options.placement = InitialPlacement::kCustom;
  options.custom_placement = {1, 1, 1, 1, 1, 0, 0, 0, 0, 0};
  partitioner_ = std::make_unique<RangePartitioner>(10, 10);
  system_ = std::make_unique<DynaMastSystem>(options, partitioner_.get());
  ASSERT_TRUE(system_->CreateTable(kTable).ok());
  for (uint64_t key = 0; key < 100; ++key) {
    ASSERT_TRUE(system_->LoadRow(RecordKey{kTable, key}, Num(0)).ok());
  }
  system_->Seal();
  EXPECT_EQ(system_->site_selector().partition_map().MasterOfLocked(0), 1u);
  EXPECT_EQ(system_->site_selector().partition_map().MasterOfLocked(9), 0u);
  EXPECT_TRUE(system_->cluster().site(1)->IsMasterOf(0));
  EXPECT_FALSE(system_->cluster().site(0)->IsMasterOf(0));
}

// Parameterized sweep: the core invariants hold across site counts.
class DynaMastSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(DynaMastSweep, TransfersConserveAcrossSiteCounts) {
  const uint32_t sites = GetParam();
  RangePartitioner partitioner(10, 6);
  DynaMastSystem system(FastOptions(sites), &partitioner);
  ASSERT_TRUE(system.CreateTable(kTable).ok());
  for (uint64_t key = 0; key < 60; ++key) {
    ASSERT_TRUE(system.LoadRow(RecordKey{kTable, key}, Num(1000)).ok());
  }
  system.Seal();

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      ClientState client;
      client.id = t + 1;
      Random rng(t * 7 + 1);
      for (int i = 0; i < 25; ++i) {
        const uint64_t a = rng.Uniform(60);
        uint64_t b = rng.Uniform(60);
        if (a == b) b = (b + 7) % 60;
        TxnProfile profile;
        profile.write_keys = {RecordKey{kTable, a}, RecordKey{kTable, b}};
        auto logic = [a, b](TxnContext& ctx) -> Status {
          std::string value;
          Status s = ctx.Get(RecordKey{kTable, a}, &value);
          if (!s.ok()) return s;
          s = ctx.Put(RecordKey{kTable, a}, Num(AsNum(value) - 5));
          if (!s.ok()) return s;
          s = ctx.Get(RecordKey{kTable, b}, &value);
          if (!s.ok()) return s;
          return ctx.Put(RecordKey{kTable, b}, Num(AsNum(value) + 5));
        };
        TxnResult result;
        ASSERT_TRUE(system.Execute(client, profile, logic, &result).ok());
      }
    });
  }
  for (auto& t : threads) t.join();

  // One consistent snapshot over all keys (SI).
  ClientState auditor;
  auditor.id = 99;
  TxnProfile audit;
  audit.read_only = true;
  uint64_t total = 0;
  auto audit_logic = [&total](TxnContext& ctx) -> Status {
    total = 0;  // logic may rerun on a fresher snapshot
    for (uint64_t key = 0; key < 60; ++key) {
      std::string value;
      Status s = ctx.Get(RecordKey{kTable, key}, &value);
      if (!s.ok()) return s;
      total += AsNum(value);
    }
    return Status::OK();
  };
  TxnResult audit_result;
  ASSERT_TRUE(system.Execute(auditor, audit, audit_logic, &audit_result).ok());
  EXPECT_EQ(total, 60u * 1000u);
  system.Shutdown();
}

INSTANTIATE_TEST_SUITE_P(SiteCounts, DynaMastSweep,
                         ::testing::Values(2, 3, 4, 8));

}  // namespace
}  // namespace dynamast::core
