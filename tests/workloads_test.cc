// Tests for the workload generators: YCSB key-selection machinery
// (Appendix C), TPC-C transactions and consistency conditions, SmallBank
// money conservation, and the benchmark driver.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_map>

#include "core/dynamast_system.h"
#include "storage/row_buffer.h"
#include "workloads/driver.h"
#include "workloads/smallbank.h"
#include "workloads/tpcc.h"
#include "workloads/ycsb.h"

namespace dynamast::workloads {
namespace {

core::DynaMastSystem::Options FastSystem(uint32_t sites) {
  core::DynaMastSystem::Options options;
  options.cluster.num_sites = sites;
  options.cluster.network.charge_delays = false;
  options.cluster.site.read_op_cost = options.cluster.site.write_op_cost =
      options.cluster.site.apply_op_cost = std::chrono::microseconds(0);
  options.cluster.site.worker_slots = 8;
  options.selector.sample_rate = 1.0;
  return options;
}

// ---- YCSB -------------------------------------------------------------------

YcsbWorkload::Options SmallYcsb() {
  YcsbWorkload::Options options;
  options.num_keys = 2000;
  options.keys_per_partition = 100;
  options.value_size = 32;
  options.affinity_txns = 10;
  return options;
}

TEST(YcsbTest, ValueCodecRoundTrip) {
  const std::string value = YcsbWorkload::MakeValue(12345, 64);
  EXPECT_EQ(value.size(), 64u);
  EXPECT_EQ(YcsbWorkload::ValueCounter(value), 12345u);
}

TEST(YcsbTest, PartitionerMatchesAppendixLayout) {
  YcsbWorkload workload(SmallYcsb());
  EXPECT_EQ(workload.num_partitions(), 20u);
  EXPECT_EQ(workload.partitioner().PartitionOf(RecordKey{0, 0}), 0u);
  EXPECT_EQ(workload.partitioner().PartitionOf(RecordKey{0, 99}), 0u);
  EXPECT_EQ(workload.partitioner().PartitionOf(RecordKey{0, 100}), 1u);
  EXPECT_EQ(workload.partitioner().PartitionOf(RecordKey{0, 1999}), 19u);
}

TEST(YcsbTest, RmwTransactionsHaveThreeKeysInNeighbourhood) {
  auto options = SmallYcsb();
  options.rmw_pct = 100;
  YcsbWorkload workload(options);
  auto client = workload.MakeClient(0);
  for (int i = 0; i < 50; ++i) {
    WorkloadTxn txn = client->Next();
    EXPECT_STREQ(txn.type, "rmw");
    EXPECT_FALSE(txn.profile.read_only);
    ASSERT_EQ(txn.profile.write_keys.size(), 3u);
    // All keys within bounds; companions within the Bernoulli(5, .5)
    // neighbourhood of the base partition (offset in [-3, 2]).
    const PartitionId base =
        workload.partitioner().PartitionOf(txn.profile.write_keys[0]);
    for (const RecordKey& key : txn.profile.write_keys) {
      EXPECT_LT(key.row, options.num_keys);
      const int64_t offset =
          static_cast<int64_t>(
              workload.partitioner().PartitionOf(key)) -
          static_cast<int64_t>(base);
      EXPECT_GE(offset, -3);
      EXPECT_LE(offset, 2);
    }
  }
}

TEST(YcsbTest, ScanTransactionsReadConsecutivePartitions) {
  auto options = SmallYcsb();
  options.rmw_pct = 0;
  YcsbWorkload workload(options);
  auto client = workload.MakeClient(0);
  for (int i = 0; i < 30; ++i) {
    WorkloadTxn txn = client->Next();
    EXPECT_STREQ(txn.type, "scan");
    EXPECT_TRUE(txn.profile.read_only);
    // 2..10 partitions of 100 keys (clamped at the keyspace edge).
    EXPECT_GE(txn.profile.read_keys.size(), 100u);
    EXPECT_LE(txn.profile.read_keys.size(), 1000u);
    std::set<PartitionId> partitions;
    for (const RecordKey& key : txn.profile.read_keys) {
      partitions.insert(workload.partitioner().PartitionOf(key));
    }
    EXPECT_LE(partitions.size(), 10u);
  }
}

// Regression for moving the key set into the transaction closure: the
// profile assignments must happen before the move, and the logic must
// still iterate the full set. A reordering that moves `keys` before the
// profile copies (or a double move) leaves one side empty.
TEST(YcsbTest, TxnLogicOperatesOnDeclaredProfileKeys) {
  class RecordingContext final : public core::TxnContext {
   public:
    Status Get(const RecordKey& key, std::string* value) override {
      touched.push_back(key);
      *value = YcsbWorkload::MakeValue(0, 8);
      return Status::OK();
    }
    Status Put(const RecordKey&, std::string) override { return Status::OK(); }
    Status Insert(const RecordKey&, std::string) override {
      return Status::OK();
    }
    std::vector<RecordKey> touched;
  };

  auto options = SmallYcsb();
  options.rmw_pct = 100;
  YcsbWorkload rmw_workload(options);
  WorkloadTxn rmw = rmw_workload.MakeClient(0)->Next();
  ASSERT_FALSE(rmw.profile.write_keys.empty());
  RecordingContext rmw_ctx;
  ASSERT_TRUE(rmw.logic(rmw_ctx).ok());
  EXPECT_EQ(rmw_ctx.touched, rmw.profile.write_keys);

  options.rmw_pct = 0;
  YcsbWorkload scan_workload(options);
  WorkloadTxn scan = scan_workload.MakeClient(0)->Next();
  ASSERT_FALSE(scan.profile.read_keys.empty());
  RecordingContext scan_ctx;
  ASSERT_TRUE(scan.logic(scan_ctx).ok());
  EXPECT_EQ(scan_ctx.touched, scan.profile.read_keys);
}

TEST(YcsbTest, MixRespectsRmwPercentage) {
  auto options = SmallYcsb();
  options.rmw_pct = 50;
  YcsbWorkload workload(options);
  auto client = workload.MakeClient(3);
  int rmw = 0;
  constexpr int kTxns = 2000;
  for (int i = 0; i < kTxns; ++i) {
    if (std::string(client->Next().type) == "rmw") ++rmw;
  }
  EXPECT_NEAR(static_cast<double>(rmw) / kTxns, 0.5, 0.05);
}

TEST(YcsbTest, AffinityRenewalChangesRegion) {
  auto options = SmallYcsb();
  options.rmw_pct = 100;
  options.affinity_txns = 5;
  YcsbWorkload workload(options);
  auto client = workload.MakeClient(1);
  std::set<PartitionId> bases;
  for (int i = 0; i < 100; ++i) {
    bases.insert(
        workload.partitioner().PartitionOf(client->Next().profile.write_keys[0]));
  }
  // 20 affinity periods over 20 partitions: several distinct regions.
  EXPECT_GE(bases.size(), 3u);
}

TEST(YcsbTest, ShuffleChangesCorrelationOrder) {
  auto options = SmallYcsb();
  YcsbWorkload workload(options);
  std::vector<PartitionId> before;
  for (uint64_t pos = 0; pos < workload.num_partitions(); ++pos) {
    before.push_back(workload.OrderedAt(pos));
  }
  workload.ShuffleCorrelations(123);
  std::vector<PartitionId> after;
  for (uint64_t pos = 0; pos < workload.num_partitions(); ++pos) {
    after.push_back(workload.OrderedAt(pos));
  }
  EXPECT_NE(before, after);
  // Still a permutation, and PositionOf is its inverse.
  std::set<PartitionId> unique(after.begin(), after.end());
  EXPECT_EQ(unique.size(), workload.num_partitions());
  for (uint64_t pos = 0; pos < workload.num_partitions(); ++pos) {
    EXPECT_EQ(workload.PositionOf(after[pos]), pos);
  }
}

TEST(YcsbTest, DeterministicClients) {
  YcsbWorkload a(SmallYcsb()), b(SmallYcsb());
  auto ca = a.MakeClient(5), cb = b.MakeClient(5);
  for (int i = 0; i < 20; ++i) {
    WorkloadTxn ta = ca->Next(), tb = cb->Next();
    ASSERT_EQ(ta.profile.write_keys.size(), tb.profile.write_keys.size());
    for (size_t k = 0; k < ta.profile.write_keys.size(); ++k) {
      EXPECT_EQ(ta.profile.write_keys[k], tb.profile.write_keys[k]);
    }
  }
}

TEST(YcsbTest, ZipfianSkewsBasePartitions) {
  auto options = SmallYcsb();
  options.rmw_pct = 100;
  options.zipfian = true;
  options.affinity_txns = 1;  // fresh base every transaction
  YcsbWorkload workload(options);
  auto client = workload.MakeClient(2);
  std::unordered_map<PartitionId, int> counts;
  for (int i = 0; i < 3000; ++i) {
    counts[workload.partitioner().PartitionOf(
        client->Next().profile.write_keys[0])]++;
  }
  int max_count = 0;
  for (const auto& [p, c] : counts) max_count = std::max(max_count, c);
  // Skewed: the hottest partition gets far more than the uniform share.
  EXPECT_GT(max_count, 3 * 3000 / 20);
}

// ---- TPC-C -------------------------------------------------------------------

TpccWorkload::Options SmallTpcc() {
  TpccWorkload::Options options;
  options.num_warehouses = 3;
  options.districts_per_warehouse = 2;
  options.customers_per_district = 20;
  options.num_items = 50;
  options.initial_orders_per_district = 3;
  return options;
}

class TpccFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    workload_ = std::make_unique<TpccWorkload>(SmallTpcc());
    core::DynaMastSystem::Options options = FastSystem(3);
    options.selector.weights = selector::StrategyWeights::Tpcc();
    system_ = std::make_unique<core::DynaMastSystem>(
        options, &workload_->partitioner());
    ASSERT_TRUE(workload_->Load(*system_).ok());
    system_->Seal();
  }
  void TearDown() override { system_->Shutdown(); }

  double ReadWarehouseYtd(uint32_t w) {
    return ReadDouble(RecordKey{TpccWorkload::kWarehouse,
                                workload_->WarehouseKey(w)}, 0);
  }
  double ReadDouble(const RecordKey& key, size_t field) {
    std::string raw;
    EXPECT_TRUE(
        system_->cluster().site(0)->engine().ReadLatest(key, &raw).ok());
    storage::RowBuffer row;
    EXPECT_TRUE(storage::RowBuffer::Parse(raw, &row).ok());
    return row.GetDouble(field);
  }

  std::unique_ptr<TpccWorkload> workload_;
  std::unique_ptr<core::DynaMastSystem> system_;
};

TEST_F(TpccFixture, PartitionLayoutBySubWarehouseGroups) {
  // 3 warehouses, 2 districts, 50 items with the default 100-item stock
  // group: per warehouse 1 warehouse + 2 district + 2 customer + 1 stock
  // partitions, plus the trailing ITEM partition.
  const auto& p = workload_->partitioner();
  EXPECT_EQ(workload_->PartitionsPerWarehouse(), 10u);
  EXPECT_EQ(p.NumPartitions(), 3u * 10u + 1u);
  EXPECT_EQ(p.PartitionOf(RecordKey{TpccWorkload::kWarehouse, 2}),
            workload_->WarehousePartition(2));
  EXPECT_EQ(p.PartitionOf(RecordKey{TpccWorkload::kDistrict,
                                    workload_->DistrictKey(1, 1)}),
            workload_->DistrictPartition(1, 1));
  EXPECT_EQ(p.PartitionOf(RecordKey{TpccWorkload::kCustomer,
                                    workload_->CustomerKey(2, 1, 19)}),
            workload_->CustomerPartition(2, 1, 19));
  EXPECT_EQ(p.PartitionOf(RecordKey{TpccWorkload::kStock,
                                    workload_->StockKey(1, 49)}),
            workload_->StockPartition(1, 49));
  // Orders / order lines / new-order / history rows live in their
  // district's partition, so inserts stay inside a mastered partition.
  EXPECT_EQ(p.PartitionOf(RecordKey{TpccWorkload::kOrder,
                                    workload_->OrderKey(2, 0, 55)}),
            workload_->DistrictPartition(2, 0));
  EXPECT_EQ(p.PartitionOf(RecordKey{TpccWorkload::kOrderLine,
                                    workload_->OrderLineKey(2, 0, 55, 3)}),
            workload_->DistrictPartition(2, 0));
  EXPECT_EQ(p.PartitionOf(RecordKey{TpccWorkload::kHistory,
                                    workload_->HistoryKey(2, 0, 99)}),
            workload_->DistrictPartition(2, 0));
  EXPECT_EQ(p.PartitionOf(RecordKey{TpccWorkload::kItem, 7}),
            workload_->ItemPartition());
  // By-warehouse placement keeps every partition of a warehouse together.
  const auto placement = workload_->WarehousePlacement(3);
  EXPECT_EQ(placement[workload_->DistrictPartition(2, 1)], 2u);
  EXPECT_EQ(placement[workload_->StockPartition(2, 10)], 2u);
}

TEST_F(TpccFixture, LoaderPopulatesInitialOrders) {
  std::string raw;
  // District 0 of warehouse 0 has next_o_id = initial + 1 = 4.
  ASSERT_TRUE(system_->cluster().site(0)->engine().ReadLatest(
      RecordKey{TpccWorkload::kDistrict, workload_->DistrictKey(0, 0)}, &raw)
                  .ok());
  storage::RowBuffer row;
  ASSERT_TRUE(storage::RowBuffer::Parse(raw, &row).ok());
  EXPECT_EQ(row.GetUint64(2), 4u);
  EXPECT_TRUE(system_->cluster().site(0)->engine().Contains(
      RecordKey{TpccWorkload::kOrder, workload_->OrderKey(0, 0, 3)}));
}

TEST_F(TpccFixture, AllTransactionTypesExecute) {
  auto client = workload_->MakeClient(0);
  core::ClientState state;
  state.id = 1;
  std::set<std::string> seen;
  for (int i = 0; i < 120 && seen.size() < 3; ++i) {
    WorkloadTxn txn = client->Next();
    core::TxnResult result;
    Status s = system_->Execute(state, txn.profile, txn.logic, &result);
    ASSERT_TRUE(s.ok()) << txn.type << ": " << s.ToString();
    seen.insert(txn.type);
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST_F(TpccFixture, NewOrderAdvancesDistrictAndInsertsRows) {
  // Force a deterministic New-Order via a client and execute it.
  auto client = workload_->MakeClient(0);
  core::ClientState state;
  state.id = 1;
  for (int i = 0; i < 200; ++i) {
    WorkloadTxn txn = client->Next();
    if (std::string(txn.type) != "new-order") continue;
    core::TxnResult result;
    ASSERT_TRUE(system_->Execute(state, txn.profile, txn.logic, &result).ok());
    // The district pointed at by the write set advanced its next_o_id and
    // the order row exists.
    const RecordKey district_key = txn.profile.write_keys[0];
    std::string raw;
    ASSERT_TRUE(system_->cluster()
                    .site(result.executed_at)
                    ->engine()
                    .ReadLatest(district_key, &raw)
                    .ok());
    storage::RowBuffer row;
    ASSERT_TRUE(storage::RowBuffer::Parse(raw, &row).ok());
    const uint64_t next_o_id = row.GetUint64(2);
    EXPECT_GE(next_o_id, 5u);
    return;
  }
  FAIL() << "no new-order generated";
}

TEST_F(TpccFixture, PaymentConsistency) {
  // TPC-C consistency condition 1 (scaled): warehouse YTD grows by the sum
  // of payment amounts against it.
  const double initial_ytd = ReadWarehouseYtd(0);
  auto client = workload_->MakeClient(0);  // home warehouse 0
  core::ClientState state;
  state.id = 1;
  int payments = 0;
  for (int i = 0; i < 300 && payments < 10; ++i) {
    WorkloadTxn txn = client->Next();
    if (std::string(txn.type) != "payment") continue;
    core::TxnResult result;
    ASSERT_TRUE(system_->Execute(state, txn.profile, txn.logic, &result).ok());
    ++payments;
  }
  ASSERT_EQ(payments, 10);
  // Wait for replica convergence, then check at site 0.
  const VersionVector target =
      system_->cluster().site(0)->CurrentVersion();
  EXPECT_GT(ReadWarehouseYtd(0), initial_ytd);
  (void)target;
}

TEST_F(TpccFixture, ReconnaissanceTracksRemoteStockPartitions) {
  // After recording a remote-supply order, Stock-Level's declared read
  // partitions include the remote warehouse's stock partition.
  const PartitionId remote_stock = workload_->StockPartition(2, 7);
  workload_->RecordOrderStockPartitions(0, 0, {remote_stock});
  auto partitions = workload_->RecentStockPartitions(0, 0);
  EXPECT_NE(std::find(partitions.begin(), partitions.end(), remote_stock),
            partitions.end());
}

TEST_F(TpccFixture, OrderStatusExecutes) {
  // Enable the Order-Status class and run until one commits.
  auto options = SmallTpcc();
  options.new_order_pct = 30;
  options.payment_pct = 30;
  options.stock_level_pct = 10;  // remaining 30% = order-status
  TpccWorkload workload(options);
  core::DynaMastSystem::Options sys_options = FastSystem(3);
  sys_options.selector.weights = selector::StrategyWeights::Tpcc();
  core::DynaMastSystem system(sys_options, &workload.partitioner());
  ASSERT_TRUE(workload.Load(system).ok());
  system.Seal();
  auto client = workload.MakeClient(0);
  core::ClientState state;
  state.id = 1;
  int order_status_runs = 0;
  for (int i = 0; i < 200 && order_status_runs < 5; ++i) {
    WorkloadTxn txn = client->Next();
    core::TxnResult result;
    Status s = system.Execute(state, txn.profile, txn.logic, &result);
    ASSERT_TRUE(s.ok()) << txn.type << ": " << s.ToString();
    if (std::string(txn.type) == "order-status") {
      EXPECT_TRUE(txn.profile.read_only);
      ++order_status_runs;
    }
  }
  EXPECT_GE(order_status_runs, 5);
  system.Shutdown();
}

TEST(TpccOptionsTest, CrossWarehouseZeroMeansSingleWarehouse) {
  // Without cross-warehouse transactions, every write partition belongs
  // to the client's home warehouse — so under by-warehouse placement the
  // workload is perfectly partitionable (no 2PC, no remastering).
  auto options = SmallTpcc();
  options.cross_warehouse_neworder_pct = 0;
  options.remote_payment_pct = 0;
  TpccWorkload workload(options);
  auto client = workload.MakeClient(0);  // home warehouse 0
  for (int i = 0; i < 100; ++i) {
    WorkloadTxn txn = client->Next();
    if (txn.profile.read_only) continue;
    for (const RecordKey& key : txn.profile.write_keys) {
      const PartitionId p = workload.partitioner().PartitionOf(key);
      EXPECT_EQ(workload.WarehouseOfPartition(p), 0u) << txn.type;
    }
  }
}

// ---- SmallBank ------------------------------------------------------------

SmallBankWorkload::Options SmallSmallBank() {
  SmallBankWorkload::Options options;
  options.num_accounts = 1000;
  options.accounts_per_partition = 100;
  return options;
}

TEST(SmallBankTest, BalanceCodec) {
  const std::string v = SmallBankWorkload::MakeBalance(123.5);
  EXPECT_DOUBLE_EQ(SmallBankWorkload::BalanceOf(v), 123.5);
}

TEST(SmallBankTest, MixPercentages) {
  SmallBankWorkload workload(SmallSmallBank());
  auto client = workload.MakeClient(0);
  std::map<std::string, int> counts;
  constexpr int kTxns = 3000;
  for (int i = 0; i < kTxns; ++i) counts[client->Next().type]++;
  const double single = counts["deposit-checking"] + counts["transact-savings"];
  EXPECT_NEAR(single / kTxns, 0.45, 0.05);
  EXPECT_NEAR(static_cast<double>(counts["send-payment"]) / kTxns, 0.40, 0.05);
  EXPECT_NEAR(static_cast<double>(counts["balance"]) / kTxns, 0.15, 0.04);
}

TEST(SmallBankTest, TransactionsAreAtMostTwoRows) {
  SmallBankWorkload workload(SmallSmallBank());
  auto client = workload.MakeClient(1);
  for (int i = 0; i < 200; ++i) {
    WorkloadTxn txn = client->Next();
    EXPECT_LE(txn.profile.write_keys.size(), 2u);
    EXPECT_LE(txn.profile.read_keys.size(), 2u);
  }
}

TEST(SmallBankTest, ConservationUnderDynaMast) {
  // Deposits add money, so conservation is checked on a transfer-only
  // update mix (SendPayment moves money between accounts).
  auto conservation_options = SmallSmallBank();
  conservation_options.single_update_pct = 0;
  conservation_options.two_row_update_pct = 85;
  SmallBankWorkload workload(conservation_options);
  core::DynaMastSystem system(FastSystem(3), &workload.partitioner());
  ASSERT_TRUE(workload.Load(system).ok());
  system.Seal();

  Driver::Options driver_options;
  driver_options.num_clients = 4;
  driver_options.warmup = std::chrono::milliseconds(50);
  driver_options.measure = std::chrono::milliseconds(400);
  Driver driver(driver_options);
  Driver::Report report = driver.Run(system, workload);
  EXPECT_GT(report.committed, 0u);
  EXPECT_EQ(report.errors, 0u);

  // Total money across all checking+savings accounts is invariant: audit
  // with one consistent snapshot.
  core::ClientState auditor;
  auditor.id = 999;
  core::TxnProfile audit;
  audit.read_only = true;
  double total = 0;
  auto logic = [&total](core::TxnContext& ctx) -> Status {
    for (uint64_t account = 0; account < 1000; ++account) {
      for (TableId t : {SmallBankWorkload::kChecking,
                        SmallBankWorkload::kSavings}) {
        std::string value;
        Status s = ctx.Get(RecordKey{t, account}, &value);
        if (!s.ok()) return s;
        total += SmallBankWorkload::BalanceOf(value);
      }
    }
    return Status::OK();
  };
  core::TxnResult result;
  ASSERT_TRUE(system.Execute(auditor, audit, logic, &result).ok());
  EXPECT_NEAR(total, 1000 * 2 * 10000.0, 0.01);
  system.Shutdown();
}

// ---- Driver -----------------------------------------------------------------

TEST(DriverTest, ReportsThroughputAndLatency) {
  YcsbWorkload workload(SmallYcsb());
  core::DynaMastSystem system(FastSystem(2), &workload.partitioner());
  ASSERT_TRUE(system.CreateTable(YcsbWorkload::kTable).ok());
  ASSERT_TRUE(workload.Load(system).ok());
  system.Seal();

  Driver::Options options;
  options.num_clients = 4;
  options.warmup = std::chrono::milliseconds(50);
  options.measure = std::chrono::milliseconds(300);
  options.timeline_resolution = std::chrono::milliseconds(100);
  Driver driver(options);
  Driver::Report report = driver.Run(system, workload);

  EXPECT_GT(report.committed, 0u);
  EXPECT_GT(report.Throughput(), 0.0);
  EXPECT_FALSE(report.timeline.empty());
  EXPECT_FALSE(report.committed_by_type.empty());
  for (const auto& [type, count] : report.committed_by_type) {
    const LatencyRecorder* latency = report.LatencyFor(type);
    ASSERT_NE(latency, nullptr);
    EXPECT_GT(latency->count(), 0u);
  }
  EXPECT_NE(report.Summary().find("tput="), std::string::npos);
  system.Shutdown();
}

TEST(DriverTest, ScheduledActionFires) {
  YcsbWorkload workload(SmallYcsb());
  core::DynaMastSystem system(FastSystem(2), &workload.partitioner());
  ASSERT_TRUE(workload.Load(system).ok());
  system.Seal();

  std::atomic<bool> fired{false};
  Driver::Options options;
  options.num_clients = 2;
  options.warmup = std::chrono::milliseconds(0);
  options.measure = std::chrono::milliseconds(200);
  options.scheduled_actions.emplace_back(std::chrono::milliseconds(50),
                                         [&fired] { fired.store(true); });
  Driver driver(options);
  driver.Run(system, workload);
  EXPECT_TRUE(fired.load());
  system.Shutdown();
}

}  // namespace
}  // namespace dynamast::workloads
