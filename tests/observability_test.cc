// Cross-plane integration test: the metrics registry, the span tracer,
// the routing-explain ring and the history recorder all observe one run
// of DynaMast under YCSB, and their counts must agree *exactly* — the
// observability planes are different views of the same ground truth, not
// independent estimates.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "core/dynamast_system.h"
#include "tools/si_checker.h"
#include "workloads/driver.h"
#include "workloads/ycsb.h"

namespace dynamast {
namespace {

uint64_t SumOverSites(const metrics::Registry& registry,
                      const std::string& family, uint32_t num_sites,
                      const metrics::Labels& extra = {}) {
  uint64_t total = 0;
  for (uint32_t s = 0; s < num_sites; ++s) {
    metrics::Labels labels = extra;
    labels.emplace_back("site", std::to_string(s));
    total += registry.CounterValue(family, labels);
  }
  return total;
}

TEST(ObservabilityTest, MetricsTraceAndHistoryAgreeExactly) {
  constexpr uint32_t kSites = 3;
  metrics::Registry registry;

  workloads::YcsbWorkload::Options wopts;
  wopts.num_keys = 2000;
  wopts.keys_per_partition = 100;
  wopts.value_size = 32;
  wopts.rmw_pct = 60;
  wopts.affinity_txns = 20;
  workloads::YcsbWorkload workload(wopts);

  core::DynaMastSystem::Options options;
  options.cluster.num_sites = kSites;
  options.cluster.record_history = true;
  options.cluster.metrics = &registry;
  options.cluster.trace = true;
  options.cluster.site.worker_slots = 8;
  options.cluster.site.read_op_cost = std::chrono::microseconds(0);
  options.cluster.site.write_op_cost = std::chrono::microseconds(0);
  options.cluster.site.apply_op_cost = std::chrono::microseconds(0);
  options.cluster.network.charge_delays = false;
  options.selector.weights = selector::StrategyWeights{1.0, 0.5, 3.0, 0.0};
  options.selector.sample_rate = 1.0;
  core::DynaMastSystem system(options, &workload.partitioner());
  ASSERT_TRUE(workload.Load(system).ok());
  system.Seal();

  workloads::Driver::Options dopts;
  dopts.num_clients = 4;
  dopts.warmup = std::chrono::milliseconds(50);
  dopts.measure = std::chrono::milliseconds(400);
  dopts.metrics = &registry;
  workloads::Driver driver(dopts);
  workloads::Driver::Report report = driver.Run(system, workload);
  ASSERT_GT(report.committed, 10u);

  // Drain the lazy-replication pipeline: once every site's svv is
  // identical (and no writers remain), every appended record — update or
  // marker — has been applied everywhere, so the refresh counters are
  // final.
  bool converged = false;
  for (int attempt = 0; attempt < 200 && !converged; ++attempt) {
    const VersionVector v0 = system.cluster().site(0)->CurrentVersion();
    converged = true;
    for (uint32_t s = 1; s < kSites; ++s) {
      if (!(system.cluster().site(s)->CurrentVersion() == v0)) {
        converged = false;
        break;
      }
    }
    if (!converged) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(converged) << "appliers did not drain";

  ASSERT_NE(system.history(), nullptr);
  const std::vector<history::HistoryEvent> events =
      system.history()->Snapshot();
  uint64_t update_commits = 0, readonly_commits = 0, releases = 0, grants = 0;
  uint64_t transitions = 0;
  for (const history::HistoryEvent& e : events) {
    switch (e.kind) {
      case history::EventKind::kCommit:
        (e.installed_seq > 0 ? update_commits : readonly_commits)++;
        break;
      case history::EventKind::kRelease:
        ++releases;
        break;
      case history::EventKind::kGrant:
        ++grants;
        transitions += e.partitions.size();
        break;
      case history::EventKind::kAbort:
        break;
    }
  }
  ASSERT_GT(update_commits, 0u);
  ASSERT_GT(releases, 0u) << "round-robin placement must trigger remastering";

  // Plane agreement: exported site counters vs the event log.
  EXPECT_EQ(SumOverSites(registry, "site_commits_total", kSites,
                         {{"kind", "update"}}),
            update_commits);
  EXPECT_EQ(SumOverSites(registry, "site_commits_total", kSites,
                         {{"kind", "readonly"}}),
            readonly_commits);
  EXPECT_EQ(SumOverSites(registry, "site_releases_total", kSites), releases);
  EXPECT_EQ(SumOverSites(registry, "site_grants_total", kSites), grants);
  EXPECT_EQ(releases, grants);  // markers come in release/grant pairs

  // Convergence plane: every granted partition is one mastership
  // transition, and transitions imply open relocalize windows that a
  // forced flush must close into the time_to_relocalize histogram.
  ASSERT_GT(transitions, 0u);
  EXPECT_EQ(SumOverSites(registry, "site_mastership_transitions_total",
                         kSites),
            transitions);
  system.site_selector().convergence().Flush(metrics::NowMicros(),
                                             /*force=*/true);
  EXPECT_GT(system.site_selector().convergence().relocalized(), 0u);
  const LatencyRecorder* relocalize =
      registry.HistogramRecorder("selector_time_to_relocalize_us");
  ASSERT_NE(relocalize, nullptr);
  EXPECT_EQ(relocalize->count(),
            system.site_selector().convergence().relocalized());

  // Every authored record (update commit or marker) is applied at each of
  // the other sites exactly once.
  EXPECT_EQ(SumOverSites(registry, "site_refresh_applied_total", kSites),
            (update_commits + releases + grants) * (kSites - 1));

  // Driver-plane agreement: exported driver counters equal the report.
  for (const auto& [type, count] : report.committed_by_type) {
    EXPECT_EQ(registry.CounterValue("driver_committed_total",
                                    {{"type", type}}),
              count)
        << type;
  }
  uint64_t aborted_exported = 0;
  for (const auto& [reason, count] : report.aborted_by_reason) {
    EXPECT_EQ(registry.CounterValue("driver_aborted_total",
                                    {{"reason", reason}}),
              count)
        << reason;
    aborted_exported += count;
  }
  EXPECT_EQ(aborted_exported, report.errors);

  // The si_checker reconciliation sees the same equalities through the
  // JSON surface (the exact path the CLI --metrics flag exercises).
  tools::MetricsReconciliation reconciliation;
  ASSERT_TRUE(tools::ReconcileMetrics(events, registry.SnapshotJson(),
                                      &reconciliation)
                  .ok());
  EXPECT_TRUE(reconciliation.ok()) << reconciliation.ToString();

  // Routing-explain plane: decisions were recorded with a full score row
  // per site and a winner drawn from it.
  const auto explains = system.site_selector().RecentExplains();
  ASSERT_FALSE(explains.empty());
  for (const auto& explain : explains) {
    EXPECT_EQ(explain.scores.size(), kSites);
    EXPECT_LT(explain.winner, kSites);
    EXPECT_FALSE(explain.partitions.empty());
  }
  EXPECT_GE(registry.CounterValue("routing_explain_decisions_total"),
            explains.size());

  // Trace plane: spans exist for the full route -> execute -> commit
  // chain, and remastering left release/grant spans.
  ASSERT_NE(system.tracer(), nullptr);
  uint64_t route_spans = 0, commit_spans = 0, release_spans = 0;
  for (const trace::TraceEvent& e : system.tracer()->Snapshot()) {
    if (e.name == "route") ++route_spans;
    if (e.name == "commit") ++commit_spans;
    if (e.name == "release") ++release_spans;
  }
  EXPECT_GT(route_spans, 0u);
  EXPECT_GT(commit_spans, 0u);
  EXPECT_GT(release_spans, 0u);

  system.Shutdown();
}

// Disabling telemetry must disable it: no registry -> the global registry
// is used but no tracer exists, and instrumented paths stay no-ops.
TEST(ObservabilityTest, TracingOffByDefault) {
  workloads::YcsbWorkload::Options wopts;
  wopts.num_keys = 500;
  wopts.keys_per_partition = 100;
  workloads::YcsbWorkload workload(wopts);
  core::DynaMastSystem::Options options;
  options.cluster.num_sites = 2;
  options.cluster.site.read_op_cost = std::chrono::microseconds(0);
  options.cluster.site.write_op_cost = std::chrono::microseconds(0);
  options.cluster.site.apply_op_cost = std::chrono::microseconds(0);
  options.cluster.network.charge_delays = false;
  core::DynaMastSystem system(options, &workload.partitioner());
  ASSERT_TRUE(workload.Load(system).ok());
  system.Seal();
  EXPECT_EQ(system.tracer(), nullptr);
  system.Shutdown();
}

}  // namespace
}  // namespace dynamast
