// Tests for Status, Random / Zipfian, and LatencyRecorder.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <thread>
#include <vector>

#include "common/latency_recorder.h"
#include "common/random.h"
#include "common/status.h"

namespace dynamast {
namespace {

// ---- Status ------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryAndPredicates) {
  EXPECT_TRUE(Status::NotFound().IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists().IsAlreadyExists());
  EXPECT_TRUE(Status::InvalidArgument().IsInvalidArgument());
  EXPECT_TRUE(Status::Aborted().IsAborted());
  EXPECT_TRUE(Status::TimedOut().IsTimedOut());
  EXPECT_TRUE(Status::NotMaster().IsNotMaster());
  EXPECT_TRUE(Status::Unavailable().IsUnavailable());
  EXPECT_TRUE(Status::Corruption().IsCorruption());
  EXPECT_TRUE(Status::SnapshotTooOld().IsSnapshotTooOld());
  EXPECT_TRUE(Status::Internal().IsInternal());
  EXPECT_FALSE(Status::NotFound().ok());
}

TEST(StatusTest, MessageCarried) {
  Status s = Status::Aborted("write-write conflict");
  EXPECT_EQ(s.message(), "write-write conflict");
  EXPECT_EQ(s.ToString(), "Aborted: write-write conflict");
}

TEST(StatusTest, EqualityComparesCodeOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound() == Status::Aborted());
}

// ---- Random ------------------------------------------------------------

TEST(RandomTest, DeterministicForSameSeed) {
  Random a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RandomTest, UniformRespectsBound) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Uniform(17), 17u);
}

TEST(RandomTest, UniformRangeInclusive) {
  Random rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t v = rng.UniformRange(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, BernoulliExtremes) {
  Random rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RandomTest, BinomialMeanApproximatelyNp) {
  Random rng(13);
  double sum = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) sum += rng.Binomial(5, 0.5);
  const double mean = sum / kTrials;
  EXPECT_NEAR(mean, 2.5, 0.1);
}

TEST(RandomTest, BinomialBounds) {
  Random rng(15);
  for (int i = 0; i < 1000; ++i) EXPECT_LE(rng.Binomial(5, 0.5), 5u);
}

TEST(ZipfianTest, ProducesValuesInRange) {
  Random rng(17);
  ZipfianGenerator zipf(1000, 0.75);
  for (int i = 0; i < 5000; ++i) EXPECT_LT(zipf.Next(rng), 1000u);
}

TEST(ZipfianTest, RankZeroIsHottest) {
  Random rng(19);
  ZipfianGenerator zipf(1000, 0.75);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 50000; ++i) counts[zipf.Next(rng)]++;
  // Rank 0 must receive (far) more mass than a mid-range rank.
  EXPECT_GT(counts[0], counts[500] * 5);
  // And a substantial share overall (theta=0.75, n=1000 -> several %).
  EXPECT_GT(counts[0], 50000 / 100);
}

TEST(ZipfianTest, SkewIncreasesWithTheta) {
  Random rng(21);
  ZipfianGenerator weak(1000, 0.4), strong(1000, 0.95);
  int weak_zero = 0, strong_zero = 0;
  for (int i = 0; i < 30000; ++i) {
    if (weak.Next(rng) == 0) ++weak_zero;
    if (strong.Next(rng) == 0) ++strong_zero;
  }
  EXPECT_GT(strong_zero, weak_zero);
}

TEST(ScrambledZipfianTest, SpreadsHotKeys) {
  Random rng(23);
  ScrambledZipfianGenerator zipf(1000, 0.75);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 50000; ++i) counts[zipf.Next(rng)]++;
  // The hottest key should not be key 0 deterministically placed at the
  // front — scrambling moves it, but skew is preserved: some key is hot.
  int max_count = 0;
  for (const auto& [key, count] : counts) max_count = std::max(max_count, count);
  EXPECT_GT(max_count, 50000 / 200);
}

// ---- LatencyRecorder ----------------------------------------------------

TEST(LatencyRecorderTest, EmptyRecorder) {
  LatencyRecorder recorder;
  EXPECT_EQ(recorder.count(), 0u);
  EXPECT_EQ(recorder.MeanMicros(), 0.0);
  EXPECT_EQ(recorder.PercentileMicros(0.5), 0.0);
}

TEST(LatencyRecorderTest, SingleValue) {
  LatencyRecorder recorder;
  recorder.Record(1000);
  EXPECT_EQ(recorder.count(), 1u);
  EXPECT_DOUBLE_EQ(recorder.MeanMicros(), 1000.0);
  EXPECT_EQ(recorder.MaxMicros(), 1000u);
  // Bucketed estimate within the ~4% bucket resolution.
  EXPECT_NEAR(recorder.PercentileMicros(0.5), 1000.0, 60.0);
}

TEST(LatencyRecorderTest, PercentilesOrdered) {
  LatencyRecorder recorder;
  Random rng(1);
  for (int i = 0; i < 10000; ++i) recorder.Record(1 + rng.Uniform(100000));
  const double p50 = recorder.PercentileMicros(0.50);
  const double p90 = recorder.PercentileMicros(0.90);
  const double p99 = recorder.PercentileMicros(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  // Uniform distribution: p50 should sit near the middle.
  EXPECT_NEAR(p50, 50000.0, 8000.0);
  EXPECT_NEAR(p90, 90000.0, 9000.0);
}

TEST(LatencyRecorderTest, MergeCombines) {
  LatencyRecorder a, b;
  for (int i = 0; i < 100; ++i) a.Record(10);
  for (int i = 0; i < 100; ++i) b.Record(100000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_GT(a.PercentileMicros(0.99), 50000.0);
  EXPECT_LT(a.PercentileMicros(0.25), 100.0);
}

// Regression: Merge used to take both recorders' locks at once (relying
// on std::scoped_lock's retry algorithm under a wrong "ordered by
// address" comment). It now snapshots `other` and folds the copy in, so
// concurrent cross-merges can never hold the two locks together. This
// must terminate — and deadlock here hangs the test runner, which the
// ctest timeout turns into a failure.
TEST(LatencyRecorderTest, ConcurrentCrossMergeTerminates) {
  LatencyRecorder a, b;
  for (int i = 0; i < 50; ++i) {
    a.Record(10);
    b.Record(20);
  }
  std::thread ta([&] {
    for (int i = 0; i < 2000; ++i) a.Merge(b);
  });
  std::thread tb([&] {
    for (int i = 0; i < 2000; ++i) b.Merge(a);
  });
  ta.join();
  tb.join();
  EXPECT_GE(a.count(), 100u);  // own 50 + at least one merge of b
  EXPECT_GE(b.count(), 100u);
  EXPECT_EQ(a.MaxMicros(), 20u);
  EXPECT_EQ(b.MaxMicros(), 20u);
}

TEST(LatencyRecorderTest, MergeWithSelfIsNoop) {
  LatencyRecorder a;
  a.Record(5);
  a.Merge(a);
  EXPECT_EQ(a.count(), 1u);
}

TEST(LatencyRecorderTest, ResetClears) {
  LatencyRecorder a;
  a.Record(5);
  a.Reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.MaxMicros(), 0u);
}

TEST(LatencyRecorderTest, SummaryMentionsCount) {
  LatencyRecorder a;
  a.Record(1500);
  const std::string summary = a.Summary();
  EXPECT_NE(summary.find("n=1"), std::string::npos);
  EXPECT_NE(summary.find("avg="), std::string::npos);
}

TEST(StopwatchTest, MeasuresElapsed) {
  Stopwatch watch;
  // Just sanity: non-negative and monotonic.
  const auto first = watch.ElapsedMicros();
  const auto second = watch.ElapsedMicros();
  EXPECT_GE(second, first);
}

}  // namespace
}  // namespace dynamast
