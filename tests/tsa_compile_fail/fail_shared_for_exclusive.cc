// MUST NOT COMPILE under -Werror=thread-safety: writes a guarded field
// while holding only the shared (reader) side of the lock.
#include "common/debug_mutex.h"

class Table {
 public:
  void Mutate() {
    dynamast::ReaderMutexLock lock(mu_);
    ++version_;  // needs the exclusive capability
  }

 private:
  mutable dynamast::DebugSharedMutex mu_{"tsa.fixture"};
  int version_ DYNAMAST_GUARDED_BY(mu_) = 0;
};

int main() {
  Table t;
  t.Mutate();
  return 0;
}
