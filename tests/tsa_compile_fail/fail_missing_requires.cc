// MUST NOT COMPILE under -Werror=thread-safety: calls a REQUIRES
// helper without holding the lock it names.
#include "common/debug_mutex.h"

class Counter {
 public:
  void BumpLocked() DYNAMAST_REQUIRES(mu_) { ++value_; }
  void Bump() { BumpLocked(); }  // lock not held

 private:
  mutable dynamast::DebugMutex mu_{"tsa.fixture"};
  int value_ DYNAMAST_GUARDED_BY(mu_) = 0;
};

int main() {
  Counter c;
  c.Bump();
  return 0;
}
