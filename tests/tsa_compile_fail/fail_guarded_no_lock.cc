// MUST NOT COMPILE under -Werror=thread-safety: reads a GUARDED_BY
// field without holding its mutex.
#include "common/debug_mutex.h"

class Counter {
 public:
  int Get() const { return value_; }  // no lock held

 private:
  mutable dynamast::DebugMutex mu_{"tsa.fixture"};
  int value_ DYNAMAST_GUARDED_BY(mu_) = 0;
};

int main() {
  Counter c;
  return c.Get();
}
