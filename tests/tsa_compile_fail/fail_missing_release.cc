// MUST NOT COMPILE under -Werror=thread-safety: returns while still
// holding a manually-acquired lock.
#include "common/debug_mutex.h"

class Counter {
 public:
  void Bump() {
    mu_.lock();
    ++value_;
    // missing mu_.unlock()
  }

 private:
  mutable dynamast::DebugMutex mu_{"tsa.fixture"};
  int value_ DYNAMAST_GUARDED_BY(mu_) = 0;
};

int main() {
  Counter c;
  c.Bump();
  return 0;
}
