// Positive control: the same shapes as the fail_* snippets, written
// correctly. MUST compile cleanly under -Werror=thread-safety — if it
// doesn't, the harness (not the analysis) is broken.
#include "common/debug_mutex.h"

class Counter {
 public:
  int Get() const {
    dynamast::MutexLock lock(mu_);
    return value_;
  }
  void BumpLocked() DYNAMAST_REQUIRES(mu_) { ++value_; }
  void Bump() {
    dynamast::MutexLock lock(mu_);
    BumpLocked();
  }
  void BumpManual() {
    mu_.lock();
    ++value_;
    mu_.unlock();
  }

 private:
  mutable dynamast::DebugMutex mu_{"tsa.fixture"};
  int value_ DYNAMAST_GUARDED_BY(mu_) = 0;
};

class Gate {
 public:
  void Await() {
    dynamast::MutexLock lock(mu_);
    cv_.wait(mu_, [this]() DYNAMAST_REQUIRES(mu_) { return open_; });
  }
  void Open() {
    dynamast::MutexLock lock(mu_);
    open_ = true;
    cv_.notify_all();
  }

 private:
  mutable dynamast::DebugMutex mu_{"tsa.fixture"};
  dynamast::DebugCondVar cv_;
  bool open_ DYNAMAST_GUARDED_BY(mu_) = false;
};

class Table {
 public:
  int Read() const {
    dynamast::ReaderMutexLock lock(mu_);
    return version_;
  }
  void Mutate() {
    dynamast::WriterMutexLock lock(mu_);
    ++version_;
  }

 private:
  mutable dynamast::DebugSharedMutex mu_{"tsa.fixture"};
  int version_ DYNAMAST_GUARDED_BY(mu_) = 0;
};

int main() {
  Counter c;
  c.Bump();
  c.BumpManual();
  Table t;
  t.Mutate();
  return c.Get() + t.Read();
}
