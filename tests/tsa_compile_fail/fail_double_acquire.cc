// MUST NOT COMPILE under -Werror=thread-safety: acquires the same
// mutex twice in one scope via the scoped lockers.
#include "common/debug_mutex.h"

class Counter {
 public:
  void Bump() {
    dynamast::MutexLock outer(mu_);
    dynamast::MutexLock inner(mu_);  // already held
    ++value_;
  }

 private:
  mutable dynamast::DebugMutex mu_{"tsa.fixture"};
  int value_ DYNAMAST_GUARDED_BY(mu_) = 0;
};

int main() {
  Counter c;
  c.Bump();
  return 0;
}
