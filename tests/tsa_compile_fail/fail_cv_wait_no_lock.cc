// MUST NOT COMPILE under -Werror=thread-safety: waits on a condition
// variable without holding the mutex the wait names.
#include "common/debug_mutex.h"

class Gate {
 public:
  void Await() {
    // mu_ is not held across the wait.
    cv_.wait(mu_, [this]() DYNAMAST_REQUIRES(mu_) { return open_; });
  }

 private:
  mutable dynamast::DebugMutex mu_{"tsa.fixture"};
  dynamast::DebugCondVar cv_;
  bool open_ DYNAMAST_GUARDED_BY(mu_) = false;
};

int main() {
  Gate g;
  g.Await();
  return 0;
}
