#!/usr/bin/env python3
"""End-to-end tests for scripts/ama.py.

Runs the analyzer over the fixture trees in fixtures/ — a clean tree
whose atomic traffic matches its baseline, plus one seeded scenario per
rule family (unregistered atomic, new edge + defaulted order,
unjustified/unregistered/stale allowlist entries, unpaired
release-store) — and asserts exit codes and messages.  Also asserts
the profile dump is byte-identical across two runs (the committed
baseline must be reproducible).
"""

import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
AMA = os.path.join(REPO, "scripts", "ama.py")
FIXTURES = os.path.join(HERE, "fixtures")

failures = []


def run_ama(root, args=()):
    cmd = [sys.executable, AMA, "--root", os.path.join(FIXTURES, root)]
    cmd += list(args)
    proc = subprocess.run(cmd, capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


def check(name, root, args, want_exit, want_substrings=(), forbid=()):
    code, output = run_ama(root, args)
    problems = []
    if code != want_exit:
        problems.append(f"exit code {code}, wanted {want_exit}")
    for want in want_substrings:
        if want not in output:
            problems.append(f"output lacks {want!r}")
    for bad in forbid:
        if bad in output:
            problems.append(f"output unexpectedly contains {bad!r}")
    if problems:
        failures.append(name)
        print(f"FAIL {name}: " + "; ".join(problems))
        print("  --- ama output ---")
        for line in output.splitlines():
            print(f"  {line}")
    else:
        print(f"ok   {name}")


def check_deterministic(name, root):
    code1, out1 = run_ama(root, ("--dump",))
    code2, out2 = run_ama(root, ("--dump",))
    if code1 != 0 or code2 != 0:
        failures.append(name)
        print(f"FAIL {name}: dump exit codes {code1}/{code2}")
    elif out1 != out2:
        failures.append(name)
        print(f"FAIL {name}: two --dump runs differ")
    else:
        print(f"ok   {name}")


def main():
    check("clean tree matches its baseline", "clean", ("--check",),
          want_exit=0,
          want_substrings=("ama: baseline OK (7 edges",),
          forbid=("new-edge", "allowlist:", "unregistered-atomic"))

    check_deterministic("profile dump is deterministic", "clean")

    check("unregistered atomic fails naming field and roles",
          "unregistered_atomic", ("--check",), want_exit=1,
          want_substrings=(
              "ama: unregistered-atomic: src/core/state.h:41: atomic "
              "field `core::State::scratch_` has no row in the "
              "DESIGN.md atomic-field registry",
              "assign it a role: stat-counter, flag, seqno, publication",
          ),
          forbid=("new-edge", "core::State::running_"))

    check("new edges and a defaulted order fail the check", "new_edge_bad",
          ("--check",), want_exit=1,
          want_substrings=(
              "ama: new-edge: core::Telemetry::hits: "
              "core::State::MarkAndTotal -> fetch_add[relaxed]",
              "ama: new-edge: core::State::running_: core::State::Stop "
              "-> store[default]",
              "ama: defaulted-order: src/core/state.cc:11: store on "
              "`core::State::running_` (role flag) uses the defaulted "
              "seq_cst order",
              "run scripts/ama.py --update to record it",
          ),
          forbid=("core::State::Banner",))

    check("update refuses while a violation is unresolved", "new_edge_bad",
          ("--update",), want_exit=1,
          want_substrings=(
              "ama: defaulted-order: src/core/state.cc:11:",
              "ama: refusing to update the baseline while violations "
              "or allowlist problems are unresolved",
          ))

    check("allowlist: unjustified + unregistered + stale", "bad_allowlist",
          ("--check",), want_exit=1,
          want_substrings=(
              "allowlist[0] (role-order / core::State::running_) has "
              "no justification",
              "allowlist[1] (epoch-unprotected / core::State::ghost_) "
              "names field 'core::State::ghost_' which is not in the "
              "DESIGN.md atomic-field registry",
              "allowlist[2] (epoch-unprotected / core::State::banner_) "
              "matches no current violation (stale entry",
          ))

    check("release-store with no acquire side anywhere", "unpaired_release",
          ("--check",), want_exit=1,
          want_substrings=(
              "ama: unpaired-release: src/core/state.h:39: "
              "`core::State::version_` (role seqno) is release-stored "
              "in core::State::Bump but no acquire-side load exists "
              "anywhere in the tree",
          ),
          forbid=("new-edge",))

    if failures:
        print(f"\n{len(failures)} ama_test failure(s)", file=sys.stderr)
        return 1
    print("\nall ama_test checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
