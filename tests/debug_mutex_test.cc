// Tests for the DebugMutex lock-order checker (common/debug_mutex.h).
// The tracked wrappers are exercised directly, so these run in every
// build configuration regardless of DYNAMAST_LOCK_DEBUG.

#include "common/debug_mutex.h"

#include <gtest/gtest.h>

#include <mutex>
#include <shared_mutex>
#include <stdexcept>
#include <string>
#include <thread>

namespace dynamast::lockdebug {
namespace {

// Routes violations into an exception so a test observes detection
// without a death test; restores abort-on-violation on scope exit.
class ThrowOnViolation {
 public:
  ThrowOnViolation() {
    SetViolationHandlerForTest(
        [](const char* report) { throw std::runtime_error(report); });
  }
  ~ThrowOnViolation() { SetViolationHandlerForTest(nullptr); }
};

std::string Caught(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return "";
}

TEST(DebugMutexTest, ConsistentOrderIsSilent) {
  ResetGraphForTest();
  TrackedMutex a("silent.A");
  TrackedMutex b("silent.B");
  for (int i = 0; i < 3; ++i) {
    std::lock_guard ga(a);
    std::lock_guard gb(b);
  }
  EXPECT_EQ(HeldCount(), 0u);
  EXPECT_GE(EdgeCount(), 1u);
}

TEST(DebugMutexTest, DetectsAbBaInversion) {
  ResetGraphForTest();
  ThrowOnViolation guard;
  TrackedMutex a("inv.A");
  TrackedMutex b("inv.B");
  {
    std::lock_guard ga(a);
    std::lock_guard gb(b);  // establishes inv.A -> inv.B
  }
  std::lock_guard gb(b);
  const std::string report = Caught([&] { a.lock(); });  // inv.B -> inv.A
  EXPECT_NE(report.find("lock-order inversion"), std::string::npos) << report;
  EXPECT_NE(report.find("inv.A"), std::string::npos) << report;
  EXPECT_NE(report.find("inv.B"), std::string::npos) << report;
}

TEST(DebugMutexTest, DetectsInversionAcrossThreads) {
  ResetGraphForTest();
  ThrowOnViolation guard;
  TrackedMutex a("xthr.A");
  TrackedMutex b("xthr.B");
  // Thread 1 establishes A -> B and releases both before thread 2 runs,
  // so there is no actual deadlock — only the ordering hazard.
  std::thread t([&] {
    std::lock_guard ga(a);
    std::lock_guard gb(b);
  });
  t.join();
  std::string report;
  std::thread u([&] {
    std::lock_guard gb(b);
    report = Caught([&] { a.lock(); });
  });
  u.join();
  EXPECT_NE(report.find("lock-order inversion"), std::string::npos) << report;
}

TEST(DebugMutexTest, DetectsThreeLockCycle) {
  ResetGraphForTest();
  ThrowOnViolation guard;
  TrackedMutex a("tri.A");
  TrackedMutex b("tri.B");
  TrackedMutex c("tri.C");
  {
    std::lock_guard ga(a);
    std::lock_guard gb(b);  // tri.A -> tri.B
  }
  {
    std::lock_guard gb(b);
    std::lock_guard gc(c);  // tri.B -> tri.C
  }
  std::lock_guard gc(c);
  const std::string report = Caught([&] { a.lock(); });  // closes the cycle
  EXPECT_NE(report.find("lock-order inversion"), std::string::npos) << report;
  EXPECT_NE(report.find("tri.B"), std::string::npos) << report;
}

TEST(DebugMutexTest, DetectsRecursiveAcquisition) {
  ResetGraphForTest();
  ThrowOnViolation guard;
  TrackedMutex a("rec.A");
  a.lock();
  const std::string report = Caught([&] { a.lock(); });
  EXPECT_NE(report.find("recursive acquisition"), std::string::npos) << report;
  a.unlock();
}

TEST(DebugMutexTest, SameClassNestingRequiresAscendingRanks) {
  ResetGraphForTest();
  ThrowOnViolation guard;
  TrackedMutex p0("ranked.partition", 0);
  TrackedMutex p1("ranked.partition", 1);
  {  // ascending is the sorted-order protocol: silent
    std::lock_guard g0(p0);
    std::lock_guard g1(p1);
  }
  std::lock_guard g1(p1);
  const std::string report = Caught([&] { p0.lock(); });  // descending
  EXPECT_NE(report.find("same-class nesting"), std::string::npos) << report;
}

TEST(DebugMutexTest, SameClassNestingWithoutRanksIsAViolation) {
  ResetGraphForTest();
  ThrowOnViolation guard;
  TrackedMutex a("unranked.X");
  TrackedMutex b("unranked.X");
  std::lock_guard ga(a);
  const std::string report = Caught([&] { b.lock(); });
  EXPECT_NE(report.find("same-class nesting"), std::string::npos) << report;
}

TEST(DebugMutexTest, TryLockRecordsHeldButNoEdges) {
  ResetGraphForTest();
  TrackedMutex a("try.A");
  TrackedMutex b("try.B");
  ASSERT_TRUE(a.try_lock());
  EXPECT_EQ(HeldCount(), 1u);
  EXPECT_EQ(EdgeCount(), 0u);  // try_lock cannot complete a deadlock cycle
  b.lock();                    // blocking: records try.A -> try.B
  EXPECT_EQ(EdgeCount(), 1u);
  b.unlock();
  a.unlock();
  EXPECT_EQ(HeldCount(), 0u);
}

TEST(DebugMutexTest, SharedMutexParticipatesInOrdering) {
  ResetGraphForTest();
  ThrowOnViolation guard;
  TrackedSharedMutex a("shared.A");
  TrackedMutex b("shared.B");
  {
    a.lock_shared();
    std::lock_guard gb(b);  // shared.A -> shared.B
    a.unlock_shared();
  }
  std::lock_guard gb(b);
  const std::string report = Caught([&] { a.lock_shared(); });
  EXPECT_NE(report.find("lock-order inversion"), std::string::npos) << report;
}

TEST(DebugMutexTest, CondVarWaitReleasesAndReacquires) {
  ResetGraphForTest();
  TrackedMutex m("cv.M");
  BasicDebugCondVar<TrackedMutex> cv;
  bool ready = false;
  std::thread t([&] {
    std::lock_guard g(m);  // must be acquirable while the main thread waits
    ready = true;
    cv.notify_all();
  });
  {
    BasicMutexLock<TrackedMutex> lock(m);
    cv.wait(m, [&] { return ready; });
    EXPECT_EQ(HeldCount(), 1u);  // reacquired after the wait
  }
  t.join();
  EXPECT_EQ(HeldCount(), 0u);
}

TEST(DebugMutexTest, CondVarWaitUntilTimesOut) {
  ResetGraphForTest();
  TrackedMutex m("cvto.M");
  BasicDebugCondVar<TrackedMutex> cv;
  BasicMutexLock<TrackedMutex> lock(m);
  const auto r = cv.wait_until(
      m, std::chrono::steady_clock::now() + std::chrono::milliseconds(10));
  EXPECT_EQ(r, std::cv_status::timeout);
  EXPECT_EQ(HeldCount(), 1u);
}

// The real abort path (no handler installed): a deliberate A->B / B->A
// inversion kills the process with a cycle report on stderr.
TEST(DebugMutexDeathTest, InversionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SetViolationHandlerForTest(nullptr);
        ResetGraphForTest();
        TrackedMutex a("death.A");
        TrackedMutex b("death.B");
        {
          std::lock_guard ga(a);
          std::lock_guard gb(b);
        }
        std::lock_guard gb(b);
        a.lock();
      },
      "lock-order inversion");
}

TEST(DebugMutexTest, PlainWrappersForwardLocking) {
  PlainMutex m("plain.M");
  PlainSharedMutex sm("plain.SM");
  {
    std::lock_guard g(m);
    std::shared_lock s(sm);
  }
  EXPECT_TRUE(m.try_lock());
  m.unlock();
  sm.lock();
  sm.unlock();
  // Plain wrappers never touch the registry.
  EXPECT_EQ(HeldCount(), 0u);
}

}  // namespace
}  // namespace dynamast::lockdebug
