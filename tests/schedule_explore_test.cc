// Schedule-exploring concurrency harness (tier 2): drives every system
// through YCSB and SmallBank under the seedable schedule fuzzer
// (common/scheduler) and audits each run's recorded history with
// tools/si_checker. A failing seed is printed so the exact schedule bias
// can be replayed with DYNAMAST_SCHED_SEED=<seed>.
//
// Environment knobs:
//   DYNAMAST_SCHED_SEED   replay exactly one seed
//   DYNAMAST_SCHED_SEEDS  number of seeds to explore (default 3; CI's
//                         weekly job uses 50)
//   DYNAMAST_SCHED_TRACE  path to a decision-stream trace dumped by a
//                         failing run: TraceReplayTest replays it instead
//                         of recording a fresh one
//
// Every audited run records its decision stream (sched::StartRecord), and
// a failing audit persists the trace next to the history dump so the
// exact interleaving — not just the seed — can be replayed.
//
// In builds without -DDYNAMAST_SCHED_FUZZ=ON the sync-point hooks are
// no-ops and this degenerates to a plain multi-seed audit (still useful;
// the fuzzed configuration is what CI's weekly job runs). The exact
// replay and DPOR tests skip there: without hooks the engine cannot steer
// the schedule.
//
// The DYNAMAST_BREAK_SI build proves the auditor has teeth: with the
// grant-side version-vector wait compiled out, the remastering window
// opens and the auditor must catch it.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/dpor.h"
#include "common/history.h"
#include "common/partitioner.h"
#include "common/sched_trace.h"
#include "common/scheduler.h"
#include "core/cluster.h"
#include "site/site_manager.h"
#include "tools/si_checker.h"
#include "workloads/driver.h"
#include "workloads/smallbank.h"
#include "workloads/system_factory.h"
#include "workloads/ycsb.h"

namespace dynamast {
namespace {

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

// ::testing::TempDir() only guarantees a trailing separator for its
// built-in defaults, not for $TEST_TMPDIR (which CI points at the
// artifact-upload directory).
std::string TempPath(const std::string& name) {
  std::string dir = ::testing::TempDir();
  if (!dir.empty() && dir.back() != '/') dir += '/';
  return dir + name;
}

std::vector<uint64_t> FuzzSeeds() {
  if (const char* one = std::getenv("DYNAMAST_SCHED_SEED");
      one != nullptr && *one != '\0') {
    return {std::strtoull(one, nullptr, 10)};
  }
  const uint64_t n = EnvU64("DYNAMAST_SCHED_SEEDS", 3);
  std::vector<uint64_t> seeds;
  seeds.reserve(n);
  for (uint64_t i = 0; i < n; ++i) seeds.push_back(0x5eedULL + i * 7919);
  return seeds;
}

workloads::DeploymentOptions FastDeployment(uint64_t seed) {
  workloads::DeploymentOptions d;
  d.num_sites = 3;
  d.charge_network = false;
  d.read_op_cost = d.write_op_cost = d.apply_op_cost =
      std::chrono::microseconds(0);
  d.record_history = true;
  d.seed = seed;
  // Strip wall-clock inputs from routing so a replayed schedule routes
  // identically to the recorded one.
  d.deterministic = true;
  return d;
}

enum class WorkloadKind { kYcsb, kSmallBank };

std::unique_ptr<workloads::Workload> MakeWorkload(WorkloadKind kind,
                                                  uint64_t seed) {
  if (kind == WorkloadKind::kYcsb) {
    workloads::YcsbWorkload::Options o;
    o.num_keys = 1200;
    o.keys_per_partition = 60;
    o.value_size = 32;
    o.rmw_pct = 80;  // scans dominate runtime otherwise
    o.max_scan_partitions = 3;
    o.affinity_txns = 40;
    o.seed = seed;
    return std::make_unique<workloads::YcsbWorkload>(o);
  }
  workloads::SmallBankWorkload::Options o;
  o.num_accounts = 600;
  o.accounts_per_partition = 30;
  o.seed = seed;
  return std::make_unique<workloads::SmallBankWorkload>(o);
}

const char* WorkloadKindName(WorkloadKind kind) {
  return kind == WorkloadKind::kYcsb ? "ycsb" : "smallbank";
}

[[maybe_unused]] WorkloadKind WorkloadKindFromName(const std::string& name) {
  return name == "smallbank" ? WorkloadKind::kSmallBank : WorkloadKind::kYcsb;
}

struct RunResult {
  workloads::Driver::Report report;
  std::vector<history::HistoryEvent> events;
  uint64_t hash = 0;
  tools::AuditReport audit;
};

// Runs one (system, workload, seed) combination in fixed-count mode —
// every client executes exactly `ops_per_client` transactions, no
// wall-clock windows — and returns the history, its hash, and the audit.
// The caller picks the engine mode (fuzz / record / replay / explore)
// around this call; fixed-count mode is what makes the run a pure
// function of the schedule.
RunResult RunOnce(workloads::SystemKind kind, WorkloadKind wkind,
                  uint64_t seed, uint64_t ops_per_client = 40) {
  RunResult r;
  std::unique_ptr<workloads::Workload> workload = MakeWorkload(wkind, seed);
  auto system =
      workloads::MakeSystem(kind, FastDeployment(seed), workload->partitioner());
  if (system == nullptr || !workload->Load(*system).ok()) {
    ADD_FAILURE() << "failed to deploy " << workloads::SystemKindName(kind);
    return r;
  }
  system->Seal();

  workloads::Driver::Options dro;
  dro.num_clients = 4;
  dro.ops_per_client = ops_per_client;
  dro.seed = seed;
  r.report = workloads::Driver(dro).Run(*system, *workload);
  system->Shutdown();

  if (system->history() != nullptr) r.events = system->history()->Snapshot();
  r.hash = history::HashEvents(r.events);
  r.audit = tools::AuditHistory(
      r.events, tools::OptionsForSystem(workloads::SystemKindName(kind)));
  return r;
}

void DumpEvents(const std::vector<history::HistoryEvent>& events,
                const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  for (const history::HistoryEvent& e : events) {
    out << history::SerializeEvent(e) << "\n";
  }
}

// Runs one combination under the schedule fuzzer with the decision stream
// recorded, and audits its history. Any anomaly fails the test with the
// replay seed, a dump of the offending history, AND the recorded trace —
// the exact interleaving, not just a probabilistic seed.
void RunAndAudit(workloads::SystemKind kind, WorkloadKind wkind,
                 uint64_t seed) {
  sched::ResetIdentities();
  sched::StartRecord(seed, /*fuzz_layer=*/true);
  const RunResult run = RunOnce(kind, wkind, seed);
  const sched::Trace trace = sched::StopRecord();

  EXPECT_GT(run.report.committed, 0u)
      << workloads::SystemKindName(kind) << " committed nothing (seed " << seed
      << ", errors: " << run.report.errors << ")";
  if (!run.audit.ok()) {
    const std::string base = TempPath(std::string("schedule_explore_") +
                                      workloads::SystemKindName(kind) + "_" +
                                      std::to_string(seed));
    DumpEvents(run.events, base + ".history");
    sched::Trace annotated = trace;
    annotated.meta["system"] = workloads::SystemKindName(kind);
    annotated.meta["workload"] = WorkloadKindName(wkind);
    (void)annotated.DumpToFile(base + ".trace");
    FAIL() << workloads::SystemKindName(kind)
           << " failed the SI audit; replay with DYNAMAST_SCHED_TRACE=" << base
           << ".trace (or DYNAMAST_SCHED_SEED=" << seed
           << "); history dumped to " << base << ".history\n"
           << run.audit.ToString();
  }
}

class ScheduleExploreTest
    : public ::testing::TestWithParam<workloads::SystemKind> {};

TEST_P(ScheduleExploreTest, YcsbHistoriesAuditClean) {
  for (uint64_t seed : FuzzSeeds()) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    RunAndAudit(GetParam(), WorkloadKind::kYcsb, seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST_P(ScheduleExploreTest, SmallBankHistoriesAuditClean) {
  for (uint64_t seed : FuzzSeeds()) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    RunAndAudit(GetParam(), WorkloadKind::kSmallBank, seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSystems, ScheduleExploreTest,
    ::testing::ValuesIn(workloads::AllSystems()),
    [](const ::testing::TestParamInfo<workloads::SystemKind>& info) {
      std::string name = workloads::SystemKindName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(ScheduleFuzzerTest, SyncPointsFireWhenEnabled) {
#if !DYNAMAST_SCHED_FUZZ_ENABLED
  GTEST_SKIP() << "built without DYNAMAST_SCHED_FUZZ";
#else
  const uint64_t before = sched::PointCount();
  sched::ScopedSeed fuzz(12345);
  RangePartitioner partitioner(10, 2);
  core::Cluster::Options copts;
  copts.num_sites = 2;
  copts.network.charge_delays = false;
  core::Cluster cluster(copts, &partitioner);
  ASSERT_TRUE(cluster.CreateTable(0).ok());
  cluster.Stop();
  EXPECT_GT(sched::PointCount(), before)
      << "mutex hooks should hit the scheduler while fuzzing is enabled";
#endif
}

// ---- Exact replay ----------------------------------------------------

// Records one run per workload, then replays the trace twice: both
// replays must consume the full decision stream cleanly and produce a
// history hash identical to each other and to the recorded run. This is
// the deterministic-reproducer contract for every system.
class ExactReplayTest
    : public ::testing::TestWithParam<workloads::SystemKind> {};

TEST_P(ExactReplayTest, TwoReplaysReproduceRecordedHistoryHash) {
#if !DYNAMAST_SCHED_FUZZ_ENABLED
  GTEST_SKIP() << "built without DYNAMAST_SCHED_FUZZ (no sync-point hooks)";
#else
  for (WorkloadKind wkind : {WorkloadKind::kYcsb, WorkloadKind::kSmallBank}) {
    SCOPED_TRACE(WorkloadKindName(wkind));
    const uint64_t seed = FuzzSeeds().front();
    sched::ResetIdentities();
    sched::StartRecord(seed, /*fuzz_layer=*/false);
    const RunResult recorded = RunOnce(GetParam(), wkind, seed);
    const sched::Trace trace = sched::StopRecord();
    ASSERT_GT(recorded.report.committed, 0u);
    ASSERT_FALSE(trace.entries.empty())
        << "hooks recorded no sync points; replay would be vacuous";

    uint64_t replay_hash[2] = {0, 1};
    for (int round = 0; round < 2; ++round) {
      SCOPED_TRACE("replay round " + std::to_string(round));
      sched::ResetIdentities();
      sched::StartReplay(trace);
      const RunResult replayed = RunOnce(GetParam(), wkind, seed);
      const sched::ReplayResult rr = sched::StopReplay();
      EXPECT_TRUE(rr.clean) << rr.ToString();
      EXPECT_TRUE(replayed.audit.ok()) << replayed.audit.ToString();
      replay_hash[round] = replayed.hash;
    }
    EXPECT_EQ(replay_hash[0], replay_hash[1])
        << "two replays of one trace must produce byte-identical histories";
    EXPECT_EQ(replay_hash[0], recorded.hash)
        << "replay must reproduce the recorded history exactly";
  }
#endif
}

INSTANTIATE_TEST_SUITE_P(
    AllSystems, ExactReplayTest, ::testing::ValuesIn(workloads::AllSystems()),
    [](const ::testing::TestParamInfo<workloads::SystemKind>& info) {
      std::string name = workloads::SystemKindName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// Golden replay path for traces persisted by failing runs: with
// DYNAMAST_SCHED_TRACE=FILE set, the trace's meta block names the system
// and workload and the test replays that exact decision stream twice;
// without it, a fresh DynaMast/YCSB trace is recorded first (so the path
// is exercised on every run, not only post-failure).
TEST(TraceReplayTest, PersistedTraceReplaysToIdenticalHashes) {
#if !DYNAMAST_SCHED_FUZZ_ENABLED
  GTEST_SKIP() << "built without DYNAMAST_SCHED_FUZZ (no sync-point hooks)";
#else
  sched::Trace trace;
  if (const char* path = std::getenv("DYNAMAST_SCHED_TRACE");
      path != nullptr && *path != '\0') {
    ASSERT_TRUE(sched::Trace::LoadFromFile(path, &trace).ok())
        << "could not load DYNAMAST_SCHED_TRACE=" << path;
  } else {
    const uint64_t seed = FuzzSeeds().front();
    sched::ResetIdentities();
    sched::StartRecord(seed, /*fuzz_layer=*/true);
    (void)RunOnce(workloads::SystemKind::kDynaMast, WorkloadKind::kYcsb, seed);
    trace = sched::StopRecord();
    trace.meta["system"] = "dynamast";
    trace.meta["workload"] = "ycsb";
    const std::string saved = TempPath("trace_replay_golden.trace");
    ASSERT_TRUE(trace.DumpToFile(saved).ok());
    ASSERT_TRUE(sched::Trace::LoadFromFile(saved, &trace).ok());
  }
  ASSERT_FALSE(trace.entries.empty());

  workloads::SystemKind kind = workloads::SystemKind::kDynaMast;
  for (workloads::SystemKind k : workloads::AllSystems()) {
    auto it = trace.meta.find("system");
    if (it != trace.meta.end() && it->second == workloads::SystemKindName(k)) {
      kind = k;
    }
  }
  auto wit = trace.meta.find("workload");
  const WorkloadKind wkind = WorkloadKindFromName(
      wit == trace.meta.end() ? "ycsb" : wit->second);

  uint64_t hashes[2] = {0, 1};
  for (int round = 0; round < 2; ++round) {
    SCOPED_TRACE("replay round " + std::to_string(round));
    sched::ResetIdentities();
    sched::StartReplay(trace);
    const RunResult replayed = RunOnce(kind, wkind, trace.seed);
    const sched::ReplayResult rr = sched::StopReplay();
    EXPECT_TRUE(rr.clean) << rr.ToString();
    hashes[round] = replayed.hash;
  }
  EXPECT_EQ(hashes[0], hashes[1])
      << "byte-identical history hashes required across replays";
#endif
}

// ---- DPOR over a stock workload --------------------------------------

// A short DynaMast/YCSB scenario under the systematic explorer: the
// cluster spawns many threads whose operations are mostly independent
// (per-site state, per-topic logs), so partial-order reduction must prove
// some enabled alternatives equivalent and prune them. The executed vs.
// pruned counts are the measurable reduction the harness reports.
TEST(DporExploreTest, PrunesEquivalentInterleavingsOnStockWorkload) {
#if !DYNAMAST_SCHED_FUZZ_ENABLED
  GTEST_SKIP() << "built without DYNAMAST_SCHED_FUZZ (no sync-point hooks)";
#else
  sched::DporOptions opts;
  opts.max_executions = EnvU64("DYNAMAST_DPOR_EXECUTIONS", 4);
  // Budget must cover the serial setup prefix (table loads are traced
  // sync points too) plus the concurrent window, or every execution is
  // truncated before any real choice point appears.
  opts.max_steps = EnvU64("DYNAMAST_DPOR_MAX_STEPS", 400000);
  opts.seed = FuzzSeeds().front();
  opts.stop_on_failure = true;
  sched::DporExplorer explorer(opts);
  const sched::DporStats stats = explorer.Run([&] {
    sched::ResetIdentities();
    const RunResult run =
        RunOnce(workloads::SystemKind::kDynaMast, WorkloadKind::kYcsb,
                opts.seed, /*ops_per_client=*/3);
    sched::DporOutcome out;
    out.failed = !run.audit.ok();
    if (out.failed) out.note = run.audit.ToString();
    return out;
  });
  RecordProperty("dpor_executed", static_cast<int>(stats.executed));
  RecordProperty("dpor_pruned", static_cast<int>(stats.pruned));
  std::cout << "[ DPOR     ] stock workload: " << stats.ToString() << "\n";
  EXPECT_FALSE(stats.failure_found) << stats.failure;
  EXPECT_GE(stats.executed, 1u);
  EXPECT_GT(stats.pruned, 0u)
      << "partial-order reduction pruned nothing: " << stats.ToString();
#endif
}

// ---- Anomaly-injection proof (DYNAMAST_BREAK_SI builds only) ---------

TEST(BreakSiProofTest, AuditorCatchesSkippedGrantWait) {
#if !defined(DYNAMAST_BREAK_SI) || !DYNAMAST_BREAK_SI
  GTEST_SKIP() << "built without DYNAMAST_BREAK_SI";
#else
  // Two sites, no refresh appliers: site 1 can never catch up to site 0,
  // so a correct Grant would block on the release vector. The BREAK_SI
  // build skips that wait, letting site 1 accept a writer whose begin
  // snapshot predates the old master's final state — a lost update the
  // auditor must catch, attributed to the remastering window.
  bool caught_window = false, caught_lost_update = false;
  for (uint64_t seed : FuzzSeeds()) {
    sched::ScopedSeed fuzz(seed);
    RangePartitioner partitioner(10, 2);
    log::LogManager logs(2);
    history::Recorder recorder;
    site::SiteOptions so;
    so.read_op_cost = so.write_op_cost = so.apply_op_cost =
        std::chrono::microseconds(0);
    so.num_sites = 2;
    so.site_id = 0;
    site::SiteManager site0(so, &partitioner, &logs, nullptr, &recorder);
    so.site_id = 1;
    site::SiteManager site1(so, &partitioner, &logs, nullptr, &recorder);
    const RecordKey key{0, 5};
    for (site::SiteManager* s : {&site0, &site1}) {
      ASSERT_TRUE(s->CreateTable(0).ok());
      ASSERT_TRUE(s->LoadRecord(key, "base").ok());
    }
    site0.SetMasterOf(0, true);

    site::TxnOptions to;
    to.write_keys = {key};
    to.client = 1;
    to.client_txn = 1;
    site::Transaction t1;
    ASSERT_TRUE(site0.BeginTransaction(to, &t1).ok());
    ASSERT_TRUE(t1.Put(key, "from-old-master").ok());
    VersionVector cv;
    ASSERT_TRUE(site0.Commit(&t1, &cv).ok());

    VersionVector release_version, grant_version;
    ASSERT_TRUE(site0.Release({0}, 1, &release_version).ok());
    // Would block forever in a correct build (no appliers); BREAK_SI
    // returns immediately with site 1 still at [0, 0].
    ASSERT_TRUE(
        site1.Grant({0}, 0, release_version, &grant_version).ok());

    to.client = 2;
    site::Transaction t2;
    ASSERT_TRUE(site1.BeginTransaction(to, &t2).ok());
    ASSERT_TRUE(t2.Put(key, "from-new-master").ok());
    ASSERT_TRUE(site1.Commit(&t2, &cv).ok());

    const tools::AuditReport audit =
        tools::AuditHistory(recorder.Snapshot());
    ASSERT_FALSE(audit.ok())
        << "seed " << seed
        << ": auditor missed the injected SI break (replay with "
           "DYNAMAST_SCHED_SEED="
        << seed << ")";
    for (const tools::Anomaly& a : audit.anomalies) {
      if (a.kind == tools::AnomalyKind::kRemasterWindow) caught_window = true;
      if (a.kind == tools::AnomalyKind::kLostUpdate) caught_lost_update = true;
    }
    logs.CloseAll();
  }
  EXPECT_TRUE(caught_window);
  EXPECT_TRUE(caught_lost_update);
#endif
}

#if defined(DYNAMAST_BREAK_SI) && DYNAMAST_BREAK_SI
// Racy variant of the scenario above: site 1's refresh appliers RUN, so
// whether the new-master writer observes the old master's final state
// depends on the schedule — the applier and the writer race on site 1's
// state. A correct build closes the race inside Grant (release-vector
// wait); the BREAK_SI build leaves it open for the explorer to find.
// Returns true when the audited history shows the violation.
bool RemasterRaceViolates() {
  RangePartitioner partitioner(10, 2);
  log::LogManager logs(2);
  history::Recorder recorder;
  site::SiteOptions so;
  so.read_op_cost = so.write_op_cost = so.apply_op_cost =
      std::chrono::microseconds(0);
  so.num_sites = 2;
  so.site_id = 0;
  site::SiteManager site0(so, &partitioner, &logs, nullptr, &recorder);
  so.site_id = 1;
  site::SiteManager site1(so, &partitioner, &logs, nullptr, &recorder);
  const RecordKey key{0, 5};
  for (site::SiteManager* s : {&site0, &site1}) {
    if (!s->CreateTable(0).ok() || !s->LoadRecord(key, "base").ok()) {
      return false;
    }
  }
  site0.SetMasterOf(0, true);
  site1.Start();  // the applier races the new-master writer below

  site::TxnOptions to;
  to.write_keys = {key};
  to.client = 1;
  to.client_txn = 1;
  site::Transaction t1;
  VersionVector cv;
  bool ok = site0.BeginTransaction(to, &t1).ok() &&
            t1.Put(key, "from-old-master").ok() &&
            site0.Commit(&t1, &cv).ok();
  VersionVector release_version, grant_version;
  ok = ok && site0.Release({0}, 1, &release_version).ok() &&
       site1.Grant({0}, 0, release_version, &grant_version).ok();
  to.client = 2;
  site::Transaction t2;
  ok = ok && site1.BeginTransaction(to, &t2).ok() &&
       t2.Put(key, "from-new-master").ok() && site1.Commit(&t2, &cv).ok();
  logs.CloseAll();
  site1.Stop();
  return ok && !tools::AuditHistory(recorder.Snapshot()).ok();
}
#endif

// Satellite proof: systematic exploration beats random search on the
// seeded violation, and its reproducer is deterministic. The random
// baseline executes 50 schedules (one per seed); DPOR must find the
// violation in strictly fewer executions, then the minimized trace must
// replay the violation every single time.
TEST(BreakSiDporTest, ExplorerBeatsRandomBaselineAndMinimizes) {
#if !defined(DYNAMAST_BREAK_SI) || !DYNAMAST_BREAK_SI
  GTEST_SKIP() << "built without DYNAMAST_BREAK_SI";
#elif !DYNAMAST_SCHED_FUZZ_ENABLED
  GTEST_SKIP() << "built without DYNAMAST_SCHED_FUZZ (no sync-point hooks)";
#else
  constexpr uint64_t kBaselineSchedules = 50;
  uint64_t baseline_hits = 0;
  for (uint64_t seed = 1; seed <= kBaselineSchedules; ++seed) {
    sched::ResetIdentities();
    sched::ScopedSeed fuzz(seed);
    if (RemasterRaceViolates()) ++baseline_hits;
  }

  sched::DporOptions opts;
  opts.max_executions = kBaselineSchedules;
  opts.stop_on_failure = true;
  sched::DporExplorer explorer(opts);
  const sched::DporStats stats = explorer.Run([&] {
    sched::ResetIdentities();
    sched::DporOutcome out;
    out.failed = RemasterRaceViolates();
    if (out.failed) out.note = "remaster-window violation";
    return out;
  });
  std::cout << "[ DPOR     ] break-si: " << stats.ToString()
            << "; random baseline " << baseline_hits << "/"
            << kBaselineSchedules << " hits\n";
  ASSERT_TRUE(stats.failure_found) << stats.ToString();
  EXPECT_LT(stats.executed, kBaselineSchedules)
      << "DPOR must find the violation in strictly fewer executed "
         "schedules than the 50-seed random baseline";
  ASSERT_FALSE(stats.failure_trace.entries.empty());

  // Minimize, then prove the reproducer deterministic: every replay of
  // the minimized trace reproduces the violation.
  auto replay_fails = [&](const sched::Trace& cand) {
    sched::ResetIdentities();
    sched::StartReplay(cand);
    const bool bad = RemasterRaceViolates();
    (void)sched::StopReplay();
    return bad;
  };
  const sched::Trace minimized =
      sched::MinimizeTracePrefix(stats.failure_trace, replay_fails);
  EXPECT_LE(minimized.entries.size(), stats.failure_trace.entries.size());
  const std::string repro = TempPath("break_si_minimized.trace");
  (void)minimized.DumpToFile(repro);
  for (int round = 0; round < 2; ++round) {
    EXPECT_TRUE(replay_fails(minimized))
        << "minimized reproducer must replay the violation "
           "deterministically (round "
        << round << "; trace at " << repro << ")";
  }
#endif
}

}  // namespace
}  // namespace dynamast
