// Schedule-exploring concurrency harness (tier 2): drives every system
// through YCSB and SmallBank under the seedable schedule fuzzer
// (common/scheduler) and audits each run's recorded history with
// tools/si_checker. A failing seed is printed so the exact schedule bias
// can be replayed with DYNAMAST_SCHED_SEED=<seed>.
//
// Environment knobs:
//   DYNAMAST_SCHED_SEED   replay exactly one seed
//   DYNAMAST_SCHED_SEEDS  number of seeds to explore (default 3; CI's
//                         weekly job uses 50)
//
// In builds without -DDYNAMAST_SCHED_FUZZ=ON the sync-point hooks are
// no-ops and this degenerates to a plain multi-seed audit (still useful;
// the fuzzed configuration is what CI's weekly job runs).
//
// The DYNAMAST_BREAK_SI build proves the auditor has teeth: with the
// grant-side version-vector wait compiled out, the remastering window
// opens and the auditor must catch it.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/history.h"
#include "common/partitioner.h"
#include "common/scheduler.h"
#include "core/cluster.h"
#include "site/site_manager.h"
#include "tools/si_checker.h"
#include "workloads/driver.h"
#include "workloads/smallbank.h"
#include "workloads/system_factory.h"
#include "workloads/ycsb.h"

namespace dynamast {
namespace {

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

std::vector<uint64_t> FuzzSeeds() {
  if (const char* one = std::getenv("DYNAMAST_SCHED_SEED");
      one != nullptr && *one != '\0') {
    return {std::strtoull(one, nullptr, 10)};
  }
  const uint64_t n = EnvU64("DYNAMAST_SCHED_SEEDS", 3);
  std::vector<uint64_t> seeds;
  seeds.reserve(n);
  for (uint64_t i = 0; i < n; ++i) seeds.push_back(0x5eedULL + i * 7919);
  return seeds;
}

workloads::DeploymentOptions FastDeployment(uint64_t seed) {
  workloads::DeploymentOptions d;
  d.num_sites = 3;
  d.charge_network = false;
  d.read_op_cost = d.write_op_cost = d.apply_op_cost =
      std::chrono::microseconds(0);
  d.record_history = true;
  d.seed = seed;
  return d;
}

enum class WorkloadKind { kYcsb, kSmallBank };

std::unique_ptr<workloads::Workload> MakeWorkload(WorkloadKind kind,
                                                  uint64_t seed) {
  if (kind == WorkloadKind::kYcsb) {
    workloads::YcsbWorkload::Options o;
    o.num_keys = 1200;
    o.keys_per_partition = 60;
    o.value_size = 32;
    o.rmw_pct = 80;  // scans dominate runtime otherwise
    o.max_scan_partitions = 3;
    o.affinity_txns = 40;
    o.seed = seed;
    return std::make_unique<workloads::YcsbWorkload>(o);
  }
  workloads::SmallBankWorkload::Options o;
  o.num_accounts = 600;
  o.accounts_per_partition = 30;
  o.seed = seed;
  return std::make_unique<workloads::SmallBankWorkload>(o);
}

// Runs one (system, workload, seed) combination under the schedule fuzzer
// and audits its history. Any anomaly fails the test with the replay seed
// and a dump of the offending history.
void RunAndAudit(workloads::SystemKind kind, WorkloadKind wkind,
                 uint64_t seed) {
  sched::ScopedSeed fuzz(seed);
  std::unique_ptr<workloads::Workload> workload = MakeWorkload(wkind, seed);
  auto system =
      workloads::MakeSystem(kind, FastDeployment(seed), workload->partitioner());
  ASSERT_NE(system, nullptr);
  ASSERT_TRUE(workload->Load(*system).ok());
  system->Seal();

  workloads::Driver::Options dro;
  dro.num_clients = 4;
  dro.warmup = std::chrono::milliseconds(0);
  dro.measure = std::chrono::milliseconds(120);
  dro.seed = seed;
  const workloads::Driver::Report report =
      workloads::Driver(dro).Run(*system, *workload);
  system->Shutdown();

  ASSERT_NE(system->history(), nullptr);
  const std::vector<history::HistoryEvent> events =
      system->history()->Snapshot();
  const tools::AuditReport audit = tools::AuditHistory(
      events, tools::OptionsForSystem(workloads::SystemKindName(kind)));

  EXPECT_GT(report.committed, 0u)
      << workloads::SystemKindName(kind) << " committed nothing (seed " << seed
      << ", errors: " << report.errors << ")";
  if (!audit.ok()) {
    const std::string dump = ::testing::TempDir() + "schedule_explore_" +
                             workloads::SystemKindName(kind) + "_" +
                             std::to_string(seed) + ".history";
    (void)system->history()->DumpToFile(dump);
    FAIL() << workloads::SystemKindName(kind)
           << " failed the SI audit; replay with DYNAMAST_SCHED_SEED=" << seed
           << "; history dumped to " << dump << "\n"
           << audit.ToString();
  }
}

class ScheduleExploreTest
    : public ::testing::TestWithParam<workloads::SystemKind> {};

TEST_P(ScheduleExploreTest, YcsbHistoriesAuditClean) {
  for (uint64_t seed : FuzzSeeds()) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    RunAndAudit(GetParam(), WorkloadKind::kYcsb, seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST_P(ScheduleExploreTest, SmallBankHistoriesAuditClean) {
  for (uint64_t seed : FuzzSeeds()) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    RunAndAudit(GetParam(), WorkloadKind::kSmallBank, seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSystems, ScheduleExploreTest,
    ::testing::ValuesIn(workloads::AllSystems()),
    [](const ::testing::TestParamInfo<workloads::SystemKind>& info) {
      std::string name = workloads::SystemKindName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(ScheduleFuzzerTest, SyncPointsFireWhenEnabled) {
#if !DYNAMAST_SCHED_FUZZ_ENABLED
  GTEST_SKIP() << "built without DYNAMAST_SCHED_FUZZ";
#else
  const uint64_t before = sched::PointCount();
  sched::ScopedSeed fuzz(12345);
  RangePartitioner partitioner(10, 2);
  core::Cluster::Options copts;
  copts.num_sites = 2;
  copts.network.charge_delays = false;
  core::Cluster cluster(copts, &partitioner);
  ASSERT_TRUE(cluster.CreateTable(0).ok());
  cluster.Stop();
  EXPECT_GT(sched::PointCount(), before)
      << "mutex hooks should hit the scheduler while fuzzing is enabled";
#endif
}

// ---- Anomaly-injection proof (DYNAMAST_BREAK_SI builds only) ---------

TEST(BreakSiProofTest, AuditorCatchesSkippedGrantWait) {
#if !defined(DYNAMAST_BREAK_SI) || !DYNAMAST_BREAK_SI
  GTEST_SKIP() << "built without DYNAMAST_BREAK_SI";
#else
  // Two sites, no refresh appliers: site 1 can never catch up to site 0,
  // so a correct Grant would block on the release vector. The BREAK_SI
  // build skips that wait, letting site 1 accept a writer whose begin
  // snapshot predates the old master's final state — a lost update the
  // auditor must catch, attributed to the remastering window.
  bool caught_window = false, caught_lost_update = false;
  for (uint64_t seed : FuzzSeeds()) {
    sched::ScopedSeed fuzz(seed);
    RangePartitioner partitioner(10, 2);
    log::LogManager logs(2);
    history::Recorder recorder;
    site::SiteOptions so;
    so.read_op_cost = so.write_op_cost = so.apply_op_cost =
        std::chrono::microseconds(0);
    so.num_sites = 2;
    so.site_id = 0;
    site::SiteManager site0(so, &partitioner, &logs, nullptr, &recorder);
    so.site_id = 1;
    site::SiteManager site1(so, &partitioner, &logs, nullptr, &recorder);
    const RecordKey key{0, 5};
    for (site::SiteManager* s : {&site0, &site1}) {
      ASSERT_TRUE(s->CreateTable(0).ok());
      ASSERT_TRUE(s->LoadRecord(key, "base").ok());
    }
    site0.SetMasterOf(0, true);

    site::TxnOptions to;
    to.write_keys = {key};
    to.client = 1;
    to.client_txn = 1;
    site::Transaction t1;
    ASSERT_TRUE(site0.BeginTransaction(to, &t1).ok());
    ASSERT_TRUE(t1.Put(key, "from-old-master").ok());
    VersionVector cv;
    ASSERT_TRUE(site0.Commit(&t1, &cv).ok());

    VersionVector release_version, grant_version;
    ASSERT_TRUE(site0.Release({0}, 1, &release_version).ok());
    // Would block forever in a correct build (no appliers); BREAK_SI
    // returns immediately with site 1 still at [0, 0].
    ASSERT_TRUE(
        site1.Grant({0}, 0, release_version, &grant_version).ok());

    to.client = 2;
    site::Transaction t2;
    ASSERT_TRUE(site1.BeginTransaction(to, &t2).ok());
    ASSERT_TRUE(t2.Put(key, "from-new-master").ok());
    ASSERT_TRUE(site1.Commit(&t2, &cv).ok());

    const tools::AuditReport audit =
        tools::AuditHistory(recorder.Snapshot());
    ASSERT_FALSE(audit.ok())
        << "seed " << seed
        << ": auditor missed the injected SI break (replay with "
           "DYNAMAST_SCHED_SEED="
        << seed << ")";
    for (const tools::Anomaly& a : audit.anomalies) {
      if (a.kind == tools::AnomalyKind::kRemasterWindow) caught_window = true;
      if (a.kind == tools::AnomalyKind::kLostUpdate) caught_lost_update = true;
    }
    logs.CloseAll();
  }
  EXPECT_TRUE(caught_window);
  EXPECT_TRUE(caught_lost_update);
#endif
}

}  // namespace
}  // namespace dynamast
