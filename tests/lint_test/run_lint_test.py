#!/usr/bin/env python3
"""End-to-end tests for scripts/dynamast-lint.py.

Runs the linter over the fixture trees in fixtures/ — one seeded
violation per rule plus a clean tree — and asserts both the exit code
and the per-rule messages. Exits non-zero on the first failed
expectation, printing what was expected against the actual output.
"""

import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
LINT = os.path.join(REPO, "scripts", "dynamast-lint.py")
FIXTURES = os.path.join(HERE, "fixtures")

failures = []


def run_lint(root, rules=()):
    cmd = [sys.executable, LINT, "--root", root]
    for rule in rules:
        cmd += ["--rule", rule]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


def check(name, root, rules, want_exit, want_substrings=(), forbid=()):
    code, output = run_lint(os.path.join(FIXTURES, root), rules)
    problems = []
    if code != want_exit:
        problems.append(f"exit code {code}, wanted {want_exit}")
    for want in want_substrings:
        if want not in output:
            problems.append(f"output lacks {want!r}")
    for bad in forbid:
        if bad in output:
            problems.append(f"output unexpectedly contains {bad!r}")
    if problems:
        failures.append(name)
        print(f"FAIL {name}: " + "; ".join(problems))
        print("  --- linter output ---")
        for line in output.splitlines():
            print(f"  {line}")
    else:
        print(f"ok   {name}")


def main():
    check("clean tree passes all rules", "clean", (), want_exit=0,
          forbid=("dynamast-lint:",))

    check("lock-class: malformed + unregistered + stale", "lock_class_bad",
          ("lock-class",), want_exit=1,
          want_substrings=(
              'lock-class: src/site/bad.h:7: lock class "Bad.Class"',
              'lock class "site.rogue" is not listed',
              'registry row "site.ghost"',
              "stale entry",
          ),
          forbid=('"site.state"',))

    check("sched-op: bogus kind + count + name-table gap", "sched_op_bad",
          ("sched-op",), want_exit=1,
          want_substrings=(
              "sched hook uses kBogus",
              "kNumOpKinds is 4 but OpKind declares 3",
              "OpKindName has no case for OpKind::kGateGrant",
          ),
          forbid=("kNetDeliver",))

    check("history-pairing: commit without abort", "history_bad",
          ("history-pairing",), want_exit=1,
          want_substrings=(
              "history-pairing: src/site/bad.cc",
              "unpaired emission",
          ))

    check("metric-naming: family, suffix and label key", "metric_bad",
          ("metric-naming",), want_exit=1,
          want_substrings=(
              'metric family "BadName_total" is not snake_case',
              'counter "foo_count" does not end in "_total"',
              'label key "BadKey"',
          ),
          forbid=("fine_latency_us",))

    check("escape-justification: sites + allowlist", "escape_bad",
          ("escape-justification",), want_exit=1,
          want_substrings=(
              "escape-justification: src/site/bad.cc:6: "
              "NO_THREAD_SAFETY_ANALYSIS without a",
              'src/site/bad.cc:18: tsa-escape names lock class "site.ghost"',
              "src/site/bad.cc:30: tsa-escape marker has an empty reason",
              "allowlist[1] (site.state / builtin.alloc.new) has no "
              "justification",
              'allowlist[2] (site.ghost / builtin.sleep) names lock class '
              '"site.ghost"',
              "allowlist[3] (site.state / blocking:Nothing) matches no edge",
          ),
          forbid=("bad.cc:43", "allowlist[0]"))

    check("hot-path-root: unlisted annotation + stale row", "hot_path_bad",
          ("hot-path-root",), want_exit=1,
          want_substrings=(
              "hot-path-root: src/engine/engine.cc:5: "
              "`engine::Engine::Execute` is annotated DYNAMAST_HOT_PATH "
              "but has no row",
              "hot-path-root: DESIGN.md:9: registry row "
              "`engine::Engine::Ghost` matches no DYNAMAST_HOT_PATH "
              "annotation",
          ))

    check("lock-profile-label: unregistered class in lock_class label",
          "lock_profile_bad", ("lock-profile-label",), want_exit=1,
          want_substrings=(
              "lock-profile-label: src/common/bad.cc:9: "
              'lock_class label "site.ghost"',
          ),
          forbid=('"site.state"',))

    check("atomic-registry: bad role + stale row", "atomic_bad",
          ("atomic-registry",), want_exit=1,
          want_substrings=(
              "atomic-registry: DESIGN.md:10: registry row "
              "`core::Counters::hits` declares role `tally`, which is "
              "not in the closed role set "
              "(stat-counter, flag, seqno, publication)",
              "atomic-registry: DESIGN.md:11: registry row "
              "`core::Counters::ghost_` matches no atomic field in src/ "
              "(stale entry",
          ))

    # Each bad fixture is bad in exactly one rule: the others stay quiet.
    check("lock_class_bad is clean for metric-naming", "lock_class_bad",
          ("metric-naming",), want_exit=0)
    check("metric_bad is clean for history-pairing", "metric_bad",
          ("history-pairing",), want_exit=0)
    check("lock_profile_bad is clean for metric-naming", "lock_profile_bad",
          ("metric-naming",), want_exit=0)

    if failures:
        print(f"\n{len(failures)} lint_test failure(s)", file=sys.stderr)
        return 1
    print("\nall lint_test checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
