// Fixture: one lock_class label naming a registered class (fine) and one
// naming a class absent from the DESIGN.md registry (violation).
#include "common/metrics.h"

void Export(Registry* registry) {
  good_ = registry->GetCounter("lock_acquires_total",
                               {{"lock_class", "site.state"}});
  bad_ = registry->GetHistogram("lock_wait_us",
                                {{"lock_class", "site.ghost"}});
}
