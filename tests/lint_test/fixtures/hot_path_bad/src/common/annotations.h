// Fixture stand-in for the annotation macros.
#ifndef FIXTURE_COMMON_ANNOTATIONS_H_
#define FIXTURE_COMMON_ANNOTATIONS_H_

#define DYNAMAST_HOT_PATH

#endif  // FIXTURE_COMMON_ANNOTATIONS_H_
