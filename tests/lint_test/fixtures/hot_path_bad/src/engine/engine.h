// Fixture: a DYNAMAST_HOT_PATH root missing from the DESIGN.md
// hot-path-root registry (the registry instead lists a ghost).
#ifndef FIXTURE_ENGINE_ENGINE_H_
#define FIXTURE_ENGINE_ENGINE_H_

#include "common/annotations.h"

namespace engine {

class Engine {
 public:
  DYNAMAST_HOT_PATH void Execute();
};

}  // namespace engine

#endif  // FIXTURE_ENGINE_ENGINE_H_
