#include "engine/engine.h"

namespace engine {

void Engine::Execute() {}

}  // namespace engine
