// Fixture: a non-snake_case family, a counter without the _total suffix,
// and a non-snake_case label key.
#include "common/metrics.h"

void Export(Registry* registry) {
  camel_ = registry->GetCounter("BadName_total");
  count_ = registry->GetCounter("foo_count");
  gauge_ = registry->GetGauge("ok_gauge", {{"BadKey", "v"}});
  fine_ = registry->GetHistogram("fine_latency_us", {{"site", "0"}});
}
