// Fixture: one malformed class name, one unregistered class, one fine.
#ifndef FIXTURE_BAD_H_
#define FIXTURE_BAD_H_

class Bad {
 private:
  mutable DebugMutex a_{"Bad.Class"};       // not snake_case
  mutable DebugSharedMutex b_{"site.rogue"};  // not in the registry
  mutable DebugMutex c_{"site.state"};      // registered: no finding
};

#endif  // FIXTURE_BAD_H_
