// Fixture: seeded escape-justification violations (plus one good site).
#include "site/good.h"

namespace site {

void Good::NoMarker() DYNAMAST_NO_THREAD_SAFETY_ANALYSIS {
  int a = 0;
  int b = a;
  int c = b;
  int d = c;
  int e = d;
  int f = e;
  int g = f;
  (void)g;
}

// tsa-escape(site.ghost): the registry never lists this class.
void Good::GhostClass() DYNAMAST_NO_THREAD_SAFETY_ANALYSIS {
  int a = 0;
  int b = a;
  int c = b;
  int d = c;
  int e = d;
  int f = e;
  int g = f;
  (void)g;
}

// tsa-escape(site.state):
void Good::EmptyReason() DYNAMAST_NO_THREAD_SAFETY_ANALYSIS {
  int a = 0;
  int b = a;
  int c = b;
  int d = c;
  int e = d;
  int f = e;
  int g = f;
  (void)g;
}

// tsa-escape(site.state): dynamic lock set taken in sorted order inside a
// loop; the runtime lock-rank checker enforces the ordering instead.
void Good::Fine() DYNAMAST_NO_THREAD_SAFETY_ANALYSIS {
}

}  // namespace site
