// Fixture: a registered lock class plus escape-site declarations.
#ifndef FIXTURE_ESCAPE_GOOD_H_
#define FIXTURE_ESCAPE_GOOD_H_

class Good {
 public:
  void NoMarker();
  void GhostClass();
  void EmptyReason();
  void Fine();

 private:
  mutable DebugMutex mu_{"site.state"};
};

#endif  // FIXTURE_ESCAPE_GOOD_H_
