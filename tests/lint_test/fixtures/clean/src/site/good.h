// Fixture: a registered lock class.
#ifndef FIXTURE_GOOD_H_
#define FIXTURE_GOOD_H_

class Good {
 private:
  mutable DebugMutex mu_{"site.state"};
};

#endif  // FIXTURE_GOOD_H_
