// Fixture: well-formed hook site, paired history emission, snake_case
// metrics.
#include "site/good.h"

void Good::Apply() {
  DYNAMAST_SCHED_OP(kNetDeliver, sched_uid_);
  history_->Record(MakeTxnEvent(txn, history::EventKind::kCommit));
  history_->Record(MakeTxnEvent(txn, history::EventKind::kAbort));
  commits_ = registry->GetCounter("site_commits_total", {{"site", name}});
  depth_ = registry->GetGauge("site_queue_depth");
}
