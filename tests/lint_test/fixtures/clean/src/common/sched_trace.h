// Fixture: minimal trace codec header; enum, count and name table agree.
#ifndef FIXTURE_SCHED_TRACE_H_
#define FIXTURE_SCHED_TRACE_H_

#include <cstdint>

namespace dynamast::sched {

enum class OpKind : uint8_t {
  kMutexLock = 0,
  kNetDeliver = 1,
};
inline constexpr uint8_t kNumOpKinds = 2;

const char* OpKindName(OpKind kind);

}  // namespace dynamast::sched

#endif  // FIXTURE_SCHED_TRACE_H_
