// Fixture: OpKindName covers every enumerator.
#include "common/sched_trace.h"

namespace dynamast::sched {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kMutexLock:
      return "mutex_lock";
    case OpKind::kNetDeliver:
      return "net_deliver";
  }
  return "?";
}

}  // namespace dynamast::sched
