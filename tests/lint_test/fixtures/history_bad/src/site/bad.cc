// Fixture: records commits but never aborts — unpaired emission.
#include "site/bad.h"

void Bad::Commit() {
  history_->Record(MakeTxnEvent(txn, history::EventKind::kCommit));
}
