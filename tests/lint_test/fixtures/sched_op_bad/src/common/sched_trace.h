// Fixture: kNumOpKinds disagrees with the enumerator count.
#ifndef FIXTURE_SCHED_TRACE_H_
#define FIXTURE_SCHED_TRACE_H_

#include <cstdint>

namespace dynamast::sched {

enum class OpKind : uint8_t {
  kMutexLock = 0,
  kNetDeliver = 1,
  kGateGrant = 2,
};
inline constexpr uint8_t kNumOpKinds = 4;  // wrong: 3 enumerators

const char* OpKindName(OpKind kind);

}  // namespace dynamast::sched

#endif  // FIXTURE_SCHED_TRACE_H_
