// Fixture: OpKindName is missing the kGateGrant case.
#include "common/sched_trace.h"

namespace dynamast::sched {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kMutexLock:
      return "mutex_lock";
    case OpKind::kNetDeliver:
      return "net_deliver";
    default:
      return "?";
  }
}

}  // namespace dynamast::sched
