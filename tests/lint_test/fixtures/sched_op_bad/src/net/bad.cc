// Fixture: hook site names an OpKind that was never declared.
#include "common/sched_trace.h"

void Deliver() {
  DYNAMAST_SCHED_OP(kBogus, sched_uid_);
  DYNAMAST_SCHED_OP_SCOPE(op, kGateGrant, sched_uid_);  // declared: fine
}
