#!/usr/bin/env python3
"""End-to-end tests for the scripts/bench_trend.py regression gate.

Runs the gate over the fixture trajectories in fixtures/ and asserts
exit codes and messages for: a flat trajectory (pass), a regressed one
(fail, both metrics), a waived regression (pass, WAIVED printed), an
expired waiver (fail again), a malformed waiver file (usage error), a
single-point trajectory (pass) and an empty directory (skip, exit 3).
"""

import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
TREND = os.path.join(REPO, "scripts", "bench_trend.py")
FIXTURES = os.path.join(HERE, "fixtures")

failures = []


def run_trend(root, extra=()):
    cmd = [sys.executable, TREND, "--check",
           "--root", os.path.join(FIXTURES, root)] + list(extra)
    proc = subprocess.run(cmd, capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


def check(name, root, want_exit, want_substrings=(), forbid=(), extra=()):
    code, output = run_trend(root, extra)
    problems = []
    if code != want_exit:
        problems.append(f"exit code {code}, wanted {want_exit}")
    for want in want_substrings:
        if want not in output:
            problems.append(f"output lacks {want!r}")
    for bad in forbid:
        if bad in output:
            problems.append(f"output unexpectedly contains {bad!r}")
    if problems:
        failures.append(name)
        print(f"FAIL {name}: " + "; ".join(problems))
        print("  --- gate output ---")
        for line in output.splitlines():
            print(f"  {line}")
    else:
        print(f"ok   {name}")


def main():
    check("flat trajectory passes", "flat", want_exit=0,
          want_substrings=("bench-trend: OK",),
          forbid=("REGRESSION", "WAIVED"))

    check("regressed point fails on both metrics", "regressed", want_exit=1,
          want_substrings=(
              "REGRESSION [throughput] throughput dropped 50.0%",
              "REGRESSION [p99_us] p99 rose 200.0%",
              "bench-trend: FAIL",
          ))

    check("waived regression passes and is reported", "waived", want_exit=0,
          want_substrings=(
              "WAIVED [throughput]",
              "WAIVED [p99_us]",
              "intentional fixture regression",
              "bench-trend: OK",
          ),
          forbid=("REGRESSION",))

    check("expired waiver no longer covers the newest point",
          "waiver_expired", want_exit=1,
          want_substrings=("REGRESSION [throughput]",),
          forbid=("WAIVED",))

    check("waiver without a reason is a hard error", "malformed_waiver",
          want_exit=2,
          want_substrings=('missing the mandatory "reason"',))

    check("single point is the baseline, passes", "single", want_exit=0,
          want_substrings=("first trajectory point BENCH_0001.json",))

    check("no trajectory data exits 3 (SKIP)", "empty", want_exit=3,
          want_substrings=("no BENCH_*.json trajectory points",))

    check("loose thresholds accept the regressed point", "regressed",
          want_exit=0, extra=("--tput-drop-pct", "60",
                              "--p99-rise-pct", "250"),
          forbid=("REGRESSION",))

    # Report (non --check) mode: rerun without the gate flag directly.
    proc = subprocess.run(
        [sys.executable, TREND, "--root",
         os.path.join(FIXTURES, "regressed")],
        capture_output=True, text=True)
    if proc.returncode != 0 or "REGRESSION" in proc.stdout:
        failures.append("report mode stays report-only")
        print("FAIL report mode stays report-only: exit "
              f"{proc.returncode}\n{proc.stdout}{proc.stderr}")
    else:
        print("ok   report mode stays report-only")

    if failures:
        print(f"\n{len(failures)} bench_trend_test failure(s)",
              file=sys.stderr)
        return 1
    print("\nall bench_trend_test checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
