// Unit tests for tools/si_checker: each anomaly class is detected on a
// hand-built history and absent from a clean one; the history line format
// round-trips; and a live DynaMast run with history recording audits
// clean end to end.

#include <gtest/gtest.h>

#include <chrono>
#include <initializer_list>
#include <vector>

#include "common/history.h"
#include "tools/si_checker.h"
#include "workloads/driver.h"
#include "workloads/smallbank.h"
#include "workloads/system_factory.h"
#include "workloads/ycsb.h"

namespace dynamast {
namespace {

using history::EventKind;
using history::HistoryEvent;
using tools::Anomaly;
using tools::AnomalyKind;
using tools::AuditHistory;
using tools::AuditReport;
using tools::SiCheckerOptions;

VersionVector VV(std::initializer_list<uint64_t> v) {
  return VersionVector(std::vector<uint64_t>(v));
}

HistoryEvent Commit(SiteId site, VersionVector begin, VersionVector commit,
                    uint64_t installed_seq,
                    std::vector<history::ReadObservation> reads,
                    std::vector<history::WriteObservation> writes,
                    ClientId client = 0, uint64_t client_txn = 0) {
  HistoryEvent e;
  e.kind = EventKind::kCommit;
  e.site = site;
  e.client = client;
  e.client_txn = client_txn;
  e.begin = std::move(begin);
  e.commit = std::move(commit);
  e.installed_seq = installed_seq;
  e.reads = std::move(reads);
  e.writes = std::move(writes);
  return e;
}

std::vector<HistoryEvent> Sequenced(std::vector<HistoryEvent> events) {
  for (size_t i = 0; i < events.size(); ++i) events[i].seq = i + 1;
  return events;
}

size_t CountKind(const AuditReport& report, AnomalyKind kind) {
  size_t n = 0;
  for (const Anomaly& a : report.anomalies) {
    if (a.kind == kind) n++;
  }
  return n;
}

constexpr RecordKey kX{0, 1};
constexpr RecordKey kY{0, 2};

TEST(SiCheckerTest, CleanHistoryPasses) {
  auto events = Sequenced({
      Commit(0, VV({0, 0}), VV({1, 0}), 1, {}, {{kX, 0}}, 1, 1),
      Commit(0, VV({1, 0}), VV({1, 0}), 0, {{kX, 0, 1}}, {}, 1, 2),
      Commit(0, VV({1, 0}), VV({2, 0}), 2, {{kX, 0, 1}}, {{kX, 0}}, 2, 1),
  });
  const AuditReport report = AuditHistory(events);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.commits, 3u);
  EXPECT_EQ(report.reads_checked, 2u);
}

TEST(SiCheckerTest, BaseVersionsAreAlwaysVisible) {
  // (0, 0) is the loader's base version: readable from any snapshot,
  // including the empty one, and never G1a even though no commit made it.
  auto events = Sequenced({
      Commit(1, VV({0, 0}), VV({0, 0}), 0, {{kX, 0, 0}}, {}),
  });
  EXPECT_TRUE(AuditHistory(events).ok());
}

TEST(SiCheckerTest, DetectsFutureRead) {
  auto events = Sequenced({
      Commit(0, VV({0, 0}), VV({1, 0}), 1, {}, {{kX, 0}}),
      // Reader's begin snapshot is [0, 0] but it observed version 0:1.
      Commit(0, VV({0, 0}), VV({0, 0}), 0, {{kX, 0, 1}}, {}),
  });
  const AuditReport report = AuditHistory(events);
  EXPECT_EQ(CountKind(report, AnomalyKind::kFutureRead), 1u)
      << report.ToString();
}

TEST(SiCheckerTest, DetectsG1aAbortedRead) {
  auto events = Sequenced({
      // Version 0:5 was never installed by any committed transaction.
      Commit(0, VV({9, 0}), VV({9, 0}), 0, {{kX, 0, 5}}, {}),
  });
  const AuditReport report = AuditHistory(events);
  EXPECT_EQ(CountKind(report, AnomalyKind::kG1aAbortedRead), 1u)
      << report.ToString();

  SiCheckerOptions partial;
  partial.complete_history = false;
  EXPECT_TRUE(AuditHistory(events, partial).ok());
}

TEST(SiCheckerTest, DetectsG1bIntermediateRead) {
  auto events = Sequenced({
      Commit(0, VV({0, 0}), VV({1, 0}), 1, {}, {{kX, 0}}),
      // Observes slot 0:1 for key Y, but its installer only wrote X.
      Commit(0, VV({1, 0}), VV({1, 0}), 0, {{kY, 0, 1}}, {}),
  });
  const AuditReport report = AuditHistory(events);
  EXPECT_EQ(CountKind(report, AnomalyKind::kG1bIntermediateRead), 1u)
      << report.ToString();
}

TEST(SiCheckerTest, DetectsLostUpdate) {
  auto events = Sequenced({
      Commit(0, VV({0, 0}), VV({1, 0}), 1, {}, {{kX, 0}}),
      // Concurrent second writer: began before the first install.
      Commit(0, VV({0, 0}), VV({2, 0}), 2, {}, {{kX, 0}}),
  });
  const AuditReport report = AuditHistory(events);
  EXPECT_EQ(CountKind(report, AnomalyKind::kLostUpdate), 1u)
      << report.ToString();

  // LEAP mode skips cross-origin pairs but still catches same-origin ones.
  SiCheckerOptions leap;
  leap.cross_origin_ww = false;
  EXPECT_EQ(CountKind(AuditHistory(events, leap), AnomalyKind::kLostUpdate),
            1u);
}

TEST(SiCheckerTest, CrossOriginLostUpdateRespectsOption) {
  auto events = Sequenced({
      Commit(0, VV({0, 0}), VV({1, 0}), 1, {}, {{kX, 0}}),
      Commit(1, VV({0, 0}), VV({0, 1}), 1, {}, {{kX, 0}}),
  });
  EXPECT_EQ(CountKind(AuditHistory(events), AnomalyKind::kLostUpdate), 1u);
  SiCheckerOptions leap;
  leap.cross_origin_ww = false;
  EXPECT_EQ(CountKind(AuditHistory(events, leap), AnomalyKind::kLostUpdate),
            0u);
}

TEST(SiCheckerTest, DetectsG1cCycle) {
  // T1 reads T2's write and vice versa: wr edges both ways.
  auto events = Sequenced({
      Commit(0, VV({1, 1}), VV({2, 1}), 2, {{kY, 1, 1}}, {{kX, 0}}),
      Commit(1, VV({2, 1}), VV({2, 1}), 1, {{kX, 0, 2}}, {{kY, 0}}),
  });
  const AuditReport report = AuditHistory(events);
  EXPECT_EQ(CountKind(report, AnomalyKind::kG1cCycle), 1u)
      << report.ToString();
}

TEST(SiCheckerTest, DetectsSessionRegression) {
  auto events = Sequenced({
      Commit(0, VV({0, 0}), VV({1, 0}), 1, {}, {{kX, 0}}, 7, 1),
      // Same client's next transaction began below its session [1, 0].
      Commit(1, VV({0, 0}), VV({0, 1}), 1, {}, {{kY, 1}}, 7, 2),
  });
  const AuditReport report = AuditHistory(events);
  EXPECT_EQ(CountKind(report, AnomalyKind::kSessionRegression), 1u)
      << report.ToString();

  // Masked-session systems only promise per-origin monotonicity: the
  // second transaction ran at site 1, where the session slot is still 0.
  SiCheckerOptions masked;
  masked.full_session_vectors = false;
  EXPECT_EQ(
      CountKind(AuditHistory(events, masked), AnomalyKind::kSessionRegression),
      0u);
}

TEST(SiCheckerTest, FoldsTwoPhaseCommitBranches) {
  // Branches of one logical transaction (same client_txn) commit at two
  // sites; neither branch sees the other's commit, which is legal. The
  // *next* logical transaction must see both.
  auto events = Sequenced({
      Commit(0, VV({0, 0}), VV({1, 0}), 1, {}, {{kX, 0}}, 7, 1),
      Commit(1, VV({0, 0}), VV({0, 1}), 1, {}, {{kY, 1}}, 7, 1),
      Commit(0, VV({1, 1}), VV({2, 1}), 2, {}, {{kX, 0}}, 7, 2),
  });
  EXPECT_TRUE(AuditHistory(events).ok());

  // If the follow-up began at [1, 0] it missed the site-1 branch.
  events[2].begin = VV({1, 0});
  const AuditReport report = AuditHistory(events);
  EXPECT_EQ(CountKind(report, AnomalyKind::kSessionRegression), 1u)
      << report.ToString();
}

TEST(SiCheckerTest, DetectsRemasterWindowViolation) {
  HistoryEvent grant;
  grant.kind = EventKind::kGrant;
  grant.site = 1;
  grant.commit = VV({0, 1});
  grant.installed_seq = 1;
  grant.partitions = {0};
  grant.peer = 0;
  grant.release_version = VV({2, 0});

  auto events = Sequenced({
      Commit(0, VV({0, 0}), VV({1, 0}), 1, {}, {{kX, 0}}),
      grant,
      // New master accepted a writer whose begin misses the release point.
      Commit(1, VV({0, 1}), VV({0, 2}), 2, {}, {{kX, 0}}),
  });
  const AuditReport report = AuditHistory(events);
  EXPECT_EQ(CountKind(report, AnomalyKind::kRemasterWindow), 1u)
      << report.ToString();

  // With a begin that dominates the release vector the window is clean
  // (the lost-update check is satisfied by the same dominance).
  events[2].begin = VV({2, 1});
  events[2].commit = VV({2, 2});
  EXPECT_TRUE(AuditHistory(events).ok());
}

TEST(SiCheckerTest, ReleaseClosesTheWindow) {
  HistoryEvent grant;
  grant.kind = EventKind::kGrant;
  grant.site = 1;
  grant.partitions = {0};
  grant.installed_seq = 1;
  grant.commit = VV({0, 1});
  grant.release_version = VV({2, 0});
  HistoryEvent release;
  release.kind = EventKind::kRelease;
  release.site = 1;
  release.partitions = {0};
  release.installed_seq = 2;
  release.commit = VV({0, 2});
  release.peer = 0;

  // After site 1 releases the partition again, its old grant no longer
  // constrains writers there (a later grant would).
  auto events = Sequenced({
      grant,
      release,
      Commit(1, VV({0, 2}), VV({0, 3}), 3, {}, {{kX, 0}}),
  });
  EXPECT_TRUE(AuditHistory(events).ok());
}

TEST(SiCheckerTest, MarkerSlotReadIsIntermediate) {
  HistoryEvent release;
  release.kind = EventKind::kRelease;
  release.site = 0;
  release.partitions = {0};
  release.installed_seq = 1;
  release.commit = VV({1, 0});
  release.peer = 1;
  auto events = Sequenced({
      release,
      // Markers occupy a commit-order slot but install no data: a read
      // resolving to one is bogus.
      Commit(0, VV({1, 0}), VV({1, 0}), 0, {{kX, 0, 1}}, {}),
  });
  const AuditReport report = AuditHistory(events);
  EXPECT_EQ(CountKind(report, AnomalyKind::kG1bIntermediateRead), 1u)
      << report.ToString();
}

// ---- SSI certification (G2 dangerous structures) ---------------------

TEST(SiCheckerSsiTest, FlagsWriteSkew) {
  // Classic write skew: T1 reads {x, y} and writes y; T2 reads {x, y} and
  // writes x; both begin on the base snapshot. Legal under SI (disjoint
  // write sets), not serializable: T1 ->rw T2 ->rw T1.
  auto events = Sequenced({
      Commit(0, VV({0}), VV({1}), 1, {{kX, 0, 0}, {kY, 0, 0}}, {{kY, 0}}, 1,
             1),
      Commit(0, VV({0}), VV({2}), 2, {{kX, 0, 0}, {kY, 0, 0}}, {{kX, 0}}, 2,
             1),
  });
  const AuditReport report = AuditHistory(events);
  // The default audit checks the SI contract only: write skew is legal.
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.rw_antidependencies, 2u);
  EXPECT_EQ(report.dangerous_structures, 1u) << report.ToString();
  EXPECT_FALSE(report.serializable());
  ASSERT_EQ(report.ssi.size(), 1u);
  EXPECT_EQ(report.ssi[0].kind, AnomalyKind::kSsiDangerousStructure);

  // Certification mode promotes the structure into a failing anomaly.
  SiCheckerOptions certify;
  certify.certify_serializable = true;
  const AuditReport certified = AuditHistory(events, certify);
  EXPECT_FALSE(certified.ok());
  EXPECT_EQ(CountKind(certified, AnomalyKind::kSsiDangerousStructure), 1u);
}

TEST(SiCheckerSsiTest, FlagsReadOnlyAnomaly) {
  // Fekete et al.'s read-only transaction anomaly: T1 (writes x) commits;
  // read-only T3 sees T1 but not T2; T2 (read x and y on the base
  // snapshot, writes y) commits last. Serialization needs T3 < T2 < T1 <
  // T3 — a cycle through the read-only participant. Pivot is T2: in-edge
  // T3 ->rw T2, out-edge T2 ->rw T1, and T1 committed first.
  auto events = Sequenced({
      Commit(0, VV({0}), VV({1}), 1, {{kX, 0, 0}}, {{kX, 0}}, 1, 1),
      Commit(0, VV({1}), VV({1}), 0, {{kX, 0, 1}, {kY, 0, 0}}, {}, 3, 1),
      Commit(0, VV({0}), VV({2}), 2, {{kX, 0, 0}, {kY, 0, 0}}, {{kY, 0}}, 2,
             1),
  });
  const AuditReport report = AuditHistory(events);
  EXPECT_TRUE(report.ok()) << report.ToString();  // SI itself is intact
  EXPECT_EQ(report.rw_antidependencies, 2u);
  EXPECT_EQ(report.dangerous_structures, 1u) << report.ToString();
  ASSERT_EQ(report.ssi.size(), 1u);
  // The pivot is the last-committing transaction (event 3).
  EXPECT_EQ(report.ssi[0].event_seq, 3u);
}

TEST(SiCheckerSsiTest, SerialHistoryCertifies) {
  // Strictly serial execution. One rw-antidependency exists (T1 read the
  // base version of x that T2 later overwrote) — rw edges are normal in
  // serializable histories; only a pivot whose out-neighbour committed
  // first is dangerous, and serial order makes that impossible.
  auto events = Sequenced({
      Commit(0, VV({0}), VV({1}), 1, {{kX, 0, 0}, {kY, 0, 0}}, {{kY, 0}}, 1,
             1),
      Commit(0, VV({1}), VV({2}), 2, {{kX, 0, 0}, {kY, 0, 1}}, {{kX, 0}}, 2,
             1),
  });
  SiCheckerOptions certify;
  certify.certify_serializable = true;
  const AuditReport report = AuditHistory(events, certify);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.rw_antidependencies, 1u);
  EXPECT_EQ(report.dangerous_structures, 0u);
  EXPECT_TRUE(report.serializable());
}

TEST(SiCheckerSsiTest, VisibleWriteIsNotAnAntidependency) {
  // The reader observed the writer's install (wr, not rw): no edge.
  auto events = Sequenced({
      Commit(0, VV({0}), VV({1}), 1, {}, {{kX, 0}}, 1, 1),
      Commit(0, VV({1}), VV({1}), 0, {{kX, 0, 1}}, {}, 1, 2),
  });
  const AuditReport report = AuditHistory(events);
  EXPECT_EQ(report.rw_antidependencies, 0u);
  EXPECT_TRUE(report.serializable());
}

TEST(SiCheckerSsiTest, TwoPhaseCommitBranchesDoNotAntidependOnEachOther) {
  // One logical transaction's branches share (client, client_txn): the
  // site-1 branch does not "miss" the site-0 branch's write.
  auto events = Sequenced({
      Commit(0, VV({0, 0}), VV({1, 0}), 1, {}, {{kX, 0}}, 7, 1),
      Commit(1, VV({0, 0}), VV({0, 1}), 1, {{kX, 0, 0}}, {{kY, 1}}, 7, 1),
  });
  const AuditReport report = AuditHistory(events);
  EXPECT_EQ(report.rw_antidependencies, 0u) << report.ToString();
}

TEST(SiCheckerTest, OptionsForSystemPresets) {
  EXPECT_TRUE(tools::OptionsForSystem("dynamast").full_session_vectors);
  EXPECT_TRUE(tools::OptionsForSystem("multi-master").full_session_vectors);
  EXPECT_FALSE(tools::OptionsForSystem("partition-store").full_session_vectors);
  EXPECT_TRUE(tools::OptionsForSystem("partition-store").cross_origin_ww);
  EXPECT_FALSE(tools::OptionsForSystem("leap").full_session_vectors);
  EXPECT_FALSE(tools::OptionsForSystem("leap").cross_origin_ww);
}

// ---- Serialization ---------------------------------------------------

TEST(HistoryFormatTest, EventRoundTrips) {
  HistoryEvent e;
  e.seq = 42;
  e.kind = EventKind::kGrant;
  e.site = 2;
  e.client = 9;
  e.client_txn = 13;
  e.read_only = true;
  e.begin = VV({1, 2, 3});
  e.commit = VV({4, 5, 6});
  e.installed_seq = 6;
  e.reads = {{kX, 1, 5}, {kY, 0, 0}};
  e.writes = {{kX, 3}};
  e.partitions = {3, 7};
  e.peer = 0;
  e.release_version = VV({1, 1, 1});

  HistoryEvent parsed;
  ASSERT_TRUE(history::ParseEvent(history::SerializeEvent(e), &parsed).ok());
  EXPECT_EQ(parsed.seq, e.seq);
  EXPECT_EQ(parsed.kind, e.kind);
  EXPECT_EQ(parsed.site, e.site);
  EXPECT_EQ(parsed.client, e.client);
  EXPECT_EQ(parsed.client_txn, e.client_txn);
  EXPECT_EQ(parsed.read_only, e.read_only);
  EXPECT_EQ(parsed.begin, e.begin);
  EXPECT_EQ(parsed.commit, e.commit);
  EXPECT_EQ(parsed.installed_seq, e.installed_seq);
  ASSERT_EQ(parsed.reads.size(), 2u);
  EXPECT_EQ(parsed.reads[0].key, kX);
  EXPECT_EQ(parsed.reads[0].origin, 1u);
  EXPECT_EQ(parsed.reads[0].seq, 5u);
  ASSERT_EQ(parsed.writes.size(), 1u);
  EXPECT_EQ(parsed.writes[0].key, kX);
  EXPECT_EQ(parsed.writes[0].partition, 3u);
  EXPECT_EQ(parsed.partitions, e.partitions);
  EXPECT_EQ(parsed.peer, e.peer);
  EXPECT_EQ(parsed.release_version, e.release_version);
}

TEST(HistoryFormatTest, HistoryRoundTripsThroughRecorder) {
  history::Recorder recorder;
  recorder.Record(Commit(0, VV({0, 0}), VV({1, 0}), 1, {}, {{kX, 0}}, 1, 1));
  recorder.Record(Commit(0, VV({1, 0}), VV({1, 0}), 0, {{kX, 0, 1}}, {}, 1, 2));
  ASSERT_EQ(recorder.size(), 2u);

  std::vector<HistoryEvent> parsed;
  ASSERT_TRUE(history::ParseHistory(recorder.Serialize(), &parsed).ok());
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].seq, 1u);
  EXPECT_EQ(parsed[1].seq, 2u);
  EXPECT_TRUE(AuditHistory(parsed).ok());
}

TEST(HistoryFormatTest, ParserSkipsCommentsAndRejectsGarbage) {
  std::vector<HistoryEvent> parsed;
  ASSERT_TRUE(history::ParseHistory("# comment\n\n", &parsed).ok());
  EXPECT_TRUE(parsed.empty());
  EXPECT_FALSE(history::ParseHistory("not a history line\n", &parsed).ok());
}

// ---- End-to-end smoke ------------------------------------------------

TEST(SiCheckerLiveTest, DynaMastSmallBankAuditsClean) {
  workloads::SmallBankWorkload::Options wo;
  wo.num_accounts = 400;
  wo.accounts_per_partition = 20;
  workloads::SmallBankWorkload workload(wo);

  workloads::DeploymentOptions d;
  d.num_sites = 3;
  d.charge_network = false;
  d.read_op_cost = d.write_op_cost = d.apply_op_cost =
      std::chrono::microseconds(0);
  d.record_history = true;
  auto system = workloads::MakeSystem(workloads::SystemKind::kDynaMast, d,
                                      workload.partitioner());
  ASSERT_TRUE(workload.Load(*system).ok());
  system->Seal();

  workloads::Driver::Options dro;
  dro.num_clients = 4;
  dro.warmup = std::chrono::milliseconds(0);
  dro.measure = std::chrono::milliseconds(150);
  const workloads::Driver::Report report =
      workloads::Driver(dro).Run(*system, workload);
  system->Shutdown();
  EXPECT_GT(report.committed, 0u);

  ASSERT_NE(system->history(), nullptr);
  const AuditReport audit = AuditHistory(system->history()->Snapshot(),
                                         tools::OptionsForSystem("dynamast"));
  EXPECT_TRUE(audit.ok()) << audit.ToString();
  EXPECT_GT(audit.commits, 0u);
}

TEST(SiCheckerLiveTest, DynaMastYcsbCertifiesSerializable) {
  // YCSB's update transactions are read-modify-writes (read set == write
  // set), so under correct SI every rw-antidependency out of a committed
  // writer would also be a ww conflict that first-committer-wins forbids:
  // a clean DynaMast run must certify with zero dangerous structures.
  workloads::YcsbWorkload::Options wo;
  wo.num_keys = 800;
  wo.keys_per_partition = 40;
  wo.value_size = 32;
  wo.rmw_pct = 70;
  wo.seed = 11;
  workloads::YcsbWorkload workload(wo);

  workloads::DeploymentOptions d;
  d.num_sites = 3;
  d.charge_network = false;
  d.read_op_cost = d.write_op_cost = d.apply_op_cost =
      std::chrono::microseconds(0);
  d.record_history = true;
  auto system = workloads::MakeSystem(workloads::SystemKind::kDynaMast, d,
                                      workload.partitioner());
  ASSERT_TRUE(workload.Load(*system).ok());
  system->Seal();

  workloads::Driver::Options dro;
  dro.num_clients = 4;
  dro.ops_per_client = 60;  // fixed-count mode: machine-speed independent
  const workloads::Driver::Report report =
      workloads::Driver(dro).Run(*system, workload);
  system->Shutdown();
  EXPECT_GT(report.committed, 0u);

  tools::SiCheckerOptions options = tools::OptionsForSystem("dynamast");
  options.certify_serializable = true;
  const AuditReport audit =
      AuditHistory(system->history()->Snapshot(), options);
  EXPECT_TRUE(audit.ok()) << audit.ToString();
  EXPECT_TRUE(audit.serializable()) << audit.ToString();
  EXPECT_EQ(audit.dangerous_structures, 0u);
  EXPECT_GT(audit.commits, 0u);
}

}  // namespace
}  // namespace dynamast
