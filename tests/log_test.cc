// Tests for the durable log substrate: record serialization, topic
// ordering, cursors, close semantics, and redo-log integrity checking.

#include <gtest/gtest.h>

#include <thread>

#include "common/random.h"
#include "log/durable_log.h"
#include "log/log_record.h"

namespace dynamast::log {
namespace {

LogRecord MakeUpdateRecord() {
  LogRecord record;
  record.type = LogRecord::Type::kUpdate;
  record.origin = 2;
  record.tvv = VersionVector(std::vector<uint64_t>{1, 0, 5});
  record.writes.push_back(WriteEntry{RecordKey{1, 42}, "value-a", false});
  record.writes.push_back(WriteEntry{RecordKey{3, 7}, "value-b", true});
  return record;
}

TEST(LogRecordTest, RoundTripUpdate) {
  const LogRecord record = MakeUpdateRecord();
  LogRecord parsed;
  ASSERT_TRUE(LogRecord::Deserialize(record.Serialize(), &parsed).ok());
  EXPECT_EQ(parsed, record);
}

TEST(LogRecordTest, RoundTripReleaseMarker) {
  LogRecord record;
  record.type = LogRecord::Type::kRelease;
  record.origin = 1;
  record.tvv = VersionVector(std::vector<uint64_t>{0, 3});
  record.partitions = {5, 9, 11};
  record.transfer_peer = 0;
  LogRecord parsed;
  ASSERT_TRUE(LogRecord::Deserialize(record.Serialize(), &parsed).ok());
  EXPECT_EQ(parsed, record);
}

TEST(LogRecordTest, RoundTripGrantMarker) {
  LogRecord record;
  record.type = LogRecord::Type::kGrant;
  record.origin = 0;
  record.tvv = VersionVector(std::vector<uint64_t>{7, 3});
  record.partitions = {1};
  record.transfer_peer = 1;
  LogRecord parsed;
  ASSERT_TRUE(LogRecord::Deserialize(record.Serialize(), &parsed).ok());
  EXPECT_EQ(parsed, record);
}

TEST(LogRecordTest, SerializedSizeMatches) {
  const LogRecord record = MakeUpdateRecord();
  EXPECT_EQ(record.Serialize().size(), record.SerializedSize());
}

TEST(LogRecordTest, RejectsEveryTruncation) {
  const std::string encoded = MakeUpdateRecord().Serialize();
  LogRecord parsed;
  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    EXPECT_FALSE(LogRecord::Deserialize(encoded.substr(0, cut), &parsed).ok())
        << "cut at " << cut;
  }
}

TEST(LogRecordTest, RejectsTrailingGarbage) {
  LogRecord parsed;
  EXPECT_TRUE(LogRecord::Deserialize(MakeUpdateRecord().Serialize() + "zz",
                                     &parsed)
                  .IsCorruption());
}

TEST(LogRecordTest, RejectsBadType) {
  std::string encoded = MakeUpdateRecord().Serialize();
  encoded[0] = 9;
  LogRecord parsed;
  EXPECT_TRUE(LogRecord::Deserialize(encoded, &parsed).IsCorruption());
}

TEST(LogRecordTest, RandomRoundTripProperty) {
  Random rng(77);
  for (int i = 0; i < 100; ++i) {
    LogRecord record;
    record.type = static_cast<LogRecord::Type>(rng.Uniform(3));
    record.origin = static_cast<SiteId>(rng.Uniform(8));
    std::vector<uint64_t> vv(1 + rng.Uniform(8));
    for (auto& x : vv) x = rng.Uniform(1000);
    record.tvv = VersionVector(vv);
    const size_t writes = rng.Uniform(5);
    for (size_t w = 0; w < writes; ++w) {
      std::string value(rng.Uniform(64), 'q');
      record.writes.push_back(WriteEntry{
          RecordKey{static_cast<TableId>(rng.Uniform(4)), rng.Next()},
          std::move(value), rng.Bernoulli(0.5)});
    }
    const size_t parts = rng.Uniform(4);
    for (size_t p = 0; p < parts; ++p) record.partitions.push_back(rng.Next());
    record.transfer_peer = static_cast<SiteId>(rng.Uniform(8));
    LogRecord parsed;
    ASSERT_TRUE(LogRecord::Deserialize(record.Serialize(), &parsed).ok());
    EXPECT_EQ(parsed, record);
  }
}

// ---- DurableLog -----------------------------------------------------------

TEST(DurableLogTest, AppendAssignsDenseOffsets) {
  DurableLog log;
  EXPECT_EQ(log.Append("a"), 0u);
  EXPECT_EQ(log.Append("b"), 1u);
  EXPECT_EQ(log.Size(), 2u);
}

TEST(DurableLogTest, TryReadSemantics) {
  DurableLog log;
  log.Append("a");
  std::string out;
  ASSERT_TRUE(log.TryRead(0, &out).ok());
  EXPECT_EQ(out, "a");
  EXPECT_TRUE(log.TryRead(1, &out).IsNotFound());
}

TEST(DurableLogTest, BlockingReadWokenByAppend) {
  DurableLog log;
  std::string out;
  std::thread appender([&log] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    log.Append("late");
  });
  Status s = log.Read(0, &out,
                      std::chrono::steady_clock::now() +
                          std::chrono::seconds(5));
  appender.join();
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(out, "late");
}

TEST(DurableLogTest, BlockingReadTimesOut) {
  DurableLog log;
  std::string out;
  EXPECT_TRUE(log.Read(0, &out,
                       std::chrono::steady_clock::now() +
                           std::chrono::milliseconds(30))
                  .IsTimedOut());
}

TEST(DurableLogTest, CloseUnblocksReaders) {
  DurableLog log;
  std::string out;
  std::thread closer([&log] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    log.Close();
  });
  Status s = log.Read(0, &out,
                      std::chrono::steady_clock::now() +
                          std::chrono::seconds(5));
  closer.join();
  EXPECT_TRUE(s.IsUnavailable());
  EXPECT_TRUE(log.closed());
}

TEST(DurableLogTest, ReadsExistingEntriesAfterClose) {
  DurableLog log;
  log.Append("still-there");
  log.Close();
  std::string out;
  ASSERT_TRUE(log.Read(0, &out, std::chrono::steady_clock::now()).ok());
  EXPECT_EQ(out, "still-there");
}

TEST(LogCursorTest, IteratesInOrder) {
  DurableLog log;
  for (int i = 0; i < 5; ++i) log.Append(std::to_string(i));
  LogCursor cursor(&log);
  std::string out;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(cursor.TryNext(&out).ok());
    EXPECT_EQ(out, std::to_string(i));
  }
  EXPECT_TRUE(cursor.TryNext(&out).IsNotFound());
  EXPECT_EQ(cursor.offset(), 5u);
}

TEST(LogCursorTest, SeekSupportsReplay) {
  DurableLog log;
  log.Append("a");
  log.Append("b");
  LogCursor cursor(&log);
  std::string out;
  ASSERT_TRUE(cursor.TryNext(&out).ok());
  ASSERT_TRUE(cursor.TryNext(&out).ok());
  cursor.SeekTo(0);
  ASSERT_TRUE(cursor.TryNext(&out).ok());
  EXPECT_EQ(out, "a");
}

TEST(LogCursorTest, FailedNextDoesNotAdvance) {
  DurableLog log;
  LogCursor cursor(&log);
  std::string out;
  EXPECT_TRUE(cursor.TryNext(&out).IsNotFound());
  EXPECT_EQ(cursor.offset(), 0u);
}

TEST(LogManagerTest, OneTopicPerSite) {
  LogManager logs(3);
  EXPECT_EQ(logs.num_sites(), 3u);
  logs.TopicFor(0)->Append("x");
  EXPECT_EQ(logs.TopicFor(0)->Size(), 1u);
  EXPECT_EQ(logs.TopicFor(1)->Size(), 0u);
  logs.CloseAll();
  EXPECT_TRUE(logs.TopicFor(2)->closed());
}

TEST(DurableLogTest, ConcurrentAppendersTotalOrder) {
  DurableLog log;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < 250; ++i) {
        log.Append(std::to_string(t) + ":" + std::to_string(i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(log.Size(), 1000u);
  // Per-producer subsequences must appear in order.
  std::vector<int> last_seen(4, -1);
  std::string out;
  for (uint64_t off = 0; off < 1000; ++off) {
    ASSERT_TRUE(log.TryRead(off, &out).ok());
    const int producer = out[0] - '0';
    const int seq = std::stoi(out.substr(2));
    EXPECT_GT(seq, last_seen[producer]);
    last_seen[producer] = seq;
  }
}

}  // namespace
}  // namespace dynamast::log
