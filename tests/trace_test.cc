// Unit tests for the span tracer (common/trace): null-tracer no-ops, span
// nesting / timestamp containment, ring-buffer eviction accounting, and
// Chrome trace-event JSON structure.

#include <gtest/gtest.h>

#include <string>

#include "common/metrics.h"
#include "common/trace.h"
#include "tools/json_util.h"

namespace dynamast::trace {
namespace {

TEST(TraceTest, NullTracerIsANoop) {
  Span span(nullptr, "work", "test", 0, 1);
  span.SetTxn(1, 2);
  span.AddNum("x", 3.0);
  span.End();  // must not crash; nothing to record into
}

TEST(TraceTest, SpanNestingTimestampsContain) {
  Tracer tracer;
  {
    Span outer(&tracer, "outer", "test", 0, 7);
    outer.SetTxn(7, 1);
    {
      Span inner(&tracer, "inner", "test", 0, 7);
      inner.AddNum("ops", 3);
    }  // inner ends first
  }
  auto events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Ring order is record order: inner ended (and was recorded) first.
  const TraceEvent& inner = events[0];
  const TraceEvent& outer = events[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.name, "outer");
  // Containment: outer started no later and ended no earlier than inner.
  EXPECT_LE(outer.ts_us, inner.ts_us);
  EXPECT_GE(outer.ts_us + outer.dur_us, inner.ts_us + inner.dur_us);
  EXPECT_EQ(outer.pid, 0u);
  EXPECT_EQ(outer.tid, 7u);
  // Correlation arg format is the cross-site join key.
  bool found_txn = false;
  for (const auto& [k, v] : outer.args) {
    if (k == "txn") {
      EXPECT_EQ(v, "c7.t1");
      found_txn = true;
    }
  }
  EXPECT_TRUE(found_txn);
}

TEST(TraceTest, EndIsIdempotent) {
  Tracer tracer;
  {
    Span span(&tracer, "once", "test", 0, 0);
    span.End();
    span.End();  // explicit double-End plus destructor: one event
  }
  EXPECT_EQ(tracer.Snapshot().size(), 1u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(TraceTest, RingEvictsOldestAndCountsDrops) {
  Tracer tracer(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    Span span(&tracer, "s" + std::to_string(i), "test", 0, 0);
  }
  auto events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  // Oldest-first snapshot of the survivors: s6..s9.
  EXPECT_EQ(events[0].name, "s6");
  EXPECT_EQ(events[3].name, "s9");
}

TEST(TraceTest, ChromeJsonIsValidAndCarriesProcessNames) {
  Tracer tracer;
  tracer.SetProcessName(0, "site0");
  tracer.SetProcessName(2, "selector");
  {
    Span span(&tracer, "route", "txn", 2, 11);
    span.AddNum("winner", 1);
  }
  tools::JsonValue doc;
  ASSERT_TRUE(tools::ParseJson(tracer.ToChromeJson(), &doc).ok());
  const tools::JsonValue* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  size_t meta = 0, spans = 0;
  for (const tools::JsonValue& e : events->array) {
    const std::string ph = e.GetString("ph");
    if (ph == "M") {
      ++meta;
      EXPECT_EQ(e.GetString("name"), "process_name");
    } else {
      ++spans;
      EXPECT_EQ(ph, "X");
      EXPECT_EQ(e.GetString("name"), "route");
      EXPECT_EQ(e.GetUint64("pid"), 2u);
      EXPECT_EQ(e.GetUint64("tid"), 11u);
      const tools::JsonValue* args = e.Find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_EQ(args->GetString("winner"), "1");
    }
  }
  EXPECT_EQ(meta, 2u);
  EXPECT_EQ(spans, 1u);
}

TEST(TraceTest, PidOffsetShiftsLanes) {
  TraceEvent event;
  event.name = "x";
  event.cat = "test";
  event.pid = 3;
  tools::JsonValue doc;
  ASSERT_TRUE(tools::ParseJson(event.ToJson(/*pid_offset=*/100), &doc).ok());
  EXPECT_EQ(doc.GetUint64("pid"), 103u);
}

}  // namespace
}  // namespace dynamast::trace
