// Tests for the simulated network, admission gate, partitioners, the
// system factory and the DynaMast phase instrumentation.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/latency_recorder.h"
#include "common/partitioner.h"
#include "core/dynamast_system.h"
#include "net/sim_network.h"
#include "site/admission_gate.h"
#include "workloads/system_factory.h"
#include "workloads/ycsb.h"

namespace dynamast {
namespace {

// ---- SimulatedNetwork --------------------------------------------------

TEST(SimulatedNetworkTest, CountsMessagesAndBytes) {
  net::SimulatedNetwork::Options options;
  options.charge_delays = false;
  net::SimulatedNetwork network(options);
  network.Send(net::TrafficClass::kPropagation, 1000);
  network.Send(net::TrafficClass::kPropagation, 500);
  network.Send(net::TrafficClass::kRemastering, 64);
  EXPECT_EQ(network.MessageCount(net::TrafficClass::kPropagation), 2u);
  EXPECT_EQ(network.ByteCount(net::TrafficClass::kPropagation), 1500u);
  EXPECT_EQ(network.MessageCount(net::TrafficClass::kRemastering), 1u);
  EXPECT_EQ(network.TotalMessages(), 3u);
  EXPECT_EQ(network.TotalBytes(), 1564u);
}

TEST(SimulatedNetworkTest, RoundTripIsTwoMessages) {
  net::SimulatedNetwork::Options options;
  options.charge_delays = false;
  net::SimulatedNetwork network(options);
  network.RoundTrip(net::TrafficClass::kClientRequest, 100, 50);
  EXPECT_EQ(network.MessageCount(net::TrafficClass::kClientRequest), 2u);
  EXPECT_EQ(network.ByteCount(net::TrafficClass::kClientRequest), 150u);
}

TEST(SimulatedNetworkTest, ChargesLatencyWhenEnabled) {
  net::SimulatedNetwork::Options options;
  options.one_way_latency = std::chrono::microseconds(2000);
  options.charge_delays = true;
  net::SimulatedNetwork network(options);
  Stopwatch watch;
  network.Send(net::TrafficClass::kClientRequest, 10);
  EXPECT_GE(watch.ElapsedMicros(), 2000u);
}

TEST(SimulatedNetworkTest, NoDelayWhenDisabled) {
  net::SimulatedNetwork::Options options;
  options.one_way_latency = std::chrono::seconds(10);
  options.charge_delays = false;
  net::SimulatedNetwork network(options);
  Stopwatch watch;
  network.Send(net::TrafficClass::kClientRequest, 10);
  EXPECT_LT(watch.ElapsedMicros(), 1000000u);
}

TEST(SimulatedNetworkTest, SerializedLinkQueuesSenders) {
  // With serialize_link, concurrent senders queue for the shared wire:
  // total wall time is at least the *sum* of transmission costs, where
  // the default (parallel-bandwidth) model overlaps them.
  net::SimulatedNetwork::Options options;
  options.one_way_latency = std::chrono::microseconds(0);
  options.per_kilobyte = std::chrono::nanoseconds(2'000'000);  // 2ms per KB
  options.charge_delays = true;
  options.serialize_link = true;
  net::SimulatedNetwork network(options);
  constexpr int kSenders = 4;
  Stopwatch watch;
  std::vector<std::thread> senders;
  for (int i = 0; i < kSenders; ++i) {
    senders.emplace_back(
        [&] { network.Send(net::TrafficClass::kPropagation, 1024); });
  }
  for (auto& t : senders) t.join();
  // 4 messages x 1KB x 2ms, serialized: >= 8ms end to end.
  EXPECT_GE(watch.ElapsedMicros(), 8000u);
  EXPECT_EQ(network.MessageCount(net::TrafficClass::kPropagation), 4u);
}

TEST(SimulatedNetworkTest, ResetClearsCounters) {
  net::SimulatedNetwork::Options options;
  options.charge_delays = false;
  net::SimulatedNetwork network(options);
  network.Send(net::TrafficClass::kDataShipping, 9);
  network.ResetCounters();
  EXPECT_EQ(network.TotalMessages(), 0u);
  EXPECT_EQ(network.TotalBytes(), 0u);
}

TEST(SimulatedNetworkTest, ReportNamesEveryClass) {
  net::SimulatedNetwork::Options options;
  options.charge_delays = false;
  net::SimulatedNetwork network(options);
  const std::string report = network.ReportCounters();
  for (const char* name : {"client_request", "propagation", "remastering",
                           "coordination", "data_shipping"}) {
    EXPECT_NE(report.find(name), std::string::npos) << name;
  }
}

// ---- AdmissionGate -------------------------------------------------------

TEST(AdmissionGateTest, LimitsConcurrency) {
  site::AdmissionGate gate(2);
  std::atomic<int> inside{0};
  std::atomic<int> max_inside{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 20; ++i) {
        site::AdmissionGate::Scoped slot(gate);
        const int now = inside.fetch_add(1) + 1;
        int expected = max_inside.load();
        while (now > expected &&
               !max_inside.compare_exchange_weak(expected, now)) {
        }
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        inside.fetch_sub(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_LE(max_inside.load(), 2);
  EXPECT_GT(max_inside.load(), 0);
}

// Regression for the deferred wait-histogram observation (Enter records
// the slot wait after releasing the gate mutex): every Enter must still
// produce exactly one observation, including contended entries.
TEST(AdmissionGateTest, WaitHistogramCountsEveryEntry) {
  metrics::Registry registry;
  metrics::Histogram* wait_us = registry.GetHistogram("gate_wait_us");
  metrics::Gauge* depth = registry.GetGauge("gate_queue_depth");
  site::AdmissionGate gate(2);
  gate.SetMetrics(wait_us, depth);

  constexpr int kThreads = 8;
  constexpr int kEntriesPerThread = 25;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kEntriesPerThread; ++i) {
        site::AdmissionGate::Scoped slot(gate);
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(wait_us->recorder().count(),
            static_cast<uint64_t>(kThreads) * kEntriesPerThread);
  EXPECT_EQ(depth->Value(), 0.0);
}

TEST(AdmissionGateTest, QueueDepthReflectsWaiters) {
  site::AdmissionGate gate(1);
  gate.Enter();
  std::thread waiter([&gate] {
    site::AdmissionGate::Scoped slot(gate);
  });
  // Give the waiter time to queue.
  for (int i = 0; i < 100 && gate.QueueDepth() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(gate.QueueDepth(), 1u);
  gate.Exit();
  waiter.join();
  EXPECT_EQ(gate.QueueDepth(), 0u);
}

// ---- Partitioners ----------------------------------------------------------

TEST(PartitionerTest, RangePartitioner) {
  RangePartitioner partitioner(100, 10);
  EXPECT_EQ(partitioner.NumPartitions(), 10u);
  EXPECT_EQ(partitioner.PartitionOf(RecordKey{0, 0}), 0u);
  EXPECT_EQ(partitioner.PartitionOf(RecordKey{0, 99}), 0u);
  EXPECT_EQ(partitioner.PartitionOf(RecordKey{0, 100}), 1u);
  EXPECT_EQ(partitioner.PartitionOf(RecordKey{5, 999}), 9u);  // table-blind
}

TEST(PartitionerTest, FunctionPartitioner) {
  FunctionPartitioner partitioner(
      [](const RecordKey& key) { return key.table * 10 + key.row % 10; }, 40);
  EXPECT_EQ(partitioner.NumPartitions(), 40u);
  EXPECT_EQ(partitioner.PartitionOf(RecordKey{2, 7}), 27u);
}

// ---- System factory -------------------------------------------------------

TEST(SystemFactoryTest, AllFiveSystemsConstruct) {
  RangePartitioner partitioner(10, 10);
  workloads::DeploymentOptions options;
  options.num_sites = 2;
  options.charge_network = false;
  options.read_op_cost = options.write_op_cost = options.apply_op_cost =
      std::chrono::microseconds(0);
  for (workloads::SystemKind kind : workloads::AllSystems()) {
    auto system = workloads::MakeSystem(kind, options, partitioner);
    ASSERT_NE(system, nullptr);
    EXPECT_EQ(system->name(), workloads::SystemKindName(kind));
    EXPECT_TRUE(system->CreateTable(0).ok());
    EXPECT_TRUE(system->LoadRow(RecordKey{0, 1}, "x").ok());
    system->Seal();
    system->Shutdown();
  }
}

TEST(SystemFactoryTest, NamesAreDistinct) {
  std::set<std::string> names;
  for (workloads::SystemKind kind : workloads::AllSystems()) {
    names.insert(workloads::SystemKindName(kind));
  }
  EXPECT_EQ(names.size(), 5u);
}

// ---- Phase instrumentation ---------------------------------------------------

TEST(PhaseStatsTest, WriteTransactionRecordsAllPhases) {
  RangePartitioner partitioner(10, 10);
  core::DynaMastSystem::Options options;
  options.cluster.num_sites = 2;
  options.cluster.network.charge_delays = false;
  options.cluster.site.read_op_cost = options.cluster.site.write_op_cost =
      options.cluster.site.apply_op_cost = std::chrono::microseconds(0);
  core::DynaMastSystem system(options, &partitioner);
  ASSERT_TRUE(system.CreateTable(0).ok());
  ASSERT_TRUE(system.LoadRow(RecordKey{0, 1}, "x").ok());
  system.Seal();

  core::ClientState client;
  client.id = 1;
  core::TxnProfile profile;
  profile.write_keys = {RecordKey{0, 1}};
  core::TxnResult result;
  ASSERT_TRUE(system
                  .Execute(client, profile,
                           [](core::TxnContext& ctx) {
                             return ctx.Put(RecordKey{0, 1}, "y");
                           },
                           &result)
                  .ok());
  EXPECT_EQ(system.phase_stats().routing.count(), 1u);
  EXPECT_EQ(system.phase_stats().network.count(), 1u);
  EXPECT_EQ(system.phase_stats().begin.count(), 1u);
  EXPECT_EQ(system.phase_stats().logic.count(), 1u);
  EXPECT_EQ(system.phase_stats().commit.count(), 1u);
  system.Shutdown();
}

}  // namespace
}  // namespace dynamast
