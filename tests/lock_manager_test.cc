// Edge-case tests for the striped write-lock manager: re-entrancy,
// contention hand-off, timeout-while-waiting (abort paths), AcquireAll
// rollback on partial failure, release ordering, and a multi-threaded
// hammer that checks mutual exclusion end to end.

#include "storage/lock_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace dynamast::storage {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

RecordKey Key(uint64_t k) { return RecordKey{0, k}; }

steady_clock::time_point After(int ms) {
  return steady_clock::now() + milliseconds(ms);
}

TEST(LockManagerTest, AcquireIsReentrant) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(Key(1), 7, After(100)).ok());
  ASSERT_TRUE(lm.Acquire(Key(1), 7, After(100)).ok());  // same txn: no wait
  EXPECT_TRUE(lm.Holds(Key(1), 7));
  EXPECT_EQ(lm.NumHeldLocks(), 1u);
  lm.Release(Key(1), 7);
  EXPECT_FALSE(lm.Holds(Key(1), 7));
  EXPECT_EQ(lm.NumHeldLocks(), 0u);
}

TEST(LockManagerTest, SecondReleaseIsNoOp) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(Key(1), 7, After(100)).ok());
  lm.Release(Key(1), 7);
  lm.Release(Key(1), 7);  // already released
  lm.Release(Key(2), 7);  // never held
  EXPECT_EQ(lm.NumHeldLocks(), 0u);
}

TEST(LockManagerTest, ReleaseByNonHolderKeepsLock) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(Key(1), 7, After(100)).ok());
  lm.Release(Key(1), 8);  // txn 8 does not hold it
  EXPECT_TRUE(lm.Holds(Key(1), 7));
  lm.Release(Key(1), 7);
}

TEST(LockManagerTest, ContendedAcquireTimesOut) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(Key(1), 1, After(1000)).ok());
  const auto start = steady_clock::now();
  Status s = lm.Acquire(Key(1), 2, After(50));
  EXPECT_TRUE(s.IsTimedOut()) << s.ToString();
  EXPECT_GE(steady_clock::now() - start, milliseconds(50));
  // The holder is unaffected by the aborted waiter.
  EXPECT_TRUE(lm.Holds(Key(1), 1));
  EXPECT_FALSE(lm.Holds(Key(1), 2));
  lm.Release(Key(1), 1);
}

TEST(LockManagerTest, WaiterWinsLockAfterRelease) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(Key(1), 1, After(100)).ok());
  std::thread releaser([&] {
    std::this_thread::sleep_for(milliseconds(30));
    lm.Release(Key(1), 1);
  });
  // Blocks past the release, then succeeds well before the deadline.
  Status s = lm.Acquire(Key(1), 2, After(2000));
  releaser.join();
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(lm.Holds(Key(1), 2));
  lm.Release(Key(1), 2);
}

TEST(LockManagerTest, ReleaseRacingTheDeadlineStillSucceeds) {
  // The implementation re-checks the table once after a timed-out wait:
  // a release that lands between the last wakeup and the deadline must
  // yield the lock, not a spurious TimedOut.
  LockManager lm;
  for (int round = 0; round < 20; ++round) {
    ASSERT_TRUE(lm.Acquire(Key(1), 1, After(1000)).ok());
    std::thread releaser([&] { lm.Release(Key(1), 1); });
    Status s = lm.Acquire(Key(1), 2, After(2));
    releaser.join();
    if (s.ok()) {
      EXPECT_TRUE(lm.Holds(Key(1), 2));
      lm.Release(Key(1), 2);
    } else {
      EXPECT_TRUE(s.IsTimedOut()) << s.ToString();
      lm.Release(Key(1), 1);
    }
    ASSERT_EQ(lm.NumHeldLocks(), 0u);
  }
}

TEST(LockManagerTest, AcquireAllDeduplicatesAndSorts) {
  LockManager lm;
  std::vector<RecordKey> keys = {Key(5), Key(1), Key(5), Key(3), Key(1)};
  ASSERT_TRUE(lm.AcquireAll(keys, 7, After(100)).ok());
  EXPECT_EQ(lm.NumHeldLocks(), 3u);
  EXPECT_TRUE(lm.Holds(Key(1), 7));
  EXPECT_TRUE(lm.Holds(Key(3), 7));
  EXPECT_TRUE(lm.Holds(Key(5), 7));
  lm.ReleaseAll(keys, 7);
  EXPECT_EQ(lm.NumHeldLocks(), 0u);
}

TEST(LockManagerTest, AcquireAllRollsBackOnTimeout) {
  LockManager lm;
  // Txn 1 holds the middle of txn 2's (sorted) key set.
  ASSERT_TRUE(lm.Acquire(Key(3), 1, After(1000)).ok());
  Status s = lm.AcquireAll({Key(5), Key(3), Key(1)}, 2, After(50));
  EXPECT_TRUE(s.IsTimedOut()) << s.ToString();
  // Every lock txn 2 picked up before the blocked key was rolled back,
  // and keys after the blocked one were never touched.
  EXPECT_FALSE(lm.Holds(Key(1), 2));
  EXPECT_FALSE(lm.Holds(Key(5), 2));
  EXPECT_TRUE(lm.Holds(Key(3), 1));
  EXPECT_EQ(lm.NumHeldLocks(), 1u);
  lm.Release(Key(3), 1);
}

TEST(LockManagerTest, RolledBackLocksAreImmediatelyAcquirable) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(Key(3), 1, After(1000)).ok());
  ASSERT_TRUE(lm.AcquireAll({Key(1), Key(3)}, 2, After(20)).IsTimedOut());
  // Txn 3 must not block on txn 2's rolled-back lock on key 1.
  EXPECT_TRUE(lm.Acquire(Key(1), 3, After(20)).ok());
  lm.Release(Key(1), 3);
  lm.Release(Key(3), 1);
}

TEST(LockManagerTest, AbortWhileWaitingWakesOtherWaiters) {
  // Waiter A times out (aborts); waiter B, queued behind the same key,
  // must still win the lock once the holder releases — an aborted waiter
  // must not swallow the notification.
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(Key(1), 1, After(5000)).ok());
  std::atomic<bool> b_won{false};
  std::thread waiter_a([&] {
    EXPECT_TRUE(lm.Acquire(Key(1), 2, After(30)).IsTimedOut());
  });
  std::thread waiter_b([&] {
    Status s = lm.Acquire(Key(1), 3, After(5000));
    EXPECT_TRUE(s.ok()) << s.ToString();
    b_won = true;
  });
  waiter_a.join();  // A has aborted; B still parked
  EXPECT_FALSE(b_won);
  lm.Release(Key(1), 1);
  waiter_b.join();
  EXPECT_TRUE(b_won);
  EXPECT_TRUE(lm.Holds(Key(1), 3));
  lm.Release(Key(1), 3);
}

TEST(LockManagerTest, DistinctTablesAreDistinctLocks) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(RecordKey{0, 1}, 1, After(100)).ok());
  ASSERT_TRUE(lm.Acquire(RecordKey{1, 1}, 2, After(100)).ok());
  EXPECT_EQ(lm.NumHeldLocks(), 2u);
  lm.Release(RecordKey{0, 1}, 1);
  lm.Release(RecordKey{1, 1}, 2);
}

TEST(LockManagerTest, MutualExclusionUnderHammer) {
  // N threads repeatedly lock a small hot key set and mutate per-key
  // counters inside the critical section; any mutual-exclusion failure
  // shows up as a lost update (and as a TSan report in the tsan preset).
  constexpr int kThreads = 4;
  constexpr int kKeys = 3;
  constexpr int kRounds = 200;
  LockManager lm;
  int counters[kKeys] = {0, 0, 0};
  std::atomic<int> successes{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRounds; ++r) {
        const TxnId txn = static_cast<TxnId>(t) * kRounds + r + 1;
        std::vector<RecordKey> keys;
        for (int k = 0; k < kKeys; ++k) keys.push_back(Key(k));
        if (!lm.AcquireAll(keys, txn, After(5000)).ok()) continue;
        for (int k = 0; k < kKeys; ++k) ++counters[k];
        lm.ReleaseAll(keys, txn);
        successes.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(lm.NumHeldLocks(), 0u);
  for (int k = 0; k < kKeys; ++k) {
    EXPECT_EQ(counters[k], successes.load()) << "lost update on key " << k;
  }
  EXPECT_EQ(successes.load(), kThreads * kRounds);
}

}  // namespace
}  // namespace dynamast::storage
