// Tests for the site selector: partition map locking, access statistics
// (sampling, co-access, expiry), the remastering strategy features
// (Eq. 2-8), and end-to-end routing/remastering (Algorithm 1).

#include "selector/site_selector.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <thread>

#include "common/partitioner.h"
#include "log/durable_log.h"
#include "selector/access_statistics.h"
#include "selector/partition_map.h"
#include "selector/strategy.h"

namespace dynamast::selector {
namespace {

constexpr TableId kTable = 0;
using Clock = std::chrono::steady_clock;

// ---- PartitionMap ---------------------------------------------------------

TEST(PartitionMapTest, InitialMaster) {
  PartitionMap map(5, 2);
  for (PartitionId p = 0; p < 5; ++p) EXPECT_EQ(map.MasterOfLocked(p), 2u);
}

TEST(PartitionMapTest, SetMaster) {
  PartitionMap map(5, 0);
  map.SetMaster(3, 1);
  EXPECT_EQ(map.MasterOfLocked(3), 1u);
  EXPECT_EQ(map.MasterOfLocked(2), 0u);
}

TEST(PartitionMapTest, MasterCounts) {
  PartitionMap map(6, 0);
  map.SetMaster(0, 1);
  map.SetMaster(1, 1);
  map.SetMaster(2, 2);
  auto counts = map.MasterCounts(3);
  EXPECT_EQ(counts[0], 3u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
}

TEST(PartitionMapTest, SharedLocksAllowConcurrentReaders) {
  // The second reader must be a separate thread: recursive lock_shared
  // from one thread is UB on std::shared_mutex (and the lock-order
  // checker flags it as a potential self-deadlock).
  PartitionMap map(2, 0);
  map.LockShared(0);
  std::atomic<bool> got_shared{false};
  std::thread reader([&] {
    map.LockShared(0);  // concurrent reader does not block
    got_shared.store(true);
    EXPECT_EQ(map.MasterOf(0), 0u);
    map.UnlockShared(0);
  });
  reader.join();
  EXPECT_TRUE(got_shared.load());
  map.UnlockShared(0);
}

TEST(PartitionMapTest, ExclusiveLockExcludesReaders) {
  PartitionMap map(1, 0);
  map.LockExclusive(0);
  std::atomic<bool> got_shared{false};
  std::thread reader([&] {
    map.LockShared(0);
    got_shared.store(true);
    map.UnlockShared(0);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got_shared.load());
  map.UnlockExclusive(0);
  reader.join();
  EXPECT_TRUE(got_shared.load());
}

// ---- AccessStatistics -------------------------------------------------------

AccessStatistics::Options StatsOptions(uint32_t sites) {
  AccessStatistics::Options o;
  o.num_sites = sites;
  o.inter_txn_window = std::chrono::milliseconds(100);
  o.history_capacity = 100;
  o.sample_ttl = std::chrono::hours(1);
  return o;
}

TEST(AccessStatisticsTest, WriteFrequenciesAccumulate) {
  AccessStatistics stats(StatsOptions(2), {0, 0, 1, 1});
  const auto now = Clock::now();
  stats.RecordWriteSet(1, {0, 1}, now);
  stats.RecordWriteSet(1, {2}, now);
  EXPECT_EQ(stats.PartitionWriteCount(0), 1u);
  EXPECT_EQ(stats.PartitionWriteCount(2), 1u);
  EXPECT_EQ(stats.TotalWriteCount(), 3u);
  EXPECT_DOUBLE_EQ(stats.SiteWriteFraction(0), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(stats.SiteWriteFraction(1), 1.0 / 3.0);
}

TEST(AccessStatisticsTest, IntraCoAccessProbability) {
  AccessStatistics stats(StatsOptions(2), {0, 0, 0, 0});
  const auto now = Clock::now();
  stats.RecordWriteSet(1, {0, 1}, now);
  stats.RecordWriteSet(1, {0, 1}, now);
  stats.RecordWriteSet(1, {0, 2}, now);
  auto co = stats.IntraCoAccess(0);
  double p1 = 0, p2 = 0;
  for (const auto& [d2, p] : co) {
    if (d2 == 1) p1 = p;
    if (d2 == 2) p2 = p;
  }
  EXPECT_NEAR(p1, 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(p2, 1.0 / 3.0, 1e-9);
}

TEST(AccessStatisticsTest, InterCoAccessWithinWindow) {
  AccessStatistics stats(StatsOptions(2), {0, 0, 0});
  const auto now = Clock::now();
  stats.RecordWriteSet(1, {0}, now);
  stats.RecordWriteSet(1, {1}, now + std::chrono::milliseconds(10));
  auto co = stats.InterCoAccess(0);
  ASSERT_FALSE(co.empty());
  EXPECT_EQ(co[0].first, 1u);
}

TEST(AccessStatisticsTest, InterCoAccessOutsideWindowIgnored) {
  AccessStatistics stats(StatsOptions(2), {0, 0, 0});
  const auto now = Clock::now();
  stats.RecordWriteSet(1, {0}, now);
  stats.RecordWriteSet(1, {1}, now + std::chrono::seconds(10));
  EXPECT_TRUE(stats.InterCoAccess(0).empty());
}

TEST(AccessStatisticsTest, DifferentClientsDoNotCorrelateInterTxn) {
  AccessStatistics stats(StatsOptions(2), {0, 0, 0});
  const auto now = Clock::now();
  stats.RecordWriteSet(1, {0}, now);
  stats.RecordWriteSet(2, {1}, now + std::chrono::milliseconds(1));
  EXPECT_TRUE(stats.InterCoAccess(0).empty());
}

TEST(AccessStatisticsTest, HistoryOverflowExpiresOldest) {
  auto options = StatsOptions(2);
  options.history_capacity = 2;
  AccessStatistics stats(options, {0, 0, 0});
  const auto now = Clock::now();
  stats.RecordWriteSet(1, {0}, now);
  stats.RecordWriteSet(1, {1}, now);
  stats.RecordWriteSet(1, {2}, now);  // evicts the {0} sample
  EXPECT_EQ(stats.PartitionWriteCount(0), 0u);
  EXPECT_EQ(stats.PartitionWriteCount(2), 1u);
  EXPECT_EQ(stats.TotalWriteCount(), 2u);
  EXPECT_EQ(stats.HistorySize(), 2u);
}

TEST(AccessStatisticsTest, TtlExpiryDecrementsCoAccess) {
  auto options = StatsOptions(2);
  options.sample_ttl = std::chrono::milliseconds(50);
  AccessStatistics stats(options, {0, 0});
  const auto t0 = Clock::now();
  stats.RecordWriteSet(1, {0, 1}, t0);
  EXPECT_FALSE(stats.IntraCoAccess(0).empty());
  // A much later sample expires the first one.
  stats.RecordWriteSet(1, {1}, t0 + std::chrono::seconds(1));
  EXPECT_TRUE(stats.IntraCoAccess(0).empty());
  EXPECT_EQ(stats.PartitionWriteCount(0), 0u);
}

TEST(AccessStatisticsTest, OnRemasterMovesSiteTotals) {
  AccessStatistics stats(StatsOptions(2), {0, 0});
  stats.RecordWriteSet(1, {0}, Clock::now());
  EXPECT_DOUBLE_EQ(stats.SiteWriteFraction(0), 1.0);
  stats.OnRemaster(0, 1);
  EXPECT_DOUBLE_EQ(stats.SiteWriteFraction(0), 0.0);
  EXPECT_DOUBLE_EQ(stats.SiteWriteFraction(1), 1.0);
  EXPECT_EQ(stats.MasterMirror(0), 1u);
}

// ---- RemasterStrategy --------------------------------------------------------

TEST(StrategyTest, BalanceDistanceZeroWhenBalanced) {
  EXPECT_DOUBLE_EQ(RemasterStrategy::BalanceDistance({0.25, 0.25, 0.25, 0.25}),
                   0.0);
}

TEST(StrategyTest, BalanceDistanceGrowsWithImbalance) {
  const double mild = RemasterStrategy::BalanceDistance({0.3, 0.2, 0.25, 0.25});
  const double severe = RemasterStrategy::BalanceDistance({1.0, 0.0, 0.0, 0.0});
  EXPECT_GT(severe, mild);
  EXPECT_GT(mild, 0.0);
}

// A strategy with only the balance feature must spread hot partitions away
// from the loaded site.
TEST(StrategyTest, BalanceOnlySpreadsLoad) {
  StrategyWeights weights{/*balance=*/1.0, /*delay=*/0.0, /*intra=*/0.0,
                          /*inter=*/0.0};
  RemasterStrategy strategy(weights, 2);
  AccessStatistics stats(StatsOptions(2), {0, 0, 0, 0});
  const auto now = Clock::now();
  // All load on site 0's partitions.
  for (int i = 0; i < 10; ++i) {
    stats.RecordWriteSet(1, {0}, now);
    stats.RecordWriteSet(1, {1}, now);
  }
  RemasterDecisionInput input;
  input.write_partitions = {0};
  input.current_masters = {0};
  input.site_versions = {VersionVector(2), VersionVector(2)};
  EXPECT_EQ(strategy.ChooseSite(input, stats), 1u);
}

// With only the intra-transaction feature, co-accessed partitions are
// pulled to where their partner masters.
TEST(StrategyTest, IntraFeatureCoLocates) {
  StrategyWeights weights{0.0, 0.0, /*intra=*/1.0, 0.0};
  RemasterStrategy strategy(weights, 3);
  // Partition 1 masters at site 2; partition 0 frequently co-accessed
  // with partition 1.
  AccessStatistics stats(StatsOptions(3), {0, 2, 1});
  const auto now = Clock::now();
  for (int i = 0; i < 5; ++i) stats.RecordWriteSet(1, {0, 1}, now);

  RemasterDecisionInput input;
  input.write_partitions = {0};
  input.current_masters = {0};
  input.site_versions = {VersionVector(3), VersionVector(3), VersionVector(3)};
  std::vector<SiteScore> scores;
  strategy.ScoreSites(input, stats, &scores);
  // Moving 0 to site 2 co-locates it with 1: positive intra score there.
  EXPECT_GT(scores[2].f_intra_txn, 0.0);
  // Keeping it at site 0 keeps them split: no improvement.
  EXPECT_LE(scores[0].f_intra_txn, 0.0);
  EXPECT_EQ(strategy.ChooseSite(input, stats), 2u);
}

// The refresh-delay feature penalizes lagging destinations.
TEST(StrategyTest, DelayFeaturePenalizesLaggingSite) {
  StrategyWeights weights{0.0, /*delay=*/1.0, 0.0, 0.0};
  RemasterStrategy strategy(weights, 3);
  AccessStatistics stats(StatsOptions(3), {1, 1});
  RemasterDecisionInput input;
  input.write_partitions = {0};
  input.current_masters = {1};
  input.client_session = VersionVector(std::vector<uint64_t>{0, 0, 0});
  // Site 0 is caught up with the source (site 1); site 2 lags.
  input.site_versions = {
      VersionVector(std::vector<uint64_t>{5, 9, 0}),
      VersionVector(std::vector<uint64_t>{5, 9, 0}),   // source
      VersionVector(std::vector<uint64_t>{0, 0, 0}),   // laggard
  };
  std::vector<SiteScore> scores;
  strategy.ScoreSites(input, stats, &scores);
  EXPECT_GT(scores[2].f_refresh_delay, scores[0].f_refresh_delay);
  // The laggard (site 2) must not be chosen; site 0 and the source tie at
  // zero delay and the tie-break keeps the write set at its current
  // master (fewest transfers).
  EXPECT_NE(strategy.ChooseSite(input, stats), 2u);
}

TEST(StrategyTest, SessionVectorContributesToDelay) {
  StrategyWeights weights{0.0, 1.0, 0.0, 0.0};
  RemasterStrategy strategy(weights, 2);
  AccessStatistics stats(StatsOptions(2), {1});
  RemasterDecisionInput input;
  input.write_partitions = {0};
  input.current_masters = {1};
  // Client has seen more than any site has applied: both sites lag it.
  input.client_session = VersionVector(std::vector<uint64_t>{10, 10});
  input.site_versions = {VersionVector(std::vector<uint64_t>{4, 4}),
                         VersionVector(std::vector<uint64_t>{9, 9})};
  std::vector<SiteScore> scores;
  strategy.ScoreSites(input, stats, &scores);
  EXPECT_GT(scores[0].f_refresh_delay, scores[1].f_refresh_delay);
}

TEST(StrategyTest, TieBreakPrefersFewestTransfers) {
  StrategyWeights weights{0.0, 0.0, 0.0, 0.0};  // all features off
  RemasterStrategy strategy(weights, 3);
  AccessStatistics stats(StatsOptions(3), {1, 1, 2});
  RemasterDecisionInput input;
  input.write_partitions = {0, 1, 2};
  input.current_masters = {1, 1, 2};
  input.site_versions = {VersionVector(3), VersionVector(3), VersionVector(3)};
  // Site 1 already masters two of the three partitions.
  EXPECT_EQ(strategy.ChooseSite(input, stats), 1u);
}

// ---- SiteSelector end-to-end ------------------------------------------------

class SelectorFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    partitioner_ = std::make_unique<RangePartitioner>(10, 10);
    logs_ = std::make_unique<log::LogManager>(3);
    for (uint32_t i = 0; i < 3; ++i) {
      site::SiteOptions options;
      options.site_id = i;
      options.num_sites = 3;
      options.read_op_cost = options.write_op_cost = options.apply_op_cost =
          std::chrono::microseconds(0);
      options.freshness_timeout = std::chrono::milliseconds(2000);
      sites_.push_back(std::make_unique<site::SiteManager>(
          options, partitioner_.get(), logs_.get(), nullptr));
      ASSERT_TRUE(sites_.back()->CreateTable(kTable).ok());
    }
    SelectorOptions options;
    options.num_sites = 3;
    options.sample_rate = 1.0;
    options.weights = StrategyWeights{1.0, 0.5, 1.0, 1.0};
    selector_ = std::make_unique<SiteSelector>(
        options, std::vector<site::SiteManager*>{sites_[0].get(),
                                                 sites_[1].get(),
                                                 sites_[2].get()},
        partitioner_.get(), nullptr);
    // Round-robin initial placement.
    std::vector<SiteId> placement(10);
    for (PartitionId p = 0; p < 10; ++p) placement[p] = p % 3;
    selector_->InstallPlacement(placement);
    for (auto& s : sites_) s->Start();
  }

  void TearDown() override {
    logs_->CloseAll();
    for (auto& s : sites_) s->Stop();
  }

  std::unique_ptr<RangePartitioner> partitioner_;
  std::unique_ptr<log::LogManager> logs_;
  std::vector<std::unique_ptr<site::SiteManager>> sites_;
  std::unique_ptr<SiteSelector> selector_;
};

TEST_F(SelectorFixture, SingleSitedWriteSetRoutesWithoutRemastering) {
  RouteResult route;
  ASSERT_TRUE(selector_
                  ->RouteWrite(1, {RecordKey{kTable, 5}, RecordKey{kTable, 7}},
                               VersionVector(3), &route)
                  .ok());
  EXPECT_EQ(route.site, 0u);  // partition 0 -> site 0
  EXPECT_FALSE(route.remastered);
  EXPECT_EQ(selector_->counters().remastered_txns.load(), 0u);
}

TEST_F(SelectorFixture, MultiMasterWriteSetTriggersRemastering) {
  RouteResult route;
  // Partitions 0 (site 0) and 1 (site 1).
  ASSERT_TRUE(selector_
                  ->RouteWrite(1, {RecordKey{kTable, 5}, RecordKey{kTable, 15}},
                               VersionVector(3), &route)
                  .ok());
  EXPECT_TRUE(route.remastered);
  EXPECT_EQ(route.partitions_moved, 1u);
  // Both partitions now master at the chosen site, at both layers.
  EXPECT_EQ(selector_->partition_map().MasterOfLocked(0), route.site);
  EXPECT_EQ(selector_->partition_map().MasterOfLocked(1), route.site);
  EXPECT_TRUE(sites_[route.site]->IsMasterOf(0));
  EXPECT_TRUE(sites_[route.site]->IsMasterOf(1));

  // The returned minimum version lets the transaction begin at the
  // destination.
  site::TxnOptions txn_options;
  txn_options.write_keys = {RecordKey{kTable, 5}, RecordKey{kTable, 15}};
  txn_options.min_begin_version = route.min_begin_version;
  site::Transaction txn;
  ASSERT_TRUE(sites_[route.site]->BeginTransaction(txn_options, &txn).ok());
  sites_[route.site]->Abort(&txn);
}

TEST_F(SelectorFixture, SecondTransactionAmortizesRemastering) {
  RouteResult first, second;
  std::vector<RecordKey> keys = {RecordKey{kTable, 5}, RecordKey{kTable, 15}};
  ASSERT_TRUE(selector_->RouteWrite(1, keys, VersionVector(3), &first).ok());
  ASSERT_TRUE(selector_->RouteWrite(2, keys, VersionVector(3), &second).ok());
  EXPECT_TRUE(first.remastered);
  EXPECT_FALSE(second.remastered);
  EXPECT_EQ(second.site, first.site);
}

TEST_F(SelectorFixture, ConcurrentConflictingRoutesSerialize) {
  // Many threads route overlapping multi-partition write sets; exactly-one
  // master per partition must hold throughout, and every route must land
  // where all its partitions master.
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 20; ++i) {
        const uint64_t a = (t + i) % 10, b = (t + i + 1) % 10;
        RouteResult route;
        Status s = selector_->RouteWrite(
            t + 1,
            {RecordKey{kTable, a * 10 + 1}, RecordKey{kTable, b * 10 + 1}},
            VersionVector(3), &route);
        if (!s.ok()) {
          failures.fetch_add(1);
          continue;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  // Invariant: each partition has exactly one mastering site, equal to the
  // selector's map.
  for (PartitionId p = 0; p < 10; ++p) {
    const SiteId owner = selector_->partition_map().MasterOfLocked(p);
    int master_count = 0;
    for (SiteId s = 0; s < 3; ++s) {
      if (sites_[s]->IsMasterOf(p)) {
        ++master_count;
        EXPECT_EQ(s, owner);
      }
    }
    EXPECT_EQ(master_count, 1);
  }
}

TEST_F(SelectorFixture, ReadRoutingHonoursSessionFreshness) {
  // Commit at site 0; a client session pinned to that commit must not be
  // routed to a site that has not applied it... unless all are fresh,
  // which replication soon makes true. Either way, beginning at the routed
  // site with the session version succeeds.
  site::TxnOptions w;
  w.write_keys = {RecordKey{kTable, 1}};
  site::Transaction txn;
  ASSERT_TRUE(sites_[0]->BeginTransaction(w, &txn).ok());
  ASSERT_TRUE(txn.Put(RecordKey{kTable, 1}, "x").ok());
  VersionVector session;
  ASSERT_TRUE(sites_[0]->Commit(&txn, &session).ok());

  for (int i = 0; i < 10; ++i) {
    SiteId site = kInvalidSite;
    ASSERT_TRUE(selector_->RouteRead(1, session, &site).ok());
    ASSERT_LT(site, 3u);
    site::TxnOptions r;
    r.read_only = true;
    r.min_begin_version = session;
    site::Transaction reader;
    ASSERT_TRUE(sites_[site]->BeginTransaction(r, &reader).ok());
    EXPECT_TRUE(reader.begin_version().DominatesOrEquals(session));
    VersionVector ignored;
    ASSERT_TRUE(sites_[site]->Commit(&reader, &ignored).ok());
  }
}

TEST_F(SelectorFixture, ReadRoutingSpreadsLoad) {
  // With an empty session every site qualifies; the random choice should
  // hit more than one site over many routes.
  std::set<SiteId> seen;
  for (int i = 0; i < 60; ++i) {
    SiteId site = kInvalidSite;
    ASSERT_TRUE(selector_->RouteRead(1, VersionVector(), &site).ok());
    seen.insert(site);
  }
  EXPECT_GE(seen.size(), 2u);
}

TEST_F(SelectorFixture, EmptyWriteSetRejected) {
  RouteResult route;
  EXPECT_TRUE(selector_->RouteWrite(1, {}, VersionVector(3), &route)
                  .IsInvalidArgument());
}

TEST_F(SelectorFixture, CountersTrackRouting) {
  RouteResult route;
  ASSERT_TRUE(selector_
                  ->RouteWrite(1, {RecordKey{kTable, 5}}, VersionVector(3),
                               &route)
                  .ok());
  ASSERT_TRUE(selector_
                  ->RouteWrite(1, {RecordKey{kTable, 5}, RecordKey{kTable, 15}},
                               VersionVector(3), &route)
                  .ok());
  EXPECT_EQ(selector_->counters().write_routes.load(), 2u);
  EXPECT_EQ(selector_->counters().remastered_txns.load(), 1u);
  EXPECT_NEAR(selector_->counters().RemasterFraction(), 0.5, 1e-9);
}

}  // namespace
}  // namespace dynamast::selector
