// Tests for SiteManager: transaction lifecycle, version-vector commit
// timestamps, mastership enforcement, release/grant, the update
// application rule (Eq. 1, including the Figure 2 scenario), session
// freshness waits, and log-based recovery.

#include "site/site_manager.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "common/latency_recorder.h"
#include "common/partitioner.h"
#include "log/durable_log.h"

namespace dynamast::site {
namespace {

constexpr TableId kTable = 0;

// A small fixture: m sites over a 10-partition range layout (10 keys per
// partition), zero service time, no network delays.
class SiteFixture : public ::testing::Test {
 protected:
  void SetUp() override { Init(3); }

  void Init(uint32_t num_sites) {
    partitioner_ = std::make_unique<RangePartitioner>(10, 10);
    logs_ = std::make_unique<log::LogManager>(num_sites);
    sites_.clear();
    for (uint32_t i = 0; i < num_sites; ++i) {
      SiteOptions options;
      options.site_id = i;
      options.num_sites = num_sites;
      options.read_op_cost = options.write_op_cost = options.apply_op_cost =
          std::chrono::microseconds(0);
      options.lock_timeout = std::chrono::milliseconds(200);
      options.freshness_timeout = std::chrono::milliseconds(500);
      sites_.push_back(std::make_unique<SiteManager>(
          options, partitioner_.get(), logs_.get(), nullptr));
      EXPECT_TRUE(sites_.back()->CreateTable(kTable).ok());
    }
    // Site 0 masters everything by default.
    for (PartitionId p = 0; p < 10; ++p) sites_[0]->SetMasterOf(p, true);
  }

  void StartAll() {
    for (auto& s : sites_) s->Start();
  }

  void TearDown() override {
    logs_->CloseAll();
    for (auto& s : sites_) s->Stop();
  }

  // Runs a single-key update transaction at `site`; returns commit tvv.
  VersionVector WriteKey(SiteId site, uint64_t key, const std::string& value) {
    TxnOptions options;
    options.write_keys = {RecordKey{kTable, key}};
    Transaction txn;
    EXPECT_TRUE(sites_[site]->BeginTransaction(options, &txn).ok());
    EXPECT_TRUE(txn.Put(RecordKey{kTable, key}, value).ok());
    VersionVector tvv;
    EXPECT_TRUE(sites_[site]->Commit(&txn, &tvv).ok());
    return tvv;
  }

  // Waits (bounded) until `site`'s svv dominates `target`.
  bool WaitFor(SiteId site, const VersionVector& target) {
    return sites_[site]->WaitForVersion(target).ok();
  }

  std::unique_ptr<RangePartitioner> partitioner_;
  std::unique_ptr<log::LogManager> logs_;
  std::vector<std::unique_ptr<SiteManager>> sites_;
};

// Regression for deferred metric observation: install (version-chain /
// prune) and refresh metrics are accumulated inside the state_mu_ critical
// section but observed after it releases, and deferral must neither lose
// nor double-count observations — every installed version yields exactly
// one chain-length sample, every applied refresh record exactly one
// refresh-delay sample.
TEST(SiteMetricsTest, DeferredInstallAndRefreshMetricsMatchWorkDone) {
  constexpr uint32_t kSites = 2;
  constexpr uint64_t kKeyA = 1, kKeyB = 2;
  constexpr int kCommits = 6;  // > max_versions_per_record (4): prunes happen

  // Pin the shared metrics epoch now: the first NowMicros() call in a
  // process returns 0, and a commit stamped 0 reads as "no append
  // timestamp" (its refresh-delay sample is skipped by design).
  metrics::NowMicros();
  std::this_thread::sleep_for(std::chrono::microseconds(10));

  metrics::Registry registry;
  RangePartitioner partitioner(10, 10);
  log::LogManager logs(kSites);
  std::vector<std::unique_ptr<SiteManager>> sites;
  for (uint32_t i = 0; i < kSites; ++i) {
    SiteOptions options;
    options.site_id = i;
    options.num_sites = kSites;
    options.read_op_cost = options.write_op_cost = options.apply_op_cost =
        std::chrono::microseconds(0);
    sites.push_back(std::make_unique<SiteManager>(options, &partitioner,
                                                  &logs, nullptr, nullptr,
                                                  &registry));
    ASSERT_TRUE(sites.back()->CreateTable(kTable).ok());
  }
  for (PartitionId p = 0; p < 10; ++p) sites[0]->SetMasterOf(p, true);
  sites[1]->Start();

  for (int i = 0; i < kCommits; ++i) {
    TxnOptions options;
    options.write_keys = {RecordKey{kTable, kKeyA}, RecordKey{kTable, kKeyB}};
    Transaction txn;
    ASSERT_TRUE(sites[0]->BeginTransaction(options, &txn).ok());
    ASSERT_TRUE(txn.Put(RecordKey{kTable, kKeyA}, "a" + std::to_string(i)).ok());
    ASSERT_TRUE(txn.Put(RecordKey{kTable, kKeyB}, "b" + std::to_string(i)).ok());
    VersionVector tvv;
    ASSERT_TRUE(sites[0]->Commit(&txn, &tvv).ok());
  }

  // One chain-length observation per installed version at the origin.
  metrics::Histogram* chain0 =
      registry.GetHistogram("storage_version_chain_len", {{"site", "0"}});
  EXPECT_EQ(chain0->recorder().count(), 2u * kCommits);
  // Each key holds 4 versions and saw kCommits installs: the overflow was
  // pruned, and every prune is counted.
  EXPECT_EQ(registry.CounterValue("storage_pruned_versions_total",
                                  {{"site", "0"}}),
            2u * (kCommits - 4));

  // Drain replication to site 1, then check the applier-side metrics.
  // Metric emission is deliberately after svv publication, so waiters can
  // observe the new version a beat before the last record's samples land:
  // poll briefly for the final counts.
  ASSERT_TRUE(sites[1]->WaitForVersion(sites[0]->CurrentVersion()).ok());
  metrics::Histogram* delay1 =
      registry.GetHistogram("site_refresh_delay_us", {{"site", "1"}});
  metrics::Histogram* chain1 =
      registry.GetHistogram("storage_version_chain_len", {{"site", "1"}});
  for (int i = 0; i < 200 && delay1->recorder().count() < kCommits; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(registry.CounterValue("site_refresh_applied_total",
                                  {{"site", "1"}}),
            static_cast<uint64_t>(kCommits));
  EXPECT_EQ(delay1->recorder().count(), static_cast<uint64_t>(kCommits));
  EXPECT_EQ(chain1->recorder().count(), 2u * kCommits);

  logs.CloseAll();
  for (auto& s : sites) s->Stop();
}

TEST_F(SiteFixture, CommitBumpsOwnSvvIndex) {
  const VersionVector tvv = WriteKey(0, 1, "v1");
  EXPECT_EQ(tvv[0], 1u);
  EXPECT_EQ(tvv[1], 0u);
  EXPECT_EQ(sites_[0]->CurrentVersion()[0], 1u);
  EXPECT_EQ(sites_[0]->counters().local_commits.load(), 1u);
}

TEST_F(SiteFixture, CommitTimestampEmbedsBeginSnapshot) {
  WriteKey(0, 1, "a");
  WriteKey(0, 2, "b");
  const VersionVector tvv = WriteKey(0, 3, "c");
  EXPECT_EQ(tvv[0], 3u);  // third local commit
}

TEST_F(SiteFixture, SnapshotReadSeesOnlyCommittedPrefix) {
  WriteKey(0, 1, "v1");
  WriteKey(0, 1, "v2");

  TxnOptions read_options;
  read_options.read_only = true;
  Transaction reader;
  ASSERT_TRUE(sites_[0]->BeginTransaction(read_options, &reader).ok());
  std::string value;
  ASSERT_TRUE(reader.Get(RecordKey{kTable, 1}, &value).ok());
  EXPECT_EQ(value, "v2");

  // A write committed after the reader began is invisible to it.
  WriteKey(0, 1, "v3");
  ASSERT_TRUE(reader.Get(RecordKey{kTable, 1}, &value).ok());
  EXPECT_EQ(value, "v2");
  VersionVector ignored;
  ASSERT_TRUE(sites_[0]->Commit(&reader, &ignored).ok());
}

TEST_F(SiteFixture, ReadYourOwnStagedWrites) {
  TxnOptions options;
  options.write_keys = {RecordKey{kTable, 4}};
  Transaction txn;
  ASSERT_TRUE(sites_[0]->BeginTransaction(options, &txn).ok());
  ASSERT_TRUE(txn.Put(RecordKey{kTable, 4}, "mine").ok());
  std::string value;
  ASSERT_TRUE(txn.Get(RecordKey{kTable, 4}, &value).ok());
  EXPECT_EQ(value, "mine");
  sites_[0]->Abort(&txn);
  // Aborted writes never surface.
  EXPECT_TRUE(sites_[0]->engine().ReadLatest(RecordKey{kTable, 4}, &value)
                  .IsNotFound());
}

TEST_F(SiteFixture, WriteToUndeclaredKeyRejected) {
  TxnOptions options;
  options.write_keys = {RecordKey{kTable, 1}};
  Transaction txn;
  ASSERT_TRUE(sites_[0]->BeginTransaction(options, &txn).ok());
  EXPECT_TRUE(txn.Put(RecordKey{kTable, 2}, "x").IsInvalidArgument());
  sites_[0]->Abort(&txn);
}

TEST_F(SiteFixture, InsertPathLocksDynamically) {
  TxnOptions options;
  options.write_keys = {RecordKey{kTable, 1}};
  Transaction txn;
  ASSERT_TRUE(sites_[0]->BeginTransaction(options, &txn).ok());
  // Key 5 is in partition 0 (mastered at site 0): dynamic insert allowed.
  ASSERT_TRUE(txn.Insert(RecordKey{kTable, 5}, "fresh").ok());
  VersionVector tvv;
  ASSERT_TRUE(sites_[0]->Commit(&txn, &tvv).ok());
  std::string value;
  ASSERT_TRUE(sites_[0]->engine().ReadLatest(RecordKey{kTable, 5}, &value).ok());
  EXPECT_EQ(value, "fresh");
}

TEST_F(SiteFixture, NotMasterRejected) {
  TxnOptions options;
  options.write_keys = {RecordKey{kTable, 1}};
  Transaction txn;
  EXPECT_TRUE(sites_[1]->BeginTransaction(options, &txn).IsNotMaster());
  EXPECT_EQ(sites_[1]->counters().aborts.load(), 1u);
}

TEST_F(SiteFixture, InsertIntoUnmasteredPartitionRejected) {
  sites_[0]->SetMasterOf(9, false);
  sites_[1]->SetMasterOf(9, true);
  TxnOptions options;
  options.write_keys = {RecordKey{kTable, 1}};  // partition 0 at site 0
  Transaction txn;
  ASSERT_TRUE(sites_[0]->BeginTransaction(options, &txn).ok());
  EXPECT_TRUE(txn.Insert(RecordKey{kTable, 95}, "x").IsNotMaster());
  sites_[0]->Abort(&txn);
}

TEST_F(SiteFixture, WriteWriteConflictBlocksNotAborts) {
  TxnOptions options;
  options.write_keys = {RecordKey{kTable, 1}};
  Transaction first;
  ASSERT_TRUE(sites_[0]->BeginTransaction(options, &first).ok());
  ASSERT_TRUE(first.Put(RecordKey{kTable, 1}, "first").ok());

  std::atomic<bool> second_committed{false};
  std::thread contender([&] {
    Transaction second;
    Status s = sites_[0]->BeginTransaction(options, &second);
    if (!s.ok()) return;
    if (!second.Put(RecordKey{kTable, 1}, "second").ok()) return;
    VersionVector tvv;
    second_committed.store(sites_[0]->Commit(&second, &tvv).ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(second_committed.load());  // blocked on the write lock
  VersionVector tvv;
  ASSERT_TRUE(sites_[0]->Commit(&first, &tvv).ok());
  contender.join();
  EXPECT_TRUE(second_committed.load());
  std::string value;
  ASSERT_TRUE(sites_[0]->engine().ReadLatest(RecordKey{kTable, 1}, &value).ok());
  EXPECT_EQ(value, "second");
}

TEST_F(SiteFixture, RefreshPropagationReachesAllSites) {
  StartAll();
  const VersionVector tvv = WriteKey(0, 1, "v1");
  ASSERT_TRUE(WaitFor(1, tvv));
  ASSERT_TRUE(WaitFor(2, tvv));
  std::string value;
  VersionVector snapshot = sites_[1]->CurrentVersion();
  ASSERT_TRUE(sites_[1]->engine().Read(RecordKey{kTable, 1}, snapshot, &value)
                  .ok());
  EXPECT_EQ(value, "v1");
  EXPECT_GE(sites_[1]->counters().refresh_applied.load(), 1u);
}

// The Figure 2 scenario: T1 commits at S1; T2 (which observed T1 via
// refresh) commits at S2; S3 must not apply R(T2) before R(T1).
TEST_F(SiteFixture, UpdateApplicationRuleOrdersDependentRefreshes) {
  // Master partition 0 at site 0 and partition 1 at site 1.
  sites_[0]->SetMasterOf(1, false);
  sites_[1]->SetMasterOf(1, true);
  StartAll();

  // T1 at site 0 writes key 1.
  const VersionVector t1 = WriteKey(0, 1, "t1");
  // Wait until site 1 applied R(T1), then run T2 at site 1, which reads
  // key 1 (so T2 depends on T1) and writes key 11.
  ASSERT_TRUE(WaitFor(1, t1));
  TxnOptions options;
  options.write_keys = {RecordKey{kTable, 11}};
  Transaction t2;
  ASSERT_TRUE(sites_[1]->BeginTransaction(options, &t2).ok());
  std::string value;
  ASSERT_TRUE(t2.Get(RecordKey{kTable, 1}, &value).ok());
  EXPECT_EQ(value, "t1");
  ASSERT_TRUE(t2.Put(RecordKey{kTable, 11}, "t2").ok());
  VersionVector t2_tvv;
  ASSERT_TRUE(sites_[1]->Commit(&t2, &t2_tvv).ok());
  // T2's commit timestamp records its dependency on T1 (tvv[0] >= t1[0]).
  EXPECT_GE(t2_tvv[0], t1[0]);

  // Site 2 eventually applies both; when T2's write is visible, T1's
  // write must be visible too (Eq. 1 forbids the inversion).
  ASSERT_TRUE(WaitFor(2, t2_tvv));
  VersionVector snapshot = sites_[2]->CurrentVersion();
  ASSERT_TRUE(sites_[2]->engine().Read(RecordKey{kTable, 11}, snapshot,
                                       &value).ok());
  EXPECT_EQ(value, "t2");
  ASSERT_TRUE(sites_[2]->engine().Read(RecordKey{kTable, 1}, snapshot,
                                       &value).ok());
  EXPECT_EQ(value, "t1");
}

TEST_F(SiteFixture, ReleaseGrantTransfersMastership) {
  StartAll();
  ASSERT_TRUE(sites_[0]->IsMasterOf(3));
  VersionVector release_vv;
  ASSERT_TRUE(sites_[0]->Release({3}, 1, &release_vv).ok());
  EXPECT_FALSE(sites_[0]->IsMasterOf(3));
  EXPECT_GE(release_vv[0], 1u);  // release marker occupies a commit slot

  VersionVector grant_vv;
  ASSERT_TRUE(sites_[1]->Grant({3}, 0, release_vv, &grant_vv).ok());
  EXPECT_TRUE(sites_[1]->IsMasterOf(3));
  // Grant waited for everything up to the release point.
  EXPECT_TRUE(grant_vv.DominatesOrEquals(release_vv));
  EXPECT_EQ(sites_[0]->counters().releases.load(), 1u);
  EXPECT_EQ(sites_[1]->counters().grants.load(), 1u);

  // The new master can now execute writes on the partition.
  TxnOptions options;
  options.write_keys = {RecordKey{kTable, 30}};
  options.min_begin_version = grant_vv;
  Transaction txn;
  ASSERT_TRUE(sites_[1]->BeginTransaction(options, &txn).ok());
  ASSERT_TRUE(txn.Put(RecordKey{kTable, 30}, "after-grant").ok());
  VersionVector tvv;
  ASSERT_TRUE(sites_[1]->Commit(&txn, &tvv).ok());
}

TEST_F(SiteFixture, ReleaseOfUnmasteredPartitionFails) {
  VersionVector vv;
  EXPECT_TRUE(sites_[1]->Release({3}, 0, &vv).IsNotMaster());
}

TEST_F(SiteFixture, ReleaseDrainsActiveWriters) {
  StartAll();
  TxnOptions options;
  options.write_keys = {RecordKey{kTable, 1}};
  Transaction writer;
  ASSERT_TRUE(sites_[0]->BeginTransaction(options, &writer).ok());
  ASSERT_TRUE(writer.Put(RecordKey{kTable, 1}, "in-flight").ok());

  std::atomic<bool> released{false};
  std::thread releaser([&] {
    VersionVector vv;
    Status s = sites_[0]->Release({0}, 1, &vv);
    released.store(s.ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  // Release must wait for the in-flight writer.
  EXPECT_FALSE(released.load());
  VersionVector tvv;
  ASSERT_TRUE(sites_[0]->Commit(&writer, &tvv).ok());
  releaser.join();
  EXPECT_TRUE(released.load());
  // The released partition rejects new writers at the old master.
  Transaction late;
  EXPECT_TRUE(sites_[0]->BeginTransaction(options, &late).IsNotMaster());
}

TEST_F(SiteFixture, ReleaseBlocksNewWritersImmediately) {
  StartAll();
  // While release is draining partition 0, concurrent writes to *other*
  // partitions proceed — coordination happens outside transaction
  // boundaries (Section III-B).
  TxnOptions p0_options;
  p0_options.write_keys = {RecordKey{kTable, 1}};
  Transaction writer;
  ASSERT_TRUE(sites_[0]->BeginTransaction(p0_options, &writer).ok());

  std::thread releaser([&] {
    VersionVector vv;
    (void)sites_[0]->Release({0}, 1, &vv);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  // A write to partition 5 is admitted and commits while the release of
  // partition 0 is still draining.
  const VersionVector other = WriteKey(0, 51, "concurrent");
  EXPECT_GE(other[0], 1u);

  VersionVector tvv;
  ASSERT_TRUE(sites_[0]->Commit(&writer, &tvv).ok());
  releaser.join();
}

TEST_F(SiteFixture, SessionFreshnessWaitBlocksUntilApplied) {
  StartAll();
  const VersionVector t1 = WriteKey(0, 1, "x");
  // A client with session t1 beginning at site 2 blocks until site 2 has
  // applied R(T1), then sees the write.
  TxnOptions options;
  options.read_only = true;
  options.min_begin_version = t1;
  Transaction reader;
  ASSERT_TRUE(sites_[2]->BeginTransaction(options, &reader).ok());
  EXPECT_TRUE(reader.begin_version().DominatesOrEquals(t1));
  std::string value;
  ASSERT_TRUE(reader.Get(RecordKey{kTable, 1}, &value).ok());
  EXPECT_EQ(value, "x");
  VersionVector ignored;
  ASSERT_TRUE(sites_[2]->Commit(&reader, &ignored).ok());
}

TEST_F(SiteFixture, FreshnessWaitTimesOutWithoutAppliers) {
  // Appliers never started: site 1 can never reach site 0's version.
  const VersionVector t1 = WriteKey(0, 1, "x");
  TxnOptions options;
  options.read_only = true;
  options.min_begin_version = t1;
  Transaction reader;
  EXPECT_TRUE(sites_[1]->BeginTransaction(options, &reader).IsTimedOut());
}

TEST_F(SiteFixture, ReadOnlyCommitDoesNotBumpSvv) {
  TxnOptions options;
  options.read_only = true;
  Transaction reader;
  ASSERT_TRUE(sites_[0]->BeginTransaction(options, &reader).ok());
  VersionVector out;
  ASSERT_TRUE(sites_[0]->Commit(&reader, &out).ok());
  EXPECT_EQ(sites_[0]->CurrentVersion()[0], 0u);
}

TEST_F(SiteFixture, EmptyWriteSetCommitIsNoop) {
  TxnOptions options;
  options.write_keys = {RecordKey{kTable, 1}};
  Transaction txn;
  ASSERT_TRUE(sites_[0]->BeginTransaction(options, &txn).ok());
  VersionVector out;
  ASSERT_TRUE(sites_[0]->Commit(&txn, &out).ok());
  EXPECT_EQ(sites_[0]->CurrentVersion()[0], 0u);
  // Locks were released.
  EXPECT_EQ(sites_[0]->engine().lock_manager().NumHeldLocks(), 0u);
}

TEST_F(SiteFixture, RecoveryReplaysUpdatesAndMastership) {
  StartAll();
  // Produce some history: writes at site 0, a remastering 0 -> 1, then a
  // write at site 1.
  WriteKey(0, 1, "a");
  WriteKey(0, 12, "b");
  VersionVector release_vv, grant_vv;
  ASSERT_TRUE(sites_[0]->Release({1}, 1, &release_vv).ok());
  ASSERT_TRUE(sites_[1]->Grant({1}, 0, release_vv, &grant_vv).ok());
  TxnOptions options;
  options.write_keys = {RecordKey{kTable, 12}};
  options.min_begin_version = grant_vv;
  Transaction txn;
  ASSERT_TRUE(sites_[1]->BeginTransaction(options, &txn).ok());
  ASSERT_TRUE(txn.Put(RecordKey{kTable, 12}, "b2").ok());
  VersionVector tvv;
  ASSERT_TRUE(sites_[1]->Commit(&txn, &tvv).ok());

  // A fresh site 2 replica recovers from the logs alone.
  SiteOptions fresh_options;
  fresh_options.site_id = 2;
  fresh_options.num_sites = 3;
  SiteManager fresh(fresh_options, partitioner_.get(), logs_.get(), nullptr);
  ASSERT_TRUE(fresh.CreateTable(kTable).ok());
  std::unordered_map<PartitionId, SiteId> initial;
  for (PartitionId p = 0; p < 10; ++p) initial[p] = 0;
  std::unordered_map<PartitionId, SiteId> recovered;
  ASSERT_TRUE(fresh.RecoverFromLogs(initial, &recovered).ok());

  // Data recovered.
  std::string value;
  ASSERT_TRUE(fresh.engine().ReadLatest(RecordKey{kTable, 1}, &value).ok());
  EXPECT_EQ(value, "a");
  ASSERT_TRUE(fresh.engine().ReadLatest(RecordKey{kTable, 12}, &value).ok());
  EXPECT_EQ(value, "b2");
  // Mastership reconstructed from the release/grant markers.
  EXPECT_EQ(recovered[1], 1u);
  EXPECT_EQ(recovered[0], 0u);
  // The recovered svv matches the history it replayed.
  EXPECT_TRUE(fresh.CurrentVersion().DominatesOrEquals(tvv));
}

TEST_F(SiteFixture, ChargeOpsZeroIsFree) {
  Stopwatch watch;
  sites_[0]->ChargeOps(1000, 1000);
  EXPECT_LT(watch.ElapsedMicros(), 100000u);
}

// Regression for the serialize-before-install ordering in Commit: the
// install loop consumes the write values by move, so the propagation
// payload must be captured first. If serialization ever slides back
// after the install loop, the logged record carries empty values and the
// deserialize check below fails.
TEST_F(SiteFixture, CommitLogsFullValuesDespiteMoveIntoVersionStore) {
  const std::string big(512, 'x');
  const VersionVector tvv = WriteKey(0, 1, big);
  log::LogCursor cursor(logs_->TopicFor(0));
  std::string raw;
  ASSERT_TRUE(cursor.TryNext(&raw).ok());
  log::LogRecord record;
  ASSERT_TRUE(log::LogRecord::Deserialize(raw, &record).ok());
  ASSERT_EQ(record.writes.size(), 1u);
  EXPECT_EQ(record.writes[0].value, big);
  EXPECT_EQ(record.tvv, tvv);
  EXPECT_GT(record.append_ts_us, 0u);
  // The moved-from value landed intact in the local version store too.
  std::string value;
  ASSERT_TRUE(sites_[0]->engine().Read(RecordKey{kTable, 1}, tvv, &value).ok());
  EXPECT_EQ(value, big);
}

// Regression for ApplyRefreshRecord taking the record by value: the
// applier moves each write value into the version store, which must not
// disturb what remote readers observe (an empty-install bug would leave
// "" here).
TEST_F(SiteFixture, RefreshInstallsFullValuesAfterApplierMove) {
  StartAll();
  const std::string big(512, 'y');
  const VersionVector tvv = WriteKey(0, 2, big);
  ASSERT_TRUE(WaitFor(1, tvv));
  std::string value;
  ASSERT_TRUE(sites_[1]
                  ->engine()
                  .Read(RecordKey{kTable, 2}, sites_[1]->CurrentVersion(),
                        &value)
                  .ok());
  EXPECT_EQ(value, big);
}

// FreshnessProbe must agree with the CurrentVersion()-based predicate it
// replaced in read routing: same domination verdict, same element total,
// without handing out a vector copy.
TEST_F(SiteFixture, FreshnessProbeMatchesCurrentVersionSemantics) {
  WriteKey(0, 1, "a");
  WriteKey(0, 2, "b");
  const VersionVector svv = sites_[0]->CurrentVersion();
  uint64_t total = 0;
  EXPECT_TRUE(sites_[0]->FreshnessProbe(svv, &total));
  EXPECT_EQ(total, svv.Total());
  VersionVector ahead = svv;
  ahead[1] = ahead[1] + 1;
  total = 0;
  EXPECT_FALSE(sites_[0]->FreshnessProbe(ahead, &total));
  EXPECT_EQ(total, svv.Total());
  // The total out-param is optional.
  EXPECT_TRUE(sites_[0]->FreshnessProbe(VersionVector(3), nullptr));
}

}  // namespace
}  // namespace dynamast::site
