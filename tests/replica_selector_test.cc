// Tests for the distributed site-selector extension (paper Appendix I):
// replica selectors route single-sited write sets locally, fall back to
// the master selector for remastering, and stale caches are caught by the
// data sites' mastership checks.

#include "selector/replica_selector.h"

#include <gtest/gtest.h>

#include <memory>

#include "common/partitioner.h"
#include "log/durable_log.h"

namespace dynamast::selector {
namespace {

constexpr TableId kTable = 0;

class ReplicaSelectorFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    partitioner_ = std::make_unique<RangePartitioner>(10, 10);
    logs_ = std::make_unique<log::LogManager>(2);
    for (uint32_t i = 0; i < 2; ++i) {
      site::SiteOptions options;
      options.site_id = i;
      options.num_sites = 2;
      options.read_op_cost = options.write_op_cost = options.apply_op_cost =
          std::chrono::microseconds(0);
      sites_.push_back(std::make_unique<site::SiteManager>(
          options, partitioner_.get(), logs_.get(), nullptr));
      ASSERT_TRUE(sites_.back()->CreateTable(kTable).ok());
    }
    SelectorOptions options;
    options.num_sites = 2;
    master_ = std::make_unique<SiteSelector>(
        options,
        std::vector<site::SiteManager*>{sites_[0].get(), sites_[1].get()},
        partitioner_.get(), nullptr);
    // Partitions 0-4 at site 0, 5-9 at site 1.
    std::vector<SiteId> placement = {0, 0, 0, 0, 0, 1, 1, 1, 1, 1};
    master_->InstallPlacement(placement);
    for (auto& s : sites_) s->Start();
    replica_ = std::make_unique<ReplicaSiteSelector>(master_.get(),
                                                     partitioner_.get());
  }

  void TearDown() override {
    logs_->CloseAll();
    for (auto& s : sites_) s->Stop();
  }

  std::unique_ptr<RangePartitioner> partitioner_;
  std::unique_ptr<log::LogManager> logs_;
  std::vector<std::unique_ptr<site::SiteManager>> sites_;
  std::unique_ptr<SiteSelector> master_;
  std::unique_ptr<ReplicaSiteSelector> replica_;
};

TEST_F(ReplicaSelectorFixture, RoutesSingleSitedLocally) {
  RouteResult route;
  Status s = replica_->TryRouteWrite(
      1, {RecordKey{kTable, 5}, RecordKey{kTable, 15}}, VersionVector(2),
      &route);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(route.site, 0u);
  EXPECT_FALSE(route.remastered);
  EXPECT_EQ(replica_->local_routes(), 1u);
  EXPECT_EQ(replica_->fallbacks(), 0u);
  // The master selector was not involved.
  EXPECT_EQ(master_->counters().write_routes.load(), 0u);
}

TEST_F(ReplicaSelectorFixture, FallsBackForDistributedWriteSets) {
  RouteResult route;
  Status s = replica_->TryRouteWrite(
      1, {RecordKey{kTable, 5}, RecordKey{kTable, 55}}, VersionVector(2),
      &route);
  EXPECT_TRUE(s.IsUnavailable());
  EXPECT_EQ(replica_->fallbacks(), 1u);
  // The master handles it (and remasters).
  ASSERT_TRUE(master_
                  ->RouteWrite(1, {RecordKey{kTable, 5}, RecordKey{kTable, 55}},
                               VersionVector(2), &route)
                  .ok());
  EXPECT_TRUE(route.remastered);
}

TEST_F(ReplicaSelectorFixture, StaleCacheCaughtByMastershipCheck) {
  // Remaster partition 0 away via the master while the replica's cache
  // still says site 0.
  RouteResult route;
  ASSERT_TRUE(master_
                  ->RouteWrite(1, {RecordKey{kTable, 5}, RecordKey{kTable, 55}},
                               VersionVector(2), &route)
                  .ok());
  const SiteId new_owner = route.site;
  const SiteId stale_owner = 1 - new_owner;

  RouteResult stale_route;
  ASSERT_TRUE(replica_
                  ->TryRouteWrite(2, {RecordKey{kTable, 5}}, VersionVector(2),
                                  &stale_route)
                  .ok());
  if (stale_route.site == stale_owner) {
    // The stale route sends the transaction to the wrong site; the data
    // site rejects it (Appendix I: "the site manager must abort the
    // transaction if it no longer masters a data item").
    site::TxnOptions options;
    options.write_keys = {RecordKey{kTable, 5}};
    site::Transaction txn;
    EXPECT_TRUE(sites_[stale_route.site]
                    ->BeginTransaction(options, &txn)
                    .IsNotMaster());
  }
  // After a sync the replica routes to the new owner.
  replica_->Sync();
  RouteResult fresh_route;
  ASSERT_TRUE(replica_
                  ->TryRouteWrite(2, {RecordKey{kTable, 5}}, VersionVector(2),
                                  &fresh_route)
                  .ok());
  EXPECT_EQ(fresh_route.site, new_owner);
}

TEST_F(ReplicaSelectorFixture, ReadRoutingDelegates) {
  SiteId site = kInvalidSite;
  ASSERT_TRUE(replica_->RouteRead(1, VersionVector(), &site).ok());
  EXPECT_LT(site, 2u);
  EXPECT_EQ(master_->counters().read_routes.load(), 1u);
}

TEST_F(ReplicaSelectorFixture, SyncCountsTracked) {
  const uint64_t before = replica_->syncs();
  replica_->Sync();
  EXPECT_EQ(replica_->syncs(), before + 1);
}

TEST_F(ReplicaSelectorFixture, EmptyWriteSetRejected) {
  RouteResult route;
  EXPECT_TRUE(replica_->TryRouteWrite(1, {}, VersionVector(2), &route)
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace dynamast::selector
