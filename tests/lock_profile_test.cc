// Unit tests for the lock-contention profiler (common/lock_profile). The
// ProfiledMutex templates are always compiled, so these run in every
// configuration; what DYNAMAST_LOCK_PROFILE changes is only whether the
// production DebugMutex aliases route through them — the last test pins
// the zero-cost-when-off contract on the default build.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "common/debug_mutex.h"
#include "common/lock_profile.h"
#include "common/metrics.h"

namespace dynamast::lockprof {
namespace {

class LockProfileTest : public ::testing::Test {
 protected:
  void SetUp() override { SetRegistryForTest(&registry_); }
  void TearDown() override { SetRegistryForTest(nullptr); }

  uint64_t Acquires(const char* cls) {
    return registry_.CounterValue("lock_acquires_total",
                                  {{"lock_class", cls}});
  }
  uint64_t Contended(const char* cls) {
    return registry_.CounterValue("lock_contended_acquires_total",
                                  {{"lock_class", cls}});
  }
  const LatencyRecorder* WaitUs(const char* cls) {
    return registry_.HistogramRecorder("lock_wait_us",
                                       {{"lock_class", cls}});
  }
  const LatencyRecorder* HoldUs(const char* cls) {
    return registry_.HistogramRecorder("lock_hold_us",
                                       {{"lock_class", cls}});
  }

  metrics::Registry registry_;
};

TEST_F(LockProfileTest, UncontendedAcquiresCountWithoutWaitSamples) {
  ProfiledMutex<lockdebug::PlainMutex> mu("test.uncontended");
  for (int i = 0; i < 5; ++i) {
    mu.lock();
    mu.unlock();
  }
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();

  EXPECT_EQ(Acquires("test.uncontended"), 6u);
  EXPECT_EQ(Contended("test.uncontended"), 0u);
  const LatencyRecorder* wait = WaitUs("test.uncontended");
  ASSERT_NE(wait, nullptr);
  EXPECT_EQ(wait->count(), 0u);  // wait_us records contended waits only
  const LatencyRecorder* hold = HoldUs("test.uncontended");
  ASSERT_NE(hold, nullptr);
  EXPECT_EQ(hold->count(), 6u);
}

TEST_F(LockProfileTest, ContendedAcquireRecordsMeasuredWait) {
  ProfiledMutex<lockdebug::PlainMutex> mu("test.contended");
  mu.lock();
  std::thread blocked([&mu] {
    mu.lock();  // must block until the holder releases
    mu.unlock();
  });
  // Hold long enough that the blocked thread's wait lands well above the
  // histogram's microsecond floor.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  mu.unlock();
  blocked.join();

  EXPECT_EQ(Acquires("test.contended"), 2u);
  EXPECT_EQ(Contended("test.contended"), 1u);
  const LatencyRecorder* wait = WaitUs("test.contended");
  ASSERT_NE(wait, nullptr);
  ASSERT_EQ(wait->count(), 1u);
  EXPECT_GE(wait->MaxMicros(), 1000u);  // waited most of the 20ms hold
  const LatencyRecorder* hold = HoldUs("test.contended");
  ASSERT_NE(hold, nullptr);
  EXPECT_EQ(hold->count(), 2u);
  EXPECT_GE(hold->MaxMicros(), 1000u);
}

TEST_F(LockProfileTest, SharedMutexProfilesBothSides) {
  ProfiledSharedMutex<lockdebug::PlainSharedMutex> mu("test.shared");
  mu.lock_shared();
  mu.unlock_shared();
  ASSERT_TRUE(mu.try_lock_shared());
  mu.unlock_shared();
  mu.lock();
  mu.unlock();

  EXPECT_EQ(Acquires("test.shared"), 3u);
  EXPECT_EQ(Contended("test.shared"), 0u);
  // Hold segments are exclusive-only: the shared holds left no sample.
  const LatencyRecorder* hold = HoldUs("test.shared");
  ASSERT_NE(hold, nullptr);
  EXPECT_EQ(hold->count(), 1u);
}

TEST_F(LockProfileTest, SameClassNameSharesOneSeries) {
  ProfiledMutex<lockdebug::PlainMutex> a("test.pooled");
  ProfiledMutex<lockdebug::PlainMutex> b("test.pooled");
  a.lock();
  a.unlock();
  b.lock();
  b.unlock();
  EXPECT_EQ(Acquires("test.pooled"), 2u);
}

// The off-by-default contract: a default (non-DYNAMAST_LOCK_PROFILE)
// build must export no lock_* families from production DebugMutex use —
// the series exist only when the aliases route through the profiler.
TEST(LockProfileOffTest, DefaultBuildExportsNoLockFamilies) {
#if defined(DYNAMAST_LOCK_PROFILE) && DYNAMAST_LOCK_PROFILE
  GTEST_SKIP() << "profile build: DebugMutex exports lock_* by design";
#else
  {
    DebugMutex mu("site.state");
    MutexLock hold(mu);
  }
  EXPECT_EQ(
      metrics::Registry::Global().CounterValue(
          "lock_acquires_total", {{"lock_class", "site.state"}}),
      0u);
#endif
}

}  // namespace
}  // namespace dynamast::lockprof
