#include "engine/engine.h"

namespace engine {

void Engine::Execute() {
  Wide w = seed_;
  Append(static_cast<int>(w.vals.size()));
}

void Engine::Append(int v) {
  items_.push_back(v);
}

}  // namespace engine
