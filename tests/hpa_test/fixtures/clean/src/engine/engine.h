// Fixture: one hot-path root performing one container growth and one
// registered wide-type copy.
#ifndef FIXTURE_ENGINE_ENGINE_H_
#define FIXTURE_ENGINE_ENGINE_H_

#include <vector>

#include "common/annotations.h"

namespace engine {

struct Wide {
  std::vector<int> vals;
};

class Engine {
 public:
  DYNAMAST_HOT_PATH void Execute();

 private:
  void Append(int v);

  Wide seed_;
  std::vector<int> items_;
};

}  // namespace engine

#endif  // FIXTURE_ENGINE_ENGINE_H_
