// Fixture stand-in for the annotation macros (the lexical analyzer
// reads the tokens on declarations; the defines themselves are blanked
// as preprocessor lines).
#ifndef FIXTURE_COMMON_ANNOTATIONS_H_
#define FIXTURE_COMMON_ANNOTATIONS_H_

#define DYNAMAST_HOT_PATH

#endif  // FIXTURE_COMMON_ANNOTATIONS_H_
