#include "engine/engine.h"

namespace engine {

void Engine::Execute() {
  Wide w = seed_;
  Append(static_cast<int>(w.vals.size()));
  Format(1);
}

void Engine::Append(int v) {
  items_.push_back(v);
}

std::string Engine::Format(int v) {
  return std::to_string(v);
}

}  // namespace engine
