// Fixture: the hot path grew a formatting call absent from the
// committed baseline.
#ifndef FIXTURE_ENGINE_ENGINE_H_
#define FIXTURE_ENGINE_ENGINE_H_

#include <string>
#include <vector>

#include "common/annotations.h"

namespace engine {

struct Wide {
  std::vector<int> vals;
};

class Engine {
 public:
  DYNAMAST_HOT_PATH void Execute();

 private:
  void Append(int v);
  std::string Format(int v);

  Wide seed_;
  std::vector<int> items_;
};

}  // namespace engine

#endif  // FIXTURE_ENGINE_ENGINE_H_
