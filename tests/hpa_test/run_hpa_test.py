#!/usr/bin/env python3
"""End-to-end tests for scripts/hpa.py.

Runs the analyzer over the fixture trees in fixtures/ — a clean tree
whose profile matches its baseline, plus one seeded scenario per
analyzer rule (new hot-path cost edge, rotten allowlist, unannotated
structurally-wide copy) — and asserts exit codes and messages.  Also
asserts the profile dump is byte-identical across two runs (the
committed baseline must be reproducible).
"""

import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
HPA = os.path.join(REPO, "scripts", "hpa.py")
FIXTURES = os.path.join(HERE, "fixtures")

failures = []


def run_hpa(root, args=()):
    cmd = [sys.executable, HPA, "--root", os.path.join(FIXTURES, root)]
    cmd += list(args)
    proc = subprocess.run(cmd, capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


def check(name, root, args, want_exit, want_substrings=(), forbid=()):
    code, output = run_hpa(root, args)
    problems = []
    if code != want_exit:
        problems.append(f"exit code {code}, wanted {want_exit}")
    for want in want_substrings:
        if want not in output:
            problems.append(f"output lacks {want!r}")
    for bad in forbid:
        if bad in output:
            problems.append(f"output unexpectedly contains {bad!r}")
    if problems:
        failures.append(name)
        print(f"FAIL {name}: " + "; ".join(problems))
        print("  --- hpa output ---")
        for line in output.splitlines():
            print(f"  {line}")
    else:
        print(f"ok   {name}")


def check_deterministic(name, root):
    code1, out1 = run_hpa(root, ("--dump",))
    code2, out2 = run_hpa(root, ("--dump",))
    if code1 != 0 or code2 != 0:
        failures.append(name)
        print(f"FAIL {name}: dump exit codes {code1}/{code2}")
    elif out1 != out2:
        failures.append(name)
        print(f"FAIL {name}: two --dump runs differ")
    else:
        print(f"ok   {name}")


def main():
    check("clean tree matches its baseline", "clean", ("--check",),
          want_exit=0,
          want_substrings=("hpa: baseline OK (2 edges across 1 roots",),
          forbid=("new-edge", "allowlist:", "unannotated-copy"))

    check("root discovery sees the annotation", "clean", ("--list-roots",),
          want_exit=0,
          want_substrings=("engine::Engine::Execute",))

    check_deterministic("profile dump is deterministic", "clean")

    check("new edge fails naming root, chain and op", "new_edge_bad",
          ("--check",), want_exit=1,
          want_substrings=(
              "hpa: new-edge: engine::Engine::Execute: "
              "engine::Engine::Execute -> engine::Engine::Format -> "
              "fmt.to_string",
              "new allocation/copy/formatting cost on the "
              "`engine::Engine::Execute` hot path",
              "add an allowlist entry with a justification",
          ),
          forbid=("engine::Engine::Append",))

    check("update refuses to bake an unjustified new edge", "new_edge_bad",
          ("--update",), want_exit=1,
          want_substrings=(
              "hpa: new-edge: engine::Engine::Execute: "
              "engine::Engine::Execute -> engine::Engine::Format -> "
              "fmt.to_string",
              "refusing to bake an unjustified edge into the baseline",
          ))

    check("allowlist: unjustified + unknown root + stale", "bad_allowlist",
          ("--check",), want_exit=1,
          want_substrings=(
              "allowlist[0] (* / alloc.container.push_back) has no "
              "justification",
              "allowlist[1] (engine::Engine::Ghost / copy.assign.Wide) "
              "names root 'engine::Engine::Ghost' which is not a "
              "DYNAMAST_HOT_PATH root",
              "allowlist[2] (* / alloc.malloc) matches no current edge "
              "(stale entry",
          ))

    check("unregistered structurally-wide copy on a hot path",
          "unannotated_copy", ("--check",), want_exit=1,
          want_substrings=(
              "hpa: unannotated-copy: src/engine/engine.cc:6: "
              "engine::Engine::Execute copies `Wide` by value on a hot "
              "path",
              "field `vals` is `std::vector<int>`",
          ),
          forbid=("new-edge",))

    if failures:
        print(f"\n{len(failures)} hpa_test failure(s)", file=sys.stderr)
        return 1
    print("\nall hpa_test checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
