// Durable-log recovery across a crashed remastering: the old master
// logged its release marker, but the crash hit before the recipient's
// grant marker was written. Replay must still converge every recovering
// site on exactly one master — the release's named recipient — and the
// recovered cluster must accept writes there and audit clean.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/history.h"
#include "common/partitioner.h"
#include "core/cluster.h"
#include "log/durable_log.h"
#include "site/site_manager.h"
#include "tools/si_checker.h"

namespace dynamast {
namespace {

constexpr TableId kTable = 0;
constexpr uint64_t kKeys = 40;

std::string Num(uint64_t v) {
  return std::string(reinterpret_cast<const char*>(&v), sizeof(v));
}
uint64_t AsNum(const std::string& s) {
  uint64_t v = 0;
  if (s.size() >= 8) memcpy(&v, s.data(), 8);
  return v;
}

site::SiteOptions FastSite(SiteId id, uint32_t num_sites) {
  site::SiteOptions options;
  options.site_id = id;
  options.num_sites = num_sites;
  options.read_op_cost = options.write_op_cost = options.apply_op_cost =
      std::chrono::microseconds(0);
  return options;
}

Status WriteKey(site::SiteManager* site, uint64_t key, uint64_t value,
                ClientId client, uint64_t client_txn) {
  site::TxnOptions options;
  options.write_keys = {RecordKey{kTable, key}};
  options.client = client;
  options.client_txn = client_txn;
  site::Transaction txn;
  Status s = site->BeginTransaction(options, &txn);
  if (!s.ok()) return s;
  s = txn.Put(RecordKey{kTable, key}, Num(value));
  if (!s.ok()) {
    site->Abort(&txn);
    return s;
  }
  VersionVector commit_version;
  return site->Commit(&txn, &commit_version);
}

TEST(RecoveryRemasterTest, ReleaseLoggedGrantMissingConvergesToRecipient) {
  RangePartitioner partitioner(10, 4);  // 4 partitions of 10 keys
  log::LogManager logs(2);

  // ---- Phase 1: live run, crash between release and grant ------------
  {
    std::vector<std::unique_ptr<site::SiteManager>> sites;
    for (SiteId i = 0; i < 2; ++i) {
      sites.push_back(std::make_unique<site::SiteManager>(
          FastSite(i, 2), &partitioner, &logs, nullptr));
      ASSERT_TRUE(sites[i]->CreateTable(kTable).ok());
      for (uint64_t key = 0; key < kKeys; ++key) {
        ASSERT_TRUE(
            sites[i]->LoadRecord(RecordKey{kTable, key}, Num(0)).ok());
      }
    }
    for (PartitionId p = 0; p < 4; ++p) sites[0]->SetMasterOf(p, true);

    // Committed writes on every partition, all logged at site 0.
    uint64_t txn = 0;
    for (uint64_t key = 0; key < kKeys; key += 5) {
      ASSERT_TRUE(WriteKey(sites[0].get(), key, key + 100, 1, ++txn).ok());
    }

    // Release partition 2 toward site 1... and "crash": the grant marker
    // is never appended. The release itself is durable in topic 0.
    VersionVector release_version;
    ASSERT_TRUE(sites[0]->Release({2}, 1, &release_version).ok());
    ASSERT_FALSE(sites[0]->IsMasterOf(2));
  }  // sites destroyed; `logs` survives the crash

  // ---- Phase 2: replay on fresh sites --------------------------------
  history::Recorder recorder;
  std::vector<std::unique_ptr<site::SiteManager>> sites;
  std::vector<std::unordered_map<PartitionId, SiteId>> recovered(2);
  std::unordered_map<PartitionId, SiteId> initial;
  for (PartitionId p = 0; p < 4; ++p) initial[p] = 0;
  for (SiteId i = 0; i < 2; ++i) {
    sites.push_back(std::make_unique<site::SiteManager>(
        FastSite(i, 2), &partitioner, &logs, nullptr, &recorder));
    ASSERT_TRUE(sites[i]->CreateTable(kTable).ok());
    for (uint64_t key = 0; key < kKeys; ++key) {
      ASSERT_TRUE(sites[i]->LoadRecord(RecordKey{kTable, key}, Num(0)).ok());
    }
    ASSERT_TRUE(sites[i]->RecoverFromLogs(initial, &recovered[i]).ok());
  }

  // Every recovering site computes the same mastership map, and the
  // half-transferred partition lands on the release's recipient.
  EXPECT_EQ(recovered[0], recovered[1]);
  EXPECT_EQ(recovered[0][2], 1u);
  for (PartitionId p = 0; p < 4; ++p) {
    int masters = 0;
    for (SiteId i = 0; i < 2; ++i) {
      if (sites[i]->IsMasterOf(p)) masters++;
    }
    EXPECT_EQ(masters, 1) << "partition " << p;
    EXPECT_EQ(sites[p == 2 ? 1 : 0]->IsMasterOf(p), true) << "partition " << p;
  }

  // Replay reproduced the pre-crash data at both sites.
  for (uint64_t key = 0; key < kKeys; key += 5) {
    for (SiteId i = 0; i < 2; ++i) {
      std::string value;
      ASSERT_TRUE(
          sites[i]->engine().ReadLatest(RecordKey{kTable, key}, &value).ok());
      EXPECT_EQ(AsNum(value), key + 100) << "site " << i << " key " << key;
    }
  }

  // The recovered cluster is live: the new master accepts writes on the
  // transferred partition, the old master refuses them. Distinct client
  // sessions per site — no appliers run here, so a single session hopping
  // between sites could not be kept session-consistent (the auditor would
  // rightly object).
  ASSERT_TRUE(WriteKey(sites[1].get(), 25, 500, 2, 1).ok());
  EXPECT_TRUE(WriteKey(sites[0].get(), 25, 501, 3, 1).IsNotMaster());
  ASSERT_TRUE(WriteKey(sites[0].get(), 5, 600, 3, 2).ok());

  // Post-recovery history audits clean. The recorder only saw events
  // after the crash, so audit in partial-history mode (reads may observe
  // versions whose installers predate the recorder).
  tools::SiCheckerOptions options;
  options.complete_history = false;
  const tools::AuditReport audit =
      tools::AuditHistory(recorder.Snapshot(), options);
  EXPECT_TRUE(audit.ok()) << audit.ToString();
  EXPECT_GE(audit.commits, 2u);

  logs.CloseAll();
  for (auto& s : sites) s->Stop();
}

// Regression: RecoverFromLogs used to mutate svv_ and mastered_ without
// state_mu_ (TSA's GUARDED_BY flagged it). The replay now holds the
// state lock throughout, so readers racing recovery see consistent
// state. The race itself is what TSan and the lock checker catch when
// the sanitizer presets run this test; in a plain build it still proves
// the locked replay cannot deadlock against concurrent readers.
TEST(RecoveryRemasterTest, ConcurrentReadsDuringRecoveryAreSafe) {
  RangePartitioner partitioner(10, 4);  // 4 partitions of 10 keys
  log::LogManager logs(1);
  {
    site::SiteManager live(FastSite(0, 1), &partitioner, &logs, nullptr);
    ASSERT_TRUE(live.CreateTable(kTable).ok());
    for (uint64_t key = 0; key < kKeys; ++key) {
      ASSERT_TRUE(live.LoadRecord(RecordKey{kTable, key}, Num(0)).ok());
    }
    for (PartitionId p = 0; p < 4; ++p) live.SetMasterOf(p, true);
    uint64_t txn = 0;
    for (uint64_t key = 0; key < kKeys; key += 2) {
      ASSERT_TRUE(WriteKey(&live, key, key + 1, 1, ++txn).ok());
    }
    live.Stop();
  }

  site::SiteManager replay(FastSite(0, 1), &partitioner, &logs, nullptr);
  ASSERT_TRUE(replay.CreateTable(kTable).ok());
  for (uint64_t key = 0; key < kKeys; ++key) {
    ASSERT_TRUE(replay.LoadRecord(RecordKey{kTable, key}, Num(0)).ok());
  }

  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      (void)replay.CurrentVersion();
      (void)replay.IsMasterOf(0);
      (void)replay.MasteredPartitions();
    }
  });

  std::unordered_map<PartitionId, SiteId> initial;
  for (PartitionId p = 0; p < 4; ++p) initial[p] = 0;
  std::unordered_map<PartitionId, SiteId> recovered;
  ASSERT_TRUE(replay.RecoverFromLogs(initial, &recovered).ok());
  done.store(true, std::memory_order_release);
  reader.join();

  for (PartitionId p = 0; p < 4; ++p) {
    EXPECT_EQ(recovered[p], 0u) << "partition " << p;
    EXPECT_TRUE(replay.IsMasterOf(p)) << "partition " << p;
  }
  std::string value;
  ASSERT_TRUE(replay.engine().ReadLatest(RecordKey{kTable, 2}, &value).ok());
  EXPECT_EQ(AsNum(value), 3u);
  replay.Stop();
  logs.CloseAll();
}

TEST(RecoveryRemasterTest, GrantMarkerReassertsRecoveredOwner) {
  // Control: when the grant DID make it to the log, replay reaches the
  // same owner through release (assign to recipient) + grant (re-assert).
  RangePartitioner partitioner(10, 2);
  core::Cluster::Options copts;
  copts.num_sites = 2;
  copts.network.charge_delays = false;
  copts.site.read_op_cost = copts.site.write_op_cost =
      copts.site.apply_op_cost = std::chrono::microseconds(0);
  core::Cluster cluster(copts, &partitioner);
  ASSERT_TRUE(cluster.CreateTable(kTable).ok());
  for (uint64_t key = 0; key < 20; ++key) {
    for (SiteId i = 0; i < 2; ++i) {
      ASSERT_TRUE(
          cluster.site(i)->LoadRecord(RecordKey{kTable, key}, Num(0)).ok());
    }
  }
  cluster.site(0)->SetMasterOf(0, true);
  cluster.site(0)->SetMasterOf(1, true);
  cluster.Start();

  ASSERT_TRUE(WriteKey(cluster.site(0), 15, 7, 1, 1).ok());
  VersionVector release_version, grant_version;
  ASSERT_TRUE(cluster.site(0)->Release({1}, 1, &release_version).ok());
  // The refresh applier catches site 1 up to the release point, so the
  // grant's version-vector wait completes and the marker is logged.
  ASSERT_TRUE(
      cluster.site(1)->Grant({1}, 0, release_version, &grant_version).ok());
  ASSERT_TRUE(WriteKey(cluster.site(1), 16, 8, 1, 2).ok());

  site::SiteManager replay(FastSite(0, 2), &partitioner, &cluster.logs(),
                           nullptr);
  ASSERT_TRUE(replay.CreateTable(kTable).ok());
  for (uint64_t key = 0; key < 20; ++key) {
    ASSERT_TRUE(replay.LoadRecord(RecordKey{kTable, key}, Num(0)).ok());
  }
  std::unordered_map<PartitionId, SiteId> initial{{0, 0}, {1, 0}};
  std::unordered_map<PartitionId, SiteId> recovered;
  ASSERT_TRUE(replay.RecoverFromLogs(initial, &recovered).ok());
  EXPECT_EQ(recovered[0], 0u);
  EXPECT_EQ(recovered[1], 1u);
  std::string value;
  ASSERT_TRUE(replay.engine().ReadLatest(RecordKey{kTable, 16}, &value).ok());
  EXPECT_EQ(AsNum(value), 8u);
  cluster.Stop();
}

// ---- Crash-point sweep ----------------------------------------------
//
// Every durable append is a recorded sync point (kLogAppend in the
// scheduler's decision stream), so "crash after the k-th append" names a
// precise point in the serialized history — no wall-clock sleeps. The
// scenario below produces a fixed, fully deterministic append sequence:
//
//   appends 1..8   eight committed writes, topic 0 (old master)
//   append  9      release marker for partition 1, topic 0
//   append  10     grant marker, topic 1 (new master re-asserts)
//   append  11     one committed write at the new master, topic 1
//
// The sweep truncates the log at every k in [0, 11] and recovers fresh
// sites from the surviving prefix. Invariants checked at every point:
// both sites compute identical mastership, every partition has exactly
// one master (the release's recipient iff the release marker survived),
// recovered data equals the surviving write prefix, the recovered
// cluster accepts writes at the owner and refuses them elsewhere, and
// the post-recovery history audits clean.

constexpr uint64_t kSweepWrites = 8;        // appends 1..8
constexpr uint64_t kReleaseAppend = 9;      // release marker
constexpr uint64_t kSweepTotalAppends = 11; // full scenario

class RecoveryCrashPointTest : public ::testing::TestWithParam<uint64_t> {};

// Runs the remaster scenario with the log armed to lose every append
// after the first `k`. Returns the cluster so the caller can recover
// from its (truncated) logs.
std::unique_ptr<core::Cluster> RunCrashedScenario(
    const RangePartitioner& partitioner, uint64_t k) {
  core::Cluster::Options copts;
  copts.num_sites = 2;
  copts.network.charge_delays = false;
  copts.site.read_op_cost = copts.site.write_op_cost =
      copts.site.apply_op_cost = std::chrono::microseconds(0);
  // A lost release marker means site 1 can never catch up; keep the
  // doomed Grant's freshness wait short so the sweep stays fast.
  copts.site.freshness_timeout = std::chrono::milliseconds(100);
  auto cluster = std::make_unique<core::Cluster>(copts, &partitioner);
  EXPECT_TRUE(cluster->CreateTable(kTable).ok());
  for (uint64_t key = 0; key < 20; ++key) {
    for (SiteId i = 0; i < 2; ++i) {
      EXPECT_TRUE(
          cluster->site(i)->LoadRecord(RecordKey{kTable, key}, Num(0)).ok());
    }
  }
  cluster->site(0)->SetMasterOf(0, true);
  cluster->site(0)->SetMasterOf(1, true);
  cluster->Start();
  if (k < kSweepTotalAppends) {
    cluster->logs().ArmCrashAfterAppends(static_cast<int64_t>(k));
  }

  uint64_t txn = 0;
  for (uint64_t key = 0; key < 2 * kSweepWrites; key += 2) {
    // Lost appends still commit in memory; that memory dies with the
    // crash, so phase 1 ignores the statuses past the crash point.
    (void)WriteKey(cluster->site(0), key, key + 100, 1, ++txn);
  }
  VersionVector release_version, grant_version;
  (void)cluster->site(0)->Release({1}, 1, &release_version);
  // With the release marker lost, site 1 never reaches the release
  // version and this Grant times out — exactly the half-transferred
  // window recovery must resolve.
  if (cluster->site(1)
          ->Grant({1}, 0, release_version, &grant_version)
          .ok()) {
    (void)WriteKey(cluster->site(1), 17, 999, 1, ++txn);
  }
  return cluster;
}

TEST(RecoveryCrashPointTest, ScenarioAppendCountMatchesSweepBound) {
  // Keeps the sweep's Range honest: if the scenario ever changes shape,
  // this fails before the per-point invariants silently under-cover.
  RangePartitioner partitioner(10, 2);
  std::unique_ptr<core::Cluster> cluster =
      RunCrashedScenario(partitioner, kSweepTotalAppends);
  EXPECT_EQ(cluster->logs().TotalAppends(), kSweepTotalAppends);
  cluster->Stop();
}

TEST_P(RecoveryCrashPointTest, RecoversToSingleMasterAtEveryCrashPoint) {
  const uint64_t k = GetParam();
  RangePartitioner partitioner(10, 2);
  std::unique_ptr<core::Cluster> cluster = RunCrashedScenario(partitioner, k);
  // The crash: phase-1 memory (and its appliers) is gone; only the
  // truncated log survives. Recovery below uses non-blocking reads, so
  // the closed topics are fine.
  cluster->Stop();

  // ---- Recover fresh sites from the surviving prefix -----------------
  history::Recorder recorder;
  std::vector<std::unique_ptr<site::SiteManager>> sites;
  std::vector<std::unordered_map<PartitionId, SiteId>> recovered(2);
  std::unordered_map<PartitionId, SiteId> initial{{0, 0}, {1, 0}};
  for (SiteId i = 0; i < 2; ++i) {
    sites.push_back(std::make_unique<site::SiteManager>(
        FastSite(i, 2), &partitioner, &cluster->logs(), nullptr, &recorder));
    ASSERT_TRUE(sites[i]->CreateTable(kTable).ok());
    for (uint64_t key = 0; key < 20; ++key) {
      ASSERT_TRUE(sites[i]->LoadRecord(RecordKey{kTable, key}, Num(0)).ok());
    }
    ASSERT_TRUE(sites[i]->RecoverFromLogs(initial, &recovered[i]).ok());
  }

  // Mastership is a pure function of the surviving prefix: the release
  // marker (append 9) moves partition 1 to its named recipient.
  const SiteId owner1 = k >= kReleaseAppend ? 1 : 0;
  EXPECT_EQ(recovered[0], recovered[1]) << "crash point " << k;
  EXPECT_EQ(recovered[0][1], owner1) << "crash point " << k;
  for (PartitionId p = 0; p < 2; ++p) {
    int masters = 0;
    for (SiteId i = 0; i < 2; ++i) {
      if (sites[i]->IsMasterOf(p)) masters++;
    }
    EXPECT_EQ(masters, 1) << "crash point " << k << " partition " << p;
  }

  // Recovered data equals the surviving write prefix.
  const uint64_t surviving = std::min(k, kSweepWrites);
  for (uint64_t i = 0; i < kSweepWrites; ++i) {
    const uint64_t key = 2 * i;
    for (SiteId s = 0; s < 2; ++s) {
      std::string value;
      ASSERT_TRUE(
          sites[s]->engine().ReadLatest(RecordKey{kTable, key}, &value).ok());
      EXPECT_EQ(AsNum(value), i < surviving ? key + 100 : 0)
          << "crash point " << k << " site " << s << " key " << key;
    }
  }

  // Liveness: the owner accepts writes on partition 1, the other site
  // refuses them; partition 0 still works at site 0.
  ASSERT_TRUE(WriteKey(sites[owner1].get(), 15, 700, 2, 1).ok());
  EXPECT_TRUE(WriteKey(sites[1 - owner1].get(), 15, 701, 3, 1).IsNotMaster());
  ASSERT_TRUE(WriteKey(sites[0].get(), 5, 800, 4, 1).ok());

  // Post-recovery history audits clean (partial mode: the recorder never
  // saw the pre-crash installers).
  tools::SiCheckerOptions options;
  options.complete_history = false;
  const tools::AuditReport audit =
      tools::AuditHistory(recorder.Snapshot(), options);
  EXPECT_TRUE(audit.ok()) << "crash point " << k << ": " << audit.ToString();
  EXPECT_GE(audit.commits, 2u);

  cluster->Stop();
  for (auto& s : sites) s->Stop();
}

INSTANTIATE_TEST_SUITE_P(AllSyncPoints, RecoveryCrashPointTest,
                         ::testing::Range<uint64_t>(0, kSweepTotalAppends + 1),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "after_" + std::to_string(info.param) +
                                  "_appends";
                         });

}  // namespace
}  // namespace dynamast
