// Durable-log recovery across a crashed remastering: the old master
// logged its release marker, but the crash hit before the recipient's
// grant marker was written. Replay must still converge every recovering
// site on exactly one master — the release's named recipient — and the
// recovered cluster must accept writes there and audit clean.

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/history.h"
#include "common/partitioner.h"
#include "core/cluster.h"
#include "log/durable_log.h"
#include "site/site_manager.h"
#include "tools/si_checker.h"

namespace dynamast {
namespace {

constexpr TableId kTable = 0;
constexpr uint64_t kKeys = 40;

std::string Num(uint64_t v) {
  return std::string(reinterpret_cast<const char*>(&v), sizeof(v));
}
uint64_t AsNum(const std::string& s) {
  uint64_t v = 0;
  if (s.size() >= 8) memcpy(&v, s.data(), 8);
  return v;
}

site::SiteOptions FastSite(SiteId id, uint32_t num_sites) {
  site::SiteOptions options;
  options.site_id = id;
  options.num_sites = num_sites;
  options.read_op_cost = options.write_op_cost = options.apply_op_cost =
      std::chrono::microseconds(0);
  return options;
}

Status WriteKey(site::SiteManager* site, uint64_t key, uint64_t value,
                ClientId client, uint64_t client_txn) {
  site::TxnOptions options;
  options.write_keys = {RecordKey{kTable, key}};
  options.client = client;
  options.client_txn = client_txn;
  site::Transaction txn;
  Status s = site->BeginTransaction(options, &txn);
  if (!s.ok()) return s;
  s = txn.Put(RecordKey{kTable, key}, Num(value));
  if (!s.ok()) {
    site->Abort(&txn);
    return s;
  }
  VersionVector commit_version;
  return site->Commit(&txn, &commit_version);
}

TEST(RecoveryRemasterTest, ReleaseLoggedGrantMissingConvergesToRecipient) {
  RangePartitioner partitioner(10, 4);  // 4 partitions of 10 keys
  log::LogManager logs(2);

  // ---- Phase 1: live run, crash between release and grant ------------
  {
    std::vector<std::unique_ptr<site::SiteManager>> sites;
    for (SiteId i = 0; i < 2; ++i) {
      sites.push_back(std::make_unique<site::SiteManager>(
          FastSite(i, 2), &partitioner, &logs, nullptr));
      ASSERT_TRUE(sites[i]->CreateTable(kTable).ok());
      for (uint64_t key = 0; key < kKeys; ++key) {
        ASSERT_TRUE(
            sites[i]->LoadRecord(RecordKey{kTable, key}, Num(0)).ok());
      }
    }
    for (PartitionId p = 0; p < 4; ++p) sites[0]->SetMasterOf(p, true);

    // Committed writes on every partition, all logged at site 0.
    uint64_t txn = 0;
    for (uint64_t key = 0; key < kKeys; key += 5) {
      ASSERT_TRUE(WriteKey(sites[0].get(), key, key + 100, 1, ++txn).ok());
    }

    // Release partition 2 toward site 1... and "crash": the grant marker
    // is never appended. The release itself is durable in topic 0.
    VersionVector release_version;
    ASSERT_TRUE(sites[0]->Release({2}, 1, &release_version).ok());
    ASSERT_FALSE(sites[0]->IsMasterOf(2));
  }  // sites destroyed; `logs` survives the crash

  // ---- Phase 2: replay on fresh sites --------------------------------
  history::Recorder recorder;
  std::vector<std::unique_ptr<site::SiteManager>> sites;
  std::vector<std::unordered_map<PartitionId, SiteId>> recovered(2);
  std::unordered_map<PartitionId, SiteId> initial;
  for (PartitionId p = 0; p < 4; ++p) initial[p] = 0;
  for (SiteId i = 0; i < 2; ++i) {
    sites.push_back(std::make_unique<site::SiteManager>(
        FastSite(i, 2), &partitioner, &logs, nullptr, &recorder));
    ASSERT_TRUE(sites[i]->CreateTable(kTable).ok());
    for (uint64_t key = 0; key < kKeys; ++key) {
      ASSERT_TRUE(sites[i]->LoadRecord(RecordKey{kTable, key}, Num(0)).ok());
    }
    ASSERT_TRUE(sites[i]->RecoverFromLogs(initial, &recovered[i]).ok());
  }

  // Every recovering site computes the same mastership map, and the
  // half-transferred partition lands on the release's recipient.
  EXPECT_EQ(recovered[0], recovered[1]);
  EXPECT_EQ(recovered[0][2], 1u);
  for (PartitionId p = 0; p < 4; ++p) {
    int masters = 0;
    for (SiteId i = 0; i < 2; ++i) {
      if (sites[i]->IsMasterOf(p)) masters++;
    }
    EXPECT_EQ(masters, 1) << "partition " << p;
    EXPECT_EQ(sites[p == 2 ? 1 : 0]->IsMasterOf(p), true) << "partition " << p;
  }

  // Replay reproduced the pre-crash data at both sites.
  for (uint64_t key = 0; key < kKeys; key += 5) {
    for (SiteId i = 0; i < 2; ++i) {
      std::string value;
      ASSERT_TRUE(
          sites[i]->engine().ReadLatest(RecordKey{kTable, key}, &value).ok());
      EXPECT_EQ(AsNum(value), key + 100) << "site " << i << " key " << key;
    }
  }

  // The recovered cluster is live: the new master accepts writes on the
  // transferred partition, the old master refuses them. Distinct client
  // sessions per site — no appliers run here, so a single session hopping
  // between sites could not be kept session-consistent (the auditor would
  // rightly object).
  ASSERT_TRUE(WriteKey(sites[1].get(), 25, 500, 2, 1).ok());
  EXPECT_TRUE(WriteKey(sites[0].get(), 25, 501, 3, 1).IsNotMaster());
  ASSERT_TRUE(WriteKey(sites[0].get(), 5, 600, 3, 2).ok());

  // Post-recovery history audits clean. The recorder only saw events
  // after the crash, so audit in partial-history mode (reads may observe
  // versions whose installers predate the recorder).
  tools::SiCheckerOptions options;
  options.complete_history = false;
  const tools::AuditReport audit =
      tools::AuditHistory(recorder.Snapshot(), options);
  EXPECT_TRUE(audit.ok()) << audit.ToString();
  EXPECT_GE(audit.commits, 2u);

  logs.CloseAll();
  for (auto& s : sites) s->Stop();
}

TEST(RecoveryRemasterTest, GrantMarkerReassertsRecoveredOwner) {
  // Control: when the grant DID make it to the log, replay reaches the
  // same owner through release (assign to recipient) + grant (re-assert).
  RangePartitioner partitioner(10, 2);
  core::Cluster::Options copts;
  copts.num_sites = 2;
  copts.network.charge_delays = false;
  copts.site.read_op_cost = copts.site.write_op_cost =
      copts.site.apply_op_cost = std::chrono::microseconds(0);
  core::Cluster cluster(copts, &partitioner);
  ASSERT_TRUE(cluster.CreateTable(kTable).ok());
  for (uint64_t key = 0; key < 20; ++key) {
    for (SiteId i = 0; i < 2; ++i) {
      ASSERT_TRUE(
          cluster.site(i)->LoadRecord(RecordKey{kTable, key}, Num(0)).ok());
    }
  }
  cluster.site(0)->SetMasterOf(0, true);
  cluster.site(0)->SetMasterOf(1, true);
  cluster.Start();

  ASSERT_TRUE(WriteKey(cluster.site(0), 15, 7, 1, 1).ok());
  VersionVector release_version, grant_version;
  ASSERT_TRUE(cluster.site(0)->Release({1}, 1, &release_version).ok());
  // The refresh applier catches site 1 up to the release point, so the
  // grant's version-vector wait completes and the marker is logged.
  ASSERT_TRUE(
      cluster.site(1)->Grant({1}, 0, release_version, &grant_version).ok());
  ASSERT_TRUE(WriteKey(cluster.site(1), 16, 8, 1, 2).ok());

  site::SiteManager replay(FastSite(0, 2), &partitioner, &cluster.logs(),
                           nullptr);
  ASSERT_TRUE(replay.CreateTable(kTable).ok());
  for (uint64_t key = 0; key < 20; ++key) {
    ASSERT_TRUE(replay.LoadRecord(RecordKey{kTable, key}, Num(0)).ok());
  }
  std::unordered_map<PartitionId, SiteId> initial{{0, 0}, {1, 0}};
  std::unordered_map<PartitionId, SiteId> recovered;
  ASSERT_TRUE(replay.RecoverFromLogs(initial, &recovered).ok());
  EXPECT_EQ(recovered[0], 0u);
  EXPECT_EQ(recovered[1], 1u);
  std::string value;
  ASSERT_TRUE(replay.engine().ReadLatest(RecordKey{kTable, 16}, &value).ok());
  EXPECT_EQ(AsNum(value), 8u);
  cluster.Stop();
}

}  // namespace
}  // namespace dynamast
