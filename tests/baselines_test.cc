// Tests for the baseline systems: multi-master / partition-store (static
// placement + two-phase commit) and LEAP (single-site execution via data
// shipping). Atomicity under injected 2PC aborts, replication behaviour,
// remote reads, and ownership transfer are all covered.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>

#include "baselines/leap_system.h"
#include "baselines/partitioned_system.h"
#include "baselines/static_placement.h"
#include "common/partitioner.h"
#include "common/random.h"

namespace dynamast::baselines {
namespace {

constexpr TableId kTable = 0;

std::string Num(uint64_t v) {
  return std::string(reinterpret_cast<const char*>(&v), sizeof(v));
}
uint64_t AsNum(const std::string& s) {
  uint64_t v = 0;
  if (s.size() >= 8) memcpy(&v, s.data(), 8);
  return v;
}

core::Cluster::Options FastCluster(uint32_t sites) {
  core::Cluster::Options options;
  options.num_sites = sites;
  options.network.charge_delays = false;
  options.site.read_op_cost = options.site.write_op_cost =
      options.site.apply_op_cost = std::chrono::microseconds(0);
  options.site.worker_slots = 8;
  return options;
}

template <typename System>
void LoadKeys(System& system, uint64_t keys, uint64_t initial) {
  ASSERT_TRUE(system.CreateTable(kTable).ok());
  for (uint64_t key = 0; key < keys; ++key) {
    ASSERT_TRUE(system.LoadRow(RecordKey{kTable, key}, Num(initial)).ok());
  }
  system.Seal();
}

core::TxnProfile TransferProfile(uint64_t a, uint64_t b) {
  core::TxnProfile profile;
  profile.write_keys = {RecordKey{kTable, a}, RecordKey{kTable, b}};
  profile.read_keys = profile.write_keys;
  return profile;
}

core::TxnLogic TransferLogic(uint64_t a, uint64_t b, uint64_t amount) {
  return [a, b, amount](core::TxnContext& ctx) -> Status {
    std::string value;
    Status s = ctx.Get(RecordKey{kTable, a}, &value);
    if (!s.ok()) return s;
    s = ctx.Put(RecordKey{kTable, a}, Num(AsNum(value) - amount));
    if (!s.ok()) return s;
    s = ctx.Get(RecordKey{kTable, b}, &value);
    if (!s.ok()) return s;
    return ctx.Put(RecordKey{kTable, b}, Num(AsNum(value) + amount));
  };
}

// ---- PartitionedSystem: multi-master ----------------------------------------

TEST(MultiMasterTest, LocalWriteWhenWriteSetSingleSited) {
  RangePartitioner partitioner(10, 10);
  // Explicit chunk of 5: partitions 0-4 -> site 0, 5-9 -> site 1.
  auto options = PartitionedSystem::MultiMaster(
      FastCluster(2), RangePlacement(10, 2, /*chunk=*/5));
  PartitionedSystem system(options, &partitioner);
  LoadKeys(system, 100, 100);
  core::ClientState client;
  client.id = 1;
  core::TxnResult result;
  // Keys 5 and 15: partitions 0 and 1, both owned by site 0 under range
  // placement (partitions 0-4 -> site 0).
  ASSERT_TRUE(system
                  .Execute(client, TransferProfile(5, 15),
                           TransferLogic(5, 15, 10), &result)
                  .ok());
  EXPECT_FALSE(result.distributed);
  EXPECT_EQ(system.single_site_txns(), 1u);
  EXPECT_EQ(system.distributed_txns(), 0u);
  system.Shutdown();
}

TEST(MultiMasterTest, DistributedWriteUses2pc) {
  RangePartitioner partitioner(10, 10);
  auto options = PartitionedSystem::MultiMaster(FastCluster(2),
                                                RangePlacement(10, 2));
  PartitionedSystem system(options, &partitioner);
  LoadKeys(system, 100, 100);
  core::ClientState client;
  client.id = 1;
  core::TxnResult result;
  // Keys 5 (site 0) and 95 (site 1): a distributed transaction.
  ASSERT_TRUE(system
                  .Execute(client, TransferProfile(5, 95),
                           TransferLogic(5, 95, 10), &result)
                  .ok());
  EXPECT_TRUE(result.distributed);
  EXPECT_EQ(system.distributed_txns(), 1u);

  // Both writes are visible to a subsequent read-only transaction of the
  // same session (replicas + session freshness).
  core::TxnProfile read;
  read.read_only = true;
  read.read_keys = {RecordKey{kTable, 5}, RecordKey{kTable, 95}};
  uint64_t a = 0, b = 0;
  auto logic = [&](core::TxnContext& ctx) -> Status {
    std::string value;
    Status s = ctx.Get(RecordKey{kTable, 5}, &value);
    if (!s.ok()) return s;
    a = AsNum(value);
    s = ctx.Get(RecordKey{kTable, 95}, &value);
    if (!s.ok()) return s;
    b = AsNum(value);
    return Status::OK();
  };
  ASSERT_TRUE(system.Execute(client, read, logic, &result).ok());
  EXPECT_EQ(a, 90u);
  EXPECT_EQ(b, 110u);
  system.Shutdown();
}

TEST(MultiMasterTest, InjectedPrepareAbortIsAtomic) {
  RangePartitioner partitioner(10, 10);
  auto options = PartitionedSystem::MultiMaster(FastCluster(2),
                                                RangePlacement(10, 2));
  options.injected_abort_probability = 1.0;  // every prepare vote fails
  PartitionedSystem system(options, &partitioner);
  LoadKeys(system, 100, 100);
  core::ClientState client;
  client.id = 1;
  core::TxnResult result;
  EXPECT_TRUE(system
                  .Execute(client, TransferProfile(5, 95),
                           TransferLogic(5, 95, 10), &result)
                  .IsAborted());
  // All-or-nothing: neither site shows a partial write.
  for (SiteId s = 0; s < 2; ++s) {
    std::string value;
    if (system.cluster().site(s)->engine().ReadLatest(RecordKey{kTable, 5},
                                                      &value).ok()) {
      EXPECT_EQ(AsNum(value), 100u);
    }
    if (system.cluster().site(s)->engine().ReadLatest(RecordKey{kTable, 95},
                                                      &value).ok()) {
      EXPECT_EQ(AsNum(value), 100u);
    }
  }
  system.Shutdown();
}

TEST(MultiMasterTest, ConcurrentMixConservesTotal) {
  RangePartitioner partitioner(10, 6);
  auto options = PartitionedSystem::MultiMaster(FastCluster(3),
                                                RangePlacement(6, 3));
  PartitionedSystem system(options, &partitioner);
  LoadKeys(system, 60, 1000);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      core::ClientState client;
      client.id = t + 1;
      Random rng(t + 11);
      for (int i = 0; i < 25; ++i) {
        const uint64_t a = rng.Uniform(60);
        uint64_t b = rng.Uniform(60);
        if (a == b) b = (b + 13) % 60;
        core::TxnResult result;
        if (!system
                 .Execute(client, TransferProfile(a, b),
                          TransferLogic(a, b, 3), &result)
                 .ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  core::ClientState auditor;
  auditor.id = 77;
  core::TxnProfile audit;
  audit.read_only = true;
  for (uint64_t key = 0; key < 60; ++key) {
    audit.read_keys.push_back(RecordKey{kTable, key});
  }
  uint64_t total = 0;
  auto logic = [&total](core::TxnContext& ctx) -> Status {
    total = 0;  // logic may rerun on a fresher snapshot
    for (uint64_t key = 0; key < 60; ++key) {
      std::string value;
      Status s = ctx.Get(RecordKey{kTable, key}, &value);
      if (!s.ok()) return s;
      total += AsNum(value);
    }
    return Status::OK();
  };
  core::TxnResult result;
  ASSERT_TRUE(system.Execute(auditor, audit, logic, &result).ok());
  EXPECT_EQ(total, 60u * 1000u);
  system.Shutdown();
}

// ---- PartitionedSystem: partition-store -------------------------------------

TEST(PartitionStoreTest, DataLivesOnlyAtOwner) {
  RangePartitioner partitioner(10, 10);
  auto options = PartitionedSystem::PartitionStore(FastCluster(2),
                                                   RangePlacement(10, 2));
  PartitionedSystem system(options, &partitioner);
  LoadKeys(system, 100, 7);
  // Key 5 -> partition 0 -> site 0 only.
  EXPECT_TRUE(system.cluster().site(0)->engine().Contains(RecordKey{kTable, 5}));
  EXPECT_FALSE(system.cluster().site(1)->engine().Contains(RecordKey{kTable, 5}));
  system.Shutdown();
}

TEST(PartitionStoreTest, ReplicatedStaticRowsEverywhere) {
  RangePartitioner partitioner(10, 10);
  auto options = PartitionedSystem::PartitionStore(FastCluster(2),
                                                   RangePlacement(10, 2));
  PartitionedSystem system(options, &partitioner);
  ASSERT_TRUE(system.CreateTable(kTable).ok());
  ASSERT_TRUE(system.LoadReplicatedRow(RecordKey{kTable, 5}, Num(1)).ok());
  EXPECT_TRUE(system.cluster().site(0)->engine().Contains(RecordKey{kTable, 5}));
  EXPECT_TRUE(system.cluster().site(1)->engine().Contains(RecordKey{kTable, 5}));
  system.Shutdown();
}

TEST(PartitionStoreTest, MultiSiteReadGathers) {
  RangePartitioner partitioner(10, 10);
  auto options = PartitionedSystem::PartitionStore(FastCluster(2),
                                                   RangePlacement(10, 2));
  PartitionedSystem system(options, &partitioner);
  LoadKeys(system, 100, 5);
  core::ClientState client;
  client.id = 1;
  core::TxnProfile read;
  read.read_only = true;
  read.read_keys = {RecordKey{kTable, 5}, RecordKey{kTable, 95}};
  uint64_t total = 0;
  auto logic = [&total](core::TxnContext& ctx) -> Status {
    total = 0;  // logic may rerun on a fresher snapshot
    for (uint64_t key : {5ull, 95ull}) {
      std::string value;
      Status s = ctx.Get(RecordKey{kTable, key}, &value);
      if (!s.ok()) return s;
      total += AsNum(value);
    }
    return Status::OK();
  };
  core::TxnResult result;
  ASSERT_TRUE(system.Execute(client, read, logic, &result).ok());
  EXPECT_EQ(total, 10u);
  EXPECT_TRUE(result.distributed);
  system.Shutdown();
}

TEST(PartitionStoreTest, DistributedWriteCommitsAtomically) {
  RangePartitioner partitioner(10, 10);
  auto options = PartitionedSystem::PartitionStore(FastCluster(2),
                                                   RangePlacement(10, 2));
  PartitionedSystem system(options, &partitioner);
  LoadKeys(system, 100, 100);
  core::ClientState client;
  client.id = 1;
  core::TxnResult result;
  ASSERT_TRUE(system
                  .Execute(client, TransferProfile(5, 95),
                           TransferLogic(5, 95, 25), &result)
                  .ok());
  std::string value;
  ASSERT_TRUE(system.cluster().site(0)->engine().ReadLatest(
      RecordKey{kTable, 5}, &value).ok());
  EXPECT_EQ(AsNum(value), 75u);
  ASSERT_TRUE(system.cluster().site(1)->engine().ReadLatest(
      RecordKey{kTable, 95}, &value).ok());
  EXPECT_EQ(AsNum(value), 125u);
  system.Shutdown();
}

// ---- LEAP ---------------------------------------------------------------------

TEST(LeapTest, ShipsPartitionsToExecutionSite) {
  RangePartitioner partitioner(10, 10);
  LeapSystem::Options options;
  options.cluster = FastCluster(2);
  options.cluster.replicated = false;
  options.placement = RangePlacement(10, 2);
  LeapSystem system(options, &partitioner);
  LoadKeys(system, 100, 50);

  core::ClientState client;
  client.id = 1;
  core::TxnResult result;
  // Keys 5 (partition 0, site 0) and 95 (partition 9, site 1): LEAP must
  // localize one of the partitions by shipping its data.
  ASSERT_TRUE(system
                  .Execute(client, TransferProfile(5, 95),
                           TransferLogic(5, 95, 10), &result)
                  .ok());
  EXPECT_GE(system.partitions_shipped(), 1u);
  EXPECT_GT(system.bytes_shipped(), 0u);
  // Both partitions now owned at the execution site.
  EXPECT_EQ(system.OwnerOf(0), result.executed_at);
  EXPECT_EQ(system.OwnerOf(9), result.executed_at);

  // Values correct at the new owner.
  std::string value;
  ASSERT_TRUE(system.cluster().site(result.executed_at)->engine().ReadLatest(
      RecordKey{kTable, 5}, &value).ok());
  EXPECT_EQ(AsNum(value), 40u);
  system.Shutdown();
}

TEST(LeapTest, ReadOnlyTransactionsAlsoLocalize) {
  RangePartitioner partitioner(10, 10);
  LeapSystem::Options options;
  options.cluster = FastCluster(2);
  options.cluster.replicated = false;
  options.placement = RangePlacement(10, 2);
  LeapSystem system(options, &partitioner);
  LoadKeys(system, 100, 5);

  core::ClientState client;
  client.id = 1;
  core::TxnProfile read;
  read.read_only = true;
  read.read_keys = {RecordKey{kTable, 5}, RecordKey{kTable, 95}};
  uint64_t total = 0;
  auto logic = [&total](core::TxnContext& ctx) -> Status {
    total = 0;  // logic may rerun on a fresher snapshot
    for (uint64_t key : {5ull, 95ull}) {
      std::string value;
      Status s = ctx.Get(RecordKey{kTable, key}, &value);
      if (!s.ok()) return s;
      total += AsNum(value);
    }
    return Status::OK();
  };
  core::TxnResult result;
  ASSERT_TRUE(system.Execute(client, read, logic, &result).ok());
  EXPECT_EQ(total, 10u);
  EXPECT_GE(system.partitions_shipped(), 1u);  // no replicas: must ship
  system.Shutdown();
}

TEST(LeapTest, RepeatedAccessAmortizesShipping) {
  RangePartitioner partitioner(10, 10);
  LeapSystem::Options options;
  options.cluster = FastCluster(2);
  options.cluster.replicated = false;
  options.placement = RangePlacement(10, 2);
  LeapSystem system(options, &partitioner);
  LoadKeys(system, 100, 50);
  core::ClientState client;
  client.id = 1;
  core::TxnResult r1, r2;
  ASSERT_TRUE(system
                  .Execute(client, TransferProfile(5, 95),
                           TransferLogic(5, 95, 1), &r1)
                  .ok());
  const uint64_t after_first = system.partitions_shipped();
  ASSERT_TRUE(system
                  .Execute(client, TransferProfile(5, 95),
                           TransferLogic(5, 95, 1), &r2)
                  .ok());
  EXPECT_EQ(system.partitions_shipped(), after_first);  // already local
  system.Shutdown();
}

TEST(LeapTest, StaticPartitionsNeverShipped) {
  RangePartitioner partitioner(10, 10);
  LeapSystem::Options options;
  options.cluster = FastCluster(2);
  options.cluster.replicated = false;
  options.placement = RangePlacement(10, 2);
  LeapSystem system(options, &partitioner);
  ASSERT_TRUE(system.CreateTable(kTable).ok());
  // Partition 9 loaded as static (replicated).
  for (uint64_t key = 90; key < 100; ++key) {
    ASSERT_TRUE(system.LoadReplicatedRow(RecordKey{kTable, key}, Num(3)).ok());
  }
  for (uint64_t key = 0; key < 10; ++key) {
    ASSERT_TRUE(system.LoadRow(RecordKey{kTable, key}, Num(4)).ok());
  }
  system.Seal();
  core::ClientState client;
  client.id = 1;
  core::TxnProfile profile;
  profile.write_keys = {RecordKey{kTable, 5}};
  profile.read_keys = {RecordKey{kTable, 5}, RecordKey{kTable, 95}};
  auto logic = [](core::TxnContext& ctx) -> Status {
    std::string value;
    Status s = ctx.Get(RecordKey{kTable, 95}, &value);  // static row
    if (!s.ok()) return s;
    return ctx.Put(RecordKey{kTable, 5}, Num(AsNum(value) + 1));
  };
  core::TxnResult result;
  ASSERT_TRUE(system.Execute(client, profile, logic, &result).ok());
  EXPECT_EQ(system.partitions_shipped(), 0u);
  system.Shutdown();
}

TEST(LeapTest, ClusterRunsNoRefreshAppliers) {
  // Regression: LeapSystem once constructed its Cluster before clearing
  // options.cluster.replicated, so refresh appliers ran — and an applier
  // re-applying an old remote commit after a partition shipped in would
  // shadow the freshly copied rows (versions append newest-at-back).
  RangePartitioner partitioner(4, 4);
  LeapSystem::Options options;
  options.cluster = FastCluster(2);
  options.placement = RangePlacement(4, 2);
  LeapSystem system(options, &partitioner);
  LoadKeys(system, 16, 100);

  // Commit an update at site 0 (its own partitions; no shipping).
  core::ClientState client;
  client.id = 1;
  core::TxnProfile profile;
  profile.write_keys = {RecordKey{kTable, 0}};
  profile.read_keys = profile.write_keys;
  ASSERT_TRUE(system
                  .Execute(
                      client, profile,
                      [](core::TxnContext& ctx) {
                        return ctx.Put(RecordKey{kTable, 0}, Num(42));
                      },
                      nullptr)
                  .ok());

  // Give a (buggy) applier ample time to pick up site 0's log record.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // No replicas: site 1 must never apply site 0's commit.
  EXPECT_EQ(system.cluster().site(1)->counters().refresh_applied.load(), 0u);
  EXPECT_EQ(system.cluster().site(1)->CurrentVersion()[0], 0u);
  system.Shutdown();
}

}  // namespace
}  // namespace dynamast::baselines
