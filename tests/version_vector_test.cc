#include "common/version_vector.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace dynamast {
namespace {

TEST(VersionVectorTest, DefaultIsEmpty) {
  VersionVector v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.Total(), 0u);
}

TEST(VersionVectorTest, ZeroConstruction) {
  VersionVector v(4);
  EXPECT_EQ(v.size(), 4u);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(v[i], 0u);
}

TEST(VersionVectorTest, ValueConstruction) {
  VersionVector v(std::vector<uint64_t>{1, 2, 3});
  EXPECT_EQ(v[0], 1u);
  EXPECT_EQ(v[2], 3u);
  EXPECT_EQ(v.Total(), 6u);
}

TEST(VersionVectorTest, DominatesReflexive) {
  VersionVector v(std::vector<uint64_t>{5, 0, 7});
  EXPECT_TRUE(v.DominatesOrEquals(v));
}

TEST(VersionVectorTest, DominatesStrict) {
  VersionVector a(std::vector<uint64_t>{2, 3, 4});
  VersionVector b(std::vector<uint64_t>{1, 3, 4});
  EXPECT_TRUE(a.DominatesOrEquals(b));
  EXPECT_FALSE(b.DominatesOrEquals(a));
}

TEST(VersionVectorTest, IncomparableVectors) {
  VersionVector a(std::vector<uint64_t>{2, 0});
  VersionVector b(std::vector<uint64_t>{0, 2});
  EXPECT_FALSE(a.DominatesOrEquals(b));
  EXPECT_FALSE(b.DominatesOrEquals(a));
}

TEST(VersionVectorTest, EmptyIsDominatedByAnything) {
  VersionVector empty;
  VersionVector v(std::vector<uint64_t>{0, 0});
  EXPECT_TRUE(v.DominatesOrEquals(empty));
  EXPECT_TRUE(empty.DominatesOrEquals(empty));
}

TEST(VersionVectorTest, ShorterVectorTreatedAsZeroExtended) {
  VersionVector a(std::vector<uint64_t>{1});
  VersionVector b(std::vector<uint64_t>{1, 0, 0});
  EXPECT_TRUE(a.DominatesOrEquals(b));
  EXPECT_TRUE(b.DominatesOrEquals(a));
}

TEST(VersionVectorTest, MaxWithGrows) {
  VersionVector a(std::vector<uint64_t>{1, 5});
  VersionVector b(std::vector<uint64_t>{3, 2, 9});
  a.MaxWith(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a[0], 3u);
  EXPECT_EQ(a[1], 5u);
  EXPECT_EQ(a[2], 9u);
}

TEST(VersionVectorTest, ElementwiseMaxIsCommutative) {
  VersionVector a(std::vector<uint64_t>{1, 7, 2});
  VersionVector b(std::vector<uint64_t>{4, 3, 2});
  EXPECT_EQ(VersionVector::ElementwiseMax(a, b),
            VersionVector::ElementwiseMax(b, a));
}

TEST(VersionVectorTest, MaxDominatesBothInputs) {
  VersionVector a(std::vector<uint64_t>{1, 7, 2});
  VersionVector b(std::vector<uint64_t>{4, 3, 2});
  const VersionVector m = VersionVector::ElementwiseMax(a, b);
  EXPECT_TRUE(m.DominatesOrEquals(a));
  EXPECT_TRUE(m.DominatesOrEquals(b));
}

TEST(VersionVectorTest, MissingUpdatesCountsPositivePart) {
  VersionVector mine(std::vector<uint64_t>{5, 0, 2});
  VersionVector target(std::vector<uint64_t>{3, 4, 2});
  // index 0: ahead (0 missing), index 1: 4 missing, index 2: equal.
  EXPECT_EQ(mine.MissingUpdates(target), 4u);
}

TEST(VersionVectorTest, MissingUpdatesZeroWhenDominating) {
  VersionVector mine(std::vector<uint64_t>{5, 5});
  VersionVector target(std::vector<uint64_t>{5, 4});
  EXPECT_EQ(mine.MissingUpdates(target), 0u);
}

TEST(VersionVectorTest, ToString) {
  VersionVector v(std::vector<uint64_t>{1, 0, 2});
  EXPECT_EQ(v.ToString(), "[1, 0, 2]");
}

// ---- Property sweeps ---------------------------------------------------

class VersionVectorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VersionVectorPropertyTest, MaxIsLeastUpperBound) {
  Random rng(GetParam());
  for (int iteration = 0; iteration < 200; ++iteration) {
    const size_t dim = 1 + rng.Uniform(8);
    std::vector<uint64_t> av(dim), bv(dim);
    for (size_t i = 0; i < dim; ++i) {
      av[i] = rng.Uniform(10);
      bv[i] = rng.Uniform(10);
    }
    VersionVector a(av), b(bv);
    const VersionVector m = VersionVector::ElementwiseMax(a, b);
    EXPECT_TRUE(m.DominatesOrEquals(a));
    EXPECT_TRUE(m.DominatesOrEquals(b));
    // Least: every coordinate of m equals a's or b's.
    for (size_t i = 0; i < dim; ++i) {
      EXPECT_TRUE(m[i] == a[i] || m[i] == b[i]);
    }
  }
}

TEST_P(VersionVectorPropertyTest, DominanceIsPartialOrder) {
  Random rng(GetParam() ^ 0xabcdef);
  for (int iteration = 0; iteration < 200; ++iteration) {
    const size_t dim = 1 + rng.Uniform(6);
    std::vector<uint64_t> av(dim), bv(dim), cv(dim);
    for (size_t i = 0; i < dim; ++i) {
      av[i] = rng.Uniform(5);
      bv[i] = rng.Uniform(5);
      cv[i] = rng.Uniform(5);
    }
    VersionVector a(av), b(bv), c(cv);
    // Transitivity.
    if (a.DominatesOrEquals(b) && b.DominatesOrEquals(c)) {
      EXPECT_TRUE(a.DominatesOrEquals(c));
    }
    // Antisymmetry.
    if (a.DominatesOrEquals(b) && b.DominatesOrEquals(a)) {
      EXPECT_EQ(a, b);
    }
  }
}

TEST_P(VersionVectorPropertyTest, MissingUpdatesConsistentWithDominance) {
  Random rng(GetParam() ^ 0x777);
  for (int iteration = 0; iteration < 200; ++iteration) {
    const size_t dim = 1 + rng.Uniform(6);
    std::vector<uint64_t> av(dim), bv(dim);
    for (size_t i = 0; i < dim; ++i) {
      av[i] = rng.Uniform(8);
      bv[i] = rng.Uniform(8);
    }
    VersionVector a(av), b(bv);
    EXPECT_EQ(a.MissingUpdates(b) == 0, a.DominatesOrEquals(b));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VersionVectorPropertyTest,
                         ::testing::Values(1, 2, 3, 17, 99));

}  // namespace
}  // namespace dynamast
