// Tests for the invariant checker: the reporting machinery in
// common/invariant_checker.h and the cluster-wide mastership scans in
// site/invariants.h. The scans are always compiled, so these run in every
// build configuration regardless of DYNAMAST_INVARIANTS.

#include "site/invariants.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/invariant_checker.h"
#include "common/partitioner.h"
#include "log/durable_log.h"
#include "site/site_manager.h"

namespace dynamast::site {
namespace {

constexpr TableId kTable = 0;
constexpr size_t kPartitions = 10;

// Routes invariant failures into an exception so tests observe the report
// without dying; restores abort-on-failure on scope exit.
class ThrowOnFailure {
 public:
  ThrowOnFailure() {
    invariants::SetFailureHandlerForTest(
        [](const char* report) { throw std::runtime_error(report); });
  }
  ~ThrowOnFailure() { invariants::SetFailureHandlerForTest(nullptr); }
};

class InvariantsFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    partitioner_ = std::make_unique<RangePartitioner>(10, kPartitions);
    logs_ = std::make_unique<log::LogManager>(2);
    for (uint32_t i = 0; i < 2; ++i) {
      SiteOptions options;
      options.site_id = i;
      options.num_sites = 2;
      options.read_op_cost = options.write_op_cost = options.apply_op_cost =
          std::chrono::microseconds(0);
      sites_.push_back(std::make_unique<SiteManager>(
          options, partitioner_.get(), logs_.get(), nullptr));
      EXPECT_TRUE(sites_.back()->CreateTable(kTable).ok());
    }
    // Site 0 masters everything: a valid placement.
    for (PartitionId p = 0; p < kPartitions; ++p) {
      sites_[0]->SetMasterOf(p, true);
    }
  }

  void TearDown() override {
    logs_->CloseAll();
    for (auto& s : sites_) s->Stop();
  }

  std::vector<SiteManager*> Pointers() {
    std::vector<SiteManager*> out;
    for (auto& s : sites_) out.push_back(s.get());
    return out;
  }

  std::unique_ptr<RangePartitioner> partitioner_;
  std::unique_ptr<log::LogManager> logs_;
  std::vector<std::unique_ptr<SiteManager>> sites_;
};

TEST_F(InvariantsFixture, ValidPlacementPasses) {
  CheckMastershipInvariant(Pointers(), kPartitions,
                           /*require_exactly_one=*/true, "test");
}

TEST_F(InvariantsFixture, DoubleMasterIsReported) {
  ThrowOnFailure guard;
  sites_[1]->SetMasterOf(3, true);  // injected violation: two masters for p3
  std::string report;
  try {
    CheckMastershipInvariant(Pointers(), kPartitions,
                             /*require_exactly_one=*/false, "unit-test");
  } catch (const std::runtime_error& e) {
    report = e.what();
  }
  EXPECT_NE(report.find("INVARIANT VIOLATED"), std::string::npos) << report;
  EXPECT_NE(report.find("unit-test"), std::string::npos) << report;
}

TEST_F(InvariantsFixture, ZeroMastersAllowedMidTransfer) {
  // A released-but-not-granted partition has no master; legal while a
  // transfer is in flight.
  sites_[0]->SetMasterOf(5, false);
  CheckMastershipInvariant(Pointers(), kPartitions,
                           /*require_exactly_one=*/false, "test");
}

TEST_F(InvariantsFixture, ZeroMastersRejectedWhenQuiesced) {
  ThrowOnFailure guard;
  sites_[0]->SetMasterOf(5, false);
  std::string report;
  try {
    CheckMastershipInvariant(Pointers(), kPartitions,
                             /*require_exactly_one=*/true, "seal-test");
  } catch (const std::runtime_error& e) {
    report = e.what();
  }
  EXPECT_NE(report.find("INVARIANT VIOLATED"), std::string::npos) << report;
}

TEST_F(InvariantsFixture, MasteredExactlyAtPassesAfterTransfer) {
  sites_[0]->SetMasterOf(2, false);
  sites_[1]->SetMasterOf(2, true);
  CheckMasteredExactlyAt(Pointers(), {2}, /*dest=*/1, "test");
}

TEST_F(InvariantsFixture, MasteredExactlyAtCatchesMissingGrant) {
  ThrowOnFailure guard;
  sites_[0]->SetMasterOf(2, false);  // released but never granted to site 1
  std::string report;
  try {
    CheckMasteredExactlyAt(Pointers(), {2}, /*dest=*/1, "grant-test");
  } catch (const std::runtime_error& e) {
    report = e.what();
  }
  EXPECT_NE(report.find("INVARIANT VIOLATED"), std::string::npos) << report;
}

TEST_F(InvariantsFixture, MasteredExactlyAtCatchesStaleOldMaster) {
  ThrowOnFailure guard;
  sites_[1]->SetMasterOf(2, true);  // granted, but site 0 never released
  std::string report;
  try {
    CheckMasteredExactlyAt(Pointers(), {2}, /*dest=*/1, "release-test");
  } catch (const std::runtime_error& e) {
    report = e.what();
  }
  EXPECT_NE(report.find("INVARIANT VIOLATED"), std::string::npos) << report;
}

// The real abort path (no handler): an injected double-master violation
// kills the process with the report on stderr.
TEST_F(InvariantsFixture, DoubleMasterAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  sites_[1]->SetMasterOf(3, true);
  EXPECT_DEATH(CheckMastershipInvariant(Pointers(), kPartitions,
                                        /*require_exactly_one=*/false,
                                        "death-test"),
               "INVARIANT VIOLATED");
}

TEST(InvariantMacroTest, MatchesBuildConfiguration) {
#if DYNAMAST_INVARIANTS_ENABLED
  ThrowOnFailure guard;
  EXPECT_THROW(DYNAMAST_INVARIANT(1 + 1 == 3, "arithmetic is broken"),
               std::runtime_error);
  DYNAMAST_INVARIANT(1 + 1 == 2, "never fires");
#else
  // Compiled out: the condition is not even evaluated.
  bool evaluated = false;
  DYNAMAST_INVARIANT(((evaluated = true)), "disabled");
  EXPECT_FALSE(evaluated);
#endif
}

TEST(InvariantMacroTest, FailureReportContainsLocation) {
  invariants::SetFailureHandlerForTest(
      [](const char* report) { throw std::runtime_error(report); });
  std::string report;
  try {
    invariants::Failure("some_file.cc", 42, "x == y", "custom message");
  } catch (const std::runtime_error& e) {
    report = e.what();
  }
  invariants::SetFailureHandlerForTest(nullptr);
  EXPECT_NE(report.find("some_file.cc:42"), std::string::npos) << report;
  EXPECT_NE(report.find("x == y"), std::string::npos) << report;
  EXPECT_NE(report.find("custom message"), std::string::npos) << report;
}

}  // namespace
}  // namespace dynamast::site
