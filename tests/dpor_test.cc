// Engine-direct tests for the two-mode scheduler (common/scheduler) and
// the DPOR driver (common/dpor). These bypass the hook-site macros and
// call the engine API directly, so they run identically in default and
// -DDYNAMAST_SCHED_FUZZ=ON builds: trace round-trip, record -> replay
// determinism on a racy toy program, explore-mode serial determinism, and
// DPOR's executed/pruned accounting on conflicting vs independent
// threads.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/dpor.h"
#include "common/sched_trace.h"
#include "common/scheduler.h"

namespace dynamast::sched {
namespace {

// ---- Trace container -------------------------------------------------

TEST(SchedTraceTest, SerializeParseRoundTrips) {
  Trace t;
  t.seed = 12345;
  t.meta["system"] = "dynamast";
  t.meta["workload"] = "ycsb with spaces";  // escaping exercised
  t.threads = {"main", "client/0", "odd %name"};
  t.objects = {{"site.state", "main", 0},
               {"site.state", "main", 1},
               {"log append", "client/0", 0}};
  t.entries = {{0, OpKind::kMutexLock, 0},
               {1, OpKind::kMutexUnlock, 0},
               {2, OpKind::kLogAppend, 2},
               {0, OpKind::kNetDeliver, 1},
               {1, OpKind::kGateGrant, 1},
               {2, OpKind::kMutexLockShared, 0},
               {2, OpKind::kMutexUnlockShared, 0},
               {0, OpKind::kMarker, 0}};

  Trace parsed;
  ASSERT_TRUE(Trace::Parse(t.Serialize(), &parsed).ok());
  EXPECT_EQ(parsed.seed, t.seed);
  EXPECT_EQ(parsed.meta, t.meta);
  EXPECT_EQ(parsed.threads, t.threads);
  ASSERT_EQ(parsed.objects.size(), t.objects.size());
  for (size_t i = 0; i < t.objects.size(); ++i) {
    EXPECT_TRUE(parsed.objects[i] == t.objects[i]) << "object " << i;
  }
  ASSERT_EQ(parsed.entries.size(), t.entries.size());
  for (size_t i = 0; i < t.entries.size(); ++i) {
    EXPECT_EQ(parsed.entries[i].thread, t.entries[i].thread) << i;
    EXPECT_EQ(parsed.entries[i].kind, t.entries[i].kind) << i;
    EXPECT_EQ(parsed.entries[i].object, t.entries[i].object) << i;
  }
}

TEST(SchedTraceTest, FileRoundTripAndCorruptionDetection) {
  Trace t;
  t.seed = 7;
  t.threads = {"main"};
  t.objects = {{"lock", "main", 0}};
  t.entries = {{0, OpKind::kMutexLock, 0}, {0, OpKind::kMutexUnlock, 0}};
  const std::string path = ::testing::TempDir() + "sched_trace_roundtrip.txt";
  ASSERT_TRUE(t.DumpToFile(path).ok());
  Trace loaded;
  ASSERT_TRUE(Trace::LoadFromFile(path, &loaded).ok());
  EXPECT_EQ(loaded.entries.size(), 2u);

  Trace bad;
  EXPECT_FALSE(Trace::Parse("e 0 notakind 0\n", &bad).ok());
  EXPECT_FALSE(Trace::Parse("seed zebra\n", &bad).ok());
}

TEST(SchedTraceTest, ConflictRelation) {
  // Only shared-shared commutes; everything else on one object conflicts.
  EXPECT_FALSE(OpsConflict(OpKind::kMutexLockShared, OpKind::kMutexLockShared));
  EXPECT_TRUE(OpsConflict(OpKind::kMutexLock, OpKind::kMutexLock));
  EXPECT_TRUE(OpsConflict(OpKind::kMutexLock, OpKind::kMutexLockShared));
  EXPECT_TRUE(OpsConflict(OpKind::kLogAppend, OpKind::kLogAppend));
  EXPECT_TRUE(OpsConflict(OpKind::kNetDeliver, OpKind::kNetDeliver));
}

// ---- Toy racy program ------------------------------------------------
//
// `threads` workers, each appending its id to a shared vector `iters`
// times under a real mutex whose operations are traced through the engine
// API. The appended sequence IS the scheduling decision stream: equal
// sequences == equal schedules.

struct ToyResult {
  std::vector<int> order;
};

ToyResult RunToy(int threads, int iters, uint32_t extra_independent = 0) {
  ToyResult result;
  std::mutex mu;
  const uint32_t uid = RegisterObject("toy.lock");
  std::vector<std::thread> workers;
  workers.reserve(threads + extra_independent);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      ThreadGuard guard("toy/" + std::to_string(t));
      for (int i = 0; i < iters; ++i) {
        {
          OpScope op(OpKind::kMutexLock, uid);
          mu.lock();
        }
        result.order.push_back(t);
        Op(OpKind::kMutexUnlock, uid);
        mu.unlock();
      }
    });
  }
  // Independent workers touch their own private object: their position in
  // the schedule is irrelevant to the outcome, which is exactly what DPOR
  // must prove and prune.
  for (uint32_t t = 0; t < extra_independent; ++t) {
    workers.emplace_back([&, t] {
      ThreadGuard guard("indep/" + std::to_string(t));
      std::mutex private_mu;
      const uint32_t my_uid = RegisterObject("toy.private");
      for (int i = 0; i < iters; ++i) {
        {
          OpScope op(OpKind::kMutexLock, my_uid);
          private_mu.lock();
        }
        Op(OpKind::kMutexUnlock, my_uid);
        private_mu.unlock();
      }
    });
  }
  {
    ScopedBlocked blocked;
    for (auto& w : workers) w.join();
  }
  return result;
}

TEST(RecordReplayTest, ReplayReproducesRecordedInterleaving) {
  ResetIdentities();
  StartRecord(/*seed=*/99, /*fuzz_layer=*/false);
  const ToyResult recorded = RunToy(3, 8);
  const Trace trace = StopRecord();
  ASSERT_EQ(recorded.order.size(), 24u);
  ASSERT_FALSE(trace.entries.empty());
  EXPECT_EQ(trace.entries.size(), 48u);  // lock + unlock per append

  for (int round = 0; round < 2; ++round) {
    ResetIdentities();
    StartReplay(trace);
    const ToyResult replayed = RunToy(3, 8);
    const ReplayResult r = StopReplay();
    EXPECT_TRUE(r.clean) << "round " << round << ": " << r.ToString();
    EXPECT_EQ(r.consumed, trace.entries.size());
    EXPECT_EQ(replayed.order, recorded.order) << "round " << round;
  }
}

TEST(RecordReplayTest, FuzzLayerRunsAreStillExactlyReplayable) {
  ResetIdentities();
  StartRecord(/*seed=*/0xf22, /*fuzz_layer=*/true);
  const ToyResult recorded = RunToy(2, 6);
  const Trace trace = StopRecord();

  ResetIdentities();
  StartReplay(trace);
  const ToyResult replayed = RunToy(2, 6);
  const ReplayResult r = StopReplay();
  EXPECT_TRUE(r.clean) << r.ToString();
  EXPECT_EQ(replayed.order, recorded.order);
}

TEST(RecordReplayTest, DivergenceIsDetectedNotDeadlocked) {
  ResetIdentities();
  StartRecord(33, false);
  (void)RunToy(2, 4);
  Trace trace = StopRecord();
  ASSERT_GE(trace.entries.size(), 4u);
  // Corrupt the stream: swap the kinds of the first two entries so the
  // live run's first operation mismatches the recorded head.
  std::swap(trace.entries[0].kind, trace.entries[1].kind);

  ResetIdentities();
  StartReplay(trace);
  (void)RunToy(2, 4);
  const ReplayResult r = StopReplay();
  EXPECT_FALSE(r.clean);
  EXPECT_FALSE(r.divergences.empty());
}

TEST(ExploreTest, SerialSchedulerIsDeterministic) {
  std::vector<std::vector<int>> orders;
  std::vector<size_t> steps;
  for (int run = 0; run < 2; ++run) {
    ResetIdentities();
    ExploreOptions eo;
    eo.seed = 5;
    eo.fresh_session = run == 0;
    eo.await_threads = 2;
    StartExplore(eo);
    orders.push_back(RunToy(2, 5).order);
    const ExploreRun er = StopExplore();
    EXPECT_FALSE(er.diverged);
    EXPECT_FALSE(er.hit_step_limit);
    steps.push_back(er.steps.size());
    EXPECT_GE(er.steps.size(), 20u);  // 2 threads x 5 iters x (lock+unlock)
  }
  EXPECT_EQ(orders[0], orders[1])
      << "explore mode must schedule identically for identical options";
  EXPECT_EQ(steps[0], steps[1]);
}

TEST(ExploreTest, ForcedPrefixIsObeyed) {
  // Learn both thread tokens from a free run, then force the *other*
  // thread first and check the appended order flips.
  ResetIdentities();
  ExploreOptions eo;
  eo.fresh_session = true;
  eo.await_threads = 2;
  StartExplore(eo);
  const ToyResult free_run = RunToy(2, 2);
  const ExploreRun er = StopExplore();
  ASSERT_FALSE(free_run.order.empty());
  const int first = free_run.order[0];
  const uint32_t other_token =
      ExploreTokenForName("toy/" + std::to_string(1 - first));

  ResetIdentities();
  ExploreOptions forced;
  forced.forced = {other_token, other_token};  // its lock, then its unlock
  forced.await_threads = 2;
  StartExplore(forced);
  const ToyResult forced_run = RunToy(2, 2);
  const ExploreRun fr = StopExplore();
  EXPECT_FALSE(fr.diverged) << "forced prefix should apply";
  EXPECT_EQ(fr.forced_consumed, 2u);
  ASSERT_FALSE(forced_run.order.empty());
  EXPECT_EQ(forced_run.order[0], 1 - first);
  (void)er;
}

// ---- DPOR driver -----------------------------------------------------

TEST(DporTest, TwoConflictingThreadsExploreBothOrders) {
  // 2 threads x 1 shared lock x 1 iteration: exactly two Mazurkiewicz
  // classes (A before B, B before A). DPOR must run both and prune
  // nothing.
  std::vector<std::vector<int>> seen;
  DporOptions opts;
  opts.max_executions = 16;
  opts.await_threads = 2;
  DporExplorer explorer(opts);
  const DporStats stats = explorer.Run([&] {
    ResetIdentities();
    seen.push_back(RunToy(2, 1).order);
    return DporOutcome{};
  });
  EXPECT_EQ(stats.executed, 2u) << stats.ToString();
  EXPECT_EQ(stats.pruned, 0u) << stats.ToString();
  EXPECT_FALSE(stats.budget_exhausted);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_NE(seen[0], seen[1]) << "the two runs must order the appends "
                                 "differently";
}

TEST(DporTest, IndependentThreadIsPruned) {
  // Same two conflicting threads plus one thread on a private lock: its
  // placement is independent, so the explorer must still only execute the
  // two meaningful orders while reporting pruned alternatives.
  DporOptions opts;
  opts.max_executions = 32;
  opts.await_threads = 3;
  DporExplorer explorer(opts);
  size_t runs = 0;
  const DporStats stats = explorer.Run([&] {
    ResetIdentities();
    (void)RunToy(2, 1, /*extra_independent=*/1);
    ++runs;
    return DporOutcome{};
  });
  EXPECT_FALSE(stats.budget_exhausted) << stats.ToString();
  EXPECT_GT(stats.pruned, 0u)
      << "independent thread's placements must be pruned: "
      << stats.ToString();
  EXPECT_LT(stats.executed, 6u)
      << "near-minimal exploration expected: " << stats.ToString();
  EXPECT_EQ(stats.executed, runs);
}

TEST(DporTest, StopsOnFailureAndCapturesTrace) {
  DporOptions opts;
  opts.max_executions = 16;
  opts.stop_on_failure = true;
  opts.await_threads = 2;
  DporExplorer explorer(opts);
  size_t runs = 0;
  const DporStats stats = explorer.Run([&] {
    ResetIdentities();
    const ToyResult r = RunToy(2, 1);
    ++runs;
    DporOutcome out;
    // "Bug": fails iff thread 1 wins the race for the first append.
    out.failed = !r.order.empty() && r.order[0] == 1;
    out.note = "thread 1 appended first";
    return out;
  });
  EXPECT_TRUE(stats.failure_found) << stats.ToString();
  EXPECT_EQ(stats.failure, "thread 1 appended first");
  EXPECT_FALSE(stats.failure_trace.entries.empty());
  EXPECT_LE(stats.executed, 2u);
  EXPECT_EQ(stats.executed, runs);
}

TEST(DporTest, PreemptionBoundIsAccepted) {
  DporOptions opts;
  opts.max_executions = 8;
  opts.preemption_bound = 0;
  opts.await_threads = 2;
  DporExplorer explorer(opts);
  const DporStats stats = explorer.Run([&] {
    ResetIdentities();
    (void)RunToy(2, 2);
    return DporOutcome{};
  });
  EXPECT_GE(stats.executed, 1u);
  EXPECT_FALSE(stats.failure_found);
}

TEST(DporTest, MinimizeTracePrefixFindsShortestFailingPrefix) {
  Trace t;
  t.threads = {"main"};
  t.objects = {{"lock", "main", 0}};
  for (int i = 0; i < 37; ++i) {
    t.entries.push_back({0,
                         i % 2 == 0 ? OpKind::kMutexLock : OpKind::kMutexUnlock,
                         0});
  }
  size_t calls = 0;
  const Trace minimized = MinimizeTracePrefix(t, [&](const Trace& cand) {
    ++calls;
    return cand.entries.size() >= 13;  // failure needs the first 13 steps
  });
  EXPECT_EQ(minimized.entries.size(), 13u);
  EXPECT_GT(calls, 0u);
  EXPECT_LT(calls, 37u) << "binary search, not linear scan";

  // A trace that no longer fails at all comes back unchanged.
  const Trace flaky = MinimizeTracePrefix(t, [](const Trace&) { return false; });
  EXPECT_EQ(flaky.entries.size(), t.entries.size());
}

// ---- Condvar redirection primitives ----------------------------------

TEST(CvParkTest, NotifyWakesParkerAndDeadlineExpires) {
  // Redirection is armed only in record/replay/explore modes; in kOff,
  // CvPark passes straight through so native waits stay native.
  EXPECT_FALSE(CvRedirectArmed());
  EXPECT_TRUE(CvPark(nullptr, 0, std::chrono::steady_clock::now()));

  ResetIdentities();
  StartRecord(/*seed=*/1, /*fuzz_layer=*/false);
  int dummy = 0;
  const void* cv = &dummy;
  const uint64_t gen = CvGeneration(cv);
  std::atomic<bool> woke{false};
  std::thread parker([&] {
    ThreadGuard guard("parker");
    const bool ok = CvPark(cv, gen,
                           std::chrono::steady_clock::now() +
                               std::chrono::seconds(5));
    woke.store(ok);
  });
  CvNotify(cv);
  parker.join();
  EXPECT_TRUE(woke.load()) << "notify must wake the parked thread";

  // Deadline path: nothing notifies, CvPark must return false quickly.
  const bool timed_out = !CvPark(cv, CvGeneration(cv),
                                 std::chrono::steady_clock::now() +
                                     std::chrono::milliseconds(80));
  EXPECT_TRUE(timed_out);
  (void)StopRecord();
}

}  // namespace
}  // namespace dynamast::sched
