// Cross-system integration matrix: every system (DynaMast, single-master,
// multi-master, partition-store, LEAP) runs every workload (YCSB, TPC-C,
// SmallBank) through the benchmark driver, and the correctness invariants
// that transcend systems are checked: transactions commit, and money /
// counters are conserved under each system's own consistency model.

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <string>

#include "storage/row_buffer.h"
#include "workloads/driver.h"
#include "workloads/smallbank.h"
#include "workloads/system_factory.h"
#include "workloads/tpcc.h"
#include "workloads/ycsb.h"

namespace dynamast::workloads {
namespace {

DeploymentOptions FastDeployment(uint32_t sites) {
  DeploymentOptions options;
  options.num_sites = sites;
  options.worker_slots = 8;
  options.read_op_cost = options.write_op_cost = options.apply_op_cost =
      std::chrono::microseconds(0);
  options.charge_network = false;
  options.weights = selector::StrategyWeights{1.0, 0.5, 3.0, 0.0};
  options.sample_rate = 1.0;
  return options;
}

Driver::Options ShortRun(uint32_t clients) {
  Driver::Options options;
  options.num_clients = clients;
  options.warmup = std::chrono::milliseconds(50);
  options.measure = std::chrono::milliseconds(400);
  return options;
}

class SystemMatrix : public ::testing::TestWithParam<SystemKind> {};

// Long snapshot reads can race version pruning (the 4-version MVCC GC of
// Section V-A1); a real client retries those. Any other error is a bug.
void ExpectOnlySnapshotTooOld(const Driver::Report& report,
                              const std::string& system_name) {
  uint64_t by_reason_total = 0;
  for (const auto& [code, count] : report.aborted_by_reason) {
    EXPECT_EQ(code, "SnapshotTooOld") << system_name << ": " << count;
    by_reason_total += count;
  }
  // The per-reason taxonomy is a partition of the error count.
  EXPECT_EQ(by_reason_total, report.errors) << system_name;
  EXPECT_LT(report.errors, report.committed / 50 + 10) << system_name;
}

TEST_P(SystemMatrix, YcsbRunsCleanly) {
  YcsbWorkload::Options wopts;
  wopts.num_keys = 2000;
  wopts.keys_per_partition = 100;
  wopts.value_size = 32;
  wopts.rmw_pct = 60;
  wopts.affinity_txns = 20;
  YcsbWorkload workload(wopts);
  auto system = MakeSystem(GetParam(), FastDeployment(3),
                           workload.partitioner());
  ASSERT_TRUE(workload.Load(*system).ok());
  system->Seal();
  Driver driver(ShortRun(4));
  Driver::Report report = driver.Run(*system, workload);
  EXPECT_GT(report.committed, 10u) << system->name();
  ExpectOnlySnapshotTooOld(report, system->name());
  system->Shutdown();
}

TEST_P(SystemMatrix, SmallBankConservesMoney) {
  SmallBankWorkload::Options wopts;
  wopts.num_accounts = 1000;
  wopts.accounts_per_partition = 100;
  // Transfer-only update mix: deposits would (intentionally) change the
  // total, so conservation is checked on SendPayment + Balance only.
  wopts.single_update_pct = 0;
  wopts.two_row_update_pct = 85;
  SmallBankWorkload workload(wopts);
  auto system = MakeSystem(GetParam(), FastDeployment(3),
                           workload.partitioner());
  ASSERT_TRUE(workload.Load(*system).ok());
  system->Seal();
  Driver driver(ShortRun(4));
  Driver::Report report = driver.Run(*system, workload);
  EXPECT_GT(report.committed, 10u) << system->name();
  ExpectOnlySnapshotTooOld(report, system->name());

  // Audit: sum all balances. For replicated systems a single read-only
  // snapshot transaction is consistent; for unreplicated systems
  // (partition-store / LEAP) the audit still holds because all writers
  // have finished.
  core::ClientState auditor;
  auditor.id = 12345;
  core::TxnProfile audit;
  audit.read_only = true;
  for (uint64_t account = 0; account < wopts.num_accounts; ++account) {
    audit.read_keys.push_back(RecordKey{SmallBankWorkload::kChecking, account});
    audit.read_keys.push_back(RecordKey{SmallBankWorkload::kSavings, account});
  }
  double total = 0;
  auto logic = [&](core::TxnContext& ctx) -> Status {
    total = 0;  // logic may rerun on a fresher snapshot
    for (const RecordKey& key : audit.read_keys) {
      std::string value;
      Status s = ctx.Get(key, &value);
      if (!s.ok()) return s;
      total += SmallBankWorkload::BalanceOf(value);
    }
    return Status::OK();
  };
  // A 2PC transfer in multi-master commits as two independent local
  // transactions; a replica snapshot taken mid-propagation can show one
  // half without the other (lazy replication has no global snapshot
  // across origin sites). Conservation is therefore checked *eventually*:
  // retry until replicas converge.
  const double expected = wopts.num_accounts * 2 * 10000.0;
  bool conserved = false;
  for (int attempt = 0; attempt < 40 && !conserved; ++attempt) {
    total = 0;
    core::TxnResult result;
    ASSERT_TRUE(system->Execute(auditor, audit, logic, &result).ok())
        << system->name();
    conserved = total > expected - 0.01 && total < expected + 0.01;
    if (!conserved) {
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
  }
  EXPECT_TRUE(conserved) << system->name() << " total=" << total;
  system->Shutdown();
}

TEST_P(SystemMatrix, TpccRunsCleanly) {
  TpccWorkload::Options wopts;
  wopts.num_warehouses = 3;
  wopts.districts_per_warehouse = 2;
  wopts.customers_per_district = 30;
  wopts.num_items = 50;
  wopts.initial_orders_per_district = 3;
  TpccWorkload workload(wopts);
  DeploymentOptions deployment = FastDeployment(3);
  deployment.weights = selector::StrategyWeights::Tpcc();
  auto system = MakeSystem(GetParam(), deployment, workload.partitioner());
  ASSERT_TRUE(workload.Load(*system).ok());
  system->Seal();
  Driver driver(ShortRun(4));
  Driver::Report report = driver.Run(*system, workload);
  EXPECT_GT(report.committed, 10u) << system->name();
  ExpectOnlySnapshotTooOld(report, system->name());
  system->Shutdown();
}

// TPC-C consistency condition: every order inserted has its order lines
// (checked against each system's authoritative copy after the run).
TEST_P(SystemMatrix, TpccOrdersHaveOrderLines) {
  TpccWorkload::Options wopts;
  wopts.num_warehouses = 2;
  wopts.districts_per_warehouse = 2;
  wopts.customers_per_district = 20;
  wopts.num_items = 40;
  wopts.initial_orders_per_district = 2;
  TpccWorkload workload(wopts);
  auto system = MakeSystem(GetParam(), FastDeployment(2),
                           workload.partitioner());
  ASSERT_TRUE(workload.Load(*system).ok());
  system->Seal();
  Driver driver(ShortRun(2));
  Driver::Report report = driver.Run(*system, workload);
  ASSERT_GT(report.committed, 0u);

  // Audit via a consistent read-only transaction per district: every
  // order id below the district's next_o_id exists together with all of
  // its order lines (snapshot atomicity of New-Order's inserts).
  core::ClientState auditor;
  auditor.id = 777;
  for (uint32_t w = 0; w < wopts.num_warehouses; ++w) {
    for (uint32_t d = 0; d < wopts.districts_per_warehouse; ++d) {
      core::TxnProfile audit;
      audit.read_only = true;
      audit.read_partitions = {w};
      auto logic = [&](core::TxnContext& ctx) -> Status {
        std::string raw;
        Status s = ctx.Get(RecordKey{TpccWorkload::kDistrict,
                                     workload.DistrictKey(w, d)}, &raw);
        if (!s.ok()) return s;
        storage::RowBuffer row;
        if (Status p = storage::RowBuffer::Parse(raw, &row); !p.ok()) return p;
        const uint64_t next_o_id = row.GetUint64(2);
        for (uint64_t o = 1; o < next_o_id; ++o) {
          s = ctx.Get(RecordKey{TpccWorkload::kOrder,
                                workload.OrderKey(w, d, o)}, &raw);
          if (!s.ok()) return Status::Internal("missing order");
          storage::RowBuffer order;
          if (Status p = storage::RowBuffer::Parse(raw, &order); !p.ok()) {
            return p;
          }
          const uint64_t lines = order.GetUint64(1);
          for (uint64_t line = 0; line < lines; ++line) {
            s = ctx.Get(RecordKey{TpccWorkload::kOrderLine,
                                  workload.OrderLineKey(
                                      w, d, o, static_cast<uint32_t>(line))},
                        &raw);
            if (!s.ok()) return Status::Internal("missing order line");
          }
        }
        return Status::OK();
      };
      core::TxnResult result;
      Status s = system->Execute(auditor, audit, logic, &result);
      EXPECT_TRUE(s.ok()) << system->name() << " w=" << w << " d=" << d
                          << ": " << s.ToString();
    }
  }
  system->Shutdown();
}

INSTANTIATE_TEST_SUITE_P(AllSystems, SystemMatrix,
                         ::testing::ValuesIn(AllSystems()),
                         [](const ::testing::TestParamInfo<SystemKind>& info) {
                           std::string name = SystemKindName(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace dynamast::workloads
