// Unit tests for the process-wide metrics registry (common/metrics):
// handle stability, sharded-counter correctness under concurrency, the
// cardinality-explosion guard, value reset, and a JSON round-trip of the
// snapshot through the tools JSON reader.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/metrics.h"
#include "tools/json_util.h"

namespace dynamast::metrics {
namespace {

TEST(MetricsTest, CounterHandleIsStableAndSums) {
  Registry registry;
  Counter* c = registry.GetCounter("requests_total", {{"site", "0"}});
  ASSERT_NE(c, nullptr);
  // Same (name, labels) resolves to the same handle; label order is
  // canonicalized, so permutations collapse onto one series.
  EXPECT_EQ(c, registry.GetCounter("requests_total", {{"site", "0"}}));
  Counter* multi = registry.GetCounter(
      "multi_total", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(multi, registry.GetCounter("multi_total", {{"b", "2"}, {"a", "1"}}));

  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->Value(), 42u);
  EXPECT_EQ(registry.CounterValue("requests_total", {{"site", "0"}}), 42u);
  EXPECT_EQ(registry.CounterValue("requests_total", {{"site", "9"}}), 0u);
}

TEST(MetricsTest, ConcurrentIncrementsAreLossless) {
  Registry registry;
  Counter* counter = registry.GetCounter("contended_total");
  Gauge* gauge = registry.GetGauge("contended_gauge");
  Histogram* histogram = registry.GetHistogram("contended_us");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
        gauge->Add(1.0);
        histogram->Observe(static_cast<uint64_t>(i % 1000));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter->Value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(gauge->Value(), static_cast<double>(kThreads) * kPerThread);
  EXPECT_EQ(histogram->recorder().count(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsTest, TypeMismatchAndCardinalityFallToScrap) {
  Registry registry;
  Counter* real = registry.GetCounter("family", {{"k", "v"}});
  // Same family name as a gauge: scrap handle, never exported.
  Gauge* scrap_gauge = registry.GetGauge("family");
  ASSERT_NE(scrap_gauge, nullptr);
  scrap_gauge->Set(7);
  EXPECT_EQ(registry.NumSeries("family"), 1u);

  // Blow past the per-family series cap: the overflow series all share
  // the scrap counter and the family stops growing.
  for (size_t i = 0; i < Registry::kMaxSeriesPerFamily + 50; ++i) {
    registry.GetCounter("hot_family", {{"id", std::to_string(i)}})
        ->Increment();
  }
  EXPECT_EQ(registry.NumSeries("hot_family"), Registry::kMaxSeriesPerFamily);
  Counter* overflow_a = registry.GetCounter("hot_family", {{"id", "99990"}});
  Counter* overflow_b = registry.GetCounter("hot_family", {{"id", "99991"}});
  EXPECT_EQ(overflow_a, overflow_b);  // both are the scrap counter
  EXPECT_NE(overflow_a, real);
}

TEST(MetricsTest, ResetValuesKeepsHandles) {
  Registry registry;
  Counter* counter = registry.GetCounter("c");
  Gauge* gauge = registry.GetGauge("g");
  Histogram* histogram = registry.GetHistogram("h");
  counter->Increment(5);
  gauge->Set(2.5);
  histogram->Observe(100);
  registry.ResetValues();
  EXPECT_EQ(counter->Value(), 0u);
  EXPECT_DOUBLE_EQ(gauge->Value(), 0.0);
  EXPECT_EQ(histogram->recorder().count(), 0u);
  // Handles stay live and usable after the reset.
  counter->Increment();
  EXPECT_EQ(registry.CounterValue("c"), 1u);
  EXPECT_EQ(registry.NumSeries(), 3u);
}

TEST(MetricsTest, SnapshotJsonRoundTrips) {
  Registry registry;
  registry.GetCounter("commits_total", {{"site", "0"}})->Increment(12);
  registry.GetCounter("commits_total", {{"site", "1"}})->Increment(30);
  registry.GetGauge("queue_depth", {{"site", "0"}})->Set(3.5);
  Histogram* h = registry.GetHistogram("latency_us", {{"site", "0"}});
  for (uint64_t v = 1; v <= 100; ++v) h->Observe(v);
  // A label value that needs escaping must survive the round trip.
  registry.GetCounter("weird_total", {{"msg", "a\"b\\c\nd"}})->Increment();

  tools::JsonValue doc;
  ASSERT_TRUE(tools::ParseJson(registry.SnapshotJson(), &doc).ok());
  const tools::JsonValue* families = doc.Find("metrics");
  ASSERT_NE(families, nullptr);
  ASSERT_TRUE(families->is_array());
  ASSERT_EQ(families->array.size(), 4u);

  uint64_t commits = 0;
  bool found_hist = false, found_weird = false;
  for (const tools::JsonValue& family : families->array) {
    const std::string name = family.GetString("name");
    const tools::JsonValue* series = family.Find("series");
    ASSERT_NE(series, nullptr) << name;
    if (name == "commits_total") {
      EXPECT_EQ(family.GetString("type"), "counter");
      for (const tools::JsonValue& s : series->array) {
        commits += s.GetUint64("value");
      }
    } else if (name == "latency_us") {
      EXPECT_EQ(family.GetString("type"), "histogram");
      ASSERT_EQ(series->array.size(), 1u);
      const tools::JsonValue& s = series->array[0];
      EXPECT_EQ(s.GetUint64("count"), 100u);
      EXPECT_GT(s.GetNumber("p99_us"), s.GetNumber("p50_us"));
      EXPECT_EQ(s.Find("labels")->GetString("site"), "0");
      found_hist = true;
    } else if (name == "weird_total") {
      ASSERT_EQ(series->array.size(), 1u);
      EXPECT_EQ(series->array[0].Find("labels")->GetString("msg"),
                "a\"b\\c\nd");
      found_weird = true;
    }
  }
  EXPECT_EQ(commits, 42u);
  EXPECT_TRUE(found_hist);
  EXPECT_TRUE(found_weird);
}

TEST(JsonUtilTest, ParsesScalarsArraysAndRejectsGarbage) {
  tools::JsonValue v;
  ASSERT_TRUE(tools::ParseJson("  {\"a\": [1, 2.5, -3e2], \"b\": true, "
                               "\"c\": null, \"d\": \"x\\u0041\"}  ",
                               &v)
                  .ok());
  const tools::JsonValue* a = v.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_DOUBLE_EQ(a->array[1].number, 2.5);
  EXPECT_DOUBLE_EQ(a->array[2].number, -300.0);
  EXPECT_TRUE(v.Find("b")->bool_value);
  EXPECT_EQ(v.Find("c")->type, tools::JsonValue::Type::kNull);
  EXPECT_EQ(v.GetString("d"), "xA");

  EXPECT_FALSE(tools::ParseJson("{\"a\":}", &v).ok());
  EXPECT_FALSE(tools::ParseJson("{} trailing", &v).ok());
  EXPECT_FALSE(tools::ParseJson("{\"a\":1", &v).ok());
  EXPECT_FALSE(tools::ParseJson("\"unterminated", &v).ok());

  std::vector<tools::JsonValue> rows;
  ASSERT_TRUE(
      tools::ParseJsonLines("{\"n\":1}\n\n{\"n\":2}\n", &rows).ok());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1].GetUint64("n"), 2u);
}

}  // namespace
}  // namespace dynamast::metrics
