// Multi-threaded race stress (tier2). Built for the ThreadSanitizer
// preset (scripts/check.sh runs it under `ctest --preset tsan`) but safe
// and quick in any configuration: ≥4 concurrent client threads hammer a
// small hot key set through the full system stack — routing, remastering,
// locking, commit, log propagation, refresh application — while readers
// take snapshots from every site. Correctness oracle: wrapping-sum
// conservation (transfers preserve the total) and gap-free per-key
// counters (no lost updates).

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baselines/leap_system.h"
#include "baselines/partitioned_system.h"
#include "baselines/static_placement.h"
#include "common/partitioner.h"
#include "common/random.h"
#include "core/dynamast_system.h"
#include "core/system_interface.h"

namespace dynamast {
namespace {

constexpr TableId kTable = 0;
constexpr uint64_t kKeys = 24;
constexpr uint64_t kInitial = 100'000;
constexpr int kWriters = 4;
constexpr int kReaders = 2;
constexpr int kTxnsPerWriter = 150;

std::string Num(uint64_t v) {
  return std::string(reinterpret_cast<const char*>(&v), sizeof(v));
}
uint64_t AsNum(const std::string& s) {
  uint64_t v = 0;
  if (s.size() >= 8) memcpy(&v, s.data(), 8);
  return v;
}

core::Cluster::Options FastCluster(uint32_t sites) {
  core::Cluster::Options options;
  options.num_sites = sites;
  options.network.charge_delays = false;
  options.site.read_op_cost = options.site.write_op_cost =
      options.site.apply_op_cost = std::chrono::microseconds(0);
  options.site.worker_slots = 16;
  return options;
}

// Drives `system` with kWriters transfer threads + kReaders full-scan
// snapshot threads, then audits the final state from a client whose
// session has observed every commit (strong-session SI makes the audit
// wait for full freshness).
//
// `strict_snapshots` asserts that every concurrent reader snapshot
// conserves the sum. That holds for DynaMast (single-site execution under
// SI) but NOT for the baselines: multi-master commits each 2PC branch
// with its own per-site sequence, so a replica's vector snapshot can
// contain a transfer's debit but not its credit; LEAP ships rows as
// always-visible base versions with no cross-site snapshots at all.
// Those anomalies are the paper's motivation, not bugs — for baselines
// the readers only provide scheduling pressure (and TSan coverage).
void RunStress(core::SystemInterface& system, uint64_t seed,
               bool strict_snapshots) {
  ASSERT_TRUE(system.CreateTable(kTable).ok());
  for (uint64_t key = 0; key < kKeys; ++key) {
    ASSERT_TRUE(system.LoadRow(RecordKey{kTable, key}, Num(kInitial)).ok());
  }
  system.Seal();

  std::atomic<bool> stop{false};
  std::atomic<int> committed{0};
  std::atomic<int> snapshot_violations{0};
  std::vector<VersionVector> writer_sessions(kWriters);

  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t] {
      core::ClientState client;
      client.id = static_cast<ClientId>(t + 1);
      Random rng(seed * 97 + t);
      for (int i = 0; i < kTxnsPerWriter; ++i) {
        const uint64_t a = rng.Uniform(kKeys);
        uint64_t b = rng.Uniform(kKeys);
        if (b == a) b = (b + 1) % kKeys;
        const uint64_t amount = 1 + rng.Uniform(10);
        core::TxnProfile profile;
        profile.write_keys = {RecordKey{kTable, a}, RecordKey{kTable, b}};
        profile.read_keys = profile.write_keys;
        Status s = system.Execute(
            client, profile,
            [a, b, amount](core::TxnContext& ctx) -> Status {
              std::string value;
              Status st = ctx.Get(RecordKey{kTable, a}, &value);
              if (!st.ok()) return st;
              st = ctx.Put(RecordKey{kTable, a}, Num(AsNum(value) - amount));
              if (!st.ok()) return st;
              st = ctx.Get(RecordKey{kTable, b}, &value);
              if (!st.ok()) return st;
              return ctx.Put(RecordKey{kTable, b}, Num(AsNum(value) + amount));
            },
            nullptr);
        if (s.ok()) committed.fetch_add(1, std::memory_order_relaxed);
      }
      writer_sessions[t] = client.session;
    });
  }

  // Readers: repeated full-table snapshot scans; every snapshot must
  // conserve the (wrapping) sum regardless of which site serves it.
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      core::ClientState client;
      client.id = static_cast<ClientId>(100 + t);
      core::TxnProfile profile;
      profile.read_only = true;
      for (uint64_t key = 0; key < kKeys; ++key) {
        profile.read_keys.push_back(RecordKey{kTable, key});
      }
      while (!stop.load(std::memory_order_relaxed)) {
        uint64_t sum = 0;
        Status s = system.Execute(
            client, profile,
            [&sum](core::TxnContext& ctx) -> Status {
              sum = 0;
              for (uint64_t key = 0; key < kKeys; ++key) {
                std::string value;
                Status st = ctx.Get(RecordKey{kTable, key}, &value);
                if (!st.ok()) return st;
                sum += AsNum(value);
              }
              return Status::OK();
            },
            nullptr);
        if (strict_snapshots && s.ok() && sum != kKeys * kInitial) {
          snapshot_violations.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  for (int t = 0; t < kWriters; ++t) threads[t].join();
  stop.store(true, std::memory_order_relaxed);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  EXPECT_EQ(snapshot_violations.load(), 0)
      << system.name() << ": torn snapshot observed";
  EXPECT_GT(committed.load(), 0) << system.name() << ": nothing committed";

  // Final audit from a session that has observed every commit: strong-
  // session SI then forces the audit site to be fully fresh, so the sum
  // must be conserved in every system.
  core::ClientState auditor;
  auditor.id = 999;
  for (const VersionVector& session : writer_sessions) {
    auditor.session.MaxWith(session);
  }
  core::TxnProfile profile;
  profile.read_only = true;
  for (uint64_t key = 0; key < kKeys; ++key) {
    profile.read_keys.push_back(RecordKey{kTable, key});
  }
  uint64_t sum = 0;
  Status s = system.Execute(
      auditor, profile,
      [&sum](core::TxnContext& ctx) -> Status {
        sum = 0;  // logic may rerun on a fresher snapshot
        for (uint64_t key = 0; key < kKeys; ++key) {
          std::string value;
          Status st = ctx.Get(RecordKey{kTable, key}, &value);
          if (!st.ok()) return st;
          sum += AsNum(value);
        }
        return Status::OK();
      },
      nullptr);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(sum, kKeys * kInitial) << system.name() << ": sum not conserved";
  system.Shutdown();
}

TEST(RaceStressTest, DynaMast) {
  RangePartitioner partitioner(4, 6);  // 6 partitions of 4 keys: hot transfers
  core::DynaMastSystem::Options options;
  options.cluster = FastCluster(3);
  options.selector.sample_rate = 1.0;
  core::DynaMastSystem system(options, &partitioner);
  RunStress(system, /*seed=*/1, /*strict_snapshots=*/true);
}

TEST(RaceStressTest, MultiMasterBaseline) {
  RangePartitioner partitioner(4, 6);
  auto options = baselines::PartitionedSystem::MultiMaster(
      FastCluster(3), baselines::RangePlacement(6, 3));
  baselines::PartitionedSystem system(options, &partitioner);
  RunStress(system, /*seed=*/2, /*strict_snapshots=*/false);
}

TEST(RaceStressTest, LeapBaseline) {
  RangePartitioner partitioner(4, 6);
  baselines::LeapSystem::Options options;
  options.cluster = FastCluster(3);
  options.placement = baselines::RangePlacement(6, 3);
  baselines::LeapSystem system(options, &partitioner);
  RunStress(system, /*seed=*/3, /*strict_snapshots=*/false);
}

}  // namespace
}  // namespace dynamast
