// Unit tests for the timeline sampler (common/timeline): bounded row
// buffer with drop accounting, strictly-increasing seq/ts, cumulative
// counter values per sample, the JSONL v1 schema via a round-trip
// through the tools JSON reader, and the background-thread lifecycle.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/timeline.h"
#include "tools/json_util.h"

namespace dynamast::timeline {
namespace {

std::string TempPath(const char* name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

TEST(TimelineTest, BoundedBufferDropsAndStampsMonotonically) {
  metrics::Registry registry;
  metrics::Counter* commits = registry.GetCounter("commits_total");
  metrics::Gauge* backlog = registry.GetGauge("backlog");

  TimelineSampler::Options opts;
  opts.registry = &registry;
  opts.max_rows = 5;
  opts.run_label = "test/bounded";
  TimelineSampler sampler(opts);

  for (int i = 0; i < 8; ++i) {
    commits->Increment(10);
    backlog->Set(static_cast<double>(i));
    sampler.SampleOnce();
  }

  const std::vector<TimelineSampler::Row> rows = sampler.Rows();
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(sampler.dropped_rows(), 3u);
  uint64_t last_seq = 0, last_ts = 0;
  uint64_t last_commits = 0;
  for (const TimelineSampler::Row& row : rows) {
    EXPECT_GT(row.seq, last_seq);
    EXPECT_GT(row.ts_us, last_ts);
    last_seq = row.seq;
    last_ts = row.ts_us;
    bool saw_commits = false;
    for (const metrics::Registry::SampledValue& v : row.values) {
      if (v.key == "commits_total") {
        saw_commits = true;
        EXPECT_GT(v.value, static_cast<double>(last_commits));
        last_commits = static_cast<uint64_t>(v.value);
      }
    }
    EXPECT_TRUE(saw_commits);
  }
  EXPECT_EQ(rows.front().seq, 1u);
  EXPECT_EQ(last_commits, 50u);  // 5 retained samples x +10 each
}

TEST(TimelineTest, JsonlRoundTripsThroughToolsReader) {
  metrics::Registry registry;
  registry.GetCounter("site_commits_total", {{"site", "0"}})->Increment(7);
  registry.GetGauge("queue_depth")->Set(2.5);
  registry.GetHistogram("lat_us")->Observe(100);
  registry.GetHistogram("lat_us")->Observe(300);

  TimelineSampler::Options opts;
  opts.registry = &registry;
  opts.run_label = "dynamast/hotspot-shift";
  TimelineSampler sampler(opts);
  sampler.SampleOnce();
  sampler.SampleOnce();

  const std::string path = TempPath("timeline_test.jsonl");
  std::remove(path.c_str());
  ASSERT_TRUE(sampler.AppendJsonl(path).ok());

  std::string contents;
  {
    std::FILE* f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
      contents.append(buf, n);
    }
    std::fclose(f);
  }
  std::vector<tools::JsonValue> docs;
  ASSERT_TRUE(tools::ParseJsonLines(contents, &docs).ok());
  ASSERT_EQ(docs.size(), 2u);
  uint64_t prev_seq = 0;
  for (const tools::JsonValue& doc : docs) {
    EXPECT_EQ(doc.GetString("schema"), "dynamast.timeline.v1");
    EXPECT_EQ(doc.GetString("run"), "dynamast/hotspot-shift");
    EXPECT_GT(doc.GetUint64("seq"), prev_seq);
    prev_seq = doc.GetUint64("seq");
    const tools::JsonValue* values = doc.Find("values");
    ASSERT_NE(values, nullptr);
    ASSERT_TRUE(values->is_object());
    bool commits = false, gauge = false, hist = false;
    for (const auto& [key, value] : values->object) {
      ASSERT_TRUE(value.is_number()) << key;
      if (key == "site_commits_total{site=0}") {
        commits = true;
        EXPECT_EQ(value.number, 7.0);
      } else if (key == "queue_depth") {
        gauge = true;
        EXPECT_DOUBLE_EQ(value.number, 2.5);
      } else if (key == "lat_us") {
        hist = true;
        EXPECT_EQ(value.number, 2.0);  // histogram samples as its count
      }
    }
    EXPECT_TRUE(commits && gauge && hist);
  }
  std::remove(path.c_str());
}

TEST(TimelineTest, BackgroundThreadSamplesAndStopTakesFinalRow) {
  metrics::Registry registry;
  metrics::Counter* ticks = registry.GetCounter("ticks_total");

  TimelineSampler::Options opts;
  opts.registry = &registry;
  opts.period = std::chrono::milliseconds(5);
  opts.run_label = "test/thread";
  TimelineSampler sampler(opts);
  sampler.Start();
  sampler.Start();  // idempotent
  for (int i = 0; i < 10; ++i) {
    ticks->Increment();
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
  }
  sampler.Stop();
  sampler.Stop();  // idempotent

  const std::vector<TimelineSampler::Row> rows = sampler.Rows();
  // Stop() always takes a final sample, so the last row is fresh: it must
  // carry the fully-incremented counter.
  ASSERT_GE(rows.size(), 1u);
  bool found = false;
  for (const metrics::Registry::SampledValue& v : rows.back().values) {
    if (v.key == "ticks_total") {
      found = true;
      EXPECT_EQ(v.value, 10.0);
    }
  }
  EXPECT_TRUE(found);
  uint64_t last_ts = 0;
  for (const TimelineSampler::Row& row : rows) {
    EXPECT_GT(row.ts_us, last_ts);
    last_ts = row.ts_us;
  }
}

}  // namespace
}  // namespace dynamast::timeline
