// Fixture: a helper that sleeps without a DYNAMAST_BLOCKING annotation.
#ifndef FIXTURE_SITE_GATE_H_
#define FIXTURE_SITE_GATE_H_

#include "common/debug_mutex.h"

namespace site {

class Gate {
 public:
  void Enter();
  void Exit();
  void Nap();

 private:
  DYNAMAST_BLOCKING void SlowPath();

  mutable DebugMutex mu_{"site.gate"};
  int slots_ = 0;
};

}  // namespace site

#endif  // FIXTURE_SITE_GATE_H_
