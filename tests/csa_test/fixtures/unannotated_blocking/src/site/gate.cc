#include "site/gate.h"

#include <chrono>
#include <thread>

namespace site {

void Gate::Enter() {
  MutexLock lock(mu_);
  ++slots_;
}

void Gate::Exit() {
  MutexLock lock(mu_);
  --slots_;
  SlowPath();
}

void Gate::Nap() {
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

void Gate::SlowPath() {}

}  // namespace site
