#include "site/gate.h"

namespace site {

void Gate::Enter() {
  MutexLock lock(mu_);
  ++slots_;
}

void Gate::Exit() {
  MutexLock lock(mu_);
  --slots_;
  SlowPath();
}

void Gate::SlowPath() {}

}  // namespace site
