#include "site/gate.h"

#include <cstdlib>

namespace site {

void Gate::Enter() {
  MutexLock lock(mu_);
  ++slots_;
  Reserve();
}

void Gate::Exit() {
  MutexLock lock(mu_);
  --slots_;
  SlowPath();
}

void Gate::Reserve() {
  void* scratch = malloc(64);
  free(scratch);
}

void Gate::SlowPath() {}

}  // namespace site
