// Fixture stand-in for the instrumented mutex (body-exempt in csa.py:
// only the type names matter to the lexical analyzer).
#ifndef FIXTURE_COMMON_DEBUG_MUTEX_H_
#define FIXTURE_COMMON_DEBUG_MUTEX_H_

class DebugMutex {};
class MutexLock {};

#endif  // FIXTURE_COMMON_DEBUG_MUTEX_H_
