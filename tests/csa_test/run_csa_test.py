#!/usr/bin/env python3
"""End-to-end tests for scripts/csa.py.

Runs the analyzer over the fixture trees in fixtures/ — a clean tree
whose profile matches its baseline, plus one seeded violation per
analyzer rule (new blocking edge, bad allowlist entry, unannotated
blocking callee) — and asserts exit codes and messages.  Also asserts
the profile dump is byte-identical across two runs (the committed
baseline must be reproducible).
"""

import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
CSA = os.path.join(REPO, "scripts", "csa.py")
FIXTURES = os.path.join(HERE, "fixtures")

failures = []


def run_csa(root, args=()):
    cmd = [sys.executable, CSA, "--root", os.path.join(FIXTURES, root)]
    cmd += list(args)
    proc = subprocess.run(cmd, capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


def check(name, root, args, want_exit, want_substrings=(), forbid=()):
    code, output = run_csa(root, args)
    problems = []
    if code != want_exit:
        problems.append(f"exit code {code}, wanted {want_exit}")
    for want in want_substrings:
        if want not in output:
            problems.append(f"output lacks {want!r}")
    for bad in forbid:
        if bad in output:
            problems.append(f"output unexpectedly contains {bad!r}")
    if problems:
        failures.append(name)
        print(f"FAIL {name}: " + "; ".join(problems))
        print("  --- csa output ---")
        for line in output.splitlines():
            print(f"  {line}")
    else:
        print(f"ok   {name}")


def check_deterministic(name, root):
    code1, out1 = run_csa(root, ("--dump",))
    code2, out2 = run_csa(root, ("--dump",))
    if code1 != 0 or code2 != 0:
        failures.append(name)
        print(f"FAIL {name}: dump exit codes {code1}/{code2}")
    elif out1 != out2:
        failures.append(name)
        print(f"FAIL {name}: two --dump runs differ")
    else:
        print(f"ok   {name}")


def main():
    check("clean tree matches its baseline", "clean", ("--check",),
          want_exit=0,
          want_substrings=("csa: baseline OK (1 edges",),
          forbid=("new-edge", "allowlist:"))

    check_deterministic("profile dump is deterministic", "clean")

    check("new edge fails naming class, chain and op", "new_edge_bad",
          ("--check",), want_exit=1,
          want_substrings=(
              "csa: new-edge: site.gate: site::Gate::Enter -> "
              "site::Gate::Reserve -> builtin.alloc.malloc",
              "new blocking/expensive work inside the `site.gate` "
              "critical section",
              "add an allowlist entry with a justification",
          ),
          forbid=("site::Gate::Exit",))

    check("update refuses to bake an unjustified new edge", "new_edge_bad",
          ("--update",), want_exit=1,
          want_substrings=(
              "csa: new-edge: site.gate: site::Gate::Enter -> "
              "site::Gate::Reserve -> builtin.alloc.malloc",
              "refusing to bake an unjustified edge into the baseline",
          ))

    check("allowlist: unjustified + unregistered + stale", "bad_allowlist",
          ("--check",), want_exit=1,
          want_substrings=(
              "allowlist[0] (site.gate / blocking:site::Gate::SlowPath) "
              "has no justification",
              "allowlist[1] (site.ghost / builtin.sleep) names lock class "
              "'site.ghost' which is not in the DESIGN.md lock-class "
              "registry",
              "allowlist[2] (site.gate / builtin.alloc.malloc) matches no "
              "current edge (stale entry",
          ))

    check("direct sleep without DYNAMAST_BLOCKING", "unannotated_blocking",
          ("--check",), want_exit=1,
          want_substrings=(
              "csa: unannotated-blocking: src/site/gate.cc:19: "
              "site::Gate::Nap sleeps directly but is not declared "
              "DYNAMAST_BLOCKING",
          ),
          forbid=("new-edge",))

    if failures:
        print(f"\n{len(failures)} csa_test failure(s)", file=sys.stderr)
        return 1
    print("\nall csa_test checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
