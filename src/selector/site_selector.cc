#include "selector/site_selector.h"

#include <algorithm>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/invariant_checker.h"
#include "common/scheduler.h"
#if DYNAMAST_INVARIANTS_ENABLED
#include "site/invariants.h"
#endif

namespace dynamast::selector {

namespace {
// Nominal sizes of remastering RPC payloads: metadata only (a partition id
// list plus a version vector) — this is the heart of the "lightweight
// metadata-based protocol" claim the traffic breakdown (E10) verifies.
constexpr size_t kRemasterRequestBytes = 64;
constexpr size_t kRemasterResponseBytes = 96;
}  // namespace

SiteSelector::SiteSelector(const SelectorOptions& options,
                           std::vector<site::SiteManager*> sites,
                           const Partitioner* partitioner,
                           net::SimulatedNetwork* network)
    : options_(options),
      sites_(std::move(sites)),
      partitioner_(partitioner),
      network_(network),
      tracer_(options.tracer),
      map_(partitioner->NumPartitions(), options.initial_master),
      strategy_(options.weights, options.num_sites),
      counters_(options.num_sites),
      convergence_(partitioner->NumPartitions(),
                   ConvergenceTracker::Options{
                       options.relocalize_stability_window_us,
                       options.metrics}),
      rng_(options.seed) {
  AccessStatistics::Options stats_options = options_.stats;
  stats_options.num_sites = options_.num_sites;
  std::vector<SiteId> initial(partitioner->NumPartitions(),
                              options_.initial_master);
  stats_ = std::make_unique<AccessStatistics>(stats_options, initial);
  if (metrics::Registry* reg = options_.metrics; reg != nullptr) {
    exported_.routes_write =
        reg->GetCounter("selector_routes_total", {{"kind", "write"}});
    exported_.routes_read =
        reg->GetCounter("selector_routes_total", {{"kind", "read"}});
    exported_.remaster_txns = reg->GetCounter("selector_remaster_total");
    exported_.partitions_moved =
        reg->GetCounter("selector_partitions_moved_total");
    for (SiteId s = 0; s < options_.num_sites; ++s) {
      exported_.routed_to_site.push_back(reg->GetCounter(
          "selector_routed_to_site_total", {{"site", std::to_string(s)}}));
    }
    exported_.explain_decisions =
        reg->GetCounter("routing_explain_decisions_total");
    exported_.factor_balance =
        reg->GetGauge("routing_explain_factor_sum", {{"factor", "balance"}});
    exported_.factor_delay =
        reg->GetGauge("routing_explain_factor_sum", {{"factor", "delay"}});
    exported_.factor_intra =
        reg->GetGauge("routing_explain_factor_sum", {{"factor", "intra"}});
    exported_.factor_inter =
        reg->GetGauge("routing_explain_factor_sum", {{"factor", "inter"}});
  }
}

std::vector<RoutingExplain> SiteSelector::RecentExplains() const {
  RawMutexLock guard(explain_mu_);
  return std::vector<RoutingExplain>(explains_.begin(), explains_.end());
}

void SiteSelector::RecordExplain(const std::vector<PartitionId>& partitions,
                                 const std::vector<SiteId>& masters,
                                 std::vector<SiteScore> scores,
                                 SiteId winner) {
  if (exported_.explain_decisions != nullptr && winner < scores.size()) {
    const SiteScore& win = scores[winner];
    exported_.explain_decisions->Increment();
    exported_.factor_balance->Add(win.f_balance);
    exported_.factor_delay->Add(win.f_refresh_delay);
    exported_.factor_intra->Add(win.f_intra_txn);
    exported_.factor_inter->Add(win.f_inter_txn);
  }
  RoutingExplain explain;
  explain.ts_us = metrics::NowMicros();
  explain.partitions = partitions;
  explain.masters = masters;
  explain.scores = std::move(scores);
  explain.winner = winner;
  RawMutexLock guard(explain_mu_);
  explain.seq = ++explain_seq_;
  explains_.push_back(std::move(explain));
  if (explains_.size() > kMaxExplains) explains_.pop_front();
}

void SiteSelector::InstallPlacement(
    const std::vector<SiteId>& master_of_partition) {
  for (PartitionId p = 0; p < master_of_partition.size(); ++p) {
    const SiteId owner = master_of_partition[p];
    map_.LockExclusive(p);
    map_.SetMaster(p, owner);
    map_.UnlockExclusive(p);
    stats_->OnRemaster(p, owner);
    for (SiteId s = 0; s < options_.num_sites; ++s) {
      sites_[s]->SetMasterOf(p, s == owner);
    }
  }
}

void SiteSelector::MaybeSample(ClientId client,
                               const std::vector<PartitionId>& parts) {
  const auto now = std::chrono::steady_clock::now();
  bool sample;
  {
    MutexLock guard(rng_mu_);
    if (options_.adaptive_sampling) {
      if (now - sample_window_start_ >= std::chrono::seconds(1)) {
        // New window: if the last one overshot the budget, throttle;
        // if it was comfortably below, recover toward the configured rate.
        if (samples_in_window_ > options_.max_samples_per_second) {
          effective_sample_rate_ *=
              static_cast<double>(options_.max_samples_per_second) /
              static_cast<double>(samples_in_window_);
        } else if (samples_in_window_ <
                   options_.max_samples_per_second / 2) {
          effective_sample_rate_ = std::min(1.0, effective_sample_rate_ * 2);
        }
        sample_window_start_ = now;
        samples_in_window_ = 0;
      }
    }
    const double rate = options_.adaptive_sampling
                            ? options_.sample_rate * effective_sample_rate_
                            : options_.sample_rate;
    sample = rng_.Bernoulli(rate);
    if (sample) ++samples_in_window_;
  }
  if (sample) {
    stats_->RecordWriteSet(client, parts, now);
  }
}

double SiteSelector::EffectiveSampleRate() const {
  MutexLock guard(rng_mu_);
  return options_.adaptive_sampling
             ? options_.sample_rate * effective_sample_rate_
             : options_.sample_rate;
}

Status SiteSelector::RouteWrite(ClientId client,
                                const std::vector<RecordKey>& write_keys,
                                const VersionVector& client_session,
                                RouteResult* out) {
  std::vector<PartitionId> partitions;
  partitions.reserve(write_keys.size());
  for (const RecordKey& key : write_keys) {
    partitions.push_back(partitioner_->PartitionOf(key));
  }
  return RouteWritePartitions(client, std::move(partitions), client_session,
                              out);
}

// tsa-escape(selector.partition): dynamic lock set — acquires the
// write set's partition locks in sorted order inside loops, which TSA
// cannot model; the runtime lock-rank checker (partition rank == id)
// enforces the ordering instead.
DYNAMAST_NO_THREAD_SAFETY_ANALYSIS
Status SiteSelector::RouteWritePartitions(ClientId client,
                                          std::vector<PartitionId> partitions,
                                          const VersionVector& client_session,
                                          RouteResult* out) {
  if (partitions.empty()) {
    return Status::InvalidArgument("write route with no partitions");
  }
  std::sort(partitions.begin(), partitions.end());
  partitions.erase(std::unique(partitions.begin(), partitions.end()),
                   partitions.end());
  counters_.write_routes.fetch_add(1, std::memory_order_relaxed);
  if (exported_.routes_write != nullptr) exported_.routes_write->Increment();

  // Fast path: shared locks in sorted order; single-master write sets
  // route without remastering.
  for (PartitionId p : partitions) map_.LockShared(p);
  std::vector<SiteId> masters(partitions.size());
  bool single_sited = true;
  for (size_t i = 0; i < partitions.size(); ++i) {
    masters[i] = map_.MasterOf(partitions[i]);
    if (masters[i] != masters[0]) single_sited = false;
  }
  if (single_sited) {
    const SiteId site = masters[0];
    for (auto it = partitions.rbegin(); it != partitions.rend(); ++it) {
      map_.UnlockShared(*it);
    }
    MaybeSample(client, partitions);
    counters_.routed_to_site[site]->fetch_add(1, std::memory_order_relaxed);
    if (!exported_.routed_to_site.empty()) {
      exported_.routed_to_site[site]->Increment();
    }
    out->site = site;
    out->min_begin_version = client_session;
    out->remastered = false;
    out->partitions_moved = 0;
    return Status::OK();
  }
  for (auto it = partitions.rbegin(); it != partitions.rend(); ++it) {
    map_.UnlockShared(*it);
  }

  // Slow path: exclusive locks in sorted order (prevents concurrent
  // remastering of any of these partitions), then re-check — a concurrent
  // transaction with a common write set may have co-located them already,
  // in which case its remastering is amortized over this transaction too.
  for (PartitionId p : partitions) map_.LockExclusive(p);
  single_sited = true;
  for (size_t i = 0; i < partitions.size(); ++i) {
    masters[i] = map_.MasterOf(partitions[i]);
    if (masters[i] != masters[0]) single_sited = false;
  }
  if (single_sited) {
    const SiteId site = masters[0];
    for (auto it = partitions.rbegin(); it != partitions.rend(); ++it) {
      map_.UnlockExclusive(*it);
    }
    MaybeSample(client, partitions);
    counters_.routed_to_site[site]->fetch_add(1, std::memory_order_relaxed);
    if (!exported_.routed_to_site.empty()) {
      exported_.routed_to_site[site]->Increment();
    }
    out->site = site;
    out->min_begin_version = client_session;
    out->remastered = false;
    out->partitions_moved = 0;
    return Status::OK();
  }

  // Slow path proper: this write set is split across masters. The entry
  // timestamp anchors the convergence tracker's episode windows.
  const uint64_t slow_start_us = metrics::NowMicros();

  // Remastering decision (Eq. 8), evaluating every candidate site.
  RemasterDecisionInput input;
  input.write_partitions = partitions;
  input.current_masters = masters;
  input.client_session = client_session;
  input.site_versions.reserve(sites_.size());
  for (site::SiteManager* s : sites_) {
    input.site_versions.push_back(s->CurrentVersion());
  }
  // Score once, choose from the scores, and keep the per-factor values as
  // the decision's explanation (the Eq. 2-8 reasoning, not just the pick).
  trace::Span decide_span(tracer_, "route_decide", "selector",
                          options_.num_sites, client);
  std::vector<SiteScore> scores;
  strategy_.ScoreSites(input, *stats_, &scores);
  const SiteId dest = strategy_.ChooseFromScores(input, scores);
  decide_span.AddNum("winner", static_cast<double>(dest));
  decide_span.AddNum("f_balance", scores[dest].f_balance);
  decide_span.AddNum("f_refresh_delay", scores[dest].f_refresh_delay);
  decide_span.AddNum("f_intra_txn", scores[dest].f_intra_txn);
  decide_span.AddNum("f_inter_txn", scores[dest].f_inter_txn);
  decide_span.End();
  RecordExplain(partitions, masters, std::move(scores), dest);

  VersionVector out_vv(options_.num_sites);
  uint32_t moved = 0;
  Status s = Remaster(partitions, masters, dest, &out_vv, &moved);
  if (!s.ok()) {
    for (auto it = partitions.rbegin(); it != partitions.rend(); ++it) {
      map_.UnlockExclusive(*it);
    }
    return s;
  }

  for (size_t i = 0; i < partitions.size(); ++i) {
    if (masters[i] != dest) {
      map_.SetMaster(partitions[i], dest);
      stats_->OnRemaster(partitions[i], dest);
    }
  }
#if DYNAMAST_INVARIANTS_ENABLED
  // Still holding the partitions' exclusive transfer locks: every
  // partition of this write set must now be mastered at dest and nowhere
  // else (single-master-per-key, Section III).
  site::CheckMasteredExactlyAt(sites_, partitions, dest, "post-remaster");
#endif
  for (auto it = partitions.rbegin(); it != partitions.rend(); ++it) {
    map_.UnlockExclusive(*it);
  }

  convergence_.OnSlowPathRoute(partitions, masters, dest, slow_start_us,
                               metrics::NowMicros());
  MaybeSample(client, partitions);
  counters_.remastered_txns.fetch_add(1, std::memory_order_relaxed);
  counters_.partitions_remastered.fetch_add(moved, std::memory_order_relaxed);
  counters_.routed_to_site[dest]->fetch_add(1, std::memory_order_relaxed);
  if (exported_.remaster_txns != nullptr) {
    exported_.remaster_txns->Increment();
    exported_.partitions_moved->Increment(moved);
    exported_.routed_to_site[dest]->Increment();
  }

  out->site = dest;
  out->min_begin_version =
      VersionVector::ElementwiseMax(out_vv, client_session);
  out->remastered = true;
  out->partitions_moved = moved;
  return Status::OK();
}

Status SiteSelector::Remaster(const std::vector<PartitionId>& partitions,
                              const std::vector<SiteId>& masters, SiteId dest,
                              VersionVector* out_vv, uint32_t* moved) {
  // Group the partitions to transfer by their current master (Algorithm 1
  // line 2), then run the release->grant chains for the groups in
  // parallel (line 4: "In parallel").
  std::unordered_map<SiteId, std::vector<PartitionId>> groups;
  for (size_t i = 0; i < partitions.size(); ++i) {
    if (masters[i] != dest) groups[masters[i]].push_back(partitions[i]);
  }
  *moved = 0;
  for (const auto& [src, group] : groups) {
    *moved += static_cast<uint32_t>(group.size());
  }

  std::mutex result_mu;
  Status first_error;
  std::vector<std::thread> workers;
  workers.reserve(groups.size());
  const std::string parent = sched::CurrentThreadName();
  for (auto& [src, group] : groups) {
    workers.emplace_back([this, src = src, &group, dest, out_vv, &result_mu,
                          &first_error, &parent] {
      sched::ThreadGuard sched_guard(parent + "/remaster/" +
                                     std::to_string(src));
      // Release RPC to the current master (metadata only).
      if (network_ != nullptr) {
        network_->RoundTrip(net::TrafficClass::kRemastering,
                            kRemasterRequestBytes, kRemasterResponseBytes);
      }
      VersionVector release_vv;
      Status s = sites_[src]->Release(group, dest, &release_vv);
      if (!s.ok()) {
        std::lock_guard<std::mutex> guard(result_mu);
        if (first_error.ok()) first_error = s;
        return;
      }
      // Grant RPC to the destination, immediately after release completes.
      if (network_ != nullptr) {
        network_->RoundTrip(net::TrafficClass::kRemastering,
                            kRemasterRequestBytes, kRemasterResponseBytes);
      }
      VersionVector grant_vv;
      s = sites_[dest]->Grant(group, src, release_vv, &grant_vv);
      std::lock_guard<std::mutex> guard(result_mu);
      if (!s.ok()) {
        if (first_error.ok()) first_error = s;
        return;
      }
      out_vv->MaxWith(grant_vv);  // Algorithm 1 line 9
    });
  }
  {
    sched::ScopedBlocked blocked;
    for (auto& w : workers) w.join();
  }
  return first_error;
}

Status SiteSelector::RouteRead(ClientId client,
                               const VersionVector& client_session,
                               SiteId* out_site) {
  (void)client;
  counters_.read_routes.fetch_add(1, std::memory_order_relaxed);
  if (exported_.routes_read != nullptr) exported_.routes_read->Increment();
  // Gather sites satisfying the session freshness guarantee; pick one at
  // random (Section IV-B: minimizes blocking and spreads load). If none
  // qualify (selector view may be stale), fall back to the freshest site;
  // the begin path will block until the session requirement is met.
  std::vector<SiteId> fresh;
  SiteId freshest = 0;
  uint64_t freshest_total = 0;
  for (SiteId s = 0; s < options_.num_sites; ++s) {
    uint64_t total = 0;
    if (sites_[s]->FreshnessProbe(client_session, &total)) fresh.push_back(s);
    if (total >= freshest_total) {
      freshest_total = total;
      freshest = s;
    }
  }
  if (fresh.empty()) {
    *out_site = freshest;
  } else {
    MutexLock guard(rng_mu_);
    *out_site = fresh[rng_.Uniform(fresh.size())];
  }
  return Status::OK();
}

}  // namespace dynamast::selector
