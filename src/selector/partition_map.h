#ifndef DYNAMAST_SELECTOR_PARTITION_MAP_H_
#define DYNAMAST_SELECTOR_PARTITION_MAP_H_

#include <vector>

#include "common/debug_mutex.h"
#include "common/key.h"

namespace dynamast::selector {

/// PartitionMap is the site selector's record of where the master copy of
/// every partition lives (Section V-B: "for each partition group, DynaMast
/// stores partition information that contains the current master location
/// and a readers-writer lock").
///
/// Routing takes each touched partition's lock in shared mode; remastering
/// upgrades to exclusive mode (by re-acquiring in sorted order, which keeps
/// lock acquisition deadlock-free) so a partition cannot be concurrently
/// remastered by two transactions.
class PartitionMap {
 public:
  explicit PartitionMap(size_t num_partitions, SiteId initial_master = 0)
      : entries_(num_partitions) {
    for (PartitionId p = 0; p < entries_.size(); ++p) {
      entries_[p].master = initial_master;
      // Partition locks nest (routing holds its whole write set's locks)
      // but only in ascending partition order; the rank lets the debug
      // checker enforce exactly that protocol.
      entries_[p].mu.set_rank(p);
    }
  }

  PartitionMap(const PartitionMap&) = delete;
  PartitionMap& operator=(const PartitionMap&) = delete;

  size_t NumPartitions() const { return entries_.size(); }

  /// Master lookup/update; the caller must hold partition `p`'s lock (via
  /// LockShared / LockExclusive below).
  SiteId MasterOf(PartitionId p) const
      DYNAMAST_REQUIRES_SHARED(entries_[p].mu) {
    return entries_[p].master;
  }
  void SetMaster(PartitionId p, SiteId site)
      DYNAMAST_REQUIRES(entries_[p].mu) {
    entries_[p].master = site;
  }

  /// Locked single-partition lookup, for diagnostics and read paths that
  /// tolerate immediate staleness.
  SiteId MasterOfLocked(PartitionId p) const {
    const Entry& e = entries_[p];
    ReaderMutexLock lock(e.mu);
    return e.master;
  }

  void LockShared(PartitionId p) const
      DYNAMAST_ACQUIRE_SHARED(entries_[p].mu) {
    entries_[p].mu.lock_shared();
  }
  void UnlockShared(PartitionId p) const
      DYNAMAST_RELEASE_SHARED(entries_[p].mu) {
    entries_[p].mu.unlock_shared();
  }
  void LockExclusive(PartitionId p) const DYNAMAST_ACQUIRE(entries_[p].mu) {
    entries_[p].mu.lock();
  }
  void UnlockExclusive(PartitionId p) const DYNAMAST_RELEASE(entries_[p].mu) {
    entries_[p].mu.unlock();
  }

  /// Number of partitions currently mastered at each site (diagnostics /
  /// experiments). Takes shared locks partition by partition.
  std::vector<size_t> MasterCounts(uint32_t num_sites) const;

 private:
  struct Entry {
    mutable DebugSharedMutex mu{"selector.partition"};
    SiteId master DYNAMAST_GUARDED_BY(mu) = 0;
  };
  // Fixed at construction; Entry is neither movable nor copyable.
  mutable std::vector<Entry> entries_;
};

}  // namespace dynamast::selector

#endif  // DYNAMAST_SELECTOR_PARTITION_MAP_H_
