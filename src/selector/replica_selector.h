#ifndef DYNAMAST_SELECTOR_REPLICA_SELECTOR_H_
#define DYNAMAST_SELECTOR_REPLICA_SELECTOR_H_

#include <atomic>
#include <mutex>
#include <vector>

#include "common/debug_mutex.h"
#include "common/key.h"
#include "common/partitioner.h"
#include "selector/site_selector.h"

namespace dynamast::selector {

/// ReplicaSiteSelector implements the distributed site-selector design of
/// the paper's Appendix I: a read-mostly replica of the (single-master)
/// site selector that clients can query instead of the master.
///
///  * It holds a cached copy of the master-location metadata, refreshed
///    by Sync() (in a deployment, the master would push deltas; here the
///    refresh copies the master's map — remastering is rare, so the cache
///    is almost always current).
///  * A write transaction whose cached master locations are single-sited
///    is routed locally, with no master-selector involvement.
///  * If the cached locations span sites (remastering would be needed) —
///    or if the cache turns out to be stale and the data site aborts the
///    transaction with NotMaster — the client falls back to the master
///    selector, which alone performs remastering. Correctness is
///    therefore unchanged: all mastership transfers remain serialized
///    through one selector, and stale routes are caught by the site
///    managers' mastership checks.
class ReplicaSiteSelector {
 public:
  /// `master` and `partitioner` must outlive the replica.
  ReplicaSiteSelector(SiteSelector* master, const Partitioner* partitioner);

  ReplicaSiteSelector(const ReplicaSiteSelector&) = delete;
  ReplicaSiteSelector& operator=(const ReplicaSiteSelector&) = delete;

  /// Refreshes the cached master locations from the master selector.
  void Sync() DYNAMAST_EXCLUDES(cache_mu_);

  /// Attempts a local routing decision. Returns:
  ///  * OK and a filled RouteResult when the cached write set is
  ///    single-sited (the common case);
  ///  * Unavailable when the write set requires remastering — the caller
  ///    must fall back to the master selector's RouteWrite.
  Status TryRouteWrite(ClientId client,
                       const std::vector<RecordKey>& write_keys,
                       const VersionVector& client_session, RouteResult* out);
  Status TryRouteWritePartitions(ClientId client,
                                 std::vector<PartitionId> partitions,
                                 const VersionVector& client_session,
                                 RouteResult* out) DYNAMAST_EXCLUDES(cache_mu_);

  /// Read routing never requires mastership knowledge; it is served by
  /// the replica exactly as by the master (Appendix I: "read-only
  /// transaction routing does not change").
  Status RouteRead(ClientId client, const VersionVector& client_session,
                   SiteId* out_site) {
    return master_->RouteRead(client, client_session, out_site);
  }

  uint64_t local_routes() const { return local_routes_.load(std::memory_order_relaxed); }
  uint64_t fallbacks() const { return fallbacks_.load(std::memory_order_relaxed); }
  uint64_t syncs() const { return syncs_.load(std::memory_order_relaxed); }

 private:
  SiteSelector* master_;
  const Partitioner* partitioner_;

  mutable DebugMutex cache_mu_{"selector.replica_cache"};
  std::vector<SiteId> cached_master_ DYNAMAST_GUARDED_BY(cache_mu_);

  std::atomic<uint64_t> local_routes_{0};
  std::atomic<uint64_t> fallbacks_{0};
  std::atomic<uint64_t> syncs_{0};
};

}  // namespace dynamast::selector

#endif  // DYNAMAST_SELECTOR_REPLICA_SELECTOR_H_
