#ifndef DYNAMAST_SELECTOR_CONVERGENCE_TRACKER_H_
#define DYNAMAST_SELECTOR_CONVERGENCE_TRACKER_H_

#include <cstdint>
#include <vector>

#include "common/debug_mutex.h"
#include "common/key.h"
#include "common/metrics.h"

namespace dynamast::selector {

/// Measures how fast remastering re-converges placement after an access
/// shift (the ROADMAP's time-to-relocalize metric; see DESIGN.md,
/// "Timelines & convergence tracking"). Per partition it tracks one
/// *relocalization episode*:
///
///   * a slow-path write route that finds the partition mastered away from
///     its destination opens the episode (first remote-access burst);
///   * every remastering of the partition stamps the episode's latest
///     transition;
///   * the episode closes when a later touch (or Flush) observes that the
///     latest transition has stood unchallenged for the stability window —
///     that transition is the one that stabilized, and the episode's
///     duration (first remote burst -> stabilizing transition) is recorded
///     into selector_time_to_relocalize_us, with
///     selector_relocalized_partitions_total counting closed episodes.
///
/// A partition that moves once and sticks therefore reports its remaster
/// latency; one that ping-pongs between sites accumulates the churn until
/// mastership finally settles. Fast-path routes never touch the tracker:
/// a partition already mastered where it is written is converged, and the
/// hot path stays free of tracker cost.
///
/// Thread safety: internal RawMutex (below the scheduler layer, like the
/// explain ring); episode closes observe the histogram outside the lock.
class ConvergenceTracker {
 public:
  struct Options {
    /// A transition must stand unchallenged this long to count as stable.
    uint64_t stability_window_us = 500'000;
    /// Registry to export into; null disables export (episodes are still
    /// tracked and countable via relocalized()/open_windows()).
    metrics::Registry* metrics = nullptr;
  };

  ConvergenceTracker(size_t num_partitions, const Options& options);

  ConvergenceTracker(const ConvergenceTracker&) = delete;
  ConvergenceTracker& operator=(const ConvergenceTracker&) = delete;

  /// Records one slow-path routing decision that remastered to `dest`:
  /// `masters` holds the pre-decision master of each partition (parallel
  /// to `partitions`), `route_start_us` the slow path's entry time, and
  /// `now_us` the post-remaster completion time. Partitions with
  /// masters[i] == dest are stability probes only; the rest transitioned.
  void OnSlowPathRoute(const std::vector<PartitionId>& partitions,
                       const std::vector<SiteId>& masters, SiteId dest,
                       uint64_t route_start_us, uint64_t now_us)
      DYNAMAST_EXCLUDES(mu_);

  /// Closes episodes whose latest transition has been stable for the
  /// window as of `now_us`. With `force`, every episode that has seen a
  /// transition closes regardless of age — end-of-run reporting, where
  /// "the workload stopped" is as stable as it gets.
  void Flush(uint64_t now_us, bool force = false) DYNAMAST_EXCLUDES(mu_);

  /// Episodes closed so far / currently open.
  uint64_t relocalized() const DYNAMAST_EXCLUDES(mu_);
  size_t open_windows() const DYNAMAST_EXCLUDES(mu_);

 private:
  struct PartitionState {
    uint64_t window_start_us = 0;     // 0 = no open episode
    uint64_t last_transition_us = 0;  // 0 = no transition yet
  };

  // Closes states_[p] if its transition is old enough (or forced);
  // returns the episode duration via *duration_us.
  bool MaybeCloseLocked(PartitionState* state, uint64_t now_us, bool force,
                        uint64_t* duration_us) DYNAMAST_REQUIRES(mu_);

  void Export(const uint64_t* durations, size_t n);

  const Options options_;

  mutable RawMutex mu_;
  std::vector<PartitionState> states_ DYNAMAST_GUARDED_BY(mu_);
  uint64_t relocalized_ DYNAMAST_GUARDED_BY(mu_) = 0;

  // Resolved once at construction (null without a registry).
  metrics::Counter* relocalized_total_ = nullptr;
  metrics::Histogram* time_to_relocalize_us_ = nullptr;
};

}  // namespace dynamast::selector

#endif  // DYNAMAST_SELECTOR_CONVERGENCE_TRACKER_H_
