#include "selector/strategy.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace dynamast::selector {

double RemasterStrategy::BalanceDistance(
    const std::vector<double>& site_fractions) {
  const double ideal = 1.0 / static_cast<double>(site_fractions.size());
  double dist = 0;
  for (double f : site_fractions) dist += (ideal - f) * (ideal - f);
  return dist;
}

double RemasterStrategy::BalanceFeature(const RemasterDecisionInput& input,
                                        const AccessStatistics& stats,
                                        SiteId candidate) const {
  // Current allocation B.
  std::vector<double> before(num_sites_);
  for (SiteId s = 0; s < num_sites_; ++s) before[s] = stats.SiteWriteFraction(s);

  // Projected allocation A(S): the write set's partitions move their write
  // frequency to the candidate.
  const double total =
      static_cast<double>(std::max<uint64_t>(stats.TotalWriteCount(), 1));
  std::vector<double> after = before;
  std::unordered_set<PartitionId> seen;
  for (size_t i = 0; i < input.write_partitions.size(); ++i) {
    const PartitionId p = input.write_partitions[i];
    if (!seen.insert(p).second) continue;
    const double share =
        static_cast<double>(stats.PartitionWriteCount(p)) / total;
    after[input.current_masters[i]] -= share;
    after[candidate] += share;
  }

  const double dist_before = BalanceDistance(before);
  const double dist_after = BalanceDistance(after);
  // Eq. 3: change in balance; Eq. 4 (f_balance_rate): how much imbalance
  // is at stake; combined (unnumbered eq. after Eq. 4).
  const double delta = dist_before - dist_after;
  const double rate = std::max(dist_before, dist_after);
  return delta * std::exp(rate);
}

double RemasterStrategy::DelayFeature(const RemasterDecisionInput& input,
                                      SiteId candidate) const {
  // Eq. 5: updates the candidate must still apply before the transaction
  // can begin: the dimension-wise max of the client session vector and the
  // source sites' version vectors, minus the candidate's vector, positive
  // part, L1.
  VersionVector target = input.client_session;
  for (size_t i = 0; i < input.write_partitions.size(); ++i) {
    const SiteId src = input.current_masters[i];
    if (src == candidate) continue;
    if (src < input.site_versions.size()) {
      target.MaxWith(input.site_versions[src]);
    }
  }
  if (candidate >= input.site_versions.size()) return 0;
  return static_cast<double>(
      input.site_versions[candidate].MissingUpdates(target));
}

double RemasterStrategy::LocalizationFeature(
    const RemasterDecisionInput& input, const AccessStatistics& stats,
    SiteId candidate, bool intra) const {
  // Eq. 6 / Eq. 7. After remastering to the candidate, every partition in
  // the write set masters there; other partitions keep their mirror
  // location.
  std::unordered_map<PartitionId, SiteId> master_before;
  for (size_t i = 0; i < input.write_partitions.size(); ++i) {
    master_before[input.write_partitions[i]] = input.current_masters[i];
  }
  auto after_master = [&](PartitionId d) -> SiteId {
    auto it = master_before.find(d);
    if (it != master_before.end()) return candidate;  // part of write set
    return stats.MasterMirror(d);
  };

  double score = 0;
  std::unordered_set<PartitionId> seen;
  for (size_t i = 0; i < input.write_partitions.size(); ++i) {
    const PartitionId d1 = input.write_partitions[i];
    if (!seen.insert(d1).second) continue;
    const auto co = intra ? stats.IntraCoAccess(d1) : stats.InterCoAccess(d1);
    for (const auto& [d2, prob] : co) {
      const SiteId d2_before = master_before.count(d2)
                                   ? master_before[d2]
                                   : stats.MasterMirror(d2);
      const bool together_before = input.current_masters[i] == d2_before;
      const bool together_after = candidate == after_master(d2);
      int single_sited = 0;
      if (together_after && !together_before) single_sited = 1;
      if (!together_after && together_before) single_sited = -1;
      score += prob * static_cast<double>(single_sited);
    }
  }
  return score;
}

void RemasterStrategy::ScoreSites(const RemasterDecisionInput& input,
                                  const AccessStatistics& stats,
                                  std::vector<SiteScore>* out) const {
  out->clear();
  out->reserve(num_sites_);
  for (SiteId s = 0; s < num_sites_; ++s) {
    SiteScore score;
    score.site = s;
    score.f_balance = BalanceFeature(input, stats, s);
    score.f_refresh_delay = DelayFeature(input, s);
    score.f_intra_txn = LocalizationFeature(input, stats, s, /*intra=*/true);
    score.f_inter_txn = LocalizationFeature(input, stats, s, /*intra=*/false);
    score.total = weights_.balance * score.f_balance -
                  weights_.delay * score.f_refresh_delay +
                  weights_.intra_txn * score.f_intra_txn +
                  weights_.inter_txn * score.f_inter_txn;
    out->push_back(score);
  }
}

SiteId RemasterStrategy::ChooseSite(const RemasterDecisionInput& input,
                                    const AccessStatistics& stats) const {
  std::vector<SiteScore> scores;
  ScoreSites(input, stats, &scores);
  return ChooseFromScores(input, scores);
}

SiteId RemasterStrategy::ChooseFromScores(
    const RemasterDecisionInput& input,
    const std::vector<SiteScore>& scores) const {
  // Tie-break preference: the site already mastering the most of the
  // write set needs the fewest release/grant transfers.
  std::vector<size_t> already_mastered(num_sites_, 0);
  for (SiteId m : input.current_masters) {
    if (m < num_sites_) already_mastered[m]++;
  }

  SiteId best = 0;
  for (SiteId s = 1; s < num_sites_; ++s) {
    constexpr double kEpsilon = 1e-12;
    if (scores[s].total > scores[best].total + kEpsilon) {
      best = s;
    } else if (std::abs(scores[s].total - scores[best].total) <= kEpsilon &&
               already_mastered[s] > already_mastered[best]) {
      best = s;
    }
  }
  return best;
}

}  // namespace dynamast::selector
