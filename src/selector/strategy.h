#ifndef DYNAMAST_SELECTOR_STRATEGY_H_
#define DYNAMAST_SELECTOR_STRATEGY_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/key.h"
#include "common/version_vector.h"
#include "selector/access_statistics.h"

namespace dynamast::selector {

/// Hyperparameters of the remastering benefit model (Eq. 8). The paper's
/// Appendix H values per workload are
///   YCSB:      balance=1e6, intra=3, inter=0, delay=0.5
///   SmallBank: balance=1,   intra=3, inter=0, delay=0.5
///   TPC-C:     balance=0.01, intra=inter=0.88, delay=0.05
/// Weights are only meaningful relative to the feature scales of a
/// concrete implementation; our balance feature (squared-fraction
/// distance times exp of the imbalance at stake) produces larger raw
/// values than theirs evidently did, so the YCSB preset here uses
/// balance=100 — large enough that balance dominates localization, small
/// enough not to thrash placements chasing tiny imbalances (calibrated
/// empirically; bench_sensitivity sweeps the axis).
struct StrategyWeights {
  double balance = 1.0;
  double delay = 0.5;
  double intra_txn = 1.0;
  double inter_txn = 1.0;

  static StrategyWeights Ycsb() { return {100.0, 0.5, 3.0, 0.0}; }
  static StrategyWeights SmallBank() { return {1.0, 0.5, 3.0, 0.0}; }
  static StrategyWeights Tpcc() { return {0.01, 0.05, 0.88, 0.88}; }
};

/// One remastering decision's inputs: the write set (as partitions), where
/// each of those partitions is currently mastered, the client's session
/// vector, and the selector's (possibly slightly stale) view of each
/// site's version vector.
struct RemasterDecisionInput {
  std::vector<PartitionId> write_partitions;
  std::vector<SiteId> current_masters;  // parallel to write_partitions
  VersionVector client_session;
  std::vector<VersionVector> site_versions;  // per site
};

/// Per-site feature values, exposed so tests and the sensitivity
/// experiment (E9) can inspect the model's reasoning.
struct SiteScore {
  SiteId site = 0;
  double f_balance = 0;
  double f_refresh_delay = 0;  // missing-update count (a cost)
  double f_intra_txn = 0;
  double f_inter_txn = 0;
  double total = 0;
};

/// RemasterStrategy implements Section IV-A: a weighted linear model over
/// load balance (Eq. 2–4), refresh delay (Eq. 5) and co-access
/// localization (Eq. 6–7) that scores every site as a remastering
/// destination and picks the argmax (Eq. 8).
///
/// Note on Eq. 8's delay term: f_refresh_delay counts updates the
/// destination still has to apply — a cost — so it enters the combined
/// score negatively (see DESIGN.md).
class RemasterStrategy {
 public:
  RemasterStrategy(StrategyWeights weights, uint32_t num_sites)
      : weights_(weights), num_sites_(num_sites) {}

  /// Scores every site; `out` has one entry per site, in site order.
  void ScoreSites(const RemasterDecisionInput& input,
                  const AccessStatistics& stats,
                  std::vector<SiteScore>* out) const;

  /// Returns the best destination site (ties broken toward the site that
  /// already masters the most of the write set, minimizing transfers).
  SiteId ChooseSite(const RemasterDecisionInput& input,
                    const AccessStatistics& stats) const;

  /// Argmax + tie-break over already-computed scores. Split out from
  /// ChooseSite so the selector can score once and reuse the per-factor
  /// values for routing-explain telemetry.
  SiteId ChooseFromScores(const RemasterDecisionInput& input,
                          const std::vector<SiteScore>& scores) const;

  const StrategyWeights& weights() const { return weights_; }
  void set_weights(const StrategyWeights& w) { weights_ = w; }

  /// f_balance_dist: sum over sites of (1/m − freq_i)²; zero when
  /// perfectly balanced (Eq. 2 — see DESIGN.md on the printed formula).
  static double BalanceDistance(const std::vector<double>& site_fractions);

 private:
  double BalanceFeature(const RemasterDecisionInput& input,
                        const AccessStatistics& stats, SiteId candidate) const;
  double DelayFeature(const RemasterDecisionInput& input,
                      SiteId candidate) const;
  /// Shared implementation of Eq. 6 and Eq. 7 (they differ only in which
  /// co-access distribution they read).
  double LocalizationFeature(const RemasterDecisionInput& input,
                             const AccessStatistics& stats, SiteId candidate,
                             bool intra) const;

  StrategyWeights weights_;
  uint32_t num_sites_;
};

}  // namespace dynamast::selector

#endif  // DYNAMAST_SELECTOR_STRATEGY_H_
