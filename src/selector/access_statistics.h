#ifndef DYNAMAST_SELECTOR_ACCESS_STATISTICS_H_
#define DYNAMAST_SELECTOR_ACCESS_STATISTICS_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/debug_mutex.h"
#include "common/key.h"

namespace dynamast::selector {

/// AccessStatistics is the site selector's workload model (Section V-B):
/// partition write frequencies for the load-balance feature, and intra-/
/// inter-transaction co-access counts for the localization features. It is
/// fed by adaptively sampled transaction write sets; samples sit in a
/// bounded transaction history queue and are expired (their contribution
/// decremented) when the queue overflows or they age out, so the model
/// adapts to changing workloads.
///
/// The class also mirrors the current mastership allocation so the balance
/// feature can be evaluated in O(sites): per-site write-frequency totals
/// are maintained incrementally as accesses are recorded and partitions
/// are remastered.
class AccessStatistics {
 public:
  struct Options {
    uint32_t num_sites = 1;
    /// Δt of Eq. 7: accesses by the same client within this window of a
    /// sampled transaction count as inter-transaction co-accesses.
    std::chrono::milliseconds inter_txn_window{100};
    /// Bounded history queue; oldest samples expire on overflow.
    size_t history_capacity = 8192;
    /// Samples also expire after this age (workload drift adaptation).
    std::chrono::milliseconds sample_ttl{15000};
    /// Per-client recent-transaction memory used for inter-txn detection.
    size_t client_history_capacity = 8;
  };

  using TimePoint = std::chrono::steady_clock::time_point;

  AccessStatistics(const Options& options,
                   const std::vector<SiteId>& initial_masters);

  AccessStatistics(const AccessStatistics&) = delete;
  AccessStatistics& operator=(const AccessStatistics&) = delete;

  /// Records one sampled write set: bumps partition write frequencies,
  /// intra-transaction pair counts, and inter-transaction pair counts
  /// against the client's recent transactions within Δt. Expires old
  /// samples opportunistically.
  void RecordWriteSet(ClientId client, const std::vector<PartitionId>& parts,
                      TimePoint now) DYNAMAST_EXCLUDES(mu_);

  /// The selector calls this when it remasters `p`, keeping per-site
  /// write totals consistent with the new allocation.
  void OnRemaster(PartitionId p, SiteId to) DYNAMAST_EXCLUDES(mu_);

  /// Fraction of recorded write accesses that partition-masters at `site`
  /// under the current allocation — freq(X_i) of Eq. 2.
  double SiteWriteFraction(SiteId site) const DYNAMAST_EXCLUDES(mu_);

  /// Current write-frequency count of one partition, and the grand total.
  uint64_t PartitionWriteCount(PartitionId p) const DYNAMAST_EXCLUDES(mu_);
  uint64_t TotalWriteCount() const DYNAMAST_EXCLUDES(mu_);

  /// Co-access distributions of `p`: (other partition, P(other | p)).
  /// Intra = within one transaction (Eq. 6); inter = across transactions
  /// within Δt (Eq. 7).
  std::vector<std::pair<PartitionId, double>> IntraCoAccess(PartitionId p)
      const DYNAMAST_EXCLUDES(mu_);
  std::vector<std::pair<PartitionId, double>> InterCoAccess(PartitionId p)
      const DYNAMAST_EXCLUDES(mu_);

  /// Mastership mirror (selector state, not ground truth at the sites).
  SiteId MasterMirror(PartitionId p) const DYNAMAST_EXCLUDES(mu_);

  size_t HistorySize() const DYNAMAST_EXCLUDES(mu_);

 private:
  struct Sample {
    ClientId client;
    TimePoint time;
    std::vector<PartitionId> parts;
    // Inter-transaction pairs this sample contributed (for exact
    // decrement at expiry): (earlier partition, this partition).
    std::vector<std::pair<PartitionId, PartitionId>> inter_pairs;
  };

  void ExpireLocked(TimePoint now) DYNAMAST_REQUIRES(mu_);
  void RemoveSampleLocked(const Sample& sample) DYNAMAST_REQUIRES(mu_);
  // Operates on intra_/inter_ passed by reference; callers hold mu_.
  void BumpPair(std::unordered_map<PartitionId,
                                   std::unordered_map<PartitionId, int64_t>>& m,
                PartitionId a, PartitionId b, int64_t delta)
      DYNAMAST_REQUIRES(mu_);

  Options options_;

  mutable DebugMutex mu_{"selector.access_stats"};
  // mirror of the allocation
  std::vector<SiteId> master_of_ DYNAMAST_GUARDED_BY(mu_);
  // per-partition write frequency
  std::vector<int64_t> partition_writes_ DYNAMAST_GUARDED_BY(mu_);
  // per-site totals (allocation B)
  std::vector<int64_t> site_writes_ DYNAMAST_GUARDED_BY(mu_);
  int64_t total_writes_ DYNAMAST_GUARDED_BY(mu_) = 0;
  // pair counts: outer key d1, inner key d2 -> count.
  std::unordered_map<PartitionId, std::unordered_map<PartitionId, int64_t>>
      intra_ DYNAMAST_GUARDED_BY(mu_);
  std::unordered_map<PartitionId, std::unordered_map<PartitionId, int64_t>>
      inter_ DYNAMAST_GUARDED_BY(mu_);
  std::deque<Sample> history_ DYNAMAST_GUARDED_BY(mu_);
  std::unordered_map<ClientId, std::deque<std::pair<TimePoint,
                                                    std::vector<PartitionId>>>>
      client_recent_ DYNAMAST_GUARDED_BY(mu_);
};

}  // namespace dynamast::selector

#endif  // DYNAMAST_SELECTOR_ACCESS_STATISTICS_H_
