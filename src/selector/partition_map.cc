#include "selector/partition_map.h"

namespace dynamast::selector {

std::vector<size_t> PartitionMap::MasterCounts(uint32_t num_sites) const {
  std::vector<size_t> counts(num_sites, 0);
  for (const Entry& e : entries_) {
    ReaderMutexLock lock(e.mu);
    if (e.master < num_sites) counts[e.master]++;
  }
  return counts;
}

}  // namespace dynamast::selector
