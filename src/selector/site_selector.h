#ifndef DYNAMAST_SELECTOR_SITE_SELECTOR_H_
#define DYNAMAST_SELECTOR_SITE_SELECTOR_H_

#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "common/debug_mutex.h"
#include "common/key.h"
#include "common/metrics.h"
#include "common/partitioner.h"
#include "common/random.h"
#include "common/status.h"
#include "common/trace.h"
#include "common/version_vector.h"
#include "net/sim_network.h"
#include "selector/access_statistics.h"
#include "selector/convergence_tracker.h"
#include "selector/partition_map.h"
#include "selector/strategy.h"
#include "site/site_manager.h"

namespace dynamast::selector {

/// Routing outcome for a write transaction (Algorithm 1's return value):
/// the execution site and the minimum version vector the transaction must
/// begin on (element-wise max of the grant vectors, folded with the
/// client's session vector by the caller).
struct RouteResult {
  SiteId site = kInvalidSite;
  VersionVector min_begin_version;
  bool remastered = false;
  uint32_t partitions_moved = 0;
};

struct SelectorOptions {
  uint32_t num_sites = 1;
  /// Initial mastership: every partition starts at this site (DynaMast has
  /// no fixed initial placement and must learn; Section VI-A1).
  SiteId initial_master = 0;
  StrategyWeights weights;
  /// Fraction of write sets sampled into the workload model.
  double sample_rate = 0.25;
  /// Adaptive sampling (Section V-B: "adaptively sampling transaction
  /// write sets"): when the sampled-write-set rate exceeds
  /// `max_samples_per_second`, the effective sample rate is scaled down
  /// so statistics maintenance cannot become a bottleneck at high
  /// throughput; it scales back up when load drops.
  bool adaptive_sampling = true;
  uint32_t max_samples_per_second = 2000;
  AccessStatistics::Options stats;
  uint64_t seed = 42;
  /// Stability window for the time-to-relocalize tracker: a mastership
  /// transition must stand unchallenged this long before the episode that
  /// produced it counts as converged.
  uint64_t relocalize_stability_window_us = 500'000;
  /// Metrics registry to export into; null disables selector metric export
  /// (series handles stay unresolved).
  metrics::Registry* metrics = nullptr;
  /// Tracer for routing spans; null disables span recording.
  trace::Tracer* tracer = nullptr;
};

/// One slow-path routing decision with its full Eq. 2-8 reasoning: every
/// candidate site's factor scores and the chosen destination. Kept in a
/// bounded ring (RecentExplains) so tests and operators can ask "why did
/// the selector move these partitions there?".
struct RoutingExplain {
  uint64_t seq = 0;    // monotonic decision number (1-based)
  uint64_t ts_us = 0;  // metrics::NowMicros() at decision time
  std::vector<PartitionId> partitions;
  std::vector<SiteId> masters;  // pre-decision masters, parallel to partitions
  std::vector<SiteScore> scores;  // one per candidate site, in site order
  SiteId winner = kInvalidSite;
};

/// Aggregate selector counters for the evaluation (remastering frequency,
/// routing skew).
struct SelectorCounters {
  std::atomic<uint64_t> write_routes{0};
  std::atomic<uint64_t> read_routes{0};
  std::atomic<uint64_t> remastered_txns{0};
  std::atomic<uint64_t> partitions_remastered{0};
  std::vector<std::unique_ptr<std::atomic<uint64_t>>> routed_to_site;

  explicit SelectorCounters(uint32_t num_sites) {
    for (uint32_t i = 0; i < num_sites; ++i) {
      routed_to_site.push_back(std::make_unique<std::atomic<uint64_t>>(0));
    }
  }
  double RemasterFraction() const {
    const uint64_t routes = write_routes.load(std::memory_order_relaxed);
    return routes == 0 ? 0.0
                       : static_cast<double>(remastered_txns.load(std::memory_order_relaxed)) /
                             static_cast<double>(routes);
  }
};

/// SiteSelector routes transactions and remasters data (Sections III-B,
/// IV, V-B). Clients send it their transaction's write set; it either
/// finds the single site mastering everything, or picks a destination via
/// the strategy model and transfers mastership with parallel release/grant
/// metadata operations, holding the partitions' writer locks so no
/// partition is concurrently remastered twice.
class SiteSelector {
 public:
  /// `sites`, `partitioner` and `network` must outlive the selector;
  /// `network` may be null (tests).
  SiteSelector(const SelectorOptions& options,
               std::vector<site::SiteManager*> sites,
               const Partitioner* partitioner, net::SimulatedNetwork* network);

  SiteSelector(const SiteSelector&) = delete;
  SiteSelector& operator=(const SiteSelector&) = delete;

  /// Routes a write transaction, remastering its partitions to one site if
  /// necessary (Algorithm 1).
  Status RouteWrite(ClientId client, const std::vector<RecordKey>& write_keys,
                    const VersionVector& client_session, RouteResult* out);

  /// Routes by pre-computed partition set (callers that know partitions
  /// without keys, e.g. LEAP-style localization declarations).
  DYNAMAST_HOT_PATH Status
  RouteWritePartitions(ClientId client, std::vector<PartitionId> partitions,
                       const VersionVector& client_session,
                       RouteResult* out);

  /// Routes a read-only transaction to a random session-fresh site
  /// (Section IV-B).
  DYNAMAST_HOT_PATH Status
  RouteRead(ClientId client, const VersionVector& client_session,
            SiteId* out_site) DYNAMAST_EXCLUDES(rng_mu_);

  PartitionMap& partition_map() { return map_; }
  AccessStatistics& statistics() { return *stats_; }
  RemasterStrategy& strategy() { return strategy_; }
  SelectorCounters& counters() { return counters_; }

  /// Time-to-relocalize tracking over slow-path remastering decisions
  /// (DESIGN.md, "Timelines & convergence tracking"). Benches Flush() it
  /// before reporting.
  ConvergenceTracker& convergence() { return convergence_; }

  /// Applies `initial_master` (or a custom placement) to both the map and
  /// the data sites. Call before starting the workload.
  void InstallPlacement(const std::vector<SiteId>& master_of_partition);

  /// The most recent slow-path routing decisions (oldest first, at most
  /// kMaxExplains entries).
  std::vector<RoutingExplain> RecentExplains() const
      DYNAMAST_EXCLUDES(explain_mu_);

  /// Bound on the routing-explain ring.
  static constexpr size_t kMaxExplains = 256;

 private:
  // Performs release/grant transfers of `partitions` (currently mastered
  // per `masters`) to `dest`; returns the element-wise max grant vector.
  Status Remaster(const std::vector<PartitionId>& partitions,
                  const std::vector<SiteId>& masters, SiteId dest,
                  VersionVector* out_vv, uint32_t* moved);

  void MaybeSample(ClientId client, const std::vector<PartitionId>& parts)
      DYNAMAST_EXCLUDES(rng_mu_);

  /// Current effective sample rate (== options().sample_rate unless the
  /// adaptive sampler has throttled it). Exposed for tests/diagnostics.
  double EffectiveSampleRate() const DYNAMAST_EXCLUDES(rng_mu_);

  // Stores one slow-path decision into the explain ring and the
  // routing-explain metrics (factor sums are accumulated for the winner).
  void RecordExplain(const std::vector<PartitionId>& partitions,
                     const std::vector<SiteId>& masters,
                     std::vector<SiteScore> scores, SiteId winner)
      DYNAMAST_EXCLUDES(explain_mu_);

  // Exported metric handles, resolved once at construction (null without
  // a registry).
  struct ExportedMetrics {
    metrics::Counter* routes_write = nullptr;
    metrics::Counter* routes_read = nullptr;
    metrics::Counter* remaster_txns = nullptr;
    metrics::Counter* partitions_moved = nullptr;
    std::vector<metrics::Counter*> routed_to_site;
    metrics::Counter* explain_decisions = nullptr;
    metrics::Gauge* factor_balance = nullptr;
    metrics::Gauge* factor_delay = nullptr;
    metrics::Gauge* factor_intra = nullptr;
    metrics::Gauge* factor_inter = nullptr;
  };

  SelectorOptions options_;
  std::vector<site::SiteManager*> sites_;
  const Partitioner* partitioner_;
  net::SimulatedNetwork* network_;
  trace::Tracer* tracer_;
  ExportedMetrics exported_;

  PartitionMap map_;
  std::unique_ptr<AccessStatistics> stats_;
  RemasterStrategy strategy_;
  SelectorCounters counters_;
  ConvergenceTracker convergence_;

  mutable DebugMutex rng_mu_{"selector.rng"};
  Random rng_ DYNAMAST_GUARDED_BY(rng_mu_);

  // Adaptive sampling state (guarded by rng_mu_, which MaybeSample holds
  // anyway): samples taken in the current one-second window.
  std::chrono::steady_clock::time_point sample_window_start_
      DYNAMAST_GUARDED_BY(rng_mu_){};
  uint64_t samples_in_window_ DYNAMAST_GUARDED_BY(rng_mu_) = 0;
  double effective_sample_rate_ DYNAMAST_GUARDED_BY(rng_mu_) = 1.0;

  // Routing-explain ring (bounded; oldest evicted first). RawMutex: below
  // the scheduler layer, so ring pushes never perturb record/replay.
  mutable RawMutex explain_mu_;
  std::deque<RoutingExplain> explains_ DYNAMAST_GUARDED_BY(explain_mu_);
  uint64_t explain_seq_ DYNAMAST_GUARDED_BY(explain_mu_) = 0;
};

}  // namespace dynamast::selector

#endif  // DYNAMAST_SELECTOR_SITE_SELECTOR_H_
