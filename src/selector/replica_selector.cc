#include "selector/replica_selector.h"

#include <algorithm>

namespace dynamast::selector {

ReplicaSiteSelector::ReplicaSiteSelector(SiteSelector* master,
                                         const Partitioner* partitioner)
    : master_(master), partitioner_(partitioner) {
  Sync();
}

void ReplicaSiteSelector::Sync() {
  std::vector<SiteId> fresh(partitioner_->NumPartitions());
  for (PartitionId p = 0; p < fresh.size(); ++p) {
    fresh[p] = master_->partition_map().MasterOfLocked(p);
  }
  MutexLock guard(cache_mu_);
  cached_master_ = std::move(fresh);
  syncs_.fetch_add(1, std::memory_order_relaxed);
}

Status ReplicaSiteSelector::TryRouteWrite(
    ClientId client, const std::vector<RecordKey>& write_keys,
    const VersionVector& client_session, RouteResult* out) {
  std::vector<PartitionId> partitions;
  partitions.reserve(write_keys.size());
  for (const RecordKey& key : write_keys) {
    partitions.push_back(partitioner_->PartitionOf(key));
  }
  return TryRouteWritePartitions(client, std::move(partitions),
                                 client_session, out);
}

Status ReplicaSiteSelector::TryRouteWritePartitions(
    ClientId client, std::vector<PartitionId> partitions,
    const VersionVector& client_session, RouteResult* out) {
  (void)client;
  if (partitions.empty()) {
    return Status::InvalidArgument("write route with no partitions");
  }
  std::sort(partitions.begin(), partitions.end());
  partitions.erase(std::unique(partitions.begin(), partitions.end()),
                   partitions.end());
  SiteId site = kInvalidSite;
  {
    MutexLock guard(cache_mu_);
    for (PartitionId p : partitions) {
      const SiteId owner = cached_master_[p];
      if (site == kInvalidSite) {
        site = owner;
      } else if (site != owner) {
        // Distributed master copies (per the cache): only the master
        // selector may remaster.
        fallbacks_.fetch_add(1, std::memory_order_relaxed);
        return Status::Unavailable("write set requires remastering");
      }
    }
  }
  local_routes_.fetch_add(1, std::memory_order_relaxed);
  out->site = site;
  out->min_begin_version = client_session;
  out->remastered = false;
  out->partitions_moved = 0;
  return Status::OK();
}

}  // namespace dynamast::selector
