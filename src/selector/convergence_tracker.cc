#include "selector/convergence_tracker.h"

namespace dynamast::selector {

namespace {
// Episode closes per slow-path route are buffered on the stack so the
// histogram observe never happens under the tracker lock and the route
// path never allocates. Write sets are far smaller than this; a route
// that somehow closes more episodes leaves the rest open for Flush.
constexpr size_t kMaxInlineCloses = 32;
}  // namespace

ConvergenceTracker::ConvergenceTracker(size_t num_partitions,
                                       const Options& options)
    : options_(options), states_(num_partitions) {
  if (metrics::Registry* reg = options_.metrics; reg != nullptr) {
    relocalized_total_ =
        reg->GetCounter("selector_relocalized_partitions_total");
    time_to_relocalize_us_ =
        reg->GetHistogram("selector_time_to_relocalize_us");
  }
}

bool ConvergenceTracker::MaybeCloseLocked(PartitionState* state,
                                          uint64_t now_us, bool force,
                                          uint64_t* duration_us) {
  if (state->window_start_us == 0 || state->last_transition_us == 0) {
    return false;
  }
  if (!force &&
      now_us < state->last_transition_us + options_.stability_window_us) {
    return false;
  }
  *duration_us = state->last_transition_us - state->window_start_us;
  state->window_start_us = 0;
  state->last_transition_us = 0;
  ++relocalized_;
  return true;
}

void ConvergenceTracker::Export(const uint64_t* durations, size_t n) {
  if (n == 0) return;
  if (relocalized_total_ != nullptr) {
    relocalized_total_->Increment(n);
  }
  if (time_to_relocalize_us_ != nullptr) {
    for (size_t i = 0; i < n; ++i) {
      time_to_relocalize_us_->Observe(durations[i]);
    }
  }
}

void ConvergenceTracker::OnSlowPathRoute(
    const std::vector<PartitionId>& partitions,
    const std::vector<SiteId>& masters, SiteId dest, uint64_t route_start_us,
    uint64_t now_us) {
  uint64_t closed[kMaxInlineCloses];
  size_t num_closed = 0;
  {
    RawMutexLock guard(mu_);
    for (size_t i = 0; i < partitions.size(); ++i) {
      if (partitions[i] >= states_.size()) continue;
      PartitionState* state = &states_[partitions[i]];
      // Any touch is a stability probe: if the latest transition stood the
      // window until this burst began, that transition stabilized.
      if (num_closed < kMaxInlineCloses) {
        uint64_t duration = 0;
        if (MaybeCloseLocked(state, route_start_us, /*force=*/false,
                             &duration)) {
          closed[num_closed++] = duration;
        }
      }
      if (masters[i] != dest) {
        // Remote burst: opens an episode if none, and this route's
        // remastering is the episode's latest transition.
        if (state->window_start_us == 0) {
          state->window_start_us = route_start_us;
        }
        state->last_transition_us = now_us;
      }
    }
  }
  Export(closed, num_closed);
}

void ConvergenceTracker::Flush(uint64_t now_us, bool force) {
  std::vector<uint64_t> closed;
  {
    RawMutexLock guard(mu_);
    for (PartitionState& state : states_) {
      uint64_t duration = 0;
      if (MaybeCloseLocked(&state, now_us, force, &duration)) {
        closed.push_back(duration);
      }
    }
  }
  Export(closed.data(), closed.size());
}

uint64_t ConvergenceTracker::relocalized() const {
  RawMutexLock guard(mu_);
  return relocalized_;
}

size_t ConvergenceTracker::open_windows() const {
  RawMutexLock guard(mu_);
  size_t open = 0;
  for (const PartitionState& state : states_) {
    if (state.window_start_us != 0) ++open;
  }
  return open;
}

}  // namespace dynamast::selector
