#include "selector/access_statistics.h"

#include <algorithm>

namespace dynamast::selector {

AccessStatistics::AccessStatistics(const Options& options,
                                   const std::vector<SiteId>& initial_masters)
    : options_(options),
      master_of_(initial_masters),
      partition_writes_(initial_masters.size(), 0),
      site_writes_(options.num_sites, 0) {}

void AccessStatistics::BumpPair(
    std::unordered_map<PartitionId,
                       std::unordered_map<PartitionId, int64_t>>& m,
    PartitionId a, PartitionId b, int64_t delta) {
  auto& count = m[a][b];
  count += delta;
  if (count <= 0) {
    m[a].erase(b);
    if (m[a].empty()) m.erase(a);
  }
}

void AccessStatistics::RecordWriteSet(ClientId client,
                                      const std::vector<PartitionId>& parts,
                                      TimePoint now) {
  MutexLock guard(mu_);
  ExpireLocked(now);

  Sample sample;
  sample.client = client;
  sample.time = now;
  sample.parts = parts;

  for (PartitionId p : parts) {
    partition_writes_[p]++;
    site_writes_[master_of_[p]]++;
    total_writes_++;
  }
  // Intra-transaction pair counts (both directions, so P(d2|d1) lookups
  // are a single map probe).
  for (size_t i = 0; i < parts.size(); ++i) {
    for (size_t j = 0; j < parts.size(); ++j) {
      if (i == j) continue;
      BumpPair(intra_, parts[i], parts[j], +1);
    }
  }
  // Inter-transaction co-access against this client's recent transactions
  // within the Δt window (Eq. 7).
  auto& recent = client_recent_[client];
  for (const auto& [t, prev_parts] : recent) {
    if (now - t > options_.inter_txn_window) continue;
    for (PartitionId d1 : prev_parts) {
      for (PartitionId d2 : parts) {
        if (d1 == d2) continue;
        BumpPair(inter_, d1, d2, +1);
        BumpPair(inter_, d2, d1, +1);
        sample.inter_pairs.emplace_back(d1, d2);
      }
    }
  }
  recent.emplace_back(now, parts);
  while (recent.size() > options_.client_history_capacity) {
    recent.pop_front();
  }

  history_.push_back(std::move(sample));
  while (history_.size() > options_.history_capacity) {
    RemoveSampleLocked(history_.front());
    history_.pop_front();
  }
}

void AccessStatistics::ExpireLocked(TimePoint now) {
  while (!history_.empty() &&
         now - history_.front().time > options_.sample_ttl) {
    RemoveSampleLocked(history_.front());
    history_.pop_front();
  }
}

void AccessStatistics::RemoveSampleLocked(const Sample& sample) {
  for (PartitionId p : sample.parts) {
    partition_writes_[p]--;
    site_writes_[master_of_[p]]--;
    total_writes_--;
  }
  for (size_t i = 0; i < sample.parts.size(); ++i) {
    for (size_t j = 0; j < sample.parts.size(); ++j) {
      if (i == j) continue;
      BumpPair(intra_, sample.parts[i], sample.parts[j], -1);
    }
  }
  for (const auto& [d1, d2] : sample.inter_pairs) {
    BumpPair(inter_, d1, d2, -1);
    BumpPair(inter_, d2, d1, -1);
  }
}

void AccessStatistics::OnRemaster(PartitionId p, SiteId to) {
  MutexLock guard(mu_);
  const SiteId from = master_of_[p];
  if (from == to) return;
  site_writes_[from] -= partition_writes_[p];
  site_writes_[to] += partition_writes_[p];
  master_of_[p] = to;
}

double AccessStatistics::SiteWriteFraction(SiteId site) const {
  MutexLock guard(mu_);
  if (total_writes_ <= 0) return 0.0;
  return static_cast<double>(site_writes_[site]) /
         static_cast<double>(total_writes_);
}

uint64_t AccessStatistics::PartitionWriteCount(PartitionId p) const {
  MutexLock guard(mu_);
  return partition_writes_[p] < 0 ? 0
                                  : static_cast<uint64_t>(partition_writes_[p]);
}

uint64_t AccessStatistics::TotalWriteCount() const {
  MutexLock guard(mu_);
  return total_writes_ < 0 ? 0 : static_cast<uint64_t>(total_writes_);
}

std::vector<std::pair<PartitionId, double>> AccessStatistics::IntraCoAccess(
    PartitionId p) const {
  MutexLock guard(mu_);
  std::vector<std::pair<PartitionId, double>> out;
  auto it = intra_.find(p);
  if (it == intra_.end() || partition_writes_[p] <= 0) return out;
  const double denom = static_cast<double>(partition_writes_[p]);
  out.reserve(it->second.size());
  for (const auto& [d2, count] : it->second) {
    out.emplace_back(d2, static_cast<double>(count) / denom);
  }
  return out;
}

std::vector<std::pair<PartitionId, double>> AccessStatistics::InterCoAccess(
    PartitionId p) const {
  MutexLock guard(mu_);
  std::vector<std::pair<PartitionId, double>> out;
  auto it = inter_.find(p);
  if (it == inter_.end() || partition_writes_[p] <= 0) return out;
  const double denom = static_cast<double>(partition_writes_[p]);
  out.reserve(it->second.size());
  for (const auto& [d2, count] : it->second) {
    out.emplace_back(d2, static_cast<double>(count) / denom);
  }
  return out;
}

SiteId AccessStatistics::MasterMirror(PartitionId p) const {
  MutexLock guard(mu_);
  return master_of_[p];
}

size_t AccessStatistics::HistorySize() const {
  MutexLock guard(mu_);
  return history_.size();
}

}  // namespace dynamast::selector
