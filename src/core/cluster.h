#ifndef DYNAMAST_CORE_CLUSTER_H_
#define DYNAMAST_CORE_CLUSTER_H_

#include <memory>
#include <vector>

#include "common/history.h"
#include "common/key.h"
#include "common/metrics.h"
#include "common/partitioner.h"
#include "common/trace.h"
#include "log/durable_log.h"
#include "net/sim_network.h"
#include "site/site_manager.h"

namespace dynamast::core {

/// Cluster owns the shared substrate of one deployment: the simulated
/// network, the per-site durable log topics, the partitioner, and the data
/// sites themselves. Systems (DynaMast and baselines) are built on top of
/// a Cluster; tests and benchmarks construct one Cluster per system under
/// test so substrate state is never shared across systems.
class Cluster {
 public:
  struct Options {
    uint32_t num_sites = 4;
    net::SimulatedNetwork::Options network;
    site::SiteOptions site;  // site_id/num_sites are filled per site
    /// If false, sites do not run refresh appliers (partition-store and
    /// LEAP keep no replicas).
    bool replicated = true;
    /// If true, every site records transaction/marker history into a
    /// shared history::Recorder for the offline SI auditor
    /// (tools/si_checker).
    bool record_history = false;
    /// Metrics registry the cluster exports into. Null means the
    /// process-wide metrics::Registry::Global(); tests pass their own
    /// registry for isolation.
    metrics::Registry* metrics = nullptr;
    /// If true, the cluster owns a trace::Tracer and every site / the
    /// selector records per-transaction spans into it (Chrome trace-event
    /// export). Off by default: tracing is strictly opt-in so the hot path
    /// stays free of it.
    bool trace = false;
  };

  /// `partitioner` must outlive the cluster.
  Cluster(const Options& options, const Partitioner* partitioner);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Starts refresh appliers (no-op for unreplicated clusters).
  void Start();

  /// Closes logs and stops all sites. Idempotent.
  void Stop();

  uint32_t num_sites() const { return options_.num_sites; }
  const Options& options() const { return options_; }
  net::SimulatedNetwork& network() { return network_; }
  log::LogManager& logs() { return logs_; }
  const Partitioner& partitioner() const { return *partitioner_; }

  site::SiteManager* site(SiteId id) { return sites_[id].get(); }
  std::vector<site::SiteManager*> site_pointers();

  /// Null unless Options::record_history was set.
  history::Recorder* history() { return history_.get(); }

  /// The resolved metrics registry (never null).
  metrics::Registry* metrics() { return metrics_; }

  /// Null unless Options::trace was set.
  trace::Tracer* tracer() { return tracer_.get(); }

  /// Creates a table at every site.
  Status CreateTable(TableId id);

 private:
  Options options_;
  const Partitioner* partitioner_;
  net::SimulatedNetwork network_;
  log::LogManager logs_;
  metrics::Registry* metrics_;
  std::unique_ptr<trace::Tracer> tracer_;
  std::unique_ptr<history::Recorder> history_;
  std::vector<std::unique_ptr<site::SiteManager>> sites_;
  bool stopped_ = false;
};

}  // namespace dynamast::core

#endif  // DYNAMAST_CORE_CLUSTER_H_
