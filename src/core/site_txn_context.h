#ifndef DYNAMAST_CORE_SITE_TXN_CONTEXT_H_
#define DYNAMAST_CORE_SITE_TXN_CONTEXT_H_

#include <chrono>
#include <string>

#include "core/system_interface.h"
#include "site/site_manager.h"
#include "site/transaction.h"

namespace dynamast::core {

/// TxnContext over a single-site transaction: every operation executes
/// locally, charging the site's simulated service time. Used by every
/// system for its local (one-site) executions.
///
/// Service-time charges are *batched*: operation costs accumulate and are
/// slept off once the pending debt crosses a threshold (and on Flush /
/// destruction), so sleep-granularity overshoot does not multiply across
/// the hundreds of reads a scan performs.
class SiteTxnContext final : public TxnContext {
 public:
  SiteTxnContext(site::SiteManager* site, site::Transaction* txn)
      : site_(site), txn_(txn) {}

  ~SiteTxnContext() override { Flush(); }

  Status Get(const RecordKey& key, std::string* value) override {
    Charge(site_->options().read_op_cost);
    return txn_->Get(key, value);
  }

  Status Put(const RecordKey& key, std::string value) override {
    Charge(site_->options().write_op_cost);
    return txn_->Put(key, std::move(value));
  }

  Status Insert(const RecordKey& key, std::string value) override {
    Charge(site_->options().write_op_cost);
    return txn_->Insert(key, std::move(value));
  }

  /// Sleeps off any accumulated service-time debt. Systems call this
  /// before commit so the simulated work lands inside the transaction.
  void Flush() {
    if (pending_.count() > 0) {
      site_->ChargeDuration(pending_);
      pending_ = {};
    }
  }

 private:
  static constexpr std::chrono::microseconds kFlushThreshold{500};

  void Charge(std::chrono::nanoseconds cost) {
    pending_ += cost;
    if (pending_ >= kFlushThreshold) Flush();
  }

  site::SiteManager* site_;
  site::Transaction* txn_;
  std::chrono::nanoseconds pending_{0};
};

}  // namespace dynamast::core

#endif  // DYNAMAST_CORE_SITE_TXN_CONTEXT_H_
