#include "core/cluster.h"

#include <string>

namespace dynamast::core {

Cluster::Cluster(const Options& options, const Partitioner* partitioner)
    : options_(options),
      partitioner_(partitioner),
      network_(options.network),
      logs_(options.num_sites),
      metrics_(metrics::Registry::OrGlobal(options.metrics)) {
  if (options_.trace) {
    tracer_ = std::make_unique<trace::Tracer>();
    for (uint32_t i = 0; i < options_.num_sites; ++i) {
      tracer_->SetProcessName(i, "site" + std::to_string(i));
    }
    tracer_->SetProcessName(options_.num_sites, "selector");
  }
  if (options_.record_history) {
    history_ = std::make_unique<history::Recorder>();
  }
  network_.RegisterMetrics(metrics_);
  for (uint32_t i = 0; i < options_.num_sites; ++i) {
    logs_.TopicFor(i)->SetAppendLatency(metrics_->GetHistogram(
        "log_append_us", {{"site", std::to_string(i)}}));
    site::SiteOptions site_options = options_.site;
    site_options.site_id = i;
    site_options.num_sites = options_.num_sites;
    sites_.push_back(std::make_unique<site::SiteManager>(
        site_options, partitioner_, &logs_, &network_, history_.get(),
        metrics_, tracer_.get()));
  }
}

Cluster::~Cluster() { Stop(); }

void Cluster::Start() {
  if (!options_.replicated) return;
  for (auto& s : sites_) s->Start();
}

void Cluster::Stop() {
  if (stopped_) return;
  stopped_ = true;
  logs_.CloseAll();
  for (auto& s : sites_) s->Stop();
}

std::vector<site::SiteManager*> Cluster::site_pointers() {
  std::vector<site::SiteManager*> out;
  out.reserve(sites_.size());
  for (auto& s : sites_) out.push_back(s.get());
  return out;
}

Status Cluster::CreateTable(TableId id) {
  for (auto& s : sites_) {
    Status status = s->CreateTable(id);
    if (!status.ok()) return status;
  }
  return Status::OK();
}

}  // namespace dynamast::core
