#ifndef DYNAMAST_CORE_DYNAMAST_SYSTEM_H_
#define DYNAMAST_CORE_DYNAMAST_SYSTEM_H_

#include <memory>
#include <string>
#include <vector>

#include "common/latency_recorder.h"
#include "core/cluster.h"
#include "core/system_interface.h"
#include "selector/site_selector.h"

namespace dynamast::core {

/// How mastership is laid out before the workload starts.
enum class InitialPlacement {
  /// Partition p starts at site p % m — an arbitrary scattering the
  /// remastering strategies must reorganize (the paper gives DynaMast "no
  /// fixed initial data placement", Section VI-A1).
  kRoundRobin,
  /// Everything starts (and, absent remastering triggers, stays) at site
  /// 0 — this is exactly the single-master system of Section VI-A1, built
  /// "by leveraging DynaMast's adaptability".
  kAllAtSiteZero,
  /// Caller-provided placement (adaptivity experiment: manual range
  /// placement that the workload then violates).
  kCustom,
};

/// Per-phase latency accounting over write transactions, mirroring the
/// breakdown of Figure 7 / Appendix D: routing decision (including any
/// remastering), time on the simulated network, transaction begin (lock
/// acquisition + session waits), stored-procedure logic, and commit.
struct PhaseStats {
  LatencyRecorder routing;
  LatencyRecorder network;
  LatencyRecorder queueing;  // waiting for a worker slot at the data site
  LatencyRecorder begin;
  LatencyRecorder logic;
  LatencyRecorder commit;
};

/// DynaMast proper: lazily replicated multi-master system with dynamic
/// mastership transfer (Sections III-V). Also doubles, via
/// InitialPlacement::kAllAtSiteZero, as the single-master baseline.
class DynaMastSystem final : public SystemInterface {
 public:
  struct Options {
    Cluster::Options cluster;
    selector::SelectorOptions selector;
    InitialPlacement placement = InitialPlacement::kRoundRobin;
    std::vector<SiteId> custom_placement;  // for kCustom
    /// Routing races (a partition remastered away between routing and
    /// begin) are retried this many times.
    uint32_t max_retries = 16;
    /// Reported by name(); lets the single-master configuration identify
    /// itself in experiment output.
    std::string display_name = "dynamast";
  };

  /// Convenience: single-master configuration of the same machinery.
  static Options SingleMasterOptions(Options base) {
    base.placement = InitialPlacement::kAllAtSiteZero;
    base.display_name = "single-master";
    return base;
  }

  /// `partitioner` must outlive the system.
  DynaMastSystem(const Options& options, const Partitioner* partitioner);
  ~DynaMastSystem() override;

  std::string name() const override { return options_.display_name; }
  Status CreateTable(TableId id) override { return cluster_.CreateTable(id); }
  Status LoadRow(const RecordKey& key, std::string value) override;
  void Seal() override;
  DYNAMAST_HOT_PATH Status Execute(ClientState& client,
                                   const TxnProfile& profile,
                                   const TxnLogic& logic,
                                   TxnResult* result) override;
  void Shutdown() override;
  history::Recorder* history() override { return cluster_.history(); }
  trace::Tracer* tracer() override { return cluster_.tracer(); }

  Cluster& cluster() { return cluster_; }
  selector::SiteSelector& site_selector() { return *selector_; }
  PhaseStats& phase_stats() { return phase_stats_; }

 private:
  Status ExecuteWrite(ClientState& client, const TxnProfile& profile,
                      const TxnLogic& logic, TxnResult* result);
  DYNAMAST_HOT_PATH Status ExecuteRead(ClientState& client,
                                       const TxnProfile& profile,
                                       const TxnLogic& logic,
                                       TxnResult* result);

  Options options_;
  const Partitioner* partitioner_;
  Cluster cluster_;
  std::unique_ptr<selector::SiteSelector> selector_;
  PhaseStats phase_stats_;
  bool sealed_ = false;
};

}  // namespace dynamast::core

#endif  // DYNAMAST_CORE_DYNAMAST_SYSTEM_H_
