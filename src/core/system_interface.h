#ifndef DYNAMAST_CORE_SYSTEM_INTERFACE_H_
#define DYNAMAST_CORE_SYSTEM_INTERFACE_H_

#include <functional>
#include <string>
#include <vector>

#include "common/history.h"
#include "common/key.h"
#include "common/status.h"
#include "common/trace.h"
#include "common/version_vector.h"

namespace dynamast::core {

/// The read/write surface a stored procedure sees while executing. Every
/// evaluated system (DynaMast and the four baselines) provides its own
/// implementation, so one workload definition drives all systems — the
/// paper's apples-to-apples requirement (Section VI-A1).
class TxnContext {
 public:
  virtual ~TxnContext() = default;

  /// Snapshot read. NotFound if the key does not exist (yet).
  virtual Status Get(const RecordKey& key, std::string* value) = 0;

  /// Updates a key declared in the transaction's write set.
  virtual Status Put(const RecordKey& key, std::string value) = 0;

  /// Inserts a fresh key (must fall in a partition covered by the declared
  /// write set / write partitions).
  virtual Status Insert(const RecordKey& key, std::string value) = 0;
};

/// Stored-procedure body. Returning non-OK aborts the transaction; the
/// status is propagated to the caller. A system may run the body more
/// than once per Execute (e.g. rerunning a read on a fresher snapshot
/// after SnapshotTooOld), so it must be restartable: reinitialize any
/// captured accumulator state at entry and derive results only from the
/// context's reads.
using TxnLogic = std::function<Status(TxnContext&)>;

/// What a transaction declares up front (the paper's model assumes write
/// sets are known, via reconnaissance queries if necessary; Section II-B1).
struct TxnProfile {
  /// Keys the transaction will update (locked at begin). Keys of rows
  /// inserted during execution may be omitted if their partition is
  /// implied by some declared key or listed in `extra_write_partitions`.
  std::vector<RecordKey> write_keys;

  /// Write partitions with no pre-known key (insert-only partitions).
  std::vector<PartitionId> extra_write_partitions;

  /// Keys the transaction will read (used by partition-store to fan out
  /// multi-site reads and by LEAP to localize read sets). May be empty
  /// when `read_partitions` is set.
  std::vector<RecordKey> read_keys;

  /// Read partitions, when the precise read keys are data-dependent
  /// (e.g. TPC-C Stock-Level's order lines).
  std::vector<PartitionId> read_partitions;

  bool read_only = false;
};

/// A client session: its id and session version vector (cvv), which the
/// systems maintain to provide strong-session snapshot isolation.
struct ClientState {
  ClientId id = 0;
  VersionVector session;
  /// Logical transactions issued so far; Execute bumps it once per call so
  /// history records can group 2PC branches of one logical transaction.
  uint64_t issued_txns = 0;
};

/// Per-execution result details (latency breakdowns come from here).
struct TxnResult {
  SiteId executed_at = kInvalidSite;
  bool remastered = false;      // DynaMast: this txn required remastering
  bool distributed = false;     // baselines: executed as multi-site txn
  uint32_t retries = 0;
};

/// A complete replicated database system under test.
class SystemInterface {
 public:
  virtual ~SystemInterface() = default;

  virtual std::string name() const = 0;

  /// Creates a table at every site.
  virtual Status CreateTable(TableId id) = 0;

  /// Loads one row during setup. Replicated systems install it at every
  /// site; partitioned systems at the owning site only. Not transactional.
  virtual Status LoadRow(const RecordKey& key, std::string value) = 0;

  /// Loads a row of a static read-only table: installed at *every* site in
  /// every system (Section VI-A1: even partition-store replicates static
  /// read-only tables). Defaults to LoadRow for fully replicated systems.
  virtual Status LoadReplicatedRow(const RecordKey& key, std::string value) {
    return LoadRow(key, std::move(value));
  }

  /// Called once after loading, before clients start.
  virtual void Seal() {}

  /// Executes one transaction for `client`: routes it, runs `logic`,
  /// commits, and updates the client's session vector. Retries internally
  /// on transient routing races; returns the final status.
  virtual Status Execute(ClientState& client, const TxnProfile& profile,
                         const TxnLogic& logic, TxnResult* result) = 0;

  /// Stops background machinery (appliers). Idempotent.
  virtual void Shutdown() = 0;

  /// The cluster's history recorder, when the system was deployed with
  /// history recording on (tools/si_checker audits its events). Null
  /// otherwise.
  virtual history::Recorder* history() { return nullptr; }

  /// The cluster's span tracer, when the system was deployed with tracing
  /// on (benches export it as Chrome trace-event JSON). Null otherwise.
  virtual trace::Tracer* tracer() { return nullptr; }
};

}  // namespace dynamast::core

#endif  // DYNAMAST_CORE_SYSTEM_INTERFACE_H_
