#include "core/dynamast_system.h"

#include <algorithm>

#include "common/invariant_checker.h"
#include "core/site_txn_context.h"
#if DYNAMAST_INVARIANTS_ENABLED
#include "site/invariants.h"
#endif

namespace dynamast::core {

namespace {
// Nominal RPC payload sizes (stored-procedure arguments / responses).
constexpr size_t kRouteRequestBytes = 128;
constexpr size_t kRouteResponseBytes = 64;
constexpr size_t kExecRequestBaseBytes = 256;
constexpr size_t kExecResponseBytes = 128;
}  // namespace

DynaMastSystem::DynaMastSystem(const Options& options,
                               const Partitioner* partitioner)
    : options_(options), partitioner_(partitioner),
      cluster_(options.cluster, partitioner) {
  selector::SelectorOptions sel = options_.selector;
  sel.num_sites = cluster_.num_sites();
  // The selector exports into the same registry/tracer as the data sites
  // unless the caller wired its own.
  if (sel.metrics == nullptr) sel.metrics = cluster_.metrics();
  if (sel.tracer == nullptr) sel.tracer = cluster_.tracer();
  selector_ = std::make_unique<selector::SiteSelector>(
      sel, cluster_.site_pointers(), partitioner, &cluster_.network());
}

DynaMastSystem::~DynaMastSystem() { Shutdown(); }

Status DynaMastSystem::LoadRow(const RecordKey& key, std::string value) {
  // Full replication: every site holds every row (Section II-B1).
  for (SiteId s = 0; s < cluster_.num_sites(); ++s) {
    Status status = cluster_.site(s)->LoadRecord(key, value);
    if (!status.ok()) return status;
  }
  return Status::OK();
}

void DynaMastSystem::Seal() {
  if (sealed_) return;
  sealed_ = true;
  const size_t n = partitioner_->NumPartitions();
  std::vector<SiteId> placement(n, 0);
  switch (options_.placement) {
    case InitialPlacement::kRoundRobin:
      for (PartitionId p = 0; p < n; ++p) {
        placement[p] = static_cast<SiteId>(p % cluster_.num_sites());
      }
      break;
    case InitialPlacement::kAllAtSiteZero:
      break;  // all zero already
    case InitialPlacement::kCustom:
      placement = options_.custom_placement;
      placement.resize(n, 0);
      break;
  }
  selector_->InstallPlacement(placement);
#if DYNAMAST_INVARIANTS_ENABLED
  // The cluster is quiesced at seal: every partition must have exactly one
  // master.
  site::CheckMastershipInvariant(cluster_.site_pointers(), n,
                                 /*require_exactly_one=*/true, "seal");
#endif
  cluster_.Start();
}

Status DynaMastSystem::Execute(ClientState& client, const TxnProfile& profile,
                               const TxnLogic& logic, TxnResult* result) {
  // `result` is an optional out-param; downstream code assumes non-null.
  TxnResult scratch;
  if (result == nullptr) result = &scratch;
  client.issued_txns++;
  return profile.read_only ? ExecuteRead(client, profile, logic, result)
                           : ExecuteWrite(client, profile, logic, result);
}

Status DynaMastSystem::ExecuteWrite(ClientState& client,
                                    const TxnProfile& profile,
                                    const TxnLogic& logic, TxnResult* result) {
  net::SimulatedNetwork& net = cluster_.network();
  // Merge declared write keys and insert-only partitions into the routing
  // request.
  std::vector<PartitionId> partitions;
  partitions.reserve(profile.write_keys.size() +
                     profile.extra_write_partitions.size());
  for (const RecordKey& key : profile.write_keys) {
    partitions.push_back(partitioner_->PartitionOf(key));
  }
  partitions.insert(partitions.end(), profile.extra_write_partitions.begin(),
                    profile.extra_write_partitions.end());

  trace::Tracer* tracer = cluster_.tracer();
  Status last_error = Status::Internal("no attempt made");
  for (uint32_t attempt = 0; attempt <= options_.max_retries; ++attempt) {
    // begin_transaction RPC: client -> site selector, carrying the write
    // set (Section III-B).
    trace::Span route_span(tracer, "route", "txn", cluster_.num_sites(),
                           client.id);
    route_span.SetTxn(client.id, client.issued_txns);
    Stopwatch watch;
    net.RoundTrip(net::TrafficClass::kClientRequest,
                  kRouteRequestBytes + 8 * partitions.size(),
                  kRouteResponseBytes);
    const uint64_t route_rpc_micros = watch.ElapsedMicros();

    watch.Restart();
    selector::RouteResult route;
    Status s = selector_->RouteWritePartitions(client.id, partitions,
                                               client.session, &route);
    const uint64_t routing_micros = watch.ElapsedMicros();
    if (!s.ok()) {
      last_error = s;
      continue;
    }
    route_span.AddNum("site", static_cast<double>(route.site));
    route_span.AddNum("remastered", route.remastered ? 1 : 0);
    route_span.AddNum("moved", static_cast<double>(route.partitions_moved));
    route_span.End();

    // Client submits the transaction directly to the chosen data site.
    site::SiteManager* site = cluster_.site(route.site);
    watch.Restart();
    net.RoundTrip(net::TrafficClass::kClientRequest,
                  kExecRequestBaseBytes + 32 * profile.write_keys.size(),
                  kExecResponseBytes);
    const uint64_t exec_rpc_micros = watch.ElapsedMicros();
    watch.Restart();
    trace::Span admit_span(tracer, "admission", "txn", route.site, client.id);
    admit_span.SetTxn(client.id, client.issued_txns);
    site::AdmissionGate::Scoped slot(site->gate());
    admit_span.End();
    const uint64_t queue_micros = watch.ElapsedMicros();

    site::TxnOptions txn_options;
    txn_options.write_keys = profile.write_keys;
    txn_options.min_begin_version = route.min_begin_version;
    txn_options.client = client.id;
    txn_options.client_txn = client.issued_txns;
    site::Transaction txn;
    watch.Restart();
    trace::Span begin_span(tracer, "begin", "txn", route.site, client.id);
    begin_span.SetTxn(client.id, client.issued_txns);
    s = site->BeginTransaction(txn_options, &txn);
    begin_span.End();
    const uint64_t begin_micros = watch.ElapsedMicros();
    if (s.IsNotMaster()) {
      // Lost a race with a concurrent remastering; re-route.
      last_error = s;
      result->retries++;
      continue;
    }
    if (!s.ok()) return s;
    // SI read-snapshot validity (strong-session SI): the begin snapshot
    // includes the client's session and any remastering grant point the
    // router required (route.min_begin_version folds both).
    DYNAMAST_INVARIANT(
        txn.begin_version().DominatesOrEquals(route.min_begin_version),
        "write txn began at " + txn.begin_version().ToString() +
            " below routed minimum " + route.min_begin_version.ToString());

    SiteTxnContext context(site, &txn);
    watch.Restart();
    trace::Span exec_span(tracer, "execute", "txn", route.site, client.id);
    exec_span.SetTxn(client.id, client.issued_txns);
    s = logic(context);
    exec_span.End();
    const uint64_t logic_micros = watch.ElapsedMicros();
    if (!s.ok()) {
      site->Abort(&txn, s);
      return s;
    }
    VersionVector commit_version;
    watch.Restart();
    trace::Span commit_span(tracer, "commit", "txn", route.site, client.id);
    commit_span.SetTxn(client.id, client.issued_txns);
    s = site->Commit(&txn, &commit_version);
    commit_span.End();
    if (!s.ok()) return s;
    phase_stats_.commit.Record(watch.ElapsedMicros());
    phase_stats_.network.Record(route_rpc_micros + exec_rpc_micros);
    phase_stats_.queueing.Record(queue_micros);
    phase_stats_.routing.Record(routing_micros);
    phase_stats_.begin.Record(begin_micros);
    phase_stats_.logic.Record(logic_micros);
    client.session.MaxWith(commit_version);
    result->executed_at = route.site;
    result->remastered = route.remastered;
    return Status::OK();
  }
  return last_error;
}

Status DynaMastSystem::ExecuteRead(ClientState& client,
                                   const TxnProfile& profile,
                                   const TxnLogic& logic, TxnResult* result) {
  (void)profile;
  net::SimulatedNetwork& net = cluster_.network();
  Status last_error = Status::Internal("no attempt made");
  for (uint32_t attempt = 0; attempt <= options_.max_retries; ++attempt) {
    net.RoundTrip(net::TrafficClass::kClientRequest, kRouteRequestBytes,
                  kRouteResponseBytes);
    SiteId site_id = 0;
    Status s = selector_->RouteRead(client.id, client.session, &site_id);
    if (!s.ok()) return s;

    site::SiteManager* site = cluster_.site(site_id);
    net.RoundTrip(net::TrafficClass::kClientRequest, kExecRequestBaseBytes,
                  kExecResponseBytes);
    site::AdmissionGate::Scoped slot(site->gate());

    site::TxnOptions txn_options;
    txn_options.read_only = true;
    txn_options.min_begin_version = client.session;
    txn_options.client = client.id;
    txn_options.client_txn = client.issued_txns;
    site::Transaction txn;
    s = site->BeginTransaction(txn_options, &txn);
    if (!s.ok()) return s;
    // Strong-session SI: the read snapshot must include everything this
    // client has already observed.
    DYNAMAST_INVARIANT(txn.begin_version().DominatesOrEquals(client.session),
                       "read txn began at " + txn.begin_version().ToString() +
                           " below client session " +
                           client.session.ToString());

    SiteTxnContext context(site, &txn);
    s = logic(context);
    if (!s.ok()) {
      site->Abort(&txn, s);
      // A hot writer can prune every version a just-taken snapshot could
      // see (retention is bounded per record). Read-only transactions hold
      // no locks and have no effects, so simply rerun on a fresher
      // snapshot; strong-session SI is preserved because any newer
      // snapshot still dominates the session.
      if (s.IsSnapshotTooOld()) {
        last_error = s;
        result->retries++;
        continue;
      }
      return s;
    }
    VersionVector commit_version;
    s = site->Commit(&txn, &commit_version);
    if (!s.ok()) return s;
    client.session.MaxWith(commit_version);
    result->executed_at = site_id;
    return Status::OK();
  }
  return last_error;
}

void DynaMastSystem::Shutdown() {
#if DYNAMAST_INVARIANTS_ENABLED
  // At most one master per partition holds at every instant, including
  // with a transfer in flight (a released-but-ungranted partition has zero
  // masters, never two).
  if (sealed_) {
    site::CheckMastershipInvariant(cluster_.site_pointers(),
                                   partitioner_->NumPartitions(),
                                   /*require_exactly_one=*/false, "shutdown");
  }
#endif
  cluster_.Stop();
}

}  // namespace dynamast::core
