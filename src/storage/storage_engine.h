#ifndef DYNAMAST_STORAGE_STORAGE_ENGINE_H_
#define DYNAMAST_STORAGE_STORAGE_ENGINE_H_

#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/debug_mutex.h"
#include "common/key.h"
#include "common/status.h"
#include "common/version_vector.h"
#include "storage/lock_manager.h"
#include "storage/table.h"

namespace dynamast::storage {

/// StorageEngine is one data site's in-memory multi-version store: a set of
/// tables plus the record write-lock manager. It is deliberately free of
/// any replication or mastership logic — those live in site::SiteManager —
/// so the same engine backs DynaMast and every baseline system.
class StorageEngine {
 public:
  struct Options {
    /// Versions retained per record ("by default four, as determined
    /// empirically", Section V-A1).
    size_t max_versions_per_record = 4;
  };

  StorageEngine() : StorageEngine(Options{}) {}
  explicit StorageEngine(const Options& options) : options_(options) {}

  StorageEngine(const StorageEngine&) = delete;
  StorageEngine& operator=(const StorageEngine&) = delete;

  /// Creates a table; AlreadyExists if the id is taken.
  Status CreateTable(TableId id);

  /// Nullptr if the table does not exist.
  Table* GetTable(TableId id) const;

  /// Installs a committed version for `key` (used by local commits and by
  /// refresh application). InvalidArgument if the table does not exist.
  /// `stats` (when non-null) receives the install outcome for metrics.
  Status Install(const RecordKey& key, SiteId origin, uint64_t seq,
                 std::string value, InstallStats* stats = nullptr);

  /// Snapshot read at `snapshot` (a version vector). On OK, `observed`
  /// (when non-null) receives the stamp of the version returned.
  Status Read(const RecordKey& key, const VersionVector& snapshot,
              std::string* out, VersionStamp* observed = nullptr) const;

  Status ReadLatest(const RecordKey& key, std::string* out) const;

  bool Contains(const RecordKey& key) const;

  LockManager& lock_manager() { return lock_manager_; }

  /// Total rows across all tables (diagnostics / tests).
  size_t TotalRows() const;

  std::vector<TableId> TableIds() const;

 private:
  Options options_;
  // Guards the table map, not table contents. Reader-writer: table lookup
  // is on every operation's path, table creation happens only at load.
  mutable DebugSharedMutex tables_mu_{"storage.tables"};
  std::unordered_map<TableId, std::unique_ptr<Table>> tables_
      DYNAMAST_GUARDED_BY(tables_mu_);
  LockManager lock_manager_;
};

}  // namespace dynamast::storage

#endif  // DYNAMAST_STORAGE_STORAGE_ENGINE_H_
