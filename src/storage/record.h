#ifndef DYNAMAST_STORAGE_RECORD_H_
#define DYNAMAST_STORAGE_RECORD_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>

#include "common/debug_mutex.h"
#include "common/key.h"
#include "common/status.h"
#include "common/version_vector.h"

namespace dynamast::storage {

/// A single committed version of a record. Versions are stamped with the
/// (origin site, per-origin commit sequence number) of the transaction that
/// created them — exactly the information a snapshot (a version vector)
/// needs for the visibility test: a version is visible to begin vector `b`
/// iff seq <= b[origin].
///
/// This is sound because (a) a site installs versions from each origin in
/// commit order (the replication manager's FIFO), and (b) the update
/// application rule (Eq. 1) guarantees that when b[origin] >= seq, every
/// update the writing transaction depended on has also been installed.
struct RecordVersion {
  SiteId origin = 0;
  uint64_t seq = 0;
  std::string value;
};

/// The (origin, seq) stamp of a version a read observed, reported to the
/// caller for history recording (tools/si_checker attributes every read to
/// the commit that installed the version). (0, 0) is the loader-installed
/// base version.
struct VersionStamp {
  SiteId origin = 0;
  uint64_t seq = 0;
};

/// Outcome of one version install, reported up through Table and
/// StorageEngine so the site can feed the storage metrics
/// (storage_version_chain_len, storage_pruned_versions_total) without a
/// second pass over the chain.
struct InstallStats {
  size_t chain_len = 0;  // retained versions after the install
  bool pruned = false;   // an old version was evicted by this install
};

/// VersionedRecord is one row's multi-version chain (Section V-A1: the
/// database stores multiple versions of every record — four by default).
/// The chain is kept in site-local install order, which for a single record
/// equals the global write order (writes to a record are totally ordered by
/// single mastership + write locks).
class VersionedRecord {
 public:
  explicit VersionedRecord(size_t max_versions) : max_versions_(max_versions) {}

  VersionedRecord(const VersionedRecord&) = delete;
  VersionedRecord& operator=(const VersionedRecord&) = delete;

  /// Appends a new version (newest end), pruning the oldest retained
  /// version if the chain exceeds its capacity. `stats` (when non-null)
  /// receives the post-install chain length and whether a prune happened.
  void Install(SiteId origin, uint64_t seq, std::string value,
               InstallStats* stats = nullptr) DYNAMAST_EXCLUDES(mu_);

  /// Reads the newest version visible to `snapshot`. Returns:
  ///  * OK and the value when a visible version exists;
  ///  * NotFound when the record was created entirely after the snapshot
  ///    (nothing pruned, nothing visible);
  ///  * SnapshotTooOld when versions the snapshot could see were pruned.
  /// On OK, `observed` (when non-null) receives the stamp of the version
  /// returned.
  Status ReadAtSnapshot(const VersionVector& snapshot, std::string* out,
                        VersionStamp* observed = nullptr) const
      DYNAMAST_EXCLUDES(mu_);

  /// Reads the newest version unconditionally (loader / debugging).
  Status ReadLatest(std::string* out) const DYNAMAST_EXCLUDES(mu_);

  size_t NumVersions() const DYNAMAST_EXCLUDES(mu_);
  uint64_t PrunedCount() const DYNAMAST_EXCLUDES(mu_);

 private:
  // Leaf lock: held only around version-chain reads/appends, never while
  // acquiring any other lock.
  mutable DebugMutex mu_{"storage.record"};
  // Oldest at front, newest at back.
  std::deque<RecordVersion> versions_ DYNAMAST_GUARDED_BY(mu_);
  size_t max_versions_;  // immutable after construction
  uint64_t pruned_ DYNAMAST_GUARDED_BY(mu_) = 0;
};

}  // namespace dynamast::storage

#endif  // DYNAMAST_STORAGE_RECORD_H_
