#include "storage/record.h"

namespace dynamast::storage {

void VersionedRecord::Install(SiteId origin, uint64_t seq, std::string value,
                              InstallStats* stats) {
  MutexLock lock(mu_);
  versions_.push_back(RecordVersion{origin, seq, std::move(value)});
  bool pruned = false;
  if (versions_.size() > max_versions_) {
    versions_.pop_front();
    ++pruned_;
    pruned = true;
  }
  if (stats != nullptr) {
    stats->chain_len = versions_.size();
    stats->pruned = pruned;
  }
}

Status VersionedRecord::ReadAtSnapshot(const VersionVector& snapshot,
                                       std::string* out,
                                       VersionStamp* observed) const {
  MutexLock lock(mu_);
  for (auto it = versions_.rbegin(); it != versions_.rend(); ++it) {
    const uint64_t visible_up_to =
        it->origin < snapshot.size() ? snapshot[it->origin] : 0;
    if (it->seq <= visible_up_to) {
      *out = it->value;
      if (observed != nullptr) *observed = VersionStamp{it->origin, it->seq};
      return Status::OK();
    }
  }
  if (pruned_ > 0) {
    return Status::SnapshotTooOld("all retained versions newer than snapshot");
  }
  return Status::NotFound("record created after snapshot");
}

Status VersionedRecord::ReadLatest(std::string* out) const {
  MutexLock lock(mu_);
  if (versions_.empty()) return Status::NotFound("no versions");
  *out = versions_.back().value;
  return Status::OK();
}

size_t VersionedRecord::NumVersions() const {
  MutexLock lock(mu_);
  return versions_.size();
}

uint64_t VersionedRecord::PrunedCount() const {
  MutexLock lock(mu_);
  return pruned_;
}

}  // namespace dynamast::storage
