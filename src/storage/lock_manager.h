#ifndef DYNAMAST_STORAGE_LOCK_MANAGER_H_
#define DYNAMAST_STORAGE_LOCK_MANAGER_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/debug_mutex.h"
#include "common/key.h"
#include "common/status.h"

namespace dynamast::storage {

/// Identifies a lock holder (a transaction).
using TxnId = uint64_t;

/// Record-granularity write-lock manager. DynaMast "uses locks to mutually
/// exclude writes to records, which is simple and lightweight" and avoids
/// aborts on write-write conflicts (Section V-A1); readers never lock
/// (MVCC snapshot reads).
///
/// The table is striped: each stripe owns a mutex, a condition variable and
/// a map of currently-held locks. Callers acquire multi-key lock sets in
/// globally sorted key order (AcquireAll sorts for you), so transactions
/// whose write sets are known up front cannot deadlock; dynamically
/// acquired locks (fresh-insert keys) are protected by the deadline.
class LockManager {
 public:
  LockManager() = default;

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Acquires the write lock on `key` for `txn`, waiting until `deadline`.
  /// Re-entrant: succeeds immediately if `txn` already holds the lock.
  DYNAMAST_BLOCKING Status Acquire(
      const RecordKey& key, TxnId txn,
      std::chrono::steady_clock::time_point deadline);

  /// Acquires every key in `keys` in sorted order (deduplicated). On
  /// timeout, releases everything it acquired and returns TimedOut.
  DYNAMAST_BLOCKING Status AcquireAll(
      std::vector<RecordKey> keys, TxnId txn,
      std::chrono::steady_clock::time_point deadline);

  /// Releases one lock; no-op if `txn` does not hold it.
  void Release(const RecordKey& key, TxnId txn);

  void ReleaseAll(const std::vector<RecordKey>& keys, TxnId txn);

  /// True iff `txn` currently holds the write lock on `key`.
  bool Holds(const RecordKey& key, TxnId txn) const;

  /// Number of locks currently held across all stripes (diagnostics).
  size_t NumHeldLocks() const;

 private:
  static constexpr size_t kNumStripes = 256;
  struct Stripe {
    // Stripes never nest (Acquire holds one stripe at a time; AcquireAll
    // releases each stripe's mutex before moving to the next key).
    mutable DebugMutex mu{"storage.lock_stripe"};
    DebugCondVar cv;
    std::unordered_map<RecordKey, TxnId, RecordKeyHash> held
        DYNAMAST_GUARDED_BY(mu);
  };
  Stripe& StripeFor(const RecordKey& key) {
    return stripes_[RecordKeyHash()(key) % kNumStripes];
  }
  const Stripe& StripeFor(const RecordKey& key) const {
    return stripes_[RecordKeyHash()(key) % kNumStripes];
  }

  std::array<Stripe, kNumStripes> stripes_;
};

}  // namespace dynamast::storage

#endif  // DYNAMAST_STORAGE_LOCK_MANAGER_H_
