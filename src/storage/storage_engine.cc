#include "storage/storage_engine.h"

namespace dynamast::storage {

Status StorageEngine::CreateTable(TableId id) {
  WriterMutexLock lock(tables_mu_);
  auto [it, inserted] = tables_.emplace(
      id, std::make_unique<Table>(id, options_.max_versions_per_record));
  (void)it;
  if (!inserted) return Status::AlreadyExists("table exists");
  return Status::OK();
}

Table* StorageEngine::GetTable(TableId id) const {
  ReaderMutexLock lock(tables_mu_);
  auto it = tables_.find(id);
  return it == tables_.end() ? nullptr : it->second.get();
}

Status StorageEngine::Install(const RecordKey& key, SiteId origin,
                              uint64_t seq, std::string value,
                              InstallStats* stats) {
  Table* table = GetTable(key.table);
  if (table == nullptr) return Status::InvalidArgument("no such table");
  table->Install(key.row, origin, seq, std::move(value), stats);
  return Status::OK();
}

Status StorageEngine::Read(const RecordKey& key, const VersionVector& snapshot,
                           std::string* out, VersionStamp* observed) const {
  Table* table = GetTable(key.table);
  if (table == nullptr) return Status::InvalidArgument("no such table");
  return table->Read(key.row, snapshot, out, observed);
}

Status StorageEngine::ReadLatest(const RecordKey& key, std::string* out) const {
  Table* table = GetTable(key.table);
  if (table == nullptr) return Status::InvalidArgument("no such table");
  return table->ReadLatest(key.row, out);
}

bool StorageEngine::Contains(const RecordKey& key) const {
  Table* table = GetTable(key.table);
  return table != nullptr && table->Contains(key.row);
}

size_t StorageEngine::TotalRows() const {
  ReaderMutexLock lock(tables_mu_);
  size_t total = 0;
  for (const auto& [id, table] : tables_) total += table->NumRows();
  return total;
}

std::vector<TableId> StorageEngine::TableIds() const {
  ReaderMutexLock lock(tables_mu_);
  std::vector<TableId> ids;
  ids.reserve(tables_.size());
  for (const auto& [id, table] : tables_) ids.push_back(id);
  return ids;
}

}  // namespace dynamast::storage
