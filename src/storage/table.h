#ifndef DYNAMAST_STORAGE_TABLE_H_
#define DYNAMAST_STORAGE_TABLE_H_

#include <array>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/debug_mutex.h"
#include "common/key.h"
#include "common/status.h"
#include "common/version_vector.h"
#include "storage/record.h"

namespace dynamast::storage {

/// A row-oriented in-memory table indexed by primary key (Section V-A1:
/// "records belonging to each relation in a row-oriented in-memory table
/// using the primary key of each record as an index").
///
/// The hash index is sharded; each shard is guarded by a shared_mutex so
/// lookups scale while inserts take a brief exclusive lock. VersionedRecord
/// pointers are stable once inserted (heap-allocated), so readers can drop
/// the index lock before touching the version chain.
class Table {
 public:
  Table(TableId id, size_t max_versions_per_record)
      : id_(id), max_versions_(max_versions_per_record) {}

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  TableId id() const { return id_; }

  /// Installs a new version for `row`, creating the record if absent.
  /// `stats` (when non-null) receives the install outcome for metrics.
  void Install(uint64_t row, SiteId origin, uint64_t seq, std::string value,
               InstallStats* stats = nullptr);

  /// Snapshot read; see VersionedRecord::ReadAtSnapshot for semantics.
  /// NotFound if the row does not exist at all.
  Status Read(uint64_t row, const VersionVector& snapshot, std::string* out,
              VersionStamp* observed = nullptr) const;

  /// Latest-version read (loader / recovery verification).
  Status ReadLatest(uint64_t row, std::string* out) const;

  bool Contains(uint64_t row) const;
  size_t NumRows() const;

  /// Invokes `fn` for every row id currently in the table. Holds each
  /// shard's lock in shared mode while iterating that shard; `fn` must not
  /// call back into this table. Used by data shipping (LEAP) to enumerate
  /// a partition's rows.
  void ForEachRowId(const std::function<void(uint64_t)>& fn) const;

 private:
  static constexpr size_t kNumShards = 64;
  struct Shard {
    // Shards never nest: every operation touches exactly one shard at a
    // time (ForEachRowId iterates shard by shard).
    mutable DebugSharedMutex mu{"storage.table_shard"};
    // The *index* is guarded; VersionedRecord pointers are stable once
    // inserted, so readers drop the index lock before touching chains.
    std::unordered_map<uint64_t, std::unique_ptr<VersionedRecord>> rows
        DYNAMAST_GUARDED_BY(mu);
  };
  Shard& ShardFor(uint64_t row) { return shards_[ShardIndex(row)]; }
  const Shard& ShardFor(uint64_t row) const { return shards_[ShardIndex(row)]; }
  static size_t ShardIndex(uint64_t row) {
    uint64_t x = row * 0x9e3779b97f4a7c15ULL;
    return static_cast<size_t>(x >> 58);  // top 6 bits -> 64 shards
  }

  const VersionedRecord* Find(uint64_t row) const;

  TableId id_;
  size_t max_versions_;
  std::array<Shard, kNumShards> shards_;
};

}  // namespace dynamast::storage

#endif  // DYNAMAST_STORAGE_TABLE_H_
