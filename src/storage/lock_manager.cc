#include "storage/lock_manager.h"

#include <algorithm>

namespace dynamast::storage {

Status LockManager::Acquire(const RecordKey& key, TxnId txn,
                            std::chrono::steady_clock::time_point deadline) {
  Stripe& stripe = StripeFor(key);
  MutexLock lock(stripe.mu);
  while (true) {
    auto it = stripe.held.find(key);
    if (it == stripe.held.end()) {
      stripe.held.emplace(key, txn);
      return Status::OK();
    }
    if (it->second == txn) return Status::OK();  // re-entrant
    if (stripe.cv.wait_until(stripe.mu, deadline) == std::cv_status::timeout) {
      // Re-check once after timeout: the holder may have released between
      // the last wakeup and now.
      it = stripe.held.find(key);
      if (it == stripe.held.end()) {
        stripe.held.emplace(key, txn);
        return Status::OK();
      }
      if (it->second == txn) return Status::OK();
      return Status::TimedOut("write lock wait on " + key.ToString());
    }
  }
}

Status LockManager::AcquireAll(std::vector<RecordKey> keys, TxnId txn,
                               std::chrono::steady_clock::time_point deadline) {
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  for (size_t i = 0; i < keys.size(); ++i) {
    Status s = Acquire(keys[i], txn, deadline);
    if (!s.ok()) {
      for (size_t j = 0; j < i; ++j) Release(keys[j], txn);
      return s;
    }
  }
  return Status::OK();
}

void LockManager::Release(const RecordKey& key, TxnId txn) {
  Stripe& stripe = StripeFor(key);
  MutexLock lock(stripe.mu);
  auto it = stripe.held.find(key);
  if (it != stripe.held.end() && it->second == txn) {
    stripe.held.erase(it);
    stripe.cv.notify_all();
  }
}

void LockManager::ReleaseAll(const std::vector<RecordKey>& keys, TxnId txn) {
  for (const RecordKey& key : keys) Release(key, txn);
}

bool LockManager::Holds(const RecordKey& key, TxnId txn) const {
  const Stripe& stripe = StripeFor(key);
  MutexLock lock(stripe.mu);
  auto it = stripe.held.find(key);
  return it != stripe.held.end() && it->second == txn;
}

size_t LockManager::NumHeldLocks() const {
  size_t total = 0;
  for (const Stripe& stripe : stripes_) {
    MutexLock lock(stripe.mu);
    total += stripe.held.size();
  }
  return total;
}

}  // namespace dynamast::storage
