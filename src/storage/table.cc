#include "storage/table.h"

namespace dynamast::storage {

void Table::Install(uint64_t row, SiteId origin, uint64_t seq,
                    std::string value, InstallStats* stats) {
  Shard& shard = ShardFor(row);
  VersionedRecord* record = nullptr;
  {
    ReaderMutexLock read_lock(shard.mu);
    auto it = shard.rows.find(row);
    if (it != shard.rows.end()) record = it->second.get();
  }
  if (record == nullptr) {
    WriterMutexLock write_lock(shard.mu);
    auto& slot = shard.rows[row];
    if (!slot) slot = std::make_unique<VersionedRecord>(max_versions_);
    record = slot.get();
  }
  record->Install(origin, seq, std::move(value), stats);
}

const VersionedRecord* Table::Find(uint64_t row) const {
  const Shard& shard = ShardFor(row);
  ReaderMutexLock read_lock(shard.mu);
  auto it = shard.rows.find(row);
  return it == shard.rows.end() ? nullptr : it->second.get();
}

Status Table::Read(uint64_t row, const VersionVector& snapshot,
                   std::string* out, VersionStamp* observed) const {
  const VersionedRecord* record = Find(row);
  if (record == nullptr) return Status::NotFound("no such row");
  return record->ReadAtSnapshot(snapshot, out, observed);
}

Status Table::ReadLatest(uint64_t row, std::string* out) const {
  const VersionedRecord* record = Find(row);
  if (record == nullptr) return Status::NotFound("no such row");
  return record->ReadLatest(out);
}

bool Table::Contains(uint64_t row) const { return Find(row) != nullptr; }

void Table::ForEachRowId(const std::function<void(uint64_t)>& fn) const {
  for (const Shard& shard : shards_) {
    ReaderMutexLock read_lock(shard.mu);
    for (const auto& [row, record] : shard.rows) fn(row);
  }
}

size_t Table::NumRows() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    ReaderMutexLock read_lock(shard.mu);
    total += shard.rows.size();
  }
  return total;
}

}  // namespace dynamast::storage
