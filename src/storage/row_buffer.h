#ifndef DYNAMAST_STORAGE_ROW_BUFFER_H_
#define DYNAMAST_STORAGE_ROW_BUFFER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace dynamast::storage {

/// RowBuffer is the field codec for structured rows. The storage engine
/// stores each row as an opaque byte string (row-oriented, Section V-A1);
/// workload stored procedures use RowBuffer to pack/unpack typed fields
/// (TPC-C balances, YCSB fields, SmallBank accounts).
///
/// Layout: a field count, then for each field a 1-byte type tag and the
/// encoded value. Numeric fields are fixed-width little-endian; strings are
/// length-prefixed.
class RowBuffer {
 public:
  RowBuffer() = default;

  /// Parses an encoded row. Returns Corruption on malformed input.
  static Status Parse(std::string_view encoded, RowBuffer* out);

  void AddUint64(uint64_t v);
  void AddInt64(int64_t v);
  void AddDouble(double v);
  void AddString(std::string v);

  size_t NumFields() const { return fields_.size(); }

  /// Typed accessors; the program aborts (assert) on type mismatch — a
  /// schema bug, not a runtime condition.
  uint64_t GetUint64(size_t i) const;
  int64_t GetInt64(size_t i) const;
  double GetDouble(size_t i) const;
  const std::string& GetString(size_t i) const;

  /// In-place mutators (field must already exist with the same type).
  void SetUint64(size_t i, uint64_t v);
  void SetInt64(size_t i, int64_t v);
  void SetDouble(size_t i, double v);
  void SetString(size_t i, std::string v);

  std::string Encode() const;

 private:
  enum class FieldType : uint8_t {
    kUint64 = 0,
    kInt64 = 1,
    kDouble = 2,
    kString = 3,
  };
  struct Field {
    FieldType type;
    uint64_t num = 0;  // holds the bit pattern for u64/i64/double
    std::string str;
  };
  std::vector<Field> fields_;
};

}  // namespace dynamast::storage

#endif  // DYNAMAST_STORAGE_ROW_BUFFER_H_
