#include "storage/row_buffer.h"

#include <cassert>
#include <cstring>

namespace dynamast::storage {

namespace {

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

uint64_t DoubleBits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, 8);
  return bits;
}

double BitsToDouble(uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, 8);
  return d;
}

}  // namespace

Status RowBuffer::Parse(std::string_view encoded, RowBuffer* out) {
  out->fields_.clear();
  size_t pos = 0;
  auto need = [&](size_t n) { return pos + n <= encoded.size(); };
  if (!need(4)) return Status::Corruption("row: truncated field count");
  uint32_t count;
  std::memcpy(&count, encoded.data(), 4);
  pos = 4;
  if (count > (1u << 20)) return Status::Corruption("row: absurd field count");
  out->fields_.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (!need(1)) return Status::Corruption("row: truncated type tag");
    const uint8_t tag = static_cast<uint8_t>(encoded[pos++]);
    if (tag > 3) return Status::Corruption("row: bad type tag");
    Field f;
    f.type = static_cast<FieldType>(tag);
    if (f.type == FieldType::kString) {
      if (!need(4)) return Status::Corruption("row: truncated string length");
      uint32_t len;
      std::memcpy(&len, encoded.data() + pos, 4);
      pos += 4;
      if (!need(len)) return Status::Corruption("row: truncated string");
      f.str.assign(encoded.data() + pos, len);
      pos += len;
    } else {
      if (!need(8)) return Status::Corruption("row: truncated numeric");
      std::memcpy(&f.num, encoded.data() + pos, 8);
      pos += 8;
    }
    out->fields_.push_back(std::move(f));
  }
  if (pos != encoded.size()) return Status::Corruption("row: trailing bytes");
  return Status::OK();
}

void RowBuffer::AddUint64(uint64_t v) {
  fields_.push_back(Field{FieldType::kUint64, v, {}});
}

void RowBuffer::AddInt64(int64_t v) {
  fields_.push_back(Field{FieldType::kInt64, static_cast<uint64_t>(v), {}});
}

void RowBuffer::AddDouble(double v) {
  fields_.push_back(Field{FieldType::kDouble, DoubleBits(v), {}});
}

void RowBuffer::AddString(std::string v) {
  fields_.push_back(Field{FieldType::kString, 0, std::move(v)});
}

uint64_t RowBuffer::GetUint64(size_t i) const {
  assert(i < fields_.size() && fields_[i].type == FieldType::kUint64);
  return fields_[i].num;
}

int64_t RowBuffer::GetInt64(size_t i) const {
  assert(i < fields_.size() && fields_[i].type == FieldType::kInt64);
  return static_cast<int64_t>(fields_[i].num);
}

double RowBuffer::GetDouble(size_t i) const {
  assert(i < fields_.size() && fields_[i].type == FieldType::kDouble);
  return BitsToDouble(fields_[i].num);
}

const std::string& RowBuffer::GetString(size_t i) const {
  assert(i < fields_.size() && fields_[i].type == FieldType::kString);
  return fields_[i].str;
}

void RowBuffer::SetUint64(size_t i, uint64_t v) {
  assert(i < fields_.size() && fields_[i].type == FieldType::kUint64);
  fields_[i].num = v;
}

void RowBuffer::SetInt64(size_t i, int64_t v) {
  assert(i < fields_.size() && fields_[i].type == FieldType::kInt64);
  fields_[i].num = static_cast<uint64_t>(v);
}

void RowBuffer::SetDouble(size_t i, double v) {
  assert(i < fields_.size() && fields_[i].type == FieldType::kDouble);
  fields_[i].num = DoubleBits(v);
}

void RowBuffer::SetString(size_t i, std::string v) {
  assert(i < fields_.size() && fields_[i].type == FieldType::kString);
  fields_[i].str = std::move(v);
}

std::string RowBuffer::Encode() const {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(fields_.size()));
  for (const Field& f : fields_) {
    out.push_back(static_cast<char>(f.type));
    if (f.type == FieldType::kString) {
      PutU32(&out, static_cast<uint32_t>(f.str.size()));
      out.append(f.str);
    } else {
      PutU64(&out, f.num);
    }
  }
  return out;
}

}  // namespace dynamast::storage
