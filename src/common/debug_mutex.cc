#include "common/debug_mutex.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace dynamast::lockdebug {

namespace {

struct HeldLock {
  const void* instance;
  const char* name;
  uint64_t rank;
};

// One lock held by the current thread. A plain vector: held counts are
// tiny (2-4), and the stack is per-thread so no synchronization is needed.
thread_local std::vector<HeldLock> tls_held;

// Process-wide lock-order graph over lock-class names. Guarded by its own
// plain std::mutex (never a DebugMutex — the checker must not check
// itself). Node identity is by name *content*: the same literal compiled
// into different translation units must land on one node.
struct Graph {
  std::mutex mu;
  std::map<std::string, std::set<std::string>, std::less<>> edges;
  ViolationHandler handler = nullptr;

  bool Reaches(const std::string& from, const std::string& to,
               std::vector<std::string>* path) const {
    if (from == to) {
      path->push_back(from);
      return true;
    }
    auto it = edges.find(from);
    if (it == edges.end()) return false;
    path->push_back(from);
    for (const std::string& next : it->second) {
      if (Reaches(next, to, path)) return true;
    }
    path->pop_back();
    return false;
  }
};

Graph& GetGraph() {
  static Graph* graph = new Graph();  // leaked: outlives static dtors
  return *graph;
}

std::string DescribeHeld() {
  std::string out;
  for (const HeldLock& h : tls_held) {
    out += "  held: \"";
    out += h.name;
    out += "\"";
    if (h.rank != kNoRank) out += " rank " + std::to_string(h.rank);
    out += "\n";
  }
  return out;
}

[[noreturn]] void DefaultAbort(const std::string& report) {
  std::fputs(report.c_str(), stderr);
  std::fflush(stderr);
  std::abort();
}

void Violation(const std::string& report) {
  ViolationHandler handler;
  {
    std::lock_guard<std::mutex> guard(GetGraph().mu);
    handler = GetGraph().handler;
  }
  if (handler != nullptr) {
    handler(report.c_str());
    return;
  }
  DefaultAbort(report);
}

// Checks `instance` against the thread's held stack without recording
// edges; shared by OnLock and OnTryLock.
void CheckRecursion(const void* instance, const char* name) {
  for (const HeldLock& h : tls_held) {
    if (h.instance == instance) {
      Violation(std::string("DebugMutex: recursive acquisition of \"") + name +
                "\" (self-deadlock)\n" + DescribeHeld());
      return;
    }
  }
}

}  // namespace

void OnLock(const void* instance, const char* name, uint64_t rank) {
  CheckRecursion(instance, name);
  for (const HeldLock& h : tls_held) {
    if (std::strcmp(h.name, name) == 0) {
      // Same class: only rank-disciplined nesting is legal.
      if (h.rank == kNoRank || rank == kNoRank || h.rank >= rank) {
        Violation(std::string("DebugMutex: same-class nesting of \"") + name +
                  "\" without ascending ranks (held rank " +
                  (h.rank == kNoRank ? "none" : std::to_string(h.rank)) +
                  ", acquiring rank " +
                  (rank == kNoRank ? "none" : std::to_string(rank)) + ")\n" +
                  DescribeHeld());
        return;
      }
      continue;
    }
    std::string report;
    {
      Graph& graph = GetGraph();
      std::lock_guard<std::mutex> guard(graph.mu);
      auto& successors = graph.edges[h.name];
      if (successors.find(name) != successors.end()) continue;  // known edge
      // New edge h.name -> name: does `name` already reach h.name?
      std::vector<std::string> path;
      if (graph.Reaches(name, h.name, &path)) {
        report = "DebugMutex: lock-order inversion acquiring \"";
        report += name;
        report += "\" while holding \"";
        report += h.name;
        report += "\"\n  established order: ";
        for (const std::string& node : path) {
          report += "\"" + node + "\" -> ";
        }
        report += "\"";
        report += h.name;
        report += "\"\n  this acquisition closes the cycle: \"";
        report += h.name;
        report += "\" -> \"";
        report += name;
        report += "\"\n";
        report += DescribeHeld();
      } else {
        successors.insert(name);
      }
    }
    if (!report.empty()) Violation(report);
  }
  tls_held.push_back(HeldLock{instance, name, rank});
}

void OnTryLock(const void* instance, const char* name, uint64_t rank) {
  CheckRecursion(instance, name);
  tls_held.push_back(HeldLock{instance, name, rank});
}

void OnUnlock(const void* instance) {
  for (auto it = tls_held.rbegin(); it != tls_held.rend(); ++it) {
    if (it->instance == instance) {
      tls_held.erase(std::next(it).base());
      return;
    }
  }
  Violation("DebugMutex: unlock of a mutex this thread does not hold\n" +
            DescribeHeld());
}

size_t EdgeCount() {
  Graph& graph = GetGraph();
  std::lock_guard<std::mutex> guard(graph.mu);
  size_t count = 0;
  for (const auto& [node, successors] : graph.edges) {
    count += successors.size();
  }
  return count;
}

size_t HeldCount() { return tls_held.size(); }

void ResetGraphForTest() {
  Graph& graph = GetGraph();
  std::lock_guard<std::mutex> guard(graph.mu);
  graph.edges.clear();
}

void SetViolationHandlerForTest(ViolationHandler handler) {
  Graph& graph = GetGraph();
  std::lock_guard<std::mutex> guard(graph.mu);
  graph.handler = handler;
}

}  // namespace dynamast::lockdebug
