#ifndef DYNAMAST_COMMON_DEBUG_MUTEX_H_
#define DYNAMAST_COMMON_DEBUG_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <type_traits>

#include "common/scheduler.h"
#include "common/thread_annotations.h"

#if defined(DYNAMAST_LOCK_PROFILE) && DYNAMAST_LOCK_PROFILE
#include "common/lock_profile.h"
#endif

namespace dynamast {

/// Lock-order and deadlock checking for the debug builds (see DESIGN.md,
/// "Correctness tooling").
///
/// Every mutex in the concurrent subsystems (lock_manager, site_manager,
/// admission_gate, durable_log, sim_network, storage engine, partition map)
/// is declared as a DebugMutex / DebugSharedMutex with a lock-*class* name
/// ("site.state", "log.topic", ...). In default builds these wrappers
/// compile to plain std::mutex / std::shared_mutex forwarding (zero cost);
/// when the build is configured with -DDYNAMAST_LOCK_DEBUG=ON every
/// acquisition is checked against a process-wide lock-order graph:
///
///  * recursive acquisition of the same instance aborts immediately
///    (std::mutex self-deadlock / UB);
///  * acquiring a lock of class B while holding class A records the edge
///    A -> B; if the edge closes a cycle in the graph, the process aborts
///    with the full cycle and the acquiring thread's held-lock stack;
///  * classes whose instances are nested intentionally (e.g. the partition
///    map's per-partition locks, taken in sorted order) carry a per-instance
///    *rank*; holding two instances of one class requires strictly
///    ascending ranks, otherwise the process aborts.
///
/// The checker itself (lockdebug::*) is always compiled into
/// dynamast_common so its unit tests run in every build configuration; the
/// DYNAMAST_LOCK_DEBUG macro only selects which wrapper the production
/// types alias.
///
/// All wrappers are additionally Clang TSA *capabilities* (see DESIGN.md,
/// "Static thread-safety"): under the `clang-tsa` preset the compiler
/// proves, for every path, that DYNAMAST_GUARDED_BY fields are only
/// touched with their lock held. Guarded state must therefore be accessed
/// through the scoped lockers below (MutexLock / ReaderMutexLock /
/// WriterMutexLock) — std::lock_guard over these types still compiles but
/// is invisible to the analysis.
namespace lockdebug {

/// Rank for lock classes whose instances must never be held together.
inline constexpr uint64_t kNoRank = UINT64_MAX;

/// Checks an impending blocking acquisition and pushes it on the calling
/// thread's held-lock stack. Aborts (after printing a report to stderr) on
/// recursive acquisition, same-class rank inversion, or a cross-class
/// lock-order cycle.
void OnLock(const void* instance, const char* name, uint64_t rank);

/// Records a successful try_lock: the lock joins the held stack (so later
/// blocking acquisitions see it) but records no ordering edges — a
/// non-blocking acquisition cannot complete a deadlock cycle.
void OnTryLock(const void* instance, const char* name, uint64_t rank);

/// Pops `instance` from the calling thread's held-lock stack.
void OnUnlock(const void* instance);

/// Number of distinct lock-order edges observed so far (diagnostics).
size_t EdgeCount();

/// Number of locks the calling thread currently holds (diagnostics).
size_t HeldCount();

/// Clears the global lock-order graph. Test isolation only.
void ResetGraphForTest();

/// If set, order violations call this instead of aborting (unit tests
/// observing detection without death tests). Pass nullptr to restore the
/// default abort behaviour.
using ViolationHandler = void (*)(const char* report);
void SetViolationHandlerForTest(ViolationHandler handler);

// ---------------------------------------------------------------------
// Checked wrappers (used directly by the checker's own tests; production
// code names them via the DebugMutex / DebugSharedMutex aliases below).
// ---------------------------------------------------------------------

class DYNAMAST_CAPABILITY("mutex") TrackedMutex {
 public:
  explicit TrackedMutex(const char* name, uint64_t rank = kNoRank)
      : name_(name), rank_(rank), sched_uid_(DYNAMAST_SCHED_REGISTER(name)) {}

  TrackedMutex(const TrackedMutex&) = delete;
  TrackedMutex& operator=(const TrackedMutex&) = delete;

  void lock() DYNAMAST_ACQUIRE() {
    // The scope spans the native acquisition: in record mode the entry is
    // appended once the lock is actually held (post-completion), in
    // replay mode the gate blocks until this acquisition is the object's
    // recorded next operation.
    DYNAMAST_SCHED_OP_SCOPE(sched_op, kMutexLock, sched_uid_);
    OnLock(this, name_, rank_);
    mu_.lock();
  }
  bool try_lock() DYNAMAST_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    OnTryLock(this, name_, rank_);
    return true;
  }
  void unlock() DYNAMAST_RELEASE() {
    // Releases trace pre-operation, so every enabling release precedes
    // the acquisition it enables in the recorded stream.
    DYNAMAST_SCHED_OP_SCOPE(sched_op, kMutexUnlock, sched_uid_);
    OnUnlock(this);
    mu_.unlock();
  }

  void set_rank(uint64_t rank) { rank_ = rank; }

  // DebugCondVar support: the native mutex a condition variable waits on,
  // and the held-stack bookkeeping around the wait's release/reacquire.
  std::mutex& native() { return mu_; }
  void OnCvWaitRelease() { OnUnlock(this); }
  void OnCvWaitReacquire() { OnLock(this, name_, rank_); }

 private:
  std::mutex mu_;
  const char* name_;
  uint64_t rank_;
  uint32_t sched_uid_;
};

class DYNAMAST_CAPABILITY("shared_mutex") TrackedSharedMutex {
 public:
  explicit TrackedSharedMutex(const char* name, uint64_t rank = kNoRank)
      : name_(name), rank_(rank), sched_uid_(DYNAMAST_SCHED_REGISTER(name)) {}

  TrackedSharedMutex(const TrackedSharedMutex&) = delete;
  TrackedSharedMutex& operator=(const TrackedSharedMutex&) = delete;

  void lock() DYNAMAST_ACQUIRE() {
    DYNAMAST_SCHED_OP_SCOPE(sched_op, kMutexLock, sched_uid_);
    OnLock(this, name_, rank_);
    mu_.lock();
  }
  bool try_lock() DYNAMAST_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    OnTryLock(this, name_, rank_);
    return true;
  }
  void unlock() DYNAMAST_RELEASE() {
    DYNAMAST_SCHED_OP_SCOPE(sched_op, kMutexUnlock, sched_uid_);
    OnUnlock(this);
    mu_.unlock();
  }

  // Shared acquisitions participate in ordering checks too: a reader
  // blocked behind a queued writer is still a wait-for edge.
  void lock_shared() DYNAMAST_ACQUIRE_SHARED() {
    DYNAMAST_SCHED_OP_SCOPE(sched_op, kMutexLockShared, sched_uid_);
    OnLock(this, name_, rank_);
    mu_.lock_shared();
  }
  bool try_lock_shared() DYNAMAST_TRY_ACQUIRE_SHARED(true) {
    if (!mu_.try_lock_shared()) return false;
    OnTryLock(this, name_, rank_);
    return true;
  }
  void unlock_shared() DYNAMAST_RELEASE_SHARED() {
    DYNAMAST_SCHED_OP_SCOPE(sched_op, kMutexUnlockShared, sched_uid_);
    OnUnlock(this);
    mu_.unlock_shared();
  }

  void set_rank(uint64_t rank) { rank_ = rank; }

 private:
  std::shared_mutex mu_;
  const char* name_;
  uint64_t rank_;
  uint32_t sched_uid_;
};

// ---------------------------------------------------------------------
// Zero-cost pass-through wrappers (default builds).
// ---------------------------------------------------------------------

class DYNAMAST_CAPABILITY("mutex") PlainMutex {
 public:
  explicit PlainMutex(const char* name, uint64_t /*rank*/ = kNoRank)
      : sched_uid_(DYNAMAST_SCHED_REGISTER(name)) {}

  PlainMutex(const PlainMutex&) = delete;
  PlainMutex& operator=(const PlainMutex&) = delete;

  void lock() DYNAMAST_ACQUIRE() {
    DYNAMAST_SCHED_OP_SCOPE(sched_op, kMutexLock, sched_uid_);
    mu_.lock();
  }
  bool try_lock() DYNAMAST_TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void unlock() DYNAMAST_RELEASE() {
    DYNAMAST_SCHED_OP_SCOPE(sched_op, kMutexUnlock, sched_uid_);
    mu_.unlock();
  }
  void set_rank(uint64_t /*rank*/) {}

  std::mutex& native() { return mu_; }
  void OnCvWaitRelease() {}
  void OnCvWaitReacquire() {}

 private:
  std::mutex mu_;
  uint32_t sched_uid_;
};

class DYNAMAST_CAPABILITY("shared_mutex") PlainSharedMutex {
 public:
  explicit PlainSharedMutex(const char* name, uint64_t /*rank*/ = kNoRank)
      : sched_uid_(DYNAMAST_SCHED_REGISTER(name)) {}

  PlainSharedMutex(const PlainSharedMutex&) = delete;
  PlainSharedMutex& operator=(const PlainSharedMutex&) = delete;

  void lock() DYNAMAST_ACQUIRE() {
    DYNAMAST_SCHED_OP_SCOPE(sched_op, kMutexLock, sched_uid_);
    mu_.lock();
  }
  bool try_lock() DYNAMAST_TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void unlock() DYNAMAST_RELEASE() {
    DYNAMAST_SCHED_OP_SCOPE(sched_op, kMutexUnlock, sched_uid_);
    mu_.unlock();
  }
  void lock_shared() DYNAMAST_ACQUIRE_SHARED() {
    DYNAMAST_SCHED_OP_SCOPE(sched_op, kMutexLockShared, sched_uid_);
    mu_.lock_shared();
  }
  bool try_lock_shared() DYNAMAST_TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }
  void unlock_shared() DYNAMAST_RELEASE_SHARED() {
    DYNAMAST_SCHED_OP_SCOPE(sched_op, kMutexUnlockShared, sched_uid_);
    mu_.unlock_shared();
  }
  void set_rank(uint64_t /*rank*/) {}

 private:
  std::shared_mutex mu_;
  uint32_t sched_uid_;
};

}  // namespace lockdebug

// Alias selection: DYNAMAST_LOCK_DEBUG picks the checked or pass-through
// base; DYNAMAST_LOCK_PROFILE (see common/lock_profile.h) layers the
// contention profiler over whichever base was picked. With the profiler
// off the aliases are exactly the bases — zero cost, zero registry
// families.
#if defined(DYNAMAST_LOCK_DEBUG) && DYNAMAST_LOCK_DEBUG
using BaseDebugMutex = lockdebug::TrackedMutex;
using BaseDebugSharedMutex = lockdebug::TrackedSharedMutex;
#else
using BaseDebugMutex = lockdebug::PlainMutex;
using BaseDebugSharedMutex = lockdebug::PlainSharedMutex;
#endif

#if defined(DYNAMAST_LOCK_PROFILE) && DYNAMAST_LOCK_PROFILE
#if DYNAMAST_SCHED_FUZZ_ENABLED
#error \
    "DYNAMAST_LOCK_PROFILE is incompatible with DYNAMAST_SCHED_FUZZ: the " \
    "profiler's try-first acquisition protocol would perturb the recorded " \
    "scheduling decision stream."
#endif
using DebugMutex = lockprof::ProfiledMutex<BaseDebugMutex>;
using DebugSharedMutex = lockprof::ProfiledSharedMutex<BaseDebugSharedMutex>;
#else
using DebugMutex = BaseDebugMutex;
using DebugSharedMutex = BaseDebugSharedMutex;
#endif

/// Capability-annotated plain std::mutex, for infrastructure at or below
/// the scheduler layer (metrics registry, tracer, latency recorder, the
/// routing-explain ring): state that must stay *outside* the
/// schedule-exploration decision stream. A DebugMutex here would call
/// DYNAMAST_SCHED_REGISTER and emit lock operations into the record/replay
/// trace, perturbing the object-identity tables whenever telemetry is
/// toggled; RawMutex carries the TSA capability without any hooks.
class DYNAMAST_CAPABILITY("mutex") RawMutex {
 public:
  RawMutex() = default;
  RawMutex(const RawMutex&) = delete;
  RawMutex& operator=(const RawMutex&) = delete;

  void lock() DYNAMAST_ACQUIRE() { mu_.lock(); }
  bool try_lock() DYNAMAST_TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void unlock() DYNAMAST_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

// ---------------------------------------------------------------------
// Scoped lockers. These are what annotated code must use: the analysis
// tracks their constructor/destructor (DYNAMAST_SCOPED_CAPABILITY), which
// std::lock_guard/std::unique_lock over our wrapper types — instantiated
// inside unannotated system headers — cannot provide.
// ---------------------------------------------------------------------

/// Exclusive RAII lock over any capability with lock()/unlock()
/// (DebugMutex, DebugSharedMutex, RawMutex).
template <class MutexT>
class DYNAMAST_SCOPED_CAPABILITY BasicMutexLock {
 public:
  explicit BasicMutexLock(MutexT& mu) DYNAMAST_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~BasicMutexLock() DYNAMAST_RELEASE() { mu_.unlock(); }

  BasicMutexLock(const BasicMutexLock&) = delete;
  BasicMutexLock& operator=(const BasicMutexLock&) = delete;

 private:
  MutexT& mu_;
};

/// Shared (reader) RAII lock over a shared-capable capability.
template <class MutexT>
class DYNAMAST_SCOPED_CAPABILITY BasicReaderLock {
 public:
  explicit BasicReaderLock(MutexT& mu) DYNAMAST_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~BasicReaderLock() DYNAMAST_RELEASE() { mu_.unlock_shared(); }

  BasicReaderLock(const BasicReaderLock&) = delete;
  BasicReaderLock& operator=(const BasicReaderLock&) = delete;

 private:
  MutexT& mu_;
};

using MutexLock = BasicMutexLock<DebugMutex>;
using WriterMutexLock = BasicMutexLock<DebugSharedMutex>;
using ReaderMutexLock = BasicReaderLock<DebugSharedMutex>;
using RawMutexLock = BasicMutexLock<RawMutex>;

/// Condition variable for DebugMutex-guarded state. Waits are called with
/// the guarding mutex held (`cv.wait(mu_, pred)`) — the mutex parameter
/// carries the DYNAMAST_REQUIRES contract, so a wait without the
/// capability is a compile error under the clang-tsa preset. Waits run on
/// the wrapped std::mutex directly (no condition_variable_any), so the
/// default build is exactly a std::condition_variable; in lock-debug
/// builds the wait notifies the checker that the mutex is released for the
/// duration of the wait.
///
/// In the scheduler's armed modes (record/replay/explore, fuzz builds
/// only) waits take a different path entirely: the native condvar's
/// wake-up race is an untraced scheduling decision, so instead the wait
/// performs a *traced* unlock, parks on the scheduler until the condvar's
/// generation counter moves (sched::CvNotify, bumped by notify_one/all),
/// then performs a *traced* re-acquisition. The lock handoff — the
/// decision that matters — lands in the decision stream; the predicate
/// loop around every wait absorbs the extra wake-ups this produces.
template <class MutexT>
class BasicDebugCondVar {
 public:
  BasicDebugCondVar() = default;
  BasicDebugCondVar(const BasicDebugCondVar&) = delete;
  BasicDebugCondVar& operator=(const BasicDebugCondVar&) = delete;

  void notify_one() noexcept {
    cv_.notify_one();
#if DYNAMAST_SCHED_FUZZ_ENABLED
    if (sched::CvRedirectArmed()) sched::CvNotify(this);
#endif
  }
  void notify_all() noexcept {
    cv_.notify_all();
#if DYNAMAST_SCHED_FUZZ_ENABLED
    if (sched::CvRedirectArmed()) sched::CvNotify(this);
#endif
  }

  DYNAMAST_BLOCKING void wait(MutexT& mu) DYNAMAST_REQUIRES(mu) {
#if DYNAMAST_SCHED_FUZZ_ENABLED
    if (sched::CvRedirectArmed()) {
      (void)ArmedWait(mu, std::chrono::steady_clock::time_point::max());
      return;
    }
#endif
    WaitScope scope(mu);
    cv_.wait(scope.inner);
  }

  template <class Pred>
  DYNAMAST_BLOCKING void wait(MutexT& mu, Pred pred) DYNAMAST_REQUIRES(mu) {
    while (!pred()) wait(mu);
  }

  template <class Clock, class Duration>
  DYNAMAST_BLOCKING std::cv_status wait_until(
      MutexT& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      DYNAMAST_REQUIRES(mu) {
#if DYNAMAST_SCHED_FUZZ_ENABLED
    if (sched::CvRedirectArmed()) return ArmedWait(mu, ToSteady(deadline));
#endif
    WaitScope scope(mu);
    return cv_.wait_until(scope.inner, deadline);
  }

  template <class Clock, class Duration, class Pred>
  DYNAMAST_BLOCKING bool wait_until(
      MutexT& mu, const std::chrono::time_point<Clock, Duration>& deadline,
      Pred pred) DYNAMAST_REQUIRES(mu) {
    while (!pred()) {
      if (wait_until(mu, deadline) == std::cv_status::timeout) return pred();
    }
    return true;
  }

  template <class Rep, class Period>
  DYNAMAST_BLOCKING std::cv_status wait_for(
      MutexT& mu, const std::chrono::duration<Rep, Period>& rel)
      DYNAMAST_REQUIRES(mu) {
#if DYNAMAST_SCHED_FUZZ_ENABLED
    if (sched::CvRedirectArmed()) {
      return ArmedWait(mu, std::chrono::steady_clock::now() + rel);
    }
#endif
    WaitScope scope(mu);
    return cv_.wait_for(scope.inner, rel);
  }

 private:
#if DYNAMAST_SCHED_FUZZ_ENABLED
  template <class Clock, class Duration>
  static std::chrono::steady_clock::time_point ToSteady(
      const std::chrono::time_point<Clock, Duration>& tp) {
    if constexpr (std::is_same_v<Clock, std::chrono::steady_clock>) {
      return std::chrono::time_point_cast<std::chrono::steady_clock::duration>(
          tp);
    } else {
      const auto delta = tp - Clock::now();
      return std::chrono::steady_clock::now() +
             std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                 delta);
    }
  }

  std::cv_status ArmedWait(MutexT& mu,
                           std::chrono::steady_clock::time_point deadline)
      DYNAMAST_REQUIRES(mu) {
    const uint64_t gen = sched::CvGeneration(this);
    mu.unlock();  // traced release
    const bool changed = sched::CvPark(this, gen, deadline);
    mu.lock();  // traced reacquisition: the arbitration is in the trace
    return changed ? std::cv_status::no_timeout : std::cv_status::timeout;
  }
#endif

  // Adopts the caller's DebugMutex as a std::unique_lock<std::mutex> over
  // its native mutex for the duration of one wait, so the standard
  // condition variable can unlock/relock it. The caller's scoped lock
  // keeps ownership; the checker sees the release and reacquisition. (The
  // native handoff is invisible to TSA — the wait's REQUIRES contract
  // holds at entry and exit, which is what callers rely on.)
  struct WaitScope {
    explicit WaitScope(MutexT& mu)
        : mutex(&mu), inner(mu.native(), std::adopt_lock) {
      mutex->OnCvWaitRelease();
    }
    ~WaitScope() {
      inner.release();
      mutex->OnCvWaitReacquire();
    }
    MutexT* mutex;
    std::unique_lock<std::mutex> inner;
  };

  std::condition_variable cv_;
};

using DebugCondVar = BasicDebugCondVar<DebugMutex>;

}  // namespace dynamast

#endif  // DYNAMAST_COMMON_DEBUG_MUTEX_H_
