#ifndef DYNAMAST_COMMON_PARTITIONER_H_
#define DYNAMAST_COMMON_PARTITIONER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

#include "common/key.h"

namespace dynamast {

/// Maps record keys to partitions — the unit of mastership tracking and
/// remastering (Section V-B). The mapping is fixed for a deployment (what
/// moves between sites is *mastership* of partitions, never the mapping
/// itself). Workloads define the mapping: YCSB uses 100-key ranges,
/// TPC-C partitions by (table, warehouse[, district]), SmallBank by
/// customer ranges.
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  /// Partition of `key`. Total over all keys the workload can generate.
  virtual PartitionId PartitionOf(const RecordKey& key) const = 0;

  /// Dense upper bound on partition ids (ids are in [0, NumPartitions())).
  virtual size_t NumPartitions() const = 0;
};

/// Adapts a lambda; convenient for workload-specific layouts.
class FunctionPartitioner final : public Partitioner {
 public:
  FunctionPartitioner(std::function<PartitionId(const RecordKey&)> fn,
                      size_t num_partitions)
      : fn_(std::move(fn)), num_partitions_(num_partitions) {}

  PartitionId PartitionOf(const RecordKey& key) const override {
    return fn_(key);
  }
  size_t NumPartitions() const override { return num_partitions_; }

 private:
  std::function<PartitionId(const RecordKey&)> fn_;
  size_t num_partitions_;
};

/// Range partitioner over a single-table dense key space: partition =
/// row / keys_per_partition. This is the YCSB layout of Appendix C
/// (partitions of 100 contiguous keys) and the range scheme Schism selects
/// for YCSB in Section VI-B1.
class RangePartitioner final : public Partitioner {
 public:
  RangePartitioner(uint64_t keys_per_partition, size_t num_partitions)
      : keys_per_partition_(keys_per_partition),
        num_partitions_(num_partitions) {}

  PartitionId PartitionOf(const RecordKey& key) const override {
    return key.row / keys_per_partition_;
  }
  size_t NumPartitions() const override { return num_partitions_; }

 private:
  uint64_t keys_per_partition_;
  size_t num_partitions_;
};

}  // namespace dynamast

#endif  // DYNAMAST_COMMON_PARTITIONER_H_
