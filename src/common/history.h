#ifndef DYNAMAST_COMMON_HISTORY_H_
#define DYNAMAST_COMMON_HISTORY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/debug_mutex.h"
#include "common/key.h"
#include "common/status.h"
#include "common/version_vector.h"

namespace dynamast::history {

/// History recording for the offline SI auditor (tools/si_checker; see
/// DESIGN.md, "Schedule exploration & history auditing").
///
/// When a Cluster is built with `record_history`, every SiteManager emits
/// one HistoryEvent per transaction outcome (commit or abort) and per
/// remastering marker (release / grant), capturing exactly what the
/// isolation proofs quantify over: the begin snapshot, the read set with
/// the *observed* version of each read, the write set, the commit vector,
/// and the session that issued the transaction. Events are appended under
/// the site's state mutex from within the commit / marker critical
/// section, so the recorder's global sequence is consistent with real-time
/// order: if event A's critical section completed before event B's began
/// (on any site), A precedes B in the recorder.

/// One snapshot read and the version it actually observed: the row's value
/// carried (origin site, per-origin sequence) of the commit that installed
/// it. (0, 0) denotes the pre-history base version installed by loaders.
struct ReadObservation {
  RecordKey key;
  SiteId origin = 0;
  uint64_t seq = 0;
};

/// One staged write and the partition it belongs to (the remastering-
/// window check is per-partition).
struct WriteObservation {
  RecordKey key;
  PartitionId partition = 0;
};

enum class EventKind : uint8_t {
  kCommit = 0,
  kAbort = 1,
  kRelease = 2,
  kGrant = 3,
};

const char* EventKindName(EventKind kind);

struct HistoryEvent {
  /// Dense global sequence assigned by the Recorder.
  uint64_t seq = 0;
  EventKind kind = EventKind::kCommit;
  SiteId site = kInvalidSite;
  /// Issuing client session (0 for markers / sessionless transactions).
  ClientId client = 0;
  /// Per-client logical transaction number: 2PC branches of one logical
  /// transaction share it, so the session checker folds their commit
  /// vectors together instead of requiring one branch to see another.
  uint64_t client_txn = 0;
  bool read_only = false;

  /// Begin snapshot (commits and aborts).
  VersionVector begin;
  /// Commit vector (tvv) for commits; marker vector (svv after the marker
  /// bump) for release/grant; empty for aborts.
  VersionVector commit;
  /// The per-origin slot this event occupies in its site's commit order:
  /// commit[site] for update commits and markers, 0 for read-only commits
  /// and aborts (they install nothing).
  uint64_t installed_seq = 0;

  std::vector<ReadObservation> reads;
  std::vector<WriteObservation> writes;

  /// Markers only: partitions transferred and the peer site.
  std::vector<PartitionId> partitions;
  SiteId peer = kInvalidSite;
  /// Grant markers only: the release vector the grant waited for. The
  /// auditor checks every post-grant writer's begin against it.
  VersionVector release_version;
};

/// Thread-safe append-only event log shared by all sites of a cluster.
class Recorder {
 public:
  Recorder() = default;
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  /// Assigns the event its global sequence and appends it. Safe to call
  /// while holding a site's state mutex (the recorder mutex is a leaf).
  DYNAMAST_BLOCKING void Record(HistoryEvent event) DYNAMAST_EXCLUDES(mu_);

  size_t size() const DYNAMAST_EXCLUDES(mu_);
  std::vector<HistoryEvent> Snapshot() const DYNAMAST_EXCLUDES(mu_);
  void Clear() DYNAMAST_EXCLUDES(mu_);

  /// Serializes the recorded history in the line format ParseHistory
  /// reads (the si_checker CLI's input).
  std::string Serialize() const;
  Status DumpToFile(const std::string& path) const;

  /// Stable 64-bit hash over the serialized history. Every field of every
  /// event is logical (sequence numbers, version vectors, key sets — no
  /// wall-clock), so two executions produce the same hash iff they made
  /// the same decisions in the same order: the exact-replay check.
  uint64_t Hash() const;

 private:
  mutable DebugMutex mu_{"history.recorder"};
  std::vector<HistoryEvent> events_ DYNAMAST_GUARDED_BY(mu_);
};

/// Hash() over an already-snapshotted event list.
uint64_t HashEvents(const std::vector<HistoryEvent>& events);

/// Serializes one event as a single line (no trailing newline).
std::string SerializeEvent(const HistoryEvent& event);

/// Parses one SerializeEvent line.
Status ParseEvent(std::string_view line, HistoryEvent* out);

/// Parses a whole history dump; blank lines and '#' comments are skipped.
Status ParseHistory(std::string_view text, std::vector<HistoryEvent>* out);

}  // namespace dynamast::history

#endif  // DYNAMAST_COMMON_HISTORY_H_
