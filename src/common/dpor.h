#ifndef DYNAMAST_COMMON_DPOR_H_
#define DYNAMAST_COMMON_DPOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/sched_trace.h"
#include "common/scheduler.h"

namespace dynamast::sched {

/// Dynamic partial-order reduction driver (Flanagan & Godefroid, POPL'05,
/// with sleep sets) over the explore-mode serial scheduler.
///
/// The explorer repeatedly executes a scenario under StartExplore /
/// StopExplore. After each execution it computes happens-before over the
/// recorded sync-point events with vector clocks (program order plus
/// conflicting-operation order per object: mutex pairs, message
/// send→deliver, slot release→grant, log appends), finds racing pairs —
/// conflicting operations by different threads not otherwise ordered —
/// and inserts backtracking points only there. Branches already explored
/// at a choice point become that point's sleep set in sibling branches,
/// so equivalent interleavings (differing only in the order of
/// independent operations) are executed once and counted as pruned.

struct DporOptions {
  size_t max_executions = 64;
  /// Per-execution step budget (granted operations).
  size_t max_steps = 1 << 20;
  /// Bounded-preemption fallback after the forced prefix; <0 = unbounded.
  int preemption_bound = -1;
  uint64_t seed = 0;
  bool stop_on_failure = true;
  /// ExploreOptions::await_threads for every execution: hold the first
  /// grant until this many threads registered, so the initial choice
  /// points see the full enabled set instead of racing thread startup.
  size_t await_threads = 0;
};

struct DporOutcome {
  bool failed = false;
  std::string note;
};

struct DporStats {
  size_t executed = 0;
  /// Schedule-choice alternatives DPOR proved equivalent and never ran:
  /// sum over finalized choice points of |enabled| - |explored|.
  size_t pruned = 0;
  /// Choice points where a race inserted a backtracking alternative.
  size_t backtrack_points = 0;
  /// Executions whose forced prefix failed to apply.
  size_t divergences = 0;
  /// Stall-watchdog grants across all executions (nondeterminism signal).
  size_t stall_grants = 0;
  bool budget_exhausted = false;
  bool failure_found = false;
  std::string failure;
  Trace failure_trace;
  std::string ToString() const;
};

class DporExplorer {
 public:
  explicit DporExplorer(DporOptions options) : options_(options) {}

  /// Runs the scenario until the branch tree is exhausted, the execution
  /// budget runs out, or (with stop_on_failure) a failing execution is
  /// found. `execution` performs one full run of the scenario — build,
  /// exercise, teardown-with-joins — and reports whether it failed; the
  /// explorer brackets it with StartExplore/StopExplore.
  DporStats Run(const std::function<DporOutcome()>& execution);

 private:
  struct Frame {
    std::vector<uint32_t> enabled;
    std::vector<uint32_t> done;
    std::vector<uint32_t> backtrack;
    uint32_t chosen = 0;
  };

  void AddBacktrack(Frame& frame, uint32_t q, DporStats& stats);

  DporOptions options_;
};

/// Shrinks a failing trace to the shortest prefix whose replay (prefix
/// enforced, remainder free-running) still fails, by binary search.
/// `fails` replays the candidate trace and reports whether the failure
/// reproduced. The returned trace is re-confirmed; if even the full trace
/// stops failing (flaky tail), the input is returned unchanged.
Trace MinimizeTracePrefix(const Trace& trace,
                          const std::function<bool(const Trace&)>& fails);

}  // namespace dynamast::sched

#endif  // DYNAMAST_COMMON_DPOR_H_
