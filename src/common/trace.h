#ifndef DYNAMAST_COMMON_TRACE_H_
#define DYNAMAST_COMMON_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/debug_mutex.h"

namespace dynamast::trace {

/// One completed span (Chrome trace-event "X" phase) or instant event
/// ("i"). Timestamps are metrics::NowMicros() (shared process epoch), so
/// spans from different sites of one simulated cluster — and from the
/// selector — line up on one timeline.
///
/// Conventions in this codebase:
///   pid  = site id (the selector uses num_sites; see SetProcessName)
///   tid  = client id for transaction work, origin site for appliers
///   args carries the correlation key "txn" = "c<client>.t<client_txn>"
///        plus span-specific values (scores, counts, status).
struct TraceEvent {
  std::string name;
  std::string cat;
  char ph = 'X';
  uint64_t ts_us = 0;
  uint64_t dur_us = 0;
  uint32_t pid = 0;
  uint64_t tid = 0;
  std::vector<std::pair<std::string, std::string>> args;

  /// Serializes this one event as a Chrome trace-event JSON object,
  /// shifting pid by `pid_offset` (benches merge several runs into one
  /// file by giving each run a disjoint pid range).
  std::string ToJson(uint32_t pid_offset = 0) const;
};

/// Bounded in-memory span sink. Recording is mutex-guarded but cheap
/// (one lock, one ring slot); tracing is off by default
/// (Cluster::Options::trace) so the steady-state cost is a null check.
class Tracer {
 public:
  explicit Tracer(size_t capacity = kDefaultCapacity);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  DYNAMAST_EXPENSIVE void Record(TraceEvent event) DYNAMAST_EXCLUDES(mu_);

  /// Ring contents in record order (oldest first).
  std::vector<TraceEvent> Snapshot() const DYNAMAST_EXCLUDES(mu_);

  /// Events evicted because the ring was full.
  uint64_t dropped() const DYNAMAST_EXCLUDES(mu_);
  size_t size() const DYNAMAST_EXCLUDES(mu_);
  size_t capacity() const { return capacity_; }

  /// Names a pid lane ("site0", "selector") in the exported trace.
  void SetProcessName(uint32_t pid, std::string name) DYNAMAST_EXCLUDES(mu_);
  std::map<uint32_t, std::string> process_names() const
      DYNAMAST_EXCLUDES(mu_);

  /// Full Chrome trace-event JSON ({"traceEvents":[...]}) of this tracer's
  /// contents, including process_name metadata events. Loadable in
  /// Perfetto / chrome://tracing.
  std::string ToChromeJson() const;

  static constexpr size_t kDefaultCapacity = 1 << 16;

 private:
  const size_t capacity_;
  // RawMutex (no sched hooks): spans are recorded inside scheduler-visible
  // critical sections, so the sink lock must not re-enter the scheduler.
  mutable RawMutex mu_;
  std::vector<TraceEvent> ring_ DYNAMAST_GUARDED_BY(mu_);
  size_t next_ DYNAMAST_GUARDED_BY(mu_) = 0;       // write cursor when full
  bool wrapped_ DYNAMAST_GUARDED_BY(mu_) = false;  // wrapped at least once
  uint64_t dropped_ DYNAMAST_GUARDED_BY(mu_) = 0;
  std::map<uint32_t, std::string> process_names_ DYNAMAST_GUARDED_BY(mu_);
};

/// Builds a process_name metadata event (ph "M").
TraceEvent ProcessNameEvent(uint32_t pid, const std::string& name);

/// RAII span: starts at construction, records into `tracer` at End() /
/// destruction. Null `tracer` makes every operation a no-op, so call
/// sites need no tracing-enabled branches.
class Span {
 public:
  Span(Tracer* tracer, std::string name, std::string cat, uint32_t pid,
       uint64_t tid);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches the cross-site transaction correlation key.
  void SetTxn(uint64_t client, uint64_t client_txn);
  void AddArg(std::string key, std::string value);
  void AddNum(std::string key, double value);

  /// Ends the span now (idempotent; destructor calls it).
  void End();

 private:
  Tracer* tracer_;
  TraceEvent event_;
  bool ended_;
};

}  // namespace dynamast::trace

#endif  // DYNAMAST_COMMON_TRACE_H_
