#ifndef DYNAMAST_COMMON_LOCK_PROFILE_H_
#define DYNAMAST_COMMON_LOCK_PROFILE_H_

#include <chrono>
#include <cstdint>
#include <mutex>

#include "common/thread_annotations.h"

namespace dynamast::metrics {
class Registry;
}  // namespace dynamast::metrics

namespace dynamast::lockprof {

/// Lock-contention profiling for the DYNAMAST_LOCK_PROFILE build (see
/// DESIGN.md, "Timelines & convergence tracking"). ProfiledMutex /
/// ProfiledSharedMutex wrap the Tracked*/Plain* wrappers from
/// common/debug_mutex.h and export, per lock *class* (the registry names
/// "site.state", "log.topic", ...), through the metrics registry:
///
///   lock_acquires_total{lock_class}            every acquisition
///   lock_contended_acquires_total{lock_class}  acquisitions that blocked
///   lock_wait_us{lock_class}                   wait time of contended
///                                              acquisitions only
///   lock_hold_us{lock_class}                   exclusive hold segments
///
/// Contention is detected with a try-first protocol: an uncontended
/// acquisition is the try_lock itself; on failure the profiler timestamps,
/// falls back to the blocking lock(), and attributes the measured wait to
/// the class. Hold time is tracked for exclusive ownership only (shared
/// holds overlap and have no single owner); a condition-variable wait
/// closes the current hold segment and opens a new one on reacquire, so
/// parked time never counts as holding.
///
/// Like the lock-order checker, these templates are always compiled (their
/// unit tests run in every configuration); the DYNAMAST_LOCK_PROFILE macro
/// only selects whether the production DebugMutex aliases route through
/// them. Two composition caveats, both documented in DESIGN.md:
///
///  * with DYNAMAST_LOCK_DEBUG, uncontended acquisitions enter the
///    checker via OnTryLock, which records no lock-order edges — the
///    profile build trades edge coverage on uncontended paths;
///  * DYNAMAST_SCHED_FUZZ is incompatible (the try-first protocol would
///    perturb the recorded decision stream) and is rejected at configure
///    time and by an #error in common/debug_mutex.h.
///
/// The per-class stats are resolved against metrics::Registry::Global()
/// once per class name, at mutex construction; RegisterClass is safe for
/// static-lifetime mutexes (Global() is a function-local static).

/// Matches lockdebug::kNoRank without depending on debug_mutex.h (which
/// includes this header in profile builds).
inline constexpr uint64_t kNoRank = UINT64_MAX;

/// Resolved metric handles for one lock class (opaque; defined in
/// lock_profile.cc where the metrics registry is a complete type).
struct ClassStats;

/// Returns the stable stats handle for `name`, resolving its four series
/// on first use. Handles live until the target registry changes.
ClassStats* RegisterClass(const char* name);

/// Redirects RegisterClass to `registry` (nullptr restores Global()) and
/// drops every cached class handle. Test isolation only: mutexes
/// constructed against the previous registry keep their old handles, so
/// scope profiled mutexes inside the test that redirects.
void SetRegistryForTest(metrics::Registry* registry);

/// Counts one acquisition; a contended one also records its wait.
void RecordAcquire(ClassStats* stats, bool contended, uint64_t wait_ns);

/// Records one exclusive hold segment.
void RecordHold(ClassStats* stats, uint64_t hold_ns);

namespace internal {
inline uint64_t ElapsedNs(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now() - since)
                                   .count());
}
}  // namespace internal

/// Contention-profiling wrapper over TrackedMutex or PlainMutex.
template <class Base>
class DYNAMAST_CAPABILITY("mutex") ProfiledMutex {
 public:
  explicit ProfiledMutex(const char* name, uint64_t rank = kNoRank)
      : base_(name, rank), stats_(RegisterClass(name)) {}

  ProfiledMutex(const ProfiledMutex&) = delete;
  ProfiledMutex& operator=(const ProfiledMutex&) = delete;

  void lock() DYNAMAST_ACQUIRE() {
    if (base_.try_lock()) {
      RecordAcquire(stats_, /*contended=*/false, 0);
    } else {
      const auto start = std::chrono::steady_clock::now();
      base_.lock();
      RecordAcquire(stats_, /*contended=*/true, internal::ElapsedNs(start));
    }
    hold_start_ = std::chrono::steady_clock::now();
  }
  bool try_lock() DYNAMAST_TRY_ACQUIRE(true) {
    if (!base_.try_lock()) return false;
    RecordAcquire(stats_, /*contended=*/false, 0);
    hold_start_ = std::chrono::steady_clock::now();
    return true;
  }
  void unlock() DYNAMAST_RELEASE() {
    RecordHold(stats_, internal::ElapsedNs(hold_start_));
    base_.unlock();
  }

  void set_rank(uint64_t rank) { base_.set_rank(rank); }

  // DebugCondVar support: a wait ends the current hold segment (time
  // parked on the condvar is not holding) and reacquisition starts a new
  // one. The wait's own blocking time is the condvar's business, not lock
  // contention, so it is deliberately not recorded as wait_us.
  std::mutex& native() { return base_.native(); }
  void OnCvWaitRelease() {
    RecordHold(stats_, internal::ElapsedNs(hold_start_));
    base_.OnCvWaitRelease();
  }
  void OnCvWaitReacquire() {
    base_.OnCvWaitReacquire();
    hold_start_ = std::chrono::steady_clock::now();
  }

 private:
  Base base_;
  ClassStats* stats_;
  // Written by the owner while the lock is held; read at release.
  std::chrono::steady_clock::time_point hold_start_{};
};

/// Contention-profiling wrapper over TrackedSharedMutex or
/// PlainSharedMutex. Shared acquisitions record acquires/contention/wait;
/// hold segments are tracked for the exclusive side only.
template <class Base>
class DYNAMAST_CAPABILITY("shared_mutex") ProfiledSharedMutex {
 public:
  explicit ProfiledSharedMutex(const char* name, uint64_t rank = kNoRank)
      : base_(name, rank), stats_(RegisterClass(name)) {}

  ProfiledSharedMutex(const ProfiledSharedMutex&) = delete;
  ProfiledSharedMutex& operator=(const ProfiledSharedMutex&) = delete;

  void lock() DYNAMAST_ACQUIRE() {
    if (base_.try_lock()) {
      RecordAcquire(stats_, /*contended=*/false, 0);
    } else {
      const auto start = std::chrono::steady_clock::now();
      base_.lock();
      RecordAcquire(stats_, /*contended=*/true, internal::ElapsedNs(start));
    }
    hold_start_ = std::chrono::steady_clock::now();
  }
  bool try_lock() DYNAMAST_TRY_ACQUIRE(true) {
    if (!base_.try_lock()) return false;
    RecordAcquire(stats_, /*contended=*/false, 0);
    hold_start_ = std::chrono::steady_clock::now();
    return true;
  }
  void unlock() DYNAMAST_RELEASE() {
    RecordHold(stats_, internal::ElapsedNs(hold_start_));
    base_.unlock();
  }

  void lock_shared() DYNAMAST_ACQUIRE_SHARED() {
    if (base_.try_lock_shared()) {
      RecordAcquire(stats_, /*contended=*/false, 0);
      return;
    }
    const auto start = std::chrono::steady_clock::now();
    base_.lock_shared();
    RecordAcquire(stats_, /*contended=*/true, internal::ElapsedNs(start));
  }
  bool try_lock_shared() DYNAMAST_TRY_ACQUIRE_SHARED(true) {
    if (!base_.try_lock_shared()) return false;
    RecordAcquire(stats_, /*contended=*/false, 0);
    return true;
  }
  void unlock_shared() DYNAMAST_RELEASE_SHARED() { base_.unlock_shared(); }

  void set_rank(uint64_t rank) { base_.set_rank(rank); }

 private:
  Base base_;
  ClassStats* stats_;
  std::chrono::steady_clock::time_point hold_start_{};
};

}  // namespace dynamast::lockprof

#endif  // DYNAMAST_COMMON_LOCK_PROFILE_H_
