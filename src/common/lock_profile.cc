#include "common/lock_profile.h"

#include <map>
#include <memory>
#include <string>

#include "common/metrics.h"

namespace dynamast::lockprof {

struct ClassStats {
  metrics::Counter* acquires = nullptr;
  metrics::Counter* contended = nullptr;
  metrics::Histogram* wait_us = nullptr;
  metrics::Histogram* hold_us = nullptr;
};

namespace {

// Class-name -> stats cache. A plain std::mutex (not even RawMutex): this
// is construction-time infrastructure below every other layer, and
// lock_profile.h must stay includable from debug_mutex.h itself.
struct ClassTable {
  std::mutex mu;
  metrics::Registry* registry = nullptr;  // null -> Global()
  std::map<std::string, std::unique_ptr<ClassStats>> classes;
};

// Leaked intentionally: profiled mutexes with static storage duration may
// release (and thus touch their stats) during process teardown.
ClassTable& Table() {
  static ClassTable* table = new ClassTable();
  return *table;
}

}  // namespace

ClassStats* RegisterClass(const char* name) {
  ClassTable& table = Table();
  std::lock_guard<std::mutex> guard(table.mu);
  auto it = table.classes.find(name);
  if (it != table.classes.end()) return it->second.get();

  metrics::Registry* registry =
      table.registry != nullptr ? table.registry : &metrics::Registry::Global();
  const metrics::Labels labels{{"lock_class", name}};
  auto stats = std::make_unique<ClassStats>();
  stats->acquires = registry->GetCounter("lock_acquires_total", labels);
  stats->contended =
      registry->GetCounter("lock_contended_acquires_total", labels);
  stats->wait_us = registry->GetHistogram("lock_wait_us", labels);
  stats->hold_us = registry->GetHistogram("lock_hold_us", labels);
  ClassStats* out = stats.get();
  table.classes.emplace(name, std::move(stats));
  return out;
}

void SetRegistryForTest(metrics::Registry* registry) {
  ClassTable& table = Table();
  std::lock_guard<std::mutex> guard(table.mu);
  table.registry = registry;
  table.classes.clear();
}

void RecordAcquire(ClassStats* stats, bool contended, uint64_t wait_ns) {
  stats->acquires->Increment();
  if (contended) {
    stats->contended->Increment();
    stats->wait_us->Observe(wait_ns / 1000);
  }
}

void RecordHold(ClassStats* stats, uint64_t hold_ns) {
  stats->hold_us->Observe(hold_ns / 1000);
}

}  // namespace dynamast::lockprof
