#ifndef DYNAMAST_COMMON_SCHEDULER_H_
#define DYNAMAST_COMMON_SCHEDULER_H_

#include <cstdint>

namespace dynamast::sched {

/// Seedable schedule-exploration controller (see DESIGN.md, "Schedule
/// exploration & history auditing").
///
/// The concurrent subsystems mark their synchronization points — every
/// DebugMutex acquisition/release, simulated-network delivery, admission-
/// gate slot grant — with DYNAMAST_SCHED_POINT("name"). In default builds
/// the macro expands to `((void)0)` (zero cost, nothing to optimize away);
/// when the build is configured with -DDYNAMAST_SCHED_FUZZ=ON each point
/// consults this controller, which injects priority-randomized yields and
/// short sleeps driven by a per-test seed.
///
/// The model is PCT-lite (Burckhardt et al.), in the spirit of Loom or
/// rr's chaos mode rather than a full model checker: each thread draws a
/// random priority for the current seed epoch; low-priority threads are
/// perturbed often (stretching their critical sections and losing races),
/// high-priority threads run nearly unperturbed. Distinct seeds therefore
/// explore distinct interleaving families, and a failing seed replays the
/// same decision stream with high probability (thread identities are
/// assigned in arrival order, so replay is probabilistic, not exact —
/// "rr-lite").
///
/// The controller itself is always compiled into dynamast_common so its
/// unit tests run in every configuration; the DYNAMAST_SCHED_FUZZ macro
/// only decides whether the hook sites call into it.

/// Arms the controller with `seed`. Threads re-derive their priority and
/// decision stream lazily at their next schedule point. Thread-safe.
void Enable(uint64_t seed);

/// Disarms the controller: schedule points return immediately.
void Disable();

bool IsEnabled();
uint64_t CurrentSeed();

/// One synchronization point. `site_name` identifies the hook class
/// ("mutex.lock", "net.deliver", ...) and is folded into the decision so
/// different hook classes perturb differently under the same seed. Must be
/// cheap when disabled: one relaxed atomic load.
void Point(const char* site_name);

/// Schedule points hit / perturbations injected since the last Enable.
uint64_t PointCount();
uint64_t PerturbationCount();

/// RAII enable-for-scope, the shape tests use:
///   for (uint64_t seed : seeds) { sched::ScopedSeed fuzz(seed); ... }
class ScopedSeed {
 public:
  explicit ScopedSeed(uint64_t seed) { Enable(seed); }
  ~ScopedSeed() { Disable(); }
  ScopedSeed(const ScopedSeed&) = delete;
  ScopedSeed& operator=(const ScopedSeed&) = delete;
};

}  // namespace dynamast::sched

/// Hook-site macro. Compiles to nothing unless the build enables
/// DYNAMAST_SCHED_FUZZ, so hot paths carry no branch in default builds.
#if defined(DYNAMAST_SCHED_FUZZ) && DYNAMAST_SCHED_FUZZ
#define DYNAMAST_SCHED_FUZZ_ENABLED 1
#define DYNAMAST_SCHED_POINT(site_name) ::dynamast::sched::Point(site_name)
#else
#define DYNAMAST_SCHED_FUZZ_ENABLED 0
#define DYNAMAST_SCHED_POINT(site_name) ((void)0)
#endif

#endif  // DYNAMAST_COMMON_SCHEDULER_H_
