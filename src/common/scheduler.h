#ifndef DYNAMAST_COMMON_SCHEDULER_H_
#define DYNAMAST_COMMON_SCHEDULER_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/sched_trace.h"

namespace dynamast::sched {

/// Two-mode schedule-exploration engine (see DESIGN.md, "Exact replay &
/// partial-order reduction").
///
/// The concurrent subsystems mark their synchronization operations —
/// every DebugMutex acquisition/release, simulated-network delivery,
/// admission-gate slot grant, durable-log append — with the
/// DYNAMAST_SCHED_OP / DYNAMAST_SCHED_OP_SCOPE macros below. In default
/// builds those expand to nothing; with -DDYNAMAST_SCHED_FUZZ=ON every
/// operation consults this engine, which runs in one of five modes:
///
///   kOff     pass-through (armed builds, engine idle).
///   kFuzz    the PR 2 PCT-lite fuzzer: priority-randomized yields/sleeps
///            per seed epoch (probabilistic replay only).
///   kRecord  every operation is appended to a Trace: the serialized
///            decision stream of the run. Acquire-like operations record
///            *after* completing, release-like ones *before* starting, so
///            the recorded total order is always feasible.
///   kReplay  the engine enforces the recorded per-object operation order:
///            a thread's operation proceeds only when it is at the head of
///            its object's recorded queue. Per-object FIFO enforcement
///            reproduces every lock-handoff, message-delivery and
///            slot-grant decision of the recorded run, which makes the
///            history (and its hash) bit-identical.
///   kExplore serial controlled scheduler: at most one thread runs between
///            operations; the engine picks which blocked thread's pending
///            operation is granted next. The DporExplorer (common/dpor)
///            drives it with forced prefixes + sleep sets to enumerate
///            non-equivalent interleavings only.
///
/// Threads are identified across runs by *name* (BindThreadName / the
/// names given to spawned workers), objects by (lock label, constructing
/// thread name, per-(label,thread) construction ordinal) — both stable
/// across executions, neither involving pointers, so traces replay across
/// processes.
///
/// The engine is always compiled into dynamast_common so its unit tests
/// run in every configuration; DYNAMAST_SCHED_FUZZ only decides whether
/// the hook sites call into it.

enum class Mode : uint8_t {
  kOff = 0,
  kFuzz = 1,
  kRecord = 2,
  kReplay = 3,
  kExplore = 4,
};

Mode CurrentMode();

// ---------------------------------------------------------------------------
// Legacy PCT-lite fuzzing interface (PR 2), preserved verbatim.

/// Arms the fuzzer with `seed`. Threads re-derive their priority and
/// decision stream lazily at their next schedule point. Thread-safe.
void Enable(uint64_t seed);

/// Disarms the engine entirely (any mode back to kOff).
void Disable();

bool IsEnabled();
uint64_t CurrentSeed();

/// One legacy synchronization point: perturbs under kFuzz (and under
/// kRecord when the fuzz layer is on), otherwise cheap.
void Point(const char* site_name);

/// Schedule points hit / perturbations injected since the last Enable.
uint64_t PointCount();
uint64_t PerturbationCount();

/// RAII enable-for-scope, the shape tests use:
///   for (uint64_t seed : seeds) { sched::ScopedSeed fuzz(seed); ... }
class ScopedSeed {
 public:
  explicit ScopedSeed(uint64_t seed) { Enable(seed); }
  ~ScopedSeed() { Disable(); }
  ScopedSeed(const ScopedSeed&) = delete;
  ScopedSeed& operator=(const ScopedSeed&) = delete;
};

// ---------------------------------------------------------------------------
// Identity.

/// Names the calling thread for trace purposes ("client/3",
/// "site/1/applier/0"...). Sticky for the thread's lifetime; re-binding
/// overwrites. Replay matches live threads to trace threads by name, so
/// every thread a deterministic test spawns should be named.
void BindThreadName(const std::string& name);
std::string CurrentThreadName();

/// RAII name binding that additionally tells the explore-mode scheduler
/// when the thread is done (so it stops waiting for it to quiesce). Use as
/// the first statement of spawned thread bodies.
class ThreadGuard {
 public:
  explicit ThreadGuard(const std::string& name);
  ~ThreadGuard();
  ThreadGuard(const ThreadGuard&) = delete;
  ThreadGuard& operator=(const ThreadGuard&) = delete;
};

/// Registers one synchronization object under `label` and returns its
/// engine uid. Called from the constructors of the traced wrappers
/// (DebugMutex, SimulatedNetwork, AdmissionGate, DurableLog). The cross-
/// run identity key is (label, current thread name, per-(label,thread)
/// construction counter).
uint32_t RegisterObject(const char* label);

/// Clears the object registry, identity counters and condvar generations.
/// Call before constructing each system-under-test so construction
/// ordinals restart from zero (record and replay runs must build their
/// object tables identically). Also binds the calling thread to "main" if
/// it is still unnamed.
void ResetIdentities();

// ---------------------------------------------------------------------------
// Hooks.

/// RAII hook around one synchronization operation. Acquire-like kinds
/// (lock, lock_shared) trace at destruction (post-completion); all other
/// kinds trace at construction (pre-operation). Construct it so its scope
/// spans the native operation:
///
///   { sched::OpScope op(OpKind::kMutexLock, sched_uid_); mu_.lock(); }
class OpScope {
 public:
  OpScope(OpKind kind, uint32_t object_uid);
  ~OpScope();
  OpScope(const OpScope&) = delete;
  OpScope& operator=(const OpScope&) = delete;

 private:
  uint8_t armed_ = 0;  // 0 = fast-path skip; otherwise the Mode value
  OpKind kind_ = OpKind::kMarker;
  uint32_t object_ = 0;
};

/// Point-like hook for operations with no meaningful duration (message
/// delivery decisions, log appends): trace happens before returning.
inline void Op(OpKind kind, uint32_t object_uid) { OpScope op(kind, object_uid); }

/// Marks the calling thread as blocked on something outside the engine's
/// arbitration (typically a thread join). The explore-mode scheduler
/// excludes Blocked threads from its quiescence wait; replay ignores it.
class ScopedBlocked {
 public:
  ScopedBlocked();
  ~ScopedBlocked();
  ScopedBlocked(const ScopedBlocked&) = delete;
  ScopedBlocked& operator=(const ScopedBlocked&) = delete;

 private:
  bool armed_ = false;
};

// ---------------------------------------------------------------------------
// Condition-variable redirection.
//
// In the armed modes (record/replay/explore) condition-variable waits must
// not hand the mutex back through the native cv (the native wake-up race
// would be an untraced scheduling decision). DebugCondVar instead performs
// a *traced* unlock, parks on the engine until the cv's generation counter
// moves (or the deadline passes), then performs a *traced* re-lock. The
// predicate loop around every wait makes the extra wake-ups harmless, and
// the lock-handoff order — the actual scheduling decision — lands in the
// trace.

/// True when condvars should use the traced unlock/park/re-lock path.
bool CvRedirectArmed();

/// Current generation of the condvar identified by `cv` (any stable
/// address). Bumped by CvNotify.
uint64_t CvGeneration(const void* cv);

/// Wakes parked waiters of `cv` (both notify_one and notify_all map here:
/// with the traced re-lock arbitrating who proceeds, waking everyone is
/// semantically notify_all, which every predicate-looped wait tolerates).
void CvNotify(const void* cv);

/// Parks until CvGeneration(cv) != start_gen or `deadline` passes.
/// Returns false iff the deadline passed with no generation change.
bool CvPark(const void* cv, uint64_t start_gen,
            std::chrono::steady_clock::time_point deadline);

// ---------------------------------------------------------------------------
// Record / replay.

/// Starts recording the decision stream. `fuzz_layer` additionally runs
/// the PCT-lite perturbation under the same seed, so a fuzzed run can be
/// recorded and replayed exactly.
void StartRecord(uint64_t seed, bool fuzz_layer);

/// Stops recording and returns the trace (threads, objects, entries).
Trace StopRecord();

struct ReplayResult {
  bool clean = false;        ///< full stream consumed, no divergence
  size_t consumed = 0;       ///< trace entries matched
  size_t total = 0;          ///< trace entries overall
  size_t unmatched_ops = 0;  ///< live ops on objects unknown to the trace
  /// Recorded entries skipped because their thread deregistered without
  /// performing them. Whether a worker squeezes in one final no-op
  /// iteration before observing an untraced stop flag is wall-clock state,
  /// not decision-stream state, so the shutdown drain may legitimately
  /// shed a few trailing lock/unlock pairs; the history-hash comparison
  /// remains the authoritative equivalence check.
  size_t skipped_exited = 0;
  std::vector<std::string> divergences;
  std::string ToString() const;
};

/// Arms replay of `trace`: subsequent operations are gated to follow the
/// recorded per-object order. On divergence (an operation the trace does
/// not expect next, or a stalled wait) the engine disarms itself, lets the
/// run finish free-running, and reports via StopReplay().
void StartReplay(const Trace& trace);
ReplayResult StopReplay();

// ---------------------------------------------------------------------------
// Systematic exploration (driven by common/dpor).

struct ExploreOptions {
  /// Thread tokens to grant, in order, before free scheduling resumes.
  std::vector<uint32_t> forced;
  /// sleep_add[i] = tokens to place in the sleep set at step i (after the
  /// forced prefix replays the first i steps). Indexed by step.
  std::vector<std::vector<uint32_t>> sleep_add;
  /// Deterministic tie-break seed for free scheduling after the prefix.
  uint64_t seed = 0;
  /// Max context switches away from the running thread while it is still
  /// runnable (PCT-style bound); <0 = unbounded.
  int preemption_bound = -1;
  /// Safety valve on total granted operations.
  size_t max_steps = 1 << 20;
  /// Forget name->token assignments from previous explore sessions.
  bool fresh_session = false;
  /// Issue no grants until this many non-blocked threads have registered
  /// with the serial scheduler (ThreadGuard construction or first
  /// sync-point arrival; ScopedBlocked joiners don't count). Plugs the
  /// spawn window: threads announce themselves only once they start
  /// running, so without this gate the first grants race thread startup
  /// and the enabled sets reported to the explorer are
  /// under-approximated. The stall watchdog still fires as an escape
  /// hatch if the threads never arrive (counted in stall_grants).
  size_t await_threads = 0;
};

struct ExploreStep {
  TraceEntry entry;
  /// Tokens of all threads whose pending operation was runnable when this
  /// step was granted (the DPOR "enabled" set), sorted.
  std::vector<uint32_t> enabled;
  /// Tokens that were in the sleep set at this step.
  std::vector<uint32_t> sleeping;
};

struct ExploreRun {
  Trace trace;
  std::vector<ExploreStep> steps;
  size_t forced_consumed = 0;
  /// Forced prefix could not be followed (thread exited / never arrived).
  bool diverged = false;
  /// Grants issued by the stall watchdog (non-quiescent state): each one
  /// is a nondeterminism warning.
  size_t stall_grants = 0;
  /// Steps where every runnable thread was asleep and the scheduler had
  /// to wake one (sleep-set blocked state).
  size_t sleep_forced = 0;
  bool hit_step_limit = false;
};

void StartExplore(const ExploreOptions& options);
ExploreRun StopExplore();

/// Stable explore-session token for a thread name (assigned on first use,
/// persists across executions of one explore session so DPOR's forced
/// prefixes stay meaningful).
uint32_t ExploreTokenForName(const std::string& name);

}  // namespace dynamast::sched

/// Hook-site macros. They compile to nothing unless the build enables
/// DYNAMAST_SCHED_FUZZ, so hot paths carry no branch in default builds.
#if defined(DYNAMAST_SCHED_FUZZ) && DYNAMAST_SCHED_FUZZ
#define DYNAMAST_SCHED_FUZZ_ENABLED 1
#define DYNAMAST_SCHED_POINT(site_name) ::dynamast::sched::Point(site_name)
#define DYNAMAST_SCHED_OP(kind, uid) \
  ::dynamast::sched::Op(::dynamast::sched::OpKind::kind, (uid))
#define DYNAMAST_SCHED_OP_SCOPE(var, kind, uid) \
  ::dynamast::sched::OpScope var(::dynamast::sched::OpKind::kind, (uid))
#define DYNAMAST_SCHED_REGISTER(label) (::dynamast::sched::RegisterObject(label))
#else
#define DYNAMAST_SCHED_FUZZ_ENABLED 0
#define DYNAMAST_SCHED_POINT(site_name) ((void)0)
#define DYNAMAST_SCHED_OP(kind, uid) ((void)(uid))
#define DYNAMAST_SCHED_OP_SCOPE(var, kind, uid) ((void)(uid))
#define DYNAMAST_SCHED_REGISTER(label) ((void)(label), 0U)
#endif

#endif  // DYNAMAST_COMMON_SCHEDULER_H_
