#include "common/history.h"

#include <fstream>
#include <mutex>
#include <sstream>

namespace dynamast::history {

namespace {

// --- serialization helpers ---------------------------------------------
//
// One event per line, space-separated `field=value` tokens. Lists are
// comma-separated, `-` when empty:
//
//   kind=commit seq=12 site=0 client=5 ctxn=3 ro=0 begin=1,0 commit=2,0
//     inst=2 reads=0:17@0:1,0:18@1:3 writes=0:17@4 parts=- peer=- rv=-
//
// Reads are table:row@origin:seq, writes are table:row@partition.

std::string JoinVector(const VersionVector& v) {
  if (v.empty()) return "-";
  std::string out;
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(v[i]);
  }
  return out;
}

bool ParseU64(std::string_view text, uint64_t* out) {
  if (text.empty()) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

std::vector<std::string_view> Split(std::string_view text, char sep) {
  std::vector<std::string_view> parts;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find(sep, start);
    if (end == std::string_view::npos) end = text.size();
    parts.push_back(text.substr(start, end - start));
    start = end + 1;
    if (end == text.size()) break;
  }
  return parts;
}

bool ParseVector(std::string_view text, VersionVector* out) {
  *out = VersionVector();
  if (text == "-") return true;
  std::vector<uint64_t> values;
  for (std::string_view part : Split(text, ',')) {
    uint64_t v = 0;
    if (!ParseU64(part, &v)) return false;
    values.push_back(v);
  }
  *out = VersionVector(std::move(values));
  return true;
}

bool ParseKey(std::string_view text, RecordKey* out) {
  const auto parts = Split(text, ':');
  if (parts.size() != 2) return false;
  uint64_t table = 0;
  if (!ParseU64(parts[0], &table) || !ParseU64(parts[1], &out->row)) {
    return false;
  }
  out->table = static_cast<TableId>(table);
  return true;
}

}  // namespace

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kCommit:
      return "commit";
    case EventKind::kAbort:
      return "abort";
    case EventKind::kRelease:
      return "release";
    case EventKind::kGrant:
      return "grant";
  }
  return "unknown";
}

void Recorder::Record(HistoryEvent event) {
  MutexLock guard(mu_);
  event.seq = events_.size() + 1;
  events_.push_back(std::move(event));
}

size_t Recorder::size() const {
  MutexLock guard(mu_);
  return events_.size();
}

std::vector<HistoryEvent> Recorder::Snapshot() const {
  MutexLock guard(mu_);
  return events_;
}

void Recorder::Clear() {
  MutexLock guard(mu_);
  events_.clear();
}

std::string Recorder::Serialize() const {
  const std::vector<HistoryEvent> events = Snapshot();
  std::string out;
  for (const HistoryEvent& event : events) {
    out += SerializeEvent(event);
    out += '\n';
  }
  return out;
}

uint64_t Recorder::Hash() const { return HashEvents(Snapshot()); }

uint64_t HashEvents(const std::vector<HistoryEvent>& events) {
  // FNV-1a 64 over the serialized lines: the serialization covers every
  // logical field, so hash equality is (collision-negligibly) line-for-
  // line history equality.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const HistoryEvent& event : events) {
    const std::string line = SerializeEvent(event);
    for (const char c : line) {
      h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
    }
    h = (h ^ static_cast<unsigned char>('\n')) * 0x100000001b3ULL;
  }
  return h;
}

Status Recorder::DumpToFile(const std::string& path) const {
  std::ofstream file(path, std::ios::trunc);
  if (!file.is_open()) {
    return Status::Internal("cannot open history dump file: " + path);
  }
  file << Serialize();
  file.close();
  if (!file) return Status::Internal("short write to " + path);
  return Status::OK();
}

std::string SerializeEvent(const HistoryEvent& event) {
  std::ostringstream out;
  out << "kind=" << EventKindName(event.kind) << " seq=" << event.seq
      << " site=" << event.site << " client=" << event.client
      << " ctxn=" << event.client_txn << " ro=" << (event.read_only ? 1 : 0)
      << " begin=" << JoinVector(event.begin)
      << " commit=" << JoinVector(event.commit)
      << " inst=" << event.installed_seq;

  out << " reads=";
  if (event.reads.empty()) {
    out << '-';
  } else {
    for (size_t i = 0; i < event.reads.size(); ++i) {
      const ReadObservation& r = event.reads[i];
      if (i > 0) out << ',';
      out << r.key.table << ':' << r.key.row << '@' << r.origin << ':'
          << r.seq;
    }
  }

  out << " writes=";
  if (event.writes.empty()) {
    out << '-';
  } else {
    for (size_t i = 0; i < event.writes.size(); ++i) {
      const WriteObservation& w = event.writes[i];
      if (i > 0) out << ',';
      out << w.key.table << ':' << w.key.row << '@' << w.partition;
    }
  }

  out << " parts=";
  if (event.partitions.empty()) {
    out << '-';
  } else {
    for (size_t i = 0; i < event.partitions.size(); ++i) {
      if (i > 0) out << ',';
      out << event.partitions[i];
    }
  }

  out << " peer=";
  if (event.peer == kInvalidSite) {
    out << '-';
  } else {
    out << event.peer;
  }

  out << " rv=" << JoinVector(event.release_version);
  return out.str();
}

Status ParseEvent(std::string_view line, HistoryEvent* out) {
  *out = HistoryEvent();
  const auto bad = [&line](const std::string& why) {
    return Status::InvalidArgument("bad history line (" + why +
                                   "): " + std::string(line));
  };
  for (std::string_view token : Split(line, ' ')) {
    if (token.empty()) continue;
    const size_t eq = token.find('=');
    if (eq == std::string_view::npos) return bad("token without '='");
    const std::string_view field = token.substr(0, eq);
    const std::string_view value = token.substr(eq + 1);
    uint64_t num = 0;
    if (field == "kind") {
      if (value == "commit") {
        out->kind = EventKind::kCommit;
      } else if (value == "abort") {
        out->kind = EventKind::kAbort;
      } else if (value == "release") {
        out->kind = EventKind::kRelease;
      } else if (value == "grant") {
        out->kind = EventKind::kGrant;
      } else {
        return bad("unknown kind");
      }
    } else if (field == "seq") {
      if (!ParseU64(value, &out->seq)) return bad("seq");
    } else if (field == "site") {
      if (!ParseU64(value, &num)) return bad("site");
      out->site = static_cast<SiteId>(num);
    } else if (field == "client") {
      if (!ParseU64(value, &out->client)) return bad("client");
    } else if (field == "ctxn") {
      if (!ParseU64(value, &out->client_txn)) return bad("ctxn");
    } else if (field == "ro") {
      if (!ParseU64(value, &num)) return bad("ro");
      out->read_only = num != 0;
    } else if (field == "begin") {
      if (!ParseVector(value, &out->begin)) return bad("begin");
    } else if (field == "commit") {
      if (!ParseVector(value, &out->commit)) return bad("commit");
    } else if (field == "inst") {
      if (!ParseU64(value, &out->installed_seq)) return bad("inst");
    } else if (field == "reads") {
      if (value == "-") continue;
      for (std::string_view entry : Split(value, ',')) {
        const auto at = entry.find('@');
        if (at == std::string_view::npos) return bad("read entry");
        ReadObservation r;
        if (!ParseKey(entry.substr(0, at), &r.key)) return bad("read key");
        const auto ver = Split(entry.substr(at + 1), ':');
        if (ver.size() != 2) return bad("read version");
        if (!ParseU64(ver[0], &num)) return bad("read origin");
        r.origin = static_cast<SiteId>(num);
        if (!ParseU64(ver[1], &r.seq)) return bad("read seq");
        out->reads.push_back(r);
      }
    } else if (field == "writes") {
      if (value == "-") continue;
      for (std::string_view entry : Split(value, ',')) {
        const auto at = entry.find('@');
        if (at == std::string_view::npos) return bad("write entry");
        WriteObservation w;
        if (!ParseKey(entry.substr(0, at), &w.key)) return bad("write key");
        if (!ParseU64(entry.substr(at + 1), &w.partition)) {
          return bad("write partition");
        }
        out->writes.push_back(w);
      }
    } else if (field == "parts") {
      if (value == "-") continue;
      for (std::string_view entry : Split(value, ',')) {
        if (!ParseU64(entry, &num)) return bad("partition");
        out->partitions.push_back(num);
      }
    } else if (field == "peer") {
      if (value == "-") continue;
      if (!ParseU64(value, &num)) return bad("peer");
      out->peer = static_cast<SiteId>(num);
    } else if (field == "rv") {
      if (!ParseVector(value, &out->release_version)) return bad("rv");
    } else {
      // Unknown fields are skipped so the format can grow.
    }
  }
  return Status::OK();
}

Status ParseHistory(std::string_view text, std::vector<HistoryEvent>* out) {
  out->clear();
  for (std::string_view line : Split(text, '\n')) {
    if (line.empty() || line[0] == '#') continue;
    HistoryEvent event;
    Status s = ParseEvent(line, &event);
    if (!s.ok()) return s;
    out->push_back(std::move(event));
  }
  return Status::OK();
}

}  // namespace dynamast::history
