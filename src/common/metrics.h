#ifndef DYNAMAST_COMMON_METRICS_H_
#define DYNAMAST_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/debug_mutex.h"
#include "common/latency_recorder.h"

namespace dynamast::metrics {

/// Microseconds since the process-wide metrics epoch (the first call in
/// the process). Monotonic (steady_clock), shared by metrics, tracing and
/// the log-record append timestamps so refresh delay = apply_ts - append_ts
/// is directly meaningful.
uint64_t NowMicros();

/// Escapes a string for embedding inside a JSON string literal (quotes,
/// backslashes, control characters). Shared by the metrics/trace/bench
/// JSON writers.
std::string JsonEscape(std::string_view s);

/// Label set for one time series, e.g. {{"site","0"},{"reason","TimedOut"}}.
/// Handles are resolved once (at component construction) so label handling
/// never touches the hot path.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic counter with thread-sharded storage: increments on the hot
/// path are a single relaxed fetch_add on a (mostly) thread-private cache
/// line; reads sum the shards.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    shards_[ShardIndex()].value.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }
  void Reset() {
    for (Shard& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kNumShards = 16;
  struct alignas(64) Shard {
    // Role `stat-counter` in the DESIGN.md atomic-field registry: every
    // operation is relaxed; nothing synchronizes on a tally.
    std::atomic<uint64_t> value{0};
  };
  // Each thread hashes to a fixed shard (assigned round-robin on first
  // use), so concurrent writers rarely share a cache line.
  static size_t ShardIndex();
  std::array<Shard, kNumShards> shards_{};
};

/// Last-value gauge (double). Set/Add are lock-free.
class Gauge {
 public:
  void Set(double v) { bits_.store(ToBits(v), std::memory_order_relaxed); }
  void Add(double delta) {
    uint64_t observed = bits_.load(std::memory_order_relaxed);
    while (!bits_.compare_exchange_weak(observed,
                                        ToBits(FromBits(observed) + delta),
                                        std::memory_order_relaxed)) {
    }
  }
  double Value() const { return FromBits(bits_.load(std::memory_order_relaxed)); }
  void Reset() { Set(0); }

 private:
  static uint64_t ToBits(double v);
  static double FromBits(uint64_t bits);
  // Role `stat-counter` (AMA registry): last-value bits, relaxed-only.
  std::atomic<uint64_t> bits_{0};
};

/// Latency/size distribution backed by LatencyRecorder's geometric buckets
/// (values are conventionally microseconds, but any non-negative integer
/// distribution works — e.g. version-chain lengths).
class Histogram {
 public:
  DYNAMAST_EXPENSIVE void Observe(uint64_t value) { recorder_.Record(value); }
  DYNAMAST_EXPENSIVE void ObserveDuration(std::chrono::nanoseconds d) {
    recorder_.RecordDuration(d);
  }
  const LatencyRecorder& recorder() const { return recorder_; }
  void Reset() { recorder_.Reset(); }

 private:
  LatencyRecorder recorder_;
};

/// Process-wide registry of labeled metric families. Lookup
/// (GetCounter/GetGauge/GetHistogram) takes the registry mutex and is meant
/// for component construction time; the returned handles are stable for
/// the registry's lifetime and their updates are lock-free (counters,
/// gauges) or a leaf mutex (histograms).
///
/// Benchmarks call ResetValues() between runs: values zero out but every
/// handle stays valid, so long-lived components keep their pointers.
class Registry {
 public:
  enum class Type { kCounter, kGauge, kHistogram };

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The default process-wide registry. Components take a `Registry*`
  /// option; passing nullptr means "use Global()".
  static Registry& Global();
  static Registry* OrGlobal(Registry* r) { return r != nullptr ? r : &Global(); }

  /// Returns the series handle, creating the family/series as needed.
  /// A name registered with a different metric type, or a family past its
  /// cardinality cap, yields a detached scrap metric (never exported) so
  /// callers need no error handling.
  DYNAMAST_EXPENSIVE Counter* GetCounter(const std::string& name,
                                         const Labels& labels = {})
      DYNAMAST_EXCLUDES(mu_);
  DYNAMAST_EXPENSIVE Gauge* GetGauge(const std::string& name,
                                     const Labels& labels = {})
      DYNAMAST_EXCLUDES(mu_);
  DYNAMAST_EXPENSIVE Histogram* GetHistogram(const std::string& name,
                                             const Labels& labels = {})
      DYNAMAST_EXCLUDES(mu_);

  /// Zeroes every value while keeping all families/series (and therefore
  /// all outstanding handles) alive.
  void ResetValues() DYNAMAST_EXCLUDES(mu_);

  /// Number of series across all families / in one family (0 if absent).
  size_t NumSeries() const DYNAMAST_EXCLUDES(mu_);
  size_t NumSeries(const std::string& name) const DYNAMAST_EXCLUDES(mu_);

  /// Value lookups for tests and reconciliation tools; zero/absent series
  /// read as 0.
  uint64_t CounterValue(const std::string& name, const Labels& labels = {}) const;
  double GaugeValue(const std::string& name, const Labels& labels = {}) const;

  /// Read access to one histogram series' live recorder (null if absent),
  /// for report printing without re-aggregating through SnapshotJson.
  const LatencyRecorder* HistogramRecorder(const std::string& name,
                                           const Labels& labels = {}) const;

  /// One flattened sample for the timeline sampler: `key` is
  /// "name{k=v,...}" with labels in sorted order (bare "name" when
  /// label-less); `value` is the counter/gauge value, or the observation
  /// count for histogram series.
  struct SampledValue {
    std::string key;
    Type type = Type::kCounter;
    double value = 0;
  };

  /// Samples every series in deterministic (family, label-key) order.
  /// Timeline-sampler cadence, not the hot path.
  DYNAMAST_EXPENSIVE std::vector<SampledValue> SampleValues() const
      DYNAMAST_EXCLUDES(mu_);

  /// {"metrics":[{"name":...,"type":"counter","series":[{"labels":{...},
  /// "value":N},...]},...]}. Histogram series carry count/mean/p50/p90/
  /// p99/p999/max summaries.
  std::string SnapshotJson() const DYNAMAST_EXCLUDES(mu_);

  /// Max series per family before new label sets fall into the scrap
  /// metric (cardinality-explosion guard).
  static constexpr size_t kMaxSeriesPerFamily = 256;

 private:
  struct Series {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    Type type = Type::kCounter;
    // Keyed by the canonical (sorted, escaped) label encoding; std::map
    // keeps export order deterministic.
    std::map<std::string, Series> series;
  };

  Series* GetSeries(const std::string& name, const Labels& labels, Type type)
      DYNAMAST_EXCLUDES(mu_);
  const Series* FindSeries(const std::string& name, const Labels& labels,
                           Type type) const DYNAMAST_EXCLUDES(mu_);

  // RawMutex (no sched hooks): the registry is infrastructure below the
  // scheduler layer; registering it would perturb record/replay identity.
  mutable RawMutex mu_;
  std::map<std::string, Family> families_ DYNAMAST_GUARDED_BY(mu_);
  // Scrap series for type mismatches / cardinality overflow.
  Counter scrap_counter_;
  Gauge scrap_gauge_;
  Histogram scrap_histogram_;
};

}  // namespace dynamast::metrics

#endif  // DYNAMAST_COMMON_METRICS_H_
