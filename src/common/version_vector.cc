#include "common/version_vector.h"

#include <algorithm>

namespace dynamast {

bool VersionVector::DominatesOrEquals(const VersionVector& other) const {
  for (size_t k = 0; k < other.v_.size(); ++k) {
    const uint64_t mine = k < v_.size() ? v_[k] : 0;
    if (mine < other.v_[k]) return false;
  }
  return true;
}

void VersionVector::MaxWith(const VersionVector& other) {
  if (other.v_.size() > v_.size()) v_.resize(other.v_.size(), 0);
  for (size_t k = 0; k < other.v_.size(); ++k) {
    v_[k] = std::max(v_[k], other.v_[k]);
  }
}

VersionVector VersionVector::ElementwiseMax(const VersionVector& a,
                                            const VersionVector& b) {
  VersionVector out = a;
  out.MaxWith(b);
  return out;
}

uint64_t VersionVector::MissingUpdates(const VersionVector& target) const {
  uint64_t missing = 0;
  for (size_t k = 0; k < target.v_.size(); ++k) {
    const uint64_t mine = k < v_.size() ? v_[k] : 0;
    if (target.v_[k] > mine) missing += target.v_[k] - mine;
  }
  return missing;
}

uint64_t VersionVector::Total() const {
  uint64_t sum = 0;
  for (uint64_t x : v_) sum += x;
  return sum;
}

std::string VersionVector::ToString() const {
  std::string out = "[";
  for (size_t k = 0; k < v_.size(); ++k) {
    if (k > 0) out += ", ";
    out += std::to_string(v_[k]);
  }
  out += "]";
  return out;
}

}  // namespace dynamast
