#include "common/timeline.h"

#include <cstdio>
#include <utility>

namespace dynamast::timeline {

TimelineSampler::TimelineSampler(Options options)
    : options_(std::move(options)),
      registry_(metrics::Registry::OrGlobal(options_.registry)) {
  rows_.reserve(options_.max_rows < 1024 ? options_.max_rows : 1024);
}

TimelineSampler::~TimelineSampler() { Stop(); }

void TimelineSampler::Start() {
  if (thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> guard(stop_mu_);
    stop_requested_ = false;
  }
  thread_ = std::thread([this] { Loop(); });
}

void TimelineSampler::Stop() {
  if (!thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> guard(stop_mu_);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  thread_.join();
  SampleOnce();  // final row: the end-of-run state is always captured
}

void TimelineSampler::Loop() {
  while (true) {
    {
      std::unique_lock<std::mutex> guard(stop_mu_);
      if (stop_cv_.wait_for(guard, options_.period,
                            [this] { return stop_requested_; })) {
        return;
      }
    }
    SampleOnce();
  }
}

void TimelineSampler::SampleOnce() {
  // Sample outside the row lock: the registry walk is the expensive part.
  std::vector<metrics::Registry::SampledValue> values =
      registry_->SampleValues();
  const uint64_t now_us = metrics::NowMicros();

  RawMutexLock guard(mu_);
  if (rows_.size() >= options_.max_rows) {
    ++dropped_;
    return;
  }
  Row row;
  row.seq = next_seq_++;
  // Strictly increasing timestamps even for back-to-back samples, so rows
  // sort without tie-breaking.
  row.ts_us = now_us > last_ts_us_ ? now_us : last_ts_us_ + 1;
  last_ts_us_ = row.ts_us;
  row.values = std::move(values);
  rows_.push_back(std::move(row));
}

std::vector<TimelineSampler::Row> TimelineSampler::Rows() const {
  RawMutexLock guard(mu_);
  return rows_;
}

uint64_t TimelineSampler::dropped_rows() const {
  RawMutexLock guard(mu_);
  return dropped_;
}

std::string TimelineSampler::RowJson(const Row& row) const {
  std::string out = "{\"schema\":\"dynamast.timeline.v1\",\"run\":\"";
  out += metrics::JsonEscape(options_.run_label);
  out += "\",\"seq\":";
  out += std::to_string(row.seq);
  out += ",\"ts_us\":";
  out += std::to_string(row.ts_us);
  out += ",\"values\":{";
  bool first = true;
  for (const auto& sample : row.values) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += metrics::JsonEscape(sample.key);
    out += "\":";
    if (sample.type == metrics::Registry::Type::kGauge) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.6g", sample.value);
      out += buf;
    } else {
      // Counters and histogram counts are integral; print them exactly.
      out += std::to_string(static_cast<uint64_t>(sample.value));
    }
  }
  out += "}}";
  return out;
}

Status TimelineSampler::AppendJsonl(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) {
    return Status::Unavailable("cannot open timeline file: " + path);
  }
  const std::vector<Row> rows = Rows();
  for (const Row& row : rows) {
    const std::string line = RowJson(row);
    std::fwrite(line.data(), 1, line.size(), f);
    std::fputc('\n', f);
  }
  std::fclose(f);
  return Status::OK();
}

}  // namespace dynamast::timeline
