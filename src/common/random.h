#ifndef DYNAMAST_COMMON_RANDOM_H_
#define DYNAMAST_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace dynamast {

/// Deterministic, seedable PRNG (xoshiro256**). Every stochastic component
/// in the library (workload generators, sampling, read routing) draws from
/// an explicitly seeded Random so experiments are reproducible.
class Random {
 public:
  explicit Random(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform in [0, 2^64).
  uint64_t Next();

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t UniformRange(uint64_t lo, uint64_t hi);

  /// Uniform real in [0, 1).
  double NextDouble();

  /// True with probability p.
  bool Bernoulli(double p);

  /// Number of successes in `trials` Bernoulli(p) draws (used by the YCSB
  /// neighbour-partition selection of Appendix C).
  uint32_t Binomial(uint32_t trials, double p);

 private:
  uint64_t s_[4];
};

/// Zipfian generator over [0, n) with parameter theta, using the
/// Gray/Jim-Gray YCSB rejection-free method. theta in (0, 1); the paper's
/// skewed YCSB workloads use rho = 0.75.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta);

  uint64_t Next(Random& rng);

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
};

/// Scrambled Zipfian: spreads the hot spots across the key space by hashing
/// ranks, matching YCSB's scrambled distribution.
class ScrambledZipfianGenerator {
 public:
  ScrambledZipfianGenerator(uint64_t n, double theta) : zipf_(n, theta) {}

  uint64_t Next(Random& rng);

 private:
  ZipfianGenerator zipf_;
};

}  // namespace dynamast

#endif  // DYNAMAST_COMMON_RANDOM_H_
