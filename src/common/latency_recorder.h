#ifndef DYNAMAST_COMMON_LATENCY_RECORDER_H_
#define DYNAMAST_COMMON_LATENCY_RECORDER_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/debug_mutex.h"

namespace dynamast {

/// Thread-safe log-bucketed latency histogram with percentile queries.
/// Values are recorded in microseconds. Buckets grow geometrically
/// (~4% resolution), which is plenty for reporting avg/p50/p90/p99 tables.
class LatencyRecorder {
 public:
  LatencyRecorder();

  /// Records one latency observation, in microseconds.
  DYNAMAST_EXPENSIVE void Record(uint64_t micros) DYNAMAST_EXCLUDES(mu_);

  DYNAMAST_EXPENSIVE void RecordDuration(std::chrono::nanoseconds d) {
    Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(d).count()));
  }

  /// Merges another recorder's observations into this one.
  DYNAMAST_EXPENSIVE void Merge(const LatencyRecorder& other)
      DYNAMAST_EXCLUDES(mu_);

  uint64_t count() const DYNAMAST_EXCLUDES(mu_);
  double MeanMicros() const DYNAMAST_EXCLUDES(mu_);
  /// q in [0, 1]; returns the bucket-interpolated latency in microseconds.
  double PercentileMicros(double q) const DYNAMAST_EXCLUDES(mu_);
  uint64_t MaxMicros() const DYNAMAST_EXCLUDES(mu_);

  void Reset() DYNAMAST_EXCLUDES(mu_);

  /// Renders "avg=1.23ms p50=... p90=... p99=... p99.9=... max=...".
  std::string Summary() const;

  /// JSON object with count/mean_us/p50_us/p90_us/p99_us/p999_us/max_us,
  /// the histogram encoding of the metrics exporter
  /// (metrics::Registry::SnapshotJson).
  std::string SnapshotJson() const;

 private:
  static constexpr size_t kNumBuckets = 512;
  static size_t BucketFor(uint64_t micros);
  static double BucketLowerBound(size_t bucket);

  // RawMutex (no sched hooks): histograms record inside scheduler-visible
  // critical sections, so the leaf lock must not re-enter the scheduler.
  mutable RawMutex mu_;
  std::vector<uint64_t> buckets_ DYNAMAST_GUARDED_BY(mu_);
  uint64_t count_ DYNAMAST_GUARDED_BY(mu_) = 0;
  double sum_ DYNAMAST_GUARDED_BY(mu_) = 0;
  uint64_t max_ DYNAMAST_GUARDED_BY(mu_) = 0;
};

/// Monotonic stopwatch for latency measurements.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  void Restart() { start_ = std::chrono::steady_clock::now(); }

  std::chrono::nanoseconds Elapsed() const {
    return std::chrono::steady_clock::now() - start_;
  }
  uint64_t ElapsedMicros() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Elapsed())
            .count());
  }
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Elapsed()).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace dynamast

#endif  // DYNAMAST_COMMON_LATENCY_RECORDER_H_
