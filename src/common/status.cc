#include "common/status.h"

namespace dynamast {

const char* StatusCodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kAlreadyExists:
      return "AlreadyExists";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kAborted:
      return "Aborted";
    case Status::Code::kTimedOut:
      return "TimedOut";
    case Status::Code::kNotMaster:
      return "NotMaster";
    case Status::Code::kUnavailable:
      return "Unavailable";
    case Status::Code::kCorruption:
      return "Corruption";
    case Status::Code::kSnapshotTooOld:
      return "SnapshotTooOld";
    case Status::Code::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace dynamast
