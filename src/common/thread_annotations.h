#ifndef DYNAMAST_COMMON_THREAD_ANNOTATIONS_H_
#define DYNAMAST_COMMON_THREAD_ANNOTATIONS_H_

/// Clang Thread Safety Analysis capability annotations (see DESIGN.md,
/// "Static thread-safety").
///
/// Every lock type in the codebase (DebugMutex, DebugSharedMutex, RawMutex
/// and their Tracked/Plain implementations in common/debug_mutex.h) is a
/// TSA *capability*; fields carry DYNAMAST_GUARDED_BY(mu), functions that
/// must be called with a lock held carry DYNAMAST_REQUIRES(mu), and public
/// entry points that take the lock themselves carry DYNAMAST_EXCLUDES(mu).
/// The `clang-tsa` preset builds with -Werror=thread-safety, turning any
/// guarded-field access outside its lock, missing-REQUIRES call, double
/// acquisition or shared/exclusive mismatch into a compile error
/// (scripts/check.sh stage `tsa`; negative proofs in
/// tests/tsa_compile_fail/).
///
/// Under GCC (which has no thread-safety analysis) every macro expands to
/// nothing, so annotated code is byte-identical to unannotated code in
/// non-clang builds.

#if defined(__clang__) && defined(__has_attribute)
#define DYNAMAST_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define DYNAMAST_THREAD_ANNOTATION_(x)
#endif

/// Marks a class as a lockable capability ("mutex" names the kind in
/// diagnostics).
#define DYNAMAST_CAPABILITY(x) DYNAMAST_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII class whose lifetime acquires/releases a capability.
#define DYNAMAST_SCOPED_CAPABILITY DYNAMAST_THREAD_ANNOTATION_(scoped_lockable)

/// Field may only be read/written while holding `x`.
#define DYNAMAST_GUARDED_BY(x) DYNAMAST_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer field: the pointed-to data may only be accessed holding `x`.
#define DYNAMAST_PT_GUARDED_BY(x) DYNAMAST_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function must be called with the listed capabilities held exclusively /
/// shared.
#define DYNAMAST_REQUIRES(...) \
  DYNAMAST_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define DYNAMAST_REQUIRES_SHARED(...) \
  DYNAMAST_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function acquires the listed capabilities (and does not release them).
#define DYNAMAST_ACQUIRE(...) \
  DYNAMAST_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define DYNAMAST_ACQUIRE_SHARED(...) \
  DYNAMAST_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// Function releases the listed capabilities.
#define DYNAMAST_RELEASE(...) \
  DYNAMAST_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define DYNAMAST_RELEASE_SHARED(...) \
  DYNAMAST_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define DYNAMAST_RELEASE_GENERIC(...) \
  DYNAMAST_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))

/// try_lock-style function: acquires the capability iff it returns `b`.
#define DYNAMAST_TRY_ACQUIRE(...) \
  DYNAMAST_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define DYNAMAST_TRY_ACQUIRE_SHARED(...) \
  DYNAMAST_THREAD_ANNOTATION_(try_acquire_shared_capability(__VA_ARGS__))

/// Function must NOT be called with the listed capabilities held (it
/// acquires them itself; prevents self-deadlock).
#define DYNAMAST_EXCLUDES(...) \
  DYNAMAST_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (recovery/diagnostic
/// paths where the acquisition is invisible to the analysis).
#define DYNAMAST_ASSERT_CAPABILITY(x) \
  DYNAMAST_THREAD_ANNOTATION_(assert_capability(x))

/// Function returns a reference to the capability guarding its result.
#define DYNAMAST_RETURN_CAPABILITY(x) \
  DYNAMAST_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch. Policy (enforced by review + scripts/dynamast-lint.py):
/// only permitted at documented condvar/scheduler sites and
/// dynamic-lock-set sites the analysis cannot express, each with a
/// one-line justification comment on the preceding line.
#define DYNAMAST_NO_THREAD_SAFETY_ANALYSIS \
  DYNAMAST_THREAD_ANNOTATION_(no_thread_safety_analysis)

/// Cost attributes for the critical-section cost analyzer
/// (scripts/csa.py; see DESIGN.md, "Critical-section cost analysis").
///
/// DYNAMAST_BLOCKING marks a function that can suspend the calling thread
/// for an unbounded or scheduling-dependent time: network sends, durable
/// log appends, condition-variable waits, lock-manager acquisition,
/// admission throttling, deliberate sleeps. DYNAMAST_EXPENSIVE marks a
/// function that is CPU- or allocation-heavy relative to a critical
/// section (histogram/latency recording, trace emission, record
/// serialization, registry lookups that take a global lock).
///
/// The analyzer treats every call to an annotated function that is
/// transitively reachable while a lock class is held as a profile edge in
/// CSA_BASELINE.json; new edges fail the `csa` stage of check.sh unless
/// allowlisted with a justification. Under clang the macros emit an
/// `annotate` attribute so AST-based tooling can see them too; everywhere
/// else they compile to nothing.
#define DYNAMAST_BLOCKING DYNAMAST_THREAD_ANNOTATION_(annotate("dynamast_blocking"))
#define DYNAMAST_EXPENSIVE \
  DYNAMAST_THREAD_ANNOTATION_(annotate("dynamast_expensive"))

/// DYNAMAST_HOT_PATH marks a function as a transaction-critical-path root
/// for the hot-path cost analyzer (scripts/hpa.py; see DESIGN.md,
/// "Hot-path cost analysis"). Everything reachable from a root is profiled
/// for allocations, wide-type copies, string formatting, and tracked-lock
/// acquisitions; the profile is ratcheted in HPA_BASELINE.json. The
/// DESIGN.md hot-path-root registry table must list exactly the annotated
/// roots (dynamast-lint rule 7).
#define DYNAMAST_HOT_PATH \
  DYNAMAST_THREAD_ANNOTATION_(annotate("dynamast_hot_path"))

/// DYNAMAST_EPOCH_PROTECTED() opens an epoch-protected region for the
/// atomics & memory-order analyzer (scripts/ama.py; see DESIGN.md,
/// "Atomics & memory-order analysis"): from the macro to the end of the
/// enclosing block, loads of `publication`-role atomic fields (pointer
/// handoffs whose pointee a reclaimer could free) are considered safe
/// because reclamation is deferred. Today's publication fields point at
/// never-freed objects and are allowlisted instead; the lock-free
/// storage arc (ROADMAP) will make this the required spelling around
/// epoch-guarded reads. Statement-style no-op at runtime - it exists so
/// the static pass can see the region boundaries.
#define DYNAMAST_EPOCH_PROTECTED() \
  do {                             \
  } while (0)

#endif  // DYNAMAST_COMMON_THREAD_ANNOTATIONS_H_
