#ifndef DYNAMAST_COMMON_SCHED_TRACE_H_
#define DYNAMAST_COMMON_SCHED_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace dynamast::sched {

/// The decision-stream trace of one recorded execution (see DESIGN.md,
/// "Exact replay & partial-order reduction").
///
/// Every synchronization operation the scheduler arbitrates — DebugMutex
/// acquire/release (exclusive and shared), simulated-network delivery,
/// admission-slot grant, durable-log append — is one TraceEntry: which
/// thread performed which kind of operation on which object, in the
/// serialized order the run resolved them. Acquire-like operations are
/// recorded *after* they complete and release-like operations *before*
/// they start, so the recorded order is always feasible: by the time an
/// acquire appears in the stream, the release that enabled it is already
/// earlier in the stream. Replay therefore never deadlocks enforcing it.

enum class OpKind : uint8_t {
  kMutexLock = 0,
  kMutexUnlock = 1,
  kMutexLockShared = 2,
  kMutexUnlockShared = 3,
  kNetDeliver = 4,
  kGateGrant = 5,
  kLogAppend = 6,
  kMarker = 7,
};
inline constexpr uint8_t kNumOpKinds = 8;

const char* OpKindName(OpKind kind);

/// Acquire-like operations (lock, lock_shared) are recorded post-
/// completion and consumed post-completion in replay; everything else is
/// recorded and consumed pre-operation.
bool AcquireLike(OpKind kind);

/// Whether two operations on the *same* object are dependent (order
/// matters). Shared acquisitions commute with each other; everything else
/// on one object conflicts.
bool OpsConflict(OpKind a, OpKind b);

struct TraceEntry {
  uint32_t thread = 0;  ///< index into Trace::threads
  OpKind kind = OpKind::kMarker;
  uint32_t object = 0;  ///< index into Trace::objects
};

/// Stable cross-run identity of one synchronization object: the lock-class
/// label, the name of the thread that constructed it, and its ordinal
/// among that (label, thread) pair's constructions since the last identity
/// reset. Construction order per thread is deterministic, so the key
/// matches the "same" object across record and replay runs — even across
/// processes (no pointers).
struct TraceObject {
  std::string label;
  std::string birth_thread;
  uint32_t birth_index = 0;

  std::string Key() const;
  bool operator==(const TraceObject& o) const {
    return label == o.label && birth_thread == o.birth_thread &&
           birth_index == o.birth_index;
  }
};

struct Trace {
  uint64_t seed = 0;
  /// Free-form metadata (system, workload, client count, history hash...)
  /// so a trace file is self-describing: the replay harness reconstructs
  /// the scenario from it.
  std::map<std::string, std::string> meta;
  std::vector<std::string> threads;     ///< token -> thread name
  std::vector<TraceObject> objects;     ///< dense object table
  std::vector<TraceEntry> entries;

  bool empty() const { return entries.empty(); }

  std::string Serialize() const;
  static Status Parse(std::string_view text, Trace* out);
  Status DumpToFile(const std::string& path) const;
  static Status LoadFromFile(const std::string& path, Trace* out);
};

}  // namespace dynamast::sched

#endif  // DYNAMAST_COMMON_SCHED_TRACE_H_
