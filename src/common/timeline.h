#ifndef DYNAMAST_COMMON_TIMELINE_H_
#define DYNAMAST_COMMON_TIMELINE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/debug_mutex.h"
#include "common/metrics.h"
#include "common/status.h"

namespace dynamast::timeline {

/// Background time-series sampler over a metrics registry (see DESIGN.md,
/// "Timelines & convergence tracking"). Every period it flattens the
/// registry's counters, gauges and histogram counts into one bounded
/// in-memory row; rows dump as JSONL, one object per sample:
///
///   {"schema":"dynamast.timeline.v1","run":"<label>","seq":1,
///    "ts_us":12345,"values":{"site_commits_total{site=0}":42,...}}
///
/// `seq` is strictly increasing from 1 and `ts_us` (the metrics epoch
/// clock) is made strictly increasing even for back-to-back samples, so
/// consumers can sort and diff rows without tie-breaking. The row buffer
/// is bounded: once `max_rows` samples are held, further samples are
/// counted as dropped instead of growing memory — a timeline is a bench
/// artifact, not an unbounded log.
///
/// The sampler thread uses plain std:: primitives (no DebugMutex, no
/// scheduler hooks): like the registry it reads, it is infrastructure
/// below the scheduler layer and must not perturb record/replay identity.
class TimelineSampler {
 public:
  struct Options {
    /// Registry to sample; null means metrics::Registry::Global().
    metrics::Registry* registry = nullptr;
    /// Sampling cadence of the background thread.
    std::chrono::milliseconds period{250};
    /// Row-buffer bound; samples past it are dropped (and counted).
    size_t max_rows = 4096;
    /// Stamped into every row ("<system>/<point>" by bench convention).
    std::string run_label;
  };

  struct Row {
    uint64_t seq = 0;
    uint64_t ts_us = 0;
    std::vector<metrics::Registry::SampledValue> values;
  };

  explicit TimelineSampler(Options options);
  ~TimelineSampler();

  TimelineSampler(const TimelineSampler&) = delete;
  TimelineSampler& operator=(const TimelineSampler&) = delete;

  /// Starts the background sampling thread. No-op if already running.
  void Start();

  /// Stops and joins the thread, taking one final sample first so short
  /// runs always end with a fresh row. Idempotent.
  void Stop();

  /// Takes one sample now (the thread's cadence; also called directly by
  /// deterministic tests).
  void SampleOnce();

  std::vector<Row> Rows() const;
  uint64_t dropped_rows() const;

  /// Appends all rows to `path` as JSONL (creating the file if needed).
  Status AppendJsonl(const std::string& path) const;

  /// One row rendered as its JSONL object (exposed for schema tests).
  std::string RowJson(const Row& row) const;

 private:
  void Loop();

  const Options options_;
  metrics::Registry* const registry_;  // resolved, never null

  mutable RawMutex mu_;
  std::vector<Row> rows_ DYNAMAST_GUARDED_BY(mu_);
  uint64_t next_seq_ DYNAMAST_GUARDED_BY(mu_) = 1;
  uint64_t last_ts_us_ DYNAMAST_GUARDED_BY(mu_) = 0;
  uint64_t dropped_ DYNAMAST_GUARDED_BY(mu_) = 0;

  // Thread control; separate plain mutex/cv so Stop() wakes the sleeper
  // immediately instead of waiting out the period.
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  std::thread thread_;
};

}  // namespace dynamast::timeline

#endif  // DYNAMAST_COMMON_TIMELINE_H_
