#include "common/random.h"

#include <cmath>

namespace dynamast {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Random::Random(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
}

uint64_t Random::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Random::Uniform(uint64_t n) { return Next() % n; }

uint64_t Random::UniformRange(uint64_t lo, uint64_t hi) {
  return lo + Uniform(hi - lo + 1);
}

double Random::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Random::Bernoulli(double p) { return NextDouble() < p; }

uint32_t Random::Binomial(uint32_t trials, double p) {
  uint32_t successes = 0;
  for (uint32_t i = 0; i < trials; ++i) {
    if (Bernoulli(p)) ++successes;
  }
  return successes;
}

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta)
    : n_(n), theta_(theta) {
  zetan_ = Zeta(n, theta);
  const double zeta2 = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2 / zetan_);
}

double ZipfianGenerator::Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

uint64_t ZipfianGenerator::Next(Random& rng) {
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const uint64_t rank = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

uint64_t ScrambledZipfianGenerator::Next(Random& rng) {
  const uint64_t rank = zipf_.Next(rng);
  // FNV-1a style scramble, then fold back into [0, n).
  uint64_t h = 14695981039346656037ULL;
  for (int i = 0; i < 8; ++i) {
    h ^= (rank >> (i * 8)) & 0xff;
    h *= 1099511628211ULL;
  }
  return h % zipf_.n();
}

}  // namespace dynamast
