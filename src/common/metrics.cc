#include "common/metrics.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>

namespace dynamast::metrics {

uint64_t NowMicros() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

size_t Counter::ShardIndex() {
  static std::atomic<size_t> next_shard{0};
  thread_local const size_t index =
      next_shard.fetch_add(1, std::memory_order_relaxed) % kNumShards;
  return index;
}

uint64_t Gauge::ToBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double Gauge::FromBits(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

namespace {

// Canonical series key: labels sorted by key, JSON-ish encoding so distinct
// label sets never collide.
std::string LabelKey(const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string key;
  for (const auto& [k, v] : sorted) {
    key += '"';
    key += JsonEscape(k);
    key += "\":\"";
    key += JsonEscape(v);
    key += "\",";
  }
  if (!key.empty()) key.pop_back();
  return key;
}

const char* TypeName(Registry::Type type) {
  switch (type) {
    case Registry::Type::kCounter:
      return "counter";
    case Registry::Type::kGauge:
      return "gauge";
    case Registry::Type::kHistogram:
      return "histogram";
  }
  return "unknown";
}

// Formats a double with enough precision for counters-in-gauges while
// avoiding exponent noise for typical values.
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return std::string(buf);
}

}  // namespace

Registry& Registry::Global() {
  static Registry* global = new Registry();
  return *global;
}

Registry::Series* Registry::GetSeries(const std::string& name,
                                      const Labels& labels, Type type) {
  RawMutexLock guard(mu_);
  auto [family_it, inserted] = families_.try_emplace(name);
  Family& family = family_it->second;
  if (inserted) {
    family.type = type;
  } else if (family.type != type) {
    return nullptr;  // type mismatch -> scrap
  }
  const std::string key = LabelKey(labels);
  auto series_it = family.series.find(key);
  if (series_it == family.series.end()) {
    if (family.series.size() >= kMaxSeriesPerFamily) {
      return nullptr;  // cardinality overflow -> scrap
    }
    series_it = family.series.emplace(key, Series{}).first;
    Series& series = series_it->second;
    series.labels = labels;
    std::sort(series.labels.begin(), series.labels.end());
    switch (type) {
      case Type::kCounter:
        series.counter = std::make_unique<Counter>();
        break;
      case Type::kGauge:
        series.gauge = std::make_unique<Gauge>();
        break;
      case Type::kHistogram:
        series.histogram = std::make_unique<Histogram>();
        break;
    }
  }
  return &series_it->second;
}

const Registry::Series* Registry::FindSeries(const std::string& name,
                                             const Labels& labels,
                                             Type type) const {
  RawMutexLock guard(mu_);
  auto family_it = families_.find(name);
  if (family_it == families_.end() || family_it->second.type != type) {
    return nullptr;
  }
  auto series_it = family_it->second.series.find(LabelKey(labels));
  if (series_it == family_it->second.series.end()) return nullptr;
  return &series_it->second;
}

Counter* Registry::GetCounter(const std::string& name, const Labels& labels) {
  Series* series = GetSeries(name, labels, Type::kCounter);
  return series != nullptr ? series->counter.get() : &scrap_counter_;
}

Gauge* Registry::GetGauge(const std::string& name, const Labels& labels) {
  Series* series = GetSeries(name, labels, Type::kGauge);
  return series != nullptr ? series->gauge.get() : &scrap_gauge_;
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  const Labels& labels) {
  Series* series = GetSeries(name, labels, Type::kHistogram);
  return series != nullptr ? series->histogram.get() : &scrap_histogram_;
}

void Registry::ResetValues() {
  RawMutexLock guard(mu_);
  for (auto& [name, family] : families_) {
    for (auto& [key, series] : family.series) {
      if (series.counter) series.counter->Reset();
      if (series.gauge) series.gauge->Reset();
      if (series.histogram) series.histogram->Reset();
    }
  }
  scrap_counter_.Reset();
  scrap_gauge_.Reset();
  scrap_histogram_.Reset();
}

size_t Registry::NumSeries() const {
  RawMutexLock guard(mu_);
  size_t total = 0;
  for (const auto& [name, family] : families_) total += family.series.size();
  return total;
}

size_t Registry::NumSeries(const std::string& name) const {
  RawMutexLock guard(mu_);
  auto it = families_.find(name);
  return it == families_.end() ? 0 : it->second.series.size();
}

uint64_t Registry::CounterValue(const std::string& name,
                                const Labels& labels) const {
  const Series* series = FindSeries(name, labels, Type::kCounter);
  return series != nullptr ? series->counter->Value() : 0;
}

double Registry::GaugeValue(const std::string& name,
                            const Labels& labels) const {
  const Series* series = FindSeries(name, labels, Type::kGauge);
  return series != nullptr ? series->gauge->Value() : 0.0;
}

const LatencyRecorder* Registry::HistogramRecorder(const std::string& name,
                                                   const Labels& labels) const {
  const Series* series = FindSeries(name, labels, Type::kHistogram);
  return series != nullptr ? &series->histogram->recorder() : nullptr;
}

std::vector<Registry::SampledValue> Registry::SampleValues() const {
  RawMutexLock guard(mu_);
  std::vector<SampledValue> out;
  for (const auto& [name, family] : families_) {
    for (const auto& [key, series] : family.series) {
      SampledValue sample;
      sample.key = name;
      if (!series.labels.empty()) {
        sample.key += '{';
        bool first = true;
        for (const auto& [k, v] : series.labels) {
          if (!first) sample.key += ',';
          first = false;
          sample.key += k;
          sample.key += '=';
          sample.key += v;
        }
        sample.key += '}';
      }
      sample.type = family.type;
      switch (family.type) {
        case Type::kCounter:
          sample.value = static_cast<double>(series.counter->Value());
          break;
        case Type::kGauge:
          sample.value = series.gauge->Value();
          break;
        case Type::kHistogram:
          sample.value = static_cast<double>(series.histogram->recorder().count());
          break;
      }
      out.push_back(std::move(sample));
    }
  }
  return out;
}

std::string Registry::SnapshotJson() const {
  RawMutexLock guard(mu_);
  std::string out = "{\"metrics\":[";
  bool first_family = true;
  for (const auto& [name, family] : families_) {
    if (!first_family) out += ',';
    first_family = false;
    out += "{\"name\":\"";
    out += JsonEscape(name);
    out += "\",\"type\":\"";
    out += TypeName(family.type);
    out += "\",\"series\":[";
    bool first_series = true;
    for (const auto& [key, series] : family.series) {
      if (!first_series) out += ',';
      first_series = false;
      out += "{\"labels\":{";
      bool first_label = true;
      for (const auto& [k, v] : series.labels) {
        if (!first_label) out += ',';
        first_label = false;
        out += '"';
        out += JsonEscape(k);
        out += "\":\"";
        out += JsonEscape(v);
        out += '"';
      }
      out += '}';
      switch (family.type) {
        case Type::kCounter:
          out += ",\"value\":";
          out += std::to_string(series.counter->Value());
          break;
        case Type::kGauge:
          out += ",\"value\":";
          out += FormatDouble(series.gauge->Value());
          break;
        case Type::kHistogram: {
          // Splice the recorder's own JSON object body in at this level.
          const std::string hist = series.histogram->recorder().SnapshotJson();
          out += ',';
          out += hist.substr(1, hist.size() - 2);
          break;
        }
      }
      out += '}';
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace dynamast::metrics
