#include "common/latency_recorder.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace dynamast {

namespace {
// Geometric bucket growth factor: bucket i covers
// [kFirst * kGrowth^i, kFirst * kGrowth^(i+1)).
constexpr double kGrowth = 1.04;
constexpr double kFirstBoundMicros = 1.0;
}  // namespace

LatencyRecorder::LatencyRecorder() : buckets_(kNumBuckets, 0) {}

size_t LatencyRecorder::BucketFor(uint64_t micros) {
  if (micros <= kFirstBoundMicros) return 0;
  const double b =
      std::log(static_cast<double>(micros) / kFirstBoundMicros) /
      std::log(kGrowth);
  const size_t bucket = static_cast<size_t>(b) + 1;
  return std::min(bucket, kNumBuckets - 1);
}

double LatencyRecorder::BucketLowerBound(size_t bucket) {
  if (bucket == 0) return 0;
  return kFirstBoundMicros * std::pow(kGrowth, static_cast<double>(bucket - 1));
}

void LatencyRecorder::Record(uint64_t micros) {
  RawMutexLock guard(mu_);
  buckets_[BucketFor(micros)]++;
  count_++;
  sum_ += static_cast<double>(micros);
  max_ = std::max(max_, micros);
}

void LatencyRecorder::Merge(const LatencyRecorder& other) {
  if (this == &other) return;
  // Snapshot `other` under its own lock, then fold the copy into this
  // recorder; the two locks are never held together, so concurrent
  // cross-merges (a.Merge(b) racing b.Merge(a)) cannot deadlock. The old
  // two-lock scoped_lock was deadlock-safe only via std::lock's retry
  // algorithm — its "ordering by address" comment was wrong.
  std::vector<uint64_t> other_buckets;
  uint64_t other_count;
  double other_sum;
  uint64_t other_max;
  {
    RawMutexLock guard(other.mu_);
    other_buckets = other.buckets_;
    other_count = other.count_;
    other_sum = other.sum_;
    other_max = other.max_;
  }
  RawMutexLock guard(mu_);
  for (size_t i = 0; i < kNumBuckets; ++i) buckets_[i] += other_buckets[i];
  count_ += other_count;
  sum_ += other_sum;
  max_ = std::max(max_, other_max);
}

uint64_t LatencyRecorder::count() const {
  RawMutexLock guard(mu_);
  return count_;
}

double LatencyRecorder::MeanMicros() const {
  RawMutexLock guard(mu_);
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double LatencyRecorder::PercentileMicros(double q) const {
  RawMutexLock guard(mu_);
  if (count_ == 0) return 0.0;
  const double target = q * static_cast<double>(count_);
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (static_cast<double>(seen) >= target) {
      // Midpoint of the bucket as the estimate, clamped so the last
      // (overflow) bucket reports the true observed maximum instead of its
      // geometric lower bound — otherwise tail percentiles that land in it
      // are understated by an unbounded factor.
      const double lo = BucketLowerBound(i);
      const double hi = std::min(BucketLowerBound(i + 1),
                                 static_cast<double>(max_));
      return i == kNumBuckets - 1 ? static_cast<double>(max_)
                                  : std::max((lo + hi) / 2.0, lo);
    }
  }
  return static_cast<double>(max_);
}

uint64_t LatencyRecorder::MaxMicros() const {
  RawMutexLock guard(mu_);
  return max_;
}

void LatencyRecorder::Reset() {
  RawMutexLock guard(mu_);
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  max_ = 0;
}

std::string LatencyRecorder::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "avg=%.2fms p50=%.2fms p90=%.2fms p99=%.2fms p99.9=%.2fms "
                "max=%.2fms n=%llu",
                MeanMicros() / 1000.0, PercentileMicros(0.5) / 1000.0,
                PercentileMicros(0.9) / 1000.0, PercentileMicros(0.99) / 1000.0,
                PercentileMicros(0.999) / 1000.0,
                static_cast<double>(MaxMicros()) / 1000.0,
                static_cast<unsigned long long>(count()));
  return std::string(buf);
}

std::string LatencyRecorder::SnapshotJson() const {
  char buf[320];
  std::snprintf(
      buf, sizeof(buf),
      "{\"count\":%llu,\"mean_us\":%.3f,\"p50_us\":%.3f,\"p90_us\":%.3f,"
      "\"p99_us\":%.3f,\"p999_us\":%.3f,\"max_us\":%llu}",
      static_cast<unsigned long long>(count()), MeanMicros(),
      PercentileMicros(0.5), PercentileMicros(0.9), PercentileMicros(0.99),
      PercentileMicros(0.999), static_cast<unsigned long long>(MaxMicros()));
  return std::string(buf);
}

}  // namespace dynamast
