#include "common/trace.h"

#include <algorithm>
#include <cstdio>

#include "common/metrics.h"

namespace dynamast::trace {

std::string TraceEvent::ToJson(uint32_t pid_offset) const {
  std::string out = "{\"name\":\"";
  out += metrics::JsonEscape(name);
  out += "\",\"cat\":\"";
  out += metrics::JsonEscape(cat.empty() ? "default" : cat);
  out += "\",\"ph\":\"";
  out += ph;
  out += "\",\"ts\":";
  out += std::to_string(ts_us);
  if (ph == 'X') {
    out += ",\"dur\":";
    out += std::to_string(dur_us);
  }
  out += ",\"pid\":";
  out += std::to_string(pid + pid_offset);
  out += ",\"tid\":";
  out += std::to_string(tid);
  out += ",\"args\":{";
  bool first = true;
  for (const auto& [key, value] : args) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += metrics::JsonEscape(key);
    out += "\":\"";
    out += metrics::JsonEscape(value);
    out += '"';
  }
  out += "}}";
  return out;
}

Tracer::Tracer(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(std::min<size_t>(capacity_, 1024));
}

void Tracer::Record(TraceEvent event) {
  RawMutexLock guard(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
    return;
  }
  // Ring full: overwrite the oldest event.
  ring_[next_] = std::move(event);
  next_ = (next_ + 1) % capacity_;
  wrapped_ = true;
  ++dropped_;
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  RawMutexLock guard(mu_);
  if (!wrapped_) return ring_;
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % capacity_]);
  }
  return out;
}

uint64_t Tracer::dropped() const {
  RawMutexLock guard(mu_);
  return dropped_;
}

size_t Tracer::size() const {
  RawMutexLock guard(mu_);
  return ring_.size();
}

void Tracer::SetProcessName(uint32_t pid, std::string name) {
  RawMutexLock guard(mu_);
  process_names_[pid] = std::move(name);
}

std::map<uint32_t, std::string> Tracer::process_names() const {
  RawMutexLock guard(mu_);
  return process_names_;
}

TraceEvent ProcessNameEvent(uint32_t pid, const std::string& name) {
  TraceEvent meta;
  meta.name = "process_name";
  meta.cat = "__metadata";
  meta.ph = 'M';
  meta.pid = pid;
  meta.args.emplace_back("name", name);
  return meta;
}

std::string Tracer::ToChromeJson() const {
  const std::map<uint32_t, std::string> names = process_names();
  const std::vector<TraceEvent> events = Snapshot();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const auto& [pid, name] : names) {
    if (!first) out += ',';
    first = false;
    out += ProcessNameEvent(pid, name).ToJson();
  }
  for (const TraceEvent& event : events) {
    if (!first) out += ',';
    first = false;
    out += event.ToJson();
  }
  out += "]}";
  return out;
}

Span::Span(Tracer* tracer, std::string name, std::string cat, uint32_t pid,
           uint64_t tid)
    : tracer_(tracer), ended_(tracer == nullptr) {
  if (tracer_ == nullptr) return;
  event_.name = std::move(name);
  event_.cat = std::move(cat);
  event_.pid = pid;
  event_.tid = tid;
  event_.ts_us = metrics::NowMicros();
}

Span::~Span() { End(); }

void Span::SetTxn(uint64_t client, uint64_t client_txn) {
  if (ended_) return;
  char buf[48];
  std::snprintf(buf, sizeof(buf), "c%llu.t%llu",
                static_cast<unsigned long long>(client),
                static_cast<unsigned long long>(client_txn));
  AddArg("txn", buf);
}

void Span::AddArg(std::string key, std::string value) {
  if (ended_) return;
  event_.args.emplace_back(std::move(key), std::move(value));
}

void Span::AddNum(std::string key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  AddArg(std::move(key), buf);
}

void Span::End() {
  if (ended_) return;
  ended_ = true;
  event_.dur_us = metrics::NowMicros() - event_.ts_us;
  tracer_->Record(std::move(event_));
}

}  // namespace dynamast::trace
