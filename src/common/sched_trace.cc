#include "common/sched_trace.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace dynamast::sched {

namespace {

// Thread names and lock labels are path-like identifiers; escape the few
// characters that would break the whitespace-delimited trace grammar.
std::string EscapeToken(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == ' ' || c == '\n' || c == '\t' || c == '%' || c == '\0') {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02x", static_cast<unsigned char>(c));
      out += buf;
    } else {
      out += c;
    }
  }
  if (out.empty()) out = "%00";
  return out;
}

std::string UnescapeToken(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      auto hex = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        return -1;
      };
      const int hi = hex(s[i + 1]);
      const int lo = hex(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        const char c = static_cast<char>(hi * 16 + lo);
        if (c != '\0') out += c;
        i += 2;
        continue;
      }
    }
    out += s[i];
  }
  return out;
}

}  // namespace

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kMutexLock:
      return "lock";
    case OpKind::kMutexUnlock:
      return "unlock";
    case OpKind::kMutexLockShared:
      return "lock_shared";
    case OpKind::kMutexUnlockShared:
      return "unlock_shared";
    case OpKind::kNetDeliver:
      return "net.deliver";
    case OpKind::kGateGrant:
      return "gate.grant";
    case OpKind::kLogAppend:
      return "log.append";
    case OpKind::kMarker:
      return "marker";
  }
  return "?";
}

bool AcquireLike(OpKind kind) {
  return kind == OpKind::kMutexLock || kind == OpKind::kMutexLockShared;
}

bool OpsConflict(OpKind a, OpKind b) {
  // On one object, the only commuting pair is two shared acquisitions
  // (reader-reader). Shared releases are kept ordered: the scheduler
  // serializes them anyway, and treating them as dependent keeps the
  // happens-before relation a superset of the true dependency relation
  // (sound for DPOR: at worst we explore a few redundant schedules).
  return !(a == OpKind::kMutexLockShared && b == OpKind::kMutexLockShared);
}

std::string TraceObject::Key() const {
  std::ostringstream os;
  os << EscapeToken(label) << '|' << EscapeToken(birth_thread) << '|'
     << birth_index;
  return os.str();
}

std::string Trace::Serialize() const {
  std::ostringstream os;
  os << "# dynamast scheduler trace v1\n";
  os << "seed " << seed << '\n';
  for (const auto& [k, v] : meta) {
    os << "meta " << EscapeToken(k) << ' ' << EscapeToken(v) << '\n';
  }
  for (size_t i = 0; i < threads.size(); ++i) {
    os << "thread " << i << ' ' << EscapeToken(threads[i]) << '\n';
  }
  for (size_t i = 0; i < objects.size(); ++i) {
    const TraceObject& o = objects[i];
    os << "object " << i << ' ' << EscapeToken(o.label) << ' '
       << EscapeToken(o.birth_thread) << ' ' << o.birth_index << '\n';
  }
  for (const TraceEntry& e : entries) {
    os << "e " << e.thread << ' ' << static_cast<unsigned>(e.kind) << ' '
       << e.object << '\n';
  }
  return os.str();
}

Status Trace::Parse(std::string_view text, Trace* out) {
  *out = Trace{};
  std::istringstream is{std::string(text)};
  std::string line;
  size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    auto bad = [&](const char* why) {
      return Status::Corruption("trace line " + std::to_string(lineno) + ": " +
                                why);
    };
    if (tag == "seed") {
      if (!(ls >> out->seed)) return bad("malformed seed");
    } else if (tag == "meta") {
      std::string k, v;
      if (!(ls >> k)) return bad("malformed meta");
      if (!(ls >> v)) v.clear();
      out->meta[UnescapeToken(k)] = UnescapeToken(v);
    } else if (tag == "thread") {
      size_t idx = 0;
      std::string name;
      if (!(ls >> idx >> name)) return bad("malformed thread");
      if (idx != out->threads.size()) return bad("thread index out of order");
      out->threads.push_back(UnescapeToken(name));
    } else if (tag == "object") {
      size_t idx = 0;
      TraceObject o;
      std::string label, birth;
      if (!(ls >> idx >> label >> birth >> o.birth_index)) {
        return bad("malformed object");
      }
      if (idx != out->objects.size()) return bad("object index out of order");
      o.label = UnescapeToken(label);
      o.birth_thread = UnescapeToken(birth);
      out->objects.push_back(std::move(o));
    } else if (tag == "e") {
      TraceEntry e;
      unsigned kind = 0;
      if (!(ls >> e.thread >> kind >> e.object)) return bad("malformed entry");
      if (kind >= kNumOpKinds) return bad("unknown op kind");
      if (e.thread >= out->threads.size()) return bad("entry thread unknown");
      if (e.object >= out->objects.size()) return bad("entry object unknown");
      e.kind = static_cast<OpKind>(kind);
      out->entries.push_back(e);
    } else {
      return bad("unknown tag");
    }
  }
  return Status::OK();
}

Status Trace::DumpToFile(const std::string& path) const {
  std::ofstream f(path, std::ios::out | std::ios::trunc);
  if (!f) return Status::Unavailable("cannot open trace file " + path);
  f << Serialize();
  f.flush();
  if (!f) return Status::Unavailable("failed writing trace file " + path);
  return Status::OK();
}

Status Trace::LoadFromFile(const std::string& path, Trace* out) {
  std::ifstream f(path);
  if (!f) return Status::NotFound("cannot open trace file " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  return Parse(buf.str(), out);
}

}  // namespace dynamast::sched
