#include "common/invariant_checker.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace dynamast::invariants {

namespace {
std::atomic<FailureHandler> g_handler{nullptr};
}  // namespace

void Failure(const char* file, int line, const char* expr,
             const std::string& message) {
  std::string report = "DYNAMAST INVARIANT VIOLATED at ";
  report += file;
  report += ":" + std::to_string(line);
  report += "\n  expression: ";
  report += expr;
  report += "\n  ";
  report += message;
  report += "\n";
  FailureHandler handler = g_handler.load(std::memory_order_acquire);
  if (handler != nullptr) {
    handler(report.c_str());
    // A test handler normally longjmps/throws out of the calling frame;
    // if it returns we still must not, so fall through to abort.
  }
  std::fputs(report.c_str(), stderr);
  std::fflush(stderr);
  std::abort();
}

void SetFailureHandlerForTest(FailureHandler handler) {
  g_handler.store(handler, std::memory_order_release);
}

}  // namespace dynamast::invariants
