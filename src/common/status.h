#ifndef DYNAMAST_COMMON_STATUS_H_
#define DYNAMAST_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace dynamast {

/// Status is the error-reporting vocabulary type of this library, following
/// the RocksDB/Arrow idiom: functions that can fail return a Status (or a
/// value plus a Status out-parameter) instead of throwing exceptions.
///
/// A Status is cheap to copy in the OK case (no allocation) and carries a
/// code plus a human-readable message otherwise.
///
/// [[nodiscard]]: silently dropping a Status hides failures (the classic
/// unchecked-write bug); callers that genuinely don't care must say so
/// with a `(void)` cast. Enforced in CI by -Wunused-result plus the
/// clang-tidy checks bugprone-unused-return-value / cert-err33-c.
class [[nodiscard]] Status {
 public:
  enum class Code {
    kOk = 0,
    kNotFound,
    kAlreadyExists,
    kInvalidArgument,
    kAborted,          // transaction aborted (conflict, injected failure)
    kTimedOut,         // lock or freshness wait exceeded its deadline
    kNotMaster,        // write attempted at a site that does not master item
    kUnavailable,      // component shut down or site failed
    kCorruption,       // log / serialization integrity failure
    kSnapshotTooOld,   // MVCC pruned the version a snapshot needs
    kInternal,
  };

  Status() = default;

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string_view msg = "") {
    return Status(Code::kNotFound, msg);
  }
  static Status AlreadyExists(std::string_view msg = "") {
    return Status(Code::kAlreadyExists, msg);
  }
  static Status InvalidArgument(std::string_view msg = "") {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status Aborted(std::string_view msg = "") {
    return Status(Code::kAborted, msg);
  }
  static Status TimedOut(std::string_view msg = "") {
    return Status(Code::kTimedOut, msg);
  }
  static Status NotMaster(std::string_view msg = "") {
    return Status(Code::kNotMaster, msg);
  }
  static Status Unavailable(std::string_view msg = "") {
    return Status(Code::kUnavailable, msg);
  }
  static Status Corruption(std::string_view msg = "") {
    return Status(Code::kCorruption, msg);
  }
  static Status SnapshotTooOld(std::string_view msg = "") {
    return Status(Code::kSnapshotTooOld, msg);
  }
  static Status Internal(std::string_view msg = "") {
    return Status(Code::kInternal, msg);
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsTimedOut() const { return code_ == Code::kTimedOut; }
  bool IsNotMaster() const { return code_ == Code::kNotMaster; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsSnapshotTooOld() const { return code_ == Code::kSnapshotTooOld; }
  bool IsInternal() const { return code_ == Code::kInternal; }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders e.g. "Aborted: write-write conflict on key 42".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  Status(Code code, std::string_view msg) : code_(code), message_(msg) {}

  Code code_ = Code::kOk;
  std::string message_;
};

/// Stable code name ("Aborted", "TimedOut", ...) — the label vocabulary of
/// the abort-reason taxonomy metrics (site_aborts_total{reason=...}).
const char* StatusCodeName(Status::Code code);

}  // namespace dynamast

#endif  // DYNAMAST_COMMON_STATUS_H_
