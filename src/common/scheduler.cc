#include "common/scheduler.h"

#include <atomic>
#include <chrono>
#include <thread>

namespace dynamast::sched {
namespace {

struct Controller {
  std::atomic<bool> enabled{false};
  std::atomic<uint64_t> seed{0};
  // Bumped on every Enable; threads compare it to their cached epoch and
  // re-derive priority + decision stream when it moved.
  std::atomic<uint64_t> epoch{1};
  // Arrival-order thread identity within an epoch (folded into the
  // per-thread stream so sibling threads diverge under one seed).
  std::atomic<uint64_t> next_thread_token{0};
  std::atomic<uint64_t> points{0};
  std::atomic<uint64_t> perturbations{0};
};

Controller g_controller;

// SplitMix64 finalizer: cheap, well-mixed, and stateless.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

struct ThreadState {
  uint64_t epoch = 0;
  uint64_t rng = 0;
  // 0 = most perturbed .. 7 = nearly unperturbed (PCT-style priorities).
  uint32_t priority = 0;
};

thread_local ThreadState t_state;

uint64_t NextRand(ThreadState& state) {
  state.rng = Mix(state.rng);
  return state.rng;
}

uint64_t HashName(const char* name) {
  // FNV-1a; hook-class names are short string literals.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char* p = name; *p != '\0'; ++p) {
    h = (h ^ static_cast<uint64_t>(*p)) * 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

void Enable(uint64_t seed) {
  g_controller.seed.store(seed, std::memory_order_relaxed);
  g_controller.next_thread_token.store(0, std::memory_order_relaxed);
  g_controller.points.store(0, std::memory_order_relaxed);
  g_controller.perturbations.store(0, std::memory_order_relaxed);
  g_controller.epoch.fetch_add(1, std::memory_order_relaxed);
  g_controller.enabled.store(true, std::memory_order_release);
}

void Disable() {
  g_controller.enabled.store(false, std::memory_order_release);
}

bool IsEnabled() {
  return g_controller.enabled.load(std::memory_order_acquire);
}

uint64_t CurrentSeed() {
  return g_controller.seed.load(std::memory_order_relaxed);
}

uint64_t PointCount() {
  return g_controller.points.load(std::memory_order_relaxed);
}

uint64_t PerturbationCount() {
  return g_controller.perturbations.load(std::memory_order_relaxed);
}

void Point(const char* site_name) {
  if (!g_controller.enabled.load(std::memory_order_acquire)) return;

  ThreadState& st = t_state;
  const uint64_t epoch = g_controller.epoch.load(std::memory_order_relaxed);
  if (st.epoch != epoch) {
    st.epoch = epoch;
    const uint64_t token =
        g_controller.next_thread_token.fetch_add(1, std::memory_order_relaxed);
    st.rng = Mix(g_controller.seed.load(std::memory_order_relaxed) ^
                 Mix(token + 0x51ed270b1a2f9d23ULL));
    st.priority = static_cast<uint32_t>(NextRand(st) & 7);
  }
  g_controller.points.fetch_add(1, std::memory_order_relaxed);

  const uint64_t r = NextRand(st) ^ HashName(site_name);
  // Low-priority threads are perturbed often, high-priority ones almost
  // never: 17% down to 3% of points.
  const uint64_t roll = r % 100;
  const uint64_t threshold = 17 - 2 * st.priority;
  if (roll >= threshold) return;
  g_controller.perturbations.fetch_add(1, std::memory_order_relaxed);

  // Mostly cheap yields (lose the race, reorder the run queue); sometimes
  // a short sleep to stretch whatever critical section or window the hook
  // sits inside.
  if ((r >> 8) % 4 != 0) {
    std::this_thread::yield();
  } else {
    const auto micros = 1 + ((r >> 16) % 100);
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
}

}  // namespace dynamast::sched
