#include "common/scheduler.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <utility>

namespace dynamast::sched {
namespace {

using Clock = std::chrono::steady_clock;

constexpr uint32_t kNoToken = 0xffffffffU;
// How long a replay gate waits for its recorded turn before declaring the
// run divergent and disarming (free-running the rest).
constexpr auto kReplayStall = std::chrono::seconds(5);
// Explore-mode watchdogs: how long the scheduler tolerates a non-quiescent
// state (an untracked thread doing work, a granted op stuck in native
// code) before it forces progress. Each firing is counted as a
// nondeterminism warning in ExploreRun::stall_grants.
constexpr auto kExploreStall = std::chrono::seconds(2);
constexpr auto kCvPoll = std::chrono::milliseconds(50);

// SplitMix64 finalizer: cheap, well-mixed, and stateless.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashName(const char* name) {
  // FNV-1a; hook-class names are short string literals.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char* p = name; *p != '\0'; ++p) {
    h = (h ^ static_cast<uint64_t>(*p)) * 0x100000001b3ULL;
  }
  return h;
}

struct ObjectInfo {
  std::string label;
  std::string birth_thread;
  uint32_t birth_index = 0;
};

// One engine-side synchronization object during replay: the recorded
// per-object queue (indices into trace.entries) plus a cursor.
struct ReplayObject {
  std::vector<uint32_t> queue;
  size_t cursor = 0;
};

struct ExploreThread {
  enum class State { kRunning, kWaiting, kBlocked, kDone };
  std::string name;
  State state = State::kRunning;
  bool has_pending = false;
  OpKind pending_kind = OpKind::kMarker;
  uint32_t pending_obj = 0;
  bool granted = false;
  uint64_t grant_seq = 0;
};

struct Ownership {
  uint32_t exclusive = kNoToken;
  std::set<uint32_t> shared;
};

struct Engine {
  // Fast-path state (read on every op without taking mu).
  std::atomic<uint8_t> mode{0};
  std::atomic<bool> fuzz_layer{false};
  std::atomic<uint64_t> seed{0};
  std::atomic<uint64_t> epoch{1};
  std::atomic<uint64_t> next_thread_token{0};
  std::atomic<uint64_t> points{0};
  std::atomic<uint64_t> perturbations{0};
  // Bumped on every Start*/Stop* so stale OpScopes / thread tokens from a
  // previous run are ignored.
  std::atomic<uint64_t> run_id{1};

  // Everything below is guarded by mu. The engine deliberately uses raw
  // std::mutex / std::condition_variable: it sits *underneath* DebugMutex
  // and must never re-enter its own hooks.
  std::mutex mu;
  std::condition_variable cv;

  // --- identity ---
  std::vector<ObjectInfo> objects{ObjectInfo{"<anon>", "", 0}};  // uid 0
  std::map<std::pair<std::string, std::string>, uint32_t> birth_counters;
  std::map<const void*, uint64_t> cv_gens;

  // --- record ---
  bool recording = false;
  std::vector<TraceEntry> rec_entries;  // entry.object = engine uid
  std::vector<std::string> rec_threads;

  // --- replay ---
  bool replaying = false;
  bool replay_disarmed = false;
  Trace replay_trace;
  std::vector<ReplayObject> replay_objects;       // by trace object index
  std::map<std::string, uint32_t> replay_keys;    // object key -> trace idx
  std::map<uint32_t, int64_t> replay_uid2obj;     // engine uid -> trace idx
  std::vector<bool> replay_thread_claimed;
  std::vector<bool> replay_thread_exited;  // token deregistered (ThreadGuard)
  size_t replay_consumed = 0;
  size_t replay_unmatched = 0;
  size_t replay_skipped_exited = 0;
  std::vector<std::string> replay_divergences;

  // --- explore ---
  bool exploring = false;
  ExploreOptions ex_opts;
  std::map<std::string, uint32_t> ex_name_tokens;  // session-persistent
  std::map<std::string, uint32_t> ex_name_instances;
  std::map<uint32_t, ExploreThread> ex_threads;
  std::map<uint32_t, Ownership> ex_owner;
  std::vector<TraceEntry> ex_entries;  // entry.object = engine uid
  std::vector<ExploreStep> ex_steps;
  std::set<uint32_t> ex_sleep;
  size_t ex_forced_cursor = 0;
  bool ex_grant_active = false;
  uint64_t ex_grant_seq = 0;
  Clock::time_point ex_progress = Clock::now();
  uint64_t ex_rng = 0;
  int ex_preemptions_left = -1;
  uint32_t ex_last_token = kNoToken;
  size_t ex_stall_grants = 0;
  size_t ex_sleep_forced = 0;
  bool ex_diverged = false;
  bool ex_hit_limit = false;
  bool ex_await_done = false;
  // Captured at grant time, consumed by FinishOp.
  std::vector<uint32_t> ex_grant_enabled;
  std::vector<uint32_t> ex_grant_sleeping;
};

Engine g_engine;

struct Tls {
  // Legacy fuzz layer.
  uint64_t epoch = 0;
  uint64_t rng = 0;
  uint32_t priority = 0;
  // Trace identity.
  std::string name;
  uint64_t run = 0;
  uint32_t token = kNoToken;
  bool divergence_noted = false;
};

thread_local Tls t_tls;

uint64_t NextRand(Tls& t) {
  t.rng = Mix(t.rng);
  return t.rng;
}

void Perturb(const char* site_name) {
  // The PR 2 PCT-lite layer, unchanged: priorities 0..7, 17% down to 3%
  // perturbation probability, mostly yields with occasional short sleeps.
  Engine& g = g_engine;
  Tls& t = t_tls;
  const uint64_t epoch = g.epoch.load(std::memory_order_relaxed);
  if (t.epoch != epoch) {
    t.epoch = epoch;
    const uint64_t token =
        g.next_thread_token.fetch_add(1, std::memory_order_relaxed);
    t.rng = Mix(g.seed.load(std::memory_order_relaxed) ^
                Mix(token + 0x51ed270b1a2f9d23ULL));
    t.priority = static_cast<uint32_t>(NextRand(t) & 7);
  }
  g.points.fetch_add(1, std::memory_order_relaxed);

  const uint64_t r = NextRand(t) ^ HashName(site_name);
  const uint64_t roll = r % 100;
  const uint64_t threshold = 17 - 2 * t.priority;
  if (roll >= threshold) return;
  g.perturbations.fetch_add(1, std::memory_order_relaxed);

  if ((r >> 8) % 4 != 0) {
    std::this_thread::yield();
  } else {
    const auto micros = 1 + ((r >> 16) % 100);
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
}

bool FuzzLayerActive(uint8_t mode) {
  return mode == static_cast<uint8_t>(Mode::kFuzz) ||
         (mode == static_cast<uint8_t>(Mode::kRecord) &&
          g_engine.fuzz_layer.load(std::memory_order_relaxed));
}

std::string ThreadNameOrAnon(uint32_t token) {
  if (!t_tls.name.empty()) return t_tls.name;
  return "anon/" + std::to_string(token);
}

// ---------------------------------------------------------------------------
// Record mode.

// Assigns (once per run) this thread's record token. Caller holds mu.
uint32_t RecordTokenLocked() {
  Engine& g = g_engine;
  Tls& t = t_tls;
  const uint64_t run = g.run_id.load(std::memory_order_relaxed);
  if (t.run != run) {
    t.run = run;
    t.token = static_cast<uint32_t>(g.rec_threads.size());
    g.rec_threads.push_back(ThreadNameOrAnon(t.token));
  }
  return t.token;
}

void RecordEntry(OpKind kind, uint32_t uid) {
  Engine& g = g_engine;
  std::lock_guard<std::mutex> lk(g.mu);
  if (!g.recording || uid == 0 || uid >= g.objects.size()) return;
  g.rec_entries.push_back(TraceEntry{RecordTokenLocked(), kind, uid});
}

// ---------------------------------------------------------------------------
// Replay mode.

void ReplayDivergeLocked(const std::string& why) {
  Engine& g = g_engine;
  if (g.replay_divergences.size() < 32) g.replay_divergences.push_back(why);
  g.replay_disarmed = true;
  g.cv.notify_all();
}

// Claims this thread's trace identity by name (lowest unclaimed trace
// thread with a matching name). Caller holds mu.
uint32_t ReplayTokenLocked() {
  Engine& g = g_engine;
  Tls& t = t_tls;
  const uint64_t run = g.run_id.load(std::memory_order_relaxed);
  if (t.run == run) return t.token;
  t.run = run;
  t.token = kNoToken;
  t.divergence_noted = false;
  const std::string name = ThreadNameOrAnon(0);
  for (size_t i = 0; i < g.replay_trace.threads.size(); ++i) {
    if (!g.replay_thread_claimed[i] && g.replay_trace.threads[i] == name) {
      g.replay_thread_claimed[i] = true;
      t.token = static_cast<uint32_t>(i);
      break;
    }
  }
  if (t.token == kNoToken && !t.divergence_noted) {
    t.divergence_noted = true;
    if (g.replay_divergences.size() < 32) {
      g.replay_divergences.push_back("unexpected thread \"" + name +
                                     "\" not present in trace");
    }
  }
  return t.token;
}

// Engine uid -> trace object index, or -1 if the trace never saw it.
// Caller holds mu.
int64_t ReplayObjectLocked(uint32_t uid) {
  Engine& g = g_engine;
  auto it = g.replay_uid2obj.find(uid);
  if (it != g.replay_uid2obj.end()) return it->second;
  int64_t idx = -1;
  if (uid < g.objects.size()) {
    const ObjectInfo& o = g.objects[uid];
    TraceObject key{o.label, o.birth_thread, o.birth_index};
    auto kit = g.replay_keys.find(key.Key());
    if (kit != g.replay_keys.end()) idx = kit->second;
  }
  g.replay_uid2obj[uid] = idx;
  return idx;
}

void ReplayConsumeHeadLocked(int64_t obj_idx) {
  Engine& g = g_engine;
  ReplayObject& ro = g.replay_objects[static_cast<size_t>(obj_idx)];
  ++ro.cursor;
  ++g.replay_consumed;
  g.cv.notify_all();
}

// Blocks until this (thread, kind) pair is at the head of its object's
// recorded queue. `consume` advances the queue before returning (release-
// like ops); acquire-like ops keep the head reserved and consume it from
// the OpScope destructor once the native acquisition completed.
// Returns false if replay is (or became) disarmed / untracked.
bool ReplayGate(OpKind kind, uint32_t uid, bool consume) {
  Engine& g = g_engine;
  std::unique_lock<std::mutex> lk(g.mu);
  if (!g.replaying || g.replay_disarmed) return false;
  const uint32_t token = ReplayTokenLocked();
  const int64_t obj_idx = ReplayObjectLocked(uid);
  if (token == kNoToken || obj_idx < 0 || uid == 0) {
    ++g.replay_unmatched;
    return false;
  }
  ReplayObject& ro = g.replay_objects[static_cast<size_t>(obj_idx)];
  auto start = Clock::now();
  while (true) {
    if (!g.replaying || g.replay_disarmed) return false;
    if (ro.cursor >= ro.queue.size()) {
      // More live operations than the trace recorded (post-measurement
      // teardown): pass through.
      ++g.replay_unmatched;
      return false;
    }
    const TraceEntry& head = g.replay_trace.entries[ro.queue[ro.cursor]];
    if (head.thread != token && head.thread < g.replay_thread_exited.size() &&
        g.replay_thread_exited[head.thread]) {
      // The recorded thread deregistered without performing this op: its
      // exit raced an untraced stop flag (it skipped a final no-op drain
      // iteration the recorded run happened to squeeze in). Shed the entry
      // so the stream keeps moving; a live expected thread still stalls
      // and flags below.
      ++g.replay_skipped_exited;
      ReplayConsumeHeadLocked(obj_idx);
      start = Clock::now();
      continue;
    }
    if (head.thread == token) {
      if (head.kind != kind) {
        std::ostringstream os;
        os << "thread \"" << g.replay_trace.threads[token] << "\" performed "
           << OpKindName(kind) << " on object "
           << g.replay_trace.objects[head.object].Key() << " but trace expects "
           << OpKindName(head.kind);
        ReplayDivergeLocked(os.str());
        return false;
      }
      if (consume) ReplayConsumeHeadLocked(obj_idx);
      return true;
    }
    if (Clock::now() - start > kReplayStall) {
      std::ostringstream os;
      os << "stalled " << ">" << kReplayStall.count() << "s: thread \""
         << g.replay_trace.threads[token] << "\" waiting to "
         << OpKindName(kind) << " object "
         << g.replay_trace.objects[g.replay_trace.entries[ro.queue[ro.cursor]]
                                       .object]
                .Key()
         << " but trace expects thread \""
         << g.replay_trace.threads[head.thread] << "\" to "
         << OpKindName(head.kind) << " first";
      ReplayDivergeLocked(os.str());
      return false;
    }
    g.cv.wait_for(lk, kCvPoll);
  }
}

// Destructor half of an acquire-like replayed op.
void ReplayFinishAcquire(OpKind kind, uint32_t uid) {
  Engine& g = g_engine;
  std::lock_guard<std::mutex> lk(g.mu);
  if (!g.replaying || g.replay_disarmed) return;
  const int64_t obj_idx = ReplayObjectLocked(uid);
  if (obj_idx < 0) return;
  ReplayObject& ro = g.replay_objects[static_cast<size_t>(obj_idx)];
  if (ro.cursor >= ro.queue.size()) return;
  const TraceEntry& head = g.replay_trace.entries[ro.queue[ro.cursor]];
  if (head.thread == t_tls.token && head.kind == kind) {
    ReplayConsumeHeadLocked(obj_idx);
  }
}

// A deregistering thread can never perform its remaining recorded
// entries. Mark its trace token dead so gates queued behind those entries
// shed them instead of stalling. Claims the token by name if the thread
// exited before its first traced op (without noting a divergence — a
// bystander thread absent from the trace is fine).
void ReplayMarkExited() {
  Engine& g = g_engine;
  std::lock_guard<std::mutex> lk(g.mu);
  if (!g.replaying) return;
  Tls& t = t_tls;
  const uint64_t run = g.run_id.load(std::memory_order_relaxed);
  uint32_t token = t.run == run ? t.token : kNoToken;
  if (token == kNoToken) {
    const std::string name = ThreadNameOrAnon(0);
    for (size_t i = 0; i < g.replay_trace.threads.size(); ++i) {
      if (!g.replay_thread_claimed[i] && g.replay_trace.threads[i] == name) {
        g.replay_thread_claimed[i] = true;
        token = static_cast<uint32_t>(i);
        break;
      }
    }
  }
  if (token != kNoToken && token < g.replay_thread_exited.size()) {
    g.replay_thread_exited[token] = true;
    g.cv.notify_all();
  }
}

// ---------------------------------------------------------------------------
// Explore mode.

uint32_t ExploreTokenLocked() {
  Engine& g = g_engine;
  Tls& t = t_tls;
  const uint64_t run = g.run_id.load(std::memory_order_relaxed);
  if (t.run == run && t.token != kNoToken) return t.token;
  t.run = run;
  const std::string base = ThreadNameOrAnon(0);
  const uint32_t instance = g.ex_name_instances[base]++;
  const std::string effective =
      instance == 0 ? base : base + "#" + std::to_string(instance);
  auto it = g.ex_name_tokens.find(effective);
  if (it == g.ex_name_tokens.end()) {
    const uint32_t token = static_cast<uint32_t>(g.ex_name_tokens.size());
    it = g.ex_name_tokens.emplace(effective, token).first;
  }
  t.token = it->second;
  ExploreThread& th = g.ex_threads[t.token];
  th.name = effective;
  th.state = ExploreThread::State::kRunning;
  return t.token;
}

bool ExRunnableLocked(const ExploreThread& th) {
  Engine& g = g_engine;
  if (!th.has_pending) return false;
  const auto it = g.ex_owner.find(th.pending_obj);
  if (it == g.ex_owner.end()) return true;
  const Ownership& own = it->second;
  switch (th.pending_kind) {
    case OpKind::kMutexLock:
      return own.exclusive == kNoToken && own.shared.empty();
    case OpKind::kMutexLockShared:
      return own.exclusive == kNoToken;
    default:
      return true;
  }
}

// The serial scheduler's single decision step. Caller holds mu. Grants at
// most one pending operation; returns without granting when the system is
// not quiescent (a tracked thread is Running) unless the stall watchdog
// fired.
void ExTryScheduleLocked() {
  Engine& g = g_engine;
  if (!g.exploring || g.ex_grant_active) {
    // Grant watchdog: a granted op stuck in native code (blocked on an
    // untracked resource) must not wedge the whole exploration.
    if (g.exploring && g.ex_grant_active &&
        Clock::now() - g.ex_progress > kExploreStall) {
      g.ex_grant_active = false;
      ++g.ex_stall_grants;
      g.ex_progress = Clock::now();
    } else {
      return;
    }
  }
  if (g.ex_entries.size() >= g.ex_opts.max_steps) {
    // Budget exhausted: free-run the rest of the execution so it still
    // terminates; the collected prefix is what the explorer analyzes.
    g.ex_hit_limit = true;
    g.exploring = false;
    g.cv.notify_all();
    return;
  }

  bool any_running = false;
  for (const auto& [tok, th] : g.ex_threads) {
    if (th.state == ExploreThread::State::kRunning) any_running = true;
  }
  const bool stalled = Clock::now() - g.ex_progress > kExploreStall;

  // Startup gate: hold every grant until the declared thread population
  // has registered, so the first choice points see the full enabled set.
  // Blocked threads don't count: a ScopedBlocked joiner (the spawning
  // thread) registers too, but is a bystander, not a participant.
  if (!g.ex_await_done) {
    size_t participants = 0;
    for (const auto& [tok, th] : g.ex_threads) {
      if (th.state != ExploreThread::State::kBlocked) ++participants;
    }
    if (participants >= g.ex_opts.await_threads) {
      g.ex_await_done = true;
    } else if (stalled) {
      g.ex_await_done = true;  // stragglers never arrived; stop waiting
      ++g.ex_stall_grants;
    } else {
      return;
    }
  }

  if (any_running && !stalled) return;

  // Sleep-set injections for the step about to be chosen.
  const size_t step = g.ex_entries.size();
  if (step < g.ex_opts.sleep_add.size()) {
    for (uint32_t tok : g.ex_opts.sleep_add[step]) g.ex_sleep.insert(tok);
  }

  std::vector<uint32_t> candidates;
  for (const auto& [tok, th] : g.ex_threads) {
    if (th.state == ExploreThread::State::kWaiting && ExRunnableLocked(th)) {
      candidates.push_back(tok);
    }
  }
  if (candidates.empty()) {
    // No runnable pending op. Usually transient (threads mid-flight or
    // parked); if it persists with waiters present and nothing running,
    // the ownership model says we're deadlocked — disarm so the run can
    // finish natively rather than wedge the harness.
    bool any_waiting = false;
    for (const auto& [tok, th] : g.ex_threads) {
      if (th.state == ExploreThread::State::kWaiting) any_waiting = true;
    }
    if (stalled && !any_running && any_waiting) {
      g.ex_diverged = true;
      ++g.ex_stall_grants;
      g.exploring = false;
      g.cv.notify_all();
    }
    return;
  }
  std::sort(candidates.begin(), candidates.end());

  uint32_t chosen = kNoToken;
  if (g.ex_forced_cursor < g.ex_opts.forced.size()) {
    const uint32_t want = g.ex_opts.forced[g.ex_forced_cursor];
    if (std::find(candidates.begin(), candidates.end(), want) !=
        candidates.end()) {
      chosen = want;
      ++g.ex_forced_cursor;
    } else if (stalled) {
      // The forced thread never became runnable: the prefix no longer
      // matches this program. Report divergence and fall back to free
      // scheduling so the execution still completes.
      g.ex_diverged = true;
      g.ex_forced_cursor = g.ex_opts.forced.size();
      ++g.ex_stall_grants;
    } else {
      return;  // wait for the forced thread to arrive
    }
  }

  if (chosen == kNoToken) {
    std::vector<uint32_t> awake;
    for (uint32_t tok : candidates) {
      if (g.ex_sleep.count(tok) == 0) awake.push_back(tok);
    }
    std::vector<uint32_t>& pool = awake.empty() ? candidates : awake;
    if (awake.empty()) ++g.ex_sleep_forced;
    if (g.ex_preemptions_left >= 0) {
      // Bounded-preemption fallback: keep running the last thread unless
      // the budget allows a randomized switch (PCT-style).
      g.ex_rng = Mix(g.ex_rng);
      uint32_t pick = pool[g.ex_rng % pool.size()];
      const bool last_available =
          std::find(pool.begin(), pool.end(), g.ex_last_token) != pool.end();
      if (last_available && pick != g.ex_last_token) {
        if (g.ex_preemptions_left == 0) {
          pick = g.ex_last_token;
        } else {
          --g.ex_preemptions_left;
        }
      }
      chosen = pick;
    } else {
      chosen = pool.front();
    }
  }

  if (stalled && any_running) ++g.ex_stall_grants;

  ExploreThread& th = g.ex_threads[chosen];
  th.granted = true;
  th.grant_seq = ++g.ex_grant_seq;
  g.ex_grant_active = true;
  g.ex_grant_enabled = candidates;
  g.ex_grant_sleeping.assign(g.ex_sleep.begin(), g.ex_sleep.end());
  g.ex_progress = Clock::now();
  g.ex_last_token = chosen;
  g.cv.notify_all();
}

// Blocks until the serial scheduler grants this thread's pending op.
// Returns false if exploration stopped meanwhile (pass through).
bool ExRequestOp(OpKind kind, uint32_t uid) {
  Engine& g = g_engine;
  std::unique_lock<std::mutex> lk(g.mu);
  if (!g.exploring) return false;
  const uint32_t token = ExploreTokenLocked();
  ExploreThread& th = g.ex_threads[token];
  th.has_pending = true;
  th.pending_kind = kind;
  th.pending_obj = uid;
  th.state = ExploreThread::State::kWaiting;
  g.cv.notify_all();
  while (true) {
    if (!g.exploring || g.ex_hit_limit) {
      th.has_pending = false;
      th.state = ExploreThread::State::kRunning;
      return false;
    }
    if (th.granted) break;
    ExTryScheduleLocked();
    if (th.granted) break;
    g.cv.wait_for(lk, kCvPoll);
  }
  th.granted = false;
  th.state = ExploreThread::State::kRunning;
  return true;
}

void ExFinishOp(OpKind kind, uint32_t uid) {
  Engine& g = g_engine;
  std::lock_guard<std::mutex> lk(g.mu);
  if (!g.exploring) return;
  const uint32_t token = t_tls.token;
  auto it = g.ex_threads.find(token);
  if (it == g.ex_threads.end()) return;
  ExploreThread& th = it->second;
  th.has_pending = false;

  Ownership& own = g.ex_owner[uid];
  switch (kind) {
    case OpKind::kMutexLock:
      own.exclusive = token;
      break;
    case OpKind::kMutexUnlock:
      if (own.exclusive == token) own.exclusive = kNoToken;
      break;
    case OpKind::kMutexLockShared:
      own.shared.insert(token);
      break;
    case OpKind::kMutexUnlockShared:
      own.shared.erase(token);
      break;
    default:
      break;
  }

  ExploreStep step;
  step.entry = TraceEntry{token, kind, uid};
  step.enabled = std::move(g.ex_grant_enabled);
  step.sleeping = std::move(g.ex_grant_sleeping);
  g.ex_grant_enabled.clear();
  g.ex_grant_sleeping.clear();
  g.ex_entries.push_back(step.entry);
  g.ex_steps.push_back(std::move(step));

  // Sleep-set maintenance: executing an operation wakes every sleeper
  // whose pending operation conflicts with it.
  for (auto sit = g.ex_sleep.begin(); sit != g.ex_sleep.end();) {
    const auto tit = g.ex_threads.find(*sit);
    const bool conflicts =
        tit != g.ex_threads.end() && tit->second.has_pending &&
        tit->second.pending_obj == uid &&
        OpsConflict(kind, tit->second.pending_kind);
    if (conflicts) {
      sit = g.ex_sleep.erase(sit);
    } else {
      ++sit;
    }
  }

  if (th.grant_seq == g.ex_grant_seq) g.ex_grant_active = false;
  g.ex_progress = Clock::now();
  g.cv.notify_all();
}

void ExSetThreadState(ExploreThread::State state, bool register_thread) {
  Engine& g = g_engine;
  std::lock_guard<std::mutex> lk(g.mu);
  if (!g.exploring) return;
  if (register_thread) ExploreTokenLocked();
  auto it = g.ex_threads.find(t_tls.token);
  if (it == g.ex_threads.end() ||
      g.run_id.load(std::memory_order_relaxed) != t_tls.run) {
    return;
  }
  it->second.state = state;
  g.ex_progress = Clock::now();
  g.cv.notify_all();
}

}  // namespace

// ---------------------------------------------------------------------------
// Mode control.

Mode CurrentMode() {
  return static_cast<Mode>(g_engine.mode.load(std::memory_order_acquire));
}

void Enable(uint64_t seed) {
  Engine& g = g_engine;
  g.seed.store(seed, std::memory_order_relaxed);
  g.next_thread_token.store(0, std::memory_order_relaxed);
  g.points.store(0, std::memory_order_relaxed);
  g.perturbations.store(0, std::memory_order_relaxed);
  g.epoch.fetch_add(1, std::memory_order_relaxed);
  g.mode.store(static_cast<uint8_t>(Mode::kFuzz), std::memory_order_release);
}

void Disable() {
  g_engine.mode.store(static_cast<uint8_t>(Mode::kOff),
                      std::memory_order_release);
  std::lock_guard<std::mutex> lk(g_engine.mu);
  g_engine.cv.notify_all();
}

bool IsEnabled() { return CurrentMode() != Mode::kOff; }

uint64_t CurrentSeed() {
  return g_engine.seed.load(std::memory_order_relaxed);
}

uint64_t PointCount() {
  return g_engine.points.load(std::memory_order_relaxed);
}

uint64_t PerturbationCount() {
  return g_engine.perturbations.load(std::memory_order_relaxed);
}

void Point(const char* site_name) {
  const uint8_t m = g_engine.mode.load(std::memory_order_acquire);
  if (m == 0) return;
  if (FuzzLayerActive(m)) Perturb(site_name);
}

// ---------------------------------------------------------------------------
// Identity.

void BindThreadName(const std::string& name) { t_tls.name = name; }

std::string CurrentThreadName() { return t_tls.name; }

ThreadGuard::ThreadGuard(const std::string& name) {
  BindThreadName(name);
  if (CurrentMode() == Mode::kExplore) {
    ExSetThreadState(ExploreThread::State::kRunning, /*register_thread=*/true);
  }
}

ThreadGuard::~ThreadGuard() {
  const Mode m = CurrentMode();
  if (m == Mode::kExplore) {
    ExSetThreadState(ExploreThread::State::kDone, /*register_thread=*/false);
  } else if (m == Mode::kReplay) {
    ReplayMarkExited();
  }
}

uint32_t RegisterObject(const char* label) {
  Engine& g = g_engine;
  std::lock_guard<std::mutex> lk(g.mu);
  const std::string thread = t_tls.name.empty() ? "main" : t_tls.name;
  const uint32_t ordinal = g.birth_counters[{label, thread}]++;
  const uint32_t uid = static_cast<uint32_t>(g.objects.size());
  g.objects.push_back(ObjectInfo{label, thread, ordinal});
  return uid;
}

void ResetIdentities() {
  Engine& g = g_engine;
  std::lock_guard<std::mutex> lk(g.mu);
  if (t_tls.name.empty()) t_tls.name = "main";
  g.objects.clear();
  g.objects.push_back(ObjectInfo{"<anon>", "", 0});
  g.birth_counters.clear();
  g.cv_gens.clear();
}

// ---------------------------------------------------------------------------
// OpScope.

OpScope::OpScope(OpKind kind, uint32_t object_uid) {
  const uint8_t m = g_engine.mode.load(std::memory_order_acquire);
  if (m == 0) return;
  kind_ = kind;
  object_ = object_uid;
  if (FuzzLayerActive(m)) Perturb(OpKindName(kind));
  switch (static_cast<Mode>(m)) {
    case Mode::kOff:
    case Mode::kFuzz:
      break;
    case Mode::kRecord:
      if (AcquireLike(kind)) {
        armed_ = m;  // record from the destructor, post-completion
      } else {
        RecordEntry(kind, object_uid);
      }
      break;
    case Mode::kReplay:
      if (AcquireLike(kind)) {
        if (ReplayGate(kind, object_uid, /*consume=*/false)) armed_ = m;
      } else {
        (void)ReplayGate(kind, object_uid, /*consume=*/true);
      }
      break;
    case Mode::kExplore:
      if (ExRequestOp(kind, object_uid)) armed_ = m;
      break;
  }
}

OpScope::~OpScope() {
  if (armed_ == 0) return;
  switch (static_cast<Mode>(armed_)) {
    case Mode::kRecord:
      RecordEntry(kind_, object_);
      break;
    case Mode::kReplay:
      ReplayFinishAcquire(kind_, object_);
      break;
    case Mode::kExplore:
      ExFinishOp(kind_, object_);
      break;
    default:
      break;
  }
}

ScopedBlocked::ScopedBlocked() {
  if (CurrentMode() != Mode::kExplore) return;
  armed_ = true;
  ExSetThreadState(ExploreThread::State::kBlocked, /*register_thread=*/true);
}

ScopedBlocked::~ScopedBlocked() {
  if (!armed_) return;
  if (CurrentMode() != Mode::kExplore) return;
  ExSetThreadState(ExploreThread::State::kRunning, /*register_thread=*/false);
}

// ---------------------------------------------------------------------------
// Condvar redirection.

bool CvRedirectArmed() {
  const Mode m = CurrentMode();
  return m == Mode::kRecord || m == Mode::kReplay || m == Mode::kExplore;
}

uint64_t CvGeneration(const void* cv) {
  Engine& g = g_engine;
  std::lock_guard<std::mutex> lk(g.mu);
  return g.cv_gens[cv];
}

void CvNotify(const void* cv) {
  Engine& g = g_engine;
  std::lock_guard<std::mutex> lk(g.mu);
  ++g.cv_gens[cv];
  g.cv.notify_all();
}

bool CvPark(const void* cv, uint64_t start_gen,
            std::chrono::steady_clock::time_point deadline) {
  Engine& g = g_engine;
  std::unique_lock<std::mutex> lk(g.mu);
  // A parked thread must not count against explore-mode quiescence.
  const bool exploring = g.exploring;
  ExploreThread* th = nullptr;
  ExploreThread::State saved = ExploreThread::State::kRunning;
  if (exploring) {
    ExploreTokenLocked();
    auto it = g.ex_threads.find(t_tls.token);
    if (it != g.ex_threads.end()) {
      th = &it->second;
      saved = th->state;
      th->state = ExploreThread::State::kBlocked;
      g.ex_progress = Clock::now();
      g.cv.notify_all();
    }
  }
  bool changed = false;
  while (true) {
    if (!CvRedirectArmed()) {
      changed = true;  // mode flipped: let the caller recheck its predicate
      break;
    }
    if (g.cv_gens[cv] != start_gen) {
      changed = true;
      break;
    }
    const auto now = Clock::now();
    if (now >= deadline) break;
    const auto wait = std::min<Clock::duration>(kCvPoll, deadline - now);
    g.cv.wait_for(lk, wait);
  }
  if (th != nullptr && g.exploring) {
    th->state = saved;
    g.ex_progress = Clock::now();
    g.cv.notify_all();
  }
  return changed;
}

// ---------------------------------------------------------------------------
// Record / replay control.

void StartRecord(uint64_t seed, bool fuzz_layer) {
  Engine& g = g_engine;
  {
    std::lock_guard<std::mutex> lk(g.mu);
    if (t_tls.name.empty()) t_tls.name = "main";
    g.recording = true;
    g.rec_entries.clear();
    g.rec_threads.clear();
    g.run_id.fetch_add(1, std::memory_order_relaxed);
  }
  g.seed.store(seed, std::memory_order_relaxed);
  g.fuzz_layer.store(fuzz_layer, std::memory_order_relaxed);
  g.next_thread_token.store(0, std::memory_order_relaxed);
  g.points.store(0, std::memory_order_relaxed);
  g.perturbations.store(0, std::memory_order_relaxed);
  g.epoch.fetch_add(1, std::memory_order_relaxed);
  g.mode.store(static_cast<uint8_t>(Mode::kRecord), std::memory_order_release);
}

Trace StopRecord() {
  Engine& g = g_engine;
  g.mode.store(static_cast<uint8_t>(Mode::kOff), std::memory_order_release);
  std::lock_guard<std::mutex> lk(g.mu);
  g.recording = false;
  g.run_id.fetch_add(1, std::memory_order_relaxed);

  Trace trace;
  trace.seed = g.seed.load(std::memory_order_relaxed);
  trace.threads = g.rec_threads;
  // Remap engine uids to a dense object table, ordered by first use.
  std::map<uint32_t, uint32_t> uid2dense;
  for (const TraceEntry& e : g.rec_entries) {
    auto [it, inserted] =
        uid2dense.emplace(e.object, static_cast<uint32_t>(trace.objects.size()));
    if (inserted) {
      const ObjectInfo& o = g.objects[e.object];
      trace.objects.push_back(TraceObject{o.label, o.birth_thread, o.birth_index});
    }
    trace.entries.push_back(TraceEntry{e.thread, e.kind, it->second});
  }
  g.rec_entries.clear();
  g.rec_threads.clear();
  g.cv.notify_all();
  return trace;
}

void StartReplay(const Trace& trace) {
  Engine& g = g_engine;
  std::lock_guard<std::mutex> lk(g.mu);
  if (t_tls.name.empty()) t_tls.name = "main";
  g.replaying = true;
  g.replay_disarmed = false;
  g.replay_trace = trace;
  g.replay_objects.assign(trace.objects.size(), ReplayObject{});
  g.replay_keys.clear();
  for (size_t i = 0; i < trace.objects.size(); ++i) {
    g.replay_keys.emplace(trace.objects[i].Key(), static_cast<uint32_t>(i));
  }
  for (size_t i = 0; i < trace.entries.size(); ++i) {
    g.replay_objects[trace.entries[i].object].queue.push_back(
        static_cast<uint32_t>(i));
  }
  g.replay_uid2obj.clear();
  g.replay_thread_claimed.assign(trace.threads.size(), false);
  g.replay_thread_exited.assign(trace.threads.size(), false);
  g.replay_consumed = 0;
  g.replay_unmatched = 0;
  g.replay_skipped_exited = 0;
  g.replay_divergences.clear();
  g.run_id.fetch_add(1, std::memory_order_relaxed);
  g.seed.store(trace.seed, std::memory_order_relaxed);
  g.fuzz_layer.store(false, std::memory_order_relaxed);
  g.mode.store(static_cast<uint8_t>(Mode::kReplay), std::memory_order_release);
}

ReplayResult StopReplay() {
  Engine& g = g_engine;
  g.mode.store(static_cast<uint8_t>(Mode::kOff), std::memory_order_release);
  std::lock_guard<std::mutex> lk(g.mu);
  // Shed trailing entries of threads that deregistered without performing
  // them (no gate was waiting behind these, so nobody skipped them live).
  // Only head runs are shed: an exited thread's entry queued behind a live
  // thread's unperformed op is still a real divergence.
  for (ReplayObject& ro : g.replay_objects) {
    while (ro.cursor < ro.queue.size()) {
      const TraceEntry& head = g.replay_trace.entries[ro.queue[ro.cursor]];
      if (head.thread >= g.replay_thread_exited.size() ||
          !g.replay_thread_exited[head.thread]) {
        break;
      }
      ++ro.cursor;
      ++g.replay_consumed;
      ++g.replay_skipped_exited;
    }
  }
  ReplayResult result;
  result.consumed = g.replay_consumed;
  result.total = g.replay_trace.entries.size();
  result.unmatched_ops = g.replay_unmatched;
  result.skipped_exited = g.replay_skipped_exited;
  result.divergences = g.replay_divergences;
  result.clean = !g.replay_disarmed && result.divergences.empty() &&
                 result.consumed == result.total;
  if (!g.replay_disarmed && result.consumed != result.total &&
      result.divergences.empty()) {
    result.divergences.push_back(
        "trace not fully consumed: " + std::to_string(result.consumed) + "/" +
        std::to_string(result.total) + " entries");
  }
  g.replaying = false;
  g.replay_disarmed = false;
  g.replay_trace = Trace{};
  g.replay_objects.clear();
  g.replay_keys.clear();
  g.replay_uid2obj.clear();
  g.replay_thread_claimed.clear();
  g.replay_thread_exited.clear();
  g.replay_skipped_exited = 0;
  g.run_id.fetch_add(1, std::memory_order_relaxed);
  g.cv.notify_all();
  return result;
}

std::string ReplayResult::ToString() const {
  std::ostringstream os;
  os << (clean ? "clean" : "DIVERGED") << " (" << consumed << "/" << total
     << " entries";
  if (unmatched_ops > 0) os << ", " << unmatched_ops << " unmatched ops";
  if (skipped_exited > 0) {
    os << ", " << skipped_exited << " shed for exited threads";
  }
  os << ")";
  for (const std::string& d : divergences) os << "; " << d;
  return os.str();
}

// ---------------------------------------------------------------------------
// Explore control.

void StartExplore(const ExploreOptions& options) {
  Engine& g = g_engine;
  std::lock_guard<std::mutex> lk(g.mu);
  if (t_tls.name.empty()) t_tls.name = "main";
  g.exploring = true;
  g.ex_opts = options;
  if (options.fresh_session) g.ex_name_tokens.clear();
  g.ex_name_instances.clear();
  g.ex_threads.clear();
  g.ex_owner.clear();
  g.ex_entries.clear();
  g.ex_steps.clear();
  g.ex_sleep.clear();
  g.ex_forced_cursor = 0;
  g.ex_grant_active = false;
  g.ex_grant_enabled.clear();
  g.ex_grant_sleeping.clear();
  g.ex_progress = Clock::now();
  g.ex_rng = Mix(options.seed ^ 0xd1b54a32d192ed03ULL);
  g.ex_preemptions_left = options.preemption_bound;
  g.ex_last_token = kNoToken;
  g.ex_stall_grants = 0;
  g.ex_sleep_forced = 0;
  g.ex_diverged = false;
  g.ex_hit_limit = false;
  g.ex_await_done = options.await_threads == 0;
  g.run_id.fetch_add(1, std::memory_order_relaxed);
  g.fuzz_layer.store(false, std::memory_order_relaxed);
  g.mode.store(static_cast<uint8_t>(Mode::kExplore), std::memory_order_release);
}

ExploreRun StopExplore() {
  Engine& g = g_engine;
  g.mode.store(static_cast<uint8_t>(Mode::kOff), std::memory_order_release);
  std::lock_guard<std::mutex> lk(g.mu);
  ExploreRun run;
  run.forced_consumed = g.ex_forced_cursor;
  run.diverged = g.ex_diverged;
  run.stall_grants = g.ex_stall_grants;
  run.sleep_forced = g.ex_sleep_forced;
  run.hit_step_limit = g.ex_hit_limit;
  run.steps = std::move(g.ex_steps);

  // Token -> name table (tokens are session-stable and may be sparse in
  // this execution).
  uint32_t max_token = 0;
  for (const auto& [name, tok] : g.ex_name_tokens) {
    max_token = std::max(max_token, tok);
  }
  run.trace.seed = g.ex_opts.seed;
  run.trace.threads.assign(g.ex_name_tokens.empty() ? 0 : max_token + 1, "?");
  for (const auto& [name, tok] : g.ex_name_tokens) {
    run.trace.threads[tok] = name;
  }
  std::map<uint32_t, uint32_t> uid2dense;
  for (const TraceEntry& e : g.ex_entries) {
    auto [it, inserted] = uid2dense.emplace(
        e.object, static_cast<uint32_t>(run.trace.objects.size()));
    if (inserted) {
      const ObjectInfo& o =
          e.object < g.objects.size() ? g.objects[e.object] : ObjectInfo{};
      run.trace.objects.push_back(
          TraceObject{o.label, o.birth_thread, o.birth_index});
    }
    run.trace.entries.push_back(TraceEntry{e.thread, e.kind, it->second});
  }
  for (ExploreStep& s : run.steps) {
    auto it = uid2dense.find(s.entry.object);
    if (it != uid2dense.end()) s.entry.object = it->second;
  }

  g.exploring = false;
  g.ex_threads.clear();
  g.ex_owner.clear();
  g.ex_entries.clear();
  g.ex_steps.clear();
  g.ex_sleep.clear();
  g.run_id.fetch_add(1, std::memory_order_relaxed);
  g.cv.notify_all();
  return run;
}

uint32_t ExploreTokenForName(const std::string& name) {
  Engine& g = g_engine;
  std::lock_guard<std::mutex> lk(g.mu);
  auto it = g.ex_name_tokens.find(name);
  if (it != g.ex_name_tokens.end()) return it->second;
  const uint32_t token = static_cast<uint32_t>(g.ex_name_tokens.size());
  g.ex_name_tokens.emplace(name, token);
  return token;
}

}  // namespace dynamast::sched
