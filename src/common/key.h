#ifndef DYNAMAST_COMMON_KEY_H_
#define DYNAMAST_COMMON_KEY_H_

#include <cstdint>
#include <functional>
#include <string>

namespace dynamast {

/// Identifies a relation (table) in the database. Tables are registered with
/// the storage engine at load time; workloads define their own table ids.
using TableId = uint32_t;

/// Identifies a site (node) in the replicated system; sites are numbered
/// 0 .. m-1 and the value doubles as the index into version vectors.
using SiteId = uint32_t;
inline constexpr SiteId kInvalidSite = UINT32_MAX;

/// Identifies a client session (for strong-session snapshot isolation).
using ClientId = uint64_t;

/// A partition is the unit of mastership tracking and remastering
/// (Section V-B: the site selector groups data items into partitions and
/// remasters partition groups). Partition ids are dense per deployment.
using PartitionId = uint64_t;
inline constexpr PartitionId kInvalidPartition = UINT64_MAX;

/// A globally unique row identifier: (table, row key). Workloads encode
/// composite primary keys (e.g. TPC-C (w_id, d_id, o_id)) into the 64-bit
/// row key via the helpers in workloads/.
struct RecordKey {
  TableId table = 0;
  uint64_t row = 0;

  friend bool operator==(const RecordKey& a, const RecordKey& b) {
    return a.table == b.table && a.row == b.row;
  }
  friend bool operator!=(const RecordKey& a, const RecordKey& b) {
    return !(a == b);
  }
  friend bool operator<(const RecordKey& a, const RecordKey& b) {
    if (a.table != b.table) return a.table < b.table;
    return a.row < b.row;
  }

  std::string ToString() const {
    return std::to_string(table) + ":" + std::to_string(row);
  }
};

struct RecordKeyHash {
  size_t operator()(const RecordKey& k) const {
    // splitmix64-style mix of the two components.
    uint64_t x = (static_cast<uint64_t>(k.table) << 48) ^ k.row;
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<size_t>(x ^ (x >> 31));
  }
};

}  // namespace dynamast

namespace std {
template <>
struct hash<dynamast::RecordKey> {
  size_t operator()(const dynamast::RecordKey& k) const {
    return dynamast::RecordKeyHash()(k);
  }
};
}  // namespace std

#endif  // DYNAMAST_COMMON_KEY_H_
