#ifndef DYNAMAST_COMMON_VERSION_VECTOR_H_
#define DYNAMAST_COMMON_VERSION_VECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dynamast {

/// A VersionVector is an m-dimensional vector of update counters, one entry
/// per site, used throughout the dynamic mastering protocol (Section III-A
/// of the paper):
///
///  * site version vectors (svv):  svv[i] at site i counts local update
///    commits; svv[j] counts refresh transactions applied from site j;
///  * transaction version vectors (tvv): a transaction's begin snapshot and
///    commit timestamp;
///  * client session vectors (cvv): the freshest state a client observed,
///    used to enforce strong-session snapshot isolation.
///
/// All operations are value-semantic; concurrency control is the caller's
/// responsibility (SiteManager guards its svv with a mutex).
class VersionVector {
 public:
  VersionVector() = default;
  /// Zero vector of `num_sites` dimensions.
  explicit VersionVector(size_t num_sites) : v_(num_sites, 0) {}
  explicit VersionVector(std::vector<uint64_t> values) : v_(std::move(values)) {}

  size_t size() const { return v_.size(); }
  bool empty() const { return v_.empty(); }

  uint64_t operator[](size_t i) const { return v_[i]; }
  uint64_t& operator[](size_t i) { return v_[i]; }

  /// True iff this[k] >= other[k] for every dimension. An empty `other`
  /// (an unconstrained session) is dominated by everything.
  bool DominatesOrEquals(const VersionVector& other) const;

  /// Folds `other` in element-wise: this[k] = max(this[k], other[k]).
  /// Growing the vector if `other` has more dimensions.
  void MaxWith(const VersionVector& other);

  /// Returns the element-wise max of `a` and `b`.
  static VersionVector ElementwiseMax(const VersionVector& a,
                                      const VersionVector& b);

  /// L1 distance of the positive part: sum over k of
  /// max(0, other[k] - this[k]). This is the "number of missing updates"
  /// count used by the refresh-delay estimate (Eq. 5).
  uint64_t MissingUpdates(const VersionVector& target) const;

  /// Sum of all entries (total updates represented by this vector).
  uint64_t Total() const;

  bool operator==(const VersionVector& other) const { return v_ == other.v_; }
  bool operator!=(const VersionVector& other) const { return v_ != other.v_; }

  const std::vector<uint64_t>& values() const { return v_; }

  /// Renders e.g. "[1, 0, 2]".
  std::string ToString() const;

 private:
  std::vector<uint64_t> v_;
};

}  // namespace dynamast

#endif  // DYNAMAST_COMMON_VERSION_VECTOR_H_
