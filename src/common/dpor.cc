#include "common/dpor.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace dynamast::sched {
namespace {

// Sparse vector clock over explore-session thread tokens.
using VClock = std::map<uint32_t, uint64_t>;

void Join(VClock& into, const VClock& from) {
  for (const auto& [tok, v] : from) {
    uint64_t& slot = into[tok];
    slot = std::max(slot, v);
  }
}

bool Contains(const std::vector<uint32_t>& v, uint32_t x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

struct LastAccess {
  size_t step = 0;
  uint32_t thread = 0;
  OpKind kind = OpKind::kMarker;
  VClock clock;
};

}  // namespace

void DporExplorer::AddBacktrack(Frame& frame, uint32_t q, DporStats& stats) {
  if (Contains(frame.done, q) || Contains(frame.backtrack, q)) return;
  if (Contains(frame.enabled, q)) {
    frame.backtrack.push_back(q);
    ++stats.backtrack_points;
    return;
  }
  // q was not enabled at this point: conservatively schedule every other
  // enabled thread (the standard fallback when the racing thread cannot
  // be run here directly).
  bool added = false;
  for (uint32_t t : frame.enabled) {
    if (t == frame.chosen) continue;
    if (Contains(frame.done, t) || Contains(frame.backtrack, t)) continue;
    frame.backtrack.push_back(t);
    added = true;
  }
  if (added) ++stats.backtrack_points;
}

DporStats DporExplorer::Run(const std::function<DporOutcome()>& execution) {
  DporStats stats;
  std::vector<Frame> frames;

  auto finalize_frame = [&stats](const Frame& f) {
    // Enabled alternatives never executed at a finalized choice point are
    // the schedules partial-order reduction proved unnecessary.
    if (f.enabled.size() > f.done.size()) {
      stats.pruned += f.enabled.size() - f.done.size();
    }
  };

  std::vector<uint32_t> forced;
  std::vector<std::vector<uint32_t>> sleep_add;
  bool first = true;

  while (true) {
    if (stats.executed >= options_.max_executions) {
      stats.budget_exhausted = true;
      break;
    }

    ExploreOptions opts;
    opts.forced = forced;
    opts.sleep_add = sleep_add;
    opts.seed = options_.seed + stats.executed;
    opts.preemption_bound = options_.preemption_bound;
    opts.max_steps = options_.max_steps;
    opts.await_threads = options_.await_threads;
    opts.fresh_session = first;
    first = false;

    StartExplore(opts);
    DporOutcome outcome = execution();
    ExploreRun run = StopExplore();

    ++stats.executed;
    stats.stall_grants += run.stall_grants;
    if (run.hit_step_limit) stats.budget_exhausted = true;
    if (run.diverged || run.forced_consumed < forced.size()) {
      ++stats.divergences;
    }

    if (outcome.failed) {
      stats.failure_found = true;
      stats.failure = outcome.note;
      stats.failure_trace = run.trace;
      if (options_.stop_on_failure) break;
    }

    // Fold this execution into the persistent frame stack. The first
    // forced_consumed steps re-traversed existing frames; everything
    // after is new.
    const std::vector<ExploreStep>& steps = run.steps;
    for (size_t i = 0; i < steps.size(); ++i) {
      const uint32_t chosen = steps[i].entry.thread;
      if (i < frames.size()) {
        if (!Contains(frames[i].done, chosen)) frames[i].done.push_back(chosen);
        frames[i].chosen = chosen;
        // Keep the union of enabled sets seen at this depth: a thread
        // enabled in any visit is a real alternative here.
        for (uint32_t t : steps[i].enabled) {
          if (!Contains(frames[i].enabled, t)) frames[i].enabled.push_back(t);
        }
      } else {
        Frame f;
        f.enabled = steps[i].enabled;
        f.chosen = chosen;
        f.done.push_back(chosen);
        frames.push_back(std::move(f));
      }
    }

    // Happens-before analysis: vector clocks per thread; racing pairs
    // insert backtracking points.
    std::map<uint32_t, VClock> clocks;
    std::map<uint32_t, std::vector<LastAccess>> last;  // object -> accesses
    for (size_t i = 0; i < steps.size(); ++i) {
      const TraceEntry& e = steps[i].entry;
      VClock& mine = clocks[e.thread];
      auto& accesses = last[e.object];
      for (const LastAccess& a : accesses) {
        if (a.thread == e.thread) continue;
        if (!OpsConflict(a.kind, e.kind)) continue;
        // Race check uses this thread's clock *before* joining the
        // object-induced edge: if the prior access is not already ordered
        // before us through other objects or program order, the pair
        // races and the earlier choice point gets a backtrack entry.
        auto it = mine.find(a.thread);
        const uint64_t seen = it == mine.end() ? 0 : it->second;
        if (a.clock.at(a.thread) > seen && a.step < frames.size()) {
          AddBacktrack(frames[a.step], e.thread, stats);
        }
      }
      // Apply the edges this operation creates.
      mine[e.thread] += 1;
      for (const LastAccess& a : accesses) {
        if (OpsConflict(a.kind, e.kind)) Join(mine, a.clock);
      }
      // Keep only the latest access per (thread, kind) pair per object:
      // older ones are ordered before it and subsumed for race purposes.
      accesses.erase(std::remove_if(accesses.begin(), accesses.end(),
                                    [&](const LastAccess& a) {
                                      return a.thread == e.thread &&
                                             a.kind == e.kind;
                                    }),
                     accesses.end());
      accesses.push_back(LastAccess{i, e.thread, e.kind, mine});
    }

    // Next branch: deepest frame with an untried backtrack alternative.
    size_t depth = frames.size();
    uint32_t next_choice = 0;
    bool found = false;
    while (depth > 0) {
      Frame& f = frames[depth - 1];
      for (uint32_t q : f.backtrack) {
        if (!Contains(f.done, q)) {
          next_choice = q;
          found = true;
          break;
        }
      }
      if (found) break;
      --depth;
    }
    if (!found) break;  // branch tree exhausted

    const size_t d = depth - 1;
    for (size_t i = d + 1; i < frames.size(); ++i) finalize_frame(frames[i]);
    frames.resize(d + 1);

    forced.clear();
    sleep_add.assign(d + 1, {});
    for (size_t i = 0; i < d; ++i) {
      forced.push_back(frames[i].chosen);
      // Sleep-set DPOR: alternatives already fully explored at earlier
      // choice points sleep while we pass through them again.
      for (uint32_t t : frames[i].done) {
        if (t != frames[i].chosen) sleep_add[i].push_back(t);
      }
    }
    forced.push_back(next_choice);
    for (uint32_t t : frames[d].done) sleep_add[d].push_back(t);
    frames[d].done.push_back(next_choice);
    frames[d].chosen = next_choice;
  }

  for (const Frame& f : frames) finalize_frame(f);
  return stats;
}

std::string DporStats::ToString() const {
  std::ostringstream os;
  os << "executed=" << executed << " pruned=" << pruned
     << " backtrack_points=" << backtrack_points
     << " divergences=" << divergences << " stall_grants=" << stall_grants
     << " budget_exhausted=" << (budget_exhausted ? 1 : 0)
     << " failure=" << (failure_found ? 1 : 0);
  if (failure_found && !failure.empty()) os << " (" << failure << ")";
  return os.str();
}

Trace MinimizeTracePrefix(const Trace& trace,
                          const std::function<bool(const Trace&)>& fails) {
  auto prefix = [&trace](size_t n) {
    Trace t = trace;
    if (n < t.entries.size()) t.entries.resize(n);
    return t;
  };
  if (!fails(trace)) return trace;  // flaky tail: keep the full trace

  size_t lo = 0;                     // longest known-good length
  size_t hi = trace.entries.size();  // shortest known-failing length
  while (lo + 1 < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (fails(prefix(mid))) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  Trace minimized = prefix(hi);
  if (!fails(minimized)) return trace;  // re-confirm; fall back if flaky
  return minimized;
}

}  // namespace dynamast::sched
