#ifndef DYNAMAST_COMMON_INVARIANT_CHECKER_H_
#define DYNAMAST_COMMON_INVARIANT_CHECKER_H_

#include <string>

namespace dynamast {

/// Runtime checking of the paper's safety properties (see DESIGN.md,
/// "Correctness tooling"). The reporting machinery is always compiled so
/// tests can exercise it in any build; the hot-path assertions sprinkled
/// through site_manager / site_selector / dynamast_system are compiled in
/// only when the build is configured with -DDYNAMAST_INVARIANTS=ON:
///
///  * mastership uniqueness — at most one site masters a partition at any
///    instant, exactly one when no transfer is in flight (site/invariants.h
///    holds the cluster-wide scans);
///  * version-vector monotonicity — a site's svv advances one local commit
///    at a time and never regresses on refresh application (Eq. 1);
///  * snapshot validity — a transaction's begin snapshot dominates the
///    session vector and any remastering grant vector it was routed with
///    (strong-session SI).
namespace invariants {

/// Prints "invariant violated" with the expression, location and message
/// to stderr, then aborts. Never returns.
[[noreturn]] void Failure(const char* file, int line, const char* expr,
                          const std::string& message);

/// If set, invariant failures call this instead of aborting (unit tests).
/// Pass nullptr to restore the default abort behaviour. Not thread-safe
/// with concurrent failures; tests install it before spawning threads.
using FailureHandler = void (*)(const char* report);
void SetFailureHandlerForTest(FailureHandler handler);

}  // namespace invariants
}  // namespace dynamast

#if defined(DYNAMAST_INVARIANTS) && DYNAMAST_INVARIANTS
#define DYNAMAST_INVARIANTS_ENABLED 1
/// Evaluates `cond`; on failure reports expression + `msg` and aborts.
/// Compiles to nothing (cond unevaluated) when invariants are off.
#define DYNAMAST_INVARIANT(cond, msg)                                \
  ((cond) ? (void)0                                                  \
          : ::dynamast::invariants::Failure(__FILE__, __LINE__, #cond, (msg)))
#else
#define DYNAMAST_INVARIANTS_ENABLED 0
#define DYNAMAST_INVARIANT(cond, msg) ((void)0)
#endif

#endif  // DYNAMAST_COMMON_INVARIANT_CHECKER_H_
