#ifndef DYNAMAST_LOG_DURABLE_LOG_H_
#define DYNAMAST_LOG_DURABLE_LOG_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/debug_mutex.h"
#include "common/metrics.h"
#include "common/status.h"

namespace dynamast::log {

/// DurableLog is an ordered, append-only topic — this repo's stand-in for
/// one Kafka partition (the paper creates one Kafka log per site; see
/// DESIGN.md). It provides exactly the two properties DynaMast relies on:
///
///  1. per-topic total order: records are delivered to every subscriber in
///     exactly the order they were appended (the replication manager's
///     per-origin FIFO requirement, Appendix A condition 3);
///  2. replayability: records are retained so a recovering site can rewind
///     a cursor to any offset and re-apply the redo log (Section V-C).
///
/// Entries are stored as serialized byte strings; consumers deserialize via
/// LogRecord::Deserialize, so a corrupted entry is detected at read time.
class DurableLog {
 public:
  DurableLog() = default;

  DurableLog(const DurableLog&) = delete;
  DurableLog& operator=(const DurableLog&) = delete;

  /// Appends a record and returns its offset (0-based, dense).
  DYNAMAST_BLOCKING uint64_t Append(std::string serialized)
      DYNAMAST_EXCLUDES(mu_);

  /// Number of records appended so far.
  uint64_t Size() const DYNAMAST_EXCLUDES(mu_);

  /// Reads the record at `offset`, blocking until it exists or `deadline`
  /// passes (TimedOut), or the log is closed (Unavailable) with no record
  /// at that offset.
  DYNAMAST_BLOCKING Status Read(
      uint64_t offset, std::string* out,
      std::chrono::steady_clock::time_point deadline) const
      DYNAMAST_EXCLUDES(mu_);

  /// Non-blocking read; NotFound if the offset has not been written.
  Status TryRead(uint64_t offset, std::string* out) const
      DYNAMAST_EXCLUDES(mu_);

  /// Wakes all blocked readers and makes subsequent blocking reads past the
  /// end return Unavailable. Used for orderly shutdown.
  void Close() DYNAMAST_EXCLUDES(mu_);

  bool closed() const DYNAMAST_EXCLUDES(mu_);

  /// Optional append-latency histogram (lock wait + append). Set once at
  /// cluster construction, before concurrent appends.
  void SetAppendLatency(metrics::Histogram* histogram) {
    append_latency_.store(histogram, std::memory_order_release);
  }

  /// Crash injection for recovery tests: after `countdown` reaches zero
  /// (shared across the topics of one LogManager), Append silently drops
  /// the record — modeling writes that never reached the durable log
  /// before the site crashed. Readers see nothing; the returned offset is
  /// a plausible lie, exactly like an acknowledged-but-lost write.
  void SetCrashCountdown(std::shared_ptr<std::atomic<int64_t>> countdown)
      DYNAMAST_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    crash_countdown_ = std::move(countdown);
  }

 private:
  mutable DebugMutex mu_{"log.topic"};
  mutable DebugCondVar cv_;
  std::vector<std::string> entries_ DYNAMAST_GUARDED_BY(mu_);
  bool closed_ DYNAMAST_GUARDED_BY(mu_) = false;
  std::atomic<metrics::Histogram*> append_latency_{nullptr};
  std::shared_ptr<std::atomic<int64_t>> crash_countdown_
      DYNAMAST_GUARDED_BY(mu_);
  // Scheduler identity of this topic's append decision stream.
  uint32_t sched_uid_ = DYNAMAST_SCHED_REGISTER("log.append");
};

/// A consumer cursor over a DurableLog: tracks the next offset to read.
/// Each (applier, origin) pair owns one cursor, mirroring Kafka consumer
/// offsets.
class LogCursor {
 public:
  explicit LogCursor(const DurableLog* log) : log_(log) {}

  /// Blocking next-record read; advances on success.
  Status Next(std::string* out,
              std::chrono::steady_clock::time_point deadline);

  /// Non-blocking; NotFound when caught up.
  Status TryNext(std::string* out);

  uint64_t offset() const { return offset_; }
  void SeekTo(uint64_t offset) { offset_ = offset; }

 private:
  const DurableLog* log_;
  uint64_t offset_ = 0;
};

/// LogManager owns one topic per site, the layout the paper uses ("distinct
/// Kafka logs for updates from each site", Appendix A).
class LogManager {
 public:
  explicit LogManager(size_t num_sites);

  DurableLog* TopicFor(uint32_t site) { return topics_[site].get(); }
  const DurableLog* TopicFor(uint32_t site) const {
    return topics_[site].get();
  }
  size_t num_sites() const { return topics_.size(); }

  void CloseAll();

  /// Total records across all topics (a stable crash-point coordinate for
  /// recovery sweeps: "crash after the k-th durable append").
  uint64_t TotalAppends() const;

  /// Arms crash injection: the next `appends` appends (across all topics)
  /// succeed, every later one is silently dropped. Passing a huge value
  /// effectively disarms.
  void ArmCrashAfterAppends(int64_t appends);

 private:
  std::vector<std::unique_ptr<DurableLog>> topics_;
};

}  // namespace dynamast::log

#endif  // DYNAMAST_LOG_DURABLE_LOG_H_
