#include "log/durable_log.h"

#include "common/latency_recorder.h"

namespace dynamast::log {

uint64_t DurableLog::Append(std::string serialized) {
  metrics::Histogram* latency =
      append_latency_.load(std::memory_order_acquire);
  Stopwatch watch;
  uint64_t offset;
  {
    MutexLock lock(mu_);
    if (crash_countdown_ != nullptr &&
        crash_countdown_->fetch_sub(1, std::memory_order_acq_rel) <= 0) {
      // Crash injection armed and exhausted: the write is lost. Report
      // the offset it would have had; nothing is delivered or notified.
      return entries_.size();
    }
    // Appends are ordering decisions (which commit reaches the topic
    // first): record/replay serialize them through the per-topic stream.
    DYNAMAST_SCHED_OP(kLogAppend, sched_uid_);
    entries_.push_back(std::move(serialized));
    offset = entries_.size() - 1;
    cv_.notify_all();
  }
  if (latency != nullptr) latency->Observe(watch.ElapsedMicros());
  return offset;
}

uint64_t DurableLog::Size() const {
  MutexLock lock(mu_);
  return entries_.size();
}

Status DurableLog::Read(uint64_t offset, std::string* out,
                        std::chrono::steady_clock::time_point deadline) const {
  MutexLock lock(mu_);
  while (offset >= entries_.size()) {
    if (closed_) return Status::Unavailable("log closed");
    if (cv_.wait_until(mu_, deadline) == std::cv_status::timeout &&
        offset >= entries_.size()) {
      return Status::TimedOut("log read deadline");
    }
  }
  *out = entries_[offset];
  return Status::OK();
}

Status DurableLog::TryRead(uint64_t offset, std::string* out) const {
  MutexLock lock(mu_);
  if (offset >= entries_.size()) return Status::NotFound("offset beyond end");
  *out = entries_[offset];
  return Status::OK();
}

void DurableLog::Close() {
  MutexLock lock(mu_);
  closed_ = true;
  cv_.notify_all();
}

bool DurableLog::closed() const {
  MutexLock lock(mu_);
  return closed_;
}

Status LogCursor::Next(std::string* out,
                       std::chrono::steady_clock::time_point deadline) {
  Status s = log_->Read(offset_, out, deadline);
  if (s.ok()) ++offset_;
  return s;
}

Status LogCursor::TryNext(std::string* out) {
  Status s = log_->TryRead(offset_, out);
  if (s.ok()) ++offset_;
  return s;
}

LogManager::LogManager(size_t num_sites) {
  topics_.reserve(num_sites);
  for (size_t i = 0; i < num_sites; ++i) {
    topics_.push_back(std::make_unique<DurableLog>());
  }
}

void LogManager::CloseAll() {
  for (auto& topic : topics_) topic->Close();
}

uint64_t LogManager::TotalAppends() const {
  uint64_t total = 0;
  for (const auto& topic : topics_) total += topic->Size();
  return total;
}

void LogManager::ArmCrashAfterAppends(int64_t appends) {
  auto countdown = std::make_shared<std::atomic<int64_t>>(appends);
  for (auto& topic : topics_) topic->SetCrashCountdown(countdown);
}

}  // namespace dynamast::log
