#include "log/log_record.h"

#include <cstring>

namespace dynamast::log {

namespace {

void PutU8(std::string* out, uint8_t v) { out->push_back(static_cast<char>(v)); }

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool GetU8(uint8_t* v) {
    if (pos_ + 1 > data_.size()) return false;
    *v = static_cast<uint8_t>(data_[pos_]);
    pos_ += 1;
    return true;
  }
  bool GetU32(uint32_t* v) {
    if (pos_ + 4 > data_.size()) return false;
    std::memcpy(v, data_.data() + pos_, 4);
    pos_ += 4;
    return true;
  }
  bool GetU64(uint64_t* v) {
    if (pos_ + 8 > data_.size()) return false;
    std::memcpy(v, data_.data() + pos_, 8);
    pos_ += 8;
    return true;
  }
  bool GetString(std::string* s) {
    uint32_t len;
    if (!GetU32(&len)) return false;
    if (pos_ + len > data_.size()) return false;
    s->assign(data_.data() + pos_, len);
    pos_ += len;
    return true;
  }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace

std::string LogRecord::Serialize() const {
  std::string out;
  out.reserve(SerializedSize());
  PutU8(&out, static_cast<uint8_t>(type));
  PutU32(&out, origin);
  PutU32(&out, static_cast<uint32_t>(tvv.size()));
  for (size_t k = 0; k < tvv.size(); ++k) PutU64(&out, tvv[k]);
  PutU32(&out, static_cast<uint32_t>(writes.size()));
  for (const WriteEntry& w : writes) {
    PutU32(&out, w.key.table);
    PutU64(&out, w.key.row);
    PutU8(&out, w.is_insert ? 1 : 0);
    PutString(&out, w.value);
  }
  PutU32(&out, static_cast<uint32_t>(partitions.size()));
  for (PartitionId p : partitions) PutU64(&out, p);
  PutU32(&out, transfer_peer);
  PutU64(&out, append_ts_us);
  return out;
}

Status LogRecord::Deserialize(std::string_view data, LogRecord* out) {
  Reader reader(data);
  uint8_t type_byte;
  if (!reader.GetU8(&type_byte) || type_byte > 2) {
    return Status::Corruption("bad log record type");
  }
  out->type = static_cast<Type>(type_byte);
  if (!reader.GetU32(&out->origin)) {
    return Status::Corruption("truncated origin");
  }
  uint32_t vv_size;
  if (!reader.GetU32(&vv_size) || vv_size > 4096) {
    return Status::Corruption("bad version vector size");
  }
  std::vector<uint64_t> vv(vv_size);
  for (uint32_t k = 0; k < vv_size; ++k) {
    if (!reader.GetU64(&vv[k])) return Status::Corruption("truncated vv");
  }
  out->tvv = VersionVector(std::move(vv));
  uint32_t num_writes;
  if (!reader.GetU32(&num_writes)) {
    return Status::Corruption("truncated write count");
  }
  out->writes.clear();
  out->writes.reserve(num_writes);
  for (uint32_t i = 0; i < num_writes; ++i) {
    WriteEntry w;
    uint8_t insert_byte;
    if (!reader.GetU32(&w.key.table) || !reader.GetU64(&w.key.row) ||
        !reader.GetU8(&insert_byte) || !reader.GetString(&w.value)) {
      return Status::Corruption("truncated write entry");
    }
    w.is_insert = insert_byte != 0;
    out->writes.push_back(std::move(w));
  }
  uint32_t num_partitions;
  if (!reader.GetU32(&num_partitions) || num_partitions > (1u << 20)) {
    return Status::Corruption("bad partition count");
  }
  out->partitions.clear();
  out->partitions.reserve(num_partitions);
  for (uint32_t i = 0; i < num_partitions; ++i) {
    uint64_t p;
    if (!reader.GetU64(&p)) return Status::Corruption("truncated partition");
    out->partitions.push_back(p);
  }
  if (!reader.GetU32(&out->transfer_peer)) {
    return Status::Corruption("truncated transfer peer");
  }
  if (!reader.GetU64(&out->append_ts_us)) {
    return Status::Corruption("truncated append timestamp");
  }
  if (!reader.AtEnd()) return Status::Corruption("trailing bytes");
  return Status::OK();
}

size_t LogRecord::SerializedSize() const {
  size_t size = 1 + 4 + 4 + tvv.size() * 8 + 4;
  for (const WriteEntry& w : writes) size += 4 + 8 + 1 + 4 + w.value.size();
  size += 4 + partitions.size() * 8 + 4 + 8;
  return size;
}

}  // namespace dynamast::log
