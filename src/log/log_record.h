#ifndef DYNAMAST_LOG_LOG_RECORD_H_
#define DYNAMAST_LOG_LOG_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/key.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/version_vector.h"

namespace dynamast::log {

/// One write inside a committed update transaction: the new value for a
/// record (full-row values; the storage engine installs them as new
/// versioned records when the refresh transaction is applied).
struct WriteEntry {
  RecordKey key;
  std::string value;
  bool is_insert = false;  // true when the key did not exist before

  friend bool operator==(const WriteEntry& a, const WriteEntry& b) {
    return a.key == b.key && a.value == b.value && a.is_insert == b.is_insert;
  }
};

/// Redo-log record. The log carries three kinds of records (Section V-C):
/// committed update transactions (which double as refresh transactions at
/// remote sites), and the release/grant mastership markers that make data
/// item mastership recoverable.
struct LogRecord {
  enum class Type : uint8_t {
    kUpdate = 0,
    kRelease = 1,
    kGrant = 2,
  };

  Type type = Type::kUpdate;
  SiteId origin = 0;
  /// Commit timestamp of the transaction (or of the mastership marker,
  /// which occupies a slot in the origin's commit order; see
  /// SiteManager::Release/Grant).
  VersionVector tvv;
  /// For kUpdate: the transaction's writes. Empty for markers.
  std::vector<WriteEntry> writes;
  /// For kRelease / kGrant: the partitions whose mastership changed and the
  /// counterpart site of the transfer.
  std::vector<PartitionId> partitions;
  SiteId transfer_peer = kInvalidSite;
  /// metrics::NowMicros() at append time (0 when unset, e.g. in tests).
  /// Process-local steady-clock micros: every site of a simulated cluster
  /// shares the clock, so refresh delay — the paper's Eq. 5 input — is
  /// measured directly as apply time minus append time.
  uint64_t append_ts_us = 0;

  /// Serializes to a compact binary representation (length-prefixed).
  /// The byte size of the encoding is what the network simulator charges
  /// for propagation traffic.
  DYNAMAST_EXPENSIVE std::string Serialize() const;

  /// Parses a record serialized by Serialize(). Returns Corruption on any
  /// malformed input (truncation, bad type, overlong fields).
  DYNAMAST_EXPENSIVE static Status Deserialize(std::string_view data,
                                               LogRecord* out);

  size_t SerializedSize() const;

  friend bool operator==(const LogRecord& a, const LogRecord& b) {
    return a.type == b.type && a.origin == b.origin && a.tvv == b.tvv &&
           a.writes == b.writes && a.partitions == b.partitions &&
           a.transfer_peer == b.transfer_peer &&
           a.append_ts_us == b.append_ts_us;
  }
};

}  // namespace dynamast::log

#endif  // DYNAMAST_LOG_LOG_RECORD_H_
