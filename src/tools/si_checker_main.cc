// si_checker CLI: audits a history dump produced by
// history::Recorder::DumpToFile (or anything in the same line format) and
// exits non-zero if any snapshot-isolation / strong-session anomaly is
// found. Typical use after a fuzzed test run:
//
//   si_checker --system=dynamast history.txt
//   si_checker --no-full-sessions --no-cross-origin-ww leap_history.txt
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/history.h"
#include "tools/si_checker.h"

namespace {

void Usage() {
  std::cerr
      << "usage: si_checker [options] <history-file>\n"
         "  --system=NAME          preset for dynamast|single-master|\n"
         "                         multi-master|partition-store|leap\n"
         "  --no-full-sessions     per-origin session monotonicity only\n"
         "  --no-cross-origin-ww   skip cross-site write-write conflicts\n"
         "  --partial              history is incomplete; skip G1a\n"
         "  -q                     print nothing on a clean audit\n";
}

}  // namespace

int main(int argc, char** argv) {
  dynamast::tools::SiCheckerOptions options;
  std::string path;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--system=", 0) == 0) {
      options = dynamast::tools::OptionsForSystem(arg.substr(9));
    } else if (arg == "--no-full-sessions") {
      options.full_session_vectors = false;
    } else if (arg == "--no-cross-origin-ww") {
      options.cross_origin_ww = false;
    } else if (arg == "--partial") {
      options.complete_history = false;
    } else if (arg == "-q") {
      quiet = true;
    } else if (arg == "-h" || arg == "--help") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "si_checker: unknown option " << arg << "\n";
      Usage();
      return 2;
    } else if (path.empty()) {
      path = arg;
    } else {
      Usage();
      return 2;
    }
  }
  if (path.empty()) {
    Usage();
    return 2;
  }

  std::ifstream in(path);
  if (!in) {
    std::cerr << "si_checker: cannot open " << path << "\n";
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  std::vector<dynamast::history::HistoryEvent> events;
  dynamast::Status parse =
      dynamast::history::ParseHistory(buffer.str(), &events);
  if (!parse.ok()) {
    std::cerr << "si_checker: parse error: " << parse.ToString() << "\n";
    return 2;
  }

  const dynamast::tools::AuditReport report =
      dynamast::tools::AuditHistory(events, options);
  if (!report.ok() || !quiet) {
    std::cout << report.ToString();
  }
  return report.ok() ? 0 : 1;
}
