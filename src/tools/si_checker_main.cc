// si_checker CLI: audits a history dump produced by
// history::Recorder::DumpToFile (or anything in the same line format) and
// exits non-zero if any snapshot-isolation / strong-session anomaly is
// found. Typical use after a fuzzed test run:
//
//   si_checker --system=dynamast history.txt
//   si_checker --no-full-sessions --no-cross-origin-ww leap_history.txt
//   si_checker --metrics=metrics.json history.txt   # reconcile the planes
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/history.h"
#include "tools/si_checker.h"

namespace {

void Usage() {
  std::cerr
      << "usage: si_checker [options] <history-file>\n"
         "  --system=NAME          preset for dynamast|single-master|\n"
         "                         multi-master|partition-store|leap\n"
         "  --no-full-sessions     per-origin session monotonicity only\n"
         "  --no-cross-origin-ww   skip cross-site write-write conflicts\n"
         "  --partial              history is incomplete; skip G1a\n"
         "  --certify-ssi          also fail on SSI dangerous structures\n"
         "                         (certify the run fully serializable)\n"
         "  --metrics=FILE         reconcile the history against a metrics\n"
         "                         snapshot (Registry::SnapshotJson or one\n"
         "                         bench --metrics-out row); exit 1 on any\n"
         "                         count mismatch\n"
         "  -q                     print nothing on a clean audit\n";
}

}  // namespace

int main(int argc, char** argv) {
  dynamast::tools::SiCheckerOptions options;
  std::string path;
  std::string metrics_path;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--system=", 0) == 0) {
      options = dynamast::tools::OptionsForSystem(arg.substr(9));
    } else if (arg.rfind("--metrics=", 0) == 0) {
      metrics_path = arg.substr(10);
    } else if (arg == "--no-full-sessions") {
      options.full_session_vectors = false;
    } else if (arg == "--no-cross-origin-ww") {
      options.cross_origin_ww = false;
    } else if (arg == "--partial") {
      options.complete_history = false;
    } else if (arg == "--certify-ssi") {
      options.certify_serializable = true;
    } else if (arg == "-q") {
      quiet = true;
    } else if (arg == "-h" || arg == "--help") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "si_checker: unknown option " << arg << "\n";
      Usage();
      return 2;
    } else if (path.empty()) {
      path = arg;
    } else {
      Usage();
      return 2;
    }
  }
  if (path.empty()) {
    Usage();
    return 2;
  }

  std::ifstream in(path);
  if (!in) {
    std::cerr << "si_checker: cannot open " << path << "\n";
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  std::vector<dynamast::history::HistoryEvent> events;
  dynamast::Status parse =
      dynamast::history::ParseHistory(buffer.str(), &events);
  if (!parse.ok()) {
    std::cerr << "si_checker: parse error: " << parse.ToString() << "\n";
    return 2;
  }

  const dynamast::tools::AuditReport report =
      dynamast::tools::AuditHistory(events, options);
  if (!report.ok() || !quiet) {
    std::cout << report.ToString();
  }

  bool reconciled = true;
  if (!metrics_path.empty()) {
    std::ifstream metrics_in(metrics_path);
    if (!metrics_in) {
      std::cerr << "si_checker: cannot open " << metrics_path << "\n";
      return 2;
    }
    std::ostringstream metrics_buffer;
    metrics_buffer << metrics_in.rdbuf();
    dynamast::tools::MetricsReconciliation reconciliation;
    dynamast::Status s = dynamast::tools::ReconcileMetrics(
        events, metrics_buffer.str(), &reconciliation);
    if (!s.ok()) {
      std::cerr << "si_checker: " << metrics_path << ": " << s.ToString()
                << "\n";
      return 2;
    }
    reconciled = reconciliation.ok();
    if (!reconciled || !quiet) {
      std::cout << reconciliation.ToString() << "\n";
    }
  }
  return report.ok() && reconciled ? 0 : 1;
}
