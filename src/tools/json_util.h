#ifndef DYNAMAST_TOOLS_JSON_UTIL_H_
#define DYNAMAST_TOOLS_JSON_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace dynamast::tools {

/// Minimal recursive-descent JSON reader for the observability tooling
/// (metrics_dump, si_checker --metrics, and the round-trip unit tests).
/// It parses the dialect our own writers emit — objects, arrays, strings
/// with the common escapes, numbers, booleans, null — with no external
/// dependency. Not a general-purpose validator: it accepts a superset
/// (e.g. it does not reject duplicate keys; the first one wins on lookup).
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_value = false;
  double number = 0;
  std::string string_value;
  std::vector<JsonValue> array;
  /// Insertion-ordered key/value pairs (JSON objects).
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_string() const { return type == Type::kString; }
  bool is_number() const { return type == Type::kNumber; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
  /// Convenience accessors over Find: the fallback is returned when the
  /// member is missing or has the wrong type.
  std::string GetString(std::string_view key,
                        const std::string& fallback = "") const;
  double GetNumber(std::string_view key, double fallback = 0) const;
  uint64_t GetUint64(std::string_view key, uint64_t fallback = 0) const;
};

/// Parses one complete JSON document; trailing whitespace is allowed,
/// trailing garbage is an error.
Status ParseJson(std::string_view text, JsonValue* out);

/// Parses newline-delimited JSON (one document per non-blank line) — the
/// format of bench --metrics-out files.
Status ParseJsonLines(std::string_view text, std::vector<JsonValue>* out);

}  // namespace dynamast::tools

#endif  // DYNAMAST_TOOLS_JSON_UTIL_H_
