#include "tools/json_util.h"

#include <cctype>
#include <cstdlib>

namespace dynamast::tools {

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string JsonValue::GetString(std::string_view key,
                                 const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_string() ? v->string_value : fallback;
}

double JsonValue::GetNumber(std::string_view key, double fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->number : fallback;
}

uint64_t JsonValue::GetUint64(std::string_view key, uint64_t fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() && v->number >= 0
             ? static_cast<uint64_t>(v->number)
             : fallback;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Status Parse(JsonValue* out) {
    Status s = ParseValue(out);
    if (!s.ok()) return s;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after document");
    }
    return Status::OK();
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out) {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->string_value);
      case 't':
      case 'f':
        return ParseLiteral(out);
      case 'n':
        return ParseLiteral(out);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out) {
    out->type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      if (Status s = ParseString(&key); !s.ok()) return s;
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      JsonValue value;
      if (Status s = ParseValue(&value); !s.ok()) return s;
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Error("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out) {
    out->type = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue value;
      if (Status s = ParseValue(&value); !s.ok()) return s;
      out->array.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Error("expected ',' or ']'");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char escape = text_[pos_++];
      switch (escape) {
        case '"':
        case '\\':
        case '/':
          out->push_back(escape);
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          uint32_t code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<uint32_t>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<uint32_t>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<uint32_t>(h - 'A' + 10);
            } else {
              return Error("bad \\u escape");
            }
          }
          // UTF-8 encode (no surrogate-pair support; our writers only
          // emit \u00XX control escapes).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseLiteral(JsonValue* out) {
    auto matches = [&](std::string_view word) {
      return text_.substr(pos_, word.size()) == word;
    };
    if (matches("true")) {
      out->type = JsonValue::Type::kBool;
      out->bool_value = true;
      pos_ += 4;
      return Status::OK();
    }
    if (matches("false")) {
      out->type = JsonValue::Type::kBool;
      out->bool_value = false;
      pos_ += 5;
      return Status::OK();
    }
    if (matches("null")) {
      out->type = JsonValue::Type::kNull;
      pos_ += 4;
      return Status::OK();
    }
    return Error("unknown literal");
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out->number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("bad number");
    out->type = JsonValue::Type::kNumber;
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Status ParseJson(std::string_view text, JsonValue* out) {
  *out = JsonValue{};
  return Parser(text).Parse(out);
}

Status ParseJsonLines(std::string_view text, std::vector<JsonValue>* out) {
  out->clear();
  size_t line_start = 0;
  size_t line_no = 0;
  while (line_start <= text.size()) {
    size_t line_end = text.find('\n', line_start);
    if (line_end == std::string_view::npos) line_end = text.size();
    std::string_view line = text.substr(line_start, line_end - line_start);
    ++line_no;
    line_start = line_end + 1;
    bool blank = true;
    for (char c : line) {
      if (c != ' ' && c != '\t' && c != '\r') {
        blank = false;
        break;
      }
    }
    if (blank) {
      if (line_end == text.size()) break;
      continue;
    }
    JsonValue value;
    if (Status s = ParseJson(line, &value); !s.ok()) {
      return Status::InvalidArgument("line " + std::to_string(line_no) + ": " +
                                     s.message());
    }
    out->push_back(std::move(value));
    if (line_end == text.size()) break;
  }
  return Status::OK();
}

}  // namespace dynamast::tools
