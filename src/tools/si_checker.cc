#include "tools/si_checker.h"

#include "tools/json_util.h"

#include <algorithm>
#include <cstddef>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>
#include <utility>
#include <vector>

namespace dynamast::tools {

namespace {

using history::EventKind;
using history::HistoryEvent;

/// Beyond this many committed writers of one key, the lost-update check
/// falls back from all-pairs to adjacent pairs in recorder order
/// (quadratic blowup guard for hot rows; adjacency still catches every
/// violation of a total per-key install order).
constexpr size_t kAllPairsLimit = 64;

uint64_t At(const VersionVector& v, size_t i) {
  return i < v.size() ? v[i] : 0;
}

std::string DescribeEvent(const HistoryEvent& e) {
  std::ostringstream os;
  os << history::EventKindName(e.kind) << " #" << e.seq << " (site " << e.site;
  if (e.client != 0 || e.client_txn != 0) {
    os << ", client " << e.client << " txn " << e.client_txn;
  }
  os << ")";
  return os.str();
}

}  // namespace

const char* AnomalyKindName(AnomalyKind kind) {
  switch (kind) {
    case AnomalyKind::kG1aAbortedRead:
      return "G1a-aborted-read";
    case AnomalyKind::kG1bIntermediateRead:
      return "G1b-intermediate-read";
    case AnomalyKind::kG1cCycle:
      return "G1c-cycle";
    case AnomalyKind::kFutureRead:
      return "future-read";
    case AnomalyKind::kLostUpdate:
      return "lost-update";
    case AnomalyKind::kSessionRegression:
      return "session-regression";
    case AnomalyKind::kRemasterWindow:
      return "remaster-window";
    case AnomalyKind::kSsiDangerousStructure:
      return "ssi-dangerous-structure";
  }
  return "unknown";
}

std::string Anomaly::ToString() const {
  std::ostringstream os;
  os << AnomalyKindName(kind);
  if (event_seq != 0) os << " @event " << event_seq;
  os << ": " << detail;
  return os.str();
}

SiCheckerOptions OptionsForSystem(const std::string& system_name) {
  SiCheckerOptions o;
  if (system_name == "partition-store") {
    // Sessions are masked to the coordinator's index; only per-origin
    // monotonicity is promised.
    o.full_session_vectors = false;
  } else if (system_name == "leap") {
    // Masked sessions, and shipped rows are reinstalled as (0, 0) base
    // versions, severing cross-origin write lineage.
    o.full_session_vectors = false;
    o.cross_origin_ww = false;
  }
  return o;
}

std::string AuditReport::ToString() const {
  std::ostringstream os;
  os << "si_checker: " << commits << " commits, " << aborts << " aborts, "
     << markers << " markers; " << reads_checked << " reads and "
     << write_pairs_checked << " write pairs checked; " << anomalies.size()
     << (anomalies.size() == 1 ? " anomaly" : " anomalies") << "\n";
  os << "  SSI: " << rw_antidependencies << " rw-antidependencies, "
     << dangerous_structures << " dangerous structures"
     << (dangerous_structures == 0 ? " (certified serializable)" : "")
     << "\n";
  for (const Anomaly& a : anomalies) {
    os << "  " << a.ToString() << "\n";
  }
  return os.str();
}

AuditReport AuditHistory(const std::vector<HistoryEvent>& events,
                         const SiCheckerOptions& options) {
  AuditReport report;

  // ---- Pass 1: index installers -------------------------------------
  // Every update commit and every marker occupies one slot in its site's
  // per-origin commit sequence (svv[site] after the critical section).
  // (origin, seq) -> event index; values observed by reads must resolve
  // to a committed *transaction* that wrote the key.
  std::unordered_map<uint64_t, size_t> installers;  // packed (site, seq)
  const auto pack = [](SiteId site, uint64_t seq) {
    return (static_cast<uint64_t>(site) << 48) ^ seq;
  };
  std::vector<size_t> committed;  // indices of kCommit events
  for (size_t i = 0; i < events.size(); ++i) {
    const HistoryEvent& e = events[i];
    switch (e.kind) {
      case EventKind::kCommit:
        report.commits++;
        committed.push_back(i);
        break;
      case EventKind::kAbort:
        report.aborts++;
        break;
      case EventKind::kRelease:
      case EventKind::kGrant:
        report.markers++;
        break;
    }
    if (e.installed_seq != 0 &&
        (e.kind == EventKind::kCommit || e.kind == EventKind::kRelease ||
         e.kind == EventKind::kGrant)) {
      installers.emplace(pack(e.site, e.installed_seq), i);
    }
  }

  // ---- Read checks: future reads, G1a, G1b --------------------------
  for (size_t i : committed) {
    const HistoryEvent& e = events[i];
    for (const history::ReadObservation& r : e.reads) {
      report.reads_checked++;
      // (0, 0) is the loader-installed base version, visible to any
      // snapshot.
      if (r.origin == 0 && r.seq == 0) continue;
      if (r.seq > At(e.begin, r.origin)) {
        Anomaly a{AnomalyKind::kFutureRead, e.seq, ""};
        a.detail = DescribeEvent(e) + " read " + r.key.ToString() +
                   " at version " + std::to_string(r.origin) + ":" +
                   std::to_string(r.seq) + " beyond its begin snapshot " +
                   e.begin.ToString();
        report.anomalies.push_back(std::move(a));
      }
      auto it = installers.find(pack(r.origin, r.seq));
      if (it == installers.end()) {
        if (options.complete_history) {
          Anomaly a{AnomalyKind::kG1aAbortedRead, e.seq, ""};
          a.detail = DescribeEvent(e) + " read " + r.key.ToString() +
                     " at version " + std::to_string(r.origin) + ":" +
                     std::to_string(r.seq) +
                     " which no committed transaction installed";
          report.anomalies.push_back(std::move(a));
        }
        continue;
      }
      const HistoryEvent& w = events[it->second];
      const bool wrote_key =
          w.kind == EventKind::kCommit &&
          std::any_of(w.writes.begin(), w.writes.end(),
                      [&](const history::WriteObservation& wo) {
                        return wo.key == r.key;
                      });
      if (!wrote_key) {
        Anomaly a{AnomalyKind::kG1bIntermediateRead, e.seq, ""};
        a.detail = DescribeEvent(e) + " read " + r.key.ToString() +
                   " at version " + std::to_string(r.origin) + ":" +
                   std::to_string(r.seq) + " but its installer (" +
                   DescribeEvent(w) + ") never wrote that key";
        report.anomalies.push_back(std::move(a));
      }
    }
  }

  // ---- Lost updates (P4 / first-committer-wins) ---------------------
  // Recorder order is consistent with commit order, so for writers A
  // before B of the same key, SI demands B began after A's install was
  // visible: B.begin[A.site] >= A.installed_seq.
  std::map<RecordKey, std::vector<size_t>> writers_by_key;
  for (size_t i : committed) {
    for (const history::WriteObservation& w : events[i].writes) {
      writers_by_key[w.key].push_back(i);
    }
  }
  for (const auto& [key, writers] : writers_by_key) {
    const bool all_pairs = writers.size() <= kAllPairsLimit;
    for (size_t bi = 1; bi < writers.size(); ++bi) {
      const HistoryEvent& b = events[writers[bi]];
      const size_t first = all_pairs ? 0 : bi - 1;
      for (size_t ai = first; ai < bi; ++ai) {
        const HistoryEvent& a = events[writers[ai]];
        if (!options.cross_origin_ww && a.site != b.site) continue;
        report.write_pairs_checked++;
        if (At(b.begin, a.site) < a.installed_seq) {
          Anomaly an{AnomalyKind::kLostUpdate, b.seq, ""};
          an.detail = DescribeEvent(b) + " wrote " + key.ToString() +
                      " with begin " + b.begin.ToString() +
                      " concurrent with earlier writer " + DescribeEvent(a) +
                      " (installed " + std::to_string(a.site) + ":" +
                      std::to_string(a.installed_seq) + ")";
          report.anomalies.push_back(std::move(an));
        }
      }
    }
  }

  // ---- G1c: cycles in ww ∪ wr ---------------------------------------
  // Nodes are committed transactions; u -> v when v depends on u (v read
  // a version u installed, or v overwrote a key after u in install
  // order). A cycle contradicts any serial install order.
  {
    std::unordered_map<size_t, size_t> node_of;  // event index -> node id
    for (size_t n = 0; n < committed.size(); ++n) node_of[committed[n]] = n;
    std::vector<std::vector<size_t>> out(committed.size());
    std::vector<size_t> indegree(committed.size(), 0);
    const auto add_edge = [&](size_t from, size_t to) {
      if (from == to) return;
      out[from].push_back(to);
      indegree[to]++;
    };
    for (size_t n = 0; n < committed.size(); ++n) {
      for (const history::ReadObservation& r : events[committed[n]].reads) {
        if (r.origin == 0 && r.seq == 0) continue;
        auto it = installers.find(pack(r.origin, r.seq));
        if (it == installers.end()) continue;
        auto w = node_of.find(it->second);
        if (w != node_of.end()) add_edge(w->second, n);  // wr: writer -> reader
      }
    }
    for (const auto& [key, writers] : writers_by_key) {
      for (size_t i = 1; i < writers.size(); ++i) {  // ww: install-order chain
        add_edge(node_of[writers[i - 1]], node_of[writers[i]]);
      }
    }
    std::vector<size_t> queue;
    for (size_t n = 0; n < committed.size(); ++n) {
      if (indegree[n] == 0) queue.push_back(n);
    }
    size_t removed = 0;
    while (!queue.empty()) {
      const size_t n = queue.back();
      queue.pop_back();
      removed++;
      for (size_t m : out[n]) {
        if (--indegree[m] == 0) queue.push_back(m);
      }
    }
    if (removed != committed.size()) {
      std::ostringstream os;
      os << (committed.size() - removed)
         << " committed transactions form ww/wr dependency cycles; events:";
      size_t listed = 0;
      for (size_t n = 0; n < committed.size() && listed < 8; ++n) {
        if (indegree[n] != 0) {
          os << " #" << events[committed[n]].seq;
          listed++;
        }
      }
      report.anomalies.push_back(Anomaly{AnomalyKind::kG1cCycle, 0, os.str()});
    }
  }

  // ---- Strong-session monotonicity (Eq. 1) --------------------------
  // Per client, in issue order, every transaction's begin must dominate
  // the session vector accumulated by the client's earlier transactions.
  // 2PC branches share a client_txn: branches are checked against the
  // session *before* the logical transaction, then folded together.
  {
    std::unordered_map<ClientId, std::vector<size_t>> by_client;
    for (size_t i : committed) {
      const HistoryEvent& e = events[i];
      if (e.client_txn == 0) continue;  // sessionless
      by_client[e.client].push_back(i);
    }
    for (auto& [client, idxs] : by_client) {
      std::stable_sort(idxs.begin(), idxs.end(), [&](size_t a, size_t b) {
        return events[a].client_txn < events[b].client_txn;
      });
      VersionVector session;
      size_t i = 0;
      while (i < idxs.size()) {
        const uint64_t txn = events[idxs[i]].client_txn;
        VersionVector after = session;
        for (; i < idxs.size() && events[idxs[i]].client_txn == txn; ++i) {
          const HistoryEvent& e = events[idxs[i]];
          bool ok;
          if (options.full_session_vectors) {
            ok = e.begin.DominatesOrEquals(session);
          } else {
            // Masked sessions promise freshness only at the executing
            // site's own index.
            ok = At(e.begin, e.site) >= At(session, e.site);
          }
          if (!ok) {
            Anomaly a{AnomalyKind::kSessionRegression, e.seq, ""};
            a.detail = DescribeEvent(e) + " began at " + e.begin.ToString() +
                       " below its session " + session.ToString();
            report.anomalies.push_back(std::move(a));
          }
          after.MaxWith(e.commit);
        }
        session = std::move(after);
      }
    }
  }

  // ---- Remastering window (Algorithm 1 grant-side wait) -------------
  // Between a grant at site S and S's next release of the partition,
  // every writer of the partition committing at S must have begun at or
  // above the grant's release vector — otherwise the new master accepted
  // writes before catching up to the old master's final state.
  {
    std::map<std::pair<SiteId, PartitionId>, const HistoryEvent*> active;
    for (const HistoryEvent& e : events) {
      if (e.kind == EventKind::kGrant) {
        for (PartitionId p : e.partitions) active[{e.site, p}] = &e;
      } else if (e.kind == EventKind::kRelease) {
        for (PartitionId p : e.partitions) active.erase({e.site, p});
      } else if (e.kind == EventKind::kCommit) {
        for (const history::WriteObservation& w : e.writes) {
          auto it = active.find({e.site, w.partition});
          if (it == active.end()) continue;
          const HistoryEvent& g = *it->second;
          if (!e.begin.DominatesOrEquals(g.release_version)) {
            Anomaly a{AnomalyKind::kRemasterWindow, e.seq, ""};
            a.detail = DescribeEvent(e) + " wrote partition " +
                       std::to_string(w.partition) + " with begin " +
                       e.begin.ToString() +
                       " below the release vector of grant " +
                       DescribeEvent(g) + " (" + g.release_version.ToString() +
                       ")";
            report.anomalies.push_back(std::move(a));
            break;  // one finding per event is enough
          }
        }
      }
    }
  }

  // ---- SSI certification (G2 dangerous structures) ------------------
  // rw-antidependency R ->rw W: committed R read key k, committed W
  // installed a version of k that was *not* visible to R's snapshot
  // (At(R.begin, W.site) < W.installed_seq) — W overwrote what R read
  // while running concurrently with (or after) R's snapshot. 2PC branches
  // of one logical transaction never antidepend on each other.
  //
  // Dangerous structure (Fekete et al.): a pivot P with an incoming edge
  // T1 ->rw P and an outgoing edge P ->rw T3 where T3 committed before P
  // and no later than T1 (T1 == T3 allowed: that is plain write skew).
  // Every non-serializable SI execution contains one, so zero structures
  // certifies the run serializable. Because the flag condition is
  // monotone — easier to satisfy as commit(T1) grows and commit(T3)
  // shrinks — it suffices to test the latest-committing in-neighbour
  // against the earliest-committing out-neighbour of each pivot.
  {
    std::map<RecordKey, std::vector<size_t>> readers_by_key;
    for (size_t i : committed) {
      for (const history::ReadObservation& r : events[i].reads) {
        auto& v = readers_by_key[r.key];
        if (v.empty() || v.back() != i) v.push_back(i);
      }
    }
    std::set<std::pair<size_t, size_t>> edges;  // (reader idx, writer idx)
    for (const auto& [key, writers] : writers_by_key) {
      auto rit = readers_by_key.find(key);
      if (rit == readers_by_key.end()) continue;
      for (size_t wi : writers) {
        const HistoryEvent& w = events[wi];
        if (w.installed_seq == 0) continue;
        for (size_t ri : rit->second) {
          if (ri == wi) continue;
          const HistoryEvent& r = events[ri];
          if (r.client == w.client && r.client_txn == w.client_txn &&
              r.client_txn != 0) {
            continue;  // branches of one logical transaction
          }
          if (At(r.begin, w.site) >= w.installed_seq) continue;  // visible
          edges.emplace(ri, wi);
        }
      }
    }
    report.rw_antidependencies = edges.size();

    struct PivotEdges {
      bool has_in = false, has_out = false;
      uint64_t in_max = 0, out_min = 0;  // commit (recorder) seqs
      size_t in_ev = 0, out_ev = 0;      // event indices for the report
    };
    std::unordered_map<size_t, PivotEdges> pivots;
    for (const auto& [ri, wi] : edges) {
      PivotEdges& as_pivot_in = pivots[wi];  // edge into wi
      if (!as_pivot_in.has_in || events[ri].seq > as_pivot_in.in_max) {
        as_pivot_in.has_in = true;
        as_pivot_in.in_max = events[ri].seq;
        as_pivot_in.in_ev = ri;
      }
      PivotEdges& as_pivot_out = pivots[ri];  // edge out of ri
      if (!as_pivot_out.has_out || events[wi].seq < as_pivot_out.out_min) {
        as_pivot_out.has_out = true;
        as_pivot_out.out_min = events[wi].seq;
        as_pivot_out.out_ev = wi;
      }
    }
    std::vector<size_t> flagged;
    for (const auto& [p, pe] : pivots) {
      if (!pe.has_in || !pe.has_out) continue;
      if (pe.out_min < events[p].seq && pe.out_min <= pe.in_max) {
        flagged.push_back(p);
      }
    }
    std::sort(flagged.begin(), flagged.end());
    for (size_t p : flagged) {
      const PivotEdges& pe = pivots[p];
      Anomaly a{AnomalyKind::kSsiDangerousStructure, events[p].seq, ""};
      a.detail = DescribeEvent(events[pe.in_ev]) + " ->rw pivot " +
                 DescribeEvent(events[p]) + " ->rw " +
                 DescribeEvent(events[pe.out_ev]) +
                 " with the out-neighbour committing first";
      report.ssi.push_back(a);
      if (options.certify_serializable) {
        report.anomalies.push_back(std::move(a));
      }
    }
    report.dangerous_structures = flagged.size();
  }

  return report;
}

namespace {

// Sums a counter family over every series whose labels include
// `label_key`=`label_value` (or every series when label_key is empty).
uint64_t SumCounter(const JsonValue& snapshot, std::string_view family,
                    std::string_view label_key = "",
                    std::string_view label_value = "") {
  const JsonValue* metrics = snapshot.Find("metrics");
  if (metrics == nullptr || !metrics->is_array()) return 0;
  uint64_t total = 0;
  for (const JsonValue& entry : metrics->array) {
    if (entry.GetString("name") != family ||
        entry.GetString("type") != "counter") {
      continue;
    }
    const JsonValue* series = entry.Find("series");
    if (series == nullptr || !series->is_array()) continue;
    for (const JsonValue& s : series->array) {
      if (!label_key.empty()) {
        const JsonValue* labels = s.Find("labels");
        if (labels == nullptr ||
            labels->GetString(label_key) != label_value) {
          continue;
        }
      }
      total += s.GetUint64("value");
    }
  }
  return total;
}

}  // namespace

std::string MetricsReconciliation::ToString() const {
  std::ostringstream os;
  os << "metrics reconcile:";
  bool all_ok = true;
  for (const Line& l : lines) {
    os << ' ' << l.name << ' ' << l.history << '/' << l.metrics;
    if (l.history != l.metrics) all_ok = false;
  }
  os << (all_ok ? " OK" : " MISMATCH");
  return os.str();
}

Status ReconcileMetrics(const std::vector<history::HistoryEvent>& events,
                        std::string_view snapshot_json,
                        MetricsReconciliation* out) {
  *out = MetricsReconciliation{};
  JsonValue doc;
  if (Status s = ParseJson(snapshot_json, &doc); !s.ok()) return s;
  // Accept either a raw snapshot ({"metrics":[...]}) or a bench row whose
  // "metrics" member holds the snapshot object.
  const JsonValue* snapshot = &doc;
  if (const JsonValue* m = doc.Find("metrics");
      m != nullptr && m->is_object()) {
    snapshot = m;
  }
  if (const JsonValue* m = snapshot->Find("metrics");
      m == nullptr || !m->is_array()) {
    return Status::InvalidArgument(
        "document has no \"metrics\" family array");
  }

  uint64_t update_commits = 0, readonly_commits = 0, releases = 0, grants = 0;
  uint64_t transitions = 0;
  for (const history::HistoryEvent& e : events) {
    switch (e.kind) {
      case history::EventKind::kCommit:
        (e.installed_seq > 0 ? update_commits : readonly_commits)++;
        break;
      case history::EventKind::kRelease:
        ++releases;
        break;
      case history::EventKind::kGrant:
        ++grants;
        // Each granted partition is one mastership transition, matching
        // the per-partition site_mastership_transitions_total unit.
        transitions += e.partitions.size();
        break;
      case history::EventKind::kAbort:
        break;
    }
  }

  out->lines = {
      {"update_commits", update_commits,
       SumCounter(*snapshot, "site_commits_total", "kind", "update")},
      {"readonly_commits", readonly_commits,
       SumCounter(*snapshot, "site_commits_total", "kind", "readonly")},
      {"releases", releases, SumCounter(*snapshot, "site_releases_total")},
      {"grants", grants, SumCounter(*snapshot, "site_grants_total")},
      {"partition_transitions", transitions,
       SumCounter(*snapshot, "site_mastership_transitions_total")},
  };
  return Status::OK();
}

}  // namespace dynamast::tools
