#ifndef DYNAMAST_TOOLS_SI_CHECKER_H_
#define DYNAMAST_TOOLS_SI_CHECKER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/history.h"
#include "common/status.h"

namespace dynamast::tools {

/// Offline snapshot-isolation / strong-session auditor over the histories
/// recorded by common/history (see DESIGN.md, "Schedule exploration &
/// history auditing"). Given the full event log of a run, it checks the
/// Adya-style anomaly classes the paper's correctness argument rules out:
///
///  * G1a (aborted read)      — a read observed a version no committed
///                              transaction installed;
///  * G1b (intermediate read) — a read observed an installed version slot
///                              whose installer never wrote that key;
///  * G1c (circularity)       — the ww ∪ wr dependency graph has a cycle;
///  * future read             — a read observed a version newer than the
///                              transaction's own begin snapshot allows;
///  * P4 (lost update)        — two committed writers of the same key ran
///                              concurrently (first-committer-wins broken);
///  * session regression      — a client's transaction began below the
///                              session vector accumulated by its earlier
///                              transactions (Eq. 1 dominance violated);
///  * remastering window      — a writer committed at a partition's new
///                              master with a begin snapshot that does not
///                              dominate the grant's release vector
///                              (Algorithm 1's grant-side wait skipped).
///
/// Beyond the SI anomaly classes, the auditor also certifies full
/// serializability the SSI way (Cahill et al., SIGMOD'08, building on
/// Fekete et al., TODS'05): it materializes every rw-antidependency
/// (reader -> concurrent later writer of a key the reader observed an
/// older version of) and flags *dangerous structures* — a pivot
/// transaction with both an incoming and an outgoing rw-antidependency
/// whose out-neighbour committed first. Every non-serializable SI
/// execution contains such a structure, so a history with zero dangerous
/// structures is certified serializable (G2-free); a flagged structure is
/// a *potential* anomaly (the check is conservative, like SSI itself).
enum class AnomalyKind {
  kG1aAbortedRead,
  kG1bIntermediateRead,
  kG1cCycle,
  kFutureRead,
  kLostUpdate,
  kSessionRegression,
  kRemasterWindow,
  kSsiDangerousStructure,
};

const char* AnomalyKindName(AnomalyKind kind);

struct Anomaly {
  AnomalyKind kind;
  /// Recorder sequence of the offending event (0 for graph-level findings
  /// that implicate a set of events, e.g. a G1c cycle).
  uint64_t event_seq = 0;
  std::string detail;

  std::string ToString() const;
};

struct SiCheckerOptions {
  /// Whether the system under audit maintains full-vector session
  /// monotonicity (DynaMast, single-master, multi-master). Systems that
  /// mask the session to the executing site's index (partition-store,
  /// LEAP) only guarantee per-origin monotonicity: each transaction's
  /// begin[s] >= session[s] at its own execution site s.
  bool full_session_vectors = true;
  /// Whether concurrent committed writers of one key on *different*
  /// origin sites are an anomaly. True for every system with a
  /// single-master-per-partition invariant; LEAP reinstalls shipped rows
  /// as fresh (0, 0) base versions, so cross-origin write lineage is not
  /// tracked and only same-origin conflicts are checkable.
  bool cross_origin_ww = true;
  /// Whether the history is complete (every committed installer was
  /// recorded). When true, a read observing a version stamp that matches
  /// no recorded committed installer is reported as G1a; when false
  /// (partial dumps) such reads are skipped.
  bool complete_history = true;
  /// Promote SSI dangerous structures into `anomalies` (so ok() fails on
  /// them). Off by default: SI systems legitimately admit write skew, and
  /// the standard audit only checks the SI contract. Turn on to certify a
  /// run fully serializable. Structures are always counted and listed in
  /// AuditReport::ssi either way.
  bool certify_serializable = false;
};

/// Per-system audit presets.
SiCheckerOptions OptionsForSystem(const std::string& system_name);

struct AuditReport {
  std::vector<Anomaly> anomalies;
  size_t commits = 0;
  size_t aborts = 0;
  size_t markers = 0;
  size_t reads_checked = 0;
  size_t write_pairs_checked = 0;

  /// SSI certification results: distinct rw-antidependency edges in the
  /// history and the dangerous (G2-candidate) structures found among
  /// them. The structures are duplicated into `anomalies` only under
  /// SiCheckerOptions::certify_serializable; zero structures certifies
  /// the history serializable regardless of the flag.
  size_t rw_antidependencies = 0;
  size_t dangerous_structures = 0;
  std::vector<Anomaly> ssi;

  bool ok() const { return anomalies.empty(); }
  bool serializable() const { return dangerous_structures == 0; }
  std::string ToString() const;
};

/// Audits `events` (in recorder order — callers pass Recorder::Snapshot()
/// or ParseHistory output verbatim) and returns every anomaly found.
AuditReport AuditHistory(const std::vector<history::HistoryEvent>& events,
                         const SiCheckerOptions& options = {});

/// Cross-checks a metrics snapshot against the recorded history: the two
/// observability planes count the same ground truth, so exported counters
/// must reconcile *exactly* with the event log — update commits vs
/// site_commits_total{kind=update}, read-only commits vs kind=readonly,
/// release / grant markers vs site_releases_total / site_grants_total,
/// and per-partition mastership transitions (sum of granted partition
/// counts) vs site_mastership_transitions_total.
struct MetricsReconciliation {
  struct Line {
    std::string name;
    uint64_t history = 0;
    uint64_t metrics = 0;
  };
  std::vector<Line> lines;

  bool ok() const {
    for (const Line& l : lines) {
      if (l.history != l.metrics) return false;
    }
    return true;
  }
  /// One-line "history=N metrics=N" report, e.g.
  /// "metrics reconcile: update_commits 12/12 ... OK".
  std::string ToString() const;
};

/// `snapshot_json` is either a raw Registry::SnapshotJson() document or a
/// bench --metrics-out row (the snapshot is then under its "metrics" key).
/// Parse errors surface as a non-ok status.
Status ReconcileMetrics(const std::vector<history::HistoryEvent>& events,
                        std::string_view snapshot_json,
                        MetricsReconciliation* out);

}  // namespace dynamast::tools

#endif  // DYNAMAST_TOOLS_SI_CHECKER_H_
