// metrics_dump CLI: pretty-prints metrics JSON produced by the bench
// --metrics-out flag (newline-delimited rows) or a raw
// metrics::Registry::SnapshotJson() document. One line per series, in a
// greppable name{label=value,...} = value format:
//
//   metrics_dump metrics.json
//   metrics_dump --family=site_commits metrics.json
//   metrics_dump --nonzero metrics.json | sort
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "tools/json_util.h"

namespace {

using dynamast::tools::JsonValue;

void Usage() {
  std::cerr << "usage: metrics_dump [options] <metrics-json-file>\n"
               "  --family=SUBSTR   only families whose name contains SUBSTR\n"
               "  --nonzero         skip zero-valued counter/gauge series\n"
               "  --timeline        input is bench --timeline-out JSONL: "
               "summarize per-run\n"
               "                    family deltas/rates (with --family, also "
               "print the\n"
               "                    per-sample trajectory of matching series)\n";
}

std::string FormatLabels(const JsonValue& series) {
  const JsonValue* labels = series.Find("labels");
  if (labels == nullptr || labels->object.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels->object) {
    if (!first) out += ",";
    first = false;
    out += k + "=" + (v.is_string() ? v.string_value : "?");
  }
  out += "}";
  return out;
}

void PrintSnapshot(const JsonValue& snapshot, const std::string& family_filter,
                   bool nonzero_only) {
  const JsonValue* metrics = snapshot.Find("metrics");
  if (metrics == nullptr || !metrics->is_array()) {
    std::cout << "  (no metrics array)\n";
    return;
  }
  for (const JsonValue& family : metrics->array) {
    const std::string name = family.GetString("name");
    if (!family_filter.empty() &&
        name.find(family_filter) == std::string::npos) {
      continue;
    }
    const std::string type = family.GetString("type");
    const JsonValue* series = family.Find("series");
    if (series == nullptr || !series->is_array()) continue;
    for (const JsonValue& s : series->array) {
      const std::string labels = FormatLabels(s);
      if (type == "histogram") {
        if (nonzero_only && s.GetUint64("count") == 0) continue;
        std::printf(
            "  %s%s count=%llu mean=%.1f p50=%.0f p99=%.0f p999=%.0f "
            "max=%llu\n",
            name.c_str(), labels.c_str(),
            static_cast<unsigned long long>(s.GetUint64("count")),
            s.GetNumber("mean_us"), s.GetNumber("p50_us"),
            s.GetNumber("p99_us"), s.GetNumber("p999_us"),
            static_cast<unsigned long long>(s.GetUint64("max_us")));
      } else {
        const double value = s.GetNumber("value");
        if (nonzero_only && value == 0) continue;
        if (type == "counter") {
          std::printf("  %s%s = %llu\n", name.c_str(), labels.c_str(),
                      static_cast<unsigned long long>(s.GetUint64("value")));
        } else {
          std::printf("  %s%s = %g\n", name.c_str(), labels.c_str(), value);
        }
      }
    }
  }
}

// ---- --timeline mode --------------------------------------------------

struct TimelineRun {
  std::string label;
  size_t samples = 0;
  uint64_t first_ts_us = 0;
  uint64_t last_ts_us = 0;
  // Per flattened series key ("name{k=v,...}"): first and last value.
  std::map<std::string, std::pair<double, double>> first_last;
  // Per-sample (ts_us, key, value) for the --family trajectory print.
  std::vector<std::tuple<uint64_t, std::string, double>> trajectory;
};

std::string FamilyOf(const std::string& key) {
  const size_t brace = key.find('{');
  return brace == std::string::npos ? key : key.substr(0, brace);
}

int RunTimelineMode(const std::vector<JsonValue>& rows,
                    const std::string& family_filter, bool nonzero_only) {
  std::vector<TimelineRun> runs;
  std::map<std::string, size_t> run_index;
  size_t skipped = 0;
  for (const JsonValue& row : rows) {
    if (row.GetString("schema") != "dynamast.timeline.v1") {
      ++skipped;
      continue;
    }
    const std::string label = row.GetString("run");
    auto [it, inserted] = run_index.try_emplace(label, runs.size());
    if (inserted) {
      runs.emplace_back();
      runs.back().label = label;
    }
    TimelineRun& run = runs[it->second];
    const uint64_t ts = row.GetUint64("ts_us");
    if (run.samples == 0) run.first_ts_us = ts;
    run.last_ts_us = ts;
    ++run.samples;
    const JsonValue* values = row.Find("values");
    if (values == nullptr || !values->is_object()) continue;
    for (const auto& [key, value] : values->object) {
      if (!value.is_number()) continue;
      auto [series_it, first_seen] =
          run.first_last.try_emplace(key, value.number, value.number);
      if (!first_seen) series_it->second.second = value.number;
      if (!family_filter.empty() &&
          FamilyOf(key).find(family_filter) != std::string::npos) {
        run.trajectory.emplace_back(ts, key, value.number);
      }
    }
  }
  if (skipped > 0) {
    std::fprintf(stderr, "metrics_dump: skipped %zu non-timeline rows\n",
                 skipped);
  }
  if (runs.empty()) {
    std::cerr << "metrics_dump: no timeline rows "
                 "(expected schema dynamast.timeline.v1)\n";
    return 2;
  }
  for (const TimelineRun& run : runs) {
    const double span_s =
        static_cast<double>(run.last_ts_us - run.first_ts_us) / 1e6;
    std::printf("== timeline run=%s samples=%zu span=%.2fs\n",
                run.label.c_str(), run.samples, span_s);
    // Family roll-up: sum of per-series deltas (counters and histogram
    // counts are cumulative, so last-first is the run's activity; gauges
    // show net movement).
    std::map<std::string, double> family_delta;
    for (const auto& [key, first_last] : run.first_last) {
      family_delta[FamilyOf(key)] += first_last.second - first_last.first;
    }
    for (const auto& [family, delta] : family_delta) {
      if (!family_filter.empty() &&
          family.find(family_filter) == std::string::npos) {
        continue;
      }
      if (nonzero_only && delta == 0) continue;
      if (span_s > 0) {
        std::printf("  %-44s delta=%-12g rate=%.1f/s\n", family.c_str(),
                    delta, delta / span_s);
      } else {
        std::printf("  %-44s delta=%g\n", family.c_str(), delta);
      }
    }
    for (const auto& [ts, key, value] : run.trajectory) {
      std::printf("  t=+%.2fs %s = %g\n",
                  static_cast<double>(ts - run.first_ts_us) / 1e6,
                  key.c_str(), value);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string family_filter;
  bool nonzero_only = false;
  bool timeline_mode = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--family=", 0) == 0) {
      family_filter = arg.substr(9);
    } else if (arg == "--nonzero") {
      nonzero_only = true;
    } else if (arg == "--timeline") {
      timeline_mode = true;
    } else if (arg == "-h" || arg == "--help") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "metrics_dump: unknown option " << arg << "\n";
      Usage();
      return 2;
    } else if (path.empty()) {
      path = arg;
    } else {
      Usage();
      return 2;
    }
  }
  if (path.empty()) {
    Usage();
    return 2;
  }

  std::ifstream in(path);
  if (!in) {
    std::cerr << "metrics_dump: cannot open " << path << "\n";
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  std::vector<JsonValue> rows;
  dynamast::Status parse =
      dynamast::tools::ParseJsonLines(buffer.str(), &rows);
  if (!parse.ok()) {
    std::cerr << "metrics_dump: " << parse.ToString() << "\n";
    return 2;
  }
  if (rows.empty()) {
    std::cerr << "metrics_dump: no documents in " << path << "\n";
    return 2;
  }
  if (timeline_mode) {
    return RunTimelineMode(rows, family_filter, nonzero_only);
  }

  for (const JsonValue& row : rows) {
    const JsonValue* snapshot = &row;
    if (const JsonValue* m = row.Find("metrics");
        m != nullptr && m->is_object()) {
      // Bench row: print its identity header, then the nested snapshot.
      snapshot = m;
      const JsonValue* report = row.Find("report");
      std::printf("== bench=%s point=%s system=%s", row.GetString("bench").c_str(),
                  row.GetString("point").c_str(),
                  row.GetString("system").c_str());
      if (report != nullptr) {
        std::printf(" committed=%llu errors=%llu tput=%.1f",
                    static_cast<unsigned long long>(
                        report->GetUint64("committed")),
                    static_cast<unsigned long long>(
                        report->GetUint64("errors")),
                    report->GetNumber("throughput"));
      }
      std::printf("\n");
    }
    PrintSnapshot(*snapshot, family_filter, nonzero_only);
  }
  return 0;
}
