// metrics_dump CLI: pretty-prints metrics JSON produced by the bench
// --metrics-out flag (newline-delimited rows) or a raw
// metrics::Registry::SnapshotJson() document. One line per series, in a
// greppable name{label=value,...} = value format:
//
//   metrics_dump metrics.json
//   metrics_dump --family=site_commits metrics.json
//   metrics_dump --nonzero metrics.json | sort
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/json_util.h"

namespace {

using dynamast::tools::JsonValue;

void Usage() {
  std::cerr << "usage: metrics_dump [options] <metrics-json-file>\n"
               "  --family=SUBSTR   only families whose name contains SUBSTR\n"
               "  --nonzero         skip zero-valued counter/gauge series\n";
}

std::string FormatLabels(const JsonValue& series) {
  const JsonValue* labels = series.Find("labels");
  if (labels == nullptr || labels->object.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels->object) {
    if (!first) out += ",";
    first = false;
    out += k + "=" + (v.is_string() ? v.string_value : "?");
  }
  out += "}";
  return out;
}

void PrintSnapshot(const JsonValue& snapshot, const std::string& family_filter,
                   bool nonzero_only) {
  const JsonValue* metrics = snapshot.Find("metrics");
  if (metrics == nullptr || !metrics->is_array()) {
    std::cout << "  (no metrics array)\n";
    return;
  }
  for (const JsonValue& family : metrics->array) {
    const std::string name = family.GetString("name");
    if (!family_filter.empty() &&
        name.find(family_filter) == std::string::npos) {
      continue;
    }
    const std::string type = family.GetString("type");
    const JsonValue* series = family.Find("series");
    if (series == nullptr || !series->is_array()) continue;
    for (const JsonValue& s : series->array) {
      const std::string labels = FormatLabels(s);
      if (type == "histogram") {
        if (nonzero_only && s.GetUint64("count") == 0) continue;
        std::printf(
            "  %s%s count=%llu mean=%.1f p50=%.0f p99=%.0f p999=%.0f "
            "max=%llu\n",
            name.c_str(), labels.c_str(),
            static_cast<unsigned long long>(s.GetUint64("count")),
            s.GetNumber("mean_us"), s.GetNumber("p50_us"),
            s.GetNumber("p99_us"), s.GetNumber("p999_us"),
            static_cast<unsigned long long>(s.GetUint64("max_us")));
      } else {
        const double value = s.GetNumber("value");
        if (nonzero_only && value == 0) continue;
        if (type == "counter") {
          std::printf("  %s%s = %llu\n", name.c_str(), labels.c_str(),
                      static_cast<unsigned long long>(s.GetUint64("value")));
        } else {
          std::printf("  %s%s = %g\n", name.c_str(), labels.c_str(), value);
        }
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string family_filter;
  bool nonzero_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--family=", 0) == 0) {
      family_filter = arg.substr(9);
    } else if (arg == "--nonzero") {
      nonzero_only = true;
    } else if (arg == "-h" || arg == "--help") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "metrics_dump: unknown option " << arg << "\n";
      Usage();
      return 2;
    } else if (path.empty()) {
      path = arg;
    } else {
      Usage();
      return 2;
    }
  }
  if (path.empty()) {
    Usage();
    return 2;
  }

  std::ifstream in(path);
  if (!in) {
    std::cerr << "metrics_dump: cannot open " << path << "\n";
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  std::vector<JsonValue> rows;
  dynamast::Status parse =
      dynamast::tools::ParseJsonLines(buffer.str(), &rows);
  if (!parse.ok()) {
    std::cerr << "metrics_dump: " << parse.ToString() << "\n";
    return 2;
  }
  if (rows.empty()) {
    std::cerr << "metrics_dump: no documents in " << path << "\n";
    return 2;
  }

  for (const JsonValue& row : rows) {
    const JsonValue* snapshot = &row;
    if (const JsonValue* m = row.Find("metrics");
        m != nullptr && m->is_object()) {
      // Bench row: print its identity header, then the nested snapshot.
      snapshot = m;
      const JsonValue* report = row.Find("report");
      std::printf("== bench=%s point=%s system=%s", row.GetString("bench").c_str(),
                  row.GetString("point").c_str(),
                  row.GetString("system").c_str());
      if (report != nullptr) {
        std::printf(" committed=%llu errors=%llu tput=%.1f",
                    static_cast<unsigned long long>(
                        report->GetUint64("committed")),
                    static_cast<unsigned long long>(
                        report->GetUint64("errors")),
                    report->GetNumber("throughput"));
      }
      std::printf("\n");
    }
    PrintSnapshot(*snapshot, family_filter, nonzero_only);
  }
  return 0;
}
