#include "net/sim_network.h"

#include <cstdio>
#include <thread>

#include "common/scheduler.h"

namespace dynamast::net {

const char* TrafficClassName(TrafficClass c) {
  switch (c) {
    case TrafficClass::kClientRequest:
      return "client_request";
    case TrafficClass::kPropagation:
      return "propagation";
    case TrafficClass::kRemastering:
      return "remastering";
    case TrafficClass::kCoordination:
      return "coordination";
    case TrafficClass::kDataShipping:
      return "data_shipping";
    case TrafficClass::kNumClasses:
      break;
  }
  return "unknown";
}

void SimulatedNetwork::RegisterMetrics(metrics::Registry* registry) {
  registry = metrics::Registry::OrGlobal(registry);
  for (size_t i = 0; i < class_metrics_.size(); ++i) {
    const metrics::Labels labels = {
        {"class", TrafficClassName(static_cast<TrafficClass>(i))}};
    class_metrics_[i].messages =
        registry->GetCounter("net_messages_total", labels);
    class_metrics_[i].bytes = registry->GetCounter("net_bytes_total", labels);
  }
  inflight_gauge_ = registry->GetGauge("net_inflight_messages");
  link_lag_gauge_ = registry->GetGauge("net_link_lag_us");
}

void SimulatedNetwork::Send(TrafficClass c, size_t bytes) {
  auto& counter = counters_[static_cast<size_t>(c)];
  counter.messages.fetch_add(1, std::memory_order_relaxed);
  counter.bytes.fetch_add(bytes, std::memory_order_relaxed);
  const ClassMetrics& exported = class_metrics_[static_cast<size_t>(c)];
  if (exported.messages != nullptr) {
    exported.messages->Increment();
    exported.bytes->Increment(bytes);
  }
  // Delivery is a synchronization point even when delay charging is off:
  // schedule fuzzing jitters message arrival order here, and record/replay
  // serialize every delivery decision through the per-network queue.
  DYNAMAST_SCHED_OP(kNetDeliver, sched_uid_);
  if (!options_.charge_delays) return;
  if (inflight_gauge_ != nullptr) {
    inflight_gauge_->Set(static_cast<double>(
        inflight_.fetch_add(1, std::memory_order_relaxed) + 1));
  }
  const auto transmission = options_.per_kilobyte * (bytes / 1024 + 1);
  if (!options_.serialize_link) {
    std::this_thread::sleep_for(options_.one_way_latency + transmission);
  } else {
    // Reserve a slot on the shared wire: transmission occupies the link
    // back-to-back, while propagation latency overlaps across messages.
    std::chrono::steady_clock::time_point done;
    {
      MutexLock lock(link_mu_);
      const auto now = std::chrono::steady_clock::now();
      const auto start = link_busy_until_ > now ? link_busy_until_ : now;
      link_busy_until_ = start + transmission;
      done = link_busy_until_;
      if (link_lag_gauge_ != nullptr) {
        // Delivery lag: how long a message appended now waits for the wire.
        link_lag_gauge_->Set(
            std::chrono::duration<double, std::micro>(start - now).count());
      }
    }
    std::this_thread::sleep_until(done + options_.one_way_latency);
  }
  if (inflight_gauge_ != nullptr) {
    inflight_gauge_->Set(static_cast<double>(
        inflight_.fetch_sub(1, std::memory_order_relaxed) - 1));
  }
}

void SimulatedNetwork::RoundTrip(TrafficClass c, size_t request_bytes,
                                 size_t response_bytes) {
  Send(c, request_bytes);
  Send(c, response_bytes);
}

uint64_t SimulatedNetwork::MessageCount(TrafficClass c) const {
  return counters_[static_cast<size_t>(c)].messages.load(
      std::memory_order_relaxed);
}

uint64_t SimulatedNetwork::ByteCount(TrafficClass c) const {
  return counters_[static_cast<size_t>(c)].bytes.load(
      std::memory_order_relaxed);
}

uint64_t SimulatedNetwork::TotalMessages() const {
  uint64_t total = 0;
  for (const auto& counter : counters_) {
    total += counter.messages.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t SimulatedNetwork::TotalBytes() const {
  uint64_t total = 0;
  for (const auto& counter : counters_) {
    total += counter.bytes.load(std::memory_order_relaxed);
  }
  return total;
}

void SimulatedNetwork::ResetCounters() {
  for (auto& counter : counters_) {
    counter.messages.store(0, std::memory_order_relaxed);
    counter.bytes.store(0, std::memory_order_relaxed);
  }
}

std::string SimulatedNetwork::ReportCounters() const {
  std::string out;
  char buf[160];
  for (size_t i = 0; i < counters_.size(); ++i) {
    const auto c = static_cast<TrafficClass>(i);
    std::snprintf(buf, sizeof(buf), "%-16s %12llu msgs %12.3f MB\n",
                  TrafficClassName(c),
                  static_cast<unsigned long long>(MessageCount(c)),
                  static_cast<double>(ByteCount(c)) / (1024.0 * 1024.0));
    out += buf;
  }
  return out;
}

}  // namespace dynamast::net
