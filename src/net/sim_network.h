#ifndef DYNAMAST_NET_SIM_NETWORK_H_
#define DYNAMAST_NET_SIM_NETWORK_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "common/debug_mutex.h"
#include "common/metrics.h"

namespace dynamast::net {

/// Categories of network traffic, matching the breakdown reported in the
/// paper's Appendix D (stored-procedure arguments, refresh propagation,
/// remastering metadata) plus the coordination traffic the baselines incur.
enum class TrafficClass : int {
  kClientRequest = 0,   // client -> selector / site RPCs and responses
  kPropagation,         // replication manager refresh traffic
  kRemastering,         // release / grant metadata messages
  kCoordination,        // 2PC prepare/commit rounds (baselines)
  kDataShipping,        // LEAP data localization transfers
  kNumClasses,
};

const char* TrafficClassName(TrafficClass c);

/// SimulatedNetwork stands in for the Thrift RPC fabric and the 10 GbE
/// network of the paper's testbed (see DESIGN.md, substitutions table).
///
/// Every message charges the calling thread a one-way latency plus a
/// per-byte transmission cost (both configurable, both may be zero for
/// pure-logic tests), and increments per-class message/byte counters that
/// the breakdown experiment (E10) reports.
///
/// Costs are paid with a sleeping wait, not a busy wait, so hundreds of
/// in-flight "RPCs" coexist on a single core; throughput then follows
/// Little's law exactly as in a real latency-bound deployment.
class SimulatedNetwork {
 public:
  struct Options {
    /// One-way message latency. The paper's testbed round trips are in the
    /// low hundreds of microseconds; 250us one-way is the default here.
    std::chrono::microseconds one_way_latency{250};
    /// Transmission cost per kilobyte (models the 10 Gbit/s link).
    std::chrono::nanoseconds per_kilobyte{800};
    /// If false, no delay is charged (unit tests); counters still update.
    bool charge_delays = true;
    /// If true, transmission time is serialized on a single shared link
    /// (senders queue for the wire, as on one NIC) instead of every sender
    /// paying its transmission cost independently (infinite parallel
    /// bandwidth). Propagation latency still overlaps across messages.
    bool serialize_link = false;
  };

  SimulatedNetwork() : SimulatedNetwork(Options{}) {}
  explicit SimulatedNetwork(const Options& options) : options_(options) {}

  SimulatedNetwork(const SimulatedNetwork&) = delete;
  SimulatedNetwork& operator=(const SimulatedNetwork&) = delete;

  /// Charges the cost of sending one message of `bytes` payload and blocks
  /// the caller for the simulated delivery time.
  DYNAMAST_BLOCKING void Send(TrafficClass c, size_t bytes)
      DYNAMAST_EXCLUDES(link_mu_);

  /// A full round trip: request of `request_bytes` plus response of
  /// `response_bytes`.
  DYNAMAST_BLOCKING void RoundTrip(TrafficClass c, size_t request_bytes,
                                   size_t response_bytes);

  uint64_t MessageCount(TrafficClass c) const;
  uint64_t ByteCount(TrafficClass c) const;
  uint64_t TotalMessages() const;
  uint64_t TotalBytes() const;
  void ResetCounters();

  const Options& options() const { return options_; }

  /// One line per traffic class: "propagation: 12345 msgs, 1.2 MB".
  std::string ReportCounters() const;

  /// Registers this network's per-class counters and delivery gauges with
  /// `registry` (Cluster does this at construction). Call before traffic
  /// flows; handles are resolved once and used lock-free afterwards.
  void RegisterMetrics(metrics::Registry* registry);

 private:
  Options options_;
  struct ClassMetrics {
    metrics::Counter* messages = nullptr;
    metrics::Counter* bytes = nullptr;
  };
  std::array<ClassMetrics, static_cast<size_t>(TrafficClass::kNumClasses)>
      class_metrics_{};
  // Messages currently in flight (sleeping out their delivery time) and,
  // in serialize_link mode, how far behind the shared wire is running.
  metrics::Gauge* inflight_gauge_ = nullptr;
  metrics::Gauge* link_lag_gauge_ = nullptr;
  std::atomic<int64_t> inflight_{0};
  struct Counter {
    std::atomic<uint64_t> messages{0};
    std::atomic<uint64_t> bytes{0};
  };
  std::array<Counter, static_cast<size_t>(TrafficClass::kNumClasses)>
      counters_;
  // Serialized-link state: when the wire frees up. Leaf lock, held only to
  // reserve a transmission slot (the sleep happens outside the lock).
  DebugMutex link_mu_{"net.link"};
  std::chrono::steady_clock::time_point link_busy_until_
      DYNAMAST_GUARDED_BY(link_mu_){};
  // Scheduler identity of this network's delivery decision stream.
  uint32_t sched_uid_ = DYNAMAST_SCHED_REGISTER("net.deliver");
};

}  // namespace dynamast::net

#endif  // DYNAMAST_NET_SIM_NETWORK_H_
