#ifndef DYNAMAST_SITE_ADMISSION_GATE_H_
#define DYNAMAST_SITE_ADMISSION_GATE_H_

#include <cstdint>
#include <mutex>

#include "common/debug_mutex.h"
#include "common/metrics.h"

namespace dynamast::site {

/// Bounded admission control for a data site: at most `slots` transactions
/// execute concurrently; excess arrivals queue. Together with the simulated
/// per-operation service time this models a site's CPU capacity, producing
/// the saturation behaviour (queueing delay growth) that makes the
/// single-master site a bottleneck in the paper's experiments.
class AdmissionGate {
 public:
  explicit AdmissionGate(size_t slots) : free_slots_(slots) {}

  AdmissionGate(const AdmissionGate&) = delete;
  AdmissionGate& operator=(const AdmissionGate&) = delete;

  /// Blocks until a slot is free, then occupies it.
  DYNAMAST_BLOCKING void Enter() DYNAMAST_EXCLUDES(mu_);

  /// Frees a slot.
  void Exit() DYNAMAST_EXCLUDES(mu_);

  /// Number of arrivals currently waiting for a slot (diagnostics).
  uint64_t QueueDepth() const DYNAMAST_EXCLUDES(mu_);

  /// Wires exported metrics: the slot-wait latency histogram and a gauge
  /// mirroring the queue depth. Either may be null. Call before traffic.
  void SetMetrics(metrics::Histogram* wait_us, metrics::Gauge* queue_depth)
      DYNAMAST_EXCLUDES(mu_);

  /// RAII slot occupancy.
  class Scoped {
   public:
    explicit Scoped(AdmissionGate& gate) : gate_(gate) { gate_.Enter(); }
    ~Scoped() { gate_.Exit(); }
    Scoped(const Scoped&) = delete;
    Scoped& operator=(const Scoped&) = delete;

   private:
    AdmissionGate& gate_;
  };

 private:
  mutable DebugMutex mu_{"site.admission_gate"};
  DebugCondVar cv_;
  size_t free_slots_ DYNAMAST_GUARDED_BY(mu_);
  uint64_t waiting_ DYNAMAST_GUARDED_BY(mu_) = 0;
  // Scheduler identity of this gate's slot-grant decision stream.
  uint32_t sched_uid_ = DYNAMAST_SCHED_REGISTER("gate.grant");
  metrics::Histogram* wait_us_ DYNAMAST_GUARDED_BY(mu_) = nullptr;
  metrics::Gauge* queue_depth_ DYNAMAST_GUARDED_BY(mu_) = nullptr;
};

}  // namespace dynamast::site

#endif  // DYNAMAST_SITE_ADMISSION_GATE_H_
