#ifndef DYNAMAST_SITE_SITE_CONFIG_H_
#define DYNAMAST_SITE_SITE_CONFIG_H_

#include <chrono>
#include <cstdint>

#include "common/key.h"
#include "storage/storage_engine.h"

namespace dynamast::site {

/// Configuration of one data site. The worker-slot count and per-operation
/// service time stand in for the paper's 12-core data site machines (see
/// DESIGN.md): a site can execute at most `worker_slots` transactions
/// concurrently, each read/write operation costing `per_op_service_time`
/// of simulated CPU, so an overloaded site queues — which is precisely the
/// single-master bottleneck the paper measures.
struct SiteOptions {
  SiteId site_id = 0;
  uint32_t num_sites = 1;

  /// Concurrent transaction slots ("cores") per site.
  size_t worker_slots = 4;

  /// Simulated CPU cost of one snapshot read inside a transaction.
  std::chrono::microseconds read_op_cost{10};

  /// Simulated CPU cost of one write (index update, version creation,
  /// logging) inside a transaction. Writes are far more expensive than
  /// reads in update-path cost, which is what makes a single master site
  /// saturate under update load.
  std::chrono::microseconds write_op_cost{500};

  /// Simulated cost of applying one propagated write as part of a refresh
  /// transaction. Charged on the applier (delaying further refresh
  /// application — replication lag), not on a worker slot.
  std::chrono::microseconds apply_op_cost{100};

  /// How long a transaction waits for a record write lock before timing
  /// out (write-write conflicts block rather than abort, Section V-A1).
  std::chrono::milliseconds lock_timeout{2000};

  /// How long begin waits for session freshness / grant minimum versions.
  std::chrono::milliseconds freshness_timeout{5000};

  /// If true, write transactions abort with NotMaster when the site does
  /// not master a write partition. DynaMast and single-master rely on
  /// this; partition-store disables it (static ownership checked by the
  /// router instead).
  bool enforce_mastership = true;

  storage::StorageEngine::Options storage;
};

}  // namespace dynamast::site

#endif  // DYNAMAST_SITE_SITE_CONFIG_H_
