#include "site/site_manager.h"

#include <algorithm>
#include <string>
#include <thread>

#include "common/invariant_checker.h"
#include "common/scheduler.h"
#include "common/latency_recorder.h"

namespace dynamast::site {

namespace {
// How long an applier blocks on the log before re-checking for shutdown.
constexpr std::chrono::milliseconds kApplierPollInterval{100};
// Max refresh records applied per simulated network delivery (Kafka-style
// consumer batching; see DESIGN.md on propagation-delay modelling).
constexpr size_t kApplierBatchSize = 64;
}  // namespace

SiteManager::SiteManager(const SiteOptions& options,
                         const Partitioner* partitioner,
                         log::LogManager* logs,
                         net::SimulatedNetwork* network,
                         history::Recorder* history,
                         metrics::Registry* metrics,
                         trace::Tracer* tracer)
    : options_(options),
      partitioner_(partitioner),
      logs_(logs),
      network_(network),
      history_(history),
      tracer_(tracer),
      engine_(options.storage),
      gate_(options.worker_slots),
      svv_(options.num_sites) {
  if (metrics == nullptr) return;
  const std::string site = std::to_string(options_.site_id);
  exported_.commits_update = metrics->GetCounter(
      "site_commits_total", {{"site", site}, {"kind", "update"}});
  exported_.commits_readonly = metrics->GetCounter(
      "site_commits_total", {{"site", site}, {"kind", "readonly"}});
  for (size_t c = 0; c < kNumStatusCodes; ++c) {
    exported_.aborts_by_reason[c] = metrics->GetCounter(
        "site_aborts_total",
        {{"site", site},
         {"reason", StatusCodeName(static_cast<Status::Code>(c))}});
  }
  exported_.lock_wait_us =
      metrics->GetHistogram("site_lock_wait_us", {{"site", site}});
  exported_.vv_wait_us =
      metrics->GetHistogram("site_vv_wait_us", {{"site", site}});
  exported_.refresh_applied =
      metrics->GetCounter("site_refresh_applied_total", {{"site", site}});
  exported_.refresh_delay_us =
      metrics->GetHistogram("site_refresh_delay_us", {{"site", site}});
  exported_.releases =
      metrics->GetCounter("site_releases_total", {{"site", site}});
  exported_.grants = metrics->GetCounter("site_grants_total", {{"site", site}});
  exported_.mastership_transitions = metrics->GetCounter(
      "site_mastership_transitions_total", {{"site", site}});
  exported_.pruned_versions =
      metrics->GetCounter("storage_pruned_versions_total", {{"site", site}});
  exported_.version_chain_len =
      metrics->GetHistogram("storage_version_chain_len", {{"site", site}});
  gate_.SetMetrics(
      metrics->GetHistogram("site_admission_wait_us", {{"site", site}}),
      metrics->GetGauge("site_admission_queue_depth", {{"site", site}}));
}

void SiteManager::InstallVersion(const RecordKey& key, SiteId origin,
                                 uint64_t seq, std::string value,
                                 InstallBatch* batch) {
  storage::InstallStats stats;
  const Status s = engine_.Install(key, origin, seq, std::move(value), &stats);
  DYNAMAST_INVARIANT(s.ok(), "version install failed for " + key.ToString() +
                                 ": " + s.ToString());
  (void)s;
  batch->chain_lens.push_back(stats.chain_len);
  if (stats.pruned) ++batch->pruned;
}

void SiteManager::FlushInstallMetrics(const InstallBatch& batch) {
  if (exported_.version_chain_len != nullptr) {
    for (size_t len : batch.chain_lens) {
      exported_.version_chain_len->Observe(static_cast<uint64_t>(len));
    }
  }
  if (batch.pruned > 0 && exported_.pruned_versions != nullptr) {
    exported_.pruned_versions->Increment(batch.pruned);
  }
}

void SiteManager::CountAbort(const Status& reason) {
  counters_.aborts.fetch_add(1, std::memory_order_relaxed);
  const size_t code = static_cast<size_t>(reason.code());
  if (code < kNumStatusCodes && exported_.aborts_by_reason[code] != nullptr) {
    exported_.aborts_by_reason[code]->Increment();
  }
}

SiteManager::~SiteManager() { Stop(); }

void SiteManager::Start() {
  if (started_) return;
  started_ = true;
  for (SiteId origin = 0; origin < options_.num_sites; ++origin) {
    if (origin == options_.site_id) continue;
    appliers_.emplace_back([this, origin] {
      sched::ThreadGuard sched_guard("site/" +
                                     std::to_string(options_.site_id) +
                                     "/applier/" + std::to_string(origin));
      ApplierLoop(origin);
    });
  }
}

void SiteManager::Stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) {
    // Already stopping; just join if needed.
  }
  state_cv_.notify_all();
  sched::ScopedBlocked blocked;
  for (auto& t : appliers_) {
    if (t.joinable()) t.join();
  }
  appliers_.clear();
}

VersionVector SiteManager::CurrentVersion() const {
  MutexLock guard(state_mu_);
  return svv_;
}

bool SiteManager::FreshnessProbe(const VersionVector& session,
                                 uint64_t* total) const {
  MutexLock guard(state_mu_);
  if (total != nullptr) *total = svv_.Total();
  return svv_.DominatesOrEquals(session);
}

Status SiteManager::WaitForVersion(const VersionVector& min) const {
  const auto deadline =
      std::chrono::steady_clock::now() + options_.freshness_timeout;
  MutexLock lock(state_mu_);
  while (!svv_.DominatesOrEquals(min)) {
    if (stopping_.load(std::memory_order_acquire)) return Status::Unavailable("site stopping");
    if (state_cv_.wait_until(state_mu_, deadline) == std::cv_status::timeout &&
        !svv_.DominatesOrEquals(min)) {
      return Status::TimedOut("freshness wait: site at " + svv_.ToString() +
                              " needs " + min.ToString());
    }
  }
  return Status::OK();
}

void SiteManager::ChargeOps(size_t reads, size_t writes) const {
  ChargeDuration(options_.read_op_cost * reads +
                 options_.write_op_cost * writes);
}

void SiteManager::ChargeDuration(std::chrono::nanoseconds d) const {
  if (d.count() <= 0) return;
  std::this_thread::sleep_for(d);
}

// ---------------------------------------------------------------------
// Transaction lifecycle
// ---------------------------------------------------------------------

Status SiteManager::BeginTransaction(const TxnOptions& opts, Transaction* txn) {
  if (!opts.min_begin_version.empty()) {
    // Strong-session freshness wait: how long this site lagged behind the
    // session's observed frontier (the visible symptom of refresh delay).
    trace::Span span(tracer_, "vv_wait", "txn", options_.site_id, opts.client);
    span.SetTxn(opts.client, opts.client_txn);
    Stopwatch watch;
    Status s = WaitForVersion(opts.min_begin_version);
    if (exported_.vv_wait_us != nullptr) {
      exported_.vv_wait_us->Observe(watch.ElapsedMicros());
    }
    if (!s.ok()) return s;
  }

  txn->site_ = this;
  txn->id_ = next_txn_id_.fetch_add(1, std::memory_order_relaxed);
  txn->read_only_ = opts.read_only;
  txn->client_ = opts.client;
  txn->client_txn_ = opts.client_txn;
  txn->staged_.clear();
  txn->locked_keys_.clear();
  txn->write_partitions_.clear();
  txn->observed_reads_.clear();
  txn->op_count_ = 0;

  if (opts.read_only) {
    MutexLock guard(state_mu_);
    txn->begin_version_ = svv_;
    // Strong-session SI: the begin snapshot must include everything the
    // session has already observed (WaitForVersion blocked until it did,
    // and svv only grows).
    DYNAMAST_INVARIANT(
        txn->begin_version_.DominatesOrEquals(opts.min_begin_version),
        "read snapshot " + txn->begin_version_.ToString() +
            " does not dominate session minimum " +
            opts.min_begin_version.ToString());
    txn->active_ = true;
    return Status::OK();
  }

  // Determine write partitions (deduplicated).
  std::vector<PartitionId> partitions;
  partitions.reserve(opts.write_keys.size());
  for (const RecordKey& key : opts.write_keys) {
    partitions.push_back(partitioner_->PartitionOf(key));
  }
  std::sort(partitions.begin(), partitions.end());
  partitions.erase(std::unique(partitions.begin(), partitions.end()),
                   partitions.end());

  // Admission: mastership check + active-writer registration must be
  // atomic with respect to Release draining this partition.
  {
    MutexLock guard(state_mu_);
    if (options_.enforce_mastership && !opts.skip_mastership_check) {
      for (PartitionId p : partitions) {
        if (mastered_.find(p) == mastered_.end()) {
          Status s = Status::NotMaster("site " + std::to_string(site_id()) +
                                       " does not master partition " +
                                       std::to_string(p));
          CountAbort(s);
          return s;
        }
      }
    }
    for (PartitionId p : partitions) active_writers_[p]++;
    txn->write_partitions_ = std::move(partitions);
  }

  // Write-write mutual exclusion: lock the declared write set in sorted
  // order (Section V-A1 — blocking locks instead of aborts).
  const auto deadline = std::chrono::steady_clock::now() + options_.lock_timeout;
  Status s;
  {
    trace::Span span(tracer_, "lock_wait", "txn", options_.site_id,
                     opts.client);
    span.SetTxn(opts.client, opts.client_txn);
    Stopwatch watch;
    s = engine_.lock_manager().AcquireAll(opts.write_keys, txn->id_, deadline);
    if (exported_.lock_wait_us != nullptr) {
      exported_.lock_wait_us->Observe(watch.ElapsedMicros());
    }
  }
  if (!s.ok()) {
    MutexLock guard(state_mu_);
    for (PartitionId p : txn->write_partitions_) {
      if (--active_writers_[p] == 0) active_writers_.erase(p);
    }
    state_cv_.notify_all();
    CountAbort(s);
    return s;
  }
  txn->locked_keys_ = opts.write_keys;
  std::sort(txn->locked_keys_.begin(), txn->locked_keys_.end());
  txn->locked_keys_.erase(
      std::unique(txn->locked_keys_.begin(), txn->locked_keys_.end()),
      txn->locked_keys_.end());

  // Begin snapshot is taken after lock acquisition (Appendix A, Case 1:
  // if T1 locks after T2 commits, T2's commit is in T1's begin vector).
  {
    MutexLock guard(state_mu_);
    txn->begin_version_ = svv_;
    DYNAMAST_INVARIANT(
        txn->begin_version_.DominatesOrEquals(opts.min_begin_version),
        "write snapshot " + txn->begin_version_.ToString() +
            " does not dominate begin minimum " +
            opts.min_begin_version.ToString());
  }
  txn->active_ = true;
  return Status::OK();
}

Status SiteManager::TxnGet(Transaction* txn, const RecordKey& key,
                           std::string* value) {
  txn->op_count_++;
  auto it = txn->staged_.find(key);
  if (it != txn->staged_.end()) {
    *value = it->second.first;
    return Status::OK();
  }
  if (history_ == nullptr) {
    return engine_.Read(key, txn->begin_version_, value);
  }
  // History recording: capture which committed version this read observed
  // (the auditor attributes it to the installing transaction).
  storage::VersionStamp stamp;
  Status s = engine_.Read(key, txn->begin_version_, value, &stamp);
  if (s.ok()) {
    txn->observed_reads_.push_back(
        history::ReadObservation{key, stamp.origin, stamp.seq});
  }
  return s;
}

Status SiteManager::TxnPut(Transaction* txn, const RecordKey& key,
                           std::string value, bool is_insert) {
  txn->op_count_++;
  auto staged_it = txn->staged_.find(key);
  const bool already_staged = staged_it != txn->staged_.end();
  if (!already_staged && !engine_.lock_manager().Holds(key, txn->id_)) {
    if (!is_insert) {
      return Status::InvalidArgument("write to undeclared key " +
                                     key.ToString());
    }
    // Dynamic insert: register its partition and lock the key.
    const PartitionId p = partitioner_->PartitionOf(key);
    {
      MutexLock guard(state_mu_);
      if (options_.enforce_mastership &&
          mastered_.find(p) == mastered_.end()) {
        return Status::NotMaster("insert into unmastered partition " +
                                 std::to_string(p));
      }
      if (std::find(txn->write_partitions_.begin(),
                    txn->write_partitions_.end(),
                    p) == txn->write_partitions_.end()) {
        active_writers_[p]++;
        txn->write_partitions_.push_back(p);
      }
    }
    const auto deadline =
        std::chrono::steady_clock::now() + options_.lock_timeout;
    Status s = engine_.lock_manager().Acquire(key, txn->id_, deadline);
    if (!s.ok()) return s;
    txn->locked_keys_.push_back(key);
  }
  if (already_staged) {
    staged_it->second.first = std::move(value);
  } else {
    txn->staged_.emplace(key, std::make_pair(std::move(value), is_insert));
  }
  return Status::OK();
}

history::HistoryEvent SiteManager::MakeTxnEvent(
    const Transaction& txn, history::EventKind kind) const {
  history::HistoryEvent event;
  event.kind = kind;
  event.site = site_id();
  event.client = txn.client_;
  event.client_txn = txn.client_txn_;
  event.read_only = txn.read_only_;
  event.begin = txn.begin_version_;
  event.reads = txn.observed_reads_;
  event.writes.reserve(txn.staged_.size());
  for (const auto& [key, staged] : txn.staged_) {
    event.writes.push_back(
        history::WriteObservation{key, partitioner_->PartitionOf(key)});
  }
  return event;
}

Status SiteManager::Commit(Transaction* txn, VersionVector* commit_version) {
  if (!txn->active_) return Status::InvalidArgument("transaction not active");
  txn->active_ = false;

  if (txn->read_only_ || txn->staged_.empty()) {
    // Nothing to install; release any locks and unregister.
    engine_.lock_manager().ReleaseAll(txn->locked_keys_, txn->id_);
    if (!txn->write_partitions_.empty()) {
      MutexLock guard(state_mu_);
      for (PartitionId p : txn->write_partitions_) {
        auto it = active_writers_.find(p);
        if (it != active_writers_.end() && --it->second == 0) {
          active_writers_.erase(it);
        }
      }
      state_cv_.notify_all();
    }
    *commit_version = txn->begin_version_;
    if (history_ != nullptr) {
      history::HistoryEvent event =
          MakeTxnEvent(*txn, history::EventKind::kCommit);
      event.commit = *commit_version;
      history_->Record(std::move(event));
    }
    if (exported_.commits_readonly != nullptr) {
      exported_.commits_readonly->Increment();
    }
    return Status::OK();
  }

  log::LogRecord record;
  record.type = log::LogRecord::Type::kUpdate;
  record.origin = site_id();
  record.writes.reserve(txn->staged_.size());
  for (auto& [key, staged] : txn->staged_) {
    record.writes.push_back(
        log::WriteEntry{key, std::move(staged.first), staged.second});
  }

  // History-event construction copies the read/write sets (allocating);
  // only the commit vector and sequence — unknown until the lock is held —
  // are filled in inside the critical section.
  history::HistoryEvent event;
  if (history_ != nullptr) {
    event = MakeTxnEvent(*txn, history::EventKind::kCommit);
  }
  InstallBatch installs;
  installs.chain_lens.reserve(record.writes.size());

  {
    MutexLock guard(state_mu_);
    const uint64_t seq = svv_[site_id()] + 1;
    // Commit timestamp: begin vector with this site's slot set to the new
    // local sequence number (Section III-A).
    VersionVector tvv = txn->begin_version_;
    tvv[site_id()] = seq;
    // svv monotonicity: local commits advance this site's slot by exactly
    // one, and the commit timestamp dominates the begin snapshot.
    DYNAMAST_INVARIANT(tvv.DominatesOrEquals(txn->begin_version_),
                       "commit timestamp " + tvv.ToString() +
                           " regressed below begin snapshot " +
                           txn->begin_version_.ToString());
    record.tvv = tvv;
    // Serialize before installation: the install loop below consumes the
    // write values by move, so the propagation payload must be captured
    // first. The append timestamp rides along so appliers can measure
    // end-to-end refresh delay (the measured input to Eq. 4/5).
    record.append_ts_us = metrics::NowMicros();
    std::string payload = record.Serialize();
    // Install versions before publishing the new svv so no concurrent
    // snapshot can observe seq without the versions being readable. The
    // record is dead after serialization, so each value moves into the
    // version store instead of copying.
    for (log::WriteEntry& w : record.writes) {
      InstallVersion(w.key, site_id(), seq, std::move(w.value), &installs);
    }
    // Append to the redo/propagation log inside the critical section so
    // topic order equals commit order (appliers rely on it).
    logs_->TopicFor(site_id())->Append(std::move(payload));
    svv_[site_id()] = seq;
    for (PartitionId p : txn->write_partitions_) {
      auto it = active_writers_.find(p);
      if (it != active_writers_.end() && --it->second == 0) {
        active_writers_.erase(it);
      }
    }
    *commit_version = tvv;
    if (history_ != nullptr) {
      // Record inside the critical section so the recorder's global order
      // is consistent with this site's commit order (and with any release
      // marker that drains this partition).
      event.commit = tvv;
      event.installed_seq = seq;
      history_->Record(std::move(event));
    }
    state_cv_.notify_all();
  }

  FlushInstallMetrics(installs);
  engine_.lock_manager().ReleaseAll(txn->locked_keys_, txn->id_);
  counters_.local_commits.fetch_add(1, std::memory_order_relaxed);
  if (exported_.commits_update != nullptr) {
    exported_.commits_update->Increment();
  }
  return Status::OK();
}

void SiteManager::Abort(Transaction* txn, const Status& reason) {
  if (!txn->active_) return;
  txn->active_ = false;
  if (history_ != nullptr) {
    history_->Record(MakeTxnEvent(*txn, history::EventKind::kAbort));
  }
  txn->staged_.clear();
  engine_.lock_manager().ReleaseAll(txn->locked_keys_, txn->id_);
  if (!txn->write_partitions_.empty()) {
    MutexLock guard(state_mu_);
    for (PartitionId p : txn->write_partitions_) {
      auto it = active_writers_.find(p);
      if (it != active_writers_.end() && --it->second == 0) {
        active_writers_.erase(it);
      }
    }
    state_cv_.notify_all();
  }
  CountAbort(reason);
}

// ---------------------------------------------------------------------
// Mastership: release / grant
// ---------------------------------------------------------------------

void SiteManager::SetMasterOf(PartitionId partition, bool is_master) {
  MutexLock guard(state_mu_);
  if (is_master) {
    mastered_.insert(partition);
  } else {
    mastered_.erase(partition);
  }
}

bool SiteManager::IsMasterOf(PartitionId partition) const {
  MutexLock guard(state_mu_);
  return mastered_.find(partition) != mastered_.end();
}

std::vector<PartitionId> SiteManager::MasteredPartitions() const {
  MutexLock guard(state_mu_);
  return std::vector<PartitionId>(mastered_.begin(), mastered_.end());
}

VersionVector SiteManager::AppendMarkerLocked(
    log::LogRecord::Type type, const std::vector<PartitionId>& partitions,
    SiteId peer) {
  const uint64_t seq = svv_[site_id()] + 1;
  log::LogRecord record;
  record.type = type;
  record.origin = site_id();
  record.tvv = svv_;
  record.tvv[site_id()] = seq;
  record.partitions = partitions;
  record.transfer_peer = peer;
  record.append_ts_us = metrics::NowMicros();
  logs_->TopicFor(site_id())->Append(record.Serialize());
  svv_[site_id()] = seq;
  state_cv_.notify_all();
  return svv_;
}

Status SiteManager::Release(const std::vector<PartitionId>& partitions,
                            SiteId to_site, VersionVector* release_version) {
  trace::Span span(tracer_, "release", "remaster", options_.site_id, to_site);
  span.AddNum("partitions", static_cast<double>(partitions.size()));
  const auto deadline =
      std::chrono::steady_clock::now() + options_.freshness_timeout;
  {
    MutexLock lock(state_mu_);
    for (PartitionId p : partitions) {
      if (mastered_.find(p) == mastered_.end()) {
        return Status::NotMaster("release of unmastered partition " +
                                 std::to_string(p));
      }
    }
    // Stop admitting new write transactions on these partitions, then wait
    // for in-flight writers to drain ("waits for any ongoing transactions
    // writing the data to finish", Section III-B).
    for (PartitionId p : partitions) mastered_.erase(p);
    auto drained = [&] {
      for (PartitionId p : partitions) {
        if (active_writers_.count(p) > 0) return false;
      }
      return true;
    };
    while (!drained()) {
      if (stopping_.load(std::memory_order_acquire)) {
        for (PartitionId p : partitions) mastered_.insert(p);
        return Status::Unavailable("site stopping");
      }
      if (state_cv_.wait_until(state_mu_, deadline) ==
              std::cv_status::timeout &&
          !drained()) {
        for (PartitionId p : partitions) mastered_.insert(p);
        return Status::TimedOut("release drain");
      }
    }
    *release_version =
        AppendMarkerLocked(log::LogRecord::Type::kRelease, partitions, to_site);
    if (history_ != nullptr) {
      history::HistoryEvent event;
      event.kind = history::EventKind::kRelease;
      event.site = site_id();
      event.commit = *release_version;
      event.installed_seq = (*release_version)[site_id()];
      event.partitions = partitions;
      event.peer = to_site;
      history_->Record(std::move(event));
    }
  }
  counters_.releases.fetch_add(1, std::memory_order_relaxed);
  if (exported_.releases != nullptr) exported_.releases->Increment();
  return Status::OK();
}

Status SiteManager::Grant(const std::vector<PartitionId>& partitions,
                          SiteId from_site,
                          const VersionVector& release_version,
                          VersionVector* grant_version) {
  trace::Span span(tracer_, "grant", "remaster", options_.site_id, from_site);
  span.AddNum("partitions", static_cast<double>(partitions.size()));
#if defined(DYNAMAST_BREAK_SI) && DYNAMAST_BREAK_SI
  // Deliberately broken build (validates tools/si_checker): take
  // mastership without waiting for the released site's updates to be
  // applied here. The first writer on the new master can then begin below
  // the release point — exactly the remastering-window anomaly the
  // auditor's grant check detects.
#else
  // Wait until every update up to the point of release has been applied
  // here, so the first transaction on the new master sees all prior writes
  // to the remastered items.
  Status s = WaitForVersion(release_version);
  if (!s.ok()) return s;
#endif
  {
    MutexLock guard(state_mu_);
    *grant_version =
        AppendMarkerLocked(log::LogRecord::Type::kGrant, partitions, from_site);
#if !defined(DYNAMAST_BREAK_SI) || !DYNAMAST_BREAK_SI
    // The grant point must include every update committed before the
    // release, so the first transaction on the new master reads them all.
    DYNAMAST_INVARIANT(grant_version->DominatesOrEquals(release_version),
                       "grant vector " + grant_version->ToString() +
                           " does not dominate release vector " +
                           release_version.ToString());
#endif
    if (history_ != nullptr) {
      history::HistoryEvent event;
      event.kind = history::EventKind::kGrant;
      event.site = site_id();
      event.commit = *grant_version;
      event.installed_seq = (*grant_version)[site_id()];
      event.partitions = partitions;
      event.peer = from_site;
      event.release_version = release_version;
      history_->Record(std::move(event));
    }
    for (PartitionId p : partitions) mastered_.insert(p);
  }
  counters_.grants.fetch_add(1, std::memory_order_relaxed);
  if (exported_.grants != nullptr) exported_.grants->Increment();
  // Each granted partition is one mastership transition (the convergence
  // tracker's per-partition unit; si_checker reconciles this against the
  // history's grant events).
  if (exported_.mastership_transitions != nullptr) {
    exported_.mastership_transitions->Increment(partitions.size());
  }
  return Status::OK();
}

// ---------------------------------------------------------------------
// Refresh application (Eq. 1)
// ---------------------------------------------------------------------

bool SiteManager::ApplyRefreshRecord(log::LogRecord record) {
  const SiteId origin = record.origin;
  const uint64_t seq = record.tvv[origin];
  // Span covers the Eq. 1 dependency wait plus version installation; tid
  // is the origin site so one applier lane shows per origin in the viewer.
  trace::Span span(tracer_, "replicate", "replication", options_.site_id,
                   origin);
  span.AddNum("seq", static_cast<double>(seq));
  span.AddNum("writes", static_cast<double>(record.writes.size()));
  InstallBatch installs;
  installs.chain_lens.reserve(record.writes.size());
  {
    MutexLock lock(state_mu_);
    // Update application rule, Eq. 1: all cross-origin dependencies applied
    // and this record is the next in the origin's commit order.
    auto applicable = [&] {
      if (svv_[origin] != seq - 1) return false;
      for (size_t k = 0; k < record.tvv.size(); ++k) {
        if (k == origin) continue;
        if (svv_[k] < record.tvv[k]) return false;
      }
      return true;
    };
    while (!applicable()) {
      if (stopping_.load(std::memory_order_acquire)) return false;
      state_cv_.wait_for(state_mu_, kApplierPollInterval);
    }
    // Update application rule (Eq. 1): the record is the next in its
    // origin's commit order and all its cross-origin dependencies are
    // already applied, so the svv advances monotonically (one step in the
    // origin slot, no other slot moves).
    DYNAMAST_INVARIANT(record.tvv.size() == svv_.size(),
                       "refresh tvv " + record.tvv.ToString() +
                           " has wrong dimension for svv " + svv_.ToString());
    DYNAMAST_INVARIANT(svv_[origin] + 1 == seq,
                       "refresh from origin " + std::to_string(origin) +
                           " seq " + std::to_string(seq) +
                           " is not dense after svv " + svv_.ToString());
    for (log::WriteEntry& w : record.writes) {
      InstallVersion(w.key, origin, seq, std::move(w.value), &installs);
    }
    // Markers carry no writes; applying them just advances the origin slot,
    // preserving the dense per-origin sequence.
    svv_[origin] = seq;
    state_cv_.notify_all();
  }
  // Metric emission happens after svv publication: the refresh is already
  // visible to waiters, and the histogram leaf locks stay out of the
  // applier's critical section.
  FlushInstallMetrics(installs);
  counters_.refresh_applied.fetch_add(1, std::memory_order_relaxed);
  if (exported_.refresh_applied != nullptr) {
    exported_.refresh_applied->Increment();
  }
  if (exported_.refresh_delay_us != nullptr && record.append_ts_us > 0) {
    // End-to-end refresh delay: origin append to local visibility. Both
    // ends use the shared process clock (metrics::NowMicros), so the
    // difference is exact; clamp anyway in case of sub-microsecond skew.
    const uint64_t now = metrics::NowMicros();
    exported_.refresh_delay_us->Observe(
        now > record.append_ts_us ? now - record.append_ts_us : 0);
  }
  return true;
}

void SiteManager::ApplierLoop(SiteId origin) {
  log::LogCursor cursor(logs_->TopicFor(origin));
  std::vector<log::LogRecord> batch;
  std::string raw;
  while (!stopping_.load(std::memory_order_acquire)) {
    batch.clear();
    size_t batch_bytes = 0;
    // One blocking read, then drain whatever else is available (consumer
    // batching: one simulated network delivery covers the batch).
    Status s = cursor.Next(&raw, std::chrono::steady_clock::now() +
                                     kApplierPollInterval);
    if (s.IsTimedOut()) continue;
    if (!s.ok()) return;  // log closed
    log::LogRecord record;
    if (!log::LogRecord::Deserialize(raw, &record).ok()) return;
    batch_bytes += raw.size();
    batch.push_back(std::move(record));
    while (batch.size() < kApplierBatchSize && cursor.TryNext(&raw).ok()) {
      log::LogRecord next;
      if (!log::LogRecord::Deserialize(raw, &next).ok()) return;
      batch_bytes += raw.size();
      batch.push_back(std::move(next));
    }
    if (network_ != nullptr) {
      network_->Send(net::TrafficClass::kPropagation, batch_bytes);
    }
    // Refresh application consumes site resources: charge the apply cost
    // for the batch before installing (replica-maintenance overhead;
    // unreplicated systems like LEAP skip this entirely).
    size_t applied_writes = 0;
    for (const log::LogRecord& r : batch) applied_writes += r.writes.size();
    ChargeDuration(options_.apply_op_cost * applied_writes);
    for (log::LogRecord& r : batch) {
      if (!ApplyRefreshRecord(std::move(r))) return;
    }
  }
}

// ---------------------------------------------------------------------
// Loading & recovery
// ---------------------------------------------------------------------

Status SiteManager::CreateTable(TableId id) { return engine_.CreateTable(id); }

Status SiteManager::LoadRecord(const RecordKey& key, std::string value) {
  // Initial data is stamped (origin 0, seq 0): visible to every snapshot.
  return engine_.Install(key, 0, 0, std::move(value));
}

Status SiteManager::RecoverFromLogs(
    const std::unordered_map<PartitionId, SiteId>& initial_masters,
    std::unordered_map<PartitionId, SiteId>* recovered_masters) {
  *recovered_masters = initial_masters;
  // Recovery is single-threaded by contract ("call on a stopped site"),
  // so install-metric accumulation can grow without a pre-reserved bound.
  InstallBatch installs;
  // The replay mutates svv_ and mastered_, so hold state_mu_ throughout —
  // the guarded fields must only be touched under their capability.
  // Nesting under the log/storage locks matches Commit.
  {
    MutexLock lock(state_mu_);
    std::vector<uint64_t> offsets(options_.num_sites, 0);
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (SiteId origin = 0; origin < options_.num_sites; ++origin) {
        std::string raw;
        while (logs_->TopicFor(origin)->TryRead(offsets[origin], &raw).ok()) {
          log::LogRecord record;
          Status s = log::LogRecord::Deserialize(raw, &record);
          if (!s.ok()) return s;
          // Non-blocking Eq. 1 check against the reconstructed svv.
          bool applicable = svv_[origin] == record.tvv[origin] - 1;
          for (size_t k = 0; applicable && k < record.tvv.size(); ++k) {
            if (k != origin && svv_[k] < record.tvv[k]) applicable = false;
          }
          if (!applicable) break;  // revisit this origin next round
          for (const log::WriteEntry& w : record.writes) {
            InstallVersion(w.key, origin, record.tvv[origin], w.value,
                           &installs);
          }
          if (record.type == log::LogRecord::Type::kRelease) {
            // A release marker names its intended recipient, so mastership
            // is assigned to the peer immediately: if the crash hit between
            // the release and the grant, every recovering site still
            // converges on exactly one master (the recipient) instead of
            // leaving the partition masterless. A following grant marker
            // (the common case) re-asserts the same owner.
            for (PartitionId p : record.partitions) {
              auto it = recovered_masters->find(p);
              if (it != recovered_masters->end() && it->second == origin) {
                it->second = record.transfer_peer;
              }
            }
          } else if (record.type == log::LogRecord::Type::kGrant) {
            for (PartitionId p : record.partitions) {
              (*recovered_masters)[p] = origin;
            }
          }
          svv_[origin] = record.tvv[origin];
          offsets[origin]++;
          progressed = true;
        }
      }
    }
    // Adopt the mastership this site is entitled to.
    mastered_.clear();
    for (const auto& [p, owner] : *recovered_masters) {
      if (owner == site_id()) mastered_.insert(p);
    }
  }
  FlushInstallMetrics(installs);
  return Status::OK();
}

}  // namespace dynamast::site
