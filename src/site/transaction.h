#ifndef DYNAMAST_SITE_TRANSACTION_H_
#define DYNAMAST_SITE_TRANSACTION_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/history.h"
#include "common/key.h"
#include "common/status.h"
#include "common/version_vector.h"
#include "storage/lock_manager.h"

namespace dynamast::site {

class SiteManager;

/// How a transaction is opened at a data site.
struct TxnOptions {
  /// Keys the transaction may write. Write locks are acquired on these at
  /// begin, in sorted order (deadlock-free). Empty for read-only
  /// transactions. Keys inserted during execution need not be listed; the
  /// insert path locks them dynamically.
  std::vector<RecordKey> write_keys;

  /// Minimum begin version: the element-wise max of the client's session
  /// vector (SSSI freshness) and the remastering out_vv from Algorithm 1.
  /// Begin blocks until the site's svv dominates this.
  VersionVector min_begin_version;

  bool read_only = false;

  /// If true (baseline 2PC participants), mastership enforcement is
  /// skipped for this transaction even when the site enforces it.
  bool skip_mastership_check = false;

  /// Issuing client session, for history recording (0 = sessionless).
  ClientId client = 0;

  /// Per-client logical transaction number: 2PC branches of one logical
  /// transaction at different sites share it so the history auditor groups
  /// them (see common/history.h).
  uint64_t client_txn = 0;
};

/// A transaction executing at one data site. Created by
/// SiteManager::BeginTransaction; finished with Commit or Abort. Not
/// thread-safe: one transaction belongs to one client thread.
///
/// Reads see the begin snapshot (a version vector) plus the transaction's
/// own staged writes; writes are staged locally and installed atomically
/// at commit — standard MVCC snapshot-isolation behaviour (Section V-A1).
class Transaction {
 public:
  Transaction() = default;

  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;
  Transaction(Transaction&&) = default;
  Transaction& operator=(Transaction&&) = default;

  /// Snapshot read (own writes win). NotFound / SnapshotTooOld as in
  /// StorageEngine::Read.
  Status Get(const RecordKey& key, std::string* value);

  /// Stages an update to a key declared in the write set (or previously
  /// inserted by this transaction). NotMaster / InvalidArgument on misuse.
  Status Put(const RecordKey& key, std::string value);

  /// Stages an insert of a key that may not be in the declared write set;
  /// acquires its lock dynamically. The key must still belong to a
  /// partition the executing site masters.
  Status Insert(const RecordKey& key, std::string value);

  bool active() const { return active_; }
  bool read_only() const { return read_only_; }
  storage::TxnId id() const { return id_; }
  const VersionVector& begin_version() const { return begin_version_; }

  /// Number of read+write operations performed (service-time accounting).
  size_t OpCount() const { return op_count_; }

 private:
  friend class SiteManager;

  SiteManager* site_ = nullptr;
  storage::TxnId id_ = 0;
  bool active_ = false;
  bool read_only_ = false;
  ClientId client_ = 0;
  uint64_t client_txn_ = 0;
  VersionVector begin_version_;
  std::vector<RecordKey> locked_keys_;
  std::vector<PartitionId> write_partitions_;  // active-writer accounting
  // Staged writes in key order; the bool marks inserts.
  std::map<RecordKey, std::pair<std::string, bool>> staged_;
  // Reads and the versions they observed; populated only when the site
  // records history (empty otherwise).
  std::vector<history::ReadObservation> observed_reads_;
  size_t op_count_ = 0;
};

}  // namespace dynamast::site

#endif  // DYNAMAST_SITE_TRANSACTION_H_
