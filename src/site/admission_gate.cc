#include "site/admission_gate.h"

#include "common/latency_recorder.h"
#include "common/scheduler.h"

namespace dynamast::site {

void AdmissionGate::SetMetrics(metrics::Histogram* wait_us,
                               metrics::Gauge* queue_depth) {
  MutexLock guard(mu_);
  wait_us_ = wait_us;
  queue_depth_ = queue_depth;
}

void AdmissionGate::Enter() {
  Stopwatch watch;
  metrics::Histogram* wait_us = nullptr;
  {
    MutexLock lock(mu_);
    ++waiting_;
    if (queue_depth_ != nullptr) {
      queue_depth_->Set(static_cast<double>(waiting_));
    }
    cv_.wait(mu_, [&] { return free_slots_ > 0; });
    --waiting_;
    --free_slots_;
    if (queue_depth_ != nullptr) {
      queue_depth_->Set(static_cast<double>(waiting_));
    }
    wait_us = wait_us_;
  }
  // The wait histogram takes the recorder's leaf lock; observing after mu_
  // is released keeps slot handoff off that lock (threads queue here under
  // saturation, exactly when the histogram is busiest).
  if (wait_us != nullptr) wait_us->Observe(watch.ElapsedMicros());
  // Slot granted: schedule fuzzing reorders which admitted transaction
  // actually reaches BeginTransaction first; record/replay capture the
  // grant order (the winner itself is already pinned by the traced
  // cv-wait re-acquisition of mu_).
  DYNAMAST_SCHED_OP(kGateGrant, sched_uid_);
}

void AdmissionGate::Exit() {
  MutexLock guard(mu_);
  ++free_slots_;
  cv_.notify_one();
}

uint64_t AdmissionGate::QueueDepth() const {
  MutexLock guard(mu_);
  return waiting_;
}

}  // namespace dynamast::site
