#include "site/admission_gate.h"

#include "common/scheduler.h"

namespace dynamast::site {

void AdmissionGate::Enter() {
  {
    std::unique_lock lock(mu_);
    ++waiting_;
    cv_.wait(lock, [&] { return free_slots_ > 0; });
    --waiting_;
    --free_slots_;
  }
  // Slot granted: schedule fuzzing reorders which admitted transaction
  // actually reaches BeginTransaction first.
  DYNAMAST_SCHED_POINT("gate.grant");
}

void AdmissionGate::Exit() {
  std::lock_guard guard(mu_);
  ++free_slots_;
  cv_.notify_one();
}

uint64_t AdmissionGate::QueueDepth() const {
  std::lock_guard guard(mu_);
  return waiting_;
}

}  // namespace dynamast::site
