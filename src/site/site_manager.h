#ifndef DYNAMAST_SITE_SITE_MANAGER_H_
#define DYNAMAST_SITE_SITE_MANAGER_H_

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/debug_mutex.h"
#include "common/history.h"
#include "common/key.h"
#include "common/metrics.h"
#include "common/partitioner.h"
#include "common/status.h"
#include "common/trace.h"
#include "common/version_vector.h"
#include "log/durable_log.h"
#include "log/log_record.h"
#include "net/sim_network.h"
#include "site/admission_gate.h"
#include "site/site_config.h"
#include "site/transaction.h"
#include "storage/storage_engine.h"

namespace dynamast::site {

/// Counters a data site exposes for the evaluation (remastering frequency,
/// commit counts, refresh lag).
struct SiteCounters {
  std::atomic<uint64_t> local_commits{0};
  std::atomic<uint64_t> refresh_applied{0};
  std::atomic<uint64_t> releases{0};
  std::atomic<uint64_t> grants{0};
  std::atomic<uint64_t> aborts{0};
};

/// SiteManager is one data site of the replicated system: the integrated
/// site manager + database + replication manager component of Section V-A.
/// It owns the site's storage engine and site version vector, executes
/// local transactions under snapshot isolation, applies refresh
/// transactions from peer sites under the update application rule (Eq. 1),
/// and services the release/grant RPCs of the remastering protocol
/// (Algorithm 1).
///
/// The same class backs every evaluated system; baselines differ only in
/// how mastership is assigned and how their routers coordinate.
class SiteManager {
 public:
  /// `partitioner`, `logs`, `network`, `history`, `metrics` and `tracer`
  /// must outlive the site. `logs` may be shared with peer sites;
  /// `network` may be null for pure-logic tests (no traffic accounting);
  /// `history` may be null (no history recording) or a recorder shared
  /// with peer sites; `metrics` may be null (no metric export — series
  /// handles stay unresolved and every instrumentation point is skipped);
  /// `tracer` may be null (no span recording).
  SiteManager(const SiteOptions& options, const Partitioner* partitioner,
              log::LogManager* logs, net::SimulatedNetwork* network,
              history::Recorder* history = nullptr,
              metrics::Registry* metrics = nullptr,
              trace::Tracer* tracer = nullptr);
  ~SiteManager();

  SiteManager(const SiteManager&) = delete;
  SiteManager& operator=(const SiteManager&) = delete;

  /// Starts the refresh applier threads (one per peer site). Call after
  /// all sites are constructed and initial data is loaded.
  void Start();

  /// Stops appliers. Idempotent. (LogManager::CloseAll unblocks them.)
  void Stop();

  SiteId site_id() const { return options_.site_id; }
  const SiteOptions& options() const { return options_; }
  storage::StorageEngine& engine() { return engine_; }
  AdmissionGate& gate() { return gate_; }
  SiteCounters& counters() { return counters_; }
  history::Recorder* history() const { return history_; }

  /// Current site version vector (copy).
  VersionVector CurrentVersion() const DYNAMAST_EXCLUDES(state_mu_);

  /// Freshness probe for read routing: reports whether this site's svv
  /// dominates `session` and (via `total`, if non-null) the svv element
  /// sum used as the selector's freshness tiebreak. Equivalent to
  /// `CurrentVersion().DominatesOrEquals(session)` plus `.Total()` but
  /// takes one critical section and never copies the vector.
  bool FreshnessProbe(const VersionVector& session, uint64_t* total) const
      DYNAMAST_EXCLUDES(state_mu_);

  // ---- Transaction API -----------------------------------------------

  /// Opens a transaction: waits for the minimum begin version, checks
  /// mastership of the write partitions, acquires write locks, then takes
  /// the begin snapshot (after lock acquisition — required by the SI
  /// proof, Appendix A Case 1).
  Status BeginTransaction(const TxnOptions& opts, Transaction* txn)
      DYNAMAST_EXCLUDES(state_mu_);

  /// Commits: atomically assigns the next local sequence number, installs
  /// staged writes, appends the redo/propagation record to this site's
  /// log topic, advances svv, and releases locks. Returns the commit
  /// timestamp (transaction version vector) in `commit_version`.
  DYNAMAST_HOT_PATH Status Commit(Transaction* txn,
                                  VersionVector* commit_version)
      DYNAMAST_EXCLUDES(state_mu_);

  /// Drops staged writes and releases locks. `reason` feeds the
  /// abort-reason taxonomy (site_aborts_total{reason=...}): pass the
  /// Status that caused the abort so the metric names the actual cause.
  void Abort(Transaction* txn,
             const Status& reason = Status::Aborted("caller abort"))
      DYNAMAST_EXCLUDES(state_mu_);

  /// Sleeps for the simulated CPU cost of `reads` snapshot reads plus
  /// `writes` write operations. Call while holding a gate slot. Callers
  /// batch charges (see core::SiteTxnContext) so sleep-granularity
  /// overshoot does not accumulate per operation.
  DYNAMAST_BLOCKING void ChargeOps(size_t reads, size_t writes) const;

  /// Sleeps for an explicit duration of simulated site work.
  DYNAMAST_BLOCKING void ChargeDuration(std::chrono::nanoseconds d) const;

  /// Blocks until svv dominates `min`, or the freshness timeout expires.
  DYNAMAST_BLOCKING Status WaitForVersion(const VersionVector& min) const
      DYNAMAST_EXCLUDES(state_mu_);

  // ---- Mastership / remastering (Algorithm 1 server side) -------------

  /// Initial mastership assignment (loader); not logged.
  void SetMasterOf(PartitionId partition, bool is_master)
      DYNAMAST_EXCLUDES(state_mu_);
  bool IsMasterOf(PartitionId partition) const DYNAMAST_EXCLUDES(state_mu_);
  std::vector<PartitionId> MasteredPartitions() const
      DYNAMAST_EXCLUDES(state_mu_);

  /// Releases mastership of `partitions` to `to_site`: immediately stops
  /// admitting new write transactions on them, waits for in-flight writers
  /// to finish, appends a release marker (which occupies a slot in this
  /// site's commit order and therefore propagates), and returns the site
  /// version vector at the point of release.
  Status Release(const std::vector<PartitionId>& partitions, SiteId to_site,
                 VersionVector* release_version) DYNAMAST_EXCLUDES(state_mu_);

  /// Takes mastership of `partitions` from `from_site`: waits until this
  /// site has applied everything up to `release_version`, appends a grant
  /// marker, marks the partitions mastered, and returns the svv at the
  /// time ownership was taken.
  Status Grant(const std::vector<PartitionId>& partitions, SiteId from_site,
               const VersionVector& release_version,
               VersionVector* grant_version) DYNAMAST_EXCLUDES(state_mu_);

  // ---- Loading & recovery ---------------------------------------------

  Status CreateTable(TableId id);

  /// Installs an initial record visible to every snapshot; not logged.
  /// Used by workload loaders (data is fully replicated: loaders install
  /// the same rows at every site).
  Status LoadRecord(const RecordKey& key, std::string value);

  /// Rebuilds storage and the svv by replaying all log topics from the
  /// beginning, respecting the update application rule. Mastership is
  /// reconstructed from release/grant markers on top of
  /// `initial_masters` (partition -> site). Call on a stopped, freshly
  /// constructed site. Returns the reconstructed mastership map.
  Status RecoverFromLogs(
      const std::unordered_map<PartitionId, SiteId>& initial_masters,
      std::unordered_map<PartitionId, SiteId>* recovered_masters)
      DYNAMAST_EXCLUDES(state_mu_);

 private:
  friend class Transaction;

  // Applies one refresh/marker record from `origin` once Eq. 1 allows.
  // Takes the record by value: the applier is done with it afterwards, so
  // the write values move straight into the version store. Returns false
  // if shutting down.
  DYNAMAST_HOT_PATH bool ApplyRefreshRecord(log::LogRecord record)
      DYNAMAST_EXCLUDES(state_mu_);

  // Refresh applier main loop for one origin topic.
  void ApplierLoop(SiteId origin);

  // Appends a marker record under state_mu_; returns svv copy after bump.
  VersionVector AppendMarkerLocked(log::LogRecord::Type type,
                                   const std::vector<PartitionId>& partitions,
                                   SiteId peer)
      DYNAMAST_REQUIRES(state_mu_);

  // Transaction helpers (called by Transaction).
  Status TxnGet(Transaction* txn, const RecordKey& key, std::string* value);
  Status TxnPut(Transaction* txn, const RecordKey& key, std::string value,
                bool is_insert);

  // Builds the history event for a finished transaction (no recorder
  // sequence yet; Recorder::Record assigns it).
  history::HistoryEvent MakeTxnEvent(const Transaction& txn,
                                     history::EventKind kind) const;

  // Version-install outcomes accumulated while state_mu_ is held and
  // flushed to the storage metrics once the critical section releases:
  // histogram recording takes the recorder's leaf lock, which has no place
  // inside the site's widest critical section. Callers reserve chain_lens
  // before taking state_mu_ so the accumulation never allocates under it.
  struct InstallBatch {
    std::vector<size_t> chain_lens;
    uint64_t pruned = 0;
  };

  // Installs a committed/refreshed version, accumulating version-chain and
  // prune outcomes into `batch`. Install can only fail if the table
  // vanished mid-run — a programming error — so failure trips an invariant.
  void InstallVersion(const RecordKey& key, SiteId origin, uint64_t seq,
                      std::string value, InstallBatch* batch);

  // Observes the accumulated install outcomes. Call without state_mu_.
  void FlushInstallMetrics(const InstallBatch& batch);

  // Counts one abort in both the legacy counter and the per-reason
  // taxonomy metric.
  void CountAbort(const Status& reason);

  static constexpr size_t kNumStatusCodes =
      static_cast<size_t>(Status::Code::kInternal) + 1;

  // Exported metric handles, resolved once at construction (null when the
  // site was built without a registry). Pointers are stable for the
  // registry's lifetime, so the hot path never takes the registry lock.
  struct ExportedMetrics {
    metrics::Counter* commits_update = nullptr;
    metrics::Counter* commits_readonly = nullptr;
    std::array<metrics::Counter*, kNumStatusCodes> aborts_by_reason{};
    metrics::Histogram* lock_wait_us = nullptr;
    metrics::Histogram* vv_wait_us = nullptr;
    metrics::Counter* refresh_applied = nullptr;
    metrics::Histogram* refresh_delay_us = nullptr;
    metrics::Counter* releases = nullptr;
    metrics::Counter* grants = nullptr;
    metrics::Counter* mastership_transitions = nullptr;
    metrics::Counter* pruned_versions = nullptr;
    metrics::Histogram* version_chain_len = nullptr;
  };

  SiteOptions options_;
  const Partitioner* partitioner_;
  log::LogManager* logs_;
  net::SimulatedNetwork* network_;
  history::Recorder* history_;
  trace::Tracer* tracer_;
  ExportedMetrics exported_;

  storage::StorageEngine engine_;
  AdmissionGate gate_;
  SiteCounters counters_;

  mutable DebugMutex state_mu_{"site.state"};
  mutable DebugCondVar state_cv_;
  VersionVector svv_ DYNAMAST_GUARDED_BY(state_mu_);
  // Partitions this site masters; a partition being released is removed
  // before the drain so no new writers are admitted.
  std::unordered_set<PartitionId> mastered_ DYNAMAST_GUARDED_BY(state_mu_);
  // In-flight write transactions per partition (release drains these).
  std::unordered_map<PartitionId, uint32_t> active_writers_
      DYNAMAST_GUARDED_BY(state_mu_);

  std::atomic<storage::TxnId> next_txn_id_{1};
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  std::vector<std::thread> appliers_;
};

}  // namespace dynamast::site

#endif  // DYNAMAST_SITE_SITE_MANAGER_H_
