#include "site/transaction.h"

#include "site/site_manager.h"

namespace dynamast::site {

Status Transaction::Get(const RecordKey& key, std::string* value) {
  if (!active_) return Status::InvalidArgument("transaction not active");
  return site_->TxnGet(this, key, value);
}

Status Transaction::Put(const RecordKey& key, std::string value) {
  if (!active_) return Status::InvalidArgument("transaction not active");
  if (read_only_) return Status::InvalidArgument("read-only transaction");
  return site_->TxnPut(this, key, std::move(value), /*is_insert=*/false);
}

Status Transaction::Insert(const RecordKey& key, std::string value) {
  if (!active_) return Status::InvalidArgument("transaction not active");
  if (read_only_) return Status::InvalidArgument("read-only transaction");
  return site_->TxnPut(this, key, std::move(value), /*is_insert=*/true);
}

}  // namespace dynamast::site
