#include "site/invariants.h"

#include <string>

#include "common/invariant_checker.h"

namespace dynamast::site {

namespace {

std::string OwnersString(const std::vector<SiteManager*>& sites,
                         PartitionId p) {
  std::string owners;
  for (SiteManager* site : sites) {
    if (site->IsMasterOf(p)) {
      if (!owners.empty()) owners += ", ";
      owners += std::to_string(site->site_id());
    }
  }
  return owners.empty() ? "none" : owners;
}

}  // namespace

void CheckMastershipInvariant(const std::vector<SiteManager*>& sites,
                              size_t num_partitions, bool require_exactly_one,
                              const char* context) {
  for (PartitionId p = 0; p < num_partitions; ++p) {
    size_t masters = 0;
    for (SiteManager* site : sites) {
      if (site->IsMasterOf(p)) ++masters;
    }
    if (masters > 1 || (require_exactly_one && masters == 0)) {
      invariants::Failure(
          __FILE__, __LINE__, "one master per partition",
          std::string(context) + ": partition " + std::to_string(p) +
              " is mastered by sites {" + OwnersString(sites, p) + "}" +
              (require_exactly_one ? " (expected exactly one)"
                                   : " (expected at most one)"));
    }
  }
}

void CheckMasteredExactlyAt(const std::vector<SiteManager*>& sites,
                            const std::vector<PartitionId>& partitions,
                            SiteId dest, const char* context) {
  for (PartitionId p : partitions) {
    for (SiteManager* site : sites) {
      const bool is_master = site->IsMasterOf(p);
      const bool should_be = site->site_id() == dest;
      if (is_master != should_be) {
        invariants::Failure(
            __FILE__, __LINE__, "post-remaster mastership",
            std::string(context) + ": partition " + std::to_string(p) +
                " should be mastered exactly at site " +
                std::to_string(dest) + " but site masters are {" +
                OwnersString(sites, p) + "}");
      }
    }
  }
}

}  // namespace dynamast::site
