#ifndef DYNAMAST_SITE_INVARIANTS_H_
#define DYNAMAST_SITE_INVARIANTS_H_

#include <cstddef>
#include <vector>

#include "common/key.h"
#include "site/site_manager.h"

namespace dynamast::site {

/// Cluster-wide mastership scans backing the invariant checker (see
/// common/invariant_checker.h). Always compiled so any build can unit-test
/// them; production call sites are gated on DYNAMAST_INVARIANTS. Both
/// functions take each site's state mutex in turn (never two at once), so
/// they are safe to call while the cluster is running.

/// Aborts if any partition in [0, num_partitions) is mastered by more than
/// one site — the paper's single-master-per-key property. A partition mid
/// transfer (released, not yet granted) has zero masters, never two, so
/// this holds at every instant. With `require_exactly_one` (quiesced
/// clusters only: after initial placement, before shutdown) zero masters
/// is a violation too.
void CheckMastershipInvariant(const std::vector<SiteManager*>& sites,
                              size_t num_partitions, bool require_exactly_one,
                              const char* context);

/// Aborts unless every partition in `partitions` is mastered by `dest` and
/// by no other site. Called after a remastering transfer completes, while
/// the selector still holds the partitions' transfer locks (so no
/// concurrent transfer can move them again mid-check).
void CheckMasteredExactlyAt(const std::vector<SiteManager*>& sites,
                            const std::vector<PartitionId>& partitions,
                            SiteId dest, const char* context);

}  // namespace dynamast::site

#endif  // DYNAMAST_SITE_INVARIANTS_H_
