#include "workloads/smallbank.h"

#include <algorithm>
#include <cstring>

#include "storage/row_buffer.h"

namespace dynamast::workloads {

SmallBankWorkload::SmallBankWorkload(const Options& options)
    : options_(options),
      num_partitions_((options.num_accounts + options.accounts_per_partition -
                       1) /
                      options.accounts_per_partition) {
  const uint64_t app = options_.accounts_per_partition;
  partitioner_ = std::make_unique<FunctionPartitioner>(
      [app](const RecordKey& key) -> PartitionId { return key.row / app; },
      num_partitions_);
}

std::string SmallBankWorkload::MakeBalance(double balance) {
  storage::RowBuffer row;
  row.AddDouble(balance);
  return row.Encode();
}

double SmallBankWorkload::BalanceOf(const std::string& value) {
  storage::RowBuffer row;
  if (!storage::RowBuffer::Parse(value, &row).ok()) return 0.0;
  return row.GetDouble(0);
}

Status SmallBankWorkload::Load(core::SystemInterface& system) {
  for (TableId t : {kChecking, kSavings}) {
    Status s = system.CreateTable(t);
    if (!s.ok()) return s;
  }
  for (uint64_t account = 0; account < options_.num_accounts; ++account) {
    Status s = system.LoadRow(RecordKey{kChecking, account},
                              MakeBalance(options_.initial_balance));
    if (!s.ok()) return s;
    s = system.LoadRow(RecordKey{kSavings, account},
                       MakeBalance(options_.initial_balance));
    if (!s.ok()) return s;
  }
  return Status::OK();
}

namespace {

class SmallBankClient final : public WorkloadClient {
 public:
  SmallBankClient(SmallBankWorkload* workload, uint64_t seed)
      : workload_(workload), rng_(seed) {
    if (workload_->options().zipfian) {
      zipf_ = std::make_unique<ScrambledZipfianGenerator>(
          workload_->options().num_accounts, workload_->options().zipf_theta);
    }
  }

  WorkloadTxn Next() override {
    const auto& opt = workload_->options();
    const uint64_t roll = rng_.Uniform(100);
    if (roll < opt.single_update_pct) return MakeSingleRowUpdate();
    if (roll < opt.single_update_pct + opt.two_row_update_pct) {
      return MakeTwoRowUpdate();
    }
    return MakeBalanceCheck();
  }

 private:
  uint64_t PickAccount() {
    return zipf_ ? zipf_->Next(rng_)
                 : rng_.Uniform(workload_->options().num_accounts);
  }

  /// Second account for two-row transactions: with locality_pct, a
  /// Bernoulli neighbourhood partition of the first (the SmallBank analog
  /// of the YCSB correlation structure); otherwise uniform.
  uint64_t PickPairedAccount(uint64_t first) {
    const auto& opt = workload_->options();
    if (rng_.Uniform(100) >= opt.locality_pct) return PickAccount();
    const int64_t offset = static_cast<int64_t>(rng_.Binomial(5, 0.5)) - 3;
    const int64_t partition =
        std::clamp<int64_t>(
            static_cast<int64_t>(first / opt.accounts_per_partition) + offset,
            0, static_cast<int64_t>(workload_->num_partitions()) - 1);
    const uint64_t base =
        static_cast<uint64_t>(partition) * opt.accounts_per_partition;
    const uint64_t span =
        std::min(opt.accounts_per_partition, opt.num_accounts - base);
    return base + rng_.Uniform(span);
  }

  WorkloadTxn MakeSingleRowUpdate() {
    const uint64_t account = PickAccount();
    // Alternate DepositChecking / TransactSavings.
    const bool checking = rng_.Bernoulli(0.5);
    const TableId table = checking ? SmallBankWorkload::kChecking
                                   : SmallBankWorkload::kSavings;
    const double amount = 1.0 + static_cast<double>(rng_.Uniform(10000)) / 100;
    const RecordKey key{table, account};
    WorkloadTxn txn;
    txn.type = checking ? "deposit-checking" : "transact-savings";
    txn.profile.write_keys = {key};
    txn.profile.read_keys = {key};
    txn.logic = [key, amount](core::TxnContext& ctx) -> Status {
      std::string value;
      Status s = ctx.Get(key, &value);
      if (!s.ok()) return s;
      return ctx.Put(key, SmallBankWorkload::MakeBalance(
                              SmallBankWorkload::BalanceOf(value) + amount));
    };
    return txn;
  }

  WorkloadTxn MakeTwoRowUpdate() {
    const uint64_t src = PickAccount();
    uint64_t dst = PickPairedAccount(src);
    if (dst == src) dst = (src + 1) % workload_->options().num_accounts;
    const double amount = 1.0 + static_cast<double>(rng_.Uniform(5000)) / 100;
    const RecordKey src_key{SmallBankWorkload::kChecking, src};
    const RecordKey dst_key{SmallBankWorkload::kChecking, dst};
    WorkloadTxn txn;
    txn.type = "send-payment";
    txn.profile.write_keys = {src_key, dst_key};
    txn.profile.read_keys = {src_key, dst_key};
    txn.logic = [src_key, dst_key, amount](core::TxnContext& ctx) -> Status {
      std::string value;
      Status s = ctx.Get(src_key, &value);
      if (!s.ok()) return s;
      const double src_balance = SmallBankWorkload::BalanceOf(value);
      s = ctx.Get(dst_key, &value);
      if (!s.ok()) return s;
      const double dst_balance = SmallBankWorkload::BalanceOf(value);
      // Money conservation: the sum of the two balances is invariant —
      // the property the SI tests verify.
      s = ctx.Put(src_key,
                  SmallBankWorkload::MakeBalance(src_balance - amount));
      if (!s.ok()) return s;
      return ctx.Put(dst_key,
                     SmallBankWorkload::MakeBalance(dst_balance + amount));
    };
    return txn;
  }

  WorkloadTxn MakeBalanceCheck() {
    const uint64_t account = PickAccount();
    const RecordKey checking{SmallBankWorkload::kChecking, account};
    const RecordKey savings{SmallBankWorkload::kSavings, account};
    WorkloadTxn txn;
    txn.type = "balance";
    txn.profile.read_only = true;
    txn.profile.read_keys = {checking, savings};
    txn.logic = [checking, savings](core::TxnContext& ctx) -> Status {
      std::string value;
      Status s = ctx.Get(checking, &value);
      if (!s.ok()) return s;
      double total = SmallBankWorkload::BalanceOf(value);
      s = ctx.Get(savings, &value);
      if (!s.ok()) return s;
      total += SmallBankWorkload::BalanceOf(value);
      (void)total;
      return Status::OK();
    };
    return txn;
  }

  SmallBankWorkload* workload_;
  Random rng_;
  std::unique_ptr<ScrambledZipfianGenerator> zipf_;
};

}  // namespace

std::unique_ptr<WorkloadClient> SmallBankWorkload::MakeClient(uint64_t index) {
  return std::make_unique<SmallBankClient>(
      this, options_.seed * 0x9e3779b97f4a7c15ULL + index * 2 + 1);
}

}  // namespace dynamast::workloads
