#ifndef DYNAMAST_WORKLOADS_YCSB_H_
#define DYNAMAST_WORKLOADS_YCSB_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/debug_mutex.h"
#include "common/random.h"
#include "workloads/workload.h"

namespace dynamast::workloads {

/// The paper's extended YCSB workload (Section VI-A2 and Appendix C):
///
///  * the key space is divided into partitions of 100 contiguous keys;
///  * partitions are co-accessed in *correlated ranges*: a transaction's
///    base partition is drawn from the access distribution (uniform or
///    Zipfian rho=0.75) and companion partitions come from a Bernoulli
///    neighbourhood around it (5 trials, p=0.5, centred on the base);
///  * read-modify-write transactions update 3 keys across those
///    neighbouring partitions;
///  * scan transactions read all keys of the next k partitions,
///    k ~ U[2,10] (200–1000 keys);
///  * clients have affinity: they run up to `affinity_txns` transactions
///    against one correlated region before being replaced by a client
///    with a fresh region;
///  * for the adaptivity experiment, `shuffle_correlations` re-maps which
///    partitions count as "neighbours" by shuffling the partition order,
///    so learned range correlations become useless and DynaMast must
///    re-learn.
///
/// Values are `value_size`-byte strings whose first 8 bytes hold an update
/// counter, so tests can verify read-modify-write atomicity.
class YcsbWorkload final : public Workload {
 public:
  struct Options {
    uint64_t num_keys = 100'000;
    uint64_t keys_per_partition = 100;
    size_t value_size = 120;
    /// Percentage of read-modify-write transactions; the rest are scans.
    uint32_t rmw_pct = 50;
    bool zipfian = false;
    double zipf_theta = 0.75;
    /// If true, Zipfian ranks are scrambled across the key space (YCSB's
    /// scrambled distribution). If false (default), the hot partitions
    /// form a contiguous range — the layout that pins hot masters to one
    /// site under static range placement (the skew experiment E7).
    bool scramble_zipf = false;
    /// Transactions per client before its affinity region is resampled.
    uint64_t affinity_txns = 1000;
    /// Adaptivity mode: shuffle the partition-order used for correlations.
    bool shuffle_correlations = false;
    uint64_t seed = 1234;
    uint32_t keys_per_rmw = 3;
    uint32_t min_scan_partitions = 2;
    uint32_t max_scan_partitions = 10;
  };

  static constexpr TableId kTable = 0;

  explicit YcsbWorkload(const Options& options);

  std::string name() const override { return "ycsb"; }
  const Partitioner& partitioner() const override { return partitioner_; }
  Status Load(core::SystemInterface& system) override;
  std::unique_ptr<WorkloadClient> MakeClient(uint64_t index) override;

  uint64_t num_partitions() const { return num_partitions_; }
  const Options& options() const { return options_; }

  /// Re-shuffles the correlation order mid-run (adaptivity experiment
  /// trigger). Thread-safe; existing clients pick it up on their next
  /// affinity renewal.
  void ShuffleCorrelations(uint64_t seed) DYNAMAST_EXCLUDES(order_mu_);

  /// Position of partition p in the correlation order and its inverse.
  PartitionId OrderedAt(uint64_t position) const
      DYNAMAST_EXCLUDES(order_mu_);
  uint64_t PositionOf(PartitionId p) const DYNAMAST_EXCLUDES(order_mu_);

  /// Encodes/decodes the 8-byte counter prefix of a YCSB value.
  static std::string MakeValue(uint64_t counter, size_t value_size);
  static uint64_t ValueCounter(const std::string& value);

 private:
  friend class YcsbClient;

  Options options_;
  uint64_t num_partitions_;
  RangePartitioner partitioner_;

  mutable RawMutex order_mu_;
  // position -> partition
  std::vector<PartitionId> order_ DYNAMAST_GUARDED_BY(order_mu_);
  // partition -> position
  std::vector<uint64_t> position_ DYNAMAST_GUARDED_BY(order_mu_);
  uint64_t order_epoch_ DYNAMAST_GUARDED_BY(order_mu_) = 0;
};

}  // namespace dynamast::workloads

#endif  // DYNAMAST_WORKLOADS_YCSB_H_
