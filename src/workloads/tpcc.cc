#include "workloads/tpcc.h"

#include <algorithm>
#include <unordered_set>

#include "storage/row_buffer.h"

namespace dynamast::workloads {

using storage::RowBuffer;

namespace {

// Field indexes, per table.
// warehouse: 0 ytd (double), 1 tax (double)
// district:  0 ytd (double), 1 tax (double), 2 next_o_id (u64)
// customer:  0 balance (double), 1 ytd_payment (double),
//            2 payment_cnt (i64), 3 discount (double)
// order:     0 c_id (u64), 1 ol_cnt (u64), 2 carrier (u64)
// orderline: 0 i_id (u64), 1 supply_w (u64), 2 qty (u64), 3 amount (double)
// neworder:  0 flag (u64)
// item:      0 price (double), 1 data (string)
// stock:     0 quantity (u64), 1 ytd (double), 2 order_cnt (u64),
//            3 remote_cnt (u64)
// history:   0 amount (double)

std::string EncodeWarehouse(double ytd, double tax) {
  RowBuffer row;
  row.AddDouble(ytd);
  row.AddDouble(tax);
  return row.Encode();
}

std::string EncodeDistrict(double ytd, double tax, uint64_t next_o_id) {
  RowBuffer row;
  row.AddDouble(ytd);
  row.AddDouble(tax);
  row.AddUint64(next_o_id);
  return row.Encode();
}

std::string EncodeCustomer(double balance, double ytd_payment,
                           int64_t payment_cnt, double discount) {
  RowBuffer row;
  row.AddDouble(balance);
  row.AddDouble(ytd_payment);
  row.AddInt64(payment_cnt);
  row.AddDouble(discount);
  return row.Encode();
}

std::string EncodeOrder(uint64_t c_id, uint64_t ol_cnt, uint64_t carrier) {
  RowBuffer row;
  row.AddUint64(c_id);
  row.AddUint64(ol_cnt);
  row.AddUint64(carrier);
  return row.Encode();
}

std::string EncodeOrderLine(uint64_t i_id, uint64_t supply_w, uint64_t qty,
                            double amount) {
  RowBuffer row;
  row.AddUint64(i_id);
  row.AddUint64(supply_w);
  row.AddUint64(qty);
  row.AddDouble(amount);
  return row.Encode();
}

std::string EncodeNewOrder() {
  RowBuffer row;
  row.AddUint64(1);
  return row.Encode();
}

std::string EncodeItem(double price) {
  RowBuffer row;
  row.AddDouble(price);
  row.AddString("item-data-item-data-item-data");
  return row.Encode();
}

std::string EncodeStock(uint64_t quantity, double ytd, uint64_t order_cnt,
                        uint64_t remote_cnt) {
  RowBuffer row;
  row.AddUint64(quantity);
  row.AddDouble(ytd);
  row.AddUint64(order_cnt);
  row.AddUint64(remote_cnt);
  return row.Encode();
}

std::string EncodeHistory(double amount) {
  RowBuffer row;
  row.AddDouble(amount);
  return row.Encode();
}

Status ParseRow(const std::string& encoded, RowBuffer* row) {
  return RowBuffer::Parse(encoded, row);
}

}  // namespace

TpccWorkload::TpccWorkload(const Options& options) : options_(options) {
  const uint32_t dpw = options_.districts_per_warehouse;
  const uint32_t cpd = options_.customers_per_district;
  const uint32_t items = options_.num_items;
  auto fn = [this, dpw, cpd, items](const RecordKey& key) -> PartitionId {
    switch (key.table) {
      case kWarehouse:
        return WarehousePartition(static_cast<uint32_t>(key.row));
      case kDistrict: {
        const uint32_t dk = static_cast<uint32_t>(key.row);
        return DistrictPartition(dk / dpw, dk % dpw);
      }
      case kCustomer: {
        const uint32_t dk = static_cast<uint32_t>(key.row / cpd);
        const uint32_t c = static_cast<uint32_t>(key.row % cpd);
        return CustomerPartition(dk / dpw, dk % dpw, c);
      }
      case kHistory:
      case kOrderLine: {
        const uint32_t dk = static_cast<uint32_t>(key.row >> 40);
        return DistrictPartition(dk / dpw, dk % dpw);
      }
      case kOrder:
      case kNewOrderTable: {
        const uint32_t dk = static_cast<uint32_t>(key.row >> 32);
        return DistrictPartition(dk / dpw, dk % dpw);
      }
      case kStock: {
        const uint32_t w = static_cast<uint32_t>(key.row / items);
        const uint32_t item = static_cast<uint32_t>(key.row % items);
        return StockPartition(w, item);
      }
      case kItem:
        return ItemPartition();
      default:
        return 0;
    }
  };
  partitioner_ = std::make_unique<FunctionPartitioner>(
      fn, static_cast<size_t>(ItemPartition()) + 1);
  recent_orders_.resize(static_cast<size_t>(options_.num_warehouses) * dpw);
}

std::vector<SiteId> TpccWorkload::WarehousePlacement(
    uint32_t num_sites) const {
  std::vector<SiteId> placement(partitioner_->NumPartitions(), 0);
  for (PartitionId p = 0; p + 1 < placement.size(); ++p) {
    placement[p] = static_cast<SiteId>(WarehouseOfPartition(p) % num_sites);
  }
  return placement;
}

void TpccWorkload::RecordOrderStockPartitions(
    uint32_t w, uint32_t d, const std::vector<PartitionId>& stock_partitions) {
  RawMutexLock guard(recon_mu_);
  auto& ring = recent_orders_[DistrictKey(w, d)];
  ring.push_back(stock_partitions);
  while (ring.size() > 20) ring.pop_front();
}

std::vector<PartitionId> TpccWorkload::RecentStockPartitions(
    uint32_t w, uint32_t d) const {
  RawMutexLock guard(recon_mu_);
  std::unordered_set<PartitionId> set;
  for (const auto& order : recent_orders_[DistrictKey(w, d)]) {
    set.insert(order.begin(), order.end());
  }
  return std::vector<PartitionId>(set.begin(), set.end());
}

Status TpccWorkload::Load(core::SystemInterface& system) {
  for (TableId t : {kWarehouse, kDistrict, kCustomer, kHistory,
                    kNewOrderTable, kOrder, kOrderLine, kItem, kStock}) {
    Status s = system.CreateTable(t);
    if (!s.ok()) return s;
  }
  Random rng(options_.seed);
  auto check = [](Status s) { return s; };

  // ITEM is a static read-only table, replicated at every site in every
  // system (Section VI-A1: partition-store replicates static read-only
  // tables).
  for (uint32_t i = 0; i < options_.num_items; ++i) {
    const double price = 1.0 + static_cast<double>(rng.Uniform(9999)) / 100.0;
    Status s = system.LoadReplicatedRow(RecordKey{kItem, ItemKey(i)},
                                        EncodeItem(price));
    if (!s.ok()) return s;
  }

  for (uint32_t w = 0; w < options_.num_warehouses; ++w) {
    const double w_tax = static_cast<double>(rng.Uniform(2000)) / 10000.0;
    Status s = check(system.LoadRow(RecordKey{kWarehouse, WarehouseKey(w)},
                                    EncodeWarehouse(300000.0, w_tax)));
    if (!s.ok()) return s;
    for (uint32_t i = 0; i < options_.num_items; ++i) {
      s = system.LoadRow(RecordKey{kStock, StockKey(w, i)},
                         EncodeStock(50 + rng.Uniform(50), 0.0, 0, 0));
      if (!s.ok()) return s;
    }
    for (uint32_t d = 0; d < options_.districts_per_warehouse; ++d) {
      const double d_tax = static_cast<double>(rng.Uniform(2000)) / 10000.0;
      const uint64_t next_o_id = options_.initial_orders_per_district + 1;
      s = system.LoadRow(RecordKey{kDistrict, DistrictKey(w, d)},
                         EncodeDistrict(30000.0, d_tax, next_o_id));
      if (!s.ok()) return s;
      for (uint32_t c = 0; c < options_.customers_per_district; ++c) {
        const double discount =
            static_cast<double>(rng.Uniform(5000)) / 10000.0;
        s = system.LoadRow(RecordKey{kCustomer, CustomerKey(w, d, c)},
                           EncodeCustomer(-10.0, 10.0, 1, discount));
        if (!s.ok()) return s;
      }
      // Initial orders so Stock-Level has data from the first second.
      for (uint64_t o = 1; o <= options_.initial_orders_per_district; ++o) {
        const uint32_t lines = 5;
        s = system.LoadRow(
            RecordKey{kOrder, OrderKey(w, d, o)},
            EncodeOrder(rng.Uniform(options_.customers_per_district), lines,
                        0));
        if (!s.ok()) return s;
        s = system.LoadRow(RecordKey{kNewOrderTable, OrderKey(w, d, o)},
                           EncodeNewOrder());
        if (!s.ok()) return s;
        for (uint32_t line = 0; line < lines; ++line) {
          const uint32_t item = static_cast<uint32_t>(
              rng.Uniform(options_.num_items));
          s = system.LoadRow(
              RecordKey{kOrderLine, OrderLineKey(w, d, o, line)},
              EncodeOrderLine(item, w, 5, 25.0));
          if (!s.ok()) return s;
        }
        // Initial orders' lines were all supplied by the home warehouse;
        // record their stock partitions for Stock-Level reconnaissance.
        RecordOrderStockPartitions(w, d, {StockPartition(w, 0)});
      }
    }
  }
  return Status::OK();
}

namespace {

class TpccClient final : public WorkloadClient {
 public:
  TpccClient(TpccWorkload* workload, uint64_t index, uint64_t seed)
      : workload_(workload),
        home_warehouse_(static_cast<uint32_t>(
            index % workload->options().num_warehouses)),
        client_tag_(index),
        rng_(seed) {}

  WorkloadTxn Next() override {
    const auto& opt = workload_->options();
    const uint64_t roll = rng_.Uniform(100);
    if (roll < opt.new_order_pct) return MakeNewOrder();
    if (roll < opt.new_order_pct + opt.payment_pct) return MakePayment();
    if (roll < opt.new_order_pct + opt.payment_pct + opt.stock_level_pct) {
      return MakeStockLevel();
    }
    return MakeOrderStatus();
  }

 private:
  uint32_t RandomOtherWarehouse(uint32_t w) {
    const uint32_t num = workload_->options().num_warehouses;
    if (num == 1) return w;
    uint32_t other = static_cast<uint32_t>(rng_.Uniform(num - 1));
    if (other >= w) ++other;
    return other;
  }

  WorkloadTxn MakeNewOrder();
  WorkloadTxn MakePayment();
  WorkloadTxn MakeStockLevel();
  WorkloadTxn MakeOrderStatus();

  TpccWorkload* workload_;
  uint32_t home_warehouse_;
  uint64_t client_tag_;
  uint64_t history_seq_ = 0;
  Random rng_;
};

WorkloadTxn TpccClient::MakeNewOrder() {
  TpccWorkload* wl = workload_;
  const auto& opt = wl->options();
  const uint32_t w = home_warehouse_;
  const uint32_t d =
      static_cast<uint32_t>(rng_.Uniform(opt.districts_per_warehouse));
  const uint32_t c =
      static_cast<uint32_t>(rng_.Uniform(opt.customers_per_district));
  const uint32_t n_items = static_cast<uint32_t>(rng_.UniformRange(
      opt.min_items_per_order, opt.max_items_per_order));
  const bool cross =
      rng_.Uniform(100) < opt.cross_warehouse_neworder_pct &&
      opt.num_warehouses > 1;

  struct OrderItem {
    uint32_t item;
    uint32_t supply_w;
    uint32_t qty;
  };
  std::vector<OrderItem> items;
  std::unordered_set<uint32_t> used;
  items.reserve(n_items);
  for (uint32_t i = 0; i < n_items; ++i) {
    uint32_t item;
    do {
      item = static_cast<uint32_t>(rng_.Uniform(opt.num_items));
    } while (!used.insert(item).second);
    uint32_t supply = w;
    // In a cross-warehouse New-Order the first item is always remote and
    // the rest are remote with 10% probability.
    if (cross && (i == 0 || rng_.Uniform(100) < 10)) {
      supply = RandomOtherWarehouse(w);
    }
    items.push_back(
        OrderItem{item, supply, static_cast<uint32_t>(1 + rng_.Uniform(10))});
  }

  WorkloadTxn txn;
  txn.type = "new-order";
  txn.profile.write_keys.push_back(
      RecordKey{TpccWorkload::kDistrict, wl->DistrictKey(w, d)});
  for (const OrderItem& oi : items) {
    txn.profile.write_keys.push_back(
        RecordKey{TpccWorkload::kStock, wl->StockKey(oi.supply_w, oi.item)});
  }
  txn.profile.read_keys.push_back(
      RecordKey{TpccWorkload::kWarehouse, wl->WarehouseKey(w)});
  txn.profile.read_keys.push_back(
      RecordKey{TpccWorkload::kCustomer, wl->CustomerKey(w, d, c)});

  txn.logic = [wl, w, d, c, items](core::TxnContext& ctx) -> Status {
    std::string raw;
    RowBuffer row;
    // Warehouse tax.
    Status s = ctx.Get(RecordKey{TpccWorkload::kWarehouse,
                                 wl->WarehouseKey(w)}, &raw);
    if (!s.ok()) return s;
    if (Status p = ParseRow(raw, &row); !p.ok()) return p;
    const double w_tax = row.GetDouble(1);

    // District: read and advance next_o_id.
    s = ctx.Get(RecordKey{TpccWorkload::kDistrict, wl->DistrictKey(w, d)},
                &raw);
    if (!s.ok()) return s;
    if (Status p = ParseRow(raw, &row); !p.ok()) return p;
    const double d_tax = row.GetDouble(1);
    const uint64_t o_id = row.GetUint64(2);
    row.SetUint64(2, o_id + 1);
    s = ctx.Put(RecordKey{TpccWorkload::kDistrict, wl->DistrictKey(w, d)},
                row.Encode());
    if (!s.ok()) return s;

    // Customer discount.
    s = ctx.Get(RecordKey{TpccWorkload::kCustomer, wl->CustomerKey(w, d, c)},
                &raw);
    if (!s.ok()) return s;
    if (Status p = ParseRow(raw, &row); !p.ok()) return p;
    const double discount = row.GetDouble(3);

    // Insert ORDER and NEW-ORDER rows.
    s = ctx.Insert(RecordKey{TpccWorkload::kOrder, wl->OrderKey(w, d, o_id)},
                   EncodeOrder(c, items.size(), 0));
    if (!s.ok()) return s;
    s = ctx.Insert(RecordKey{TpccWorkload::kNewOrderTable,
                             wl->OrderKey(w, d, o_id)},
                   EncodeNewOrder());
    if (!s.ok()) return s;

    std::vector<PartitionId> stock_partitions;
    for (uint32_t line = 0; line < items.size(); ++line) {
      const auto& oi = items[line];
      stock_partitions.push_back(wl->StockPartition(oi.supply_w, oi.item));
      // Item price (static read-only table).
      s = ctx.Get(RecordKey{TpccWorkload::kItem, wl->ItemKey(oi.item)}, &raw);
      if (!s.ok()) return s;
      if (Status p = ParseRow(raw, &row); !p.ok()) return p;
      const double price = row.GetDouble(0);

      // Stock update at the supply warehouse.
      const RecordKey stock_key{TpccWorkload::kStock,
                                wl->StockKey(oi.supply_w, oi.item)};
      s = ctx.Get(stock_key, &raw);
      if (!s.ok()) return s;
      if (Status p = ParseRow(raw, &row); !p.ok()) return p;
      uint64_t quantity = row.GetUint64(0);
      quantity = quantity >= oi.qty + 10 ? quantity - oi.qty
                                         : quantity - oi.qty + 91;
      row.SetUint64(0, quantity);
      row.SetDouble(1, row.GetDouble(1) + oi.qty);
      row.SetUint64(2, row.GetUint64(2) + 1);
      if (oi.supply_w != w) row.SetUint64(3, row.GetUint64(3) + 1);
      s = ctx.Put(stock_key, row.Encode());
      if (!s.ok()) return s;

      const double amount =
          oi.qty * price * (1.0 + w_tax + d_tax) * (1.0 - discount);
      s = ctx.Insert(RecordKey{TpccWorkload::kOrderLine,
                               wl->OrderLineKey(w, d, o_id, line)},
                     EncodeOrderLine(oi.item, oi.supply_w, oi.qty, amount));
      if (!s.ok()) return s;
    }
    // Reconnaissance memory for Stock-Level read-set declarations.
    wl->RecordOrderStockPartitions(w, d, stock_partitions);
    return Status::OK();
  };
  return txn;
}

WorkloadTxn TpccClient::MakePayment() {
  TpccWorkload* wl = workload_;
  const auto& opt = wl->options();
  const uint32_t w = home_warehouse_;
  const uint32_t d =
      static_cast<uint32_t>(rng_.Uniform(opt.districts_per_warehouse));
  const bool remote =
      rng_.Uniform(100) < opt.remote_payment_pct && opt.num_warehouses > 1;
  const uint32_t c_w = remote ? RandomOtherWarehouse(w) : w;
  const uint32_t c_d =
      static_cast<uint32_t>(rng_.Uniform(opt.districts_per_warehouse));
  const uint32_t c =
      static_cast<uint32_t>(rng_.Uniform(opt.customers_per_district));
  const double amount = 1.0 + static_cast<double>(rng_.Uniform(499900)) / 100.0;
  const uint64_t history_unique =
      (client_tag_ << 20) | (history_seq_++ & 0xfffff);

  WorkloadTxn txn;
  txn.type = "payment";
  txn.profile.write_keys = {
      RecordKey{TpccWorkload::kWarehouse, wl->WarehouseKey(w)},
      RecordKey{TpccWorkload::kDistrict, wl->DistrictKey(w, d)},
      RecordKey{TpccWorkload::kCustomer, wl->CustomerKey(c_w, c_d, c)},
  };
  txn.logic = [wl, w, d, c_w, c_d, c, amount,
               history_unique](core::TxnContext& ctx) -> Status {
    std::string raw;
    RowBuffer row;
    const RecordKey w_key{TpccWorkload::kWarehouse, wl->WarehouseKey(w)};
    Status s = ctx.Get(w_key, &raw);
    if (!s.ok()) return s;
    if (Status p = ParseRow(raw, &row); !p.ok()) return p;
    row.SetDouble(0, row.GetDouble(0) + amount);
    s = ctx.Put(w_key, row.Encode());
    if (!s.ok()) return s;

    const RecordKey d_key{TpccWorkload::kDistrict, wl->DistrictKey(w, d)};
    s = ctx.Get(d_key, &raw);
    if (!s.ok()) return s;
    if (Status p = ParseRow(raw, &row); !p.ok()) return p;
    row.SetDouble(0, row.GetDouble(0) + amount);
    s = ctx.Put(d_key, row.Encode());
    if (!s.ok()) return s;

    const RecordKey c_key{TpccWorkload::kCustomer,
                          wl->CustomerKey(c_w, c_d, c)};
    s = ctx.Get(c_key, &raw);
    if (!s.ok()) return s;
    if (Status p = ParseRow(raw, &row); !p.ok()) return p;
    row.SetDouble(0, row.GetDouble(0) - amount);
    row.SetDouble(1, row.GetDouble(1) + amount);
    row.SetInt64(2, row.GetInt64(2) + 1);
    s = ctx.Put(c_key, row.Encode());
    if (!s.ok()) return s;

    return ctx.Insert(RecordKey{TpccWorkload::kHistory,
                                wl->HistoryKey(w, d, history_unique)},
                      EncodeHistory(amount));
  };
  return txn;
}

WorkloadTxn TpccClient::MakeStockLevel() {
  TpccWorkload* wl = workload_;
  const auto& opt = wl->options();
  const uint32_t w = home_warehouse_;
  const uint32_t d =
      static_cast<uint32_t>(rng_.Uniform(opt.districts_per_warehouse));
  const uint64_t threshold = rng_.UniformRange(10, 20);

  WorkloadTxn txn;
  txn.type = "stock-level";
  txn.profile.read_only = true;
  // Declared read partitions (reconnaissance; Section II-B1): the home
  // district partition (district row, orders, order lines) plus the stock
  // partitions the district's recent orders touched.
  txn.profile.read_partitions.push_back(wl->DistrictPartition(w, d));
  for (PartitionId p : wl->RecentStockPartitions(w, d)) {
    txn.profile.read_partitions.push_back(p);
  }
  txn.logic = [wl, w, d, threshold](core::TxnContext& ctx) -> Status {
    std::string raw;
    RowBuffer row;
    Status s = ctx.Get(RecordKey{TpccWorkload::kDistrict,
                                 wl->DistrictKey(w, d)}, &raw);
    if (!s.ok()) return s;
    if (Status p = ParseRow(raw, &row); !p.ok()) return p;
    const uint64_t next_o_id = row.GetUint64(2);

    uint64_t low_stock = 0;
    const uint64_t first =
        next_o_id > 20 ? next_o_id - 20 : 1;
    for (uint64_t o = first; o < next_o_id; ++o) {
      s = ctx.Get(RecordKey{TpccWorkload::kOrder, wl->OrderKey(w, d, o)},
                  &raw);
      if (s.IsNotFound()) continue;  // not yet visible in this snapshot
      if (!s.ok()) return s;
      if (Status p = ParseRow(raw, &row); !p.ok()) return p;
      const uint64_t ol_cnt = row.GetUint64(1);
      for (uint64_t line = 0; line < ol_cnt; ++line) {
        s = ctx.Get(RecordKey{TpccWorkload::kOrderLine,
                              wl->OrderLineKey(w, d, o,
                                               static_cast<uint32_t>(line))},
                    &raw);
        if (s.IsNotFound()) continue;
        if (!s.ok()) return s;
        RowBuffer ol;
        if (Status p = ParseRow(raw, &ol); !p.ok()) return p;
        const uint32_t item = static_cast<uint32_t>(ol.GetUint64(0));
        const uint32_t supply = static_cast<uint32_t>(ol.GetUint64(1));
        s = ctx.Get(RecordKey{TpccWorkload::kStock,
                              wl->StockKey(supply, item)}, &raw);
        if (s.IsNotFound()) continue;
        if (!s.ok()) return s;
        RowBuffer stock;
        if (Status p = ParseRow(raw, &stock); !p.ok()) return p;
        if (stock.GetUint64(0) < threshold) ++low_stock;
      }
    }
    (void)low_stock;
    return Status::OK();
  };
  return txn;
}

WorkloadTxn TpccClient::MakeOrderStatus() {
  TpccWorkload* wl = workload_;
  const auto& opt = wl->options();
  const uint32_t w = home_warehouse_;
  const uint32_t d =
      static_cast<uint32_t>(rng_.Uniform(opt.districts_per_warehouse));
  const uint32_t c =
      static_cast<uint32_t>(rng_.Uniform(opt.customers_per_district));

  WorkloadTxn txn;
  txn.type = "order-status";
  txn.profile.read_only = true;
  txn.profile.read_partitions = {wl->DistrictPartition(w, d)};
  txn.profile.read_keys.push_back(
      RecordKey{TpccWorkload::kCustomer, wl->CustomerKey(w, d, c)});
  txn.logic = [wl, w, d, c](core::TxnContext& ctx) -> Status {
    std::string raw;
    RowBuffer row;
    // Customer balance.
    Status s = ctx.Get(RecordKey{TpccWorkload::kCustomer,
                                 wl->CustomerKey(w, d, c)}, &raw);
    if (!s.ok()) return s;
    if (Status p = ParseRow(raw, &row); !p.ok()) return p;
    // Find the customer's most recent order (scan back up to 20 orders
    // from the district's order horizon).
    s = ctx.Get(RecordKey{TpccWorkload::kDistrict, wl->DistrictKey(w, d)},
                &raw);
    if (!s.ok()) return s;
    if (Status p = ParseRow(raw, &row); !p.ok()) return p;
    const uint64_t next_o_id = row.GetUint64(2);
    const uint64_t first = next_o_id > 20 ? next_o_id - 20 : 1;
    for (uint64_t o = next_o_id; o-- > first;) {
      s = ctx.Get(RecordKey{TpccWorkload::kOrder, wl->OrderKey(w, d, o)},
                  &raw);
      if (s.IsNotFound()) continue;
      if (!s.ok()) return s;
      RowBuffer order;
      if (Status p = ParseRow(raw, &order); !p.ok()) return p;
      if (order.GetUint64(0) != c) continue;
      // Read its order lines.
      const uint64_t lines = order.GetUint64(1);
      for (uint64_t line = 0; line < lines; ++line) {
        s = ctx.Get(RecordKey{TpccWorkload::kOrderLine,
                              wl->OrderLineKey(w, d, o,
                                               static_cast<uint32_t>(line))},
                    &raw);
        if (s.IsNotFound()) continue;
        if (!s.ok()) return s;
      }
      break;
    }
    return Status::OK();
  };
  return txn;
}

}  // namespace

std::unique_ptr<WorkloadClient> TpccWorkload::MakeClient(uint64_t index) {
  return std::make_unique<TpccClient>(
      this, index, options_.seed * 0x2545f4914f6cdd1dULL + index + 1);
}

}  // namespace dynamast::workloads
