#include "workloads/system_factory.h"

#include "baselines/leap_system.h"
#include "baselines/partitioned_system.h"
#include "baselines/static_placement.h"
#include "core/dynamast_system.h"

namespace dynamast::workloads {

const char* SystemKindName(SystemKind kind) {
  switch (kind) {
    case SystemKind::kDynaMast:
      return "dynamast";
    case SystemKind::kSingleMaster:
      return "single-master";
    case SystemKind::kMultiMaster:
      return "multi-master";
    case SystemKind::kPartitionStore:
      return "partition-store";
    case SystemKind::kLeap:
      return "leap";
  }
  return "unknown";
}

std::vector<SystemKind> AllSystems() {
  return {SystemKind::kDynaMast, SystemKind::kSingleMaster,
          SystemKind::kMultiMaster, SystemKind::kPartitionStore,
          SystemKind::kLeap};
}

namespace {

// Strips the wall-clock inputs out of the selector's workload model (see
// DeploymentOptions::deterministic).
void MakeSelectorDeterministic(selector::SelectorOptions* selector) {
  selector->adaptive_sampling = false;
  selector->stats.inter_txn_window = std::chrono::hours(24 * 365);
  selector->stats.sample_ttl = std::chrono::hours(24 * 365);
}

core::Cluster::Options ClusterOptions(const DeploymentOptions& options) {
  core::Cluster::Options cluster;
  cluster.num_sites = options.num_sites;
  cluster.network.one_way_latency = options.one_way_latency;
  cluster.network.charge_delays = options.charge_network;
  cluster.site.worker_slots = options.worker_slots;
  cluster.site.read_op_cost = options.read_op_cost;
  cluster.site.write_op_cost = options.write_op_cost;
  cluster.site.apply_op_cost = options.apply_op_cost;
  cluster.record_history = options.record_history;
  cluster.metrics = options.metrics;
  cluster.trace = options.trace;
  return cluster;
}

}  // namespace

std::unique_ptr<core::SystemInterface> MakeSystem(
    SystemKind kind, const DeploymentOptions& options,
    const Partitioner& partitioner) {
  const size_t num_partitions = partitioner.NumPartitions();
  const std::vector<SiteId> placement =
      options.static_placement.empty()
          ? baselines::RangePlacement(num_partitions, options.num_sites)
          : options.static_placement;
  switch (kind) {
    case SystemKind::kDynaMast: {
      core::DynaMastSystem::Options o;
      o.cluster = ClusterOptions(options);
      o.selector.weights = options.weights;
      o.selector.sample_rate = options.sample_rate;
      o.selector.seed = options.seed;
      if (options.deterministic) MakeSelectorDeterministic(&o.selector);
      o.placement = core::InitialPlacement::kRoundRobin;
      return std::make_unique<core::DynaMastSystem>(o, &partitioner);
    }
    case SystemKind::kSingleMaster: {
      core::DynaMastSystem::Options o;
      o.cluster = ClusterOptions(options);
      o.selector.seed = options.seed;
      if (options.deterministic) MakeSelectorDeterministic(&o.selector);
      o = core::DynaMastSystem::SingleMasterOptions(std::move(o));
      return std::make_unique<core::DynaMastSystem>(o, &partitioner);
    }
    case SystemKind::kMultiMaster: {
      auto o = baselines::PartitionedSystem::MultiMaster(
          ClusterOptions(options), placement);
      o.seed = options.seed;
      return std::make_unique<baselines::PartitionedSystem>(o, &partitioner);
    }
    case SystemKind::kPartitionStore: {
      auto o = baselines::PartitionedSystem::PartitionStore(
          ClusterOptions(options), placement);
      o.seed = options.seed;
      return std::make_unique<baselines::PartitionedSystem>(o, &partitioner);
    }
    case SystemKind::kLeap: {
      baselines::LeapSystem::Options o;
      o.cluster = ClusterOptions(options);
      o.cluster.replicated = false;
      o.placement = placement;
      return std::make_unique<baselines::LeapSystem>(o, &partitioner);
    }
  }
  return nullptr;
}

}  // namespace dynamast::workloads
