#ifndef DYNAMAST_WORKLOADS_SMALLBANK_H_
#define DYNAMAST_WORKLOADS_SMALLBANK_H_

#include <cstdint>
#include <memory>

#include "common/random.h"
#include "workloads/workload.h"

namespace dynamast::workloads {

/// SmallBank (Appendix F): a banking workload of *short* transactions —
/// at most two rows each — that stresses the transaction protocol itself
/// rather than transaction logic. Mix (per the paper):
///   45% single-row updates   (DepositChecking / TransactSavings)
///   40% two-row updates      (SendPayment / WriteCheck / Amalgamate)
///   15% read-only            (Balance: checking + savings of one user)
///
/// Accounts live in `accounts_per_partition`-sized partitions; two-row
/// transactions pick their second account from a nearby partition with
/// probability `locality_pct` (triggering remastering/2PC/shipping when
/// the partitions master at different sites), otherwise uniformly.
class SmallBankWorkload final : public Workload {
 public:
  struct Options {
    uint64_t num_accounts = 100'000;
    uint64_t accounts_per_partition = 100;
    uint32_t single_update_pct = 45;
    uint32_t two_row_update_pct = 40;  // remainder is Balance (read-only)
    /// Probability (%) that a two-row transaction's second account comes
    /// from the Bernoulli neighbourhood of the first.
    uint32_t locality_pct = 80;
    bool zipfian = false;
    double zipf_theta = 0.75;
    double initial_balance = 10'000.0;
    uint64_t seed = 4242;
  };

  static constexpr TableId kChecking = 1;
  static constexpr TableId kSavings = 2;

  explicit SmallBankWorkload(const Options& options);

  std::string name() const override { return "smallbank"; }
  const Partitioner& partitioner() const override { return *partitioner_; }
  Status Load(core::SystemInterface& system) override;
  std::unique_ptr<WorkloadClient> MakeClient(uint64_t index) override;

  const Options& options() const { return options_; }
  uint64_t num_partitions() const { return num_partitions_; }

  /// Balance encoding helpers (double <-> value bytes).
  static std::string MakeBalance(double balance);
  static double BalanceOf(const std::string& value);

 private:
  friend class SmallBankClient;

  Options options_;
  uint64_t num_partitions_;
  std::unique_ptr<FunctionPartitioner> partitioner_;
};

}  // namespace dynamast::workloads

#endif  // DYNAMAST_WORKLOADS_SMALLBANK_H_
