#ifndef DYNAMAST_WORKLOADS_WORKLOAD_H_
#define DYNAMAST_WORKLOADS_WORKLOAD_H_

#include <memory>
#include <string>

#include "common/partitioner.h"
#include "core/system_interface.h"

namespace dynamast::workloads {

/// One generated transaction: its declared profile plus the stored
/// procedure to run, tagged with a type name for per-transaction-class
/// latency reporting (e.g. "new-order", "rmw", "balance").
struct WorkloadTxn {
  core::TxnProfile profile;
  core::TxnLogic logic;
  const char* type = "txn";
};

/// Per-client transaction generator. Clients are stateful: YCSB clients
/// carry an affinity region they work against for a configurable number of
/// transactions before being "replaced" (Appendix C); TPC-C clients carry
/// their home warehouse.
class WorkloadClient {
 public:
  virtual ~WorkloadClient() = default;
  virtual WorkloadTxn Next() = 0;
};

/// A benchmark workload: schema + loader + client generator factory.
/// The workload also owns the deployment's partitioner, because the
/// partition layout (the unit of mastership) is workload-defined.
class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string name() const = 0;

  /// The partition layout for this workload.
  virtual const Partitioner& partitioner() const = 0;

  /// Creates tables and loads initial rows into `system`. Call exactly
  /// once per system, before Seal().
  virtual Status Load(core::SystemInterface& system) = 0;

  /// Creates the `index`-th client's generator (deterministic per index).
  virtual std::unique_ptr<WorkloadClient> MakeClient(uint64_t index) = 0;
};

}  // namespace dynamast::workloads

#endif  // DYNAMAST_WORKLOADS_WORKLOAD_H_
