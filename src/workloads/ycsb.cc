#include "workloads/ycsb.h"

#include <algorithm>
#include <cstring>
#include <numeric>

namespace dynamast::workloads {

YcsbWorkload::YcsbWorkload(const Options& options)
    : options_(options),
      num_partitions_((options.num_keys + options.keys_per_partition - 1) /
                      options.keys_per_partition),
      partitioner_(options.keys_per_partition, num_partitions_) {
  order_.resize(num_partitions_);
  position_.resize(num_partitions_);
  std::iota(order_.begin(), order_.end(), 0);
  std::iota(position_.begin(), position_.end(), 0);
  if (options_.shuffle_correlations) ShuffleCorrelations(options_.seed ^ 0x5f);
}

void YcsbWorkload::ShuffleCorrelations(uint64_t seed) {
  RawMutexLock guard(order_mu_);
  Random rng(seed);
  for (size_t i = order_.size(); i > 1; --i) {
    std::swap(order_[i - 1], order_[rng.Uniform(i)]);
  }
  for (uint64_t pos = 0; pos < order_.size(); ++pos) {
    position_[order_[pos]] = pos;
  }
  order_epoch_++;
}

PartitionId YcsbWorkload::OrderedAt(uint64_t pos) const {
  RawMutexLock guard(order_mu_);
  return order_[pos];
}

uint64_t YcsbWorkload::PositionOf(PartitionId p) const {
  RawMutexLock guard(order_mu_);
  return position_[p];
}

std::string YcsbWorkload::MakeValue(uint64_t counter, size_t value_size) {
  std::string value(std::max(value_size, sizeof(uint64_t)), 'x');
  std::memcpy(value.data(), &counter, sizeof(uint64_t));
  return value;
}

uint64_t YcsbWorkload::ValueCounter(const std::string& value) {
  uint64_t counter = 0;
  if (value.size() >= sizeof(uint64_t)) {
    std::memcpy(&counter, value.data(), sizeof(uint64_t));
  }
  return counter;
}

Status YcsbWorkload::Load(core::SystemInterface& system) {
  Status s = system.CreateTable(kTable);
  if (!s.ok() && !s.IsAlreadyExists()) return s;
  for (uint64_t key = 0; key < options_.num_keys; ++key) {
    Status s = system.LoadRow(RecordKey{kTable, key},
                              MakeValue(0, options_.value_size));
    if (!s.ok()) return s;
  }
  return Status::OK();
}

namespace {

/// One YCSB client: an affinity region plus the Appendix C key-selection
/// machinery.
class YcsbClient final : public WorkloadClient {
 public:
  YcsbClient(YcsbWorkload* workload, uint64_t seed)
      : workload_(workload), rng_(seed) {
    if (workload_->options().zipfian) {
      if (workload_->options().scramble_zipf) {
        scrambled_zipf_ = std::make_unique<ScrambledZipfianGenerator>(
            workload_->num_partitions(), workload_->options().zipf_theta);
      } else {
        zipf_ = std::make_unique<ZipfianGenerator>(
            workload_->num_partitions(), workload_->options().zipf_theta);
      }
    }
    RenewAffinity();
  }

  WorkloadTxn Next() override {
    const auto& opt = workload_->options();
    if (txns_in_affinity_ >= opt.affinity_txns) RenewAffinity();
    txns_in_affinity_++;
    const bool rmw = rng_.Uniform(100) < opt.rmw_pct;
    return rmw ? MakeRmw() : MakeScan();
  }

 private:
  void RenewAffinity() {
    // A replaced client works against a fresh correlated region whose base
    // is drawn from the access distribution.
    if (zipf_ != nullptr) {
      affinity_position_ = zipf_->Next(rng_);
    } else if (scrambled_zipf_ != nullptr) {
      affinity_position_ = scrambled_zipf_->Next(rng_);
    } else {
      affinity_position_ = rng_.Uniform(workload_->num_partitions());
    }
    txns_in_affinity_ = 0;
  }

  uint64_t ClampPosition(int64_t pos) const {
    const int64_t max_pos =
        static_cast<int64_t>(workload_->num_partitions()) - 1;
    return static_cast<uint64_t>(std::clamp<int64_t>(pos, 0, max_pos));
  }

  uint64_t KeyIn(PartitionId partition) {
    const auto& opt = workload_->options();
    const uint64_t base = partition * opt.keys_per_partition;
    const uint64_t span =
        std::min(opt.keys_per_partition, opt.num_keys - base);
    return base + rng_.Uniform(span);
  }

  WorkloadTxn MakeRmw() {
    const auto& opt = workload_->options();
    // Base partition = the affinity region's base; companions from the
    // Bernoulli(5, 0.5) neighbourhood (offset = successes - 3, so one
    // success means two positions before the base, five means two after).
    std::vector<uint64_t> positions;
    positions.push_back(affinity_position_);
    for (uint32_t i = 1; i < opt.keys_per_rmw; ++i) {
      const int64_t offset =
          static_cast<int64_t>(rng_.Binomial(5, 0.5)) - 3;
      positions.push_back(
          ClampPosition(static_cast<int64_t>(affinity_position_) + offset));
    }
    std::vector<RecordKey> keys;
    keys.reserve(positions.size());
    for (uint64_t pos : positions) {
      keys.push_back(RecordKey{YcsbWorkload::kTable,
                               KeyIn(workload_->OrderedAt(pos))});
    }
    WorkloadTxn txn;
    txn.type = "rmw";
    txn.profile.write_keys = keys;
    txn.profile.read_keys = keys;
    const size_t value_size = opt.value_size;
    // The profile copies above are the last readers; the closure takes
    // ownership of the key set instead of a third copy.
    txn.logic = [keys = std::move(keys),
                 value_size](core::TxnContext& ctx) -> Status {
      for (const RecordKey& key : keys) {
        std::string value;
        Status s = ctx.Get(key, &value);
        if (!s.ok()) return s;
        s = ctx.Put(key, YcsbWorkload::MakeValue(
                             YcsbWorkload::ValueCounter(value) + 1,
                             value_size));
        if (!s.ok()) return s;
      }
      return Status::OK();
    };
    return txn;
  }

  WorkloadTxn MakeScan() {
    const auto& opt = workload_->options();
    const uint64_t k = rng_.UniformRange(opt.min_scan_partitions,
                                         opt.max_scan_partitions);
    std::vector<RecordKey> keys;
    keys.reserve(k * opt.keys_per_partition);
    for (uint64_t i = 0; i < k; ++i) {
      const PartitionId partition = workload_->OrderedAt(
          ClampPosition(static_cast<int64_t>(affinity_position_ + i)));
      const uint64_t base = partition * opt.keys_per_partition;
      const uint64_t end =
          std::min(base + opt.keys_per_partition, opt.num_keys);
      for (uint64_t key = base; key < end; ++key) {
        keys.push_back(RecordKey{YcsbWorkload::kTable, key});
      }
    }
    WorkloadTxn txn;
    txn.type = "scan";
    txn.profile.read_only = true;
    txn.profile.read_keys = keys;
    // Profile copy above is the last reader; the closure takes ownership.
    txn.logic = [keys = std::move(keys)](core::TxnContext& ctx) -> Status {
      uint64_t checksum = 0;
      std::string value;
      for (const RecordKey& key : keys) {
        Status s = ctx.Get(key, &value);
        if (!s.ok()) return s;
        checksum += YcsbWorkload::ValueCounter(value);
      }
      (void)checksum;
      return Status::OK();
    };
    return txn;
  }

  YcsbWorkload* workload_;
  Random rng_;
  std::unique_ptr<ZipfianGenerator> zipf_;
  std::unique_ptr<ScrambledZipfianGenerator> scrambled_zipf_;
  uint64_t affinity_position_ = 0;
  uint64_t txns_in_affinity_ = 0;
};

}  // namespace

std::unique_ptr<WorkloadClient> YcsbWorkload::MakeClient(uint64_t index) {
  return std::make_unique<YcsbClient>(
      this, options_.seed * 0x9e3779b97f4a7c15ULL + index + 1);
}

}  // namespace dynamast::workloads
