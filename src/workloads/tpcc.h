#ifndef DYNAMAST_WORKLOADS_TPCC_H_
#define DYNAMAST_WORKLOADS_TPCC_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "common/debug_mutex.h"
#include "common/random.h"
#include "workloads/workload.h"

namespace dynamast::workloads {

/// TPC-C as evaluated in the paper (Section VI-A2): the New-Order and
/// Payment update transactions plus the read-only Stock-Level transaction,
/// at a 45/45/10 default mix, partitioned by warehouse (the placement
/// Schism selects). Cross-warehouse New-Order and Payment percentages are
/// the knobs of experiments E6 and E16.
///
/// Scaled-down cardinalities (warehouses, customers, items) keep runs
/// laptop-sized; every count is configurable (see DESIGN.md).
///
/// Partition layout (the unit of mastership / remastering / 2PC). The
/// site selector remasters *partition groups*, so granularity matters: a
/// cross-warehouse New-Order should move only the remote stock rows it
/// touches, not the whole remote warehouse. Per warehouse w:
///   * 1 warehouse partition (the warehouse row — payment YTD),
///   * D district partitions — district d plus the orders / order lines /
///     new-order / history rows of (w, d) (inserted rows stay in the
///     partition their district masters),
///   * D customer partitions — the customers of (w, d) (moved only by
///     remote payments),
///   * ceil(items/stock_group_size) stock partitions of contiguous items
///     (moved by cross-warehouse New-Orders).
/// One final static partition holds the read-only ITEM table.
/// Partition ids are warehouse-major, so by-warehouse placement (what
/// Schism picks) is WarehousePlacement().
class TpccWorkload final : public Workload {
 public:
  struct Options {
    uint32_t num_warehouses = 4;
    uint32_t districts_per_warehouse = 10;
    uint32_t customers_per_district = 300;
    uint32_t num_items = 2000;
    /// Initial orders per district (gives Stock-Level data on a cold run).
    uint32_t initial_orders_per_district = 10;
    uint32_t min_items_per_order = 5;
    uint32_t max_items_per_order = 15;
    /// Percentage of New-Order transactions that include remote-warehouse
    /// supply items (cross-warehouse; default ≈ TPC-C's ~10%).
    uint32_t cross_warehouse_neworder_pct = 10;
    /// Percentage of Payment transactions paying a remote customer.
    uint32_t remote_payment_pct = 15;
    /// Transaction mix percentages (must sum to 100).
    /// Transaction mix percentages (must sum to <= 100; any remainder is
    /// Order-Status). The paper evaluates the 45/45/10 three-transaction
    /// mix; Order-Status (read-only: a customer's most recent order and
    /// its lines) is provided for TPC-C completeness and defaults to 0.
    uint32_t new_order_pct = 45;
    uint32_t payment_pct = 45;
    uint32_t stock_level_pct = 10;
    /// Contiguous items per stock partition (mastership granularity). The
    /// ratio stock_group_size / num_items controls how often a home
    /// New-Order touches a stock group a cross-warehouse order dragged
    /// away — keep it small or remastering ping-pongs (see DESIGN.md).
    uint32_t stock_group_size = 10;
    /// Contiguous customers per customer partition (moved by remote
    /// payments).
    uint32_t customer_group_size = 30;
    uint64_t seed = 99;
  };

  // Table ids.
  static constexpr TableId kWarehouse = 10;
  static constexpr TableId kDistrict = 11;
  static constexpr TableId kCustomer = 12;
  static constexpr TableId kHistory = 13;
  static constexpr TableId kNewOrderTable = 14;
  static constexpr TableId kOrder = 15;
  static constexpr TableId kOrderLine = 16;
  static constexpr TableId kItem = 17;
  static constexpr TableId kStock = 18;

  explicit TpccWorkload(const Options& options);

  std::string name() const override { return "tpcc"; }
  const Partitioner& partitioner() const override { return *partitioner_; }
  Status Load(core::SystemInterface& system) override;
  std::unique_ptr<WorkloadClient> MakeClient(uint64_t index) override;

  const Options& options() const { return options_; }

  // ---- Partition layout --------------------------------------------------
  uint32_t StockGroupsPerWarehouse() const {
    return (options_.num_items + options_.stock_group_size - 1) /
           options_.stock_group_size;
  }
  uint32_t CustomerGroupsPerDistrict() const {
    return (options_.customers_per_district + options_.customer_group_size -
            1) /
           options_.customer_group_size;
  }
  uint32_t PartitionsPerWarehouse() const {
    return 1 +
           options_.districts_per_warehouse *
               (1 + CustomerGroupsPerDistrict()) +
           StockGroupsPerWarehouse();
  }
  PartitionId WarehousePartition(uint32_t w) const {
    return static_cast<PartitionId>(w) * PartitionsPerWarehouse();
  }
  PartitionId DistrictPartition(uint32_t w, uint32_t d) const {
    return WarehousePartition(w) + 1 + d;
  }
  PartitionId CustomerPartition(uint32_t w, uint32_t d, uint32_t c) const {
    return WarehousePartition(w) + 1 + options_.districts_per_warehouse +
           d * CustomerGroupsPerDistrict() + c / options_.customer_group_size;
  }
  PartitionId StockPartition(uint32_t w, uint32_t item) const {
    return WarehousePartition(w) + 1 +
           options_.districts_per_warehouse *
               (1 + CustomerGroupsPerDistrict()) +
           item / options_.stock_group_size;
  }
  /// The static read-only ITEM partition (last id).
  PartitionId ItemPartition() const {
    return static_cast<PartitionId>(options_.num_warehouses) *
           PartitionsPerWarehouse();
  }
  /// Home warehouse of partition `p` (ItemPartition has no warehouse).
  uint32_t WarehouseOfPartition(PartitionId p) const {
    return static_cast<uint32_t>(p / PartitionsPerWarehouse());
  }

  /// The by-warehouse placement Schism selects for TPC-C: every partition
  /// of warehouse w at site w % num_sites; the ITEM partition (static,
  /// replicated) nominally at site 0.
  std::vector<SiteId> WarehousePlacement(uint32_t num_sites) const;

  // ---- Key encodings ---------------------------------------------------
  uint64_t WarehouseKey(uint32_t w) const { return w; }
  uint64_t DistrictKey(uint32_t w, uint32_t d) const {
    return static_cast<uint64_t>(w) * options_.districts_per_warehouse + d;
  }
  uint64_t CustomerKey(uint32_t w, uint32_t d, uint32_t c) const {
    return DistrictKey(w, d) * options_.customers_per_district + c;
  }
  uint64_t OrderKey(uint32_t w, uint32_t d, uint64_t o) const {
    return (static_cast<uint64_t>(DistrictKey(w, d)) << 32) | o;
  }
  uint64_t OrderLineKey(uint32_t w, uint32_t d, uint64_t o,
                        uint32_t line) const {
    return (static_cast<uint64_t>(DistrictKey(w, d)) << 40) | (o << 8) | line;
  }
  uint64_t ItemKey(uint32_t i) const { return i; }
  uint64_t StockKey(uint32_t w, uint32_t i) const {
    return static_cast<uint64_t>(w) * options_.num_items + i;
  }
  uint64_t HistoryKey(uint32_t w, uint32_t d, uint64_t unique) const {
    return (static_cast<uint64_t>(DistrictKey(w, d)) << 40) | unique;
  }

  /// Reconnaissance memory (stands in for the reconnaissance queries of
  /// Section II-B1): which stock partitions the recent orders of (w, d)
  /// touched — drives Stock-Level's declared read partitions.
  void RecordOrderStockPartitions(
      uint32_t w, uint32_t d, const std::vector<PartitionId>& stock_partitions)
      DYNAMAST_EXCLUDES(recon_mu_);
  std::vector<PartitionId> RecentStockPartitions(uint32_t w, uint32_t d) const
      DYNAMAST_EXCLUDES(recon_mu_);

 private:
  friend class TpccClient;

  Options options_;
  std::unique_ptr<FunctionPartitioner> partitioner_;

  mutable RawMutex recon_mu_;
  /// Per district: stock-partition sets of recent orders (bounded deque).
  std::vector<std::deque<std::vector<PartitionId>>> recent_orders_
      DYNAMAST_GUARDED_BY(recon_mu_);
  std::atomic<uint64_t> history_counter_{1};
};

}  // namespace dynamast::workloads

#endif  // DYNAMAST_WORKLOADS_TPCC_H_
