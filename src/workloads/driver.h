#ifndef DYNAMAST_WORKLOADS_DRIVER_H_
#define DYNAMAST_WORKLOADS_DRIVER_H_

#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/latency_recorder.h"
#include "common/metrics.h"
#include "core/system_interface.h"
#include "workloads/workload.h"

namespace dynamast::workloads {

/// Closed-loop benchmark driver: `num_clients` client threads each own a
/// session and a workload generator and issue transactions back-to-back
/// (the OLTPBench-style harness of Section VI-A2, scaled down). Latencies
/// and throughput are recorded only inside the measurement window (after
/// warmup); an optional per-interval timeline supports the adaptivity
/// experiment, and scheduled actions let an experiment mutate the workload
/// mid-run (e.g. shuffle YCSB correlations).
class Driver {
 public:
  struct Options {
    uint32_t num_clients = 32;
    std::chrono::milliseconds warmup{1000};
    std::chrono::milliseconds measure{3000};
    /// If > 0, committed-transaction counts are bucketed by completion
    /// time over the whole run (warmup included) at this resolution.
    std::chrono::milliseconds timeline_resolution{0};
    /// Actions fired at fixed offsets from the start of the run.
    std::vector<std::pair<std::chrono::milliseconds, std::function<void()>>>
        scheduled_actions;
    uint64_t seed = 1;
    /// Fixed-count mode: when > 0, each client runs exactly this many
    /// transactions and exits — no wall-clock controller, no warmup
    /// window, everything measured. The run's length then depends only on
    /// the work done, not machine speed, which is what record/replay and
    /// systematic exploration need for byte-identical histories.
    uint64_t ops_per_client = 0;
    /// Registry for driver-level metrics (driver_committed_total{type},
    /// driver_aborted_total{reason}), bumped once at merge time. Null
    /// disables export.
    metrics::Registry* metrics = nullptr;
  };

  struct Report {
    uint64_t committed = 0;
    uint64_t errors = 0;
    double seconds = 0;
    double Throughput() const {
      return seconds > 0 ? static_cast<double>(committed) / seconds : 0;
    }
    uint64_t remastered_txns = 0;
    uint64_t distributed_txns = 0;
    uint64_t retries = 0;
    /// Failed executions by StatusCodeName (e.g. "SnapshotTooOld").
    /// Values sum exactly to `errors` — the driver's abort accounting is
    /// split by reason, never lumped.
    std::map<std::string, uint64_t> aborted_by_reason;
    std::map<std::string, uint64_t> committed_by_type;
    std::map<std::string, std::unique_ptr<LatencyRecorder>> latency_by_type;
    /// Committed transactions per timeline bucket (whole run).
    std::vector<uint64_t> timeline;

    const LatencyRecorder* LatencyFor(const std::string& type) const {
      auto it = latency_by_type.find(type);
      return it == latency_by_type.end() ? nullptr : it->second.get();
    }
    /// One-line headline: "tput=... txn/s committed=... errors=...".
    std::string Summary() const;
  };

  explicit Driver(const Options& options) : options_(options) {}

  /// Runs the workload against the system (already loaded and sealed).
  /// Blocks the caller for the full run duration (client threads sleep out
  /// their pacing and the controller sleeps until the end of the run).
  DYNAMAST_BLOCKING DYNAMAST_HOT_PATH Report
  Run(core::SystemInterface& system, Workload& workload);

 private:
  Options options_;
};

}  // namespace dynamast::workloads

#endif  // DYNAMAST_WORKLOADS_DRIVER_H_
