#ifndef DYNAMAST_WORKLOADS_SYSTEM_FACTORY_H_
#define DYNAMAST_WORKLOADS_SYSTEM_FACTORY_H_

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/partitioner.h"
#include "core/system_interface.h"
#include "selector/strategy.h"

namespace dynamast::workloads {

/// The five systems of the evaluation (Section VI-A1).
enum class SystemKind {
  kDynaMast,
  kSingleMaster,
  kMultiMaster,
  kPartitionStore,
  kLeap,
};

const char* SystemKindName(SystemKind kind);

/// All five, in the paper's reporting order.
std::vector<SystemKind> AllSystems();

/// Deployment parameters shared by every system in one experiment, so the
/// comparison is apples-to-apples: same sites, same simulated network,
/// same storage, same service-time model.
struct DeploymentOptions {
  uint32_t num_sites = 4;
  size_t worker_slots = 4;
  std::chrono::microseconds read_op_cost{10};
  std::chrono::microseconds write_op_cost{500};
  std::chrono::microseconds apply_op_cost{100};
  std::chrono::microseconds one_way_latency{250};
  bool charge_network = true;
  selector::StrategyWeights weights;  // DynaMast only
  double sample_rate = 0.25;          // DynaMast only
  /// Placement for the statically partitioned systems (multi-master,
  /// partition-store, LEAP). Empty = RangePlacement over partition ids;
  /// TPC-C passes TpccWorkload::WarehousePlacement.
  std::vector<SiteId> static_placement;
  uint64_t seed = 31;
  /// Record per-transaction histories for the offline SI auditor
  /// (tools/si_checker). Off in benchmarks.
  bool record_history = false;
  /// Metrics registry the deployment exports into (null = process-global).
  metrics::Registry* metrics = nullptr;
  /// Record per-transaction spans (Chrome trace-event export). Off by
  /// default; benches enable it via --trace-out.
  bool trace = false;
  /// Deterministic-model mode for record/replay golden tests: removes
  /// every wall-clock input to routing (adaptive sampling, statistics
  /// inter-transaction window and sample TTL), so the selector's
  /// decisions are a pure function of the synchronization order the
  /// scheduler records and replays.
  bool deterministic = false;
};

/// Builds one ready-to-load system of `kind` over `partitioner`.
/// Static systems (multi-master, partition-store, LEAP) get range
/// placement over partition ids — the layout Schism selects for the
/// paper's workloads; DynaMast starts with round-robin scattering it must
/// reorganize; single-master pins everything at site 0.
std::unique_ptr<core::SystemInterface> MakeSystem(
    SystemKind kind, const DeploymentOptions& options,
    const Partitioner& partitioner);

}  // namespace dynamast::workloads

#endif  // DYNAMAST_WORKLOADS_SYSTEM_FACTORY_H_
